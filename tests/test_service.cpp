/**
 * @file
 * Service-layer test suite: the qsynd daemon driven as a real
 * subprocess over its Unix socket (spawn, warm-compile, limits,
 * SIGTERM drain), plus in-process Server/Client protocol-robustness
 * tests (malformed JSON, truncated frames, oversized length prefixes,
 * abrupt disconnects).
 *
 * The tool directory arrives via the QSYN_TOOL_DIR environment
 * variable (set by tests/CMakeLists.txt from the build tree).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/errors.hpp"
#include "service/client.hpp"
#include "service/fuzz.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace fs = std::filesystem;
using namespace qsyn;

namespace {

fs::path
scratchDir(const std::string &name)
{
    fs::path dir = fs::temp_directory_path() / "qsyn_service" / name;
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir);
    return dir;
}

std::string
toolPath(const std::string &tool)
{
    const char *dir = std::getenv("QSYN_TOOL_DIR");
    EXPECT_NE(dir, nullptr) << "QSYN_TOOL_DIR not set; run via ctest";
    return dir ? std::string(dir) + "/" + tool : tool;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

const char *kSmallQasm =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[4];\n"
    "h q[0];\n"
    "cx q[0],q[1];\n"
    "cx q[1],q[2];\n"
    "t q[2];\n"
    "cx q[2],q[3];\n";

/** A deliberately huge circuit: wide T/CX braid that keeps the
 *  verifier's per-gate loop busy long enough for deadlines to fire. */
std::string
hugeQasm(size_t layers)
{
    std::ostringstream os;
    os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[5];\n";
    for (size_t i = 0; i < layers; ++i) {
        os << "h q[" << i % 5 << "];\n";
        os << "t q[" << (i + 1) % 5 << "];\n";
        os << "cx q[" << i % 5 << "],q[" << (i + 2) % 5 << "];\n";
    }
    return os.str();
}

service::Json
compileRequest(const std::string &source)
{
    service::Json req = service::Json::makeObject();
    req.object["op"] = service::Json::makeString("compile");
    req.object["source"] = service::Json::makeString(source);
    return req;
}

std::string
errorCodeOf(const service::Json &response)
{
    const service::Json *e = response.find("error");
    return e != nullptr ? e->stringOr("code", "") : "";
}

/**
 * A qsynd child process for one test: fork/exec, connect-poll until
 * the socket answers, SIGTERM + waitpid on teardown.
 */
class Daemon
{
  public:
    explicit Daemon(std::vector<std::string> extraArgs = {})
    {
        dir_ = scratchDir("daemon-" + std::to_string(::getpid()) +
                          "-" + std::to_string(counter_++));
        socket_ = (dir_ / "qsynd.sock").string();
        std::string bin = toolPath("qsynd");
        std::vector<std::string> args = {bin, "--socket", socket_};
        for (std::string &a : extraArgs)
            args.push_back(std::move(a));

        pid_ = ::fork();
        if (pid_ < 0) {
            ADD_FAILURE() << "fork failed";
            return;
        }
        if (pid_ == 0) {
            // Child: quiet stderr, then become qsynd.
            FILE *sink = std::freopen("/dev/null", "w", stderr);
            (void)sink;
            std::vector<char *> argv;
            argv.reserve(args.size() + 1);
            for (std::string &a : args)
                argv.push_back(a.data());
            argv.push_back(nullptr);
            ::execv(argv[0], argv.data());
            std::_Exit(127);
        }
    }

    ~Daemon()
    {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            int status = 0;
            ::waitpid(pid_, &status, 0);
        }
    }

    /** Poll-connect until the daemon answers a ping (or ~10 s). */
    void
    waitReady()
    {
        for (int attempt = 0; attempt < 200; ++attempt) {
            try {
                service::Client c =
                    service::Client::connectUnix(socket_);
                service::Json ping = service::Json::makeObject();
                ping.object["op"] = service::Json::makeString("ping");
                if (c.call(ping).boolOr("ok", false))
                    return;
            } catch (const Error &) {
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
        FAIL() << "qsynd never became ready on " << socket_;
    }

    /** SIGTERM, then reap; returns the exit code (-1 = signalled). */
    int
    terminate()
    {
        ::kill(pid_, SIGTERM);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
        return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }

    const std::string &socket() const { return socket_; }
    const fs::path &dir() const { return dir_; }

  private:
    static std::atomic<int> counter_;
    pid_t pid_ = -1;
    std::string socket_;
    fs::path dir_;
};

std::atomic<int> Daemon::counter_{0};

int
runShell(const std::string &cmd)
{
    int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

} // namespace

// ---------------------------------------------------------------------
// Subprocess end-to-end: the real daemon over its real socket.
// ---------------------------------------------------------------------

TEST(ServiceE2E, HealthStatsAndCompile)
{
    Daemon daemon;
    daemon.waitReady();
    service::Client client =
        service::Client::connectUnix(daemon.socket());

    service::Json health = service::Json::makeObject();
    health.object["op"] = service::Json::makeString("health");
    service::Json h = client.call(health);
    EXPECT_TRUE(h.boolOr("ok", false));
    EXPECT_EQ(h.stringOr("status", ""), "ok");
    EXPECT_GE(h.numberOr("workers", 0.0), 1.0);

    service::Json resp = client.call(compileRequest(kSmallQasm));
    ASSERT_TRUE(resp.boolOr("ok", false)) << errorCodeOf(resp);
    EXPECT_NE(resp.stringOr("qasm", "").find("OPENQASM"),
              std::string::npos);
    EXPECT_TRUE(resp.boolOr("verified", false));
    // The report field is a pre-rendered JSON document.
    EXPECT_EQ(resp.stringOr("report", "").rfind("{", 0), 0u);

    // stats: json form carries the metrics registry snapshot; prom
    // form carries a text exposition page with qsyn_ series.
    service::Json stats = service::Json::makeObject();
    stats.object["op"] = service::Json::makeString("stats");
    service::Json s = client.call(stats);
    ASSERT_TRUE(s.boolOr("ok", false));
    EXPECT_EQ(s.stringOr("metrics", "").rfind("{", 0), 0u);
    const service::Json *cache = s.find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_GE(cache->numberOr("misses", -1.0), 1.0);

    stats.object["format"] = service::Json::makeString("prom");
    service::Json p = client.call(stats);
    ASSERT_TRUE(p.boolOr("ok", false));
    EXPECT_NE(p.stringOr("prometheus", "").find("qsyn_"),
              std::string::npos);

    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServiceE2E, SecondCompileHitsWarmCache)
{
    Daemon daemon;
    daemon.waitReady();
    service::Client client =
        service::Client::connectUnix(daemon.socket());

    service::Json first = client.call(compileRequest(kSmallQasm));
    ASSERT_TRUE(first.boolOr("ok", false)) << errorCodeOf(first);
    service::Json second = client.call(compileRequest(kSmallQasm));
    ASSERT_TRUE(second.boolOr("ok", false)) << errorCodeOf(second);
    // Identical request -> identical bytes, served from the shared
    // cache (hits >= 1).
    EXPECT_EQ(first.stringOr("qasm", "x"), second.stringOr("qasm", "y"));
    EXPECT_EQ(first.stringOr("report", "x"),
              second.stringOr("report", "y"));

    service::Json stats = service::Json::makeObject();
    stats.object["op"] = service::Json::makeString("stats");
    service::Json s = client.call(stats);
    const service::Json *cache = s.find("cache");
    ASSERT_NE(cache, nullptr);
    EXPECT_GE(cache->numberOr("hits", 0.0), 1.0);

    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServiceE2E, RemoteReportByteIdenticalToLocal)
{
    fs::path dir = scratchDir("byte-identical");
    fs::path circuit = dir / "c.qasm";
    {
        std::ofstream out(circuit);
        out << kSmallQasm;
    }
    Daemon daemon;
    daemon.waitReady();

    fs::path remoteQasm = dir / "remote.qasm";
    fs::path remoteReport = dir / "remote.json";
    fs::path localQasm = dir / "local.qasm";
    fs::path localReport = dir / "local.json";

    std::string qsync = toolPath("qsync");
    ASSERT_EQ(runShell(qsync + " --remote " + daemon.socket() +
                       " --quiet --report " + remoteReport.string() +
                       " " + circuit.string() + " > " +
                       remoteQasm.string() + " 2>/dev/null"),
              0);
    ASSERT_EQ(runShell(qsync + " --quiet --report-deterministic"
                       " --report " + localReport.string() + " " +
                       circuit.string() + " > " + localQasm.string() +
                       " 2>/dev/null"),
              0);

    std::string remoteQ = slurp(remoteQasm);
    ASSERT_FALSE(remoteQ.empty());
    EXPECT_EQ(remoteQ, slurp(localQasm));
    std::string remoteR = slurp(remoteReport);
    ASSERT_FALSE(remoteR.empty());
    EXPECT_EQ(remoteR, slurp(localReport));

    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServiceE2E, EightConcurrentClients)
{
    Daemon daemon;
    daemon.waitReady();

    constexpr size_t kClients = 8;
    constexpr size_t kRequests = 4;
    std::atomic<size_t> ok{0};
    std::vector<std::string> problems;
    std::mutex mu;

    std::vector<std::thread> pool;
    for (size_t c = 0; c < kClients; ++c) {
        pool.emplace_back([&, c] {
            try {
                service::Client client =
                    service::Client::connectUnix(daemon.socket());
                for (size_t r = 0; r < kRequests; ++r) {
                    service::Json req = compileRequest(kSmallQasm);
                    double id = static_cast<double>(c * 100 + r);
                    req.object["id"] = service::Json::makeNumber(id);
                    service::Json resp = client.call(req);
                    if (resp.boolOr("ok", false) &&
                        resp.numberOr("id", -1.0) == id) {
                        ++ok;
                    } else {
                        std::lock_guard<std::mutex> lock(mu);
                        problems.push_back("client " +
                                           std::to_string(c) + ": " +
                                           errorCodeOf(resp));
                    }
                }
            } catch (const Error &e) {
                std::lock_guard<std::mutex> lock(mu);
                problems.push_back(e.what());
            }
        });
    }
    for (std::thread &t : pool)
        t.join();

    EXPECT_EQ(ok.load(), kClients * kRequests)
        << (problems.empty() ? "" : problems.front());
    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServiceE2E, LimitViolationsAreStructuredAndNonFatal)
{
    Daemon daemon({"--max-qubits", "4", "--max-gates", "64"});
    daemon.waitReady();
    service::Client client =
        service::Client::connectUnix(daemon.socket());

    // Too wide.
    std::string wide =
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[6];\nh q[5];\n";
    service::Json r1 = client.call(compileRequest(wide));
    EXPECT_FALSE(r1.boolOr("ok", true));
    EXPECT_EQ(errorCodeOf(r1), "limit_exceeded");

    // Too long.
    service::Json r2 = client.call(compileRequest(hugeQasm(100)));
    EXPECT_FALSE(r2.boolOr("ok", true));
    EXPECT_EQ(errorCodeOf(r2), "limit_exceeded");

    // Unparseable circuit.
    service::Json r3 = client.call(compileRequest("qreg nonsense"));
    EXPECT_FALSE(r3.boolOr("ok", true));
    EXPECT_EQ(errorCodeOf(r3), "parse_error");

    // Unknown device.
    service::Json r4 = compileRequest(kSmallQasm);
    r4.object["device"] = service::Json::makeString("enigma");
    service::Json r4r = client.call(r4);
    EXPECT_FALSE(r4r.boolOr("ok", true));
    EXPECT_EQ(errorCodeOf(r4r), "bad_request");

    // The daemon answered four poisoned requests and is still fine.
    service::Json good = client.call(compileRequest(kSmallQasm));
    EXPECT_TRUE(good.boolOr("ok", false)) << errorCodeOf(good);
    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServiceE2E, DeadlineExpiresStructurally)
{
    // 2400 gates with full verification cannot finish in 20 ms; the
    // cooperative poll must unwind it cleanly. The budget rides on the
    // request (deadline_ms) rather than the server so the follow-up
    // small compile is unconstrained — under slow sanitizer builds
    // even it would blow a 20 ms server-wide deadline.
    Daemon daemon({"--max-gates", "1000000"});
    daemon.waitReady();
    service::Client client =
        service::Client::connectUnix(daemon.socket());

    service::Json req = compileRequest(hugeQasm(800));
    req.object["deadline_ms"] = service::Json::makeNumber(20.0);
    service::Json resp = client.call(req);
    EXPECT_FALSE(resp.boolOr("ok", true));
    EXPECT_EQ(errorCodeOf(resp), "deadline_exceeded");

    service::Json good = client.call(compileRequest(kSmallQasm));
    EXPECT_TRUE(good.boolOr("ok", false)) << errorCodeOf(good);
    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServiceE2E, OverloadedWhenQueueFull)
{
    Daemon daemon({"--threads", "1", "--queue-depth", "0"});
    daemon.waitReady();

    // Occupy the single compile slot with a slow compile (bounded by
    // its own deadline so the test can't hang), then probe: the probe
    // must get an immediate structured `overloaded`, not a hang.
    std::thread slow([&] {
        try {
            service::Client c =
                service::Client::connectUnix(daemon.socket());
            service::Json req = compileRequest(hugeQasm(800));
            req.object["deadline_ms"] =
                service::Json::makeNumber(2000.0);
            c.call(req);
        } catch (const Error &) {
        }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    bool sawOverloaded = false;
    for (int attempt = 0; attempt < 5 && !sawOverloaded; ++attempt) {
        service::Client probe =
            service::Client::connectUnix(daemon.socket());
        service::Json resp = probe.call(compileRequest(kSmallQasm));
        if (!resp.boolOr("ok", true) &&
            errorCodeOf(resp) == "overloaded")
            sawOverloaded = true;
    }
    EXPECT_TRUE(sawOverloaded);
    slow.join();
    EXPECT_EQ(daemon.terminate(), 0);
}

TEST(ServiceE2E, SigtermDrainsInFlightRequest)
{
    Daemon daemon;
    daemon.waitReady();

    // Launch a compile slow enough to still be running when SIGTERM
    // lands; its response must be delivered anyway.
    std::atomic<bool> gotResponse{false};
    std::atomic<bool> responseOk{false};
    std::thread inflight([&] {
        try {
            service::Client c =
                service::Client::connectUnix(daemon.socket());
            service::Json req = compileRequest(hugeQasm(250));
            service::Json resp = c.call(req);
            gotResponse = true;
            responseOk = resp.boolOr("ok", false);
        } catch (const Error &) {
        }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    int exitCode = daemon.terminate(); // SIGTERM + waitpid
    inflight.join();

    EXPECT_EQ(exitCode, 0);
    EXPECT_TRUE(gotResponse.load());
    EXPECT_TRUE(responseOk.load());
    // The drain unlinked the socket.
    EXPECT_FALSE(fs::exists(daemon.socket()));
}

// ---------------------------------------------------------------------
// Protocol robustness: in-process Server attacked at the byte level.
// ---------------------------------------------------------------------

namespace {

/** In-process server on a scratch socket for byte-level attacks. */
class InProcessServer
{
  public:
    InProcessServer()
    {
        dir_ = scratchDir("inproc-" + std::to_string(::getpid()));
        service::ServerConfig config;
        config.socketPath = (dir_ / "s.sock").string();
        config.workers = 2;
        config.queueDepth = 2;
        config.maxFrameBytes = 1u << 20;
        server_ = std::make_unique<service::Server>(config);
        server_->start();
    }

    ~InProcessServer() { server_->stop(); }

    const std::string &socket() const
    {
        return server_->config().socketPath;
    }
    service::Server &server() { return *server_; }

  private:
    fs::path dir_;
    std::unique_ptr<service::Server> server_;
};

} // namespace

TEST(ServiceProtocol, MalformedJsonGetsStructuredError)
{
    InProcessServer srv;
    service::Client client =
        service::Client::connectUnix(srv.socket());
    std::string raw = client.callRaw("{\"op\": \"ping\"");
    service::Json resp;
    ASSERT_TRUE(service::parseJson(raw, &resp, nullptr)) << raw;
    EXPECT_FALSE(resp.boolOr("ok", true));
    EXPECT_EQ(errorCodeOf(resp), "bad_request");

    // Same connection still serves valid requests afterwards.
    service::Json ping = service::Json::makeObject();
    ping.object["op"] = service::Json::makeString("ping");
    EXPECT_TRUE(client.call(ping).boolOr("ok", false));
}

TEST(ServiceProtocol, OversizedPrefixAnswersThenCloses)
{
    InProcessServer srv;
    service::Client client =
        service::Client::connectUnix(srv.socket());
    std::string header = service::encodeFrameHeader(
        srv.server().config().maxFrameBytes + 1);
    ASSERT_EQ(::send(client.fd(), header.data(), header.size(),
                     MSG_NOSIGNAL),
              static_cast<ssize_t>(header.size()));

    // The poisoned stream gets one final structured error frame...
    std::string payload;
    ASSERT_EQ(service::readFrame(client.fd(), &payload),
              service::FrameStatus::Ok);
    service::Json resp;
    ASSERT_TRUE(service::parseJson(payload, &resp, nullptr));
    EXPECT_EQ(errorCodeOf(resp), "bad_request");

    // ...then a clean close.
    EXPECT_EQ(service::readFrame(client.fd(), &payload),
              service::FrameStatus::Eof);

    // And the server keeps serving fresh connections.
    service::Client fresh =
        service::Client::connectUnix(srv.socket());
    service::Json ping = service::Json::makeObject();
    ping.object["op"] = service::Json::makeString("ping");
    EXPECT_TRUE(fresh.call(ping).boolOr("ok", false));
}

TEST(ServiceProtocol, TruncatedFramesAndDisconnectsAreCleanDrops)
{
    InProcessServer srv;
    {
        // Promise 512 bytes, deliver 10, hang up.
        service::Client c =
            service::Client::connectUnix(srv.socket());
        std::string header = service::encodeFrameHeader(512);
        ::send(c.fd(), header.data(), header.size(), MSG_NOSIGNAL);
        ::send(c.fd(), "0123456789", 10, MSG_NOSIGNAL);
    }
    {
        // Hang up mid-header.
        service::Client c =
            service::Client::connectUnix(srv.socket());
        ::send(c.fd(), "\x00\x00", 2, MSG_NOSIGNAL);
    }
    {
        // Raw garbage (decodes as a huge length).
        service::Client c =
            service::Client::connectUnix(srv.socket());
        ::send(c.fd(), "\xff\xff\xff\xffgarbage", 11, MSG_NOSIGNAL);
    }
    // None of it crashed or wedged the server.
    service::Client fresh = service::Client::connectUnix(srv.socket());
    service::Json ping = service::Json::makeObject();
    ping.object["op"] = service::Json::makeString("ping");
    EXPECT_TRUE(fresh.call(ping).boolOr("ok", false));
    EXPECT_GE(srv.server().stats().protocolErrors, 1u);
}

TEST(ServiceProtocol, FuzzSweepStaysClean)
{
    service::ServiceFuzzOptions options;
    options.seed = 7;
    options.iterations = 60;
    options.socketDir =
        scratchDir("fuzz-sweep").string();
    std::ostringstream log;
    service::ServiceFuzzSummary summary =
        service::runServiceFuzzer(options, log);
    EXPECT_TRUE(summary.clean()) << log.str();
    EXPECT_EQ(summary.cases, options.iterations);
    EXPECT_GT(summary.structuredErrors, 0u);
    EXPECT_GT(summary.cleanDrops, 0u);
}

TEST(ServiceProtocol, ShuttingDownCodeDuringDrain)
{
    // stop() on a server with no traffic still flips draining_ before
    // closing; a compile racing the drain gets `shutting_down` or a
    // dropped connection, never a hang. Exercised via the config
    // accessor to keep the test deterministic: just verify the drain
    // finishes with outstanding idle connections open.
    auto srv = std::make_unique<InProcessServer>();
    service::Client idle =
        service::Client::connectUnix(srv->socket());
    srv.reset(); // stop() must shut the idle connection down, not hang
    SUCCEED();
}
