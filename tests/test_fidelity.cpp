/**
 * @file
 * Tests for the fidelity extension: calibration data, the success-
 * probability estimator, weighted pathfinding, and fidelity-aware CTR
 * routing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/errors.hpp"
#include "device/fidelity.hpp"
#include "device/registry.hpp"
#include "qmdd/equivalence.hpp"
#include "route/ctr.hpp"

using namespace qsyn;

TEST(CalibrationTest, DefaultsAndSetters)
{
    Calibration cal(4);
    EXPECT_NEAR(cal.singleQubitError(0), 1e-3, 1e-12);
    EXPECT_NEAR(cal.twoQubitError(0, 1), 1e-2, 1e-12);
    EXPECT_NEAR(cal.readoutError(3), 2e-2, 1e-12);
    cal.setSingleQubitError(2, 5e-3);
    EXPECT_NEAR(cal.singleQubitError(2), 5e-3, 1e-12);
    cal.setTwoQubitError(1, 2, 0.04);
    EXPECT_NEAR(cal.twoQubitError(1, 2), 0.04, 1e-12);
    // Reverse direction falls back to the stored edge.
    EXPECT_NEAR(cal.twoQubitError(2, 1), 0.04, 1e-12);
    // Clamping.
    cal.setSingleQubitError(0, 2.0);
    EXPECT_LE(cal.singleQubitError(0), 0.5);
}

TEST(CalibrationTest, SyntheticIsDeterministicAndBounded)
{
    std::vector<std::pair<Qubit, Qubit>> edges{{0, 1}, {1, 2}};
    Calibration a = Calibration::synthetic(3, edges, 42);
    Calibration b = Calibration::synthetic(3, edges, 42);
    Calibration c = Calibration::synthetic(3, edges, 43);
    EXPECT_EQ(a.twoQubitError(0, 1), b.twoQubitError(0, 1));
    EXPECT_NE(a.twoQubitError(0, 1), c.twoQubitError(0, 1));
    // Jitter stays within x1/4 .. x4 of the default.
    EXPECT_GE(a.twoQubitError(0, 1), 1e-2 / 4.01);
    EXPECT_LE(a.twoQubitError(0, 1), 1e-2 * 4.01);
}

TEST(FidelityTest, SuccessProbabilityMultiplies)
{
    Device dev = makeIbmqx2();
    Calibration cal(5);
    cal.setSingleQubitError(0, 0.1);
    cal.setTwoQubitError(0, 1, 0.2);
    dev.setCalibration(cal);

    Circuit c(5);
    c.addH(0);
    c.addCnot(0, 1);
    double p = successProbability(c, dev);
    EXPECT_NEAR(p, 0.9 * 0.8, 1e-12);
    EXPECT_NEAR(negLogFidelity(c, dev), -std::log(0.72), 1e-12);
}

TEST(FidelityTest, MeasurementUsesReadoutError)
{
    Device dev = makeIbmqx2();
    Calibration cal(5);
    cal.setReadoutError(2, 0.25);
    dev.setCalibration(cal);
    Circuit c(5);
    c.add(Gate::measure(2, 0));
    EXPECT_NEAR(successProbability(c, dev), 0.75, 1e-12);
}

TEST(FidelityTest, RequiresCalibration)
{
    Device dev = makeIbmqx2();
    Circuit c(5);
    c.addH(0);
    EXPECT_THROW(negLogFidelity(c, dev), UserError);
}

TEST(WeightedPath, PrefersLowErrorRoute)
{
    // Two routes from 0 to a neighbor of 3: 0-1-3 (short, bad edge) and
    // 0-2-4-3 (long, good edges).
    CouplingMap map(5);
    map.addEdge(0, 1);
    map.addEdge(1, 3);
    map.addEdge(0, 2);
    map.addEdge(2, 4);
    map.addEdge(4, 3);
    auto weight = [](Qubit a, Qubit b) {
        if ((a == 0 && b == 1) || (a == 1 && b == 0))
            return 10.0; // terrible edge
        return 1.0;
    };
    auto goal = [](Qubit) { return 0.0; };
    auto path = map.weightedPathToNeighbor(0, 3, weight, goal);
    ASSERT_EQ(path.size(), 3u); // 0 -> 2 -> 4 (neighbor of 3)
    EXPECT_EQ(path[1], 2u);
    EXPECT_EQ(path[2], 4u);
    // Hop-based BFS would take the short route through 1.
    auto bfs = map.shortestPathToNeighbor(0, 3);
    EXPECT_EQ(bfs.size(), 2u);
}

TEST(FidelityRouting, AvoidsBadEdgesAndStaysEquivalent)
{
    // Line 0-1-2 plus detour 0-3-4-2; make edge 1-2 terrible so the
    // fidelity-aware router goes around.
    CouplingMap map(5);
    map.addEdge(0, 1);
    map.addEdge(1, 2);
    map.addEdge(0, 3);
    map.addEdge(3, 4);
    map.addEdge(4, 2);
    Device dev("detour", 5, map);
    Calibration cal(5);
    cal.setTwoQubitError(1, 2, 0.4);
    cal.setTwoQubitError(0, 1, 0.4);
    dev.setCalibration(cal);

    Circuit c(5);
    c.addCnot(0, 2);

    route::RouteOptions hop_opts;
    Circuit hop = route::routeCircuit(c, dev, nullptr, hop_opts);

    route::RouteOptions fid_opts;
    fid_opts.fidelityAware = true;
    Circuit fid = route::routeCircuit(c, dev, nullptr, fid_opts);

    // Both legal and equivalent...
    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    EXPECT_TRUE(dd::isEquivalent(checker.check(c, hop)));
    EXPECT_TRUE(dd::isEquivalent(checker.check(c, fid)));
    // ...but the fidelity-aware route has higher success probability.
    EXPECT_GT(successProbability(fid, dev),
              successProbability(hop, dev));
    // And it avoided the bad 1-2 edge entirely.
    for (const Gate &g : fid) {
        if (g.isCnot()) {
            bool uses_bad =
                (g.controls()[0] == 1 && g.target() == 2) ||
                (g.controls()[0] == 2 && g.target() == 1);
            EXPECT_FALSE(uses_bad);
        }
    }
}

TEST(FidelityRouting, FallsBackWithoutCalibration)
{
    Device dev = makeIbmqx3();
    Circuit c(16);
    c.addCnot(5, 10);
    route::RouteOptions opts;
    opts.fidelityAware = true; // no calibration attached: hop-based
    Circuit routed = route::routeCircuit(c, dev, nullptr, opts);
    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    EXPECT_TRUE(dd::isEquivalent(checker.check(c, routed)));
}

TEST(FidelityRouting, SyntheticCalibrationOnRealTopology)
{
    Device dev = makeProposed96();
    dev.attachSyntheticCalibration(7);
    ASSERT_NE(dev.calibration(), nullptr);

    Circuit c(96);
    c.addCnot(1, 45);
    route::RouteOptions opts;
    opts.fidelityAware = true;
    route::RouteStats stats;
    Circuit routed = route::routeCircuit(c, dev, &stats, opts);
    EXPECT_EQ(stats.reroutedCnots, 1u);
    for (const Gate &g : routed) {
        if (g.isCnot()) {
            EXPECT_TRUE(
                dev.coupling().hasEdge(g.controls()[0], g.target()));
        }
    }
    EXPECT_GT(successProbability(routed, dev), 0.0);
}
