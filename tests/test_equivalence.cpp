/**
 * @file
 * Unit tests for the QMDD equivalence checker: direct canonical
 * comparison, global phase, ancilla projection, the alternating miter,
 * node budgets, and cross-validation against the simulator.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "ir/random_circuit.hpp"
#include "qmdd/equivalence.hpp"
#include "sim/statevector.hpp"

using namespace qsyn;
using dd::Equivalence;
using dd::EquivalenceChecker;
using dd::EquivalenceOptions;

TEST(Equivalence, IdenticalCircuits)
{
    dd::Package pkg;
    EquivalenceChecker checker(pkg);
    Circuit a(2);
    a.addH(0);
    a.addCnot(0, 1);
    EXPECT_EQ(checker.check(a, a), Equivalence::Equivalent);
}

TEST(Equivalence, RewrittenCircuit)
{
    dd::Package pkg;
    EquivalenceChecker checker(pkg);
    Circuit a(2);
    a.addCnot(0, 1);
    Circuit b(2); // Fig. 6 reversal identity
    b.addH(0);
    b.addH(1);
    b.addCnot(1, 0);
    b.addH(0);
    b.addH(1);
    EXPECT_EQ(checker.check(a, b), Equivalence::Equivalent);
}

TEST(Equivalence, DetectsInequivalence)
{
    dd::Package pkg;
    EquivalenceChecker checker(pkg);
    Circuit a(2);
    a.addCnot(0, 1);
    Circuit b(2);
    b.addCnot(1, 0);
    EXPECT_EQ(checker.check(a, b), Equivalence::NotEquivalent);
}

TEST(Equivalence, GlobalPhase)
{
    using std::numbers::pi;
    dd::Package pkg;
    EquivalenceChecker checker(pkg);
    Circuit a(1);
    a.addZ(0);
    // Rz(pi) = -i Z: same up to a global phase of -i.
    Circuit b(1);
    b.add(Gate::rz(0, pi));

    EquivalenceOptions strict;
    strict.upToGlobalPhase = false;
    EXPECT_EQ(checker.check(a, b, strict), Equivalence::NotEquivalent);

    EquivalenceOptions lax;
    lax.upToGlobalPhase = true;
    EXPECT_EQ(checker.check(a, b, lax),
              Equivalence::EquivalentUpToPhase);
}

TEST(Equivalence, WiderCircuitPadsWithIdentity)
{
    dd::Package pkg;
    EquivalenceChecker checker(pkg);
    Circuit narrow(2);
    narrow.addCnot(0, 1);
    Circuit wide(5);
    wide.addCnot(0, 1);
    EXPECT_EQ(checker.check(narrow, wide), Equivalence::Equivalent);
}

TEST(Equivalence, AncillaProjection)
{
    // b uses wire 2 as a clean ancilla: CCX-computed AND, used, then
    // uncomputed. On the ancilla=|0> subspace it equals a CCZ-free
    // CNOT(0,1)... simplest: compute AND into ancilla and back is the
    // identity on the data wires.
    Circuit a(2); // identity
    Circuit b(3);
    b.addCcx(0, 1, 2);
    b.addCcx(0, 1, 2);

    dd::Package pkg;
    EquivalenceChecker checker(pkg);
    EXPECT_EQ(checker.check(a, b), Equivalence::Equivalent);

    // A variant whose ancilla matters: copy AND into the ancilla and
    // leave it (not restored) - full unitary differs, projected check
    // must also fail because the ancilla output is not |0>.
    Circuit c(3);
    c.addCcx(0, 1, 2);
    EquivalenceOptions opts;
    opts.ancillaWires = {2};
    EXPECT_EQ(checker.check(a, c, opts), Equivalence::NotEquivalent);

    // And one where the ancilla genuinely helps: Toffoli implemented
    // via a borrowed-looking clean wire.
    Circuit ref(3);
    ref.addCcx(0, 1, 2);
    Circuit impl(4);
    impl.addCcx(0, 1, 3); // and into ancilla
    impl.addCnot(3, 2);   // copy onto target
    impl.addCcx(0, 1, 3); // uncompute
    EquivalenceOptions anc;
    anc.ancillaWires = {3};
    EXPECT_EQ(checker.check(ref, impl, anc), Equivalence::Equivalent);
    // Without the projection the circuits differ (wire 3 dirty case).
    EXPECT_EQ(checker.check(ref, impl), Equivalence::NotEquivalent);
}

TEST(Equivalence, MiterMode)
{
    dd::Package pkg;
    EquivalenceChecker checker(pkg);
    Rng rng(3);
    RandomCircuitOptions ropts;
    ropts.numQubits = 4;
    ropts.numGates = 30;
    Circuit a = randomCircuit(rng, ropts);
    Circuit b = a; // plus a cancelling pair
    b.addH(2);
    b.addH(2);

    EquivalenceOptions opts;
    opts.useMiter = true;
    EXPECT_TRUE(dd::isEquivalent(checker.check(a, b, opts)));

    Circuit c = a;
    c.addT(1);
    EXPECT_FALSE(dd::isEquivalent(checker.check(a, c, opts)));
}

TEST(Equivalence, NodeBudgetYieldsInconclusive)
{
    dd::Package pkg;
    EquivalenceChecker checker(pkg);
    Rng rng(5);
    RandomCircuitOptions ropts;
    ropts.numQubits = 8;
    ropts.numGates = 120;
    ropts.maxControls = 3;
    Circuit a = randomCircuit(rng, ropts);
    EquivalenceOptions opts;
    opts.nodeBudget = 4; // absurdly small
    EXPECT_EQ(checker.check(a, a, opts), Equivalence::Inconclusive);
}

TEST(Equivalence, RejectsMeasurements)
{
    dd::Package pkg;
    EquivalenceChecker checker(pkg);
    Circuit a(1);
    a.add(Gate::measure(0, 0));
    EXPECT_THROW(checker.check(a, a), UserError);
}

TEST(Equivalence, AgreesWithSimulatorOnRandomPairs)
{
    Rng rng(11);
    RandomCircuitOptions ropts;
    ropts.numQubits = 5;
    ropts.numGates = 40;
    ropts.allowRotations = true;
    for (int trial = 0; trial < 10; ++trial) {
        Circuit a = randomCircuit(rng, ropts);
        Circuit b = randomCircuit(rng, ropts);
        dd::Package pkg;
        EquivalenceChecker checker(pkg);
        bool dd_equal = dd::isEquivalent(checker.check(a, b));

        // Simulator oracle: a random state through a and b.
        sim::StateVector sa(5), sb(5);
        sa.setRandom(rng);
        sb = sa;
        sa.apply(a);
        sb.apply(b);
        bool sim_equal = sa.equalsUpToPhase(sb, 1e-9);
        // dd_equal (up to phase) must imply sim_equal; a single random
        // state distinguishing them must imply NotEquivalent.
        if (dd_equal) {
            EXPECT_TRUE(sim_equal) << "trial " << trial;
        }
        if (!sim_equal) {
            EXPECT_FALSE(dd_equal) << "trial " << trial;
        }
    }
}

TEST(Equivalence, NameStrings)
{
    EXPECT_STREQ(dd::equivalenceName(Equivalence::Equivalent),
                 "equivalent");
    EXPECT_TRUE(dd::isEquivalent(Equivalence::EquivalentUpToPhase));
    EXPECT_FALSE(dd::isEquivalent(Equivalence::Inconclusive));
    EXPECT_FALSE(dd::isEquivalent(Equivalence::NotEquivalent));
}

TEST(Equivalence, QuickRefuteCatchesMismatchesAndPassesEquals)
{
    dd::Package pkg;
    EquivalenceChecker checker(pkg);
    Rng rng(51);
    RandomCircuitOptions ropts;
    ropts.numQubits = 5;
    ropts.numGates = 30;
    Circuit a = randomCircuit(rng, ropts);
    Circuit b = a;
    b.addX(2); // genuinely different

    EquivalenceOptions opts;
    opts.quickRefuteSamples = 4;
    EXPECT_EQ(checker.check(a, b, opts), Equivalence::NotEquivalent);
    // Equal circuits still verify through the full canonical path.
    EXPECT_TRUE(dd::isEquivalent(checker.check(a, a, opts)));
}

TEST(Equivalence, QuickRefuteRespectsAncillaPinning)
{
    // Circuits equal only on the ancilla=|0> subspace: the refuter
    // must not sample ancilla=1 inputs and falsely refute.
    Circuit ref(2);
    ref.addCnot(0, 1);
    Circuit impl(3); // wire 2 = clean ancilla
    impl.addCcx(0, 2, 1); // fires like CNOT(0,1) only when anc=1...
    // Build instead: CNOT via double-toffoli trick on clean ancilla.
    Circuit impl2(3);
    impl2.addX(2);        // anc |0> -> |1>
    impl2.addCcx(0, 2, 1); // acts as CNOT(0,1)
    impl2.addX(2);        // restore

    dd::Package pkg;
    EquivalenceChecker checker(pkg);
    EquivalenceOptions opts;
    opts.ancillaWires = {2};
    opts.quickRefuteSamples = 6;
    EXPECT_TRUE(dd::isEquivalent(checker.check(ref, impl2, opts)));
    (void)impl;
}
