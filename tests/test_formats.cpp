/**
 * @file
 * Unit tests for the .qc, .real and PLA parsers plus the
 * format-dispatching loader.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/errors.hpp"
#include "frontend/loader.hpp"
#include "frontend/pla_parser.hpp"
#include "frontend/qc_parser.hpp"
#include "frontend/real_parser.hpp"
#include "qmdd/package.hpp"

using namespace qsyn;
using namespace qsyn::frontend;

TEST(QcParser, BasicGates)
{
    Circuit c = parseQc(".v a b c\n"
                        "BEGIN\n"
                        "H a\n"
                        "T b\n"
                        "T* b\n"
                        "S c\n"
                        "S* c\n"
                        "X a\n"
                        "Z b\n"
                        "Y c\n"
                        "END\n");
    EXPECT_EQ(c.numQubits(), 3u);
    ASSERT_EQ(c.size(), 8u);
    EXPECT_EQ(c[0].kind(), GateKind::H);
    EXPECT_EQ(c[1].kind(), GateKind::T);
    EXPECT_EQ(c[2].kind(), GateKind::Tdg);
    EXPECT_EQ(c[3].kind(), GateKind::S);
    EXPECT_EQ(c[4].kind(), GateKind::Sdg);
}

TEST(QcParser, MultiOperandToffoliFamily)
{
    Circuit c = parseQc(".v a b c d\n"
                        "BEGIN\n"
                        "T a b\n"      // CNOT
                        "T a b c\n"    // Toffoli
                        "T a b c d\n"  // T4
                        "t2 a b\n"
                        "t3 b c d\n"
                        "Z a b c\n"    // CCZ
                        "F a b c\n"    // Fredkin
                        "swap a d\n"
                        "END\n");
    ASSERT_EQ(c.size(), 8u);
    EXPECT_TRUE(c[0].isCnot());
    EXPECT_TRUE(c[1].isToffoli());
    EXPECT_TRUE(c[2].isGeneralizedToffoli());
    EXPECT_TRUE(c[3].isCnot());
    EXPECT_TRUE(c[4].isToffoli());
    EXPECT_EQ(c[5].kind(), GateKind::Z);
    EXPECT_EQ(c[5].numControls(), 2u);
    EXPECT_EQ(c[6].kind(), GateKind::Swap);
    EXPECT_EQ(c[6].numControls(), 1u);
    EXPECT_EQ(c[7].kind(), GateKind::Swap);
}

TEST(QcParser, CommentsAndIoDirectives)
{
    Circuit c = parseQc(".v x y  # wires\n"
                        ".i x\n"
                        ".o y\n"
                        "BEGIN\n"
                        "T x y  # a cnot\n"
                        "END\n");
    EXPECT_EQ(c.size(), 1u);
}

TEST(QcParser, Errors)
{
    EXPECT_THROW(parseQc("BEGIN\nH a\nEND\n"), ParseError);
    EXPECT_THROW(parseQc(".v a\nH a\n"), ParseError); // outside body
    EXPECT_THROW(parseQc(".v a\nBEGIN\nH b\nEND\n"), ParseError);
    EXPECT_THROW(parseQc(".v a\nBEGIN\nbogus a\nEND\n"), ParseError);
    EXPECT_THROW(parseQc(".v a b\nBEGIN\nt3 a b\nEND\n"), ParseError);
}

TEST(QcParser, OversizedGateArityIsAParseError)
{
    // std::stoul used to throw raw std::out_of_range here.
    EXPECT_THROW(
        parseQc(".v a b\nBEGIN\nt99999999999999999999 a b\nEND\n"),
        ParseError);
}

TEST(RealParser, ToffoliCascade)
{
    Circuit c = parseReal(".version 1.0\n"
                          ".numvars 3\n"
                          ".variables a b c\n"
                          ".begin\n"
                          "t1 a\n"
                          "t2 a b\n"
                          "t3 a b c\n"
                          ".end\n");
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c[0].kind(), GateKind::X);
    EXPECT_EQ(c[0].numControls(), 0u);
    EXPECT_TRUE(c[1].isCnot());
    EXPECT_TRUE(c[2].isToffoli());
}

TEST(RealParser, NegativeControlsExpandToXConjugation)
{
    Circuit c = parseReal(".numvars 3\n"
                          ".variables a b c\n"
                          ".begin\n"
                          "t3 -a b c\n"
                          ".end\n");
    // X(a), CCX(a,b,c), X(a).
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c[0].kind(), GateKind::X);
    EXPECT_TRUE(c[1].isToffoli());
    EXPECT_EQ(c[2].kind(), GateKind::X);
}

TEST(RealParser, FredkinAndPeres)
{
    Circuit c = parseReal(".numvars 3\n"
                          ".variables a b c\n"
                          ".begin\n"
                          "f3 a b c\n"
                          "p3 a b c\n"
                          ".end\n");
    ASSERT_EQ(c.size(), 3u);
    EXPECT_EQ(c[0].kind(), GateKind::Swap);
    EXPECT_EQ(c[0].numControls(), 1u);
    // Peres expands to Toffoli + CNOT.
    EXPECT_TRUE(c[1].isToffoli());
    EXPECT_TRUE(c[2].isCnot());
}

TEST(RealParser, DefaultVariableNames)
{
    Circuit c = parseReal(".numvars 2\n.begin\nt2 x0 x1\n.end\n");
    EXPECT_EQ(c.numQubits(), 2u);
}

TEST(RealParser, Errors)
{
    EXPECT_THROW(parseReal(".begin\nt1 a\n.end\n"), ParseError);
    EXPECT_THROW(parseReal(".numvars 2\n.begin\nt2 a\n.end\n"),
                 ParseError);
    EXPECT_THROW(
        parseReal(".numvars 1\n.variables a\n.begin\nt1 -a\n.end\n"),
        ParseError); // negated target
    EXPECT_THROW(
        parseReal(".numvars 2\n.variables a b\n.begin\nv2 a b\n.end\n"),
        ParseError); // unsupported family
}

TEST(RealParser, MalformedNumbersAreParseErrors)
{
    // Both sites used raw std::stoul: overflow escaped as
    // std::out_of_range, and garbage after the digits was ignored.
    EXPECT_THROW(
        parseReal(".numvars 99999999999999999999\n.begin\n.end\n"),
        ParseError);
    EXPECT_THROW(parseReal(".numvars 0\n.begin\n.end\n"), ParseError);
    EXPECT_THROW(parseReal(".numvars 2x\n.begin\nt1 x0\n.end\n"),
                 ParseError);
    EXPECT_THROW(
        parseReal(
            ".numvars 2\n.begin\nt99999999999999999999 x0 x1\n.end\n"),
        ParseError);
    EXPECT_THROW(parseReal(".numvars 2\n.begin\nt2x x0 x1\n.end\n"),
                 ParseError);
}

TEST(PlaParser, ParsesEsop)
{
    PlaFile pla = parsePla("# adder\n"
                           ".i 3\n"
                           ".o 2\n"
                           ".type esop\n"
                           ".p 2\n"
                           "1-0 10\n"
                           "011 01\n"
                           ".e\n");
    EXPECT_EQ(pla.numInputs, 3);
    EXPECT_EQ(pla.numOutputs, 2);
    EXPECT_TRUE(pla.isEsop);
    ASSERT_EQ(pla.cubes.size(), 2u);
    EXPECT_EQ(pla.cubes[0].careMask, 0b101u);
    EXPECT_EQ(pla.cubes[0].polarity, 0b001u);
    EXPECT_EQ(pla.cubes[0].outputs, 0b01u);
    EXPECT_EQ(pla.cubes[1].outputs, 0b10u);
}

TEST(PlaParser, ZeroOutputCubesDropped)
{
    PlaFile pla = parsePla(".i 2\n.o 1\n11 0\n10 1\n.e\n");
    EXPECT_EQ(pla.cubes.size(), 1u);
}

TEST(PlaParser, Errors)
{
    EXPECT_THROW(parsePla("1- 1\n"), ParseError);
    EXPECT_THROW(parsePla(".i 2\n.o 1\n1-- 1\n"), ParseError);
    EXPECT_THROW(parsePla(".i 2\n.o 1\n1x 1\n"), ParseError);
    EXPECT_THROW(parsePla(".i 0\n.o 1\n"), ParseError);
}

TEST(PlaParser, OversizedCountsAreParseErrors)
{
    // std::stoi used to throw raw std::out_of_range on these.
    EXPECT_THROW(parsePla(".i 99999999999999999999\n.o 1\n"),
                 ParseError);
    EXPECT_THROW(parsePla(".i 2\n.o 99999999999999999999\n"),
                 ParseError);
    EXPECT_THROW(parsePla(".i -1\n.o 1\n"), ParseError);
    EXPECT_THROW(parsePla(".i 63\n.o 1\n"), ParseError);
}

TEST(LoaderTest, DispatchesOnExtension)
{
    EXPECT_EQ(formatFromExtension("x.qasm"), CircuitFormat::Qasm);
    EXPECT_EQ(formatFromExtension("x.QC"), CircuitFormat::Qc);
    EXPECT_EQ(formatFromExtension("x.real"), CircuitFormat::Real);
    EXPECT_EQ(formatFromExtension("x.txt"), CircuitFormat::Unknown);
    EXPECT_THROW(loadCircuitFile("circuit.xyz"), UserError);
}

TEST(LoaderTest, LoadsFilesOfEachFormat)
{
    // Write the same Toffoli in three formats and check the loader
    // produces the same unitary for each.
    std::string base = ::testing::TempDir();
    {
        std::ofstream f(base + "qsyn_t.qasm");
        f << "OPENQASM 2.0;\nqreg q[3];\nccx q[0],q[1],q[2];\n";
    }
    {
        std::ofstream f(base + "qsyn_t.qc");
        f << ".v a b c\nBEGIN\nT a b c\nEND\n";
    }
    {
        std::ofstream f(base + "qsyn_t.real");
        f << ".numvars 3\n.variables a b c\n.begin\nt3 a b c\n.end\n";
    }
    Circuit a = loadCircuitFile(base + "qsyn_t.qasm");
    Circuit b = loadCircuitFile(base + "qsyn_t.qc");
    Circuit c = loadCircuitFile(base + "qsyn_t.real");

    dd::Package pkg;
    dd::Edge ea = pkg.buildCircuit(a);
    EXPECT_EQ(ea, pkg.buildCircuit(b));
    EXPECT_EQ(ea, pkg.buildCircuit(c));

    std::remove((base + "qsyn_t.qasm").c_str());
    std::remove((base + "qsyn_t.qc").c_str());
    std::remove((base + "qsyn_t.real").c_str());
}
