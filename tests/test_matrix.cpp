/**
 * @file
 * Unit tests for the dense matrix substrate: base gate matrices
 * (Table 1 of the paper), 2x2 algebra, and DenseMatrix gate
 * application.
 */

#include <gtest/gtest.h>

#include <numbers>

#include "ir/matrix.hpp"

using namespace qsyn;

namespace {

bool
isUnitary2(const Mat2 &u)
{
    Mat2 prod = mul(dagger(u), u);
    Mat2 id{{1, 0, 0, 1}};
    return approxEqual(prod, id);
}

} // namespace

TEST(Mat2Test, AllBaseMatricesAreUnitary)
{
    for (GateKind kind : {GateKind::I, GateKind::X, GateKind::Y,
                          GateKind::Z, GateKind::H, GateKind::S,
                          GateKind::Sdg, GateKind::T, GateKind::Tdg}) {
        EXPECT_TRUE(isUnitary2(baseMatrix(kind))) << kindName(kind);
    }
    for (double theta : {0.0, 0.5, -1.7, 3.14}) {
        for (GateKind kind : {GateKind::Rx, GateKind::Ry, GateKind::Rz,
                              GateKind::P}) {
            EXPECT_TRUE(isUnitary2(baseMatrix(kind, theta)))
                << kindName(kind);
        }
    }
}

TEST(Mat2Test, Table1Identities)
{
    using std::numbers::pi;
    // S = T^2, Z = S^2, Y = i X Z.
    Mat2 t = baseMatrix(GateKind::T);
    EXPECT_TRUE(approxEqual(mul(t, t), baseMatrix(GateKind::S)));
    Mat2 s = baseMatrix(GateKind::S);
    EXPECT_TRUE(approxEqual(mul(s, s), baseMatrix(GateKind::Z)));
    // H^2 = I.
    Mat2 h = baseMatrix(GateKind::H);
    EXPECT_TRUE(approxEqual(mul(h, h), baseMatrix(GateKind::I)));
    // H X H = Z.
    Mat2 hxh = mul(h, mul(baseMatrix(GateKind::X), h));
    EXPECT_TRUE(approxEqual(hxh, baseMatrix(GateKind::Z)));
    // P(pi/4) = T exactly.
    EXPECT_TRUE(approxEqual(baseMatrix(GateKind::P, pi / 4), t));
}

TEST(Mat2Test, DaggerInverts)
{
    Mat2 t = baseMatrix(GateKind::T);
    EXPECT_TRUE(approxEqual(dagger(t), baseMatrix(GateKind::Tdg)));
}

TEST(DenseMatrixTest, StartsAsIdentity)
{
    DenseMatrix m(3);
    EXPECT_TRUE(m.isIdentity());
    EXPECT_EQ(m.dim(), 8u);
}

TEST(DenseMatrixTest, CnotPermutation)
{
    // CNOT(0 -> 1) on 2 qubits, qubit 0 = MSB: swaps rows 10 <-> 11.
    DenseMatrix m(2);
    m.applyGate(baseMatrix(GateKind::X), {0}, 1);
    EXPECT_TRUE(approxEqual(m.at(0, 0), Cplx(1, 0)));
    EXPECT_TRUE(approxEqual(m.at(1, 1), Cplx(1, 0)));
    EXPECT_TRUE(approxEqual(m.at(3, 2), Cplx(1, 0)));
    EXPECT_TRUE(approxEqual(m.at(2, 3), Cplx(1, 0)));
    EXPECT_TRUE(approxEqual(m.at(2, 2), Cplx(0, 0)));
}

TEST(DenseMatrixTest, GateThenInverseIsIdentity)
{
    DenseMatrix m(3);
    m.applyGate(baseMatrix(GateKind::H), {}, 1);
    m.applyGate(baseMatrix(GateKind::T), {0}, 2);
    EXPECT_FALSE(m.isIdentity());
    m.applyGate(baseMatrix(GateKind::Tdg), {0}, 2);
    m.applyGate(baseMatrix(GateKind::H), {}, 1);
    EXPECT_TRUE(m.isIdentity());
}

TEST(DenseMatrixTest, SwapIsItsOwnInverse)
{
    DenseMatrix m(3);
    m.applySwap({}, 0, 2);
    EXPECT_FALSE(m.isIdentity());
    m.applySwap({}, 2, 0);
    EXPECT_TRUE(m.isIdentity());
}

TEST(DenseMatrixTest, IdentityUpToPhase)
{
    DenseMatrix m(1);
    // Rz(2 pi) = -I.
    m.applyGate(baseMatrix(GateKind::Rz, 2 * std::numbers::pi), {}, 0);
    EXPECT_FALSE(m.isIdentity());
    Cplx phase;
    EXPECT_TRUE(m.isIdentityUpToPhase(&phase));
    EXPECT_TRUE(approxEqual(phase, Cplx(-1, 0)));
}

TEST(DenseMatrixTest, LeftMultiplyComposes)
{
    DenseMatrix a(1);
    a.applyGate(baseMatrix(GateKind::H), {}, 0);
    DenseMatrix b(1);
    b.applyGate(baseMatrix(GateKind::H), {}, 0);
    a.leftMultiply(b); // H * H = I
    EXPECT_TRUE(a.isIdentity());
}
