/**
 * @file
 * Golden round-trip tests over the checked-in data/circuits/ files:
 * parse -> write -> reparse must reproduce a structurally identical
 * circuit (Circuit::operator==) for every format the front end both
 * reads and writes (.qasm, .real, .qc, .pla).
 */

#include <gtest/gtest.h>

#include <string>

#include "esop/cascade.hpp"
#include "frontend/circuit_writers.hpp"
#include "frontend/loader.hpp"
#include "frontend/pla_parser.hpp"
#include "frontend/pla_writer.hpp"
#include "frontend/qasm_parser.hpp"
#include "frontend/qasm_writer.hpp"
#include "frontend/qc_parser.hpp"
#include "frontend/real_parser.hpp"

#ifndef QSYN_DATA_DIR
#error "QSYN_DATA_DIR must point at data/circuits"
#endif

using namespace qsyn;

namespace {

std::string
dataFile(const std::string &name)
{
    return std::string(QSYN_DATA_DIR) + "/" + name;
}

} // namespace

TEST(RoundTrip, QasmGolden)
{
    Circuit original = frontend::loadCircuitFile(dataFile("toffoli.qasm"));
    ASSERT_FALSE(original.empty());
    std::string written = frontend::writeQasm(original);
    Circuit reparsed = frontend::parseQasm(written, original.name());
    EXPECT_EQ(reparsed, original);

    // Idempotence: writing the reparse changes nothing.
    EXPECT_EQ(frontend::writeQasm(reparsed), written);
}

TEST(RoundTrip, RealGolden)
{
    Circuit original =
        frontend::loadCircuitFile(dataFile("mod5_cascade.real"));
    ASSERT_FALSE(original.empty());
    std::string written = frontend::writeReal(original);
    Circuit reparsed = frontend::parseReal(written, "roundtrip");
    EXPECT_EQ(reparsed, original);
    EXPECT_EQ(frontend::writeReal(reparsed), written);
}

TEST(RoundTrip, QcGolden)
{
    Circuit original =
        frontend::loadCircuitFile(dataFile("clifford_t.qc"));
    ASSERT_FALSE(original.empty());
    std::string written = frontend::writeQc(original);
    Circuit reparsed = frontend::parseQc(written, "roundtrip");
    EXPECT_EQ(reparsed, original);
    EXPECT_EQ(frontend::writeQc(reparsed), written);
}

TEST(RoundTrip, QcCrossesIntoQasmAndBack)
{
    // Cross-format: .qc -> QASM text -> circuit must stay structurally
    // identical (both vocabularies cover the Clifford+T set).
    Circuit original =
        frontend::loadCircuitFile(dataFile("clifford_t.qc"));
    Circuit via_qasm =
        frontend::parseQasm(frontend::writeQasm(original), "via");
    EXPECT_EQ(via_qasm, original);
}

TEST(RoundTrip, PlaGolden)
{
    frontend::PlaFile original =
        frontend::loadPlaFile(dataFile("adder.pla"));
    ASSERT_FALSE(original.cubes.empty());
    std::string written = frontend::writePla(original);
    frontend::PlaFile reparsed = frontend::parsePla(written);

    EXPECT_EQ(reparsed.numInputs, original.numInputs);
    EXPECT_EQ(reparsed.numOutputs, original.numOutputs);
    ASSERT_EQ(reparsed.cubes.size(), original.cubes.size());
    for (size_t i = 0; i < original.cubes.size(); ++i) {
        EXPECT_EQ(reparsed.cubes[i].careMask,
                  original.cubes[i].careMask)
            << "cube " << i;
        EXPECT_EQ(reparsed.cubes[i].polarity,
                  original.cubes[i].polarity)
            << "cube " << i;
        EXPECT_EQ(reparsed.cubes[i].outputs, original.cubes[i].outputs)
            << "cube " << i;
    }

    // The synthesized cascades agree gate for gate.
    EXPECT_EQ(esop::synthesizePla(reparsed),
              esop::synthesizePla(original));

    // Idempotence of the writer.
    EXPECT_EQ(frontend::writePla(reparsed), written);
}
