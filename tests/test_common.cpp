/**
 * @file
 * Unit tests for the common substrate: strings, tables, RNG, errors.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "common/table_printer.hpp"
#include "common/types.hpp"

using namespace qsyn;

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  hello \t\n"), "hello");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitFields)
{
    auto fields = splitFields("  a  b\tc ");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "c");
    EXPECT_TRUE(splitFields("").empty());
    auto commas = splitFields("1,2, 3", " ,");
    ASSERT_EQ(commas.size(), 3u);
}

TEST(Strings, SplitOnKeepsEmptyFields)
{
    auto parts = splitOn("a::b", ':');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[1], "");
}

TEST(Strings, CaseHelpers)
{
    EXPECT_TRUE(iequals("BEGIN", "begin"));
    EXPECT_FALSE(iequals("BEGIN", "begun"));
    EXPECT_EQ(toLower("AbC"), "abc");
    EXPECT_TRUE(startsWith("ibmqx4", "ibm"));
    EXPECT_TRUE(endsWith("foo.qasm", ".qasm"));
    EXPECT_FALSE(endsWith("qasm", ".qasm"));
}

TEST(Strings, FormatNumber)
{
    EXPECT_EQ(formatNumber(0.3), "0.3");
    EXPECT_EQ(formatNumber(22.25), "22.25");
    EXPECT_EQ(formatNumber(3.0), "3");
    EXPECT_EQ(formatNumber(0.098901, 6), "0.098901");
}

TEST(TablePrinterTest, AlignsColumns)
{
    TablePrinter table({"Name", "Qubits"});
    table.addRow({"ibmqx2", "5"});
    table.addRow({"ibmq_16", "14"});
    std::string out = table.toString();
    EXPECT_NE(out.find("Name    | Qubits"), std::string::npos);
    EXPECT_NE(out.find("ibmq_16 | 14"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TablePrinterTest, PadsShortRows)
{
    TablePrinter table({"A", "B", "C"});
    table.addRow({"1"});
    EXPECT_NE(table.toString().find("1"), std::string::npos);
}

TEST(RngTest, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, BelowIsInRange)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(7), 7u);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 1000, 0.5, 0.05);
}

TEST(Errors, ParseErrorCarriesLocation)
{
    ParseError err("bad token", 12, 3);
    EXPECT_EQ(err.line(), 12);
    EXPECT_EQ(err.column(), 3);
    EXPECT_NE(std::string(err.what()).find("line 12:3"),
              std::string::npos);
}

TEST(Errors, AssertThrowsInternalError)
{
    EXPECT_THROW(QSYN_ASSERT(false, "boom"), InternalError);
    EXPECT_NO_THROW(QSYN_ASSERT(true, "fine"));
}

TEST(Types, ApproxHelpers)
{
    EXPECT_TRUE(approxEqual(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(approxEqual(1.0, 1.001));
    EXPECT_TRUE(approxZero(Cplx(1e-12, -1e-12)));
    EXPECT_TRUE(approxOne(Cplx(1.0, 1e-12)));
    EXPECT_FALSE(approxOne(Cplx(0.0, 1.0)));
}

TEST(StopwatchTest, MeasuresForward)
{
    Stopwatch sw;
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + i;
    EXPECT_GE(sw.seconds(), 0.0);
    sw.reset();
    EXPECT_LT(sw.seconds(), 1.0);
}
