/**
 * @file
 * Tests for the extensions beyond the paper's prototype: the ASCII
 * circuit drawer, the .real/.qc writers (round-trip through the
 * parsers), the QMDD DOT export, the JSON compile report, and the
 * phase-polynomial T-count reduction pass.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "core/report.hpp"
#include "core/qsyn.hpp"
#include "decompose/rebase.hpp"
#include "frontend/circuit_drawer.hpp"
#include "frontend/circuit_writers.hpp"
#include "frontend/qc_parser.hpp"
#include "frontend/real_parser.hpp"
#include "ir/random_circuit.hpp"
#include "qmdd/dot_export.hpp"

using namespace qsyn;

// ---------------------------------------------------------------------
// Circuit drawer.
// ---------------------------------------------------------------------

TEST(Drawer, RendersWiresAndGates)
{
    Circuit c(3);
    c.addH(0);
    c.addCnot(0, 1);
    c.addCcx(0, 1, 2);
    std::string art = frontend::drawCircuit(c);
    EXPECT_NE(art.find("q0:"), std::string::npos);
    EXPECT_NE(art.find("q2:"), std::string::npos);
    EXPECT_NE(art.find("H"), std::string::npos);
    EXPECT_NE(art.find("*"), std::string::npos);
    EXPECT_NE(art.find("X"), std::string::npos);
    EXPECT_NE(art.find("|"), std::string::npos); // vertical connector
}

TEST(Drawer, CompactPacksIndependentGates)
{
    Circuit c(2);
    c.addH(0);
    c.addH(1); // parallel: should share a column
    std::string compact = frontend::drawCircuit(c);
    frontend::DrawOptions wide;
    wide.compact = false;
    std::string serial = frontend::drawCircuit(c, wide);
    EXPECT_LT(compact.find('\n'), serial.find('\n') + 100);
    // Compact drawing is narrower.
    EXPECT_LT(compact.size(), serial.size());
}

TEST(Drawer, TruncatesLongCircuits)
{
    Circuit c(1);
    for (int i = 0; i < 50; ++i)
        c.addT(0);
    frontend::DrawOptions opts;
    opts.maxColumns = 10;
    std::string art = frontend::drawCircuit(c, opts);
    EXPECT_NE(art.find("truncated"), std::string::npos);
}

// ---------------------------------------------------------------------
// Writers round-trip.
// ---------------------------------------------------------------------

TEST(Writers, RealRoundTripsNctCascade)
{
    Rng rng(5);
    Circuit c = randomNctCascade(rng, 5, 25, 3);
    std::string text = frontend::writeReal(c);
    Circuit round = frontend::parseReal(text);
    dd::Package pkg;
    EXPECT_EQ(pkg.buildCircuit(c), pkg.buildCircuit(round));
}

TEST(Writers, RealRejectsCliffordT)
{
    Circuit c(1);
    c.addH(0);
    EXPECT_THROW(frontend::writeReal(c), UserError);
}

TEST(Writers, QcRoundTripsCliffordT)
{
    Circuit c(3);
    c.addH(0);
    c.addT(1);
    c.addTdg(1);
    c.addSdg(2);
    c.addCnot(0, 1);
    c.addCcx(0, 1, 2);
    c.addSwap(0, 2);
    c.add(Gate::fredkin(0, 1, 2));
    c.add(Gate(GateKind::Z, {0, 1}, {2}));
    std::string text = frontend::writeQc(c);
    Circuit round = frontend::parseQc(text);
    dd::Package pkg;
    EXPECT_EQ(pkg.buildCircuit(c), pkg.buildCircuit(round));
}

TEST(Writers, QcRejectsRotations)
{
    Circuit c(1);
    c.add(Gate::rz(0, 0.3));
    EXPECT_THROW(frontend::writeQc(c), UserError);
}

// ---------------------------------------------------------------------
// DOT export.
// ---------------------------------------------------------------------

TEST(DotExport, CnotGraphShape)
{
    dd::Package pkg;
    dd::Edge e = pkg.gateDD(Gate::cnot(0, 1));
    dd::DotOptions opts;
    opts.title = "Fig. 1";
    std::string dot = dd::toDot(pkg, e, opts);
    EXPECT_NE(dot.find("digraph qmdd"), std::string::npos);
    EXPECT_NE(dot.find("x0"), std::string::npos);
    EXPECT_NE(dot.find("x1"), std::string::npos);
    EXPECT_NE(dot.find("U11"), std::string::npos);
    EXPECT_NE(dot.find("Fig. 1"), std::string::npos);
    // The root (x0) contributes U00/U11 edges, the X child (x1)
    // contributes U01/U10 - the zero quadrants of each are elided, so
    // each label appears exactly once.
    EXPECT_EQ(dot.find("U00"), dot.rfind("U00"));
    EXPECT_EQ(dot.find("U10"), dot.rfind("U10"));
}

// ---------------------------------------------------------------------
// JSON report.
// ---------------------------------------------------------------------

TEST(Report, ContainsAllSections)
{
    Device dev = makeIbmqx4();
    Compiler compiler(dev);
    Circuit c(2, "json_demo");
    c.addH(0);
    c.addCnot(0, 1);
    CompileResult res = compiler.compile(c);
    std::string json = compileReportJson(res, dev);
    for (const char *key :
         {"\"circuit\"", "\"device\"", "\"tech_independent\"",
          "\"unoptimized\"", "\"optimized\"", "\"routing\"",
          "\"verification\"", "\"seconds\"", "\"ancillas\"",
          "\"percent_cost_decrease\""}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    EXPECT_NE(json.find("\"equivalent\""), std::string::npos);
}

// ---------------------------------------------------------------------
// Phase-polynomial merging.
// ---------------------------------------------------------------------

namespace {

bool
sameUnitary(const Circuit &a, const Circuit &b)
{
    dd::Package pkg;
    return pkg.buildCircuit(a) == pkg.buildCircuit(b);
}

} // namespace

TEST(PhasePoly, MergesThroughCnotConjugation)
{
    // T(1) . CX(0,1) . T(1) . CX(0,1): the second T sits on parity
    // x0^x1, the first on x1 - no merge. But
    // CX(0,1) T(1) CX(0,1) CX(0,1) T(1) CX(0,1): both Ts on x0^x1.
    Circuit c(2);
    c.addCnot(0, 1);
    c.addT(1);
    c.addCnot(0, 1);
    c.addCnot(0, 1);
    c.addT(1);
    c.addCnot(0, 1);
    Circuit before = c;
    EXPECT_TRUE(opt::mergePhasePolynomial(c));
    CircuitStats stats = computeStats(c);
    EXPECT_EQ(stats.tCount, 0u); // T.T -> S on the shared parity
    EXPECT_TRUE(sameUnitary(before, c));
}

TEST(PhasePoly, TTdgCancelAcrossDistance)
{
    // T and Tdg on the same parity with unrelated CNOTs in between.
    Circuit c(3);
    c.addT(0);
    c.addCnot(1, 2);
    c.addCnot(2, 1);
    c.addTdg(0);
    Circuit before = c;
    EXPECT_TRUE(opt::mergePhasePolynomial(c));
    EXPECT_EQ(computeStats(c).tCount, 0u);
    EXPECT_TRUE(sameUnitary(before, c));
}

TEST(PhasePoly, RespectsXConstantBit)
{
    // T(0) X(0) T(0): the second T acts on !x0 - different affine
    // function, must NOT merge (that would change the unitary).
    Circuit c(1);
    c.addT(0);
    c.addX(0);
    c.addT(0);
    Circuit before = c;
    opt::mergePhasePolynomial(c);
    EXPECT_TRUE(sameUnitary(before, c));
    EXPECT_EQ(computeStats(c).tCount, 2u);
}

TEST(PhasePoly, HadamardBreaksTheRegion)
{
    Circuit c(1);
    c.addT(0);
    c.addH(0);
    c.addT(0);
    Circuit before = c;
    opt::mergePhasePolynomial(c);
    EXPECT_TRUE(sameUnitary(before, c));
    EXPECT_EQ(computeStats(c).tCount, 2u);
}

TEST(PhasePoly, PreservesRandomRegionCircuits)
{
    Rng rng(99);
    for (int trial = 0; trial < 12; ++trial) {
        // Random circuits drawn from the region vocabulary.
        Circuit c(4);
        for (int i = 0; i < 40; ++i) {
            switch (rng.below(5)) {
              case 0: {
                Qubit a = static_cast<Qubit>(rng.below(4));
                Qubit b = static_cast<Qubit>(rng.below(4));
                if (a != b)
                    c.addCnot(a, b);
                break;
              }
              case 1:
                c.addX(static_cast<Qubit>(rng.below(4)));
                break;
              case 2:
                c.addT(static_cast<Qubit>(rng.below(4)));
                break;
              case 3:
                c.addTdg(static_cast<Qubit>(rng.below(4)));
                break;
              case 4:
                c.add(Gate::rz(static_cast<Qubit>(rng.below(4)),
                               rng.uniform()));
                break;
            }
        }
        Circuit before = c;
        opt::mergePhasePolynomial(c);
        EXPECT_TRUE(sameUnitary(before, c)) << "trial " << trial;
    }
}

TEST(PhasePoly, ReducesTCountOfMappedToffoliPairs)
{
    // Two identical Toffolis = identity; after mapping the pipeline
    // with phase-poly enabled should recover more T cancellations than
    // without.
    Circuit c(3);
    c.addCcx(0, 1, 2);
    c.addCcx(0, 1, 2);

    Device dev = makeIbmqx5();
    CompileOptions plain;
    Compiler plain_compiler(dev, plain);
    CompileResult a = plain_compiler.compile(c);

    CompileOptions poly;
    poly.optimizer.enablePhasePolynomial = true;
    Compiler poly_compiler(dev, poly);
    CompileResult b = poly_compiler.compile(c);

    EXPECT_TRUE(a.verified());
    EXPECT_TRUE(b.verified());
    EXPECT_LE(b.optimizedM.tCount, a.optimizedM.tCount);
    EXPECT_LE(b.optimizedM.cost, a.optimizedM.cost);
}

TEST(PhasePoly, EndToEndOnBenchmarkReducesTCount)
{
    // A Toffoli cascade on a device: compute/uncompute structure gives
    // the phase-polynomial pass real T pairs to cancel.
    Circuit c(4);
    c.addCcx(0, 1, 2);
    c.addCnot(2, 3);
    c.addCcx(0, 1, 2);

    Device dev = makeIbmqx5();
    CompileOptions poly;
    poly.optimizer.enablePhasePolynomial = true;
    Compiler compiler(dev, poly);
    CompileResult res = compiler.compile(c);
    EXPECT_TRUE(res.verified());
    // 2 Toffolis = 14 T unmerged; the pass must find cancellations.
    EXPECT_LT(res.optimizedM.tCount, 14u);
}

// ---------------------------------------------------------------------
// CNOT <-> CZ rebasing.
// ---------------------------------------------------------------------

TEST(Rebase, CzRoundTripPreservesUnitary)
{
    Rng rng(41);
    RandomCircuitOptions opts;
    opts.numQubits = 4;
    opts.numGates = 40;
    Circuit c = randomCircuit(rng, opts);

    Circuit cz = decompose::rebaseToCz(c);
    for (const Gate &g : cz)
        EXPECT_FALSE(g.isCnot()) << g.toString();
    Circuit back = decompose::rebaseToCnot(cz);
    for (const Gate &g : back) {
        EXPECT_FALSE(g.kind() == GateKind::Z && g.numControls() == 1)
            << g.toString();
    }
    dd::Package pkg;
    dd::Edge original = pkg.buildCircuit(c);
    EXPECT_EQ(original, pkg.buildCircuit(cz));
    EXPECT_EQ(original, pkg.buildCircuit(back));
}

TEST(Rebase, CnotLadderSharesHadamards)
{
    // Two CNOTs onto the same target: naive rebasing inserts 4 H, the
    // pass cancels the middle pair.
    Circuit c(3);
    c.addCnot(0, 2);
    c.addCnot(1, 2);
    Circuit cz = decompose::rebaseToCz(c);
    size_t h_count = 0;
    for (const Gate &g : cz) {
        if (g.kind() == GateKind::H)
            ++h_count;
    }
    EXPECT_EQ(h_count, 2u);
}

TEST(Report, IncludesSuccessProbabilityWhenCalibrated)
{
    Device dev = makeIbmqx2();
    dev.attachSyntheticCalibration(3);
    Compiler compiler(dev);
    Circuit c(2, "calibrated");
    c.addH(0);
    c.addCnot(0, 1);
    CompileResult res = compiler.compile(c);
    std::string json = compileReportJson(res, dev);
    EXPECT_NE(json.find("\"success_probability\""), std::string::npos);
}
