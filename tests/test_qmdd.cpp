/**
 * @file
 * Unit tests for the QMDD package: gate construction against dense
 * matrices, algebra (multiply/add/adjoint), canonicity, identity
 * skipping, projectors, and garbage collection.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ir/random_circuit.hpp"
#include "qmdd/package.hpp"
#include "sim/statevector.hpp"

using namespace qsyn;
using dd::Edge;
using dd::Package;

namespace {

/** Dense unitary of a circuit via DenseMatrix (small circuits only). */
DenseMatrix
denseOf(const Circuit &c)
{
    DenseMatrix m(static_cast<int>(c.numQubits()));
    for (const Gate &g : c) {
        std::vector<int> controls;
        for (Qubit q : g.controls())
            controls.push_back(static_cast<int>(q));
        if (g.kind() == GateKind::Swap) {
            m.applySwap(controls, static_cast<int>(g.targets()[0]),
                        static_cast<int>(g.targets()[1]));
        } else if (g.kind() == GateKind::Barrier) {
            continue;
        } else {
            m.applyGate(g.baseMatrix(), controls,
                        static_cast<int>(g.target()));
        }
    }
    return m;
}

/** Compare a DD edge against a dense matrix entrywise. */
void
expectMatchesDense(Package &pkg, const Edge &e, const DenseMatrix &m,
                   int n)
{
    for (size_t r = 0; r < m.dim(); ++r) {
        for (size_t c = 0; c < m.dim(); ++c) {
            Cplx got = pkg.getEntry(e, r, c, n);
            ASSERT_TRUE(approxEqual(got, m.at(r, c), 1e-9))
                << "entry (" << r << "," << c << ") got " << got
                << " want " << m.at(r, c);
        }
    }
}

} // namespace

TEST(Qmdd, IdentityEdgeIsIdentityMatrix)
{
    Package pkg;
    Edge id = pkg.identityEdge();
    for (int n = 1; n <= 3; ++n) {
        DenseMatrix m(n);
        expectMatchesDense(pkg, id, m, n);
    }
}

TEST(Qmdd, SingleQubitGateEntries)
{
    Package pkg;
    for (GateKind kind : {GateKind::X, GateKind::Y, GateKind::Z,
                          GateKind::H, GateKind::S, GateKind::T}) {
        Edge e = pkg.gateDD(Gate(kind, {}, {0}));
        Mat2 u = baseMatrix(kind);
        for (int r = 0; r < 2; ++r) {
            for (int c = 0; c < 2; ++c) {
                EXPECT_TRUE(approxEqual(pkg.getEntry(e, r, c, 1),
                                        u.at(r, c)))
                    << kindName(kind);
            }
        }
    }
}

TEST(Qmdd, CnotMatchesPaperFigure1)
{
    // Fig. 1: CNOT with control x0 (top) and target x1.
    Package pkg;
    Edge e = pkg.gateDD(Gate::cnot(0, 1));
    Circuit c(2);
    c.addCnot(0, 1);
    expectMatchesDense(pkg, e, denseOf(c), 2);
    // The canonical DD has 2 nonterminal nodes (x0 root + one x1 node:
    // the identity quadrant is skipped by the reduction).
    EXPECT_EQ(pkg.countNodes(e), 2u);
}

TEST(Qmdd, GateOnWiderRegisterViaIdentitySkipping)
{
    // A CNOT DD does not depend on the register width.
    Package pkg;
    Edge e = pkg.gateDD(Gate::cnot(1, 3));
    Circuit c(5);
    c.addCnot(1, 3);
    expectMatchesDense(pkg, e, denseOf(c), 5);
}

TEST(Qmdd, ToffoliAndControlsBelowTarget)
{
    Package pkg;
    // Controls straddling the target exercise both makeGateDD branches.
    Circuit c(4);
    c.add(Gate(GateKind::X, {0, 3}, {1}));
    Edge e = pkg.buildCircuit(c);
    expectMatchesDense(pkg, e, denseOf(c), 4);
}

TEST(Qmdd, SwapAndFredkin)
{
    Package pkg;
    {
        Circuit c(3);
        c.addSwap(0, 2);
        expectMatchesDense(pkg, pkg.buildCircuit(c), denseOf(c), 3);
    }
    {
        Circuit c(3);
        c.add(Gate::fredkin(1, 0, 2));
        expectMatchesDense(pkg, pkg.buildCircuit(c), denseOf(c), 3);
    }
}

TEST(Qmdd, MultiplyMatchesDense)
{
    Package pkg;
    Rng rng(7);
    RandomCircuitOptions opts;
    opts.numQubits = 4;
    opts.numGates = 30;
    opts.maxControls = 3;
    opts.allowRotations = true;
    for (int trial = 0; trial < 10; ++trial) {
        Circuit c = randomCircuit(rng, opts);
        Edge e = pkg.buildCircuit(c);
        expectMatchesDense(pkg, e, denseOf(c), 4);
    }
}

TEST(Qmdd, CanonicityTwoRoutesSameEdge)
{
    // X = H Z H must produce the *same* canonical edge.
    Package pkg;
    Circuit a(2);
    a.addX(1);
    Circuit b(2);
    b.addH(1);
    b.addZ(1);
    b.addH(1);
    Edge ea = pkg.buildCircuit(a);
    Edge eb = pkg.buildCircuit(b);
    EXPECT_EQ(ea, eb);
}

TEST(Qmdd, CanonicityCnotFromHczh)
{
    // CNOT(c,t) = (I (+) H) CZ (I (+) H).
    Package pkg;
    Circuit a(2);
    a.addCnot(0, 1);
    Circuit b(2);
    b.addH(1);
    b.addCz(0, 1);
    b.addH(1);
    EXPECT_EQ(pkg.buildCircuit(a), pkg.buildCircuit(b));
}

TEST(Qmdd, AddIsMatrixAddition)
{
    Package pkg;
    Edge x = pkg.gateDD(Gate::x(0));
    Edge z = pkg.gateDD(Gate::z(0));
    Edge sum = pkg.add(x, z);
    // X + Z = [[1,1],[1,-1]] = sqrt(2) H.
    EXPECT_TRUE(approxEqual(pkg.getEntry(sum, 0, 0, 1), Cplx(1, 0)));
    EXPECT_TRUE(approxEqual(pkg.getEntry(sum, 0, 1, 1), Cplx(1, 0)));
    EXPECT_TRUE(approxEqual(pkg.getEntry(sum, 1, 0, 1), Cplx(1, 0)));
    EXPECT_TRUE(approxEqual(pkg.getEntry(sum, 1, 1, 1), Cplx(-1, 0)));
}

TEST(Qmdd, AddCancellationGivesZero)
{
    Package pkg;
    Edge x = pkg.gateDD(Gate::x(0));
    Edge minus_x = pkg.scaled(x, Cplx(-1, 0));
    Edge sum = pkg.add(x, minus_x);
    EXPECT_EQ(sum, pkg.zeroEdge());
}

TEST(Qmdd, ConjugateTransposeInvertsUnitary)
{
    Package pkg;
    Rng rng(11);
    RandomCircuitOptions opts;
    opts.numQubits = 3;
    opts.numGates = 20;
    opts.allowRotations = true;
    Circuit c = randomCircuit(rng, opts);
    Edge u = pkg.buildCircuit(c);
    Edge udag = pkg.conjugateTranspose(u);
    Edge prod = pkg.multiply(udag, u);
    EXPECT_EQ(prod, pkg.identityEdge());
}

TEST(Qmdd, ProjectorStructure)
{
    Package pkg;
    Edge p = pkg.makeProjector({1});
    // On 2 qubits: diag(1, 0, 1, 0) with qubit 0 as MSB... qubit 1
    // projected: entries with row==col and bit of qubit 1 == 0.
    for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
            bool q1_zero = (r & 1) == 0; // qubit 1 = LSB of 2-qubit idx
            Cplx want = (r == c && q1_zero) ? Cplx(1, 0) : Cplx(0, 0);
            EXPECT_TRUE(approxEqual(pkg.getEntry(p, r, c, 2), want));
        }
    }
    // Idempotent.
    EXPECT_EQ(pkg.multiply(p, p), p);
}

TEST(Qmdd, MaxMagnitude)
{
    Package pkg;
    Edge h = pkg.gateDD(Gate::h(0));
    EXPECT_NEAR(pkg.maxMagnitude(h), 1.0 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(pkg.maxMagnitude(pkg.identityEdge()), 1.0, 1e-12);
    EXPECT_NEAR(pkg.maxMagnitude(pkg.zeroEdge()), 0.0, 1e-12);
}

TEST(Qmdd, ApproxEqualEdges)
{
    Package pkg;
    Edge a = pkg.gateDD(Gate::t(0));
    Edge b = pkg.gateDD(Gate::tdg(0));
    EXPECT_TRUE(pkg.approxEqualEdges(a, a));
    EXPECT_FALSE(pkg.approxEqualEdges(a, b));
}

TEST(Qmdd, GarbageCollectionKeepsRoots)
{
    Package pkg;
    Rng rng(3);
    RandomCircuitOptions opts;
    opts.numQubits = 5;
    opts.numGates = 60;
    Circuit c = randomCircuit(rng, opts);
    Edge e = pkg.buildCircuit(c);
    DenseMatrix before = denseOf(c);

    size_t live_before = pkg.activeNodes();
    pkg.collectGarbage({e});
    EXPECT_LE(pkg.activeNodes(), live_before);
    // The root must still decode to the same matrix after the sweep.
    expectMatchesDense(pkg, e, before, 5);
    // And canonicity must survive: rebuilding gives the same edge.
    Edge rebuilt = pkg.buildCircuit(c);
    EXPECT_EQ(rebuilt, e);
}

TEST(Qmdd, StatsCountOperations)
{
    Package pkg;
    Circuit c(3);
    c.addH(0);
    c.addCnot(0, 1);
    c.addCnot(1, 2);
    (void)pkg.buildCircuit(c);
    EXPECT_GT(pkg.stats().multiplies, 0u);
    EXPECT_GT(pkg.stats().uniqueLookups, 0u);
}

TEST(Qmdd, DdAgreesWithSimulatorOnRandomStates)
{
    Package pkg;
    Rng rng(23);
    RandomCircuitOptions opts;
    opts.numQubits = 5;
    opts.numGates = 40;
    opts.maxControls = 3;
    Circuit c = randomCircuit(rng, opts);
    Edge e = pkg.buildCircuit(c);

    sim::StateVector sv(5);
    sv.setBasisState(13);
    sv.apply(c);
    // Column 13 of the DD must equal the evolved basis state.
    for (size_t r = 0; r < 32; ++r) {
        EXPECT_TRUE(approxEqual(pkg.getEntry(e, r, 13, 5), sv.amp(r),
                                1e-9));
    }
}

TEST(ComplexTableTest, SnapsValuesWithinTolerance)
{
    dd::ComplexTable table;
    const Cplx *a = table.lookup(Cplx(0.5, -0.25));
    const Cplx *b = table.lookup(Cplx(0.5 + 1e-12, -0.25 - 1e-12));
    EXPECT_EQ(a, b); // same canonical representative
    const Cplx *c = table.lookup(Cplx(0.5 + 1e-6, -0.25));
    EXPECT_NE(a, c); // outside the tolerance
}

TEST(ComplexTableTest, BucketBoundaryValuesStillMatch)
{
    // Values straddling a bucket boundary must still intern together:
    // the bucket width is 4 * kWeightEps, so v and v +/- eps/2 can land
    // in adjacent buckets for adversarial v.
    dd::ComplexTable table;
    const double w = 4 * dd::kWeightEps;
    for (int k = 1; k < 50; ++k) {
        double boundary = k * w;
        // The pair is eps/2 apart (well inside the tolerance) but can
        // straddle a bucket boundary; the neighbor probe must find it.
        const Cplx *lo =
            table.lookup(Cplx(boundary - dd::kWeightEps / 4, 0));
        const Cplx *hi =
            table.lookup(Cplx(boundary + dd::kWeightEps / 4, 0));
        EXPECT_EQ(lo, hi) << "boundary " << k;
    }
}

TEST(ComplexTableTest, ZeroAndOneAreCanonical)
{
    dd::ComplexTable table;
    EXPECT_EQ(table.lookup(Cplx(0, 0)), table.zero());
    EXPECT_EQ(table.lookup(Cplx(1e-12, -1e-12)), table.zero());
    EXPECT_EQ(table.lookup(Cplx(1.0, 0)), table.one());
}

TEST(Qmdd, LongProductHasNoDrift)
{
    // 1000 alternating T / Tdg pairs must collapse to the exact
    // canonical identity - the interning table absorbs round-off.
    Package pkg;
    Circuit c(1);
    for (int i = 0; i < 1000; ++i) {
        c.addT(0);
        c.addTdg(0);
    }
    EXPECT_EQ(pkg.buildCircuit(c), pkg.identityEdge());
}

TEST(Qmdd, RepeatedGateEighthPowerIsIdentity)
{
    // T^8 = I exactly under canonical interning.
    Package pkg;
    Circuit c(1);
    for (int i = 0; i < 8; ++i)
        c.addT(0);
    EXPECT_EQ(pkg.buildCircuit(c), pkg.identityEdge());
}

TEST(Qmdd, UniqueTableRehashPreservesCanonicity)
{
    // Start tiny so the table must grow several times mid-build. Nodes
    // never move on rehash (only the slot array does), so pointers
    // handed out before a growth stay canonical after it.
    dd::PackageConfig cfg;
    cfg.initialUniqueCapacity = 16;
    Package pkg(cfg);
    Rng rng(5);
    RandomCircuitOptions opts;
    opts.numQubits = 5;
    opts.numGates = 60;
    opts.maxControls = 2;
    Circuit c = randomCircuit(rng, opts);
    Edge e = pkg.buildCircuit(c);
    EXPECT_GT(pkg.stats().uniqueRehashes, 0u);
    // 16 is floored to 64 slots; the build must still outgrow that.
    EXPECT_GT(pkg.uniqueCapacity(), 64u);
    // Rebuilding the same circuit must hit the (rehashed) table and
    // return the identical edge...
    EXPECT_EQ(pkg.buildCircuit(c), e);
    // ...and a fresh default-capacity package agrees on the matrix.
    expectMatchesDense(pkg, e, denseOf(c), 5);
}

TEST(Qmdd, PeakNodesIsLiveHighWaterMark)
{
    Package pkg;
    Rng rng(9);
    RandomCircuitOptions opts;
    opts.numQubits = 5;
    opts.numGates = 50;
    Circuit c = randomCircuit(rng, opts);
    (void)pkg.buildCircuit(c);
    const dd::PackageStats &s = pkg.stats();
    // Every live node was inserted exactly once, so the live
    // high-water mark cannot exceed total inserts (= lookup misses).
    EXPECT_GT(s.peakNodes, 0u);
    EXPECT_LE(s.peakNodes, s.uniqueLookups - s.uniqueHits);
    EXPECT_GE(s.peakNodes, pkg.activeNodes());
}

TEST(Qmdd, SetGcThresholdClampsToFloor)
{
    Package pkg;
    pkg.setGcThreshold(10);
    EXPECT_EQ(pkg.gcThreshold(), 1024u);
    pkg.setGcThreshold(size_t{1} << 16);
    EXPECT_EQ(pkg.gcThreshold(), size_t{1} << 16);
}

TEST(Qmdd, GcThresholdGrowsUnderPressureAndDecaysBack)
{
    dd::PackageConfig cfg;
    cfg.gcThreshold = 1024; // the minimum: GC early and often
    Package pkg(cfg);
    ASSERT_EQ(pkg.gcThreshold(), 1024u);
    Rng rng(17);
    RandomCircuitOptions opts;
    opts.numQubits = 8;
    opts.numGates = 120;
    opts.maxControls = 2;
    Circuit c = randomCircuit(rng, opts);
    (void)pkg.buildCircuit(c);
    EXPECT_GT(pkg.stats().gcRuns, 0u);
    // Survivors exceeded half the threshold, so it backed off...
    EXPECT_GT(pkg.gcThreshold(), 1024u);
    // ...and once the pressure is gone it decays to the configured
    // floor (and not past it), re-arming GC for the next circuit.
    for (int i = 0; i < 64 && pkg.gcThreshold() > 1024u; ++i)
        pkg.collectGarbage({});
    EXPECT_EQ(pkg.gcThreshold(), 1024u);
}

TEST(Qmdd, GcShrinksUniqueCapacityToConfiguredMinimum)
{
    dd::PackageConfig cfg;
    cfg.initialUniqueCapacity = 64;
    Package pkg(cfg);
    Rng rng(21);
    RandomCircuitOptions opts;
    opts.numQubits = 6;
    opts.numGates = 80;
    Circuit c = randomCircuit(rng, opts);
    (void)pkg.buildCircuit(c);
    size_t grown = pkg.uniqueCapacity();
    EXPECT_GT(grown, 64u);
    // Dropping every root lets the sweep reclaim (nearly) everything;
    // the slot array halves down to its configured minimum.
    pkg.collectGarbage({});
    EXPECT_LT(pkg.uniqueCapacity(), grown);
    EXPECT_GE(pkg.uniqueCapacity(), 64u);
    EXPECT_GE(pkg.freeListLength(), 0u);
}

TEST(Qmdd, GcRecyclesNodesWithoutGrowingArena)
{
    Package pkg;
    Rng rng(29);
    RandomCircuitOptions opts;
    opts.numQubits = 5;
    opts.numGates = 60;
    Circuit c = randomCircuit(rng, opts);
    Edge e = pkg.buildCircuit(c);
    DenseMatrix dense = denseOf(c);

    pkg.collectGarbage({}); // drop everything
    size_t arena_after_gc = pkg.arenaNodes();
    size_t free_after_gc = pkg.freeListLength();
    EXPECT_GT(free_after_gc, 0u);

    // The rebuild must be served from the free list: same matrix, and
    // the arena (total nodes ever allocated) does not grow.
    Edge rebuilt = pkg.buildCircuit(c);
    EXPECT_EQ(pkg.arenaNodes(), arena_after_gc);
    EXPECT_LT(pkg.freeListLength(), free_after_gc);
    expectMatchesDense(pkg, rebuilt, dense, 5);
    (void)e; // dangling after the sweep; never dereferenced
}

TEST(Qmdd, ComputeCachesAreNotStaleAfterGc)
{
    // A sweep recycles nodes, so any cache keyed by Node* must be
    // cleared: a stale hit would silently return a recycled pointer.
    Package pkg;
    Rng rng(31);
    RandomCircuitOptions opts;
    opts.numQubits = 4;
    opts.numGates = 40;
    Circuit first = randomCircuit(rng, opts);
    (void)pkg.buildCircuit(first);
    pkg.collectGarbage({});

    // Different circuit, same package: results must match both a
    // fresh package and the dense reference entry-for-entry.
    opts.numGates = 30;
    Circuit second = randomCircuit(rng, opts);
    Edge e = pkg.buildCircuit(second);
    expectMatchesDense(pkg, e, denseOf(second), 4);
    Package fresh;
    Edge fresh_e = fresh.buildCircuit(second);
    EXPECT_NEAR(pkg.maxMagnitude(e), fresh.maxMagnitude(fresh_e),
                1e-12);
}
