/**
 * @file
 * Tests for the decomposition module: every lowering must be exactly
 * (including global phase) equivalent to the gate it replaces, checked
 * with canonical QMDDs; borrowed-ancilla networks must hold for
 * arbitrary ancilla states (full unitary equality), clean-ancilla
 * networks on the |0> subspace (projected equality).
 */

#include <gtest/gtest.h>

#include <numbers>

#include "decompose/barenco.hpp"
#include "decompose/controlled.hpp"
#include "decompose/pass.hpp"
#include "decompose/toffoli.hpp"
#include "decompose/zyz.hpp"
#include "qmdd/equivalence.hpp"

using namespace qsyn;
using namespace qsyn::decompose;

namespace {

/** Strict full-unitary equivalence via canonical QMDDs. */
bool
sameUnitary(const Circuit &a, const Circuit &b)
{
    dd::Package pkg;
    return pkg.buildCircuit(a) == pkg.buildCircuit(b);
}

/** Equality on the subspace where `zeros` wires are |0>. */
bool
sameOnCleanAncillas(const Circuit &a, const Circuit &b,
                    const std::vector<Qubit> &zeros)
{
    dd::Package pkg;
    dd::Edge p = pkg.makeProjector(zeros);
    dd::Edge ea = pkg.multiply(pkg.buildCircuit(a), p);
    dd::Edge eb = pkg.multiply(pkg.buildCircuit(b), p);
    return ea == eb;
}

} // namespace

TEST(Zyz, RoundTripsLibraryGates)
{
    for (GateKind kind : {GateKind::X, GateKind::Y, GateKind::Z,
                          GateKind::H, GateKind::S, GateKind::T,
                          GateKind::Tdg}) {
        Mat2 u = baseMatrix(kind);
        ZyzAngles a = zyzDecompose(u);
        EXPECT_TRUE(approxEqual(zyzCompose(a), u, 1e-9))
            << kindName(kind);
    }
}

TEST(Zyz, RoundTripsRotations)
{
    for (double theta : {0.3, 1.0, -2.2, 3.1}) {
        for (GateKind kind : {GateKind::Rx, GateKind::Ry, GateKind::Rz,
                              GateKind::P}) {
            Mat2 u = baseMatrix(kind, theta);
            EXPECT_TRUE(approxEqual(zyzCompose(zyzDecompose(u)), u, 1e-9))
                << kindName(kind) << "(" << theta << ")";
        }
    }
}

TEST(Toffoli, FifteenGateNetworkIsExact)
{
    Circuit ref(3);
    ref.addCcx(0, 1, 2);
    Circuit dec(3);
    appendToffoli(dec, 0, 1, 2);
    EXPECT_EQ(dec.size(), 15u);
    CircuitStats stats = computeStats(dec);
    EXPECT_EQ(stats.tCount, 7u);
    EXPECT_EQ(stats.cnotCount, 6u);
    EXPECT_TRUE(sameUnitary(ref, dec));
}

TEST(Toffoli, ReversedCnotIsExact)
{
    Circuit ref(2);
    ref.addCnot(0, 1);
    Circuit dec(2);
    appendReversedCnot(dec, 0, 1);
    EXPECT_EQ(dec.size(), 5u);
    EXPECT_TRUE(sameUnitary(ref, dec));
}

TEST(Toffoli, SwapCostsAtMostSevenGates)
{
    // Unidirectional coupling 0 -> 1 (the transmon case).
    CouplingMap map(2);
    map.addEdge(0, 1);
    Circuit dec(2);
    appendSwap(dec, &map, 0, 1);
    EXPECT_LE(dec.size(), 7u); // paper: max 7 (3 CNOT + 4 H)
    Circuit ref(2);
    ref.addSwap(0, 1);
    EXPECT_TRUE(sameUnitary(ref, dec));
    // Every CNOT must respect the map direction.
    for (const Gate &g : dec) {
        if (g.isCnot()) {
            EXPECT_TRUE(map.hasEdge(g.controls()[0], g.target()));
        }
    }
}

TEST(Barenco, CleanVChainMatchesOnZeroAncillas)
{
    for (size_t k = 3; k <= 6; ++k) {
        auto n = static_cast<Qubit>(k + 1);
        std::vector<Qubit> controls;
        for (Qubit i = 0; i < k; ++i)
            controls.push_back(i);
        Qubit target = static_cast<Qubit>(k);

        Circuit ref(n + static_cast<Qubit>(k - 2));
        ref.add(Gate::mcx(controls, target));

        AncillaPool pool;
        std::vector<Qubit> zeros;
        for (size_t i = 0; i < k - 2; ++i) {
            pool.clean.push_back(n + static_cast<Qubit>(i));
            zeros.push_back(n + static_cast<Qubit>(i));
        }
        Circuit dec(n + static_cast<Qubit>(k - 2));
        appendMcx(dec, controls, target, pool, McxStrategy::CleanVChain);
        EXPECT_EQ(dec.size(), 2 * k - 3) << "k=" << k;
        EXPECT_TRUE(sameOnCleanAncillas(ref, dec, zeros)) << "k=" << k;
    }
}

TEST(Barenco, DirtyVChainIsExactForAnyAncillaState)
{
    for (size_t k = 3; k <= 6; ++k) {
        auto n = static_cast<Qubit>(2 * k - 1); // controls+target+k-2
        std::vector<Qubit> controls;
        for (Qubit i = 0; i < k; ++i)
            controls.push_back(i);
        Qubit target = static_cast<Qubit>(k);

        Circuit ref(n);
        ref.add(Gate::mcx(controls, target));

        AncillaPool pool;
        for (size_t i = 0; i < k - 2; ++i)
            pool.dirty.push_back(static_cast<Qubit>(k + 1 + i));
        Circuit dec(n);
        appendMcx(dec, controls, target, pool, McxStrategy::DirtyVChain);
        EXPECT_EQ(dec.size(), 4 * (k - 2)) << "k=" << k;
        // Full unitary equality: valid for every ancilla state.
        EXPECT_TRUE(sameUnitary(ref, dec)) << "k=" << k;
    }
}

TEST(Barenco, SplitNeedsOnlyOneBorrowedWire)
{
    for (size_t k : {3u, 4u, 5u, 6u, 7u}) {
        auto n = static_cast<Qubit>(k + 2); // controls+target+1 ancilla
        std::vector<Qubit> controls;
        for (Qubit i = 0; i < k; ++i)
            controls.push_back(i);
        Qubit target = static_cast<Qubit>(k);

        Circuit ref(n);
        ref.add(Gate::mcx(controls, target));

        AncillaPool pool;
        pool.dirty.push_back(static_cast<Qubit>(k + 1));
        Circuit dec(n);
        appendMcx(dec, controls, target, pool, McxStrategy::Split);
        EXPECT_TRUE(sameUnitary(ref, dec)) << "k=" << k;
    }
}

TEST(Barenco, RootsNeedsNoAncillaAtAll)
{
    for (size_t k : {3u, 4u, 5u}) {
        auto n = static_cast<Qubit>(k + 1); // full width, zero slack
        std::vector<Qubit> controls;
        for (Qubit i = 0; i < k; ++i)
            controls.push_back(i);
        Qubit target = static_cast<Qubit>(k);

        Circuit ref(n);
        ref.add(Gate::mcx(controls, target));

        Circuit raw(n);
        appendMcx(raw, controls, target, AncillaPool{},
                  McxStrategy::Roots);
        // The roots network emits controlled rotations; lower them.
        DecomposeOptions opts;
        opts.lowerToffoli = false;
        opts.allowAncillaAllocation = false;
        Circuit dec = decomposeToPrimitives(raw, opts).circuit;
        EXPECT_EQ(dec.numQubits(), n);
        EXPECT_TRUE(sameUnitary(ref, dec)) << "k=" << k;
    }
}

TEST(Controlled, SingleControlLibraryGates)
{
    std::vector<Gate> gates = {
        Gate(GateKind::Z, {0}, {1}),
        Gate(GateKind::Y, {0}, {1}),
        Gate(GateKind::H, {0}, {1}),
        Gate(GateKind::S, {0}, {1}),
        Gate(GateKind::Sdg, {0}, {1}),
        Gate(GateKind::T, {0}, {1}),
        Gate(GateKind::Tdg, {0}, {1}),
        Gate(GateKind::P, {0}, {1}, 0.7),
        Gate(GateKind::Rz, {0}, {1}, 1.3),
        Gate(GateKind::Rx, {0}, {1}, -0.9),
        Gate(GateKind::Ry, {0}, {1}, 2.1),
    };
    for (const Gate &g : gates) {
        Circuit ref(2);
        ref.add(g);
        Circuit dec(2);
        appendControlledUnitary(dec, g);
        for (const Gate &d : dec) {
            EXPECT_LE(d.numControls(), 1u);
            bool primitive =
                d.numControls() == 0 || d.kind() == GateKind::X;
            EXPECT_TRUE(primitive) << d.toString();
        }
        EXPECT_TRUE(sameUnitary(ref, dec)) << g.toString();
    }
}

TEST(Controlled, MultiControlledGatesViaPass)
{
    std::vector<Gate> gates = {
        Gate(GateKind::Z, {0, 1}, {2}),
        Gate(GateKind::Z, {0, 1, 3}, {2}),
        Gate(GateKind::Y, {0, 2}, {1}),
        Gate(GateKind::H, {1, 2}, {0}),
        Gate(GateKind::S, {0, 1}, {2}),
        Gate(GateKind::T, {0, 1, 2}, {3}),
        Gate(GateKind::P, {0, 1}, {2}, 0.4),
        Gate(GateKind::Rz, {0, 1}, {2}, -1.1),
        Gate(GateKind::Rx, {0, 1}, {2}, 0.8),
        Gate(GateKind::Ry, {0, 1}, {2}, 1.9),
    };
    for (const Gate &g : gates) {
        Qubit n = 0;
        for (Qubit q : g.qubits())
            n = std::max(n, q + 1);
        Circuit ref(n);
        ref.add(g);
        DecomposeOptions opts;
        opts.lowerToffoli = false;
        opts.allowAncillaAllocation = false;
        Circuit dec = decomposeToPrimitives(ref, opts).circuit;
        for (const Gate &d : dec) {
            EXPECT_TRUE(d.numControls() == 0 ||
                        (d.kind() == GateKind::X && d.numControls() <= 2))
                << d.toString();
        }
        EXPECT_TRUE(sameUnitary(ref, dec)) << g.toString();
    }
}

TEST(Controlled, McPhaseMatchesDiagonal)
{
    // MC-phase on 3 wires: e^{i theta} exactly on |111>.
    double theta = 0.9;
    Circuit dec(3);
    appendMcPhase(dec, {0, 1, 2}, theta);
    DecomposeOptions opts;
    opts.lowerToffoli = false;
    opts.allowAncillaAllocation = false;
    Circuit lowered = decomposeToPrimitives(dec, opts).circuit;

    dd::Package pkg;
    dd::Edge e = pkg.buildCircuit(lowered);
    for (int i = 0; i < 8; ++i) {
        Cplx want = i == 7 ? std::polar(1.0, theta) : Cplx(1, 0);
        EXPECT_TRUE(approxEqual(pkg.getEntry(e, i, i, 3), want))
            << "diag " << i;
    }
}

TEST(Pass, FredkinLowering)
{
    Circuit ref(3);
    ref.add(Gate::fredkin(0, 1, 2));
    DecomposeOptions opts;
    opts.lowerToffoli = false;
    Circuit dec = decomposeToPrimitives(ref, opts).circuit;
    EXPECT_TRUE(sameUnitary(ref, dec));
}

TEST(Pass, ProducesPrimitiveLibraryOnly)
{
    Circuit in(6);
    in.addMcx({0, 1, 2, 3}, 4);
    in.add(Gate(GateKind::Z, {0, 1}, {5}));
    in.addSwap(2, 5);
    in.addH(0);

    DecomposeOptions opts;
    DecomposeResult res = decomposeToPrimitives(in, opts);
    for (const Gate &g : res.circuit) {
        bool ok = (g.numControls() == 0 && g.isUnitary() &&
                   g.kind() != GateKind::Swap) ||
                  g.isCnot();
        EXPECT_TRUE(ok) << g.toString();
    }
}

TEST(Pass, CleanAncillaAllocationRespectsCap)
{
    Circuit in(6);
    in.addMcx({0, 1, 2, 3, 4}, 5); // k=5 wants 3 clean ancillas

    DecomposeOptions opts;
    opts.lowerToffoli = false;
    opts.maxQubits = 6; // no room: must fall back to borrowed wires
    DecomposeResult res = decomposeToPrimitives(in, opts);
    EXPECT_EQ(res.circuit.numQubits(), 6u);
    EXPECT_TRUE(res.ancillas.empty());
    EXPECT_TRUE(sameUnitary(in, res.circuit));
}

TEST(Pass, CleanAncillaAllocationGrowsRegister)
{
    Circuit in(6);
    in.addMcx({0, 1, 2, 3, 4}, 5);

    DecomposeOptions opts;
    opts.lowerToffoli = false;
    opts.maxQubits = 16;
    DecomposeResult res = decomposeToPrimitives(in, opts);
    EXPECT_EQ(res.ancillas.size(), 3u);
    EXPECT_TRUE(sameOnCleanAncillas(in, res.circuit, res.ancillas));
}

TEST(Pass, EndToEndCliffordTEquivalence)
{
    Circuit in(5);
    in.addMcx({0, 1, 2}, 3);
    in.addCnot(3, 4);
    in.addMcx({1, 2, 3}, 0);

    DecomposeOptions opts;
    opts.maxQubits = 8;
    DecomposeResult res = decomposeToPrimitives(in, opts);
    // Only 1q + CNOT remain.
    for (const Gate &g : res.circuit) {
        EXPECT_TRUE(g.numControls() == 0 || g.isCnot()) << g.toString();
    }
    EXPECT_TRUE(sameOnCleanAncillas(in, res.circuit, res.ancillas));
}
