// full-pipeline regression: decompose + greedy place + CTR + optimizer + phase-poly
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
t q[0];
cx q[0],q[3];
t q[3];
cx q[1],q[2];
tdg q[3];
cx q[0],q[3];
h q[1];
ccx q[0],q[1],q[2];
t q[2];
cx q[3],q[1];
h q[3];
