// qfuzz reproducer; replay: qsync circuit.qasm --device-file device.txt $(grep -v '^#' flags.txt)
// circuit: random_nct
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
cx q[0],q[3];
