/**
 * @file
 * Tests for the benchmark suites: metadata consistency and functional
 * correctness of the regenerated circuits.
 */

#include <gtest/gtest.h>

#include "bench_circuits/mcx_suite.hpp"
#include "bench_circuits/nct_suite.hpp"
#include "bench_circuits/single_target_suite.hpp"
#include "esop/truth_table.hpp"
#include "sim/statevector.hpp"

using namespace qsyn;
using namespace qsyn::bench;

TEST(SingleTargetSuite, HasTheTwentyFourTable3Functions)
{
    EXPECT_EQ(singleTargetSuite().size(), 24u);
    EXPECT_EQ(singleTargetSuite().front().name, "#1");
    EXPECT_EQ(singleTargetSuite().back().name, "#035f");
}

TEST(SingleTargetSuite, CascadesComputeTheirTruthTables)
{
    for (const auto &bench : singleTargetSuite()) {
        Circuit cascade = buildSingleTargetCascade(bench);
        esop::TruthTable t = esop::TruthTable::fromHex(bench.hex);
        auto n = static_cast<Qubit>(t.numVars());
        ASSERT_GE(cascade.numQubits(), n + 1) << bench.name;

        // Simulate every input; the target wire (index n) must flip
        // exactly when f(input) = 1.
        for (std::uint32_t in = 0; in < t.numRows(); ++in) {
            sim::StateVector sv(cascade.numQubits());
            size_t index = 0;
            for (int i = 0; i < t.numVars(); ++i) {
                if ((in >> i) & 1)
                    index |= size_t{1}
                             << (cascade.numQubits() - 1 - i);
            }
            sv.setBasisState(index);
            sv.apply(cascade);
            size_t target_bit = size_t{1}
                                << (cascade.numQubits() - 1 - n);
            double p1 = 0.0;
            for (size_t j = 0; j < sv.dim(); ++j) {
                if ((j & target_bit) != 0)
                    p1 += std::norm(sv.amp(j));
            }
            EXPECT_NEAR(p1, t.bit(in) ? 1.0 : 0.0, 1e-9)
                << bench.name << " input " << in;
        }
    }
}

TEST(SingleTargetSuite, PrimitiveFormIsCliffordTPlusRotationsFree)
{
    const auto &bench = singleTargetSuite()[2]; // #01
    Circuit primitive = buildSingleTarget(bench);
    for (const Gate &g : primitive) {
        EXPECT_TRUE(g.numControls() == 0 || g.isCnot()) << g.toString();
    }
}

TEST(NctSuite, MetadataMatchesTable5)
{
    const auto &suite = nctSuite();
    ASSERT_EQ(suite.size(), 5u);
    EXPECT_EQ(suite[0].name, "3_17_14");
    EXPECT_EQ(suite[0].qubits, 3u);
    EXPECT_EQ(suite[0].gateCount, 6u);
    EXPECT_EQ(suite[1].name, "fred6");
    EXPECT_EQ(suite[1].gateCount, 3u);
    EXPECT_EQ(suite[2].name, "4_49_17");
    EXPECT_EQ(suite[2].gateCount, 12u);
    EXPECT_EQ(suite[3].largestGate, "T5");
    EXPECT_EQ(suite[4].largestGate, "T4");
    for (const auto &bench : suite) {
        Circuit c = buildNctBenchmark(bench);
        EXPECT_TRUE(c.isNctCascade()) << bench.name;
    }
}

TEST(NctSuite, Fred6IsAControlledSwap)
{
    // The 3-Toffoli reconstruction of fred6 must equal a Fredkin gate.
    Circuit fred = buildNctBenchmark(nctSuite()[1]);
    for (std::uint32_t in = 0; in < 8; ++in) {
        sim::StateVector sv(3);
        sv.setBasisState(in);
        sv.apply(fred);
        // Expected: controlled swap of wires 1,2 on control wire 0
        // (wire 0 = MSB).
        std::uint32_t want = in;
        if (in & 4) {
            std::uint32_t a = (in >> 1) & 1, b = in & 1;
            want = (in & 4) | (b << 1) | a;
        }
        EXPECT_GT(std::abs(sv.amp(want)), 0.99) << "in=" << in;
    }
}

TEST(McxSuite, MatchesTable7Layout)
{
    const auto &suite = mcxSuite();
    ASSERT_EQ(suite.size(), 5u);
    EXPECT_EQ(suite[0].name, "T6_b");
    EXPECT_EQ(suite[4].name, "T10_b");
    for (const auto &bench : suite) {
        ASSERT_EQ(bench.gates.size(), 4u);
        for (size_t g = 0; g < 4; ++g) {
            const auto &[controls, target] = bench.gates[g];
            EXPECT_EQ(controls.size(),
                      static_cast<size_t>(bench.n - 1));
            EXPECT_EQ(controls.front(), 20 * g + 1);
            EXPECT_EQ(target, 20 * g + 25);
        }
    }
    // T8_b gate 1 per Table 7: controls q1..q7, target q25.
    const auto &t8 = suite[2];
    EXPECT_EQ(t8.gates[0].first.back(), 7u);
    EXPECT_EQ(t8.gates[0].second, 25u);
}

TEST(McxSuite, ConsecutiveGatesShareAQubit)
{
    // Table 7 placement: each gate's target is among the next gate's
    // controls (q25 in {q21..}, etc.).
    for (const auto &bench : mcxSuite()) {
        Circuit c = buildMcxBenchmark(bench);
        EXPECT_EQ(c.numQubits(), 96u);
        for (size_t g = 0; g + 1 < 4; ++g) {
            Qubit target = bench.gates[g].second;
            const auto &next_controls = bench.gates[g + 1].first;
            bool shared =
                std::find(next_controls.begin(), next_controls.end(),
                          target) != next_controls.end();
            EXPECT_TRUE(shared) << bench.name << " gate " << g;
        }
    }
}
