/**
 * @file
 * Error-path tests for the installed tools (qsync, qverify, qsim),
 * run as real subprocesses: every malformed invocation must exit with
 * a nonzero code and a diagnostic on stderr — never a crash, never an
 * uncaught exception, never silence.
 *
 * The tool directory arrives via the QSYN_TOOL_DIR environment
 * variable (set by tests/CMakeLists.txt from the build tree).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

struct RunResult
{
    int exitCode = -1;
    std::string output; // stdout + stderr combined
};

/** Run `<tool> <args>` capturing both streams; fails the test hard if
 *  the tool directory is unset or the process cannot be launched. */
RunResult
runTool(const std::string &tool, const std::string &args)
{
    const char *dir = std::getenv("QSYN_TOOL_DIR");
    EXPECT_NE(dir, nullptr)
        << "QSYN_TOOL_DIR not set; run via ctest";
    RunResult res;
    if (!dir)
        return res;
    std::string cmd =
        std::string(dir) + "/" + tool + " " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    if (!pipe)
        return res;
    char buf[512];
    while (fgets(buf, sizeof buf, pipe))
        res.output += buf;
    int status = pclose(pipe);
    if (WIFEXITED(status))
        res.exitCode = WEXITSTATUS(status);
    else
        res.exitCode = 128; // killed by a signal = crash
    return res;
}

/** The invocation must fail in a controlled way: exit code 1 or 2
 *  (diagnosed error), not 0 (silent success) and not >= 126 (signal,
 *  abort, or missing binary). */
void
expectDiagnosedFailure(const RunResult &res, const std::string &needle)
{
    EXPECT_GE(res.exitCode, 1) << res.output;
    EXPECT_LE(res.exitCode, 2) << res.output;
    EXPECT_NE(res.output.find(needle), std::string::npos)
        << "diagnostic missing '" << needle << "' in:\n"
        << res.output;
}

/** Write a scratch file under the test's temp dir; returns its path. */
std::string
scratchFile(const std::string &name, const std::string &content)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "qsyn_cli_errors";
    fs::create_directories(dir);
    fs::path path = dir / name;
    std::ofstream out(path);
    out << content;
    return path.string();
}

const char *kBadQasm = "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[5];\n";

} // namespace

// ---------------------------------------------------------------------
// qsync
// ---------------------------------------------------------------------

TEST(QsyncErrors, UnknownFlag)
{
    expectDiagnosedFailure(runTool("qsync", "--frobnicate"),
                           "unknown option");
}

TEST(QsyncErrors, NoInputFile)
{
    expectDiagnosedFailure(runTool("qsync", ""), "no input file");
}

TEST(QsyncErrors, MissingInputFile)
{
    expectDiagnosedFailure(
        runTool("qsync", "/nonexistent/circuit.qasm"), "error");
}

TEST(QsyncErrors, MalformedQasm)
{
    std::string bad = scratchFile("bad.qasm", kBadQasm);
    expectDiagnosedFailure(runTool("qsync", bad), "error");
}

TEST(QsyncErrors, BadJobsValue)
{
    std::string ok = scratchFile(
        "ok.qasm", "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n");
    expectDiagnosedFailure(runTool("qsync", "--jobs x " + ok),
                           "bad count");
    expectDiagnosedFailure(runTool("qsync", "--jobs -3 " + ok),
                           "bad count");
}

TEST(QsyncErrors, MissingFlagValue)
{
    expectDiagnosedFailure(runTool("qsync", "--device"),
                           "missing value");
}

TEST(QsyncErrors, OutOfRangeAngleIsDiagnosed)
{
    // rz(1e999) used to escape as an uncaught std::out_of_range and
    // kill the process (exit >= 126).
    std::string huge = scratchFile(
        "huge_angle.qasm",
        "OPENQASM 2.0;\nqreg q[1];\nrz(1e999) q[0];\n");
    expectDiagnosedFailure(runTool("qsync", huge), "1e999");
}

TEST(QsyncErrors, OversizedRegisterIsDiagnosed)
{
    std::string wide = scratchFile(
        "wide.qasm", "OPENQASM 2.0;\nqreg q[99999999999999999999];\n");
    expectDiagnosedFailure(runTool("qsync", wide), "out of range");
}

TEST(QsyncErrors, MalformedRealCountsAreDiagnosed)
{
    std::string real = scratchFile(
        "overflow.real",
        ".numvars 99999999999999999999\n.begin\n.end\n");
    expectDiagnosedFailure(runTool("qsync", real), ".numvars");
}

TEST(QsyncErrors, MalformedPlaCountsAreDiagnosed)
{
    std::string pla = scratchFile(
        "overflow.pla",
        ".i 99999999999999999999\n.o 1\n.type esop\n.e\n");
    expectDiagnosedFailure(runTool("qsync", pla),
                           "input count must be in [1, 62]");
}

TEST(QsyncErrors, DeviceFileErrorsCarryLineAndColumn)
{
    // Bad target token "x" on line 2 starts at column 6; the loader
    // used to report column 0 for every device-file diagnostic.
    std::string dev = scratchFile("bad_column.dev",
                                  "device d 2\n0: 1 x\n");
    std::string ok = scratchFile(
        "ok.qasm", "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n");
    expectDiagnosedFailure(
        runTool("qsync", "--device-file " + dev + " " + ok), "2:6");
}

TEST(QsyncErrors, BadCacheFlagValues)
{
    std::string ok = scratchFile(
        "ok.qasm", "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n");
    expectDiagnosedFailure(
        runTool("qsync", "--cache-max-mb zero " + ok), "bad count");
    expectDiagnosedFailure(
        runTool("qsync", "--cache-max-mb 0 " + ok), "--cache-max-mb");
}

TEST(QsyncErrors, UnknownDevice)
{
    std::string ok = scratchFile(
        "ok.qasm", "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n");
    expectDiagnosedFailure(
        runTool("qsync", "--device not_a_machine " + ok), "error");
}

// ---------------------------------------------------------------------
// qverify
// ---------------------------------------------------------------------

TEST(QverifyErrors, UnknownFlag)
{
    expectDiagnosedFailure(runTool("qverify", "--frobnicate"),
                           "error");
}

TEST(QverifyErrors, OddFileCount)
{
    std::string ok = scratchFile(
        "ok.qasm", "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n");
    expectDiagnosedFailure(runTool("qverify", ok), "error");
}

TEST(QverifyErrors, MissingFile)
{
    expectDiagnosedFailure(
        runTool("qverify", "/nonexistent/a.qasm /nonexistent/b.qasm"),
        "error");
}

TEST(QverifyErrors, MalformedQasm)
{
    std::string bad = scratchFile("bad.qasm", kBadQasm);
    expectDiagnosedFailure(runTool("qverify", bad + " " + bad),
                           "error");
}

TEST(QverifyErrors, BadNumericValues)
{
    std::string ok = scratchFile(
        "ok.qasm", "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n");
    std::string pair = ok + " " + ok;
    expectDiagnosedFailure(
        runTool("qverify", "--jobs many " + pair), "bad count");
    expectDiagnosedFailure(
        runTool("qverify", "--budget 10q " + pair), "bad count");
    expectDiagnosedFailure(
        runTool("qverify", "--ancilla 1,x " + pair), "bad count");
}

// ---------------------------------------------------------------------
// qsim
// ---------------------------------------------------------------------

TEST(QsimErrors, UnknownFlag)
{
    expectDiagnosedFailure(runTool("qsim", "--frobnicate"), "error");
}

TEST(QsimErrors, MissingFile)
{
    expectDiagnosedFailure(runTool("qsim", "/nonexistent/c.qasm"),
                           "error");
}

TEST(QsimErrors, MalformedQasm)
{
    std::string bad = scratchFile("bad.qasm", kBadQasm);
    expectDiagnosedFailure(runTool("qsim", bad), "error");
}

TEST(QsimErrors, BadNumericValues)
{
    std::string ok = scratchFile(
        "ok.qasm", "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[1];\n");
    expectDiagnosedFailure(runTool("qsim", "--top lots " + ok),
                           "bad count");
    expectDiagnosedFailure(
        runTool("qsim", "--threshold tiny " + ok), "bad numeric");
}
