/**
 * @file
 * Tests for parallel batch compilation: the parallelFor primitive,
 * determinism of BatchCompiler across worker counts, per-item error
 * isolation, and the batch.* metrics surface.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "cache/cache.hpp"
#include "cache/fingerprint.hpp"
#include "common/rng.hpp"
#include "core/batch.hpp"
#include "device/registry.hpp"
#include "frontend/qasm_writer.hpp"
#include "ir/random_circuit.hpp"
#include "obs/obs.hpp"

using namespace qsyn;

namespace {

Circuit
makeRandom(int qubits, int gates, std::uint64_t seed)
{
    Rng rng(seed);
    RandomCircuitOptions opts;
    opts.numQubits = static_cast<Qubit>(qubits);
    opts.numGates = static_cast<size_t>(gates);
    opts.maxControls = 2;
    return randomCircuit(rng, opts);
}

std::vector<Circuit>
makeSuite(int n)
{
    std::vector<Circuit> circuits;
    for (int i = 0; i < n; ++i)
        circuits.push_back(makeRandom(4, 20 + 5 * i, 40 + i));
    return circuits;
}

std::string
writeTemp(const std::string &name, const std::string &content)
{
    std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
}

} // namespace

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (size_t jobs : {size_t(0), size_t(1), size_t(3), size_t(16)}) {
        std::vector<std::atomic<int>> hits(97);
        parallelFor(hits.size(), jobs,
                    [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < hits.size(); ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ParallelFor, MoreJobsThanItemsAndEmptyRange)
{
    std::atomic<int> count{0};
    parallelFor(2, 8, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 2);
    parallelFor(0, 4, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 2);
}

TEST(ParallelFor, ResolveJobs)
{
    EXPECT_EQ(resolveJobs(3), 3u);
    EXPECT_GE(resolveJobs(0), 1u); // hardware concurrency, at least 1
}

TEST(BatchCompiler, ResultsAreIdenticalAcrossWorkerCounts)
{
    std::vector<Circuit> circuits = makeSuite(6);
    Device dev = builtinDevice("ibmqx4");

    BatchCompiler seq(dev);
    std::vector<BatchItem> one = seq.compileCircuits(circuits, 1);
    ASSERT_EQ(one.size(), circuits.size());
    EXPECT_EQ(seq.summary().jobs, 1u);

    BatchCompiler par(dev);
    std::vector<BatchItem> four = par.compileCircuits(circuits, 4);
    ASSERT_EQ(four.size(), circuits.size());

    for (size_t i = 0; i < circuits.size(); ++i) {
        ASSERT_TRUE(one[i].ok) << one[i].error;
        ASSERT_TRUE(four[i].ok) << four[i].error;
        // The compiler is deterministic and workers share no state, so
        // the emitted QASM must be byte-identical per input slot.
        EXPECT_FALSE(one[i].qasm.empty());
        EXPECT_EQ(one[i].qasm, four[i].qasm) << "circuit " << i;
        EXPECT_EQ(one[i].result.optimizedM.gates,
                  four[i].result.optimizedM.gates);
    }
    EXPECT_EQ(par.summary().succeeded, circuits.size());
    EXPECT_EQ(par.summary().failed, 0u);
}

TEST(BatchCompiler, SharedAndPrivateManagersEmitIdenticalBytes)
{
    // The shared concurrent package is a verification-side
    // optimization only: with 8 workers racing on one node store, the
    // emitted QASM and stage metrics must still be byte-for-byte what
    // fully-isolated private packages produce.
    std::vector<Circuit> circuits = makeSuite(6);
    Device dev = builtinDevice("ibmqx4");

    BatchCompiler shared(dev);
    shared.setShareManager(true);
    std::vector<BatchItem> a = shared.compileCircuits(circuits, 8);

    BatchCompiler priv(dev);
    priv.setShareManager(false);
    std::vector<BatchItem> b = priv.compileCircuits(circuits, 8);

    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(a[i].ok) << a[i].error;
        ASSERT_TRUE(b[i].ok) << b[i].error;
        EXPECT_FALSE(a[i].qasm.empty());
        EXPECT_EQ(a[i].qasm, b[i].qasm) << "circuit " << i;
        EXPECT_EQ(a[i].result.optimizedM.gates,
                  b[i].result.optimizedM.gates);
    }
    EXPECT_EQ(shared.summary().succeeded, circuits.size());
}

TEST(BatchCompiler, SharedManagerLeavesCacheFingerprintsUnchanged)
{
    // Regression guard for the cache contract: whether verification
    // ran on the shared or a private package is NOT part of the
    // compile fingerprint, so entries stored by one mode are served
    // verbatim to the other.
    std::vector<Circuit> circuits = makeSuite(4);
    Device dev = builtinDevice("ibmqx4");

    std::string dir = ::testing::TempDir() + "batch_share_cache";
    std::filesystem::remove_all(dir);
    cache::CacheConfig cfg;
    cfg.dir = dir;
    cache::CompileCache store(cfg);

    BatchCompiler shared(dev);
    shared.setShareManager(true);
    shared.setCache(&store);
    std::vector<BatchItem> warm = shared.compileCircuits(circuits, 4);
    EXPECT_EQ(store.stats().hits, 0u);
    EXPECT_EQ(store.stats().stores, circuits.size());

    BatchCompiler priv(dev);
    priv.setShareManager(false);
    priv.setCache(&store);
    std::vector<BatchItem> served = priv.compileCircuits(circuits, 4);
    EXPECT_EQ(store.stats().hits, circuits.size());
    for (size_t i = 0; i < circuits.size(); ++i) {
        ASSERT_TRUE(warm[i].ok) << warm[i].error;
        ASSERT_TRUE(served[i].ok) << served[i].error;
        EXPECT_EQ(warm[i].qasm, served[i].qasm) << "circuit " << i;
    }

    // Same claim at the key level: the fingerprint domain is circuit,
    // device, options, salt — nothing the share-manager switch touches.
    for (const Circuit &c : circuits)
        EXPECT_EQ(cache::compileCacheKey(c, dev, shared.options(),
                                         cache::kCacheVersionSalt),
                  cache::compileCacheKey(c, dev, priv.options(),
                                         cache::kCacheVersionSalt));

    std::filesystem::remove_all(dir);
}

TEST(BatchCompiler, CompileFilesIsolatesFailures)
{
    std::string good = writeTemp(
        "batch_good.qasm",
        "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n");
    std::string bad = writeTemp("batch_bad.qasm", "not qasm at all\n");

    BatchCompiler batch(builtinDevice("ibmqx4"));
    std::vector<BatchItem> items = batch.compileFiles(
        {good, "/nonexistent/missing.qasm", bad, good}, 2);
    ASSERT_EQ(items.size(), 4u);
    EXPECT_TRUE(items[0].ok);
    EXPECT_FALSE(items[1].ok);
    EXPECT_FALSE(items[1].error.empty());
    EXPECT_FALSE(items[2].ok);
    EXPECT_TRUE(items[3].ok);
    // Identical inputs compile to identical outputs even when other
    // slots of the batch fail.
    EXPECT_EQ(items[0].qasm, items[3].qasm);
    EXPECT_EQ(batch.summary().succeeded, 2u);
    EXPECT_EQ(batch.summary().failed, 2u);

    std::remove(good.c_str());
    std::remove(bad.c_str());
}

TEST(BatchCompiler, PublishesBatchMetrics)
{
    std::vector<Circuit> circuits = makeSuite(3);
    obs::ScopedSink sink;
    BatchCompiler batch(builtinDevice("ibmqx4"));
    (void)batch.compileCircuits(circuits, 2);
    batch.publishMetrics();

    const obs::MetricsRegistry &m = sink->metrics();
    EXPECT_DOUBLE_EQ(m.gauge("batch.circuits"), 3.0);
    EXPECT_DOUBLE_EQ(m.gauge("batch.succeeded"), 3.0);
    EXPECT_DOUBLE_EQ(m.gauge("batch.failed"), 0.0);
    EXPECT_DOUBLE_EQ(m.gauge("batch.jobs"), 2.0);
    EXPECT_GT(m.gauge("batch.wall_seconds"), 0.0);
    EXPECT_GE(m.gauge("batch.sum_seconds"),
              m.gauge("batch.wall_seconds") * 0.5);
    EXPECT_GT(m.gauge("batch.gates_out"), 0.0);
    // Merged QMDD verification counters from every worker's package.
    EXPECT_GT(m.gauge("batch.qmdd.unique_lookups"), 0.0);
    EXPECT_GT(m.gauge("batch.qmdd.multiplies"), 0.0);
    EXPECT_GT(m.gauge("batch.qmdd.peak_nodes"), 0.0);
    EXPECT_GT(m.gauge("batch.qmdd.unique_hit_rate"), 0.0);
    EXPECT_LE(m.gauge("batch.qmdd.unique_hit_rate"), 1.0);
    EXPECT_DOUBLE_EQ(m.gauge("batch.share_manager"), 1.0);
}

TEST(BatchCompiler, SummaryTimesAreCoherent)
{
    std::vector<Circuit> circuits = makeSuite(4);
    BatchCompiler batch(builtinDevice("ibmqx4"));
    (void)batch.compileCircuits(circuits, 1);
    const BatchSummary &s = batch.summary();
    EXPECT_EQ(s.circuits, 4u);
    EXPECT_GT(s.wallSeconds, 0.0);
    EXPECT_GT(s.sumSeconds, 0.0);
    // Sequentially, per-item times must (roughly) fill the wall time.
    EXPECT_LE(s.sumSeconds, s.wallSeconds * 1.05 + 0.01);
}

TEST(BatchCompiler, JobDeadlineCancelsHugeCircuitCooperatively)
{
    // A deliberately huge circuit: thousands of gates whose full QMDD
    // verification cannot possibly finish in 10 ms. The per-job
    // deadline is polled at the same per-gate safe point as GC, so
    // the item must come back as a diagnosed timeout — not a hang,
    // not a crash, and without poisoning its neighbors.
    std::vector<Circuit> circuits;
    circuits.push_back(makeRandom(4, 12, 7));        // fast
    circuits.push_back(makeRandom(5, 4000, 8));      // doomed
    circuits.push_back(makeRandom(4, 14, 9));        // fast

    BatchCompiler batch(builtinDevice("ibmqx4"));
    batch.setJobDeadline(0.01);
    EXPECT_DOUBLE_EQ(batch.jobDeadline(), 0.01);
    std::vector<BatchItem> items = batch.compileCircuits(circuits, 2);
    ASSERT_EQ(items.size(), 3u);

    EXPECT_FALSE(items[1].ok);
    EXPECT_TRUE(items[1].timedOut) << items[1].error;
    EXPECT_NE(items[1].error.find("deadline"), std::string::npos)
        << items[1].error;
    // Timeouts are user-level outcomes, not internal failures.
    EXPECT_FALSE(items[1].internalError);

    // Neighbors on the same workers were unaffected: a worker whose
    // previous item timed out starts the next one with a fresh budget.
    // (The small items can in principle also hit a 10 ms budget on a
    // loaded machine; accept either outcome but require that any
    // failure is a clean timeout, never an internal error.)
    for (size_t i : {size_t(0), size_t(2)}) {
        if (!items[i].ok) {
            EXPECT_TRUE(items[i].timedOut) << items[i].error;
            EXPECT_FALSE(items[i].internalError);
        }
    }
}

TEST(BatchCompiler, NoDeadlineMeansNoTimeouts)
{
    std::vector<Circuit> circuits = makeSuite(3);
    BatchCompiler batch(builtinDevice("ibmqx4"));
    EXPECT_DOUBLE_EQ(batch.jobDeadline(), 0.0);
    std::vector<BatchItem> items = batch.compileCircuits(circuits, 2);
    for (const BatchItem &item : items) {
        EXPECT_TRUE(item.ok) << item.error;
        EXPECT_FALSE(item.timedOut);
    }
}
