/**
 * @file
 * Tests for the service-grade telemetry layer: histogram bucket
 * boundaries and quantile estimation, Prometheus text exposition,
 * registry behaviour under concurrent writers+readers, the flight
 * recorder (ring semantics, span stacks, crash dumps), and the
 * per-compile resource probe.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/expo.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "obs/rusage.hpp"

#include "test_json_util.hpp"

using namespace qsyn;
using testjson::Json;
using testjson::parseJson;

namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** RAII: flight recording on for a test, reset + off afterwards so
 *  the global ring never leaks state between tests. */
struct ScopedRecording
{
    ScopedRecording()
    {
        obs::flight::reset();
        obs::flight::setRecording(true);
    }
    ~ScopedRecording()
    {
        obs::flight::setRecording(false);
        obs::flight::reset();
    }
};

} // namespace

/* ------------------------------------------------------------------ */
/* Histogram buckets and quantiles                                    */
/* ------------------------------------------------------------------ */

TEST(ObsHistogram, BucketUpperBounds)
{
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(0), 1.0);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(1), 2.0);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(10), 1024.0);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucketUpperBound(20),
                     1048576.0);
}

TEST(ObsHistogram, BucketBoundaryPlacement)
{
    // Bucket i counts samples <= 2^i: a value exactly on a boundary
    // lands in that bucket, one ulp above lands in the next.
    obs::Histogram h;
    h.observe(1.0);   // le=1  -> bucket 0
    h.observe(2.0);   // le=2  -> bucket 1
    h.observe(2.001); // le=4  -> bucket 2
    h.observe(8.0);   // le=8  -> bucket 3
    h.observe(8.001); // le=16 -> bucket 4
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 1u);
    EXPECT_EQ(h.buckets[2], 1u);
    EXPECT_EQ(h.buckets[3], 1u);
    EXPECT_EQ(h.buckets[4], 1u);
    EXPECT_EQ(h.count, 5u);
}

TEST(ObsHistogram, QuantileGolden)
{
    obs::Histogram h;
    h.observe(1.0);
    h.observe(2.0);
    h.observe(4.0);
    // p50: target rank 1.5 falls in bucket le=2 ([1,2]), halfway in.
    EXPECT_NEAR(h.quantile(0.50), 1.5, 1e-9);
    // p99: rank 2.97 falls in bucket le=4 ([2,4]), 97% in.
    EXPECT_NEAR(h.quantile(0.99), 3.94, 1e-9);
    // The extremes are exact, not bucket-estimated.
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(ObsHistogram, QuantileClampsToObservedExtremes)
{
    // A single sample of 5 sits in bucket le=8; interpolation alone
    // would say 8, but max=5 is exact and wins.
    obs::Histogram h;
    h.observe(5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 5.0);
    // Empty histogram: quantiles are 0 by definition.
    obs::Histogram empty;
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
}

TEST(ObsHistogram, MetricsJsonCarriesQuantiles)
{
    obs::MetricsRegistry m;
    for (int i = 1; i <= 100; ++i)
        m.observe("lat", static_cast<double>(i));
    Json v = parseJson(m.toJson());
    const Json &h = v.at("histograms").at("lat");
    EXPECT_TRUE(h.has("p50"));
    EXPECT_TRUE(h.has("p95"));
    EXPECT_TRUE(h.has("p99"));
    // Bucket resolution bounds accuracy; the estimates must at least
    // be ordered and inside the observed range.
    double p50 = h.at("p50").number;
    double p95 = h.at("p95").number;
    double p99 = h.at("p99").number;
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p99, 100.0);
}

/* ------------------------------------------------------------------ */
/* Prometheus exposition                                              */
/* ------------------------------------------------------------------ */

TEST(ObsPrometheus, NameSanitization)
{
    EXPECT_EQ(obs::promName("compile.latency_us"),
              "qsyn_compile_latency_us");
    EXPECT_EQ(obs::promName("route.swaps_inserted"),
              "qsyn_route_swaps_inserted");
    EXPECT_EQ(obs::promName("weird-name with spaces"),
              "qsyn_weird_name_with_spaces");
}

TEST(ObsPrometheus, GoldenPage)
{
    obs::MetricsRegistry m;
    m.addCounter("a.count", 3);
    m.setGauge("g", 2.5);
    m.observe("h", 1.0);
    m.observe("h", 2.0);
    EXPECT_EQ(m.toPrometheus(),
              "# TYPE qsyn_a_count_total counter\n"
              "qsyn_a_count_total 3\n"
              "# TYPE qsyn_g gauge\n"
              "qsyn_g 2.5\n"
              "# TYPE qsyn_h histogram\n"
              "qsyn_h_bucket{le=\"1\"} 1\n"
              "qsyn_h_bucket{le=\"2\"} 2\n"
              "qsyn_h_bucket{le=\"+Inf\"} 2\n"
              "qsyn_h_sum 3\n"
              "qsyn_h_count 2\n");
}

TEST(ObsPrometheus, CounterTotalSuffixNotDoubled)
{
    obs::MetricsRegistry m;
    m.addCounter("requests_total", 1);
    std::string page = m.toPrometheus();
    EXPECT_NE(page.find("qsyn_requests_total 1"), std::string::npos);
    EXPECT_EQ(page.find("_total_total"), std::string::npos);
}

TEST(ObsPrometheus, HistogramBucketsAreCumulative)
{
    obs::MetricsRegistry m;
    for (int i = 0; i < 10; ++i)
        m.observe("x", 1.0); // all in bucket le=1
    m.observe("x", 100.0);   // bucket le=128
    std::string page = m.toPrometheus();
    // The cumulative count never decreases and every bucket up to the
    // one holding the last sample is emitted.
    EXPECT_NE(page.find("qsyn_x_bucket{le=\"1\"} 10"),
              std::string::npos);
    EXPECT_NE(page.find("qsyn_x_bucket{le=\"128\"} 11"),
              std::string::npos);
    EXPECT_NE(page.find("qsyn_x_bucket{le=\"+Inf\"} 11"),
              std::string::npos);
    EXPECT_NE(page.find("qsyn_x_count 11"), std::string::npos);
}

TEST(ObsPrometheus, WriteFileReportsErrors)
{
    obs::MetricsRegistry m;
    m.addCounter("c");
    std::string error;
    EXPECT_FALSE(obs::writePrometheusFile(
        m, "/nonexistent-dir-qsyn/x.prom", &error));
    EXPECT_FALSE(error.empty());

    std::string path = ::testing::TempDir() + "qsyn_expo_test.prom";
    ASSERT_TRUE(obs::writePrometheusFile(m, path, &error)) << error;
    std::string page = slurp(path);
    EXPECT_NE(page.find("qsyn_c_total 1"), std::string::npos);
    std::remove(path.c_str());
}

/* ------------------------------------------------------------------ */
/* Registry under concurrency                                         */
/* ------------------------------------------------------------------ */

TEST(ObsMetricsStress, ConcurrentWritersAndExporters)
{
    obs::MetricsRegistry m;
    constexpr int kThreads = 4;
    constexpr int kOps = 2000;
    std::atomic<bool> stop{false};

    // Exporters hammer the snapshot paths while writers mutate; the
    // test passes when nothing tears, deadlocks, or produces an
    // unparseable snapshot.
    std::thread exporter([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            EXPECT_NO_THROW(parseJson(m.toJson()));
            std::string prom = m.toPrometheus();
            EXPECT_TRUE(prom.empty() ||
                        prom.rfind("# TYPE", 0) == 0);
            std::string viaTry;
            if (m.tryToJson(&viaTry)) {
                EXPECT_NO_THROW(parseJson(viaTry));
            }
        }
    });

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&m, t] {
            for (int i = 0; i < kOps; ++i) {
                m.addCounter("stress.counter");
                m.setGauge("stress.gauge", static_cast<double>(i));
                m.observe("stress.hist",
                          static_cast<double>((t * kOps + i) % 257));
            }
        });
    }
    for (std::thread &w : writers)
        w.join();
    stop.store(true, std::memory_order_relaxed);
    exporter.join();

    EXPECT_DOUBLE_EQ(m.counter("stress.counter"),
                     static_cast<double>(kThreads * kOps));
    EXPECT_EQ(m.histogram("stress.hist").count,
              static_cast<std::uint64_t>(kThreads * kOps));
}

TEST(ObsMetricsStress, TryToJsonSucceedsUncontended)
{
    obs::MetricsRegistry m;
    m.addCounter("c", 2);
    std::string out;
    ASSERT_TRUE(m.tryToJson(&out));
    Json v = parseJson(out);
    EXPECT_DOUBLE_EQ(v.at("counters").at("c").number, 2.0);
}

/* ------------------------------------------------------------------ */
/* Flight recorder                                                    */
/* ------------------------------------------------------------------ */

TEST(ObsFlight, RecordingGate)
{
    obs::flight::reset();
    ASSERT_FALSE(obs::flight::recording());
    obs::flight::record(obs::flight::EventKind::Mark, "dropped");
    EXPECT_TRUE(obs::flight::snapshot().empty());

    ScopedRecording rec;
    obs::flight::record(obs::flight::EventKind::Mark, "kept");
    std::vector<obs::flight::Event> events = obs::flight::snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "kept");
    EXPECT_EQ(events[0].kind, obs::flight::EventKind::Mark);
    EXPECT_EQ(events[0].tid, obs::currentThreadId());
}

TEST(ObsFlight, SnapshotIsInSequenceOrderAndRingWraps)
{
    ScopedRecording rec;
    const size_t total = obs::flight::kCapacity + 100;
    for (size_t i = 0; i < total; ++i)
        obs::flight::record(obs::flight::EventKind::Mark, "m",
                            static_cast<double>(i));
    std::vector<obs::flight::Event> events = obs::flight::snapshot();
    ASSERT_EQ(events.size(), obs::flight::kCapacity);
    // Oldest first, strictly increasing seq, and the earliest 100
    // events were overwritten by the wrap.
    EXPECT_EQ(events.front().seq, 101u);
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_EQ(events.back().seq, total);
}

TEST(ObsFlight, LogDetailIsTruncatedNotTorn)
{
    ScopedRecording rec;
    std::string longText(200, 'x');
    obs::flight::record(obs::flight::EventKind::Log, "log", 1.0,
                        longText);
    std::vector<obs::flight::Event> events = obs::flight::snapshot();
    ASSERT_EQ(events.size(), 1u);
    std::string detail = events[0].detail;
    EXPECT_LT(detail.size(), sizeof(events[0].detail));
    EXPECT_EQ(detail, std::string(detail.size(), 'x'));
}

TEST(ObsFlight, SpansFeedRingAndThreadStacks)
{
    ScopedRecording rec;
    obs::flight::nameThreadForCrash("service-test");
    {
        obs::Span outer("outer.work");
        // While the span is open it must be on this thread's stack.
        bool found = false;
        for (const obs::flight::ThreadSpans &t :
             obs::flight::threadSpans()) {
            if (t.tid != obs::currentThreadId())
                continue;
            found = true;
            EXPECT_EQ(t.name, "service-test");
            ASSERT_EQ(t.stack.size(), 1u);
            EXPECT_STREQ(t.stack[0], "outer.work");
        }
        EXPECT_TRUE(found);
    }
    // After the scope closes: begin + end in the ring, empty stack.
    std::vector<obs::flight::Event> events = obs::flight::snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, obs::flight::EventKind::SpanBegin);
    EXPECT_EQ(events[1].kind, obs::flight::EventKind::SpanEnd);
    EXPECT_GE(events[1].value, 0.0); // duration us rides on SpanEnd
    for (const obs::flight::ThreadSpans &t :
         obs::flight::threadSpans()) {
        if (t.tid == obs::currentThreadId()) {
            EXPECT_TRUE(t.stack.empty());
        }
    }
}

TEST(ObsFlight, ConcurrentRecordersNeverTear)
{
    ScopedRecording rec;
    constexpr int kThreads = 4;
    constexpr int kEvents = 5000; // > kCapacity total: forces wraps
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kEvents; ++i)
                obs::flight::record(obs::flight::EventKind::Mark,
                                    "spin", static_cast<double>(i));
        });
    }
    for (std::thread &t : threads)
        t.join();
    std::vector<obs::flight::Event> events = obs::flight::snapshot();
    ASSERT_LE(events.size(), obs::flight::kCapacity);
    ASSERT_FALSE(events.empty());
    for (size_t i = 1; i < events.size(); ++i)
        EXPECT_GT(events[i].seq, events[i - 1].seq);
    for (const obs::flight::Event &e : events)
        EXPECT_STREQ(e.name, "spin"); // no torn payloads
}

TEST(ObsFlight, WriteCrashDumpProducesParseableJson)
{
    ScopedRecording rec;
    std::string dir = ::testing::TempDir() + "qsyn_crash_test";
    obs::flight::CrashConfig config;
    config.dir = dir;
    obs::flight::installCrashHandler(config);
    obs::flight::nameThreadForCrash("dump-test");

    obs::ScopedSink sink;
    sink->metrics().addCounter("dump.counter", 7);
    obs::Span span("dump.span");
    std::string path = obs::flight::writeCrashDump("TEST");
    span.finish();

    ASSERT_FALSE(path.empty());
    Json v = parseJson(slurp(path));
    EXPECT_DOUBLE_EQ(v.at("qsyn_crash_version").number, 1.0);
    EXPECT_EQ(v.at("signal").str, "TEST");
    EXPECT_GT(v.at("pid").number, 0.0);
    // The open span shows up in this thread's crash stack.
    const Json &spans = v.at("thread_spans");
    bool sawStack = false;
    for (const auto &[tid, entry] : spans.object) {
        if (entry.at("name").str != "dump-test")
            continue;
        ASSERT_EQ(entry.at("stack").array.size(), 1u);
        EXPECT_EQ(entry.at("stack").array[0].str, "dump.span");
        sawStack = true;
    }
    EXPECT_TRUE(sawStack);
    // The ring (span begin at least) and the metrics snapshot landed.
    EXPECT_FALSE(v.at("flight_recorder").array.empty());
    EXPECT_DOUBLE_EQ(
        v.at("metrics").at("counters").at("dump.counter").number, 7.0);
    std::remove(path.c_str());
}

/* ------------------------------------------------------------------ */
/* Resource accounting                                                */
/* ------------------------------------------------------------------ */

TEST(ObsResources, ProbeSamplesPlausibleValues)
{
    obs::ResourceProbe probe;
    // Burn a little CPU so the counters have something to see.
    volatile double x = 1.0;
    for (int i = 0; i < 2000000; ++i)
        x = x * 1.0000001 + 0.5;
    obs::ResourceUsage u = probe.sample();
    EXPECT_TRUE(u.valid);
    EXPECT_GT(u.wallSeconds, 0.0);
    EXPECT_GE(u.userCpuSeconds, 0.0);
    EXPECT_GE(u.sysCpuSeconds, 0.0);
    EXPECT_GT(u.peakRssKb, 0);
    EXPECT_GE(u.peakRssDeltaKb, 0);
    EXPECT_DOUBLE_EQ(u.cpuSeconds(),
                     u.userCpuSeconds + u.sysCpuSeconds);
}

TEST(ObsResources, AccumulateAddsTimesAndMaxesPeaks)
{
    obs::ResourceUsage a;
    a.wallSeconds = 1.0;
    a.userCpuSeconds = 0.5;
    a.sysCpuSeconds = 0.25;
    a.peakRssDeltaKb = 10;
    a.peakRssKb = 100;
    a.qmddPeakNodes = 50;
    a.qmddArenaBytes = 4096;
    a.valid = true;

    obs::ResourceUsage b;
    b.wallSeconds = 2.0;
    b.userCpuSeconds = 1.5;
    b.sysCpuSeconds = 0.75;
    b.peakRssDeltaKb = 5;
    b.peakRssKb = 200;
    b.qmddPeakNodes = 30;
    b.qmddArenaBytes = 8192;
    b.valid = true;

    a.accumulate(b);
    EXPECT_DOUBLE_EQ(a.wallSeconds, 3.0);
    EXPECT_DOUBLE_EQ(a.userCpuSeconds, 2.0);
    EXPECT_DOUBLE_EQ(a.sysCpuSeconds, 1.0);
    EXPECT_EQ(a.peakRssDeltaKb, 15);
    EXPECT_EQ(a.peakRssKb, 200);     // max, not sum
    EXPECT_EQ(a.qmddPeakNodes, 50u); // max, not sum
    EXPECT_EQ(a.qmddArenaBytes, 8192u);
    EXPECT_TRUE(a.valid);
}

TEST(ObsResources, ObserveFollowsMicrosecondRule)
{
    obs::MetricsRegistry m;
    obs::ResourceUsage u;
    u.wallSeconds = 0.5;
    u.userCpuSeconds = 0.25;
    u.sysCpuSeconds = 0.125;
    u.peakRssDeltaKb = 12;
    u.qmddPeakNodes = 99;
    u.valid = true;
    obs::observeResourceUsage(m, "compile", u);

    // Durations land in *_us histograms as microseconds — 0.5 s must
    // not collapse into the le=1 bucket as "0.5".
    obs::Histogram lat = m.histogram("compile.latency_us");
    ASSERT_EQ(lat.count, 1u);
    EXPECT_DOUBLE_EQ(lat.sum, 500000.0);
    EXPECT_DOUBLE_EQ(m.histogram("compile.user_cpu_us").sum, 250000.0);
    EXPECT_DOUBLE_EQ(m.histogram("compile.sys_cpu_us").sum, 125000.0);
    EXPECT_DOUBLE_EQ(m.histogram("compile.peak_rss_delta_kb").sum,
                     12.0);
    EXPECT_DOUBLE_EQ(m.histogram("compile.qmdd_peak_nodes").sum, 99.0);
}
