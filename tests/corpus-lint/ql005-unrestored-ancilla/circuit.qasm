OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[2];
cz q[2],q[1];
