OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
x q[0];
x q[0];
x q[0];
x q[0];
cx q[0],q[1];
