OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
ccx q[0],q[1],q[2];
h q[0];
