/**
 * @file
 * Tests for placement and routing (CTR and the sabre lookahead
 * router): routed circuits must use only native CNOT directions and
 * stay exactly equivalent to their inputs, and the two strategies
 * must agree with each other on every device in the registry.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "device/registry.hpp"
#include "ir/random_circuit.hpp"
#include "qmdd/equivalence.hpp"
#include "route/ctr.hpp"
#include "route/placement.hpp"
#include "route/sabre.hpp"

using namespace qsyn;
using namespace qsyn::route;

namespace {

/** Every CNOT must sit on a native directed edge. */
void
expectLegal(const Circuit &circuit, const Device &device)
{
    for (const Gate &g : circuit) {
        if (g.isCnot()) {
            EXPECT_TRUE(
                device.coupling().hasEdge(g.controls()[0], g.target()))
                << g.toString() << " illegal on " << device.name();
        } else if (g.kind() != GateKind::Barrier) {
            EXPECT_LE(g.numQubits(), 1u) << g.toString();
        }
    }
}

bool
sameUnitary(const Circuit &a, const Circuit &b)
{
    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    return dd::isEquivalent(checker.check(a, b));
}

} // namespace

TEST(Ctr, NativeCnotPassesThrough)
{
    Device dev = makeIbmqx2(); // 0 -> 1 available
    Circuit c(5);
    c.addCnot(0, 1);
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats);
    EXPECT_EQ(routed.size(), 1u);
    EXPECT_EQ(stats.nativeCnots, 1u);
    EXPECT_EQ(stats.reroutedCnots, 0u);
}

TEST(Ctr, ReversedCnotGetsFourHadamards)
{
    Device dev = makeIbmqx2(); // 1 -> 0 NOT available, 0 -> 1 is
    Circuit c(5);
    c.addCnot(1, 0);
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats);
    EXPECT_EQ(routed.size(), 5u); // Fig. 6: 4 H + 1 CNOT
    EXPECT_EQ(stats.reversedCnots, 1u);
    expectLegal(routed, dev);
    EXPECT_TRUE(sameUnitary(c, routed));
}

TEST(Ctr, PaperFigure5Example)
{
    // Fig. 5: CNOT with q5 control, q10 target on ibmqx3 needs
    // rerouting; the paper's shortest route uses two SWAPs
    // (q5<->q12, q12<->q11), then CNOT q11 -> q10, then swap back.
    Device dev = makeIbmqx3();
    EXPECT_FALSE(dev.coupling().hasUndirectedEdge(5, 10));
    auto path = dev.coupling().shortestPathToNeighbor(5, 10);
    ASSERT_EQ(path.size(), 3u); // q5 -> q12 -> q11: two SWAPs
    EXPECT_EQ(path[0], 5u);

    Circuit c(16);
    c.addCnot(5, 10);
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats);
    EXPECT_EQ(stats.reroutedCnots, 1u);
    EXPECT_EQ(stats.swapsInserted, 4u); // 2 out + 2 back
    expectLegal(routed, dev);
    EXPECT_TRUE(sameUnitary(c, routed));
}

TEST(Ctr, DisconnectedQubitsThrow)
{
    // A custom map with an unreachable island.
    CouplingMap map(4);
    map.addEdge(0, 1);
    map.addEdge(2, 3);
    Device dev("island", 4, map);
    Circuit c(4);
    c.addCnot(0, 3);
    EXPECT_THROW(routeCircuit(c, dev), MappingError);
}

TEST(Ctr, TooWideCircuitThrows)
{
    Device dev = makeIbmqx2();
    Circuit c(6);
    c.addCnot(0, 5);
    EXPECT_THROW(routeCircuit(c, dev), MappingError);
}

TEST(Ctr, RandomCircuitsStayEquivalentOnEveryIbmDevice)
{
    Rng rng(42);
    for (const Device &dev : ibmTableDevices()) {
        RandomCircuitOptions opts;
        opts.numQubits = std::min<Qubit>(5, dev.numQubits());
        opts.numGates = 25;
        Circuit c = randomCircuit(rng, opts);
        RouteStats stats;
        Circuit routed = routeCircuit(c, dev, &stats);
        expectLegal(routed, dev);
        EXPECT_TRUE(sameUnitary(c, routed)) << dev.name();
    }
}

TEST(Ctr, MeetInMiddleVariantAlsoLegalAndEquivalent)
{
    Device dev = makeIbmqx3();
    Circuit c(16);
    c.addCnot(5, 10);
    c.addCnot(0, 9);
    RouteOptions opts;
    opts.meetInMiddle = true;
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats, opts);
    expectLegal(routed, dev);
    EXPECT_TRUE(sameUnitary(c, routed));
    EXPECT_EQ(stats.reroutedCnots, 2u);
}

TEST(Ctr, SimulatorNeedsNoRouting)
{
    Device dev = Device::simulator(8);
    Rng rng(5);
    RandomCircuitOptions opts;
    opts.numQubits = 8;
    opts.numGates = 30;
    Circuit c = randomCircuit(rng, opts);
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats);
    EXPECT_EQ(routed.size(), c.size());
    EXPECT_EQ(stats.reroutedCnots, 0u);
    EXPECT_EQ(stats.reversedCnots, 0u);
}

namespace {

/** Directed 3-qubit line with both arrows pointing at q1: the
 *  smallest device where a reroute must land its CNOT against the
 *  coupling direction (q1 couples *into* nothing). */
Device
makeInwardV()
{
    CouplingMap map(3);
    map.addEdge(0, 1);
    map.addEdge(2, 1);
    return Device("inward_v", 3, map);
}

} // namespace

TEST(Ctr, ExactCountersOnReversedReroute)
{
    // CNOT(0, 2) on the inward V: one SWAP walks the control from q0
    // to q1, the CNOT must then run q1 -> q2 against the only edge
    // (2 -> 1), and one SWAP walks back. The far-end reversal must
    // show up in reversedCnots, not just hInserted.
    Device dev = makeInwardV();
    Circuit c(3);
    c.addCnot(0, 2);
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats);
    EXPECT_EQ(stats.nativeCnots, 0u);
    EXPECT_EQ(stats.reroutedCnots, 1u);
    EXPECT_EQ(stats.swapsInserted, 2u); // 1 out + 1 back
    EXPECT_EQ(stats.reversedCnots, 1u); // the far-end reversal
    EXPECT_EQ(stats.hInserted, 4u);
    expectLegal(routed, dev);
    EXPECT_TRUE(sameUnitary(c, routed));
}

TEST(Ctr, ExactCountersOnReversedRerouteDynamicLayout)
{
    // Same far-end reversal under the persistent-swap variant.
    Device dev = makeInwardV();
    Circuit c(3);
    c.addCnot(0, 2);
    RouteOptions opts;
    opts.dynamicLayout = true;
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats, opts);
    EXPECT_EQ(stats.reroutedCnots, 1u);
    EXPECT_EQ(stats.reversedCnots, 1u);
    EXPECT_EQ(stats.hInserted, 4u);
    EXPECT_EQ(stats.swapsInserted, 2u); // 1 out + 1 restore
    EXPECT_EQ(stats.restoreSwaps, 1u);
    expectLegal(routed, dev);
    EXPECT_TRUE(sameUnitary(c, routed));
}

TEST(Ctr, ExactCountersOnMeetInMiddleReversedLanding)
{
    // Directed chain 2 -> 1 -> 0. CNOT(0, 2) meet-in-middle: path
    // [0, 1, 2], the control stays at q0, the target walks q2 -> q1
    // (one SWAP each way), and the meeting CNOT q0 -> q1 runs against
    // the native 1 -> 0 direction, so it must reverse — and count.
    CouplingMap map(3);
    map.addEdge(1, 0);
    map.addEdge(2, 1);
    Device dev("chain_down", 3, map);
    Circuit c(3);
    c.addCnot(0, 2);
    RouteOptions opts;
    opts.meetInMiddle = true;
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats, opts);
    EXPECT_EQ(stats.reroutedCnots, 1u);
    EXPECT_EQ(stats.reversedCnots, 1u);
    EXPECT_EQ(stats.hInserted, 4u);
    EXPECT_EQ(stats.swapsInserted, 2u);
    expectLegal(routed, dev);
    EXPECT_TRUE(sameUnitary(c, routed));
}

TEST(Placement, IdentityIsIdentity)
{
    Device dev = makeIbmqx5();
    auto p = identityPlacement(10, dev);
    for (Qubit i = 0; i < 10; ++i)
        EXPECT_EQ(p[i], i);
}

TEST(Placement, GreedyIsAPermutationIntoDevice)
{
    Device dev = makeIbmqx5();
    Rng rng(9);
    RandomCircuitOptions opts;
    opts.numQubits = 8;
    opts.numGates = 40;
    Circuit c = randomCircuit(rng, opts);
    auto p = greedyPlacement(c, dev);
    ASSERT_EQ(p.size(), 8u);
    std::vector<bool> seen(dev.numQubits(), false);
    for (Qubit phys : p) {
        ASSERT_LT(phys, dev.numQubits());
        EXPECT_FALSE(seen[phys]);
        seen[phys] = true;
    }
}

TEST(Placement, GreedyPlacementReducesOrMatchesRoutedSize)
{
    // A chain-shaped circuit on ibmqx3 should route with no more
    // gates under greedy placement than under identity.
    Device dev = makeIbmqx3();
    Circuit c(4);
    c.addCnot(0, 1);
    c.addCnot(1, 2);
    c.addCnot(2, 3);
    c.addCnot(0, 3);

    Circuit id_placed =
        applyPlacement(c, identityPlacement(4, dev), dev);
    Circuit gr_placed = applyPlacement(c, greedyPlacement(c, dev), dev);
    Circuit id_routed = routeCircuit(id_placed, dev);
    Circuit gr_routed = routeCircuit(gr_placed, dev);
    EXPECT_LE(gr_routed.size(), id_routed.size());
}

TEST(Placement, ApplyPlacementRemapsWires)
{
    Device dev = makeIbmqx5();
    Circuit c(2);
    c.addCnot(0, 1);
    std::vector<Qubit> p{6, 11};
    Circuit placed = applyPlacement(c, p, dev);
    EXPECT_EQ(placed.numQubits(), dev.numQubits());
    EXPECT_EQ(placed[0].controls()[0], 6u);
    EXPECT_EQ(placed[0].target(), 11u);
}

TEST(DynamicRouting, LegalEquivalentAndFewerSwapsOnHeavyWorkloads)
{
    Device dev = makeIbmqx3();
    Rng rng(19);
    Circuit c(10, "heavy");
    for (int i = 0; i < 25; ++i) {
        Qubit a = static_cast<Qubit>(rng.below(10));
        Qubit b = static_cast<Qubit>(rng.below(10));
        if (a != b)
            c.addCnot(a, b);
    }

    RouteStats ctr_stats;
    Circuit ctr = routeCircuit(c, dev, &ctr_stats);

    RouteOptions dyn_opts;
    dyn_opts.dynamicLayout = true;
    RouteStats dyn_stats;
    Circuit dyn = routeCircuit(c, dev, &dyn_stats, dyn_opts);

    expectLegal(dyn, dev);
    EXPECT_TRUE(sameUnitary(c, dyn));
    // Persistent swaps + one repair epilogue beat per-gate swap-back.
    EXPECT_LT(dyn_stats.swapsInserted, ctr_stats.swapsInserted);
}

TEST(DynamicRouting, SingleQubitGatesFollowTheLayout)
{
    // A CNOT reroute moves wires; a later T on a moved wire must land
    // on the wire's *current* physical home, and the epilogue must
    // still restore the overall unitary.
    Device dev = makeIbmqx3();
    Circuit c(16, "follow");
    c.addCnot(5, 10); // forces swaps through q12/q11
    c.addT(5);
    c.addH(12);
    RouteOptions opts;
    opts.dynamicLayout = true;
    Circuit routed = routeCircuit(c, dev, nullptr, opts);
    expectLegal(routed, dev);
    EXPECT_TRUE(sameUnitary(c, routed));
}

TEST(DynamicRouting, MeasurementsFollowTheLayout)
{
    Device dev = makeIbmqx4();
    Circuit c(5, "measured");
    c.addCnot(0, 4); // needs rerouting on qx4
    c.add(Gate::measure(0, 0));
    RouteOptions opts;
    opts.dynamicLayout = true;
    Circuit routed = routeCircuit(c, dev, nullptr, opts);
    size_t measures = 0;
    for (const Gate &g : routed) {
        if (g.kind() == GateKind::Measure)
            ++measures;
    }
    EXPECT_EQ(measures, 1u);
}

TEST(DynamicRouting, WideCircuitWithManySingleQubitGates)
{
    // The 96-qubit machine with thousands of single-qubit gates: the
    // case the per-gate remap used to make quadratic. Every 1q gate
    // must land on its wire's current physical home and survive the
    // reroutes around it.
    Device dev = makeProposed96();
    Rng rng(77);
    Circuit c(96, "wide");
    size_t t_gates = 0;
    for (int round = 0; round < 40; ++round) {
        for (Qubit q = 0; q < 96; ++q) {
            if (rng.chance(0.5)) {
                c.addT(q);
                ++t_gates;
            }
        }
        Qubit a = static_cast<Qubit>(rng.below(96));
        Qubit b = static_cast<Qubit>(rng.below(96));
        if (a != b)
            c.addCnot(a, b);
    }
    RouteOptions opts;
    opts.dynamicLayout = true;
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats, opts);
    expectLegal(routed, dev);
    size_t routed_t = 0;
    for (const Gate &g : routed) {
        if (g.isTGate())
            ++routed_t;
    }
    EXPECT_EQ(routed_t, t_gates);
    EXPECT_GT(stats.swapsInserted, 0u);
}

namespace {

Circuit
seededCnotHeavy(std::uint64_t seed, Qubit num_qubits, size_t num_gates)
{
    RandomCircuitOptions opts;
    opts.numQubits = num_qubits;
    opts.numGates = num_gates;
    opts.cnotFraction = 0.7;
    opts.seed = seed;
    return randomCircuit(opts);
}

} // namespace

TEST(Sabre, EquivalentToCtrAcrossTheDeviceRegistry)
{
    // The acceptance sweep: >= 50 seeded circuits across every device
    // in the registry; sabre must be legal and QMDD-equivalent to ctr
    // on each (both restore the identity layout, so the two routed
    // circuits must agree as full unitaries).
    size_t cases = 0;
    for (const Device &dev : allBuiltinDevices()) {
        for (std::uint64_t seed = 1; seed <= 7; ++seed) {
            Circuit c = seededCnotHeavy(
                seed * 1031, std::min<Qubit>(6, dev.numQubits()), 24);
            Circuit placed =
                applyPlacement(c, greedyPlacement(c, dev), dev);

            RouteOptions ctr_opts;
            Circuit by_ctr = routeCircuit(placed, dev, nullptr, ctr_opts);
            RouteOptions sabre_opts;
            sabre_opts.router = RouterKind::Sabre;
            RouteStats stats;
            Circuit by_sabre =
                routeCircuit(placed, dev, &stats, sabre_opts);

            expectLegal(by_sabre, dev);
            EXPECT_TRUE(sameUnitary(by_ctr, by_sabre))
                << dev.name() << " seed " << seed;
            ++cases;
        }
    }
    EXPECT_GE(cases, 50u);
}

TEST(Sabre, ReducesSwapsOnSparseTopologies)
{
    // The lookahead heuristic's reason to exist: fewer SWAPs than
    // per-CNOT swap-back routing on line and grid couplings.
    for (const char *name : {"line_16", "grid_16"}) {
        Device dev = builtinDevice(name);
        Circuit c = seededCnotHeavy(0xabcd, 16, 120);
        Circuit placed = applyPlacement(c, greedyPlacement(c, dev), dev);

        RouteStats ctr_stats;
        routeCircuit(placed, dev, &ctr_stats, {});
        RouteOptions opts;
        opts.router = RouterKind::Sabre;
        RouteStats sabre_stats;
        routeCircuit(placed, dev, &sabre_stats, opts);
        EXPECT_LT(sabre_stats.swapsInserted, ctr_stats.swapsInserted)
            << name;
    }
}

TEST(Sabre, MeasuresAndBarriersSurviveRouting)
{
    Device dev = makeIbmqx4();
    Circuit c(5, "mixed");
    c.addCnot(0, 4); // distant on qx4
    c.add(Gate::barrier({0, 1, 2, 3, 4}));
    c.addT(0);
    c.add(Gate::measure(0, 0));
    RouteOptions opts;
    opts.router = RouterKind::Sabre;
    Circuit routed = routeCircuit(c, dev, nullptr, opts);
    expectLegal(routed, dev);
    size_t measures = 0, barriers = 0;
    for (const Gate &g : routed) {
        if (g.kind() == GateKind::Measure)
            ++measures;
        if (g.kind() == GateKind::Barrier)
            ++barriers;
    }
    EXPECT_EQ(measures, 1u);
    EXPECT_EQ(barriers, 1u);
}

TEST(Sabre, FidelityAwareStaysEquivalent)
{
    Device dev = makeIbmqx5();
    dev.attachSyntheticCalibration(0xfeed);
    Circuit c = seededCnotHeavy(99, 6, 30);
    Circuit placed = applyPlacement(c, greedyPlacement(c, dev), dev);
    Circuit by_ctr = routeCircuit(placed, dev, nullptr, {});
    RouteOptions opts;
    opts.router = RouterKind::Sabre;
    opts.fidelityAware = true;
    Circuit by_sabre = routeCircuit(placed, dev, nullptr, opts);
    expectLegal(by_sabre, dev);
    EXPECT_TRUE(sameUnitary(by_ctr, by_sabre));
}

TEST(Sabre, DisconnectedQubitsThrow)
{
    CouplingMap map(4);
    map.addEdge(0, 1);
    map.addEdge(2, 3);
    Device dev("island", 4, map);
    Circuit c(4);
    c.addCnot(0, 3);
    RouteOptions opts;
    opts.router = RouterKind::Sabre;
    EXPECT_THROW(routeCircuit(c, dev, nullptr, opts), MappingError);
}

TEST(Sabre, ZeroWindowStillRoutesCorrectly)
{
    // A degenerate lookahead window (frontier-only scoring) must not
    // change correctness, only SWAP quality.
    Device dev = builtinDevice("line_16");
    Circuit c = seededCnotHeavy(5, 8, 30);
    Circuit placed = applyPlacement(c, greedyPlacement(c, dev), dev);
    Circuit by_ctr = routeCircuit(placed, dev, nullptr, {});
    RouteOptions opts;
    opts.router = RouterKind::Sabre;
    opts.sabreWindow = 0;
    Circuit by_sabre = routeCircuit(placed, dev, nullptr, opts);
    expectLegal(by_sabre, dev);
    EXPECT_TRUE(sameUnitary(by_ctr, by_sabre));
}

TEST(Router, NamesRoundTrip)
{
    EXPECT_STREQ(routerName(RouterKind::Ctr), "ctr");
    EXPECT_STREQ(routerName(RouterKind::Sabre), "sabre");
    RouterKind kind = RouterKind::Ctr;
    EXPECT_TRUE(parseRouterName("sabre", &kind));
    EXPECT_EQ(kind, RouterKind::Sabre);
    EXPECT_TRUE(parseRouterName("ctr", &kind));
    EXPECT_EQ(kind, RouterKind::Ctr);
    EXPECT_FALSE(parseRouterName("astar", &kind));
    EXPECT_EQ(kind, RouterKind::Ctr); // untouched on failure
    EXPECT_STREQ(routerFor(RouterKind::Sabre).name(), "sabre");
    EXPECT_STREQ(routerFor(RouterKind::Ctr).name(), "ctr");
}
