/**
 * @file
 * Tests for placement and CTR routing: routed circuits must use only
 * native CNOT directions and stay exactly equivalent to their inputs.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "device/registry.hpp"
#include "ir/random_circuit.hpp"
#include "qmdd/equivalence.hpp"
#include "route/ctr.hpp"
#include "route/placement.hpp"

using namespace qsyn;
using namespace qsyn::route;

namespace {

/** Every CNOT must sit on a native directed edge. */
void
expectLegal(const Circuit &circuit, const Device &device)
{
    for (const Gate &g : circuit) {
        if (g.isCnot()) {
            EXPECT_TRUE(
                device.coupling().hasEdge(g.controls()[0], g.target()))
                << g.toString() << " illegal on " << device.name();
        } else {
            EXPECT_LE(g.numQubits(), 1u) << g.toString();
        }
    }
}

bool
sameUnitary(const Circuit &a, const Circuit &b)
{
    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    return dd::isEquivalent(checker.check(a, b));
}

} // namespace

TEST(Ctr, NativeCnotPassesThrough)
{
    Device dev = makeIbmqx2(); // 0 -> 1 available
    Circuit c(5);
    c.addCnot(0, 1);
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats);
    EXPECT_EQ(routed.size(), 1u);
    EXPECT_EQ(stats.nativeCnots, 1u);
    EXPECT_EQ(stats.reroutedCnots, 0u);
}

TEST(Ctr, ReversedCnotGetsFourHadamards)
{
    Device dev = makeIbmqx2(); // 1 -> 0 NOT available, 0 -> 1 is
    Circuit c(5);
    c.addCnot(1, 0);
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats);
    EXPECT_EQ(routed.size(), 5u); // Fig. 6: 4 H + 1 CNOT
    EXPECT_EQ(stats.reversedCnots, 1u);
    expectLegal(routed, dev);
    EXPECT_TRUE(sameUnitary(c, routed));
}

TEST(Ctr, PaperFigure5Example)
{
    // Fig. 5: CNOT with q5 control, q10 target on ibmqx3 needs
    // rerouting; the paper's shortest route uses two SWAPs
    // (q5<->q12, q12<->q11), then CNOT q11 -> q10, then swap back.
    Device dev = makeIbmqx3();
    EXPECT_FALSE(dev.coupling().hasUndirectedEdge(5, 10));
    auto path = dev.coupling().shortestPathToNeighbor(5, 10);
    ASSERT_EQ(path.size(), 3u); // q5 -> q12 -> q11: two SWAPs
    EXPECT_EQ(path[0], 5u);

    Circuit c(16);
    c.addCnot(5, 10);
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats);
    EXPECT_EQ(stats.reroutedCnots, 1u);
    EXPECT_EQ(stats.swapsInserted, 4u); // 2 out + 2 back
    expectLegal(routed, dev);
    EXPECT_TRUE(sameUnitary(c, routed));
}

TEST(Ctr, DisconnectedQubitsThrow)
{
    // A custom map with an unreachable island.
    CouplingMap map(4);
    map.addEdge(0, 1);
    map.addEdge(2, 3);
    Device dev("island", 4, map);
    Circuit c(4);
    c.addCnot(0, 3);
    EXPECT_THROW(routeCircuit(c, dev), MappingError);
}

TEST(Ctr, TooWideCircuitThrows)
{
    Device dev = makeIbmqx2();
    Circuit c(6);
    c.addCnot(0, 5);
    EXPECT_THROW(routeCircuit(c, dev), MappingError);
}

TEST(Ctr, RandomCircuitsStayEquivalentOnEveryIbmDevice)
{
    Rng rng(42);
    for (const Device &dev : ibmTableDevices()) {
        RandomCircuitOptions opts;
        opts.numQubits = std::min<Qubit>(5, dev.numQubits());
        opts.numGates = 25;
        Circuit c = randomCircuit(rng, opts);
        RouteStats stats;
        Circuit routed = routeCircuit(c, dev, &stats);
        expectLegal(routed, dev);
        EXPECT_TRUE(sameUnitary(c, routed)) << dev.name();
    }
}

TEST(Ctr, MeetInMiddleVariantAlsoLegalAndEquivalent)
{
    Device dev = makeIbmqx3();
    Circuit c(16);
    c.addCnot(5, 10);
    c.addCnot(0, 9);
    RouteOptions opts;
    opts.meetInMiddle = true;
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats, opts);
    expectLegal(routed, dev);
    EXPECT_TRUE(sameUnitary(c, routed));
    EXPECT_EQ(stats.reroutedCnots, 2u);
}

TEST(Ctr, SimulatorNeedsNoRouting)
{
    Device dev = Device::simulator(8);
    Rng rng(5);
    RandomCircuitOptions opts;
    opts.numQubits = 8;
    opts.numGates = 30;
    Circuit c = randomCircuit(rng, opts);
    RouteStats stats;
    Circuit routed = routeCircuit(c, dev, &stats);
    EXPECT_EQ(routed.size(), c.size());
    EXPECT_EQ(stats.reroutedCnots, 0u);
    EXPECT_EQ(stats.reversedCnots, 0u);
}

TEST(Placement, IdentityIsIdentity)
{
    Device dev = makeIbmqx5();
    auto p = identityPlacement(10, dev);
    for (Qubit i = 0; i < 10; ++i)
        EXPECT_EQ(p[i], i);
}

TEST(Placement, GreedyIsAPermutationIntoDevice)
{
    Device dev = makeIbmqx5();
    Rng rng(9);
    RandomCircuitOptions opts;
    opts.numQubits = 8;
    opts.numGates = 40;
    Circuit c = randomCircuit(rng, opts);
    auto p = greedyPlacement(c, dev);
    ASSERT_EQ(p.size(), 8u);
    std::vector<bool> seen(dev.numQubits(), false);
    for (Qubit phys : p) {
        ASSERT_LT(phys, dev.numQubits());
        EXPECT_FALSE(seen[phys]);
        seen[phys] = true;
    }
}

TEST(Placement, GreedyPlacementReducesOrMatchesRoutedSize)
{
    // A chain-shaped circuit on ibmqx3 should route with no more
    // gates under greedy placement than under identity.
    Device dev = makeIbmqx3();
    Circuit c(4);
    c.addCnot(0, 1);
    c.addCnot(1, 2);
    c.addCnot(2, 3);
    c.addCnot(0, 3);

    Circuit id_placed =
        applyPlacement(c, identityPlacement(4, dev), dev);
    Circuit gr_placed = applyPlacement(c, greedyPlacement(c, dev), dev);
    Circuit id_routed = routeCircuit(id_placed, dev);
    Circuit gr_routed = routeCircuit(gr_placed, dev);
    EXPECT_LE(gr_routed.size(), id_routed.size());
}

TEST(Placement, ApplyPlacementRemapsWires)
{
    Device dev = makeIbmqx5();
    Circuit c(2);
    c.addCnot(0, 1);
    std::vector<Qubit> p{6, 11};
    Circuit placed = applyPlacement(c, p, dev);
    EXPECT_EQ(placed.numQubits(), dev.numQubits());
    EXPECT_EQ(placed[0].controls()[0], 6u);
    EXPECT_EQ(placed[0].target(), 11u);
}

TEST(DynamicRouting, LegalEquivalentAndFewerSwapsOnHeavyWorkloads)
{
    Device dev = makeIbmqx3();
    Rng rng(19);
    Circuit c(10, "heavy");
    for (int i = 0; i < 25; ++i) {
        Qubit a = static_cast<Qubit>(rng.below(10));
        Qubit b = static_cast<Qubit>(rng.below(10));
        if (a != b)
            c.addCnot(a, b);
    }

    RouteStats ctr_stats;
    Circuit ctr = routeCircuit(c, dev, &ctr_stats);

    RouteOptions dyn_opts;
    dyn_opts.dynamicLayout = true;
    RouteStats dyn_stats;
    Circuit dyn = routeCircuit(c, dev, &dyn_stats, dyn_opts);

    expectLegal(dyn, dev);
    EXPECT_TRUE(sameUnitary(c, dyn));
    // Persistent swaps + one repair epilogue beat per-gate swap-back.
    EXPECT_LT(dyn_stats.swapsInserted, ctr_stats.swapsInserted);
}

TEST(DynamicRouting, SingleQubitGatesFollowTheLayout)
{
    // A CNOT reroute moves wires; a later T on a moved wire must land
    // on the wire's *current* physical home, and the epilogue must
    // still restore the overall unitary.
    Device dev = makeIbmqx3();
    Circuit c(16, "follow");
    c.addCnot(5, 10); // forces swaps through q12/q11
    c.addT(5);
    c.addH(12);
    RouteOptions opts;
    opts.dynamicLayout = true;
    Circuit routed = routeCircuit(c, dev, nullptr, opts);
    expectLegal(routed, dev);
    EXPECT_TRUE(sameUnitary(c, routed));
}

TEST(DynamicRouting, MeasurementsFollowTheLayout)
{
    Device dev = makeIbmqx4();
    Circuit c(5, "measured");
    c.addCnot(0, 4); // needs rerouting on qx4
    c.add(Gate::measure(0, 0));
    RouteOptions opts;
    opts.dynamicLayout = true;
    Circuit routed = routeCircuit(c, dev, nullptr, opts);
    size_t measures = 0;
    for (const Gate &g : routed) {
        if (g.kind() == GateKind::Measure)
            ++measures;
    }
    EXPECT_EQ(measures, 1u);
}
