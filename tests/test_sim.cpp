/**
 * @file
 * Unit tests for the state-vector simulator.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "ir/random_circuit.hpp"
#include "sim/statevector.hpp"

using namespace qsyn;
using sim::StateVector;

TEST(StateVectorTest, StartsInZeroState)
{
    StateVector sv(3);
    EXPECT_TRUE(approxEqual(sv.amp(0), Cplx(1, 0)));
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-12);
}

TEST(StateVectorTest, XFlipsBasisState)
{
    StateVector sv(2);
    sv.apply(Gate::x(0)); // qubit 0 = MSB
    EXPECT_TRUE(approxEqual(sv.amp(2), Cplx(1, 0)));
}

TEST(StateVectorTest, HadamardMakesUniform)
{
    StateVector sv(1);
    sv.apply(Gate::h(0));
    EXPECT_NEAR(std::abs(sv.amp(0)), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(sv.probabilityOfOne(0), 0.5, 1e-12);
}

TEST(StateVectorTest, BellState)
{
    StateVector sv(2);
    sv.apply(Gate::h(0));
    sv.apply(Gate::cnot(0, 1));
    EXPECT_NEAR(std::abs(sv.amp(0)), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(sv.amp(3)), 1 / std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(std::abs(sv.amp(1)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(sv.amp(2)), 0.0, 1e-12);
}

TEST(StateVectorTest, ToffoliOnBasisStates)
{
    StateVector sv(3);
    sv.setBasisState(0b110); // controls 0,1 set
    sv.apply(Gate::ccx(0, 1, 2));
    EXPECT_TRUE(approxEqual(sv.amp(0b111), Cplx(1, 0)));

    sv.setBasisState(0b100);
    sv.apply(Gate::ccx(0, 1, 2));
    EXPECT_TRUE(approxEqual(sv.amp(0b100), Cplx(1, 0)));
}

TEST(StateVectorTest, ControlledSwap)
{
    StateVector sv(3);
    sv.setBasisState(0b110);
    sv.apply(Gate::fredkin(0, 1, 2));
    EXPECT_TRUE(approxEqual(sv.amp(0b101), Cplx(1, 0)));
    sv.setBasisState(0b010); // control off: no swap
    sv.apply(Gate::fredkin(0, 1, 2));
    EXPECT_TRUE(approxEqual(sv.amp(0b010), Cplx(1, 0)));
}

TEST(StateVectorTest, NormPreservedOnRandomCircuit)
{
    Rng rng(17);
    RandomCircuitOptions opts;
    opts.numQubits = 6;
    opts.numGates = 200;
    opts.allowRotations = true;
    opts.maxControls = 3;
    Circuit c = randomCircuit(rng, opts);
    StateVector sv(6);
    sv.setRandom(rng);
    sv.apply(c);
    EXPECT_NEAR(sv.normSquared(), 1.0, 1e-9);
}

TEST(StateVectorTest, CircuitThenInverseRestoresState)
{
    Rng rng(21);
    RandomCircuitOptions opts;
    opts.numQubits = 5;
    opts.numGates = 80;
    opts.allowRotations = true;
    Circuit c = randomCircuit(rng, opts);

    StateVector original(5);
    original.setRandom(rng);
    StateVector sv = original;
    sv.apply(c);
    sv.apply(c.inverse());
    EXPECT_TRUE(sv.approxEquals(original, 1e-8));
}

TEST(StateVectorTest, FidelityAndPhase)
{
    Rng rng(31);
    StateVector a(3);
    a.setRandom(rng);
    StateVector b = a;
    EXPECT_NEAR(a.fidelityWith(b), 1.0, 1e-12);
    // Global phase: multiply every amplitude by i.
    for (size_t j = 0; j < b.dim(); ++j)
        b.amp(j) *= Cplx(0, 1);
    EXPECT_FALSE(a.approxEquals(b));
    EXPECT_TRUE(a.equalsUpToPhase(b));
}

TEST(StateVectorTest, BarrierIsIgnoredAndMeasureRejected)
{
    StateVector sv(2);
    sv.apply(Gate::barrier({0, 1}));
    EXPECT_TRUE(approxEqual(sv.amp(0), Cplx(1, 0)));
    EXPECT_THROW(sv.apply(Gate::measure(0, 0)), InternalError);
}
