/**
 * @file
 * Tests for the classical front end: truth tables, Reed-Muller / FPRM
 * synthesis, ESOP minimization, and cascade generation. Cascades are
 * validated functionally: simulating the reversible circuit on every
 * basis input must compute target XOR f(inputs).
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "esop/cascade.hpp"
#include "esop/reed_muller.hpp"
#include "frontend/pla_parser.hpp"
#include "sim/statevector.hpp"

using namespace qsyn;
using namespace qsyn::esop;

namespace {

/** Evaluate f computed by a cascade: wires 0..n-1 inputs, wire n out. */
bool
cascadeOutput(const Circuit &circuit, int num_vars, std::uint32_t input)
{
    sim::StateVector sv(circuit.numQubits());
    // Wire i is the MSB-side bit; build the basis index.
    size_t index = 0;
    for (int i = 0; i < num_vars; ++i) {
        if ((input >> i) & 1)
            index |= size_t{1} << (circuit.numQubits() - 1 - i);
    }
    sv.setBasisState(index);
    sv.apply(circuit);
    // The state stays a basis state (NCT cascade); find it.
    for (size_t j = 0; j < sv.dim(); ++j) {
        if (std::abs(sv.amp(j)) > 0.5) {
            size_t target_bit =
                size_t{1} << (circuit.numQubits() - 1 - num_vars);
            // Inputs must be restored.
            for (int i = 0; i < num_vars; ++i) {
                size_t in_bit =
                    size_t{1} << (circuit.numQubits() - 1 - i);
                EXPECT_EQ((j & in_bit) != 0, ((input >> i) & 1) != 0);
            }
            return (j & target_bit) != 0;
        }
    }
    ADD_FAILURE() << "state not a basis state";
    return false;
}

} // namespace

TEST(TruthTable, FromHexRoundTrip)
{
    TruthTable t = TruthTable::fromHex("013f");
    EXPECT_EQ(t.numVars(), 4);
    EXPECT_EQ(t.toHex(), "013f");
    // 0x013f: rows 0..5 and 8 set.
    EXPECT_TRUE(t.bit(0));
    EXPECT_TRUE(t.bit(5));
    EXPECT_FALSE(t.bit(6));
    EXPECT_TRUE(t.bit(8));
    EXPECT_FALSE(t.bit(15));
}

TEST(TruthTable, SingleDigitPadsToTwoVars)
{
    TruthTable t = TruthTable::fromHex("1");
    EXPECT_EQ(t.numVars(), 2);
    EXPECT_TRUE(t.bit(0));
    EXPECT_FALSE(t.bit(1));
}

TEST(TruthTable, FlippedInputs)
{
    TruthTable t = TruthTable::fromHex("8"); // only row 3 (x0 x1)
    TruthTable f = t.withInputsFlipped(0b11);
    EXPECT_TRUE(f.bit(0));
    EXPECT_FALSE(f.bit(3));
}

TEST(ReedMuller, PprmOfAndIsSingleCube)
{
    // f = x0 x1 (row 3 of 2 vars): PPRM = exactly the monomial x0 x1.
    TruthTable t = TruthTable::fromHex("8");
    EsopForm esop = pprm(t);
    ASSERT_EQ(esop.cubes.size(), 1u);
    EXPECT_EQ(esop.cubes[0].careMask, 0b11u);
    EXPECT_EQ(esop.cubes[0].polarity, 0b11u);
}

TEST(ReedMuller, PprmOfXorIsTwoSingletons)
{
    // f = x0 xor x1 = rows 1, 2 -> hex 6.
    TruthTable t = TruthTable::fromHex("6");
    EsopForm esop = pprm(t);
    EXPECT_EQ(esop.cubes.size(), 2u);
    EXPECT_EQ(esop.toTruthTable(), t);
}

TEST(ReedMuller, PprmRoundTripsEveryThreeVarFunction)
{
    for (std::uint32_t f = 0; f < 256; ++f) {
        TruthTable t = TruthTable::fromFunction(
            3, [&](std::uint32_t row) { return (f >> row) & 1; });
        EXPECT_EQ(pprm(t).toTruthTable(), t) << "f=" << f;
    }
}

TEST(ReedMuller, FprmRoundTripsAllPolarities)
{
    TruthTable t = TruthTable::fromHex("6a"); // arbitrary 3-var function
    for (std::uint64_t p = 0; p < 8; ++p)
        EXPECT_EQ(fprm(t, p).toTruthTable(), t) << "polarity " << p;
}

TEST(ReedMuller, BestFprmNeverWorseThanPprm)
{
    for (std::uint32_t f : {0x96u, 0xe8u, 0x01u, 0x7fu, 0xffu}) {
        TruthTable t = TruthTable::fromFunction(
            3, [&](std::uint32_t row) { return (f >> row) & 1; });
        EXPECT_LE(bestFprm(t).cubes.size(), pprm(t).cubes.size());
        EXPECT_EQ(bestFprm(t).toTruthTable(), t);
    }
}

TEST(ReedMuller, NorFunctionUsesNegativeLiterals)
{
    // f = NOR(x0,x1,x2) (row 0 only): FPRM with all-negative polarity
    // is the single cube !x0 !x1 !x2; PPRM needs 8 cubes.
    TruthTable t = TruthTable::fromHex("01");
    EXPECT_EQ(pprm(t).cubes.size(), 8u);
    EsopForm best = bestFprm(t);
    EXPECT_EQ(best.cubes.size(), 1u);
    EXPECT_EQ(best.toTruthTable(), t);
}

TEST(EsopMinimize, CancelsDuplicates)
{
    EsopForm esop;
    esop.numVars = 2;
    esop.cubes = {{0b11, 0b11}, {0b11, 0b11}};
    minimizeEsop(esop);
    EXPECT_TRUE(esop.cubes.empty());
}

TEST(EsopMinimize, MergesOppositePolarity)
{
    // x0 x1 (+) x0 !x1 = x0.
    EsopForm esop;
    esop.numVars = 2;
    esop.cubes = {{0b11, 0b11}, {0b11, 0b01}};
    TruthTable before = esop.toTruthTable();
    minimizeEsop(esop);
    ASSERT_EQ(esop.cubes.size(), 1u);
    EXPECT_EQ(esop.cubes[0].careMask, 0b01u);
    EXPECT_EQ(esop.toTruthTable(), before);
}

TEST(EsopMinimize, AbsorbsLiteral)
{
    // x0 (+) 1 = !x0.
    EsopForm esop;
    esop.numVars = 1;
    esop.cubes = {{0b1, 0b1}, {0, 0}};
    TruthTable before = esop.toTruthTable();
    minimizeEsop(esop);
    ASSERT_EQ(esop.cubes.size(), 1u);
    EXPECT_EQ(esop.toTruthTable(), before);
}

TEST(Cascade, ComputesTheFunctionOnEveryInput)
{
    for (const char *hex : {"8", "6", "01", "17", "3a", "013f", "0357"}) {
        TruthTable t = TruthTable::fromHex(hex);
        Circuit circuit = synthesizeFunction(t);
        for (std::uint32_t in = 0; in < t.numRows(); ++in) {
            EXPECT_EQ(cascadeOutput(circuit, t.numVars(), in), t.bit(in))
                << "f=" << hex << " input=" << in;
        }
    }
}

TEST(Cascade, PolaritySharingPreservesFunction)
{
    TruthTable t = TruthTable::fromHex("96");
    CascadeOptions shared;
    shared.sharePolarity = true;
    CascadeOptions naive;
    naive.sharePolarity = false;
    Circuit a = synthesizeFunction(t, shared);
    Circuit b = synthesizeFunction(t, naive);
    for (std::uint32_t in = 0; in < t.numRows(); ++in) {
        EXPECT_EQ(cascadeOutput(a, 3, in), t.bit(in));
        EXPECT_EQ(cascadeOutput(b, 3, in), t.bit(in));
    }
    // Sharing must not emit more X toggles than the naive form.
    EXPECT_LE(a.size(), b.size());
}

TEST(Cascade, SingleTargetGateIsNctCascade)
{
    Circuit st = singleTargetGateFromHex("013f");
    EXPECT_TRUE(st.isNctCascade());
    EXPECT_EQ(st.numQubits(), 5u); // 4 controls + target
}

TEST(Cascade, PlaMultiOutput)
{
    // Full adder as an ESOP PLA: sum = a^b^cin, cout = majority.
    const char *pla = ".i 3\n"
                      ".o 2\n"
                      ".type esop\n"
                      "1-- 10\n"
                      "-1- 10\n"
                      "--1 10\n"
                      "11- 01\n"
                      "1-1 01\n"
                      "-11 01\n"
                      ".e\n";
    frontend::PlaFile file = frontend::parsePla(pla);
    EXPECT_TRUE(file.isEsop);
    Circuit circuit = synthesizePla(file);
    EXPECT_EQ(circuit.numQubits(), 5u);

    for (std::uint32_t in = 0; in < 8; ++in) {
        int a = in & 1, b = (in >> 1) & 1, cin = (in >> 2) & 1;
        int sum = a ^ b ^ cin;
        int cout = (a & b) | (a & cin) | (b & cin);

        sim::StateVector sv(5);
        size_t index = 0;
        for (int i = 0; i < 3; ++i) {
            if ((in >> i) & 1)
                index |= size_t{1} << (4 - i);
        }
        sv.setBasisState(index);
        sv.apply(circuit);
        for (size_t j = 0; j < sv.dim(); ++j) {
            if (std::abs(sv.amp(j)) > 0.5) {
                EXPECT_EQ((j >> 1) & 1, static_cast<size_t>(sum));
                EXPECT_EQ(j & 1, static_cast<size_t>(cout));
            }
        }
    }
}

TEST(Cascade, RejectsOverlappingSopPla)
{
    const char *pla = ".i 2\n.o 1\n"
                      "1- 1\n"
                      "11 1\n" // overlaps the first cube
                      ".e\n";
    frontend::PlaFile file = frontend::parsePla(pla);
    EXPECT_THROW(synthesizePla(file), UserError);
}
