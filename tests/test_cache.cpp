/**
 * @file
 * Tests for the persistent compile cache: fingerprint stability and
 * sensitivity, artifact codec round-trips, memory/disk hits, corrupted
 * entry recovery, LRU eviction, version-salt invalidation,
 * single-flight dedup under the batch compiler, and the CLI flags.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <vector>

#include "cache/cache.hpp"
#include "cache/fingerprint.hpp"
#include "cache/serialize.hpp"
#include "cache/store.hpp"
#include "cli/options.hpp"
#include "common/errors.hpp"
#include "core/batch.hpp"
#include "core/compile_cache.hpp"
#include "core/compiler.hpp"
#include "core/report.hpp"
#include "device/registry.hpp"
#include "obs/obs.hpp"

using namespace qsyn;
namespace fs = std::filesystem;

namespace {

/** Fresh scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string &tag)
    {
        path = fs::temp_directory_path() /
               ("qsyn_cache_test_" + tag + "_" +
                std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

Circuit
makeTestCircuit(double angle = 0.25)
{
    Circuit c(3, "cache_case");
    c.addH(0);
    c.addCnot(0, 1);
    c.addCcx(0, 1, 2);
    c.add(Gate::rz(1, angle));
    return c;
}

/** All object files currently in a store directory. */
std::vector<fs::path>
objectFiles(const fs::path &dir)
{
    std::vector<fs::path> files;
    fs::path objects = dir / "objects";
    if (!fs::exists(objects))
        return files;
    for (const auto &entry : fs::recursive_directory_iterator(objects))
        if (entry.is_regular_file())
            files.push_back(entry.path());
    return files;
}

} // namespace

/* ------------------------------------------------------------------ */
/* Fingerprints                                                       */
/* ------------------------------------------------------------------ */

TEST(CacheFingerprintTest, StableAcrossIdenticalInputs)
{
    Circuit a = makeTestCircuit();
    Circuit b = makeTestCircuit();
    Device dev = makeIbmqx5();
    CompileOptions opts;
    EXPECT_EQ(cache::compileCacheKey(a, dev, opts, "salt"),
              cache::compileCacheKey(b, dev, opts, "salt"));
    EXPECT_EQ(cache::compileCacheKey(a, dev, opts, "salt").size(), 32u);
}

TEST(CacheFingerprintTest, SensitiveToEveryKeyComponent)
{
    Circuit a = makeTestCircuit();
    Device dev = makeIbmqx5();
    CompileOptions opts;
    const std::string base = cache::compileCacheKey(a, dev, opts, "salt");

    Circuit changed_gate = makeTestCircuit(0.25000001);
    EXPECT_NE(cache::compileCacheKey(changed_gate, dev, opts, "salt"),
              base);

    Circuit renamed = makeTestCircuit();
    renamed.setName("other_name");
    EXPECT_NE(cache::compileCacheKey(renamed, dev, opts, "salt"), base);

    Device other_dev = makeIbmqx4();
    EXPECT_NE(cache::compileCacheKey(a, other_dev, opts, "salt"), base);

    CompileOptions other_opts;
    other_opts.optimize = !opts.optimize;
    EXPECT_NE(cache::compileCacheKey(a, dev, other_opts, "salt"), base);

    EXPECT_NE(cache::compileCacheKey(a, dev, opts, "salt2"), base);
}

/* ------------------------------------------------------------------ */
/* Artifact codec                                                     */
/* ------------------------------------------------------------------ */

TEST(CacheSerializeTest, CircuitRoundTripsExactly)
{
    Circuit c = makeTestCircuit();
    c.add(Gate::measure(2, 0));
    cache::ByteWriter w;
    cache::encodeCircuit(w, c);
    std::vector<std::uint8_t> bytes = w.take();
    cache::ByteReader r(bytes);
    Circuit back = cache::decodeCircuit(r);
    EXPECT_EQ(back.name(), c.name());
    EXPECT_EQ(back.numQubits(), c.numQubits());
    ASSERT_EQ(back.size(), c.size());
    for (size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(back[i].kind(), c[i].kind());
        EXPECT_EQ(back[i].targets(), c[i].targets());
        EXPECT_EQ(back[i].controls(), c[i].controls());
        EXPECT_EQ(back[i].param(), c[i].param());
    }
}

TEST(CacheSerializeTest, ArtifactRoundTripIsByteIdentical)
{
    Device dev = makeIbmqx5();
    Compiler compiler(dev);
    CachedCompile artifact;
    artifact.result = compiler.compile(makeTestCircuit());
    artifact.qasm = compiler.toQasm(artifact.result);

    CachedCompile back = cache::decodeCachedCompile(
        cache::encodeCachedCompile(artifact));
    EXPECT_EQ(back.qasm, artifact.qasm);
    // Full report JSON, timings included: a disk hit replays these
    // exact bytes.
    EXPECT_EQ(compileReportJson(back.result, dev),
              compileReportJson(artifact.result, dev));
}

TEST(CacheSerializeTest, TruncatedPayloadThrowsError)
{
    Device dev = makeIbmqx5();
    Compiler compiler(dev);
    CachedCompile artifact;
    artifact.result = compiler.compile(makeTestCircuit());
    artifact.qasm = compiler.toQasm(artifact.result);

    std::vector<std::uint8_t> bytes =
        cache::encodeCachedCompile(artifact);
    bytes.resize(bytes.size() / 2);
    EXPECT_THROW(cache::decodeCachedCompile(bytes), Error);
}

/* ------------------------------------------------------------------ */
/* Cache behavior                                                     */
/* ------------------------------------------------------------------ */

TEST(CompileCacheTest, MemoryTierHitsAndCountsComputes)
{
    Device dev = makeIbmqx5();
    CompileOptions opts;
    Circuit input = makeTestCircuit();
    cache::CompileCache cc;
    Compiler compiler(dev, opts);

    int computes = 0;
    auto compute = [&] {
        ++computes;
        CachedCompile artifact;
        artifact.result = compiler.compile(input);
        artifact.qasm = compiler.toQasm(artifact.result);
        return artifact;
    };
    auto first = cc.getOrCompute(input, dev, opts, compute);
    auto second = cc.getOrCompute(input, dev, opts, compute);
    EXPECT_EQ(computes, 1);
    EXPECT_EQ(first.get(), second.get());

    cache::CacheStats stats = cc.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.memoryHits, 1u);
    EXPECT_EQ(stats.memoryEntries, 1u);
}

TEST(CompileCacheTest, DiskTierSurvivesProcessRestart)
{
    TempDir dir("disk");
    Device dev = makeIbmqx5();
    CompileOptions opts;
    Circuit input = makeTestCircuit();

    cache::CacheConfig config;
    config.dir = dir.str();
    std::string qasm;
    {
        cache::CompileCache cc(config);
        Compiler compiler(dev, opts);
        auto artifact = cc.getOrCompute(input, dev, opts, [&] {
            CachedCompile a;
            a.result = compiler.compile(input);
            a.qasm = compiler.toQasm(a.result);
            return a;
        });
        qasm = artifact->qasm;
        EXPECT_EQ(cc.stats().stores, 1u);
        EXPECT_EQ(cc.stats().diskEntries, 1u);
    }
    // A new instance simulates a fresh process: the artifact must come
    // back from disk without recompiling.
    cache::CompileCache cc2(config);
    auto artifact = cc2.getOrCompute(input, dev, opts, [&]() {
        ADD_FAILURE() << "disk hit should not recompile";
        return CachedCompile{};
    });
    EXPECT_EQ(artifact->qasm, qasm);
    EXPECT_EQ(cc2.stats().diskHits, 1u);
    EXPECT_EQ(cc2.stats().hits, 1u);
}

TEST(CompileCacheTest, CorruptedEntriesFallBackToColdCompile)
{
    Device dev = makeIbmqx5();
    CompileOptions opts;
    Circuit input = makeTestCircuit();

    // Corruption mode 1: truncation. Mode 2: a flipped payload bit.
    for (int mode = 0; mode < 2; ++mode) {
        TempDir dir(mode == 0 ? "trunc" : "flip");
        cache::CacheConfig config;
        config.dir = dir.str();
        std::string qasm;
        {
            cache::CompileCache cc(config);
            Compiler compiler(dev, opts);
            qasm = cc.getOrCompute(input, dev, opts, [&] {
                          CachedCompile a;
                          a.result = compiler.compile(input);
                          a.qasm = compiler.toQasm(a.result);
                          return a;
                      })
                       ->qasm;
        }
        auto files = objectFiles(dir.path);
        ASSERT_EQ(files.size(), 1u);
        if (mode == 0) {
            auto size = fs::file_size(files[0]);
            fs::resize_file(files[0], size / 2);
        } else {
            std::ifstream in(files[0], std::ios::binary);
            std::string blob((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
            in.close();
            ASSERT_GT(blob.size(), 8u);
            blob[blob.size() - 8] ^= 0x40;
            std::ofstream out(files[0],
                              std::ios::binary | std::ios::trunc);
            out.write(blob.data(),
                      static_cast<std::streamsize>(blob.size()));
        }

        cache::CompileCache cc(config);
        Compiler compiler(dev, opts);
        int computes = 0;
        auto artifact = cc.getOrCompute(input, dev, opts, [&] {
            ++computes;
            CachedCompile a;
            a.result = compiler.compile(input);
            a.qasm = compiler.toQasm(a.result);
            return a;
        });
        EXPECT_EQ(computes, 1) << "corrupt entry must recompile cold";
        EXPECT_EQ(artifact->qasm, qasm);
        EXPECT_EQ(cc.stats().misses, 1u);
    }
}

TEST(CacheStoreTest, EvictsLeastRecentlyUsedWhenOverBudget)
{
    TempDir dir("evict");
    cache::StoreConfig config;
    config.dir = dir.str();
    config.maxBytes = 4096;
    cache::CacheStore store(config);

    // Three ~1.5 KiB entries against a 4 KiB budget: committing the
    // third must evict the least recently used one.
    std::vector<std::uint8_t> payload(1536, 0xab);
    std::string k1(32, '1'), k2(32, '2'), k3(32, '3');
    store.store(k1, payload);
    store.store(k2, payload);

    // Touch k1 so k2 becomes the LRU victim.
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(store.load(k1, &out));
    store.store(k3, payload);

    EXPECT_EQ(store.evictions(), 1u);
    EXPECT_TRUE(store.load(k1, &out));
    EXPECT_FALSE(store.load(k2, &out));
    EXPECT_TRUE(store.load(k3, &out));
    EXPECT_LE(store.bytes(), config.maxBytes);
}

TEST(CompileCacheTest, VersionSaltInvalidatesOldEntries)
{
    TempDir dir("salt");
    Device dev = makeIbmqx5();
    CompileOptions opts;
    Circuit input = makeTestCircuit();

    cache::CacheConfig config;
    config.dir = dir.str();
    config.versionSalt = "release-1";
    auto compile_once = [&](cache::CompileCache &cc, int *computes) {
        Compiler compiler(dev, opts);
        return cc.getOrCompute(input, dev, opts, [&] {
            ++*computes;
            CachedCompile a;
            a.result = compiler.compile(input);
            a.qasm = compiler.toQasm(a.result);
            return a;
        });
    };

    int computes = 0;
    {
        cache::CompileCache cc(config);
        compile_once(cc, &computes);
    }
    EXPECT_EQ(computes, 1);

    // Same directory, new compiler release: the old artifact must not
    // be replayed.
    config.versionSalt = "release-2";
    cache::CompileCache cc(config);
    compile_once(cc, &computes);
    EXPECT_EQ(computes, 2);
    EXPECT_EQ(cc.stats().misses, 1u);
    EXPECT_EQ(cc.stats().hits, 0u);
}

/* ------------------------------------------------------------------ */
/* Batch integration and single-flight                                */
/* ------------------------------------------------------------------ */

TEST(CompileCacheTest, BatchWorkersComputeIdenticalInputsOnce)
{
    obs::ScopedSink sink;
    Device dev = makeIbmqx5();
    Circuit input = makeTestCircuit();
    // 12 identical circuits over 4 workers: one cold compile, eleven
    // hits (from the memory tier or shared in flight).
    std::vector<Circuit> circuits(12, input);

    cache::CompileCache cc;
    BatchCompiler batch(dev);
    batch.setCache(&cc);
    std::vector<BatchItem> items = batch.compileCircuits(circuits, 4);

    ASSERT_EQ(items.size(), circuits.size());
    for (const BatchItem &item : items) {
        EXPECT_TRUE(item.ok) << item.error;
        EXPECT_EQ(item.qasm, items[0].qasm);
    }
    cache::CacheStats stats = cc.stats();
    EXPECT_EQ(stats.misses, 1u) << "identical inputs must compute once";
    EXPECT_EQ(stats.hits, circuits.size() - 1);
    EXPECT_EQ(stats.memoryHits + stats.singleFlightShared,
              circuits.size() - 1);

    // The same counts must be visible through the obs metrics.
    const obs::MetricsRegistry &m = sink->metrics();
    EXPECT_EQ(m.counter("cache.misses"), 1.0);
    EXPECT_EQ(m.counter("cache.hits"),
              static_cast<double>(circuits.size() - 1));
}

/* ------------------------------------------------------------------ */
/* CLI integration                                                    */
/* ------------------------------------------------------------------ */

TEST(CacheCliTest, FlagsParse)
{
    cli::CliOptions opts = cli::parseCliArguments(
        {"--cache-dir", "/tmp/qc", "--cache-max-mb", "16", "a.qasm"});
    EXPECT_EQ(opts.cacheDir, "/tmp/qc");
    EXPECT_TRUE(opts.useCache);
    EXPECT_EQ(opts.cacheMaxMb, 16u);

    cli::CliOptions off = cli::parseCliArguments({"--no-cache", "a.qasm"});
    EXPECT_FALSE(off.useCache);

    EXPECT_THROW(
        cli::parseCliArguments({"--cache-max-mb", "0", "a.qasm"}),
        UserError);
    EXPECT_THROW(
        cli::parseCliArguments({"--cache-max-mb", "x", "a.qasm"}),
        UserError);
}

TEST(CacheCliTest, WarmRunReportsCacheHit)
{
    TempDir dir("cli");
    fs::path qasm = dir.path / "in.qasm";
    {
        std::ofstream f(qasm);
        f << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
             "qreg q[3];\nh q[0];\ncx q[0],q[1];\n";
    }
    fs::path cache_dir = dir.path / "cache";

    auto run = [&]() {
        std::ostringstream out, err;
        cli::CliOptions opts = cli::parseCliArguments(
            {"--cache-dir", cache_dir.string(), qasm.string()});
        EXPECT_EQ(cli::runCli(opts, out, err), 0);
        return err.str();
    };
    std::string cold = run();
    EXPECT_NE(cold.find("1 miss(es)"), std::string::npos) << cold;
    std::string warm = run();
    EXPECT_NE(warm.find("1 hit(s)"), std::string::npos) << warm;
}
