/**
 * @file
 * Unit tests for the OpenQASM 2.0 front end (lexer, parser, writer).
 */

#include <gtest/gtest.h>

#include <numbers>

#include "common/errors.hpp"
#include "frontend/qasm_lexer.hpp"
#include "frontend/qasm_parser.hpp"
#include "frontend/qasm_writer.hpp"
#include "qmdd/package.hpp"

using namespace qsyn;
using namespace qsyn::frontend;

TEST(QasmLexer, TokenizesBasics)
{
    auto tokens = tokenizeQasm("OPENQASM 2.0;\ncx q[0],q[1]; // c\n");
    ASSERT_GE(tokens.size(), 10u);
    EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
    EXPECT_EQ(tokens[0].text, "OPENQASM");
    EXPECT_EQ(tokens[1].kind, TokenKind::Real);
    EXPECT_EQ(tokens.back().kind, TokenKind::EndOfFile);
}

TEST(QasmLexer, ArrowAndStrings)
{
    auto tokens = tokenizeQasm("measure q[0] -> c[0]; include \"x.inc\";");
    bool saw_arrow = false, saw_string = false;
    for (const auto &t : tokens) {
        saw_arrow |= t.kind == TokenKind::Symbol && t.text == "->";
        saw_string |= t.kind == TokenKind::String && t.text == "x.inc";
    }
    EXPECT_TRUE(saw_arrow);
    EXPECT_TRUE(saw_string);
}

TEST(QasmLexer, RejectsGarbage)
{
    EXPECT_THROW(tokenizeQasm("h q[0]; @"), ParseError);
    EXPECT_THROW(tokenizeQasm("\"unterminated"), ParseError);
}

TEST(QasmParser, BellCircuit)
{
    Circuit c = parseQasm("OPENQASM 2.0;\n"
                          "include \"qelib1.inc\";\n"
                          "qreg q[2];\n"
                          "creg c[2];\n"
                          "h q[0];\n"
                          "cx q[0],q[1];\n"
                          "measure q[0] -> c[0];\n"
                          "measure q[1] -> c[1];\n");
    EXPECT_EQ(c.numQubits(), 2u);
    EXPECT_EQ(c.numCbits(), 2u);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_EQ(c[0].kind(), GateKind::H);
    EXPECT_TRUE(c[1].isCnot());
}

TEST(QasmParser, MultipleRegistersFlatten)
{
    Circuit c = parseQasm("qreg a[2]; qreg b[3]; cx a[1],b[0];");
    EXPECT_EQ(c.numQubits(), 5u);
    EXPECT_EQ(c[0].controls()[0], 1u);
    EXPECT_EQ(c[0].target(), 2u);
}

TEST(QasmParser, Broadcasting)
{
    Circuit c = parseQasm("qreg q[3]; h q;");
    EXPECT_EQ(c.size(), 3u);
    Circuit d = parseQasm("qreg a[3]; qreg b[3]; cx a,b;");
    EXPECT_EQ(d.size(), 3u);
    EXPECT_EQ(d[2].controls()[0], 2u);
    EXPECT_EQ(d[2].target(), 5u);
    // Mixed indexed/broadcast.
    Circuit e = parseQasm("qreg a[1]; qreg b[4]; cx a[0],b;");
    EXPECT_EQ(e.size(), 4u);
    EXPECT_THROW(parseQasm("qreg a[2]; qreg b[3]; cx a,b;"), ParseError);
}

TEST(QasmParser, ParameterExpressions)
{
    using std::numbers::pi;
    Circuit c = parseQasm("qreg q[1];\n"
                          "rz(pi/4) q[0];\n"
                          "rx(-pi) q[0];\n"
                          "u1(2*pi/8 + 0.5) q[0];\n"
                          "ry(cos(0)) q[0];\n");
    ASSERT_EQ(c.size(), 4u);
    EXPECT_NEAR(c[0].param(), pi / 4, 1e-12);
    EXPECT_NEAR(c[1].param(), -pi, 1e-12);
    EXPECT_NEAR(c[2].param(), pi / 4 + 0.5, 1e-12);
    EXPECT_NEAR(c[3].param(), 1.0, 1e-12);
}

TEST(QasmParser, GateDefinitionsExpand)
{
    Circuit c = parseQasm("qreg q[2];\n"
                          "gate mybell a,b { h a; cx a,b; }\n"
                          "mybell q[0],q[1];\n");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].kind(), GateKind::H);
    EXPECT_TRUE(c[1].isCnot());
}

TEST(QasmParser, ParameterizedGateDefinitions)
{
    Circuit c = parseQasm("qreg q[1];\n"
                          "gate twist(t) a { rz(t/2) a; rz(t/2) a; }\n"
                          "twist(1.0) q[0];\n");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_NEAR(c[0].param(), 0.5, 1e-12);
}

TEST(QasmParser, NestedGateDefinitions)
{
    Circuit c = parseQasm("qreg q[2];\n"
                          "gate inner a { h a; }\n"
                          "gate outer a,b { inner a; cx a,b; inner b; }\n"
                          "outer q[0],q[1];\n");
    EXPECT_EQ(c.size(), 3u);
}

TEST(QasmParser, StandardQelibGates)
{
    Circuit c = parseQasm(
        "qreg q[3];\n"
        "id q[0]; x q[0]; y q[0]; z q[0]; h q[0]; s q[0]; sdg q[0];\n"
        "t q[0]; tdg q[0]; cz q[0],q[1]; cy q[0],q[1]; ch q[0],q[1];\n"
        "ccx q[0],q[1],q[2]; swap q[0],q[1]; cswap q[0],q[1],q[2];\n"
        "crz(0.1) q[0],q[1]; cu1(0.2) q[0],q[1]; u2(0,0) q[2];\n"
        "u3(1,2,3) q[2];\n");
    EXPECT_GT(c.size(), 15u);
}

TEST(QasmParser, U3MatchesZYZComposition)
{
    // u3(t,p,l) must equal Rz(p) Ry(t) Rz(l) up to global phase.
    Circuit parsed = parseQasm("qreg q[1]; u3(0.7,0.4,-0.3) q[0];");
    Circuit manual(1);
    manual.add(Gate::rz(0, -0.3));
    manual.add(Gate::ry(0, 0.7));
    manual.add(Gate::rz(0, 0.4));
    dd::Package pkg;
    EXPECT_EQ(pkg.buildCircuit(parsed), pkg.buildCircuit(manual));
}

TEST(QasmParser, Errors)
{
    EXPECT_THROW(parseQasm("qreg q[2]; bogus q[0];"), ParseError);
    EXPECT_THROW(parseQasm("qreg q[2]; h q[5];"), ParseError);
    EXPECT_THROW(parseQasm("h q[0];"), ParseError); // undeclared reg
    EXPECT_THROW(parseQasm("qreg q[1]; reset q[0];"), ParseError);
    EXPECT_THROW(parseQasm("qreg q[1]; if (c == 1) x q[0];"),
                 ParseError);
    EXPECT_THROW(parseQasm("include \"other.inc\";"), ParseError);
    EXPECT_THROW(parseQasm("qreg q[2]; cx q[0];"), ParseError);
    EXPECT_THROW(parseQasm("qreg q[1]; rz() q[0];"), ParseError);
    EXPECT_THROW(parseQasm("qreg q[1]; qreg q[2];"), ParseError);
    EXPECT_THROW(
        parseQasm("qreg q[1]; opaque magic a; magic q[0];"),
        ParseError);
}

TEST(QasmParser, OutOfRangeNumericLiteralsAreParseErrors)
{
    // These used to escape as uncaught std::out_of_range from
    // std::stod/std::stoul and kill the process.
    try {
        parseQasm("qreg q[1];\nrz(1e999) q[0];");
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("1e999"),
                  std::string::npos);
        // The diagnostic must carry the literal's line and column.
        EXPECT_NE(std::string(e.what()).find("line 2:"),
                  std::string::npos);
    }
    EXPECT_THROW(parseQasm("qreg q[99999999999999999999];"),
                 ParseError);
}

TEST(QasmParser, RegisterWidthIsCapped)
{
    // 4096 wires is the supported maximum; one more is a ParseError
    // instead of an allocation bomb.
    EXPECT_NO_THROW(parseQasm("qreg q[4096];"));
    EXPECT_THROW(parseQasm("qreg q[4097];"), ParseError);
}

TEST(QasmParser, Barrier)
{
    Circuit c = parseQasm("qreg q[3]; barrier q; barrier q[0],q[2];");
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].kind(), GateKind::Barrier);
    EXPECT_EQ(c[0].targets().size(), 3u);
    EXPECT_EQ(c[1].targets().size(), 2u);
}

TEST(QasmWriter, EmitsParsableQasm)
{
    Circuit c(3, "demo");
    c.addH(0);
    c.addCnot(0, 1);
    c.addCcx(0, 1, 2);
    c.addT(2);
    c.add(Gate::measure(2, 0));

    std::string qasm = writeQasm(c);
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("ccx q[0],q[1],q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[2] -> c[0];"), std::string::npos);

    Circuit round = parseQasm(qasm);
    EXPECT_EQ(round.numQubits(), 3u);
    EXPECT_EQ(round.size(), c.size());
}

TEST(QasmWriter, RoundTripPreservesUnitary)
{
    Circuit c(3, "rt");
    c.addH(0);
    c.add(Gate::rz(1, 0.25));
    c.addCz(0, 2);
    c.addSwap(1, 2);
    c.add(Gate(GateKind::P, {0}, {1}, 0.7));
    Circuit round = parseQasm(writeQasm(c));

    dd::Package pkg;
    EXPECT_EQ(pkg.buildCircuit(c), pkg.buildCircuit(round));
}

TEST(QasmWriter, RejectsWideMcx)
{
    Circuit c(5);
    c.addMcx({0, 1, 2, 3}, 4);
    EXPECT_THROW(writeQasm(c), UserError);
}

TEST(QasmWriter, MeasureAllOption)
{
    Circuit c(2);
    c.addH(0);
    QasmWriterOptions opts;
    opts.measureAll = true;
    std::string qasm = writeQasm(c, opts);
    EXPECT_NE(qasm.find("measure q[0] -> c[0];"), std::string::npos);
    EXPECT_NE(qasm.find("measure q[1] -> c[1];"), std::string::npos);
}
