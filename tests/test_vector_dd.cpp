/**
 * @file
 * Tests for the vector-QMDD engine: basis states, gate application
 * against the dense simulator, norms/inner products, and DD-based
 * simulation of a compiled 96-qubit circuit (far past the dense
 * simulator's reach).
 */

#include <gtest/gtest.h>

#include "bench_circuits/mcx_suite.hpp"
#include "common/rng.hpp"
#include "core/qsyn.hpp"
#include "ir/random_circuit.hpp"
#include "qmdd/vector.hpp"
#include "sim/statevector.hpp"

using namespace qsyn;
using dd::Edge;
using dd::VectorEngine;

TEST(VectorDd, BasisStatesHaveUnitAmplitude)
{
    dd::Package pkg;
    VectorEngine engine(pkg);
    for (std::uint64_t basis : {0ull, 1ull, 5ull, 7ull}) {
        Edge state = engine.makeBasisState(basis, 3);
        for (std::uint64_t index = 0; index < 8; ++index) {
            Cplx want = index == basis ? Cplx(1, 0) : Cplx(0, 0);
            EXPECT_TRUE(approxEqual(
                engine.amplitude(state, index, 3), want))
                << "basis " << basis << " index " << index;
        }
        EXPECT_NEAR(engine.normSquared(state, 3), 1.0, 1e-12);
    }
}

TEST(VectorDd, AllZeroStateIsOneTerminalEdge)
{
    dd::Package pkg;
    VectorEngine engine(pkg);
    Edge zero96 = engine.makeBasisState(0, 96);
    EXPECT_TRUE(dd::isTerminal(zero96)); // pure identity-skip
    EXPECT_TRUE(approxEqual(engine.amplitude(zero96, 0, 96),
                            Cplx(1, 0)));
}

TEST(VectorDd, GateApplicationMatchesDenseSimulator)
{
    Rng rng(13);
    RandomCircuitOptions opts;
    opts.numQubits = 5;
    opts.numGates = 50;
    opts.maxControls = 3;
    opts.allowRotations = true;
    for (int trial = 0; trial < 6; ++trial) {
        Circuit c = randomCircuit(rng, opts);
        std::uint64_t basis = rng.below(32);

        sim::StateVector sv(5);
        sv.setBasisState(basis);
        sv.apply(c);

        dd::Package pkg;
        VectorEngine engine(pkg);
        Edge state = engine.applyCircuit(
            c, engine.makeBasisState(basis, 5));

        for (std::uint64_t i = 0; i < 32; ++i) {
            EXPECT_TRUE(approxEqual(engine.amplitude(state, i, 5),
                                    sv.amp(i), 1e-9))
                << "trial " << trial << " amp " << i;
        }
        EXPECT_NEAR(engine.normSquared(state, 5), 1.0, 1e-9);
    }
}

TEST(VectorDd, InnerProductMatchesDense)
{
    Rng rng(29);
    RandomCircuitOptions opts;
    opts.numQubits = 4;
    opts.numGates = 30;
    Circuit a = randomCircuit(rng, opts);
    Circuit b = randomCircuit(rng, opts);

    sim::StateVector sa(4), sb(4);
    sa.apply(a);
    sb.apply(b);

    dd::Package pkg;
    VectorEngine engine(pkg);
    Edge ea = engine.applyCircuit(a, engine.makeBasisState(0, 4));
    Edge eb = engine.applyCircuit(b, engine.makeBasisState(0, 4));
    Cplx dd_ip = engine.innerProduct(ea, eb, 4);
    Cplx dense_ip = sa.innerProduct(sb);
    EXPECT_TRUE(approxEqual(dd_ip, dense_ip, 1e-9));
}

TEST(VectorDd, CanonicalStatesShareNodes)
{
    // Preparing the same state along two gate paths yields the same
    // canonical edge.
    dd::Package pkg;
    VectorEngine engine(pkg);
    Circuit a(2);
    a.addX(1);
    Circuit b(2);
    b.addH(1);
    b.addZ(1);
    b.addH(1);
    Edge sa = engine.applyCircuit(a, engine.makeBasisState(0, 2));
    Edge sb = engine.applyCircuit(b, engine.makeBasisState(0, 2));
    EXPECT_EQ(sa, sb);
}

TEST(VectorDd, SimulatesCompiled96QubitCircuitClassically)
{
    // T6_b compiled for the 96-qubit machine: far beyond any dense
    // simulator, easy for the vector DD because the circuit acts
    // classically on basis states. Check the generalized-Toffoli
    // semantics of the *compiled* circuit on targeted inputs.
    const auto &bench = bench::mcxSuite()[0]; // T6_b
    Circuit input = bench::buildMcxBenchmark(bench);

    Device dev = makeProposed96();
    CompileOptions copts;
    copts.verify = VerifyMode::Off; // this test is its own check
    Compiler compiler(dev, copts);
    CompileResult res = compiler.compile(input);

    dd::Package pkg;
    VectorEngine engine(pkg);

    // Helper: basis states beyond 64 qubits are prepared with X gates.
    auto basis_with_ones = [&](const std::vector<Qubit> &ones) {
        Circuit prep(96);
        for (Qubit q : ones)
            prep.addX(q);
        return engine.applyCircuit(prep, engine.makeBasisState(0, 96));
    };

    // Input: all controls of gate 1 (q1..q5) set, everything else 0.
    // Expected output: gate 1 fires and flips its target q25; the
    // other three T6 gates stay inert (their controls include zeros).
    Edge state = engine.applyCircuit(res.optimized,
                                     basis_with_ones({1, 2, 3, 4, 5}));
    Edge expected = basis_with_ones({1, 2, 3, 4, 5, 25});
    EXPECT_NEAR(std::abs(engine.innerProduct(expected, state, 96)), 1.0,
                1e-6);

    // And an input where no gate fires must pass through unchanged.
    Edge inert_in = basis_with_ones({1, 3, 5});
    Edge inert_out = engine.applyCircuit(res.optimized, inert_in);
    EXPECT_NEAR(std::abs(engine.innerProduct(inert_in, inert_out, 96)),
                1.0, 1e-6);
}
