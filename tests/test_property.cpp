/**
 * @file
 * Property-based, parameterized sweeps (gtest TEST_P): compilation of
 * random circuits onto every built-in device must stay verified and
 * legal; every MCX strategy must be exact for every control count; the
 * optimizer must preserve unitaries across random seeds; ESOP
 * synthesis must round-trip random truth tables.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "core/qsyn.hpp"
#include "esop/cascade.hpp"
#include "esop/reed_muller.hpp"
#include "ir/random_circuit.hpp"

using namespace qsyn;

// ---------------------------------------------------------------------
// Random circuits onto every IBM device.
// ---------------------------------------------------------------------

class CompileOnDevice
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(CompileOnDevice, RandomCircuitCompilesLegallyAndVerifies)
{
    const auto &[device_name, seed] = GetParam();
    Device dev = builtinDevice(device_name);
    Rng rng(static_cast<std::uint64_t>(seed));

    RandomCircuitOptions ropts;
    ropts.numQubits = std::min<Qubit>(4, dev.numQubits());
    ropts.numGates = 20;
    ropts.maxControls = 3;
    Circuit input = randomCircuit(rng, ropts);

    Compiler compiler(dev);
    CompileResult res = compiler.compile(input);
    EXPECT_TRUE(res.verified()) << device_name << " seed " << seed;
    for (const Gate &g : res.optimized)
        EXPECT_TRUE(dev.supportsGate(g)) << g.toString();
    EXPECT_LE(res.optimizedM.cost, res.unoptimized.cost);
}

INSTANTIATE_TEST_SUITE_P(
    AllIbmDevices, CompileOnDevice,
    ::testing::Combine(::testing::Values("ibmqx2", "ibmqx3", "ibmqx4",
                                         "ibmqx5", "ibmq_16"),
                       ::testing::Values(1, 2, 3)),
    [](const auto &param_info) {
        return std::get<0>(param_info.param) + "_seed" +
               std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------
// MCX strategies x control counts.
// ---------------------------------------------------------------------

class McxStrategyProperty
    : public ::testing::TestWithParam<
          std::tuple<decompose::McxStrategy, int>>
{
};

TEST_P(McxStrategyProperty, ExactOnItsSupportedPool)
{
    const auto &[strategy, k] = GetParam();
    auto num_controls = static_cast<size_t>(k);

    std::vector<Qubit> controls;
    for (Qubit i = 0; i < num_controls; ++i)
        controls.push_back(i);
    auto target = static_cast<Qubit>(num_controls);

    decompose::AncillaPool pool;
    std::vector<Qubit> clean_wires;
    Qubit total = target + 1;
    using decompose::McxStrategy;
    if (strategy == McxStrategy::CleanVChain) {
        for (size_t i = 0; i < num_controls - 2; ++i) {
            pool.clean.push_back(total);
            clean_wires.push_back(total);
            ++total;
        }
    } else if (strategy == McxStrategy::DirtyVChain) {
        for (size_t i = 0; i < num_controls - 2; ++i)
            pool.dirty.push_back(total++);
    } else if (strategy == McxStrategy::Split) {
        pool.dirty.push_back(total++);
    }

    Circuit ref(total);
    ref.add(Gate::mcx(controls, target));

    Circuit raw(total);
    decompose::appendMcx(raw, controls, target, pool, strategy);
    decompose::DecomposeOptions dopts;
    dopts.lowerToffoli = true;
    dopts.allowAncillaAllocation = false;
    Circuit dec = decompose::decomposeToPrimitives(raw, dopts).circuit;

    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    dd::EquivalenceOptions eopts;
    eopts.ancillaWires = clean_wires;
    EXPECT_TRUE(dd::isEquivalent(checker.check(ref, dec, eopts)))
        << decompose::mcxStrategyName(strategy) << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesByControls, McxStrategyProperty,
    ::testing::Combine(
        ::testing::Values(decompose::McxStrategy::CleanVChain,
                          decompose::McxStrategy::DirtyVChain,
                          decompose::McxStrategy::Split,
                          decompose::McxStrategy::Roots),
        ::testing::Values(3, 4, 5, 6)),
    [](const auto &param_info) {
        std::string name =
            decompose::mcxStrategyName(std::get<0>(param_info.param));
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + "_k" + std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------
// Optimizer preserves random circuits across seeds.
// ---------------------------------------------------------------------

class OptimizerProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(OptimizerProperty, PreservesUnitaryAndNeverRaisesCost)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    RandomCircuitOptions ropts;
    ropts.numQubits = 5;
    ropts.numGates = 80;
    ropts.allowRotations = true;
    Circuit c = randomCircuit(rng, ropts);

    opt::OptimizerOptions opts;
    opt::OptimizeReport report;
    Circuit out = opt::optimizeCircuit(c, opts, &report);
    EXPECT_LE(report.finalCost, report.initialCost);

    dd::Package pkg;
    EXPECT_EQ(pkg.buildCircuit(c), pkg.buildCircuit(out));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerProperty,
                         ::testing::Range(100, 112));

// ---------------------------------------------------------------------
// ESOP synthesis round-trips random truth tables.
// ---------------------------------------------------------------------

class EsopProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(EsopProperty, SynthesisRoundTripsRandomTables)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int vars = 2; vars <= 5; ++vars) {
        esop::TruthTable t = esop::TruthTable::fromFunction(
            vars,
            [&](std::uint32_t) { return rng.chance(0.5); });
        esop::EsopForm form = esop::synthesizeEsop(t);
        EXPECT_EQ(form.toTruthTable(), t) << "vars=" << vars;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EsopProperty,
                         ::testing::Range(200, 210));

// ---------------------------------------------------------------------
// Routing: every (device, seed) random CNOT pattern stays equivalent.
// ---------------------------------------------------------------------

class RoutingProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(RoutingProperty, RoutedNctIsLegalAndEquivalent)
{
    const auto &[device_name, seed] = GetParam();
    Device dev = builtinDevice(device_name);
    Rng rng(static_cast<std::uint64_t>(seed));

    Qubit width = std::min<Qubit>(6, dev.numQubits());
    Circuit c(width, "cnots");
    for (int i = 0; i < 15; ++i) {
        Qubit a = static_cast<Qubit>(rng.below(width));
        Qubit b = static_cast<Qubit>(rng.below(width));
        if (a != b)
            c.addCnot(a, b);
    }
    route::RouteStats stats;
    Circuit routed = route::routeCircuit(c, dev, &stats);
    for (const Gate &g : routed) {
        if (g.isCnot()) {
            EXPECT_TRUE(
                dev.coupling().hasEdge(g.controls()[0], g.target()));
        }
    }
    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    EXPECT_TRUE(dd::isEquivalent(checker.check(c, routed)))
        << device_name;
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndSeeds, RoutingProperty,
    ::testing::Combine(::testing::Values("ibmqx3", "ibmqx5", "ibmq_16"),
                       ::testing::Values(7, 8, 9, 10)),
    [](const auto &param_info) {
        return std::get<0>(param_info.param) + "_seed" +
               std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------
// Fault injection: the verifier must catch random mutations of a
// compiled circuit (soundness of the formal-verification step).
// ---------------------------------------------------------------------

class MutationProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(MutationProperty, VerifierCatchesInjectedFaults)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    Device dev = makeIbmqx4();
    RandomCircuitOptions ropts;
    ropts.numQubits = 4;
    ropts.numGates = 15;
    ropts.maxControls = 2;
    Circuit input = randomCircuit(rng, ropts);

    Compiler compiler(dev);
    CompileResult res = compiler.compile(input);
    ASSERT_TRUE(res.verified());

    Circuit reference =
        res.input.remapped(res.placement, dev.numQubits());

    // Mutations that genuinely change the unitary: inserting a T gate
    // (never identity), or toggling a CNOT's direction.
    for (int mutation = 0; mutation < 4; ++mutation) {
        Circuit corrupted = res.optimized;
        size_t pos = rng.below(corrupted.size() + 1);
        switch (mutation % 2) {
          case 0:
            corrupted.insert(pos,
                             Gate::t(static_cast<Qubit>(rng.below(5))));
            break;
          case 1: {
            // Find a CNOT to flip (guaranteed by routing structure).
            bool flipped = false;
            for (size_t i = 0; i < corrupted.size(); ++i) {
                if (corrupted[i].isCnot()) {
                    Gate g = corrupted[i];
                    corrupted.replace(
                        i, Gate::cnot(g.target(), g.controls()[0]));
                    flipped = true;
                    break;
                }
            }
            if (!flipped)
                continue;
            break;
          }
        }
        dd::Package pkg;
        dd::EquivalenceChecker checker(pkg);
        dd::EquivalenceOptions eopts;
        eopts.ancillaWires = res.ancillas;
        dd::Equivalence verdict =
            checker.check(reference, corrupted, eopts);
        EXPECT_FALSE(dd::isEquivalent(verdict))
            << "mutation " << mutation << " went undetected";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationProperty,
                         ::testing::Range(300, 308));

// ---------------------------------------------------------------------
// Phase-polynomial pass on compiled circuits across devices.
// ---------------------------------------------------------------------

class PhasePolyProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(PhasePolyProperty, NeverWorseAndAlwaysVerified)
{
    const auto &[device_name, seed] = GetParam();
    Device dev = builtinDevice(device_name);
    Rng rng(static_cast<std::uint64_t>(seed));
    Circuit input = randomNctCascade(
        rng, std::min<Qubit>(4, dev.numQubits()), 10, 2);

    CompileOptions plain;
    Compiler plain_compiler(dev, plain);
    CompileResult a = plain_compiler.compile(input);

    CompileOptions poly;
    poly.optimizer.enablePhasePolynomial = true;
    Compiler poly_compiler(dev, poly);
    CompileResult b = poly_compiler.compile(input);

    EXPECT_TRUE(a.verified());
    EXPECT_TRUE(b.verified());
    EXPECT_LE(b.optimizedM.tCount, a.optimizedM.tCount);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndSeeds, PhasePolyProperty,
    ::testing::Combine(::testing::Values("ibmqx2", "ibmqx5"),
                       ::testing::Values(11, 12)),
    [](const auto &param_info) {
        return std::get<0>(param_info.param) + "_seed" +
               std::to_string(std::get<1>(param_info.param));
    });

// ---------------------------------------------------------------------
// Pass-level equivalence: every optimizer pass, run alone, must be
// QMDD-equivalent to its input on seeded random NCT circuits.
// ---------------------------------------------------------------------

class PassEquivalenceProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PassEquivalenceProperty, EachPassAloneIsExactOnRandomNct)
{
    RandomCircuitOptions gen;
    gen.numQubits = 4;
    gen.numGates = 24;
    gen.maxControls = 2;
    gen.gateSet = RandomGateSet::Nct;
    gen.seed = static_cast<std::uint64_t>(GetParam());
    Circuit nct = randomCircuit(gen);

    // Lower to primitives first: the passes operate on the 1q + CNOT
    // level the optimizer actually sees inside the pipeline.
    decompose::DecomposeOptions dopts;
    Circuit lowered = decompose::decomposeToPrimitives(nct, dopts).circuit;

    struct NamedPass
    {
        const char *name;
        bool (*run)(Circuit &);
    };
    const NamedPass passes[] = {
        {"cancellation",
         [](Circuit &c) { return opt::cancelInversePairs(c); }},
        {"rotation_merge",
         [](Circuit &c) { return opt::mergeRotations(c); }},
        {"hadamard_rules",
         [](Circuit &c) { return opt::applyHadamardRules(c, nullptr); }},
        {"window_identity",
         [](Circuit &c) { return opt::removeIdentityWindows(c); }},
        {"phase_polynomial",
         [](Circuit &c) { return opt::mergePhasePolynomial(c); }},
    };
    for (const NamedPass &pass : passes) {
        Circuit rewritten = lowered;
        pass.run(rewritten);
        dd::Package pkg;
        dd::EquivalenceChecker checker(pkg);
        EXPECT_TRUE(
            dd::isEquivalent(checker.check(lowered, rewritten)))
            << pass.name << " broke seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(FiftySeeds, PassEquivalenceProperty,
                         ::testing::Range(400, 450));
