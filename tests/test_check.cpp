/**
 * @file
 * Unit tests of the qsyn::check correctness library: each oracle's
 * pass and fail behavior, failure shrinking and blame attribution, the
 * corpus round-trip, and the fuzzing loop itself.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "check/corpus.hpp"
#include "check/fuzzer.hpp"
#include "check/oracles.hpp"
#include "check/shrink.hpp"
#include "device/registry.hpp"
#include "ir/random_circuit.hpp"

using namespace qsyn;
using namespace qsyn::check;

namespace {

/** A CNOT whose endpoints are distance >= 2 on ibmqx4, so the CTR
 *  router must reroute (and the planted swap-back fault fires). */
Circuit
reroutedCnotInput()
{
    Circuit c(4, "rerouted");
    c.addCnot(0, 3);
    return c;
}

CompileOptions
faultyOptions()
{
    CompileOptions opts;
    opts.routing.testOmitSwapBack = true;
    return opts;
}

} // namespace

// ---------------------------------------------------------------------
// Oracle stack on healthy and broken compiles.
// ---------------------------------------------------------------------

TEST(OracleStack, AllGreenOnHealthyCompile)
{
    Circuit input(3, "toffoli");
    input.addCcx(0, 1, 2);
    input.addH(0);
    input.addCnot(0, 2);

    OracleReport report =
        runAllOracles(input, makeIbmqx4(), CompileOptions{});
    EXPECT_TRUE(report.allPassed()) << report.summary();
    EXPECT_EQ(report.outcomes.size(), 8u);
    EXPECT_EQ(report.firstFailure(), nullptr);
    for (const OracleOutcome &o : report.outcomes)
        EXPECT_FALSE(o.skipped) << oracleName(o.id);
}

TEST(OracleStack, QmddAndStatevectorCatchSwapBackFault)
{
    OracleReport report = runAllOracles(reroutedCnotInput(),
                                        makeIbmqx4(), faultyOptions());
    EXPECT_FALSE(report.allPassed());
    ASSERT_NE(report.firstFailure(), nullptr);
    EXPECT_EQ(report.firstFailure()->id, OracleId::QmddEquivalence);

    bool statevector_failed = false;
    bool legality_passed = false;
    for (const OracleOutcome &o : report.outcomes) {
        if (o.id == OracleId::Statevector)
            statevector_failed = !o.passed && !o.skipped;
        if (o.id == OracleId::Legality)
            legality_passed = o.passed;
    }
    // Two independent oracles agree on the inequivalence; the output
    // is still perfectly legal (that is what makes the bug sneaky).
    EXPECT_TRUE(statevector_failed);
    EXPECT_TRUE(legality_passed);
}

TEST(OracleStack, LegalityCatchesUncoupledCnotAndForeignGate)
{
    Device dev = makeIbmqx4();
    CompileResult result;
    result.input = Circuit(2);
    result.placement = {0, 1};

    // ibmqx4 has no 0 -> 3 coupling in either direction.
    Circuit bad_edge(5);
    bad_edge.addCnot(0, 3);
    result.optimized = bad_edge;
    EXPECT_FALSE(checkLegality(result, dev).passed);

    // SWAP is not in the native transmon library.
    Circuit foreign(5);
    foreign.addSwap(0, 1);
    result.optimized = foreign;
    EXPECT_FALSE(checkLegality(result, dev).passed);

    // A correctly oriented coupling passes.
    Circuit good(5);
    good.addCnot(1, 0);
    result.optimized = good;
    EXPECT_TRUE(checkLegality(result, dev).passed);
}

TEST(OracleStack, CostSanityCatchesDoctoredMetrics)
{
    Circuit input(3);
    input.addCcx(0, 1, 2);
    CompileOptions copts;
    copts.verify = VerifyMode::Off;
    Compiler compiler(makeIbmqx4(), copts);
    CompileResult result = compiler.compile(input);
    ASSERT_TRUE(checkCostSanity(result, copts).passed);

    CompileResult doctored = result;
    doctored.optimizedM.gates += 1;
    EXPECT_FALSE(checkCostSanity(doctored, copts).passed);

    doctored = result;
    doctored.optimizedM.cost = doctored.unoptimized.cost + 5.0;
    EXPECT_FALSE(checkCostSanity(doctored, copts).passed);
}

TEST(OracleStack, DeterminismHoldsAcrossRecompilesAndJobs)
{
    Rng rng(42);
    Circuit input = randomNctCascade(rng, 4, 12, 2);
    OracleOptions oopts;
    oopts.determinismJobs = {1, 2, 4};
    OracleOutcome out = checkDeterminism(input, makeIbmqx2(),
                                         CompileOptions{}, oopts);
    EXPECT_TRUE(out.passed) << out.details;
}

TEST(OracleStack, RunCaseFoldsMappingErrorIntoRejected)
{
    Circuit wide(10);
    wide.addCnot(0, 9);
    CaseOutcome outcome =
        runCase(wide, makeIbmqx4(), CompileOptions{});
    EXPECT_EQ(outcome.status, CaseStatus::Rejected);
    EXPECT_FALSE(outcome.failed());
    EXPECT_FALSE(outcome.error.empty());
}

// ---------------------------------------------------------------------
// Shrinking and blame attribution.
// ---------------------------------------------------------------------

TEST(Shrink, MinimizesFaultyCaseToSingleCnot)
{
    RandomCircuitOptions gen;
    gen.numQubits = 4;
    gen.numGates = 20;
    gen.gateSet = RandomGateSet::Nct;
    gen.seed = 7;
    Circuit input = randomCircuit(gen);

    Device dev = makeIbmqx4();
    CompileOptions opts = faultyOptions();
    // Noise the shrinker must strip. (Not meetInMiddle: that routes
    // through a different code path and would mask the CTR fault.)
    opts.optimizer.enablePhasePolynomial = true;
    ASSERT_TRUE(runCase(input, dev, opts).failed());

    ShrinkResult shrunk = shrinkCase(input, dev, opts);
    EXPECT_LE(shrunk.circuit.size(), 2u);
    EXPECT_GE(shrunk.circuit.size(), 1u);
    // The fault flag is load-bearing and must survive; the unrelated
    // optimizer extension must have been reset.
    EXPECT_TRUE(shrunk.options.routing.testOmitSwapBack);
    EXPECT_FALSE(shrunk.options.optimizer.enablePhasePolynomial);
    // The minimized case still fails.
    EXPECT_TRUE(runCase(shrunk.circuit, dev, shrunk.options).failed());
}

TEST(Shrink, BlameNamesTheRoutingStage)
{
    EXPECT_EQ(blameFirstBrokenStage(reroutedCnotInput(), makeIbmqx4(),
                                    faultyOptions()),
              "route");
}

TEST(Shrink, BlameSaysNoneOnHealthyCompile)
{
    Circuit input(3);
    input.addCcx(0, 1, 2);
    EXPECT_EQ(blameFirstBrokenStage(input, makeIbmqx4(),
                                    CompileOptions{}),
              "none");
}

// ---------------------------------------------------------------------
// Corpus round-trip.
// ---------------------------------------------------------------------

TEST(Corpus, FlagsRoundTripThroughTheCliGrammar)
{
    CompileOptions opts;
    opts.placement = route::PlacementStrategy::Greedy;
    opts.mcxStrategy = decompose::McxStrategy::DirtyVChain;
    opts.routing.meetInMiddle = true;
    opts.routing.testOmitSwapBack = true;
    opts.optimize = false;
    opts.optimizeTechIndependent = false;
    opts.optimizer.enablePhasePolynomial = true;
    opts.optimizer.weights.tWeight = 0.75;

    CompileOptions back =
        compileOptionsFromFlags(compileOptionsToFlags(opts));
    EXPECT_EQ(back.placement, opts.placement);
    EXPECT_EQ(back.mcxStrategy, opts.mcxStrategy);
    EXPECT_EQ(back.routing.meetInMiddle, opts.routing.meetInMiddle);
    EXPECT_EQ(back.routing.testOmitSwapBack,
              opts.routing.testOmitSwapBack);
    EXPECT_EQ(back.optimize, opts.optimize);
    EXPECT_EQ(back.optimizeTechIndependent,
              opts.optimizeTechIndependent);
    EXPECT_EQ(back.optimizer.enablePhasePolynomial,
              opts.optimizer.enablePhasePolynomial);
    EXPECT_DOUBLE_EQ(back.optimizer.weights.tWeight,
                     opts.optimizer.weights.tWeight);

    EXPECT_TRUE(compileOptionsToFlags(CompileOptions{}).empty());
}

TEST(Corpus, SaveLoadReplayRoundTrip)
{
    namespace fs = std::filesystem;
    fs::path dir =
        fs::temp_directory_path() / "qsyn_corpus_roundtrip_test";
    fs::remove_all(dir);

    Reproducer repro;
    repro.name = "toffoli-on-qx4";
    repro.circuit = Circuit(3, "toffoli");
    repro.circuit.addCcx(0, 1, 2);
    repro.circuit.addH(1);
    repro.device = makeIbmqx4();
    repro.options.placement = route::PlacementStrategy::Greedy;
    repro.notes.push_back("round-trip test entry");

    std::string entry = saveReproducer(dir.string(), repro);
    ASSERT_EQ(listCorpus(dir.string()).size(), 1u);

    Reproducer loaded = loadReproducer(entry);
    EXPECT_EQ(loaded.name, "toffoli-on-qx4");
    EXPECT_EQ(loaded.circuit, repro.circuit);
    EXPECT_EQ(loaded.device.name(), "ibmqx4");
    EXPECT_EQ(loaded.device.numQubits(), 5);
    EXPECT_EQ(loaded.options.placement,
              route::PlacementStrategy::Greedy);
    ASSERT_EQ(loaded.notes.size(), 1u);
    EXPECT_EQ(loaded.notes[0], "round-trip test entry");

    CaseOutcome outcome = replayReproducer(loaded);
    EXPECT_EQ(outcome.status, CaseStatus::Ok)
        << outcome.report.summary();

    fs::remove_all(dir);
}

TEST(Corpus, ListCorpusOnMissingDirectoryIsEmpty)
{
    EXPECT_TRUE(listCorpus("/nonexistent/qsyn/corpus").empty());
}

// ---------------------------------------------------------------------
// The fuzzing loop.
// ---------------------------------------------------------------------

TEST(Fuzzer, CleanRunIsGreenAndExercisesEveryOracle)
{
    FuzzOptions fopts;
    fopts.seed = 5;
    fopts.iterations = 12;
    fopts.maxQubits = 4;
    fopts.maxGates = 10;
    std::ostringstream log;
    FuzzSummary summary = runFuzzer(fopts, log);
    EXPECT_TRUE(summary.clean()) << log.str();
    EXPECT_EQ(summary.casesRun, 12u);
    EXPECT_TRUE(summary.oracleExercised(OracleId::QmddEquivalence));
    EXPECT_TRUE(summary.oracleExercised(OracleId::Statevector));
    EXPECT_TRUE(summary.oracleExercised(OracleId::Legality));
    EXPECT_TRUE(summary.oracleExercised(OracleId::CostSanity));
    EXPECT_TRUE(summary.oracleExercised(OracleId::Determinism));
}

TEST(Fuzzer, FaultInjectedRunIsCaughtAndShrunkSmall)
{
    FuzzOptions fopts;
    fopts.seed = 5;
    fopts.iterations = 10;
    fopts.maxQubits = 4;
    fopts.maxGates = 12;
    fopts.injectSwapBackFault = true;
    std::ostringstream log;
    FuzzSummary summary = runFuzzer(fopts, log);
    ASSERT_FALSE(summary.clean())
        << "planted fault went uncaught\n"
        << log.str();
    EXPECT_LE(summary.smallestFailureGates(), 8u);
    for (const FuzzFailure &f : summary.failures)
        EXPECT_EQ(f.blame, "route") << f.oracle << ": " << f.details;
}

TEST(Fuzzer, ReplayFlagsFailingCorpusEntries)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "qsyn_replay_test";
    fs::remove_all(dir);

    Reproducer good;
    good.name = "good";
    good.circuit = Circuit(2);
    good.circuit.addCnot(0, 1);
    good.device = makeIbmqx4();
    saveReproducer(dir.string(), good);

    Reproducer bad = good;
    bad.name = "bad";
    bad.circuit = reroutedCnotInput();
    bad.options.routing.testOmitSwapBack = true;
    saveReproducer(dir.string(), bad);

    std::ostringstream log;
    std::vector<std::string> failing =
        replayCorpus(dir.string(), OracleOptions{}, log);
    ASSERT_EQ(failing.size(), 1u) << log.str();
    EXPECT_NE(failing[0].find("bad"), std::string::npos);

    fs::remove_all(dir);
}
