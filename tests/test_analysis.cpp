/**
 * @file
 * The static-analysis suite (`ctest -L analysis`): dependency-DAG
 * construction and soundness, dataflow facts, lint rules, renderer
 * validity (JSON / SARIF), the committed lint-defect corpus, the
 * topological-rescheduling equivalence property, and the qlint tool
 * as a subprocess.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/dag.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/rules.hpp"
#include "device/loader.hpp"
#include "device/registry.hpp"
#include "frontend/loader.hpp"
#include "ir/random_circuit.hpp"
#include "qmdd/equivalence.hpp"
#include "service/json.hpp"

namespace qsyn::analysis {
namespace {

Circuit
chain3()
{
    Circuit c(3, "chain3");
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 2));
    return c;
}

// ---------------------------------------------------------------- DAG

TEST(Dag, EmptyCircuit)
{
    Circuit c(2, "empty");
    DependencyDag dag(c);
    EXPECT_EQ(dag.size(), 0u);
    EXPECT_EQ(dag.depth(), 0u);
    EXPECT_EQ(dag.edgeCount(), 0u);
    EXPECT_TRUE(dag.criticalPath().empty());
    EXPECT_TRUE(dag.topologicalOrder().empty());
}

TEST(Dag, ChainHasLinearDepth)
{
    Circuit c = chain3();
    DependencyDag dag(c);
    EXPECT_EQ(dag.size(), 3u);
    EXPECT_EQ(dag.depth(), 3u);
    EXPECT_TRUE(dag.hasEdge(0, 1));
    EXPECT_TRUE(dag.hasEdge(1, 2));
    EXPECT_FALSE(dag.hasEdge(0, 2));
    EXPECT_EQ(dag.roots().size(), 1u);
    EXPECT_EQ(dag.criticalPath(), (std::vector<size_t>{0, 1, 2}));
}

TEST(Dag, DisjointWiresAreParallel)
{
    Circuit c(2, "par");
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    DependencyDag dag(c);
    EXPECT_EQ(dag.depth(), 1u);
    EXPECT_EQ(dag.edgeCount(), 0u);
    EXPECT_EQ(dag.layer(0).size(), 2u);
}

TEST(Dag, CommutingGatesShareALayer)
{
    // Z and T are both diagonal: they commute on the same wire, so the
    // commutation-aware DAG leaves them unordered.
    Circuit c(1, "diag");
    c.add(Gate::z(0));
    c.add(Gate::t(0));
    DependencyDag dag(c);
    EXPECT_EQ(dag.edgeCount(), 0u);
    EXPECT_EQ(dag.depth(), 1u);

    // With commutation analysis off they chain in program order.
    DagOptions plain;
    plain.commutationAware = false;
    DependencyDag strict(c, plain);
    EXPECT_TRUE(strict.hasEdge(0, 1));
    EXPECT_EQ(strict.depth(), 2u);
}

TEST(Dag, CommutingBlockKeepsTransitiveOrder)
{
    // The soundness trap: Z and T commute, X commutes with neither.
    // A naive "stop at the first non-commuting gate" scan would order
    // T -> X but lose Z -> X, allowing the invalid order T, X, Z.
    // The block construction must emit edges from BOTH Z and T to X.
    Circuit c(1, "ztx");
    c.add(Gate::z(0));
    c.add(Gate::t(0));
    c.add(Gate::x(0));
    DependencyDag dag(c);
    EXPECT_TRUE(dag.hasEdge(0, 2));
    EXPECT_TRUE(dag.hasEdge(1, 2));
    EXPECT_FALSE(dag.hasEdge(0, 1));
    EXPECT_EQ(dag.depth(), 2u);
}

TEST(Dag, BarrierFencesAllWires)
{
    Circuit c(2, "fence");
    c.add(Gate::h(0));
    c.add(Gate::barrier({1}));
    c.add(Gate::h(1));
    DependencyDag dag(c);
    // The barrier fences the whole register (scheduleAsap semantics),
    // so even the wire-0 gate precedes it.
    EXPECT_TRUE(dag.hasEdge(0, 1));
    EXPECT_TRUE(dag.hasEdge(1, 2));
    EXPECT_EQ(dag.depth(), 3u);
}

TEST(Dag, MeasureNeverCommutes)
{
    Circuit c(1, "meas");
    c.add(Gate::z(0));
    c.add(Gate::measure(0, 0));
    DependencyDag dag(c);
    EXPECT_TRUE(dag.hasEdge(0, 1));
}

TEST(Dag, TopologicalOrderSeedZeroIsProgramOrder)
{
    Circuit c = chain3();
    DependencyDag dag(c);
    EXPECT_EQ(dag.topologicalOrder(0),
              (std::vector<size_t>{0, 1, 2}));
}

TEST(Dag, RescheduleRoundTripsProgramOrder)
{
    Circuit c = chain3();
    DependencyDag dag(c);
    Circuit again = dag.reschedule(dag.topologicalOrder(0));
    ASSERT_EQ(again.size(), c.size());
    for (size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(again[i], c[i]) << "gate " << i;
}

TEST(Dag, MetricsSummarizeStructure)
{
    Circuit c(2, "m");
    c.add(Gate::h(0));
    c.add(Gate::h(1));
    c.add(Gate::cnot(0, 1));
    DependencyDag dag(c);
    DagMetrics m = computeDagMetrics(dag);
    EXPECT_EQ(m.gates, 3u);
    EXPECT_EQ(m.depth, 2u);
    EXPECT_EQ(m.maxLayerWidth, 2u);
    EXPECT_EQ(m.criticalGates, m.depth);
    EXPECT_DOUBLE_EQ(m.parallelism, 1.5);
    EXPECT_EQ(circuitDepth(c), 2u);
}

// ----------------------------------------------------------- dataflow

TEST(Dataflow, DeadAndLiveWires)
{
    Circuit c(3, "dead");
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    DependencyDag dag(c);
    DataflowAnalysis df(dag);
    EXPECT_EQ(df.deadWires(), (std::vector<Qubit>{2}));
    EXPECT_TRUE(df.wire(2).dead());
    EXPECT_EQ(df.wire(0).uses, (std::vector<size_t>{0, 1}));
    // Wire 0 is only a control in the CNOT: no target use there.
    EXPECT_EQ(df.wire(0).targetUses, (std::vector<size_t>{0}));
    EXPECT_EQ(df.wire(1).targetUses, (std::vector<size_t>{1}));
    EXPECT_TRUE(df.liveAt(0, 0));
    EXPECT_FALSE(df.liveAt(2, 0));
}

TEST(Dataflow, ReachabilityFollowsDependencies)
{
    Circuit c = chain3();
    DependencyDag dag(c);
    DataflowAnalysis df(dag);
    EXPECT_TRUE(df.reaches(0, 2));
    EXPECT_TRUE(df.reaches(1, 2));
    EXPECT_FALSE(df.reaches(2, 0));
    EXPECT_EQ(df.reachableFrom(0), (std::vector<size_t>{0, 1, 2}));
}

TEST(Dataflow, BarrierIsNotAUse)
{
    Circuit c(1, "b");
    c.add(Gate::barrier({0}));
    DependencyDag dag(c);
    DataflowAnalysis df(dag);
    EXPECT_TRUE(df.wire(0).dead());
}

// -------------------------------------------------------------- rules

std::set<std::string>
firedRules(const std::vector<Finding> &findings)
{
    std::set<std::string> ids;
    for (const Finding &f : findings)
        ids.insert(f.ruleId);
    return ids;
}

TEST(Rules, NonNativeGateIsQL001)
{
    Circuit c(3, "toffoli");
    c.add(Gate::ccx(0, 1, 2));
    Device dev = builtinDevice("ibmqx4");
    LintOptions opts;
    opts.device = &dev;
    Diagnostics d = analyzeCircuit(c, "toffoli", opts);
    EXPECT_EQ(firedRules(d.findings),
              (std::set<std::string>{"QL001"}));
    EXPECT_TRUE(d.hasErrors());
}

TEST(Rules, OffCouplingCnotIsQL002)
{
    // ibmqx4 has 2->0 but not 0->2 as an edge... use a custom device
    // to be explicit: only 0 -> 1 exists.
    Device dev = parseDeviceString("device d 2\n0: 1\n");
    Circuit c(2, "rev");
    c.add(Gate::cnot(1, 0)); // against the stored direction
    LintOptions opts;
    opts.device = &dev;
    Diagnostics d = analyzeCircuit(c, "rev", opts);
    EXPECT_EQ(firedRules(d.findings),
              (std::set<std::string>{"QL002"}));
}

TEST(Rules, DeadQubitIsQL003)
{
    Circuit c(3, "dead");
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    Diagnostics d = analyzeCircuit(c, "dead");
    EXPECT_EQ(firedRules(d.findings),
              (std::set<std::string>{"QL003"}));
    EXPECT_EQ(d.findings.front().wire, 2u);
    EXPECT_FALSE(d.hasErrors());
}

TEST(Rules, InversePairBeyondPeepholeWindowIsQL004)
{
    // Two H on wire 0 separated by 300 commuting gates on wire 1 —
    // past the optimizer's 256-gate scan horizon, but the analyzer's
    // scan is unbounded.
    Circuit c(2, "far");
    c.add(Gate::h(0));
    for (int i = 0; i < 300; ++i)
        c.add(Gate::t(1));
    c.add(Gate::h(0));
    Diagnostics d = analyzeCircuit(c, "far");
    ASSERT_EQ(firedRules(d.findings),
              (std::set<std::string>{"QL004"}));
    const Finding &f = d.findings.front();
    EXPECT_EQ(f.gateIndex, 0u);
    ASSERT_EQ(f.relatedGates.size(), 1u);
    EXPECT_EQ(f.relatedGates.front(), 301u);
}

TEST(Rules, CascadedPairsAllCancel)
{
    // x x x x: the fixpoint removes both nested pairs.
    Circuit c(1, "xxxx");
    for (int i = 0; i < 4; ++i)
        c.add(Gate::x(0));
    std::vector<bool> removed;
    auto pairs = findCancellablePairs(c, &removed);
    EXPECT_EQ(pairs.size(), 2u);
    EXPECT_EQ(std::count(removed.begin(), removed.end(), true), 4);
}

TEST(Rules, BlockedSharedWireStopsCancellation)
{
    // h, x, h: the X blocks the H pair — nothing cancels.
    Circuit c(1, "hxh");
    c.add(Gate::h(0));
    c.add(Gate::x(0));
    c.add(Gate::h(0));
    EXPECT_TRUE(findCancellablePairs(c, nullptr).empty());
}

TEST(Rules, UnrestoredAncillaIsQL005)
{
    Circuit c(3, "anc");
    c.add(Gate::h(0));
    c.add(Gate::cnot(0, 1));
    c.add(Gate::cnot(1, 2)); // targets the ancilla, never undone
    LintOptions opts;
    opts.ancillas = {2};
    Diagnostics d = analyzeCircuit(c, "anc", opts);
    EXPECT_EQ(firedRules(d.findings),
              (std::set<std::string>{"QL005"}));
    EXPECT_EQ(d.findings.front().wire, 2u);
}

TEST(Rules, ControlOnlyAncillaIsClean)
{
    Circuit c(3, "ctrl");
    c.add(Gate::h(0));
    c.add(Gate::cnot(2, 0)); // ancilla used as control: state kept
    LintOptions opts;
    opts.ancillas = {2};
    Diagnostics d = analyzeCircuit(c, "ctrl", opts);
    // Wire 1 is dead; the ancilla itself must NOT fire.
    EXPECT_EQ(firedRules(d.findings),
              (std::set<std::string>{"QL003"}));
}

TEST(Rules, RestoredAncillaIsClean)
{
    // compute-uncompute with a commuting gate between: the CNOT pair
    // on the ancilla provably cancels, so the surviving circuit never
    // targets it. (A *non*-commuting use between the pair — say a CZ
    // off the ancilla — correctly keeps the warning: this analysis is
    // syntactic, "restored" means provably cancelled.)
    Circuit c(3, "restored");
    c.add(Gate::cnot(0, 2));
    c.add(Gate::t(1));
    c.add(Gate::cnot(0, 2));
    LintOptions opts;
    opts.ancillas = {2};
    Diagnostics d = analyzeCircuit(c, "restored", opts);
    // The cancelling pair itself is (correctly) a QL004 dead-gate
    // finding; the point here is that QL005 stays quiet.
    for (const Finding &f : d.findings)
        EXPECT_NE(f.ruleId, "QL005") << renderText({d});
    EXPECT_EQ(d.countAtLeast(Severity::Error), 0u);
}

TEST(Rules, TooWideCircuitIsQL006Only)
{
    Device dev = parseDeviceString("device d 2\n0: 1\n");
    Circuit c(3, "wide");
    c.add(Gate::ccx(0, 1, 2)); // would be QL001 on a big device
    LintOptions opts;
    opts.device = &dev;
    Diagnostics d = analyzeCircuit(c, "wide", opts);
    // Capacity supersedes the per-gate placement rules.
    EXPECT_EQ(firedRules(d.findings),
              (std::set<std::string>{"QL006"}));
}

TEST(Rules, RuleFiltersApply)
{
    Circuit c(3, "filt");
    c.add(Gate::h(0));
    c.add(Gate::h(0));
    // Both QL003 (wires 1, 2 dead) and QL004 (the H pair) apply.
    LintOptions only;
    only.onlyRules = {"QL004"};
    EXPECT_EQ(firedRules(analyzeCircuit(c, "f", only).findings),
              (std::set<std::string>{"QL004"}));
    LintOptions disabled;
    disabled.disabledRules = {"QL003"};
    EXPECT_EQ(firedRules(analyzeCircuit(c, "f", disabled).findings),
              (std::set<std::string>{"QL004"}));
}

TEST(Rules, CatalogIsWellFormed)
{
    const std::vector<RuleInfo> &catalog = ruleCatalog();
    ASSERT_EQ(catalog.size(), 6u);
    std::set<std::string> ids;
    for (const RuleInfo &r : catalog)
        ids.insert(r.id);
    EXPECT_EQ(ids.size(), catalog.size()) << "duplicate rule ID";
    EXPECT_NE(findRule("QL001"), nullptr);
    EXPECT_EQ(findRule("QL999"), nullptr);
}

// ---------------------------------------------------------- renderers

TEST(Renderers, JsonOutputParses)
{
    Circuit c(3, "r");
    c.add(Gate::h(0));
    Diagnostics d = analyzeCircuit(c, "r.qasm");
    std::string text = renderJson({d});
    service::Json parsed;
    std::string error;
    ASSERT_TRUE(service::parseJson(text, &parsed, &error)) << error;
    const service::Json *artifacts = parsed.find("artifacts");
    ASSERT_NE(artifacts, nullptr);
    ASSERT_EQ(artifacts->array.size(), 1u);
    EXPECT_EQ(artifacts->array[0].stringOr("artifact", ""), "r.qasm");
}

TEST(Renderers, SarifIsValid210)
{
    Circuit c(3, "s");
    c.add(Gate::h(0));
    c.add(Gate::h(0));
    Diagnostics d = analyzeCircuit(c, "s.qasm");
    ASSERT_FALSE(d.findings.empty());
    std::string text = renderSarif({d});
    service::Json parsed;
    std::string error;
    ASSERT_TRUE(service::parseJson(text, &parsed, &error)) << error;
    EXPECT_EQ(parsed.stringOr("version", ""), "2.1.0");
    const service::Json *runs = parsed.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->array.size(), 1u);
    const service::Json *tool = runs->array[0].find("tool");
    ASSERT_NE(tool, nullptr);
    const service::Json *driver = tool->find("driver");
    ASSERT_NE(driver, nullptr);
    EXPECT_EQ(driver->stringOr("name", ""), "qlint");
    const service::Json *rules = driver->find("rules");
    ASSERT_NE(rules, nullptr);
    EXPECT_EQ(rules->array.size(), ruleCatalog().size());
    const service::Json *results = runs->array[0].find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_FALSE(results->array.empty());
    const service::Json &first = results->array[0];
    EXPECT_EQ(first.stringOr("ruleId", ""), "QL003");
    EXPECT_GE(first.numberOr("ruleIndex", -1.0), 0.0);
    const service::Json *locations = first.find("locations");
    ASSERT_NE(locations, nullptr);
    ASSERT_FALSE(locations->array.empty());
}

TEST(Renderers, EmptyReportIsClean)
{
    EXPECT_NE(renderText({}).find("0 error(s)"), std::string::npos);
    service::Json parsed;
    std::string error;
    EXPECT_TRUE(service::parseJson(renderJson({}), &parsed, &error))
        << error;
    EXPECT_TRUE(service::parseJson(renderSarif({}), &parsed, &error))
        << error;
}

// ----------------------------------------------- rescheduling property

/** Any topological order of the (commutation-aware) DAG must yield a
 *  circuit equivalent to the original — the soundness property of the
 *  whole construction, checked against the QMDD oracle on 50 seeded
 *  random circuits. */
TEST(Property, TopologicalReschedulingPreservesEquivalence)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        RandomCircuitOptions ropts;
        ropts.numQubits = 4;
        ropts.numGates = 40;
        ropts.maxControls = 2;
        ropts.seed = seed;
        Circuit original = randomCircuit(ropts);

        DependencyDag dag(original);
        Circuit shuffled =
            dag.reschedule(dag.topologicalOrder(seed * 7919 + 1));
        ASSERT_EQ(shuffled.size(), original.size()) << "seed " << seed;

        dd::Package pkg;
        dd::EquivalenceChecker checker(pkg);
        dd::Equivalence verdict = checker.check(original, shuffled);
        EXPECT_TRUE(dd::isEquivalent(verdict))
            << "seed " << seed << ": rescheduling changed the unitary ("
            << dd::equivalenceName(verdict) << ")";
    }
}

// ------------------------------------------------------- lint corpus

#ifdef QSYN_LINT_CORPUS_DIR

struct CorpusExpectation
{
    std::set<std::string> rules;
    std::vector<Qubit> ancillas;
};

CorpusExpectation
parseExpectFile(const std::filesystem::path &path)
{
    CorpusExpectation e;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string word;
        if (!(ls >> word) || word[0] == '#')
            continue;
        if (word == "ancilla") {
            unsigned q = 0;
            ls >> q;
            e.ancillas.push_back(static_cast<Qubit>(q));
        } else {
            e.rules.insert(word);
        }
    }
    return e;
}

/** Every committed defect circuit must be flagged with exactly the
 *  expected rule IDs (and clean entries must stay clean). */
TEST(LintCorpus, EveryEntryMatchesExpectations)
{
    namespace fs = std::filesystem;
    fs::path root(QSYN_LINT_CORPUS_DIR);
    ASSERT_TRUE(fs::exists(root)) << root;
    size_t entries = 0;
    std::set<std::string> covered;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(root)) {
        if (!entry.is_directory())
            continue;
        ++entries;
        fs::path dir = entry.path();
        std::string name = dir.filename().string();

        fs::path circuit_file;
        for (const char *candidate :
             {"circuit.qasm", "circuit.qc", "circuit.real"}) {
            if (fs::exists(dir / candidate)) {
                circuit_file = dir / candidate;
                break;
            }
        }
        ASSERT_FALSE(circuit_file.empty())
            << name << ": no circuit file";
        Circuit circuit =
            frontend::loadCircuitFile(circuit_file.string());

        CorpusExpectation expect =
            parseExpectFile(dir / "expect.txt");
        std::optional<Device> device;
        if (fs::exists(dir / "device.txt"))
            device = loadDeviceFile((dir / "device.txt").string());

        LintOptions opts;
        if (device)
            opts.device = &*device;
        opts.ancillas = expect.ancillas;
        Diagnostics d = analyzeCircuit(circuit, name, opts);
        EXPECT_EQ(firedRules(d.findings), expect.rules)
            << name << ":\n"
            << renderText({d});
        covered.insert(expect.rules.begin(), expect.rules.end());
    }
    EXPECT_GE(entries, 7u) << "corpus shrank";
    // The corpus must keep every rule in the catalog covered.
    for (const RuleInfo &rule : ruleCatalog())
        EXPECT_TRUE(covered.count(rule.id))
            << "no corpus entry exercises " << rule.id;
}

#endif // QSYN_LINT_CORPUS_DIR

// ------------------------------------------------- qlint subprocess

struct RunResult
{
    int exitCode = -1;
    std::string output;
};

RunResult
runQlint(const std::string &args)
{
    RunResult res;
    const char *dir = std::getenv("QSYN_TOOL_DIR");
    EXPECT_NE(dir, nullptr) << "QSYN_TOOL_DIR not set; run via ctest";
    if (!dir)
        return res;
    std::string cmd = std::string(dir) + "/qlint " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    if (!pipe)
        return res;
    char buf[512];
    while (fgets(buf, sizeof buf, pipe))
        res.output += buf;
    int status = pclose(pipe);
    res.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
    return res;
}

std::string
scratchQasm(const std::string &name, const std::string &content)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() / "qsyn_lint_tool";
    fs::create_directories(dir);
    fs::path path = dir / name;
    std::ofstream out(path);
    out << content;
    return path.string();
}

TEST(QlintTool, CleanCircuitExitsZero)
{
    std::string path = scratchQasm("clean.qasm",
                                   "OPENQASM 2.0;\n"
                                   "include \"qelib1.inc\";\n"
                                   "qreg q[2];\nh q[0];\ncx q[0],q[1];\n");
    RunResult res = runQlint(path);
    EXPECT_EQ(res.exitCode, 0) << res.output;
}

TEST(QlintTool, WarningExitsZeroUnlessWerror)
{
    std::string path = scratchQasm("warn.qasm",
                                   "OPENQASM 2.0;\n"
                                   "include \"qelib1.inc\";\n"
                                   "qreg q[2];\nh q[0];\n");
    EXPECT_EQ(runQlint(path).exitCode, 0);
    RunResult strict = runQlint("--Werror " + path);
    EXPECT_EQ(strict.exitCode, 1) << strict.output;
    EXPECT_NE(strict.output.find("QL003"), std::string::npos)
        << strict.output;
}

TEST(QlintTool, DeviceErrorsExitOne)
{
    std::string path = scratchQasm("ccx.qasm",
                                   "OPENQASM 2.0;\n"
                                   "include \"qelib1.inc\";\n"
                                   "qreg q[3];\nccx q[0],q[1],q[2];\n");
    RunResult res = runQlint("--device ibmqx4 " + path);
    EXPECT_EQ(res.exitCode, 1) << res.output;
    EXPECT_NE(res.output.find("QL001"), std::string::npos)
        << res.output;
}

TEST(QlintTool, SarifOutputParses)
{
    std::string path = scratchQasm("sarif.qasm",
                                   "OPENQASM 2.0;\n"
                                   "include \"qelib1.inc\";\n"
                                   "qreg q[2];\nh q[0];\n");
    RunResult res = runQlint("--format sarif " + path);
    service::Json parsed;
    std::string error;
    ASSERT_TRUE(service::parseJson(res.output, &parsed, &error))
        << error << "\n"
        << res.output;
    EXPECT_EQ(parsed.stringOr("version", ""), "2.1.0");
}

TEST(QlintTool, UsageErrorsExitTwo)
{
    EXPECT_EQ(runQlint("").exitCode, 2);
    EXPECT_EQ(runQlint("--format bogus x.qasm").exitCode, 2);
    EXPECT_EQ(runQlint("--rule QL999 x.qasm").exitCode, 2);
    EXPECT_EQ(runQlint("/nonexistent/x.qasm").exitCode, 2);
}

} // namespace
} // namespace qsyn::analysis
