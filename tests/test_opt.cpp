/**
 * @file
 * Tests for the optimizer: every pass must preserve the exact unitary
 * (QMDD-checked), never increase cost, and fire on its target
 * patterns; the driver must reach a fixed point.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "device/registry.hpp"
#include "ir/random_circuit.hpp"
#include "opt/pipeline.hpp"
#include "opt/schedule.hpp"
#include "qmdd/equivalence.hpp"
#include "route/ctr.hpp"

using namespace qsyn;
using namespace qsyn::opt;

namespace {

bool
sameUnitary(const Circuit &a, const Circuit &b)
{
    dd::Package pkg;
    return pkg.buildCircuit(a) == pkg.buildCircuit(b);
}

} // namespace

TEST(CostModel, PaperEquation2)
{
    // #1's technology-independent metrics: 7 T, 7 CNOT, 17 gates
    // -> 0.5*7 + 0.25*7 + 17 = 22.25 (Table 3).
    Circuit c(3);
    for (int i = 0; i < 7; ++i)
        c.addT(0);
    for (int i = 0; i < 7; ++i)
        c.addCnot(0, 1);
    for (int i = 0; i < 3; ++i)
        c.addH(2);
    CostModel model;
    EXPECT_DOUBLE_EQ(model.cost(c), 22.25);
}

TEST(CostModel, CustomWeights)
{
    Circuit c(2);
    c.addT(0);
    c.addCnot(0, 1);
    CostWeights w;
    w.tWeight = 10.0;
    w.cnotWeight = 5.0;
    w.gateWeight = 2.0;
    CostModel model(w);
    EXPECT_DOUBLE_EQ(model.cost(c), 10.0 + 5.0 + 2.0 * 2);
}

TEST(Cancellation, AdjacentInversePairs)
{
    Circuit c(2);
    c.addH(0);
    c.addH(0);
    c.addCnot(0, 1);
    c.addCnot(0, 1);
    c.addT(1);
    c.addTdg(1);
    EXPECT_TRUE(cancelInversePairs(c));
    EXPECT_EQ(c.size(), 0u);
}

TEST(Cancellation, CommutesThroughDiagonalOnControl)
{
    // CNOT(0,1) Z(0) CNOT(0,1): the Z commutes with the control, so
    // the CNOTs cancel.
    Circuit c(2);
    c.addCnot(0, 1);
    c.addZ(0);
    c.addCnot(0, 1);
    Circuit before = c;
    EXPECT_TRUE(cancelInversePairs(c));
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].kind(), GateKind::Z);
    EXPECT_TRUE(sameUnitary(before, c));
}

TEST(Cancellation, CommutesThroughXOnTarget)
{
    Circuit c(2);
    c.addCnot(0, 1);
    c.addX(1);
    c.addCnot(0, 1);
    Circuit before = c;
    EXPECT_TRUE(cancelInversePairs(c));
    EXPECT_EQ(c.size(), 1u);
    EXPECT_TRUE(sameUnitary(before, c));
}

TEST(Cancellation, BlockedByNonCommutingGate)
{
    // H on the target does not commute with CNOT; nothing cancels.
    Circuit c(2);
    c.addCnot(0, 1);
    c.addH(1);
    c.addCnot(0, 1);
    EXPECT_FALSE(cancelInversePairs(c));
    EXPECT_EQ(c.size(), 3u);
}

TEST(Cancellation, BarrierBlocksCancellation)
{
    Circuit c(1);
    c.addH(0);
    c.add(Gate::barrier({0}));
    c.addH(0);
    EXPECT_FALSE(cancelInversePairs(c));
}

TEST(RotationMerge, PhaseFamilyComposes)
{
    // T T = S; S S = Z; T S T = Z.
    Circuit c(1);
    c.addT(0);
    c.addT(0);
    Circuit before = c;
    EXPECT_TRUE(mergeRotations(c));
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].kind(), GateKind::S);
    EXPECT_TRUE(sameUnitary(before, c));
}

TEST(RotationMerge, TSdgCancels)
{
    Circuit c(1);
    c.addT(0);
    c.addT(0);
    c.addS(0);
    c.addZ(0);
    // total phase: pi/4+pi/4+pi/2+pi = 2pi -> identity.
    EXPECT_TRUE(mergeRotations(c));
    EXPECT_EQ(c.size(), 0u);
}

TEST(RotationMerge, RotationAnglesAdd)
{
    Circuit c(1);
    c.add(Gate::rz(0, 0.4));
    c.add(Gate::rz(0, 0.5));
    Circuit before = c;
    EXPECT_TRUE(mergeRotations(c));
    ASSERT_EQ(c.size(), 1u);
    EXPECT_NEAR(c[0].param(), 0.9, 1e-12);
    EXPECT_TRUE(sameUnitary(before, c));
}

TEST(RotationMerge, RzFullTurnIsNotIdentity)
{
    // Rz(2pi) = -I: merging two Rz(pi) must NOT delete the gate.
    Circuit c(1);
    c.add(Gate::rz(0, M_PI));
    c.add(Gate::rz(0, M_PI));
    Circuit before = c;
    mergeRotations(c);
    EXPECT_TRUE(sameUnitary(before, c));
    EXPECT_EQ(c.size(), 1u); // merged but kept
}

TEST(RotationMerge, ControlledPhasesComposeToo)
{
    Circuit c(2);
    c.add(Gate(GateKind::S, {0}, {1}));
    c.add(Gate(GateKind::S, {0}, {1}));
    Circuit before = c;
    EXPECT_TRUE(mergeRotations(c));
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].kind(), GateKind::Z);
    EXPECT_EQ(c[0].numControls(), 1u);
    EXPECT_TRUE(sameUnitary(before, c));
}

TEST(HadamardRules, HXHBecomesZ)
{
    Circuit c(1);
    c.addH(0);
    c.addX(0);
    c.addH(0);
    Circuit before = c;
    EXPECT_TRUE(applyHadamardRules(c, nullptr));
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].kind(), GateKind::Z);
    EXPECT_TRUE(sameUnitary(before, c));
}

TEST(HadamardRules, CnotReversalCollapses)
{
    Circuit c(2);
    c.addH(0);
    c.addH(1);
    c.addCnot(1, 0);
    c.addH(0);
    c.addH(1);
    Circuit before = c;
    EXPECT_TRUE(applyHadamardRules(c, nullptr));
    ASSERT_EQ(c.size(), 1u);
    EXPECT_TRUE(c[0].isCnot());
    EXPECT_EQ(c[0].controls()[0], 0u);
    EXPECT_EQ(c[0].target(), 1u);
    EXPECT_TRUE(sameUnitary(before, c));
}

TEST(HadamardRules, CnotReversalRespectsCouplingMap)
{
    // On ibmqx4 the edge 0 -> 1 does NOT exist (only 1 -> 0, 2 -> 0/1),
    // so the rewrite toward CNOT(0,1) must not fire.
    Device dev = makeIbmqx4();
    ASSERT_FALSE(dev.coupling().hasEdge(0, 1));
    Circuit c(5);
    c.addH(0);
    c.addH(1);
    c.addCnot(1, 0);
    c.addH(0);
    c.addH(1);
    EXPECT_FALSE(applyHadamardRules(c, &dev));
    EXPECT_EQ(c.size(), 5u);
}

TEST(WindowIdentity, RemovesSwapSwapSequence)
{
    // Two back-to-back 3-CNOT swaps form a 6-gate identity window that
    // pairwise cancellation alone also finds; the window pass must too.
    Circuit c(2);
    for (int rep = 0; rep < 2; ++rep) {
        c.addCnot(0, 1);
        c.addCnot(1, 0);
        c.addCnot(0, 1);
    }
    // Not a simple inverse pair at the seam? It is; so hand the window
    // pass a harder shape: conjugated identity.
    Circuit d(2);
    d.addH(0);
    d.addCnot(0, 1);
    d.addCnot(0, 1);
    d.addH(0);
    EXPECT_TRUE(removeIdentityWindows(d, 2, 8));
    EXPECT_EQ(d.size(), 0u);
    EXPECT_TRUE(removeIdentityWindows(c, 2, 8));
    EXPECT_EQ(c.size(), 0u);
}

TEST(WindowIdentity, LeavesNonIdentityAlone)
{
    Circuit c(2);
    c.addH(0);
    c.addCnot(0, 1);
    c.addT(1);
    EXPECT_FALSE(removeIdentityWindows(c, 2, 8));
    EXPECT_EQ(c.size(), 3u);
}

TEST(WindowIdentity, SkipsDisjointInterleavedGates)
{
    // X(2) interleaves a window on {0,1}; it must survive.
    Circuit c(3);
    c.addH(0);
    c.addX(2);
    c.addH(0);
    Circuit before = c;
    EXPECT_TRUE(removeIdentityWindows(c, 2, 8));
    EXPECT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].kind(), GateKind::X);
    EXPECT_TRUE(sameUnitary(before, c));
}

TEST(Pipeline, ReachesFixedPointAndReports)
{
    Circuit c(2);
    c.addH(0);
    c.addH(0);
    c.addT(1);
    c.addT(1);
    c.addCnot(0, 1);

    OptimizerOptions opts;
    OptimizeReport report;
    Circuit out = optimizeCircuit(c, opts, &report);
    EXPECT_LT(report.finalCost, report.initialCost);
    EXPECT_GT(report.percentCostDecrease(), 0.0);
    EXPECT_TRUE(sameUnitary(c, out));
    // H H gone; T T -> S; CNOT remains: 2 gates.
    EXPECT_EQ(out.size(), 2u);
}

TEST(Pipeline, RandomCircuitsPreserveUnitary)
{
    Rng rng(77);
    RandomCircuitOptions ropts;
    ropts.numQubits = 4;
    ropts.numGates = 60;
    ropts.allowRotations = true;
    for (int trial = 0; trial < 8; ++trial) {
        Circuit c = randomCircuit(rng, ropts);
        OptimizerOptions opts;
        OptimizeReport report;
        Circuit out = optimizeCircuit(c, opts, &report);
        EXPECT_LE(report.finalCost, report.initialCost);
        EXPECT_TRUE(sameUnitary(c, out)) << "trial " << trial;
    }
}

TEST(Pipeline, RoutedCircuitStaysLegalAfterOptimization)
{
    Device dev = makeIbmqx3();
    Circuit c(16);
    c.addCnot(5, 10);
    c.addCnot(5, 10); // the pair should largely cancel post-routing
    Circuit routed = route::routeCircuit(c, dev);

    OptimizerOptions opts;
    opts.device = &dev;
    OptimizeReport report;
    Circuit out = optimizeCircuit(routed, opts, &report);
    EXPECT_LT(report.finalCost, report.initialCost);
    for (const Gate &g : out) {
        if (g.isCnot()) {
            EXPECT_TRUE(dev.coupling().hasEdge(g.controls()[0],
                                               g.target()));
        }
    }
    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    EXPECT_TRUE(dd::isEquivalent(checker.check(routed, out)));
}

// ---------------------------------------------------------------------
// ASAP scheduling.
// ---------------------------------------------------------------------

TEST(ScheduleTest, ParallelGatesShareALayer)
{
    Circuit c(3);
    c.addH(0);
    c.addH(1);
    c.addH(2);
    c.addCnot(0, 1);
    opt::Schedule s = opt::scheduleAsap(c);
    ASSERT_EQ(s.depth(), 2u);
    EXPECT_EQ(s.layers[0].size(), 3u);
    EXPECT_EQ(s.layers[1].size(), 1u);
}

TEST(ScheduleTest, DependenciesSerializeAndDepthMatchesStats)
{
    Rng rng(4);
    RandomCircuitOptions opts;
    opts.numQubits = 5;
    opts.numGates = 60;
    Circuit c = randomCircuit(rng, opts);
    opt::Schedule s = opt::scheduleAsap(c);
    // ASAP depth equals the critical path computed by computeStats.
    EXPECT_EQ(s.depth(), computeStats(c).depth);
    // Every gate appears exactly once.
    size_t total = 0;
    for (const auto &layer : s.layers)
        total += layer.size();
    EXPECT_EQ(total, c.size());
    // No layer contains two gates sharing a wire.
    for (const auto &layer : s.layers) {
        std::vector<bool> used(c.numQubits(), false);
        for (size_t index : layer) {
            for (Qubit q : c[index].qubits()) {
                EXPECT_FALSE(used[q]);
                used[q] = true;
            }
        }
    }
}

TEST(ScheduleTest, BarrierFencesLayers)
{
    Circuit c(2);
    c.addH(0);
    c.add(Gate::barrier({0, 1}));
    c.addH(1); // independent of H(0), but fenced behind the barrier
    opt::Schedule s = opt::scheduleAsap(c);
    EXPECT_EQ(s.depth(), 3u);
}

TEST(ScheduleTest, StatsIdleAndParallelism)
{
    Circuit c(2);
    c.addH(0);
    c.addT(0);
    c.addCnot(0, 1); // wire 1 first touched here: no idle for it
    opt::Schedule s = opt::scheduleAsap(c);
    opt::ScheduleStats stats = opt::computeScheduleStats(c, s);
    EXPECT_EQ(stats.depth, 3u);
    EXPECT_EQ(stats.gates, 3u);
    EXPECT_NEAR(stats.parallelism, 1.0, 1e-12);
    EXPECT_EQ(stats.idleWireLayers, 0u);
    EXPECT_NE(opt::scheduleToString(c, s).find("t2:"),
              std::string::npos);
}
