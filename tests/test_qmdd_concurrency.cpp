/**
 * @file
 * Concurrency tests for the shared QMDD package: canonicity when many
 * threads build overlapping circuits at once, lock-free weight
 * interning, shard rehashing under parallel load, the GC safe-point
 * barrier, and exactness of the merged per-thread statistics.
 *
 * The assertions here are cross-thread *pointer* equalities: QMDD
 * canonicity promises that equal matrices are the same Node* + weight
 * pointer no matter which thread built them or in what interleaving.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ir/random_circuit.hpp"
#include "qmdd/package.hpp"
#include "sim/statevector.hpp"

using namespace qsyn;
using dd::Edge;
using dd::Package;
using dd::PackageConfig;
using dd::PackageStats;

namespace {

Circuit
makeRandom(int qubits, int gates, std::uint64_t seed)
{
    Rng rng(seed);
    RandomCircuitOptions opts;
    opts.numQubits = static_cast<Qubit>(qubits);
    opts.numGates = static_cast<size_t>(gates);
    opts.maxControls = 2;
    return randomCircuit(rng, opts);
}

/** Dense unitary of a circuit (small widths only). */
DenseMatrix
denseOf(const Circuit &c)
{
    DenseMatrix m(static_cast<int>(c.numQubits()));
    for (const Gate &g : c) {
        std::vector<int> controls;
        for (Qubit q : g.controls())
            controls.push_back(static_cast<int>(q));
        if (g.kind() == GateKind::Swap) {
            m.applySwap(controls, static_cast<int>(g.targets()[0]),
                        static_cast<int>(g.targets()[1]));
        } else if (g.kind() == GateKind::Barrier) {
            continue;
        } else {
            m.applyGate(g.baseMatrix(), controls,
                        static_cast<int>(g.target()));
        }
    }
    return m;
}

void
expectMatchesDense(Package &pkg, const Edge &e, const DenseMatrix &m,
                   int n)
{
    for (size_t r = 0; r < m.dim(); ++r) {
        for (size_t c = 0; c < m.dim(); ++c) {
            Cplx got = pkg.getEntry(e, r, c, n);
            ASSERT_TRUE(approxEqual(got, m.at(r, c), 1e-9))
                << "entry (" << r << "," << c << ") got " << got
                << " want " << m.at(r, c);
        }
    }
}

/** Run `fn(t)` on `n` real threads simultaneously (start-gate). */
void
onThreads(size_t n, const std::function<void(size_t)> &fn)
{
    std::atomic<bool> go{false};
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (size_t t = 0; t < n; ++t) {
        pool.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            fn(t);
        });
    }
    go.store(true, std::memory_order_release);
    for (std::thread &th : pool)
        th.join();
}

} // namespace

TEST(QmddConcurrency, SameCircuitFromEveryThreadYieldsSameRootEdge)
{
    // 8 threads race the full makeNode/multiply/add stack over one
    // shared package; canonicity demands the identical root edge
    // (node pointer AND interned weight pointer) from every thread.
    Package pkg;
    Circuit c = makeRandom(5, 80, 7);
    constexpr size_t kThreads = 8;
    std::vector<Edge> roots(kThreads);
    onThreads(kThreads,
              [&](size_t t) { roots[t] = pkg.buildCircuit(c); });
    for (size_t t = 1; t < kThreads; ++t) {
        EXPECT_EQ(roots[0].node, roots[t].node) << "thread " << t;
        EXPECT_EQ(roots[0].weight, roots[t].weight) << "thread " << t;
    }
    DenseMatrix dense = denseOf(c);
    expectMatchesDense(pkg, roots[0], dense, 5);
}

TEST(QmddConcurrency, OverlappingCircuitsInterleavedStayCanonical)
{
    // Threads build *different* circuits sharing a common prefix, so
    // they constantly collide on the same unique-table entries. A
    // single-threaded rebuild afterwards must land on the exact edges
    // the racing threads produced.
    Package pkg;
    Circuit prefix = makeRandom(4, 30, 11);
    constexpr size_t kThreads = 6;
    std::vector<Circuit> variants;
    for (size_t t = 0; t < kThreads; ++t) {
        Circuit c = prefix;
        Circuit suffix = makeRandom(4, 20, 100 + t);
        for (const Gate &g : suffix)
            c.add(g);
        variants.push_back(std::move(c));
    }
    std::vector<Edge> roots(kThreads);
    onThreads(kThreads, [&](size_t t) {
        roots[t] = pkg.buildCircuit(variants[t]);
    });
    for (size_t t = 0; t < kThreads; ++t) {
        Edge again = pkg.buildCircuit(variants[t]);
        EXPECT_EQ(roots[t].node, again.node) << "variant " << t;
        EXPECT_EQ(roots[t].weight, again.weight) << "variant " << t;
        expectMatchesDense(pkg, roots[t], denseOf(variants[t]), 4);
    }
}

TEST(QmddConcurrency, ConcurrentInterningYieldsOnePointerPerValue)
{
    // The ComplexTable's lock-free-probe/locked-insert path: all
    // threads interning the same fresh values must agree on one
    // representative pointer per value.
    Package pkg;
    constexpr size_t kThreads = 8;
    constexpr size_t kValues = 200;
    std::vector<std::vector<const Cplx *>> seen(
        kThreads, std::vector<const Cplx *>(kValues));
    onThreads(kThreads, [&](size_t t) {
        for (size_t i = 0; i < kValues; ++i) {
            // Deterministic value set, identical across threads; no
            // two values within kWeightEps of each other.
            Cplx v(0.001 * static_cast<double>(i + 1),
                   -0.002 * static_cast<double>(i + 1));
            seen[t][i] = pkg.terminalEdge(v).weight;
        }
    });
    for (size_t t = 1; t < kThreads; ++t) {
        for (size_t i = 0; i < kValues; ++i)
            EXPECT_EQ(seen[0][i], seen[t][i])
                << "value " << i << " thread " << t;
    }
}

TEST(QmddConcurrency, ShardsRehashUnderConcurrentLoadWithoutDamage)
{
    // A deliberately tiny table forces every shard to grow while 8
    // threads are inserting. Node pointers must survive the rehashes:
    // the racing roots still evaluate to their dense matrices, and
    // rebuilds return identical edges.
    PackageConfig cfg;
    cfg.initialUniqueCapacity = 16; // per-shard floor, grows at once
    Package pkg(cfg);
    constexpr size_t kThreads = 8;
    std::vector<Circuit> circuits;
    for (size_t t = 0; t < kThreads; ++t)
        circuits.push_back(makeRandom(5, 60, 200 + t));
    std::vector<Edge> roots(kThreads);
    onThreads(kThreads, [&](size_t t) {
        roots[t] = pkg.buildCircuit(circuits[t]);
    });
    EXPECT_GT(pkg.stats().uniqueRehashes, 0u);
    EXPECT_GT(pkg.uniqueCapacity(), 16u * pkg.uniqueShards());
    for (size_t t = 0; t < kThreads; ++t) {
        Edge again = pkg.buildCircuit(circuits[t]);
        EXPECT_EQ(roots[t].node, again.node) << "circuit " << t;
        expectMatchesDense(pkg, roots[t], denseOf(circuits[t]), 5);
    }
}

TEST(QmddConcurrency, GcBarrierPerformsSweepWhenAllSessionsPark)
{
    // Deterministic barrier choreography. Both threads finish building
    // BEFORE the request is made (otherwise a per-gate safe point
    // inside buildCircuit could consume it early); then one requests a
    // GC and parks, and the sweep must not run until the second thread
    // reaches its own safe point with its root published.
    Package pkg;
    Circuit ca = makeRandom(4, 40, 33);
    Circuit cb = makeRandom(4, 40, 34);
    std::atomic<int> phase{0};
    Edge ra, rb;
    size_t count_a = 0, count_b = 0;

    std::thread ta([&] {
        Package::Session session(pkg);
        ra = pkg.buildCircuit(ca);
        count_a = pkg.countNodes(ra);
        while (phase.load(std::memory_order_acquire) < 1) {
        }
        pkg.requestGc();
        phase.store(2, std::memory_order_release);
        pkg.safePoint({ra}); // parks: tb has not reached its barrier
    });
    std::thread tb([&] {
        Package::Session session(pkg);
        rb = pkg.buildCircuit(cb);
        count_b = pkg.countNodes(rb);
        phase.store(1, std::memory_order_release);
        while (phase.load(std::memory_order_acquire) < 2) {
        }
        EXPECT_TRUE(pkg.gcPending());
        pkg.safePoint({rb}); // last to park: completes the barrier
    });
    ta.join();
    tb.join();

    EXPECT_FALSE(pkg.gcPending());
    EXPECT_GT(pkg.stats().gcRuns, 0u);
    // Both parked roots survived the sweep intact. (No session is
    // needed here: the main thread is the package's sole user now and
    // nothing further requests a collection.)
    EXPECT_EQ(pkg.countNodes(ra), count_a);
    EXPECT_EQ(pkg.countNodes(rb), count_b);
    expectMatchesDense(pkg, ra, denseOf(ca), 4);
    expectMatchesDense(pkg, rb, denseOf(cb), 4);
    // Everything else was collected: live nodes is at most what the
    // two roots reach (shared substructure counts once).
    EXPECT_LE(pkg.activeNodes(), count_a + count_b);
}

TEST(QmddConcurrency, EndingSessionDropsPendingRequestInsteadOfSweeping)
{
    // A GC requested with no one left to park must not silently nuke
    // the edges the (single-threaded) caller still holds.
    Package pkg;
    Circuit c = makeRandom(4, 40, 35);
    Edge root;
    {
        Package::Session session(pkg);
        root = pkg.buildCircuit(c);
        pkg.requestGc();
    } // endSession: last mutator out, request dropped
    EXPECT_FALSE(pkg.gcPending());
    expectMatchesDense(pkg, root, denseOf(c), 4);
}

TEST(QmddConcurrency, AutomaticGcTriggersAtSafePointsUnderContention)
{
    // Tiny threshold + several threads: buildCircuit's per-gate
    // safe-point checks must coordinate sweeps without losing any
    // thread's intermediate product. Each thread validates its root
    // while its own session is still active — that is the lifetime the
    // package guarantees; once a thread leaves, later sweeps owe its
    // edges nothing.
    PackageConfig cfg;
    cfg.gcThreshold = 1024;
    Package pkg(cfg);
    constexpr size_t kThreads = 4;
    std::vector<Circuit> circuits;
    for (size_t t = 0; t < kThreads; ++t)
        circuits.push_back(makeRandom(5, 120, 300 + t));
    onThreads(kThreads, [&](size_t t) {
        Package::Session session(pkg);
        Edge root = pkg.buildCircuit(circuits[t]);
        expectMatchesDense(pkg, root, denseOf(circuits[t]), 5);
    });
    EXPECT_GT(pkg.stats().gcRuns, 0u);
}

TEST(QmddConcurrency, MergedStatsEqualSumOfPerThreadStats)
{
    // PackageStats must be exact under concurrency, not approximate:
    // the merged counters are exactly the sum of every thread's own
    // (threadStats-diffed) traffic.
    Package pkg;
    constexpr size_t kThreads = 6;
    std::vector<PackageStats> per_thread(kThreads);
    onThreads(kThreads, [&](size_t t) {
        PackageStats before = pkg.threadStats();
        (void)pkg.buildCircuit(makeRandom(4, 50, 400 + t));
        PackageStats after = pkg.threadStats();
        PackageStats d;
        d.uniqueLookups = after.uniqueLookups - before.uniqueLookups;
        d.uniqueHits = after.uniqueHits - before.uniqueHits;
        d.multiplies = after.multiplies - before.multiplies;
        d.additions = after.additions - before.additions;
        d.computeLookups =
            after.computeLookups - before.computeLookups;
        d.computeHits = after.computeHits - before.computeHits;
        per_thread[t] = d;
    });
    PackageStats merged = pkg.stats();
    PackageStats sum;
    for (const PackageStats &d : per_thread) {
        sum.uniqueLookups += d.uniqueLookups;
        sum.uniqueHits += d.uniqueHits;
        sum.multiplies += d.multiplies;
        sum.additions += d.additions;
        sum.computeLookups += d.computeLookups;
        sum.computeHits += d.computeHits;
    }
    EXPECT_EQ(merged.uniqueLookups, sum.uniqueLookups);
    EXPECT_EQ(merged.uniqueHits, sum.uniqueHits);
    EXPECT_EQ(merged.multiplies, sum.multiplies);
    EXPECT_EQ(merged.additions, sum.additions);
    EXPECT_EQ(merged.computeLookups, sum.computeLookups);
    EXPECT_EQ(merged.computeHits, sum.computeHits);
    // Structural invariants that must hold no matter the interleaving.
    EXPECT_GE(merged.uniqueLookups, merged.uniqueHits);
    EXPECT_LE(merged.peakNodes,
              merged.uniqueLookups - merged.uniqueHits);
    EXPECT_LE(pkg.activeNodes(), merged.peakNodes);
}

TEST(QmddConcurrency, SharedTableKeepsPeakNodesBelowSumOfPrivatePeaks)
{
    // The point of sharing: N workers building the same circuit add
    // (almost) nothing beyond one worker's node set, where private
    // packages would multiply it by N.
    Circuit c = makeRandom(5, 80, 55);
    constexpr size_t kThreads = 4;

    size_t private_sum = 0;
    for (size_t t = 0; t < kThreads; ++t) {
        Package solo;
        (void)solo.buildCircuit(c);
        private_sum += solo.stats().peakNodes;
    }

    Package shared;
    onThreads(kThreads, [&](size_t) { (void)shared.buildCircuit(c); });
    EXPECT_LT(shared.stats().peakNodes, private_sum);
}
