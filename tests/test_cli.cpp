/**
 * @file
 * Tests for the qsync command-line driver: argument parsing, help and
 * device listing, and end-to-end file compilation through runCli.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/options.hpp"
#include "common/errors.hpp"
#include "frontend/qasm_parser.hpp"
#include "obs/obs.hpp"
#include "qmdd/equivalence.hpp"

using namespace qsyn;
using namespace qsyn::cli;

namespace {

/** Write a temp file; returns its path. */
std::string
writeTemp(const std::string &name, const std::string &content)
{
    std::string path = ::testing::TempDir() + name;
    std::ofstream out(path);
    out << content;
    return path;
}

} // namespace

TEST(CliParse, Defaults)
{
    CliOptions opts = parseCliArguments({"circuit.qasm"});
    ASSERT_EQ(opts.inputs.size(), 1u);
    EXPECT_EQ(opts.inputs[0], "circuit.qasm");
    EXPECT_EQ(opts.jobs, 1u);
    EXPECT_EQ(opts.deviceName, "ibmqx4");
    EXPECT_TRUE(opts.compile.optimize);
    EXPECT_EQ(opts.compile.verify, VerifyMode::Full);
}

TEST(CliParse, AllTheFlags)
{
    CliOptions opts = parseCliArguments(
        {"-d", "ibmqx5", "-o", "out.qasm", "--placement", "greedy",
         "--mcx", "dirty", "--meet-in-middle", "--weight-t", "2",
         "--weight-cnot", "0.5", "--weight-gate", "3", "--no-verify",
         "--quiet", "in.real"});
    EXPECT_EQ(opts.deviceName, "ibmqx5");
    EXPECT_EQ(opts.outputPath, "out.qasm");
    EXPECT_EQ(opts.compile.placement, route::PlacementStrategy::Greedy);
    EXPECT_EQ(opts.compile.mcxStrategy,
              decompose::McxStrategy::DirtyVChain);
    EXPECT_TRUE(opts.compile.routing.meetInMiddle);
    EXPECT_DOUBLE_EQ(opts.compile.optimizer.weights.tWeight, 2.0);
    EXPECT_DOUBLE_EQ(opts.compile.optimizer.weights.cnotWeight, 0.5);
    EXPECT_DOUBLE_EQ(opts.compile.optimizer.weights.gateWeight, 3.0);
    EXPECT_EQ(opts.compile.verify, VerifyMode::Off);
    EXPECT_FALSE(opts.printStats);
    ASSERT_EQ(opts.inputs.size(), 1u);
    EXPECT_EQ(opts.inputs[0], "in.real");
}

TEST(CliParse, RouterSelection)
{
    EXPECT_EQ(parseCliArguments({"a.qasm"}).compile.routing.router,
              route::RouterKind::Ctr);
    EXPECT_EQ(parseCliArguments({"--router", "sabre", "a.qasm"})
                  .compile.routing.router,
              route::RouterKind::Sabre);
    EXPECT_EQ(parseCliArguments({"--router", "ctr", "a.qasm"})
                  .compile.routing.router,
              route::RouterKind::Ctr);
    EXPECT_THROW(parseCliArguments({"--router", "astar", "a.qasm"}),
                 UserError);
    EXPECT_THROW(parseCliArguments({"--router"}), UserError);
}

TEST(CliParse, BatchInputsAndJobs)
{
    CliOptions opts = parseCliArguments(
        {"--jobs", "4", "a.qasm", "b.qc", "c.real"});
    EXPECT_EQ(opts.jobs, 4u);
    ASSERT_EQ(opts.inputs.size(), 3u);
    EXPECT_EQ(opts.inputs[0], "a.qasm");
    EXPECT_EQ(opts.inputs[1], "b.qc");
    EXPECT_EQ(opts.inputs[2], "c.real");

    EXPECT_EQ(parseCliArguments({"-j", "0", "a.qasm"}).jobs, 0u);
    EXPECT_THROW(parseCliArguments({"--jobs", "x", "a.qasm"}),
                 UserError);
    EXPECT_THROW(parseCliArguments({"--jobs", "-2", "a.qasm"}),
                 UserError);
    // Single-file side channels reject multi-input batches.
    EXPECT_THROW(
        parseCliArguments({"-o", "out.qasm", "a.qasm", "b.qasm"}),
        UserError);
    EXPECT_THROW(
        parseCliArguments({"--report", "r.json", "a.qasm", "b.qasm"}),
        UserError);
    EXPECT_THROW(parseCliArguments({"--draw", "a.qasm", "b.qasm"}),
                 UserError);
    EXPECT_THROW(parseCliArguments({"--schedule", "a.qasm", "b.qasm"}),
                 UserError);
}

TEST(CliParse, Errors)
{
    EXPECT_THROW(parseCliArguments({}), UserError);
    EXPECT_THROW(parseCliArguments({"--bogus", "x.qasm"}), UserError);
    EXPECT_THROW(parseCliArguments({"--device"}), UserError);
    EXPECT_THROW(parseCliArguments({"--weight-t", "abc", "x.qasm"}),
                 UserError);
    EXPECT_THROW(parseCliArguments({"--mcx", "magic", "x.qasm"}),
                 UserError);
}

TEST(CliRun, HelpAndDeviceList)
{
    std::ostringstream out, err;
    CliOptions help = parseCliArguments({"--help"});
    EXPECT_EQ(runCli(help, out, err), 0);
    EXPECT_NE(out.str().find("qsync"), std::string::npos);

    std::ostringstream out2, err2;
    CliOptions list = parseCliArguments({"--list-devices"});
    EXPECT_EQ(runCli(list, out2, err2), 0);
    EXPECT_NE(out2.str().find("ibmqx4"), std::string::npos);
    EXPECT_NE(out2.str().find("proposed_96"), std::string::npos);
}

TEST(CliRun, CompilesQasmFileEndToEnd)
{
    std::string path = writeTemp(
        "cli_in.qasm",
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"
        "ccx q[0],q[1],q[2];\n");
    std::ostringstream out, err;
    CliOptions opts = parseCliArguments({"-d", "ibmqx4", path});
    EXPECT_EQ(runCli(opts, out, err), 0);
    // Output must be valid QASM of the device width.
    Circuit compiled = frontend::parseQasm(out.str());
    EXPECT_EQ(compiled.numQubits(), 5u);
    EXPECT_NE(err.str().find("verification:      equivalent"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(CliRun, CompilesPlaThroughEsopFrontEnd)
{
    std::string path = writeTemp("cli_in.pla", ".i 2\n.o 1\n"
                                               ".type esop\n"
                                               "11 1\n.e\n");
    std::ostringstream out, err;
    CliOptions opts = parseCliArguments({"-d", "simulator", path});
    EXPECT_EQ(runCli(opts, out, err), 0);
    EXPECT_NE(out.str().find("OPENQASM"), std::string::npos);
    std::remove(path.c_str());
}

TEST(CliRun, CustomDeviceFile)
{
    std::string dev_path = writeTemp("cli_ring.txt", "device ring3 3\n"
                                                     "0: 1\n1: 2\n2: 0\n");
    std::string circ_path = writeTemp(
        "cli_ring.qasm", "OPENQASM 2.0;\nqreg q[3];\ncx q[2],q[1];\n");
    std::ostringstream out, err;
    CliOptions opts = parseCliArguments(
        {"--device-file", dev_path, circ_path});
    EXPECT_EQ(runCli(opts, out, err), 0);
    EXPECT_NE(err.str().find("ring3"), std::string::npos);
    std::remove(dev_path.c_str());
    std::remove(circ_path.c_str());
}

TEST(CliRun, BatchOutputIsOrderedAndJobsInvariant)
{
    std::string a = writeTemp(
        "cli_batch_a.qasm",
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"
        "ccx q[0],q[1],q[2];\n");
    std::string b = writeTemp(
        "cli_batch_b.qasm",
        "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n");
    std::string c = writeTemp(
        "cli_batch_c.qasm",
        "OPENQASM 2.0;\nqreg q[2];\ncx q[1],q[0];\nh q[1];\n");

    auto run = [&](const char *jobs) {
        std::ostringstream out, err;
        CliOptions opts = parseCliArguments(
            {"-d", "ibmqx4", "--jobs", jobs, a, b, c});
        EXPECT_EQ(runCli(opts, out, err), 0);
        return std::make_pair(out.str(), err.str());
    };
    auto seq = run("1");
    // QASM concatenated to stdout strictly in input order.
    size_t pos_a = seq.first.find(a);
    size_t pos_b = seq.first.find(b);
    size_t pos_c = seq.first.find(c);
    ASSERT_NE(pos_a, std::string::npos);
    ASSERT_NE(pos_b, std::string::npos);
    ASSERT_NE(pos_c, std::string::npos);
    EXPECT_LT(pos_a, pos_b);
    EXPECT_LT(pos_b, pos_c);
    EXPECT_NE(seq.second.find("batch:"), std::string::npos);

    // Parallel stdout is byte-identical to the sequential run.
    auto par = run("4");
    EXPECT_EQ(seq.first, par.first);

    std::remove(a.c_str());
    std::remove(b.c_str());
    std::remove(c.c_str());
}

TEST(CliRun, BatchIsolatesFailedInputs)
{
    std::string good = writeTemp(
        "cli_batch_good.qasm",
        "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n");
    std::ostringstream out, err;
    CliOptions opts = parseCliArguments(
        {"-d", "ibmqx4", "/nonexistent/bad.qasm", good});
    EXPECT_EQ(runCli(opts, out, err), 1);
    // The good input still compiles and is emitted.
    EXPECT_NE(out.str().find("OPENQASM"), std::string::npos);
    EXPECT_NE(err.str().find("error"), std::string::npos);
    EXPECT_NE(err.str().find("1/2"), std::string::npos);
    std::remove(good.c_str());
}

TEST(CliRun, MissingInputReportsError)
{
    std::ostringstream out, err;
    CliOptions opts = parseCliArguments({"/nonexistent/foo.qasm"});
    EXPECT_EQ(runCli(opts, out, err), 1);
    EXPECT_NE(err.str().find("error:"), std::string::npos);
}

TEST(CliRun, WritesOutputFile)
{
    std::string in_path = writeTemp(
        "cli_out_test.qasm", "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n");
    std::string out_path = ::testing::TempDir() + "cli_result.qasm";
    std::ostringstream out, err;
    CliOptions opts = parseCliArguments(
        {"-d", "ibmqx2", "-o", out_path, "--quiet", in_path});
    EXPECT_EQ(runCli(opts, out, err), 0);
    std::ifstream check(out_path);
    EXPECT_TRUE(check.good());
    std::remove(in_path.c_str());
    std::remove(out_path.c_str());
}

TEST(CliRun, DrawScheduleAndReportFlags)
{
    std::string in_path = writeTemp(
        "cli_extras.qasm",
        "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n");
    std::string report_path = ::testing::TempDir() + "cli_report.json";
    std::ostringstream out, err;
    CliOptions opts = parseCliArguments({"-d", "ibmqx2", "--draw",
                                         "--schedule", "--report",
                                         report_path, "--no-emit",
                                         in_path});
    EXPECT_TRUE(opts.drawCircuits);
    EXPECT_TRUE(opts.printSchedule);
    EXPECT_EQ(opts.reportPath, report_path);
    EXPECT_EQ(runCli(opts, out, err), 0);
    EXPECT_NE(err.str().find("--- input ---"), std::string::npos);
    EXPECT_NE(err.str().find("schedule:"), std::string::npos);
    std::ifstream report(report_path);
    ASSERT_TRUE(report.good());
    std::stringstream buffer;
    buffer << report.rdbuf();
    EXPECT_NE(buffer.str().find("\"verification\": \"equivalent\""),
              std::string::npos);
    std::remove(in_path.c_str());
    std::remove(report_path.c_str());
}

TEST(CliRun, FidelityAndPhasePolyFlagsParse)
{
    CliOptions opts = parseCliArguments(
        {"--fidelity-aware", "--phase-poly", "x.qasm"});
    EXPECT_TRUE(opts.compile.routing.fidelityAware);
    EXPECT_TRUE(opts.compile.optimizer.enablePhasePolynomial);
}

TEST(CliParse, ObservabilityFlags)
{
    CliOptions opts = parseCliArguments(
        {"--trace-json", "t.json", "--metrics-json", "m.json",
         "--log-level", "debug", "x.qasm"});
    EXPECT_EQ(opts.tracePath, "t.json");
    EXPECT_EQ(opts.metricsPath, "m.json");
    ASSERT_TRUE(opts.logLevel.has_value());
    EXPECT_EQ(*opts.logLevel, obs::LogLevel::Debug);
    EXPECT_THROW(parseCliArguments({"--log-level", "loud", "x.qasm"}),
                 UserError);
    EXPECT_THROW(parseCliArguments({"--trace-json"}), UserError);
}

TEST(CliRun, TraceAndMetricsJsonFiles)
{
    std::string in_path = writeTemp(
        "cli_trace.qasm",
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"
        "ccx q[0],q[1],q[2];\n");
    std::string trace_path = ::testing::TempDir() + "cli_trace.json";
    std::string metrics_path = ::testing::TempDir() + "cli_metrics.json";
    std::ostringstream out, err;
    CliOptions opts = parseCliArguments(
        {"-d", "ibmqx4", "--trace-json", trace_path, "--metrics-json",
         metrics_path, "--no-emit", "--quiet", in_path});
    EXPECT_EQ(runCli(opts, out, err), 0);

    std::ifstream trace_in(trace_path);
    ASSERT_TRUE(trace_in.good());
    std::stringstream trace;
    trace << trace_in.rdbuf();
    // Chrome trace-event shape with spans from every compile stage.
    EXPECT_NE(trace.str().find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.str().find("\"ph\": \"X\""), std::string::npos);
    for (const char *span :
         {"compile.decompose", "compile.place", "compile.route",
          "compile.optimize", "compile.verify", "frontend.parse",
          "opt.cancellation", "qmdd.equivalence_check"})
        EXPECT_NE(trace.str().find(span), std::string::npos) << span;

    std::ifstream metrics_in(metrics_path);
    ASSERT_TRUE(metrics_in.good());
    std::stringstream metrics;
    metrics << metrics_in.rdbuf();
    for (const char *metric :
         {"qmdd.unique_hit_rate", "qmdd.compute_hit_rate",
          "route.swaps_inserted", "opt.gates_removed",
          "frontend.gates_parsed"})
        EXPECT_NE(metrics.str().find(metric), std::string::npos)
            << metric;

    // The sink must be uninstalled once runCli returns.
    EXPECT_EQ(obs::sink(), nullptr);
    std::remove(in_path.c_str());
    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());
}

TEST(CliRun, DebugLogLevelPrintsPassBreakdown)
{
    std::string in_path = writeTemp(
        "cli_debug.qasm",
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"
        "ccx q[0],q[1],q[2];\n");
    std::ostringstream out, err, log;
    obs::setLogStream(&log); // keep test output clean
    CliOptions opts = parseCliArguments(
        {"-d", "ibmqx4", "--log-level", "debug", "--no-emit", in_path});
    int rc = runCli(opts, out, err);
    obs::setLogStream(nullptr);
    obs::setLogLevel(obs::LogLevel::Quiet); // undo runCli's override
    EXPECT_EQ(rc, 0);
    EXPECT_NE(err.str().find("optimizer passes"), std::string::npos);
    EXPECT_NE(err.str().find("cancellation"), std::string::npos);
    std::remove(in_path.c_str());
}

TEST(CliRun, RebaseToCzEmitsCzBasis)
{
    std::string in_path = writeTemp(
        "cli_rebase.qasm",
        "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[1];\n");
    std::ostringstream out, err;
    CliOptions opts = parseCliArguments(
        {"-d", "ibmqx2", "--rebase", "cz", "--quiet", in_path});
    EXPECT_EQ(runCli(opts, out, err), 0);
    EXPECT_NE(out.str().find("cz "), std::string::npos);
    EXPECT_EQ(out.str().find("cx "), std::string::npos);
    // The rebased output still parses and equals the original.
    Circuit emitted = frontend::parseQasm(out.str());
    Circuit original(5);
    original.addCnot(0, 1);
    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    EXPECT_TRUE(dd::isEquivalent(checker.check(original, emitted)));
    std::remove(in_path.c_str());
    EXPECT_THROW(parseCliArguments({"--rebase", "xy", "a.qasm"}),
                 UserError);
}
