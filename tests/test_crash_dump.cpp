/**
 * @file
 * End-to-end crash-dump and exposition tests against the real qsync
 * binary, run as a subprocess: `--crash-dump` + the hidden
 * `--test-crash` fault-injection flag must die by SIGABRT *and* leave
 * a parseable `qsyn-crash-<pid>.json` black box behind, and
 * `--metrics-prom` must produce a well-formed Prometheus page.
 *
 * The tool directory arrives via the QSYN_TOOL_DIR environment
 * variable (set by tests/CMakeLists.txt from the build tree).
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "test_json_util.hpp"

namespace fs = std::filesystem;
using testjson::Json;
using testjson::parseJson;

namespace {

struct RunResult
{
    int exitCode = -1;
    bool signalled = false;
    int termSignal = 0;
    std::string output; // stdout + stderr combined
};

RunResult
runTool(const std::string &tool, const std::string &args)
{
    const char *dir = std::getenv("QSYN_TOOL_DIR");
    EXPECT_NE(dir, nullptr)
        << "QSYN_TOOL_DIR not set; run via ctest";
    RunResult res;
    if (!dir)
        return res;
    std::string cmd =
        std::string(dir) + "/" + tool + " " + args + " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    if (!pipe)
        return res;
    char buf[512];
    while (fgets(buf, sizeof buf, pipe))
        res.output += buf;
    int status = pclose(pipe);
    if (WIFEXITED(status)) {
        res.exitCode = WEXITSTATUS(status);
        // popen runs through the shell, which reports a child killed
        // by signal N as exit code 128+N.
        if (res.exitCode > 128) {
            res.signalled = true;
            res.termSignal = res.exitCode - 128;
        }
    } else if (WIFSIGNALED(status)) {
        res.signalled = true;
        res.termSignal = WTERMSIG(status);
    }
    return res;
}

/** Fresh scratch directory for one test (wiped first). */
fs::path
scratchDir(const std::string &name)
{
    fs::path dir = fs::temp_directory_path() / "qsyn_crash_dump" / name;
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir);
    return dir;
}

std::string
writeCircuit(const fs::path &dir)
{
    fs::path path = dir / "c.qasm";
    std::ofstream out(path);
    out << "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0], q[1];\n"
           "cx q[1], q[2];\n";
    return path.string();
}

std::vector<fs::path>
crashDumps(const fs::path &dir)
{
    std::vector<fs::path> dumps;
    for (const fs::directory_entry &e : fs::directory_iterator(dir)) {
        std::string name = e.path().filename().string();
        if (name.rfind("qsyn-crash-", 0) == 0 &&
            name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            dumps.push_back(e.path());
    }
    return dumps;
}

std::string
slurp(const fs::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

TEST(CrashDump, InjectedAbortLeavesParseableBlackBox)
{
    fs::path dir = scratchDir("abort");
    std::string circuit = writeCircuit(dir);
    RunResult res = runTool("qsync", "--crash-dump " + dir.string() +
                                         " --test-crash --no-emit "
                                         "--quiet " +
                                         circuit);
    // The injected abort() must kill the process via SIGABRT (the
    // handler re-raises after dumping), not exit cleanly.
    EXPECT_TRUE(res.signalled) << res.output;
    EXPECT_EQ(res.termSignal, SIGABRT) << res.output;

    std::vector<fs::path> dumps = crashDumps(dir);
    ASSERT_EQ(dumps.size(), 1u) << res.output;
    Json v = parseJson(slurp(dumps[0]));
    EXPECT_DOUBLE_EQ(v.at("qsyn_crash_version").number, 1.0);
    EXPECT_EQ(v.at("signal").str, "SIGABRT");
    EXPECT_GT(v.at("pid").number, 0.0);

    // The flight recorder captured the compile that preceded the
    // crash: span begin/end pairs for the pipeline stages.
    const Json &ring = v.at("flight_recorder");
    ASSERT_FALSE(ring.array.empty());
    bool sawCompile = false;
    for (const Json &e : ring.array) {
        EXPECT_TRUE(e.has("seq"));
        EXPECT_TRUE(e.has("kind"));
        if (e.at("name").str == "compile")
            sawCompile = true;
    }
    EXPECT_TRUE(sawCompile);

    // The main thread registered its crash name.
    bool sawMain = false;
    for (const auto &[tid, entry] : v.at("thread_spans").object)
        if (entry.at("name").str == "qsync-main")
            sawMain = true;
    EXPECT_TRUE(sawMain);
}

TEST(CrashDump, CleanRunLeavesNoDump)
{
    fs::path dir = scratchDir("clean");
    std::string circuit = writeCircuit(dir);
    RunResult res = runTool("qsync", "--crash-dump " + dir.string() +
                                         " --no-emit --quiet " +
                                         circuit);
    EXPECT_EQ(res.exitCode, 0) << res.output;
    EXPECT_TRUE(crashDumps(dir).empty());
}

TEST(CrashDump, PrometheusFileIsWellFormed)
{
    fs::path dir = scratchDir("prom");
    std::string circuit = writeCircuit(dir);
    fs::path prom = dir / "metrics.prom";
    RunResult res = runTool("qsync", "--metrics-prom " + prom.string() +
                                         " --no-emit --quiet " +
                                         circuit);
    ASSERT_EQ(res.exitCode, 0) << res.output;
    std::string page = slurp(prom);
    ASSERT_FALSE(page.empty());

    // Structural validation: every line is a comment or a
    // `name{labels} value` sample, names carry the qsyn_ prefix, and
    // every histogram closes with +Inf / _sum / _count.
    std::istringstream in(page);
    std::string line;
    std::vector<std::string> histograms;
    bool sawCompileLatency = false;
    while (std::getline(in, line)) {
        ASSERT_FALSE(line.empty());
        if (line.rfind("# TYPE ", 0) == 0) {
            std::istringstream ls(line);
            std::string hash, type, name, kind;
            ls >> hash >> type >> name >> kind;
            EXPECT_EQ(name.rfind("qsyn_", 0), 0u) << line;
            EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                        kind == "histogram")
                << line;
            if (kind == "histogram")
                histograms.push_back(name);
            if (name == "qsyn_compile_latency_us")
                sawCompileLatency = true;
            continue;
        }
        EXPECT_EQ(line.rfind("qsyn_", 0), 0u) << line;
        size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        // The value must parse as a number (or +Inf/NaN).
        std::string value = line.substr(space + 1);
        EXPECT_FALSE(value.empty()) << line;
    }
    EXPECT_TRUE(sawCompileLatency) << page;
    ASSERT_FALSE(histograms.empty());
    for (const std::string &h : histograms) {
        EXPECT_NE(page.find(h + "_bucket{le=\"+Inf\"} "),
                  std::string::npos)
            << h;
        EXPECT_NE(page.find(h + "_sum "), std::string::npos) << h;
        EXPECT_NE(page.find(h + "_count "), std::string::npos) << h;
    }
}

TEST(CrashDump, ReportJsonCarriesResourceAccounting)
{
    fs::path dir = scratchDir("report");
    std::string circuit = writeCircuit(dir);
    fs::path report = dir / "report.json";
    RunResult res = runTool("qsync", "--report " + report.string() +
                                         " --no-emit --quiet " +
                                         circuit);
    ASSERT_EQ(res.exitCode, 0) << res.output;
    Json v = parseJson(slurp(report));
    const Json &resources = v.at("resources");
    EXPECT_TRUE(resources.at("valid").boolean);
    EXPECT_GT(resources.at("wall_seconds").number, 0.0);
    EXPECT_GE(resources.at("user_cpu_seconds").number, 0.0);
    EXPECT_GT(resources.at("peak_rss_kb").number, 0.0);
    EXPECT_GT(resources.at("qmdd_peak_nodes").number, 0.0);
    EXPECT_GT(resources.at("qmdd_arena_bytes").number, 0.0);
}
