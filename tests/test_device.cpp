/**
 * @file
 * Unit tests for the device library: the Table 2 coupling complexities
 * must come out exactly, the Section 3 coupling maps must match the
 * paper's dictionaries, BFS pathfinding must find the Fig. 5 route,
 * and the custom-device loader must round-trip.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "device/loader.hpp"
#include "device/registry.hpp"

using namespace qsyn;

TEST(CouplingMapTest, BasicEdgeQueries)
{
    CouplingMap map(3);
    map.addEdge(0, 1);
    EXPECT_TRUE(map.hasEdge(0, 1));
    EXPECT_FALSE(map.hasEdge(1, 0));
    EXPECT_TRUE(map.hasUndirectedEdge(1, 0));
    EXPECT_EQ(map.couplingCount(), 1u);
    map.addEdge(0, 1); // idempotent
    EXPECT_EQ(map.couplingCount(), 1u);
}

TEST(CouplingMapTest, SelfEdgeRejected)
{
    CouplingMap map(2);
    EXPECT_THROW(map.addEdge(1, 1), InternalError);
}

TEST(CouplingMapTest, FullyConnected)
{
    CouplingMap map = CouplingMap::fullyConnected(4);
    EXPECT_EQ(map.couplingCount(), 12u);
    EXPECT_TRUE(map.isConnected());
}

TEST(CouplingMapTest, ShortestPathIsBfsOptimal)
{
    // Chain 0-1-2-3 plus shortcut 0-3.
    CouplingMap map(4);
    map.addEdge(0, 1);
    map.addEdge(1, 2);
    map.addEdge(2, 3);
    map.addEdge(0, 3);
    auto path = map.shortestPath(1, 3);
    // 1-0-3 and 1-2-3 both have length 3; BFS with sorted neighbors
    // picks the smaller-index route.
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path.front(), 1u);
    EXPECT_EQ(path.back(), 3u);
}

TEST(CouplingMapTest, PathToNeighborStopsEarly)
{
    CouplingMap map(4);
    map.addEdge(0, 1);
    map.addEdge(1, 2);
    map.addEdge(2, 3);
    // Neighbor query: q0 is already... q0 -> neighbor of q2 is q1.
    auto path = map.shortestPathToNeighbor(0, 2);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path.back(), 1u);
    // Already adjacent: single-element path.
    auto direct = map.shortestPathToNeighbor(1, 2);
    ASSERT_EQ(direct.size(), 1u);
    EXPECT_EQ(direct[0], 1u);
}

TEST(CouplingMapTest, DictStringMatchesPaperFormat)
{
    Device qx2 = makeIbmqx2();
    EXPECT_EQ(qx2.coupling().toDictString(),
              "{0: [1, 2], 1: [2], 3: [2, 4], 4: [2]}");
}

TEST(DeviceTest, Table2CouplingComplexities)
{
    // Table 2 of the paper, exactly.
    EXPECT_NEAR(makeIbmqx2().couplingComplexity(), 0.3, 1e-12);
    EXPECT_NEAR(makeIbmqx3().couplingComplexity(), 20.0 / 240.0, 1e-12);
    EXPECT_NEAR(makeIbmqx4().couplingComplexity(), 0.3, 1e-12);
    EXPECT_NEAR(makeIbmqx5().couplingComplexity(), 22.0 / 240.0, 1e-12);
    EXPECT_NEAR(makeIbmq16().couplingComplexity(), 18.0 / 182.0, 1e-12);
    // 0.0833..., 0.0916..., 0.098901... as printed in the table.
    EXPECT_NEAR(makeIbmqx3().couplingComplexity(), 0.0833, 1e-4);
    EXPECT_NEAR(makeIbmqx5().couplingComplexity(), 0.09166, 1e-4);
    EXPECT_NEAR(makeIbmq16().couplingComplexity(), 0.098901, 1e-6);
}

TEST(DeviceTest, SimulatorComplexityIsOne)
{
    EXPECT_DOUBLE_EQ(Device::simulator(16).couplingComplexity(), 1.0);
}

TEST(DeviceTest, AllBuiltinMapsAreConnected)
{
    for (const Device &dev : allBuiltinDevices()) {
        EXPECT_TRUE(dev.coupling().isConnected()) << dev.name();
    }
}

TEST(DeviceTest, QubitCountsMatchTable2)
{
    EXPECT_EQ(makeIbmqx2().numQubits(), 5u);
    EXPECT_EQ(makeIbmqx3().numQubits(), 16u);
    EXPECT_EQ(makeIbmqx4().numQubits(), 5u);
    EXPECT_EQ(makeIbmqx5().numQubits(), 16u);
    EXPECT_EQ(makeIbmq16().numQubits(), 14u);
    EXPECT_EQ(makeProposed96().numQubits(), 96u);
}

TEST(DeviceTest, Figure5RouteExists)
{
    // Fig. 5: on ibmqx3, control q5 travels q5 -> q12 -> q11, and q11
    // couples with q10.
    Device qx3 = makeIbmqx3();
    EXPECT_TRUE(qx3.coupling().hasUndirectedEdge(5, 12));
    EXPECT_TRUE(qx3.coupling().hasUndirectedEdge(12, 11));
    EXPECT_TRUE(qx3.coupling().hasUndirectedEdge(11, 10));
    auto path = qx3.coupling().shortestPathToNeighbor(5, 10);
    EXPECT_EQ(path.size(), 3u); // two swaps, as in the paper
}

TEST(DeviceTest, SupportsGate)
{
    Device qx4 = makeIbmqx4();
    EXPECT_TRUE(qx4.supportsGate(Gate::h(0)));
    EXPECT_TRUE(qx4.supportsGate(Gate::cnot(1, 0)));  // native edge
    EXPECT_FALSE(qx4.supportsGate(Gate::cnot(0, 1))); // reversed
    EXPECT_FALSE(qx4.supportsGate(Gate::ccx(0, 1, 2)));
    EXPECT_FALSE(qx4.supportsGate(Gate::swap(0, 1)));
    EXPECT_FALSE(qx4.supportsGate(Gate::h(7))); // out of range
    Device sim = Device::simulator(5);
    EXPECT_TRUE(sim.supportsGate(Gate::cnot(0, 4)));
}

TEST(DeviceTest, Proposed96Layout)
{
    Device dev = makeProposed96();
    const CouplingMap &map = dev.coupling();
    // Row chains: q5-q6 coupled; row boundary q19 / q20 not directly.
    EXPECT_TRUE(map.hasUndirectedEdge(5, 6));
    EXPECT_FALSE(map.hasUndirectedEdge(19, 20));
    // Vertical rung every 4 columns: q4-q24 yes, q5-q25 no (reached
    // through q4/q24 or q8/q28).
    EXPECT_TRUE(map.hasUndirectedEdge(4, 24));
    EXPECT_FALSE(map.hasUndirectedEdge(5, 25));
    // Complexity far below the small machines (paper: it decreases
    // with size).
    EXPECT_LT(dev.couplingComplexity(),
              makeIbmqx3().couplingComplexity());
}

TEST(DeviceTest, BuiltinLookup)
{
    EXPECT_EQ(builtinDevice("ibmqx4").numQubits(), 5u);
    EXPECT_EQ(builtinDevice("proposed_96").numQubits(), 96u);
    EXPECT_THROW(builtinDevice("nonexistent"), UserError);
}

TEST(LoaderTest, ParsesPaperStyleDictionary)
{
    Device dev = parseDeviceString("# my device\n"
                                   "device toy 5\n"
                                   "0: 1 2\n"
                                   "1: 2\n"
                                   "3: 2, 4\n"
                                   "4: 2\n");
    EXPECT_EQ(dev.name(), "toy");
    EXPECT_EQ(dev.numQubits(), 5u);
    EXPECT_NEAR(dev.couplingComplexity(), 0.3, 1e-12); // same as qx2
}

TEST(LoaderTest, RoundTripsEveryBuiltin)
{
    for (const Device &dev : allBuiltinDevices()) {
        Device reparsed = parseDeviceString(deviceToText(dev));
        EXPECT_EQ(reparsed.name(), dev.name());
        EXPECT_EQ(reparsed.numQubits(), dev.numQubits());
        EXPECT_EQ(reparsed.coupling().couplingCount(),
                  dev.coupling().couplingCount());
        for (Qubit c = 0; c < dev.numQubits(); ++c) {
            EXPECT_EQ(reparsed.coupling().targetsOf(c),
                      dev.coupling().targetsOf(c));
        }
    }
}

TEST(LoaderTest, Errors)
{
    EXPECT_THROW(parseDeviceString(""), ParseError);
    EXPECT_THROW(parseDeviceString("device x 0\n"), ParseError);
    EXPECT_THROW(parseDeviceString("device x 2\n0: 5\n"), ParseError);
    EXPECT_THROW(parseDeviceString("device x 2\n0: 0\n"), ParseError);
    EXPECT_THROW(parseDeviceString("device x 2\nbogus line\n"),
                 ParseError);
    EXPECT_THROW(loadDeviceFile("/nonexistent/device.txt"), UserError);
}

TEST(LoaderTest, ErrorsReportTheOffendingColumn)
{
    // Diagnostics used to report column 0 for everything; they must
    // now point at the bad token itself.
    auto columnOf = [](const std::string &text) {
        try {
            parseDeviceString(text);
        } catch (const ParseError &e) {
            return std::pair<int, int>{e.line(), e.column()};
        }
        return std::pair<int, int>{-1, -1};
    };

    // "x" is the 2nd target on line 2; it starts at column 6.
    EXPECT_EQ(columnOf("device d 2\n0: 1 x\n"), (std::pair<int, int>{2, 6}));
    // Bad qubit count in the header, column 10.
    EXPECT_EQ(columnOf("device d many\n"), (std::pair<int, int>{1, 10}));
    // Out-of-range target index.
    EXPECT_EQ(columnOf("device d 2\n0: 5\n"), (std::pair<int, int>{2, 4}));
    // Self-coupling points at the repeated index.
    EXPECT_EQ(columnOf("device d 2\n0: 0\n"), (std::pair<int, int>{2, 4}));
    // Bad control before the colon.
    EXPECT_EQ(columnOf("device d 2\nz: 1\n"), (std::pair<int, int>{2, 1}));
}
