/**
 * @file
 * Replays the committed reproducer corpus (tests/corpus/) through the
 * full compile pipeline and oracle stack. Every entry is a previously
 * shrunk failure whose bug is fixed (or whose fault flag was removed),
 * so replay must be green; a regression here means an old bug is back.
 *
 * Runs under `ctest -L fuzz-corpus` and inside the sanitize preset.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "check/corpus.hpp"
#include "check/fuzzer.hpp"

#ifndef QSYN_CORPUS_DIR
#error "QSYN_CORPUS_DIR must point at tests/corpus"
#endif

using namespace qsyn;
using namespace qsyn::check;

TEST(FuzzCorpus, CorpusIsNonEmpty)
{
    EXPECT_FALSE(listCorpus(QSYN_CORPUS_DIR).empty())
        << "no reproducer entries under " << QSYN_CORPUS_DIR;
}

TEST(FuzzCorpus, EveryEntryReplaysGreen)
{
    for (const std::string &entry : listCorpus(QSYN_CORPUS_DIR)) {
        SCOPED_TRACE(entry);
        Reproducer repro;
        ASSERT_NO_THROW(repro = loadReproducer(entry));
        EXPECT_FALSE(repro.circuit.empty());

        CaseOutcome outcome = replayReproducer(repro);
        EXPECT_EQ(outcome.status, CaseStatus::Ok)
            << (outcome.error.empty() ? outcome.report.summary()
                                      : outcome.error);
    }
}

TEST(FuzzCorpus, EntriesSurviveASaveLoadCycle)
{
    namespace fs = std::filesystem;
    fs::path tmp = fs::temp_directory_path() / "qsyn_corpus_cycle";
    fs::remove_all(tmp);
    for (const std::string &entry : listCorpus(QSYN_CORPUS_DIR)) {
        SCOPED_TRACE(entry);
        Reproducer repro = loadReproducer(entry);
        std::string rewritten = saveReproducer(tmp.string(), repro);
        Reproducer again = loadReproducer(rewritten);
        EXPECT_EQ(again.circuit, repro.circuit);
        EXPECT_EQ(again.device.numQubits(), repro.device.numQubits());
        EXPECT_EQ(compileOptionsToFlags(again.options),
                  compileOptionsToFlags(repro.options));
    }
    fs::remove_all(tmp);
}
