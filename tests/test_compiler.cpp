/**
 * @file
 * Integration tests for the end-to-end compiler (Fig. 2 pipeline):
 * decompose -> place -> route -> optimize -> verify, on real devices.
 */

#include <gtest/gtest.h>

#include "bench_circuits/nct_suite.hpp"
#include "bench_circuits/single_target_suite.hpp"
#include "core/qsyn.hpp"

using namespace qsyn;

namespace {

/** All output gates must be natively executable. */
void
expectNative(const Circuit &circuit, const Device &device)
{
    for (const Gate &g : circuit)
        EXPECT_TRUE(device.supportsGate(g)) << g.toString();
}

} // namespace

TEST(Compiler, BellPairOnIbmqx4)
{
    Device dev = makeIbmqx4();
    Compiler compiler(dev);
    Circuit bell(2, "bell");
    bell.addH(0);
    bell.addCnot(0, 1);

    CompileResult res = compiler.compile(bell);
    expectNative(res.optimized, dev);
    EXPECT_TRUE(res.verified());
    // ibmqx4 has no 0 -> 1 edge; the CNOT must have been reversed or
    // rerouted, so the mapped circuit grows.
    EXPECT_GT(res.unoptimized.gates, 2u);
}

TEST(Compiler, ToffoliOnEverySmallDevice)
{
    Circuit toffoli(3, "ccx");
    toffoli.addCcx(0, 1, 2);
    for (const Device &dev : ibmTableDevices()) {
        Compiler compiler(dev);
        CompileResult res = compiler.compile(toffoli);
        expectNative(res.optimized, dev);
        EXPECT_TRUE(res.verified()) << dev.name();
        EXPECT_EQ(res.techIndependent.tCount, 7u);
        // Optimization never hurts.
        EXPECT_LE(res.optimizedM.cost, res.unoptimized.cost);
    }
}

TEST(Compiler, SimulatorMappingIsUnconstrained)
{
    // On the simulator the decomposed circuit routes unchanged, i.e.
    // the technology-independent and mapped forms coincide (Section 5:
    // tech-independent benchmarks do not expand on the simulator).
    Device sim = Device::simulator(8);
    Compiler compiler(sim);
    Circuit c(4, "mix");
    c.addH(0);
    c.addCcx(0, 1, 2);
    c.addCnot(2, 3);
    CompileResult res = compiler.compile(c);
    EXPECT_EQ(res.unoptimized.gates, res.techIndependent.gates);
    EXPECT_TRUE(res.verified());
}

TEST(Compiler, GeneralizedToffoliAllocatesAncillas)
{
    Device dev = makeIbmqx5();
    Compiler compiler(dev);
    Circuit mcx(5, "t5");
    mcx.addMcx({0, 1, 2, 3}, 4);
    CompileResult res = compiler.compile(mcx);
    EXPECT_FALSE(res.ancillas.empty());
    expectNative(res.optimized, dev);
    EXPECT_TRUE(res.verified());
}

TEST(Compiler, TooWideCircuitThrows)
{
    Device dev = makeIbmqx2();
    Compiler compiler(dev);
    Circuit wide(6, "wide");
    wide.addH(5);
    EXPECT_THROW(compiler.compile(wide), MappingError);
}

TEST(Compiler, QasmOutputReparsesToSameUnitary)
{
    Device dev = makeIbmqx4();
    Compiler compiler(dev);
    Circuit c(3, "roundtrip");
    c.addH(0);
    c.addCcx(0, 1, 2);
    c.addT(1);
    CompileResult res = compiler.compile(c);

    std::string qasm = compiler.toQasm(res);
    Circuit reparsed = frontend::parseQasm(qasm);
    EXPECT_EQ(reparsed.numQubits(), dev.numQubits());

    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    EXPECT_EQ(checker.check(res.optimized, reparsed),
              dd::Equivalence::Equivalent);
}

TEST(Compiler, GreedyPlacementCompilesAndVerifies)
{
    Device dev = makeIbmqx3();
    CompileOptions opts;
    opts.placement = route::PlacementStrategy::Greedy;
    Compiler compiler(dev, opts);
    Circuit c(4, "chain");
    c.addCnot(0, 1);
    c.addCnot(1, 2);
    c.addCnot(2, 3);
    CompileResult res = compiler.compile(c);
    expectNative(res.optimized, dev);
    EXPECT_TRUE(res.verified());
}

TEST(Compiler, VerificationCatchesInjectedFault)
{
    // A deliberately broken "optimizer" result must be rejected: we
    // simulate it by compiling a circuit and then checking a corrupted
    // copy by hand.
    Device dev = makeIbmqx4();
    Compiler compiler(dev);
    Circuit c(2, "victim");
    c.addH(0);
    c.addCnot(0, 1);
    CompileResult res = compiler.compile(c);

    Circuit corrupted = res.optimized;
    corrupted.addX(0); // fault injection

    Circuit reference = res.input.remapped(res.placement,
                                           dev.numQubits());
    dd::Package pkg;
    dd::EquivalenceChecker checker(pkg);
    dd::EquivalenceOptions eopts;
    eopts.ancillaWires = res.ancillas;
    EXPECT_EQ(checker.check(reference, corrupted, eopts),
              dd::Equivalence::NotEquivalent);
}

TEST(Compiler, VerifyOffSkipsChecking)
{
    Device dev = makeIbmqx2();
    CompileOptions opts;
    opts.verify = VerifyMode::Off;
    Compiler compiler(dev, opts);
    Circuit c(2, "noverify");
    c.addCnot(0, 1);
    CompileResult res = compiler.compile(c);
    EXPECT_FALSE(res.verifyRan);
}

TEST(Compiler, MiterModeVerifies)
{
    Device dev = makeIbmqx2();
    CompileOptions opts;
    opts.verify = VerifyMode::Miter;
    Compiler compiler(dev, opts);
    Circuit c(3, "miter");
    c.addH(0);
    c.addCnot(0, 2);
    c.addCnot(1, 0);
    CompileResult res = compiler.compile(c);
    EXPECT_TRUE(res.verified());
}

TEST(Compiler, MeasurementsPassThroughAndSkipVerification)
{
    Device dev = makeIbmqx4();
    Compiler compiler(dev);
    Circuit c(2, "measured");
    c.addH(0);
    c.addCnot(0, 1);
    c.add(Gate::measure(0, 0));
    c.add(Gate::measure(1, 1));
    CompileResult res = compiler.compile(c);
    EXPECT_FALSE(res.verifyRan); // non-unitary input
    size_t measures = 0;
    for (const Gate &g : res.optimized) {
        if (g.kind() == GateKind::Measure)
            ++measures;
    }
    EXPECT_EQ(measures, 2u);
}

TEST(Compiler, SingleTargetBenchmarkEndToEnd)
{
    // One representative Table 3 run: #17 on ibmqx4.
    const auto &suite = bench::singleTargetSuite();
    auto it = std::find_if(suite.begin(), suite.end(), [](const auto &b) {
        return b.name == "#17";
    });
    ASSERT_NE(it, suite.end());
    Circuit input = bench::buildSingleTargetCascade(*it);

    Device dev = makeIbmqx4();
    Compiler compiler(dev);
    CompileResult res = compiler.compile(input);
    expectNative(res.optimized, dev);
    EXPECT_TRUE(res.verified());
    // Mapping to a constrained device expands the circuit.
    EXPECT_GE(res.unoptimized.gates, res.techIndependent.gates);
}

TEST(Compiler, NctBenchmarkEndToEnd)
{
    const auto &suite = bench::nctSuite();
    Circuit input = bench::buildNctBenchmark(suite[0]); // 3_17_14
    for (const Device &dev : ibmTableDevices()) {
        Compiler compiler(dev);
        CompileResult res = compiler.compile(input);
        expectNative(res.optimized, dev);
        EXPECT_TRUE(res.verified()) << dev.name();
    }
}
