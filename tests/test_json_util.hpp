/**
 * @file
 * A minimal strict JSON parser shared by the test binaries that
 * validate machine-readable exports (metrics snapshots, Chrome
 * traces, compile reports, crash dumps): if an exporter emits
 * anything that does not parse, the test fails. Throws
 * std::runtime_error on malformed input. Test-only — the library
 * itself never parses JSON.
 */

#pragma once

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace testjson {

struct Json
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> array;
    std::map<std::string, Json> object;

    const Json &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key '" + key + "'");
        return it->second;
    }
    bool has(const std::string &key) const
    {
        return object.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : s_(text) {}

    Json
    parse()
    {
        Json v = parseValue();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "' got '" + peek() +
                 "'");
        ++pos_;
    }

    Json
    parseValue()
    {
        skipWs();
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n') {
            literal("null");
            return Json{};
        }
        return parseNumber();
    }

    void
    literal(std::string_view word)
    {
        if (s_.substr(pos_, word.size()) != word)
            fail("bad literal");
        pos_ += word.size();
    }

    Json
    parseBool()
    {
        Json v;
        v.type = Json::Type::Bool;
        if (peek() == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
            v.boolean = false;
        }
        return v;
    }

    Json
    parseNumber()
    {
        size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (start == pos_)
            fail("expected number");
        Json v;
        v.type = Json::Type::Number;
        try {
            v.number =
                std::stod(std::string(s_.substr(start, pos_ - start)));
        } catch (const std::exception &) {
            fail("bad number");
        }
        return v;
    }

    Json
    parseString()
    {
        expect('"');
        Json v;
        v.type = Json::Type::String;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                break;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                v.str += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"':
                v.str += '"';
                break;
              case '\\':
                v.str += '\\';
                break;
              case '/':
                v.str += '/';
                break;
              case 'b':
                v.str += '\b';
                break;
              case 'f':
                v.str += '\f';
                break;
              case 'n':
                v.str += '\n';
                break;
              case 'r':
                v.str += '\r';
                break;
              case 't':
                v.str += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                if (code > 0xff)
                    fail("test parser only handles \\u00xx");
                v.str += static_cast<char>(code);
                break;
              }
              default:
                fail("unknown escape");
            }
        }
        return v;
    }

    Json
    parseArray()
    {
        expect('[');
        Json v;
        v.type = Json::Type::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            break;
        }
        return v;
    }

    Json
    parseObject()
    {
        expect('{');
        Json v;
        v.type = Json::Type::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            Json key = parseString();
            skipWs();
            expect(':');
            v.object[key.str] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            break;
        }
        return v;
    }

    std::string_view s_;
    size_t pos_ = 0;
};

inline Json
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace testjson
