/**
 * @file
 * Unit tests for the IR: gate kinds, gate semantics (inverse,
 * commutation), circuit editing, statistics, and remapping.
 */

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "ir/circuit.hpp"
#include "ir/random_circuit.hpp"

using namespace qsyn;

TEST(GateKindTest, Properties)
{
    EXPECT_EQ(baseArity(GateKind::Swap), 2);
    EXPECT_EQ(baseArity(GateKind::H), 1);
    EXPECT_TRUE(isParameterized(GateKind::Rz));
    EXPECT_FALSE(isParameterized(GateKind::T));
    EXPECT_TRUE(isDiagonal(GateKind::T));
    EXPECT_FALSE(isDiagonal(GateKind::H));
    EXPECT_TRUE(isSelfInverse(GateKind::H));
    EXPECT_EQ(inverseKind(GateKind::S), GateKind::Sdg);
    EXPECT_EQ(inverseKind(GateKind::Tdg), GateKind::T);
    EXPECT_EQ(kindName(GateKind::Sdg), "sdg");
}

TEST(GateTest, Classification)
{
    EXPECT_TRUE(Gate::t(0).isTGate());
    EXPECT_TRUE(Gate::tdg(0).isTGate());
    EXPECT_FALSE(Gate::s(0).isTGate());
    EXPECT_FALSE(Gate(GateKind::T, {1}, {0}).isTGate()); // controlled-T
    EXPECT_TRUE(Gate::cnot(0, 1).isCnot());
    EXPECT_FALSE(Gate::x(0).isCnot());
    EXPECT_TRUE(Gate::ccx(0, 1, 2).isToffoli());
    EXPECT_TRUE(Gate::mcx({0, 1, 2}, 3).isGeneralizedToffoli());
}

TEST(GateTest, WireValidation)
{
    EXPECT_THROW(Gate::cnot(1, 1), InternalError);
    EXPECT_THROW(Gate::ccx(0, 0, 1), InternalError);
}

TEST(GateTest, ControlsAreCanonicallySorted)
{
    Gate a = Gate::mcx({3, 1, 2}, 0);
    Gate b = Gate::mcx({1, 2, 3}, 0);
    EXPECT_EQ(a, b);
}

TEST(GateTest, Inverse)
{
    EXPECT_EQ(Gate::h(0).inverse(), Gate::h(0));
    EXPECT_EQ(Gate::s(0).inverse(), Gate::sdg(0));
    EXPECT_EQ(Gate::rz(0, 0.5).inverse(), Gate::rz(0, -0.5));
    EXPECT_TRUE(Gate::t(0).isInverseOf(Gate::tdg(0)));
    EXPECT_TRUE(Gate::cnot(0, 1).isInverseOf(Gate::cnot(0, 1)));
    EXPECT_FALSE(Gate::cnot(0, 1).isInverseOf(Gate::cnot(1, 0)));
}

TEST(GateTest, SwapTargetsAreUnordered)
{
    EXPECT_EQ(Gate::swap(0, 1), Gate::swap(1, 0));
    EXPECT_TRUE(Gate::swap(0, 1).isInverseOf(Gate::swap(1, 0)));
}

TEST(GateTest, Commutation)
{
    // Disjoint wires always commute.
    EXPECT_TRUE(Gate::h(0).commutesWith(Gate::x(1)));
    // Diagonal gates commute with each other.
    EXPECT_TRUE(Gate::t(0).commutesWith(Gate::z(0)));
    EXPECT_TRUE(Gate::cz(0, 1).commutesWith(Gate::t(0)));
    // Diagonal on a control wire commutes with the controlled gate.
    EXPECT_TRUE(Gate::cnot(0, 1).commutesWith(Gate::z(0)));
    EXPECT_TRUE(Gate::cnot(0, 1).commutesWith(Gate::s(0)));
    // X on the target of a CNOT commutes.
    EXPECT_TRUE(Gate::cnot(0, 1).commutesWith(Gate::x(1)));
    EXPECT_TRUE(Gate::cnot(0, 1).commutesWith(Gate::cnot(2, 1)));
    // Non-commuting cases.
    EXPECT_FALSE(Gate::cnot(0, 1).commutesWith(Gate::x(0)));
    EXPECT_FALSE(Gate::cnot(0, 1).commutesWith(Gate::z(1)));
    EXPECT_FALSE(Gate::cnot(0, 1).commutesWith(Gate::cnot(1, 2)));
    EXPECT_FALSE(Gate::h(0).commutesWith(Gate::x(0)));
    // Mixed X/Z type on different shared wires must not commute.
    EXPECT_FALSE(Gate::cnot(0, 1).commutesWith(Gate::cnot(1, 0)));
}

TEST(GateTest, ToString)
{
    EXPECT_EQ(Gate::cnot(2, 5).toString(), "cx q2 -> q5");
    EXPECT_EQ(Gate::ccx(0, 1, 2).toString(), "ccx q0, q1 -> q2");
    EXPECT_EQ(Gate::h(3).toString(), "h q3");
}

TEST(CircuitTest, AddValidatesWires)
{
    Circuit c(2);
    EXPECT_THROW(c.addH(2), InternalError);
    c.addH(1);
    EXPECT_EQ(c.size(), 1u);
}

TEST(CircuitTest, InverseReversesAndInverts)
{
    Circuit c(2);
    c.addH(0);
    c.addT(1);
    c.addCnot(0, 1);
    Circuit inv = c.inverse();
    ASSERT_EQ(inv.size(), 3u);
    EXPECT_TRUE(inv[0].isCnot());
    EXPECT_EQ(inv[1].kind(), GateKind::Tdg);
    EXPECT_EQ(inv[2].kind(), GateKind::H);
}

TEST(CircuitTest, EraseMany)
{
    Circuit c(1);
    for (int i = 0; i < 5; ++i)
        c.addT(0);
    c.eraseMany({0, 2, 4});
    EXPECT_EQ(c.size(), 2u);
    EXPECT_THROW(c.eraseMany({5}), InternalError);
}

TEST(CircuitTest, Stats)
{
    Circuit c(3);
    c.addT(0);
    c.addTdg(1);
    c.addCnot(0, 1);
    c.addCcx(0, 1, 2);
    c.add(Gate::barrier({0, 1, 2}));
    c.addH(2);
    CircuitStats s = computeStats(c);
    EXPECT_EQ(s.volume, 5u); // barrier excluded
    EXPECT_EQ(s.tCount, 2u);
    EXPECT_EQ(s.cnotCount, 1u);
    EXPECT_EQ(s.twoQubit, 1u);
    EXPECT_EQ(s.multiQubit, 1u);
    EXPECT_GE(s.depth, 3u);
}

TEST(CircuitTest, DepthComputesCriticalPath)
{
    Circuit c(2);
    c.addH(0);
    c.addH(1); // parallel with the first
    c.addCnot(0, 1);
    EXPECT_EQ(computeStats(c).depth, 2u);
}

TEST(CircuitTest, Remapped)
{
    Circuit c(2);
    c.addCnot(0, 1);
    Circuit r = c.remapped({5, 3}, 8);
    EXPECT_EQ(r.numQubits(), 8u);
    EXPECT_EQ(r[0].controls()[0], 5u);
    EXPECT_EQ(r[0].target(), 3u);
}

TEST(CircuitTest, NctPredicate)
{
    Circuit c(3);
    c.addX(0);
    c.addCnot(0, 1);
    c.addMcx({0, 1}, 2);
    EXPECT_TRUE(c.isNctCascade());
    c.addH(0);
    EXPECT_FALSE(c.isNctCascade());
}

TEST(RandomCircuitTest, RespectsOptions)
{
    Rng rng(1);
    RandomCircuitOptions opts;
    opts.numQubits = 3;
    opts.numGates = 50;
    opts.maxControls = 2;
    Circuit c = randomCircuit(rng, opts);
    EXPECT_EQ(c.size(), 50u);
    for (const Gate &g : c) {
        EXPECT_LE(g.numControls(), 2u);
        EXPECT_TRUE(g.isUnitary());
    }
}

TEST(RandomCircuitTest, NctCascadeIsNct)
{
    Rng rng(2);
    Circuit c = randomNctCascade(rng, 5, 30, 3);
    EXPECT_TRUE(c.isNctCascade());
    EXPECT_EQ(c.size(), 30u);
}

TEST(RandomCircuitTest, IdenticalSeedsYieldIdenticalCircuits)
{
    RandomCircuitOptions opts;
    opts.numQubits = 5;
    opts.numGates = 40;
    opts.maxControls = 2;
    opts.allowRotations = true;
    opts.seed = 0xfeedbeef;
    Circuit a = randomCircuit(opts);
    Circuit b = randomCircuit(opts);
    EXPECT_EQ(a, b);

    opts.seed = 0xfeedbef0;
    Circuit c = randomCircuit(opts);
    EXPECT_NE(a, c);
}

TEST(RandomCircuitTest, GateSetRestrictionIsHonored)
{
    RandomCircuitOptions opts;
    opts.numQubits = 4;
    opts.numGates = 30;
    opts.maxControls = 2;
    opts.seed = 99;

    opts.gateSet = RandomGateSet::Nct;
    Circuit nct = randomCircuit(opts);
    EXPECT_TRUE(nct.isNctCascade());

    opts.gateSet = RandomGateSet::CnotOnly;
    Circuit cnots = randomCircuit(opts);
    for (const Gate &g : cnots)
        EXPECT_TRUE(g.isCnot()) << g.toString();

    EXPECT_STREQ(randomGateSetName(RandomGateSet::CliffordT),
                 "clifford_t");
    EXPECT_STREQ(randomGateSetName(RandomGateSet::Nct), "nct");
    EXPECT_STREQ(randomGateSetName(RandomGateSet::CnotOnly), "cnot");
}
