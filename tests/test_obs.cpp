/**
 * @file
 * Tests for the observability layer (qsyn::obs): jsonEscape edge
 * cases, counter/gauge/histogram semantics, span nesting across
 * threads, and round-tripping the Chrome trace-event / metrics JSON
 * exports through a real JSON parser.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "ir/circuit.hpp"
#include "qmdd/package.hpp"

using namespace qsyn;

namespace {

/* ------------------------------------------------------------------ */
/* A minimal strict JSON parser: if the exporters emit anything that   */
/* does not parse, these tests fail. Throws std::runtime_error.        */
/* ------------------------------------------------------------------ */

struct Json
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> array;
    std::map<std::string, Json> object;

    const Json &
    at(const std::string &key) const
    {
        auto it = object.find(key);
        if (it == object.end())
            throw std::runtime_error("missing key '" + key + "'");
        return it->second;
    }
    bool has(const std::string &key) const
    {
        return object.count(key) != 0;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : s_(text) {}

    Json
    parse()
    {
        Json v = parseValue();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::runtime_error("JSON parse error at offset " +
                                 std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= s_.size())
            fail("unexpected end");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "' got '" + peek() +
                 "'");
        ++pos_;
    }

    Json
    parseValue()
    {
        skipWs();
        char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n') {
            literal("null");
            return Json{};
        }
        return parseNumber();
    }

    void
    literal(std::string_view word)
    {
        if (s_.substr(pos_, word.size()) != word)
            fail("bad literal");
        pos_ += word.size();
    }

    Json
    parseBool()
    {
        Json v;
        v.type = Json::Type::Bool;
        if (peek() == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
            v.boolean = false;
        }
        return v;
    }

    Json
    parseNumber()
    {
        size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E'))
            ++pos_;
        if (start == pos_)
            fail("expected number");
        Json v;
        v.type = Json::Type::Number;
        try {
            v.number = std::stod(std::string(s_.substr(start, pos_ - start)));
        } catch (const std::exception &) {
            fail("bad number");
        }
        return v;
    }

    Json
    parseString()
    {
        expect('"');
        Json v;
        v.type = Json::Type::String;
        while (true) {
            if (pos_ >= s_.size())
                fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"')
                break;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                v.str += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
              case '"':
                v.str += '"';
                break;
              case '\\':
                v.str += '\\';
                break;
              case '/':
                v.str += '/';
                break;
              case 'b':
                v.str += '\b';
                break;
              case 'f':
                v.str += '\f';
                break;
              case 'n':
                v.str += '\n';
                break;
              case 'r':
                v.str += '\r';
                break;
              case 't':
                v.str += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("short \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                if (code > 0xff)
                    fail("test parser only handles \\u00xx");
                v.str += static_cast<char>(code);
                break;
              }
              default:
                fail("unknown escape");
            }
        }
        return v;
    }

    Json
    parseArray()
    {
        expect('[');
        Json v;
        v.type = Json::Type::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            break;
        }
        return v;
    }

    Json
    parseObject()
    {
        expect('{');
        Json v;
        v.type = Json::Type::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            Json key = parseString();
            skipWs();
            expect(':');
            v.object[key.str] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            break;
        }
        return v;
    }

    std::string_view s_;
    size_t pos_ = 0;
};

Json
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace

/* ------------------------------------------------------------------ */
/* jsonEscape                                                         */
/* ------------------------------------------------------------------ */

TEST(ObsJsonEscape, EdgeCases)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(obs::jsonEscape("C:\\path\\file"), "C:\\\\path\\\\file");
    EXPECT_EQ(obs::jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(obs::jsonEscape(std::string("\x01\x1f", 2)),
              "\\u0001\\u001f");
    EXPECT_EQ(obs::jsonEscape("\b\f"), "\\b\\f");
    EXPECT_EQ(obs::jsonEscape(""), "");
    // UTF-8 multibyte sequences pass through untouched.
    EXPECT_EQ(obs::jsonEscape("q\xc3\xbc" "bit"), "q\xc3\xbc" "bit");
}

TEST(ObsJsonEscape, RoundTripsThroughParser)
{
    std::string nasty = "he said \"q\\b\"\n\ttab\x01end";
    Json v = parseJson("\"" + obs::jsonEscape(nasty) + "\"");
    ASSERT_EQ(v.type, Json::Type::String);
    EXPECT_EQ(v.str, nasty);
}

/* ------------------------------------------------------------------ */
/* Metrics                                                            */
/* ------------------------------------------------------------------ */

TEST(ObsMetrics, CounterAndGaugeSemantics)
{
    obs::MetricsRegistry m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.counter("c"), 0.0);

    m.addCounter("c");
    m.addCounter("c", 2.5);
    EXPECT_DOUBLE_EQ(m.counter("c"), 3.5);

    m.setGauge("g", 7.0);
    m.setGauge("g", 9.0); // last write wins
    EXPECT_DOUBLE_EQ(m.gauge("g"), 9.0);
    EXPECT_FALSE(m.empty());
}

TEST(ObsMetrics, HistogramSemantics)
{
    obs::MetricsRegistry m;
    m.observe("h", 1.0);
    m.observe("h", 4.0);
    m.observe("h", 16.0);
    obs::Histogram h = m.histogram("h");
    EXPECT_EQ(h.count, 3u);
    EXPECT_DOUBLE_EQ(h.sum, 21.0);
    EXPECT_DOUBLE_EQ(h.min, 1.0);
    EXPECT_DOUBLE_EQ(h.max, 16.0);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
    // Power-of-two buckets: 1 -> le_1, 4 -> le_4, 16 -> le_16.
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[2], 1u);
    EXPECT_EQ(h.buckets[4], 1u);
    // Absent histogram is zero-initialized.
    EXPECT_EQ(m.histogram("nope").count, 0u);
}

TEST(ObsMetrics, ThreadSafeCounters)
{
    obs::MetricsRegistry m;
    constexpr int kThreads = 4;
    constexpr int kIncrements = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m] {
            for (int i = 0; i < kIncrements; ++i)
                m.addCounter("shared");
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_DOUBLE_EQ(m.counter("shared"),
                     static_cast<double>(kThreads * kIncrements));
}

TEST(ObsMetrics, JsonSnapshotRoundTrips)
{
    obs::MetricsRegistry m;
    m.addCounter("route.swaps_inserted", 12);
    m.setGauge("qmdd.unique_hit_rate", 0.75);
    m.observe("route.reroute_path_length", 3.0);
    m.observe("route.reroute_path_length", 5.0);

    Json v = parseJson(m.toJson());
    EXPECT_DOUBLE_EQ(
        v.at("counters").at("route.swaps_inserted").number, 12.0);
    EXPECT_DOUBLE_EQ(v.at("gauges").at("qmdd.unique_hit_rate").number,
                     0.75);
    const Json &h =
        v.at("histograms").at("route.reroute_path_length");
    EXPECT_DOUBLE_EQ(h.at("count").number, 2.0);
    EXPECT_DOUBLE_EQ(h.at("sum").number, 8.0);
    EXPECT_DOUBLE_EQ(h.at("min").number, 3.0);
    EXPECT_DOUBLE_EQ(h.at("max").number, 5.0);
    EXPECT_DOUBLE_EQ(h.at("mean").number, 4.0);
}

TEST(ObsMetrics, EmptyRegistryStillValidJson)
{
    obs::MetricsRegistry m;
    Json v = parseJson(m.toJson());
    EXPECT_EQ(v.at("counters").object.size(), 0u);
    EXPECT_EQ(v.at("gauges").object.size(), 0u);
    EXPECT_EQ(v.at("histograms").object.size(), 0u);
}

/* ------------------------------------------------------------------ */
/* Spans and sinks                                                    */
/* ------------------------------------------------------------------ */

TEST(ObsSpan, NoSinkMeansNoEventsAndNoTiming)
{
    ASSERT_EQ(obs::sink(), nullptr);
    obs::Span span("orphan");
    span.arg("ignored", 1.0);
    EXPECT_DOUBLE_EQ(span.seconds(), 0.0); // untimed without a sink
    span.finish();

    // kTimed spans measure even without a sink (compile-stage timings).
    obs::Span timed("stage", obs::kTimed);
    EXPECT_GE(timed.seconds(), 0.0);
}

TEST(ObsSpan, RecordsEventWithArgs)
{
    obs::ScopedSink sink;
    {
        obs::Span span("unit.work", "test");
        span.arg("gates", 42);
        span.arg("name", "he\"llo\\");
        span.arg("ratio", 0.5);
    }
    std::vector<obs::TraceEvent> events = sink->events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "unit.work");
    EXPECT_STREQ(events[0].category, "test");
    EXPECT_GE(events[0].durUs, 0.0);
    EXPECT_GE(events[0].tsUs, 0.0);

    // The full trace export (with the odd string arg) must parse.
    Json v = parseJson(sink->traceJson());
    const Json &list = v.at("traceEvents");
    ASSERT_EQ(list.type, Json::Type::Array);
    // [0] is the process_name metadata record.
    ASSERT_EQ(list.array.size(), 2u);
    const Json &ev = list.array[1];
    EXPECT_EQ(ev.at("name").str, "unit.work");
    EXPECT_EQ(ev.at("ph").str, "X");
    EXPECT_DOUBLE_EQ(ev.at("args").at("gates").number, 42.0);
    EXPECT_EQ(ev.at("args").at("name").str, "he\"llo\\");
    EXPECT_DOUBLE_EQ(ev.at("args").at("ratio").number, 0.5);
}

TEST(ObsSpan, NestingAcrossThreads)
{
    obs::ScopedSink sink;
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            obs::Span outer("outer");
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            {
                obs::Span inner("inner");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    std::vector<obs::TraceEvent> events = sink->events();
    ASSERT_EQ(events.size(), 2u * kThreads);

    // Group by thread id: each thread contributes one outer + one
    // inner, and the inner's [ts, ts+dur] nests inside the outer's.
    std::map<std::uint32_t, std::vector<const obs::TraceEvent *>>
        by_tid;
    for (const obs::TraceEvent &e : events)
        by_tid[e.tid].push_back(&e);
    ASSERT_EQ(by_tid.size(), static_cast<size_t>(kThreads));
    for (const auto &[tid, evs] : by_tid) {
        ASSERT_EQ(evs.size(), 2u);
        const obs::TraceEvent *outer = nullptr, *inner = nullptr;
        for (const obs::TraceEvent *e : evs) {
            if (e->name == "outer")
                outer = e;
            else if (e->name == "inner")
                inner = e;
        }
        ASSERT_NE(outer, nullptr);
        ASSERT_NE(inner, nullptr);
        EXPECT_GE(inner->tsUs, outer->tsUs);
        EXPECT_LE(inner->tsUs + inner->durUs,
                  outer->tsUs + outer->durUs);
        EXPECT_GE(outer->durUs, inner->durUs);
    }
}

TEST(ObsSink, ScopedInstallAndClear)
{
    EXPECT_EQ(obs::sink(), nullptr);
    {
        obs::ScopedSink sink;
        EXPECT_EQ(obs::sink(), sink.get());
        EXPECT_TRUE(obs::enabled());
        {
            obs::Span span("x");
        }
        EXPECT_EQ(sink->events().size(), 1u);
        sink->clearEvents();
        EXPECT_EQ(sink->events().size(), 0u);
    }
    EXPECT_EQ(obs::sink(), nullptr);
    EXPECT_FALSE(obs::enabled());
}

TEST(ObsSink, TraceJsonAlwaysParses)
{
    obs::ScopedSink sink;
    // No events at all: still a valid document with the metadata row.
    Json empty = parseJson(sink->traceJson());
    EXPECT_EQ(empty.at("traceEvents").array.size(), 1u);
    EXPECT_EQ(empty.at("displayTimeUnit").str, "ms");
}

/* ------------------------------------------------------------------ */
/* Logging                                                            */
/* ------------------------------------------------------------------ */

TEST(ObsLog, LevelParsing)
{
    obs::LogLevel level;
    EXPECT_TRUE(obs::parseLogLevel("quiet", &level));
    EXPECT_EQ(level, obs::LogLevel::Quiet);
    EXPECT_TRUE(obs::parseLogLevel("info", &level));
    EXPECT_EQ(level, obs::LogLevel::Info);
    EXPECT_TRUE(obs::parseLogLevel("debug", &level));
    EXPECT_EQ(level, obs::LogLevel::Debug);
    EXPECT_TRUE(obs::parseLogLevel("trace", &level));
    EXPECT_EQ(level, obs::LogLevel::Trace);
    EXPECT_FALSE(obs::parseLogLevel("verbose", &level));
    EXPECT_STREQ(obs::logLevelName(obs::LogLevel::Debug), "debug");
}

TEST(ObsLog, GatedByLevelAndCapturable)
{
    std::ostringstream captured;
    obs::setLogStream(&captured);
    obs::setLogLevel(obs::LogLevel::Info);

    QSYN_OBS_LOG(Info, "test") << "visible " << 42;
    QSYN_OBS_LOG(Debug, "test") << "hidden";

    obs::setLogLevel(obs::LogLevel::Quiet);
    QSYN_OBS_LOG(Info, "test") << "also hidden";

    obs::setLogStream(nullptr);

    EXPECT_EQ(captured.str(), "[info] test: visible 42\n");
    EXPECT_FALSE(obs::logEnabled(obs::LogLevel::Info));
}

TEST(ObsMetrics, PackagePublishesAllocatorAndTableInternals)
{
    obs::ScopedSink sink;
    qsyn::dd::PackageConfig cfg;
    cfg.initialUniqueCapacity = 64; // force at least one rehash
    qsyn::dd::Package pkg(cfg);
    // Dense enough that the 64-slot table must grow at least once.
    qsyn::Circuit c(5);
    for (int i = 0; i < 12; ++i) {
        c.addH(static_cast<qsyn::Qubit>(i % 5));
        c.addCcx(static_cast<qsyn::Qubit>(i % 5),
                 static_cast<qsyn::Qubit>((i + 1) % 5),
                 static_cast<qsyn::Qubit>((i + 2) % 5));
        c.addT(static_cast<qsyn::Qubit>((i + 3) % 5));
    }
    (void)pkg.buildCircuit(c);
    pkg.collectGarbage({}); // populate the free list
    pkg.publishMetrics();

    const obs::MetricsRegistry &m = sink->metrics();
    // Allocator internals.
    EXPECT_GT(m.gauge("qmdd.arena_nodes"), 0.0);
    EXPECT_GT(m.gauge("qmdd.free_list_length"), 0.0);
    EXPECT_DOUBLE_EQ(m.gauge("qmdd.arena_nodes"),
                     static_cast<double>(pkg.arenaNodes()));
    EXPECT_DOUBLE_EQ(m.gauge("qmdd.free_list_length"),
                     static_cast<double>(pkg.freeListLength()));
    // Unique-table shape.
    EXPECT_DOUBLE_EQ(m.gauge("qmdd.unique_capacity"),
                     static_cast<double>(pkg.uniqueCapacity()));
    EXPECT_GE(m.gauge("qmdd.unique_load_factor"), 0.0);
    EXPECT_LT(m.gauge("qmdd.unique_load_factor"), 1.0);
    EXPECT_GE(m.gauge("qmdd.unique_rehashes"), 1.0);
    // Per-cache eviction counters are present (zero is fine for a
    // circuit this small, but the gauges themselves must exist).
    Json v = parseJson(sink->metricsJson());
    for (const char *g :
         {"qmdd.mul_evictions", "qmdd.add_evictions",
          "qmdd.ct_evictions", "qmdd.live_nodes", "qmdd.peak_nodes"})
        EXPECT_NO_THROW(v.at("gauges").at(g)) << g;
}
