/**
 * @file
 * Tests for the observability layer (qsyn::obs): jsonEscape edge
 * cases, counter/gauge/histogram semantics, span nesting across
 * threads, and round-tripping the Chrome trace-event / metrics JSON
 * exports through a real JSON parser.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "ir/circuit.hpp"
#include "qmdd/package.hpp"

#include "test_json_util.hpp"

using namespace qsyn;

namespace {

using testjson::Json;
using testjson::parseJson;

} // namespace

/* ------------------------------------------------------------------ */
/* jsonEscape                                                         */
/* ------------------------------------------------------------------ */

TEST(ObsJsonEscape, EdgeCases)
{
    EXPECT_EQ(obs::jsonEscape("plain"), "plain");
    EXPECT_EQ(obs::jsonEscape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(obs::jsonEscape("C:\\path\\file"), "C:\\\\path\\\\file");
    EXPECT_EQ(obs::jsonEscape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
    EXPECT_EQ(obs::jsonEscape(std::string("\x01\x1f", 2)),
              "\\u0001\\u001f");
    EXPECT_EQ(obs::jsonEscape("\b\f"), "\\b\\f");
    EXPECT_EQ(obs::jsonEscape(""), "");
    // UTF-8 multibyte sequences pass through untouched.
    EXPECT_EQ(obs::jsonEscape("q\xc3\xbc" "bit"), "q\xc3\xbc" "bit");
}

TEST(ObsJsonEscape, RoundTripsThroughParser)
{
    std::string nasty = "he said \"q\\b\"\n\ttab\x01end";
    Json v = parseJson("\"" + obs::jsonEscape(nasty) + "\"");
    ASSERT_EQ(v.type, Json::Type::String);
    EXPECT_EQ(v.str, nasty);
}

/* ------------------------------------------------------------------ */
/* Metrics                                                            */
/* ------------------------------------------------------------------ */

TEST(ObsMetrics, CounterAndGaugeSemantics)
{
    obs::MetricsRegistry m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.counter("c"), 0.0);

    m.addCounter("c");
    m.addCounter("c", 2.5);
    EXPECT_DOUBLE_EQ(m.counter("c"), 3.5);

    m.setGauge("g", 7.0);
    m.setGauge("g", 9.0); // last write wins
    EXPECT_DOUBLE_EQ(m.gauge("g"), 9.0);
    EXPECT_FALSE(m.empty());
}

TEST(ObsMetrics, HistogramSemantics)
{
    obs::MetricsRegistry m;
    m.observe("h", 1.0);
    m.observe("h", 4.0);
    m.observe("h", 16.0);
    obs::Histogram h = m.histogram("h");
    EXPECT_EQ(h.count, 3u);
    EXPECT_DOUBLE_EQ(h.sum, 21.0);
    EXPECT_DOUBLE_EQ(h.min, 1.0);
    EXPECT_DOUBLE_EQ(h.max, 16.0);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
    // Power-of-two buckets: 1 -> le_1, 4 -> le_4, 16 -> le_16.
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[2], 1u);
    EXPECT_EQ(h.buckets[4], 1u);
    // Absent histogram is zero-initialized.
    EXPECT_EQ(m.histogram("nope").count, 0u);
}

TEST(ObsMetrics, ThreadSafeCounters)
{
    obs::MetricsRegistry m;
    constexpr int kThreads = 4;
    constexpr int kIncrements = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&m] {
            for (int i = 0; i < kIncrements; ++i)
                m.addCounter("shared");
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_DOUBLE_EQ(m.counter("shared"),
                     static_cast<double>(kThreads * kIncrements));
}

TEST(ObsMetrics, JsonSnapshotRoundTrips)
{
    obs::MetricsRegistry m;
    m.addCounter("route.swaps_inserted", 12);
    m.setGauge("qmdd.unique_hit_rate", 0.75);
    m.observe("route.reroute_path_length", 3.0);
    m.observe("route.reroute_path_length", 5.0);

    Json v = parseJson(m.toJson());
    EXPECT_DOUBLE_EQ(
        v.at("counters").at("route.swaps_inserted").number, 12.0);
    EXPECT_DOUBLE_EQ(v.at("gauges").at("qmdd.unique_hit_rate").number,
                     0.75);
    const Json &h =
        v.at("histograms").at("route.reroute_path_length");
    EXPECT_DOUBLE_EQ(h.at("count").number, 2.0);
    EXPECT_DOUBLE_EQ(h.at("sum").number, 8.0);
    EXPECT_DOUBLE_EQ(h.at("min").number, 3.0);
    EXPECT_DOUBLE_EQ(h.at("max").number, 5.0);
    EXPECT_DOUBLE_EQ(h.at("mean").number, 4.0);
}

TEST(ObsMetrics, EmptyRegistryStillValidJson)
{
    obs::MetricsRegistry m;
    Json v = parseJson(m.toJson());
    EXPECT_EQ(v.at("counters").object.size(), 0u);
    EXPECT_EQ(v.at("gauges").object.size(), 0u);
    EXPECT_EQ(v.at("histograms").object.size(), 0u);
}

/* ------------------------------------------------------------------ */
/* Spans and sinks                                                    */
/* ------------------------------------------------------------------ */

TEST(ObsSpan, NoSinkMeansNoEventsAndNoTiming)
{
    ASSERT_EQ(obs::sink(), nullptr);
    obs::Span span("orphan");
    span.arg("ignored", 1.0);
    EXPECT_DOUBLE_EQ(span.seconds(), 0.0); // untimed without a sink
    span.finish();

    // kTimed spans measure even without a sink (compile-stage timings).
    obs::Span timed("stage", obs::kTimed);
    EXPECT_GE(timed.seconds(), 0.0);
}

TEST(ObsSpan, RecordsEventWithArgs)
{
    obs::ScopedSink sink;
    {
        obs::Span span("unit.work", "test");
        span.arg("gates", 42);
        span.arg("name", "he\"llo\\");
        span.arg("ratio", 0.5);
    }
    std::vector<obs::TraceEvent> events = sink->events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "unit.work");
    EXPECT_STREQ(events[0].category, "test");
    EXPECT_GE(events[0].durUs, 0.0);
    EXPECT_GE(events[0].tsUs, 0.0);

    // The full trace export (with the odd string arg) must parse.
    Json v = parseJson(sink->traceJson());
    const Json &list = v.at("traceEvents");
    ASSERT_EQ(list.type, Json::Type::Array);
    // [0] is the process_name metadata record.
    ASSERT_EQ(list.array.size(), 2u);
    const Json &ev = list.array[1];
    EXPECT_EQ(ev.at("name").str, "unit.work");
    EXPECT_EQ(ev.at("ph").str, "X");
    EXPECT_DOUBLE_EQ(ev.at("args").at("gates").number, 42.0);
    EXPECT_EQ(ev.at("args").at("name").str, "he\"llo\\");
    EXPECT_DOUBLE_EQ(ev.at("args").at("ratio").number, 0.5);
}

TEST(ObsSpan, NestingAcrossThreads)
{
    obs::ScopedSink sink;
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            obs::Span outer("outer");
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            {
                obs::Span inner("inner");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();

    std::vector<obs::TraceEvent> events = sink->events();
    ASSERT_EQ(events.size(), 2u * kThreads);

    // Group by thread id: each thread contributes one outer + one
    // inner, and the inner's [ts, ts+dur] nests inside the outer's.
    std::map<std::uint32_t, std::vector<const obs::TraceEvent *>>
        by_tid;
    for (const obs::TraceEvent &e : events)
        by_tid[e.tid].push_back(&e);
    ASSERT_EQ(by_tid.size(), static_cast<size_t>(kThreads));
    for (const auto &[tid, evs] : by_tid) {
        ASSERT_EQ(evs.size(), 2u);
        const obs::TraceEvent *outer = nullptr, *inner = nullptr;
        for (const obs::TraceEvent *e : evs) {
            if (e->name == "outer")
                outer = e;
            else if (e->name == "inner")
                inner = e;
        }
        ASSERT_NE(outer, nullptr);
        ASSERT_NE(inner, nullptr);
        EXPECT_GE(inner->tsUs, outer->tsUs);
        EXPECT_LE(inner->tsUs + inner->durUs,
                  outer->tsUs + outer->durUs);
        EXPECT_GE(outer->durUs, inner->durUs);
    }
}

TEST(ObsSink, ScopedInstallAndClear)
{
    EXPECT_EQ(obs::sink(), nullptr);
    {
        obs::ScopedSink sink;
        EXPECT_EQ(obs::sink(), sink.get());
        EXPECT_TRUE(obs::enabled());
        {
            obs::Span span("x");
        }
        EXPECT_EQ(sink->events().size(), 1u);
        sink->clearEvents();
        EXPECT_EQ(sink->events().size(), 0u);
    }
    EXPECT_EQ(obs::sink(), nullptr);
    EXPECT_FALSE(obs::enabled());
}

TEST(ObsSink, TraceJsonAlwaysParses)
{
    obs::ScopedSink sink;
    // No events at all: still a valid document with the metadata row.
    Json empty = parseJson(sink->traceJson());
    EXPECT_EQ(empty.at("traceEvents").array.size(), 1u);
    EXPECT_EQ(empty.at("displayTimeUnit").str, "ms");
}

/* ------------------------------------------------------------------ */
/* Logging                                                            */
/* ------------------------------------------------------------------ */

TEST(ObsLog, LevelParsing)
{
    obs::LogLevel level;
    EXPECT_TRUE(obs::parseLogLevel("quiet", &level));
    EXPECT_EQ(level, obs::LogLevel::Quiet);
    EXPECT_TRUE(obs::parseLogLevel("info", &level));
    EXPECT_EQ(level, obs::LogLevel::Info);
    EXPECT_TRUE(obs::parseLogLevel("debug", &level));
    EXPECT_EQ(level, obs::LogLevel::Debug);
    EXPECT_TRUE(obs::parseLogLevel("trace", &level));
    EXPECT_EQ(level, obs::LogLevel::Trace);
    EXPECT_FALSE(obs::parseLogLevel("verbose", &level));
    EXPECT_STREQ(obs::logLevelName(obs::LogLevel::Debug), "debug");
}

TEST(ObsLog, GatedByLevelAndCapturable)
{
    std::ostringstream captured;
    obs::setLogStream(&captured);
    obs::setLogLevel(obs::LogLevel::Info);

    QSYN_OBS_LOG(Info, "test") << "visible " << 42;
    QSYN_OBS_LOG(Debug, "test") << "hidden";

    obs::setLogLevel(obs::LogLevel::Quiet);
    QSYN_OBS_LOG(Info, "test") << "also hidden";

    obs::setLogStream(nullptr);

    EXPECT_EQ(captured.str(), "[info] test: visible 42\n");
    EXPECT_FALSE(obs::logEnabled(obs::LogLevel::Info));
}

TEST(ObsMetrics, PackagePublishesAllocatorAndTableInternals)
{
    obs::ScopedSink sink;
    qsyn::dd::PackageConfig cfg;
    cfg.initialUniqueCapacity = 64; // force at least one rehash
    qsyn::dd::Package pkg(cfg);
    // Dense enough that the 64-slot table must grow at least once.
    qsyn::Circuit c(5);
    for (int i = 0; i < 12; ++i) {
        c.addH(static_cast<qsyn::Qubit>(i % 5));
        c.addCcx(static_cast<qsyn::Qubit>(i % 5),
                 static_cast<qsyn::Qubit>((i + 1) % 5),
                 static_cast<qsyn::Qubit>((i + 2) % 5));
        c.addT(static_cast<qsyn::Qubit>((i + 3) % 5));
    }
    (void)pkg.buildCircuit(c);
    pkg.collectGarbage({}); // populate the free list
    pkg.publishMetrics();

    const obs::MetricsRegistry &m = sink->metrics();
    // Allocator internals.
    EXPECT_GT(m.gauge("qmdd.arena_nodes"), 0.0);
    EXPECT_GT(m.gauge("qmdd.free_list_length"), 0.0);
    EXPECT_DOUBLE_EQ(m.gauge("qmdd.arena_nodes"),
                     static_cast<double>(pkg.arenaNodes()));
    EXPECT_DOUBLE_EQ(m.gauge("qmdd.free_list_length"),
                     static_cast<double>(pkg.freeListLength()));
    // Unique-table shape.
    EXPECT_DOUBLE_EQ(m.gauge("qmdd.unique_capacity"),
                     static_cast<double>(pkg.uniqueCapacity()));
    EXPECT_GE(m.gauge("qmdd.unique_load_factor"), 0.0);
    EXPECT_LT(m.gauge("qmdd.unique_load_factor"), 1.0);
    EXPECT_GE(m.gauge("qmdd.unique_rehashes"), 1.0);
    // Per-cache eviction counters are present (zero is fine for a
    // circuit this small, but the gauges themselves must exist).
    Json v = parseJson(sink->metricsJson());
    for (const char *g :
         {"qmdd.mul_evictions", "qmdd.add_evictions",
          "qmdd.ct_evictions", "qmdd.live_nodes", "qmdd.peak_nodes"})
        EXPECT_NO_THROW(v.at("gauges").at(g)) << g;
}
