/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out (not
 * paper tables; engineering evidence):
 *
 *   A. MCX decomposition strategy (clean v-chain / dirty v-chain /
 *      split / roots) - gate count and Eqn. 2 cost of T6..T10 on the
 *      96-qubit machine.
 *   B. Cost-function weights - how Eqn. 2 vs T-heavy vs volume-only
 *      weights change what the optimizer reports.
 *   C. CTR path policy - control-walks (paper) vs meet-in-the-middle.
 *   D. Placement - identity (paper) vs greedy interaction placement.
 */

#include <iostream>

#include "bench_circuits/mcx_suite.hpp"
#include "bench_circuits/nct_suite.hpp"
#include "bench_circuits/single_target_suite.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table_printer.hpp"

using namespace qsyn;
using namespace qsyn::bench;

namespace {

void
ablationMcxStrategy()
{
    std::cout << "=== Ablation A: MCX decomposition strategy (T8 gate: "
                 "7 controls + target) ===\n\n";
    TablePrinter table({"Strategy", "Toffoli-level gates",
                        "Clifford+T gates", "T-count", "Ancillas"});
    Circuit input(26, "t8");
    std::vector<Qubit> controls;
    for (Qubit i = 1; i <= 7; ++i)
        controls.push_back(i);
    input.addMcx(controls, 25);

    using decompose::McxStrategy;
    for (McxStrategy strategy :
         {McxStrategy::CleanVChain, McxStrategy::DirtyVChain,
          McxStrategy::Split, McxStrategy::Roots}) {
        decompose::DecomposeOptions nct_opts;
        nct_opts.mcxStrategy = strategy;
        nct_opts.lowerToffoli = false;
        nct_opts.maxQubits = 64;
        auto nct = decompose::decomposeToPrimitives(input, nct_opts);

        decompose::DecomposeOptions full_opts = nct_opts;
        full_opts.lowerToffoli = true;
        auto full = decompose::decomposeToPrimitives(input, full_opts);
        CircuitStats stats = computeStats(full.circuit);
        table.addRow({decompose::mcxStrategyName(strategy),
                      std::to_string(nct.circuit.size()),
                      std::to_string(stats.volume),
                      std::to_string(stats.tCount),
                      std::to_string(full.ancillas.size())});
    }
    table.print(std::cout);
    std::cout << "\n";
}

void
ablationCostWeights()
{
    std::cout << "=== Ablation B: cost-function weights (benchmark "
                 "#017f on ibmqx5) ===\n\n";
    TablePrinter table({"Weights (t/c/a)", "Unopt cost", "Opt cost",
                        "% decrease", "Opt gates"});
    const auto &suite = singleTargetSuite();
    const auto &bench = suite[19]; // #017f
    Circuit input = buildSingleTargetCascade(bench);
    Device dev = makeIbmqx5();

    struct Variant
    {
        const char *label;
        opt::CostWeights weights;
    };
    const Variant variants[] = {
        {"0.5/0.25/1 (Eqn. 2)", {0.5, 0.25, 1.0}},
        {"10/0.25/1 (T-heavy)", {10.0, 0.25, 1.0}},
        {"0/0/1 (volume only)", {0.0, 0.0, 1.0}},
        {"0/5/1 (CNOT-heavy)", {0.0, 5.0, 1.0}},
    };
    for (const Variant &v : variants) {
        CompileOptions options;
        options.optimizer.weights = v.weights;
        options.verify = VerifyMode::Full;
        Compiler compiler(dev, options);
        CompileResult res = compiler.compile(input);
        table.addRow({v.label, formatNumber(res.unoptimized.cost, 2),
                      formatNumber(res.optimizedM.cost, 2),
                      percentCell(res.percentCostDecrease()),
                      std::to_string(res.optimizedM.gates)});
    }
    table.print(std::cout);
    std::cout << "\n";
}

void
ablationRoutePolicy()
{
    std::cout << "=== Ablation C: CTR policy - control-walks (paper) vs "
                 "meet-in-the-middle vs dynamic layout ===\n\n";
    TablePrinter table({"Benchmark", "Device", "CTR gates", "MiM gates",
                        "Dyn gates", "CTR opt cost", "MiM opt cost",
                        "Dyn opt cost"});
    const auto &suite = singleTargetSuite();
    for (const char *name : {"#0356", "#033f", "#000f"}) {
        auto it = std::find_if(
            suite.begin(), suite.end(),
            [&](const auto &b) { return b.name == name; });
        Circuit input = buildSingleTargetCascade(*it);
        for (const char *dev_name : {"ibmqx3", "ibmq_16"}) {
            Device dev = builtinDevice(dev_name);
            CompileOptions ctr_opts;
            Compiler ctr(dev, ctr_opts);
            CompileResult a = ctr.compile(input);

            CompileOptions mim_opts;
            mim_opts.routing.meetInMiddle = true;
            Compiler mim(dev, mim_opts);
            CompileResult b = mim.compile(input);

            CompileOptions dyn_opts;
            dyn_opts.routing.dynamicLayout = true;
            Compiler dyn(dev, dyn_opts);
            CompileResult d = dyn.compile(input);

            table.addRow({name, dev_name,
                          std::to_string(a.unoptimized.gates),
                          std::to_string(b.unoptimized.gates),
                          std::to_string(d.unoptimized.gates),
                          formatNumber(a.optimizedM.cost, 2),
                          formatNumber(b.optimizedM.cost, 2),
                          formatNumber(d.optimizedM.cost, 2)});
        }
    }
    table.print(std::cout);
    std::cout << "\n";
}

void
ablationPlacement()
{
    std::cout << "=== Ablation D: identity placement (paper) vs greedy "
                 "interaction placement ===\n\n";
    TablePrinter table({"Benchmark", "Device", "Identity opt cost",
                        "Greedy opt cost"});
    const auto &suite = singleTargetSuite();
    for (const char *name : {"#0001", "#0357", "#013f"}) {
        auto it = std::find_if(
            suite.begin(), suite.end(),
            [&](const auto &b) { return b.name == name; });
        Circuit input = buildSingleTargetCascade(*it);
        for (const char *dev_name : {"ibmqx5", "ibmq_16"}) {
            Device dev = builtinDevice(dev_name);
            CompileOptions id_opts;
            Compiler id_compiler(dev, id_opts);
            CompileResult a = id_compiler.compile(input);

            CompileOptions greedy_opts;
            greedy_opts.placement = route::PlacementStrategy::Greedy;
            Compiler greedy_compiler(dev, greedy_opts);
            CompileResult b = greedy_compiler.compile(input);

            table.addRow({name, dev_name,
                          formatNumber(a.optimizedM.cost, 2),
                          formatNumber(b.optimizedM.cost, 2)});
        }
    }
    table.print(std::cout);
    std::cout << "\n(Greedy placement is the paper's 'ideal qubit "
                 "placement' future-work item; every run above is "
                 "QMDD-verified.)\n";
}

void
ablationPhasePolynomial()
{
    std::cout << "=== Ablation E: phase-polynomial T-count reduction "
                 "(extension, off by default) ===\n\n";
    TablePrinter table({"Benchmark", "Device", "Baseline T", "PhasePoly T",
                        "Baseline cost", "PhasePoly cost", "Verified"});
    for (const auto &bench : nctSuite()) {
        Circuit input = buildNctBenchmark(bench);
        for (const char *dev_name : {"ibmqx5", "ibmq_16"}) {
            Device dev = builtinDevice(dev_name);
            if (input.numQubits() > dev.numQubits())
                continue;
            CompileOptions base;
            Compiler base_compiler(dev, base);
            CompileResult a = base_compiler.compile(input);

            CompileOptions poly;
            poly.optimizer.enablePhasePolynomial = true;
            Compiler poly_compiler(dev, poly);
            CompileResult b = poly_compiler.compile(input);

            table.addRow({bench.name, dev_name,
                          std::to_string(a.optimizedM.tCount),
                          std::to_string(b.optimizedM.tCount),
                          formatNumber(a.optimizedM.cost, 2),
                          formatNumber(b.optimizedM.cost, 2),
                          a.verified() && b.verified() ? "both" : "NO"});
        }
    }
    table.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    ablationMcxStrategy();
    ablationCostWeights();
    ablationRoutePolicy();
    ablationPlacement();
    ablationPhasePolynomial();
    return 0;
}
