/**
 * @file
 * Reproduces Table 3 and Table 4: the "Optimal single-target gate"
 * benchmarks compiled to the five IBM devices, reporting
 * (T-count / gates / Eqn. 2 cost) for the unoptimized and optimized
 * mappings, the technology-independent form, and the percent cost
 * decrease per device. See DESIGN.md: the original benchmark files are
 * regenerated from their hex truth tables, so absolute counts differ
 * from the paper while the claims (expansion on constrained devices,
 * no expansion on the simulator, ~5-10 % optimization recovery)
 * reproduce.
 */

#include <iostream>
#include <map>

#include "bench_circuits/single_target_suite.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table_printer.hpp"

using namespace qsyn;
using namespace qsyn::bench;

int
main()
{
    auto devices = ibmTableDevices();
    const auto &suite = singleTargetSuite();

    TablePrinter table3({"Ftn.", "Qubits", "Tech.Ind. (T/g/cost)",
                         "Paper T.I.", "Device", "Unopt (T/g/cost)",
                         "Opt (T/g/cost)", "Time"});
    TablePrinter table4({"Funct.", "ibmqx2", "ibmqx3", "ibmqx4",
                         "ibmqx5", "ibmq_16"});

    std::map<std::string, double> average_decrease;
    std::map<std::string, int> device_rows;
    size_t improved = 0;
    size_t mapped_total = 0;
    double slowest = 0.0;

    for (const auto &bench : suite) {
        Circuit input = buildSingleTargetCascade(bench);
        std::vector<std::string> t4_row{bench.name};

        bool first_device = true;
        for (const Device &dev : devices) {
            if (input.numQubits() > dev.numQubits()) {
                table3.addRow({bench.name,
                               std::to_string(input.numQubits()), "",
                               "", dev.name(), "N/A", "N/A", ""});
                t4_row.push_back("N/A");
                continue;
            }
            CompileResult res = compileForTable(input, dev);
            ++mapped_total;
            slowest = std::max(slowest, res.totalSeconds);
            double decrease = res.percentCostDecrease();
            if (decrease > 0)
                ++improved;
            average_decrease[dev.name()] += decrease;
            ++device_rows[dev.name()];

            std::string paper_ti =
                first_device ? std::to_string(bench.paperTCount) + "/" +
                                   std::to_string(bench.paperGates) +
                                   "/" + formatNumber(bench.paperCost, 2)
                             : "";
            table3.addRow({bench.name,
                           std::to_string(res.decomposed.numQubits()),
                           first_device
                               ? metricCell(res.techIndependent)
                               : "",
                           paper_ti, dev.name(),
                           metricCell(res.unoptimized),
                           metricCell(res.optimizedM),
                           timingCell(res)});
            t4_row.push_back(percentCell(decrease));
            first_device = false;
        }
        table4.addRow(t4_row);
    }

    std::cout << "=== Table 3: single-target gates mapped to the IBM "
                 "devices ===\n\n";
    table3.print(std::cout);

    std::cout << "\n=== Table 4: percent cost decrease after "
                 "optimization ===\n\n";
    std::vector<std::string> avg_row{"Average"};
    for (const Device &dev : devices) {
        double avg = device_rows[dev.name()] > 0
                         ? average_decrease[dev.name()] /
                               device_rows[dev.name()]
                         : 0.0;
        avg_row.push_back(percentCell(avg));
    }
    table4.addRow(avg_row);
    table4.print(std::cout);

    std::cout << "\nSummary: " << improved << " of " << mapped_total
              << " technology-dependent mappings improved under "
                 "optimization ("
              << percentCell(100.0 * static_cast<double>(improved) /
                             static_cast<double>(mapped_total))
              << "%; paper reports 74/94 = ~79%).\n";
    std::cout << "Slowest synthesis+verification: "
              << percentCell(slowest) << " s (paper: none exceeding "
              << "5 s).\n";
    return 0;
}
