/**
 * @file
 * Shared helpers for the table-reproduction benchmark binaries.
 */

#pragma once

#include <string>

#include "core/qsyn.hpp"

namespace qsyn::bench {

/** "T/gates/cost" cell in the format of the paper's tables. */
std::string metricCell(const StageMetrics &m);

/** Percentage with two decimals, e.g. "8.48". */
std::string percentCell(double percent);

/** Seconds with three decimals + verification verdict suffix. */
std::string timingCell(const CompileResult &result);

/**
 * Compile `input` for `device` with default options (Eqn. 2 weights,
 * identity placement, CTR routing, full optimization + verification).
 * `verify_budget` caps the QMDD size (0 keeps the default).
 */
CompileResult compileForTable(const Circuit &input, const Device &device,
                              size_t verify_budget = 0);

} // namespace qsyn::bench
