/**
 * @file
 * Reproduces Table 2: the IBM Q device inventory with qubit counts and
 * coupling complexities, extended with the proposed 96-qubit machine
 * (Fig. 7) and the unconstrained simulator. Also prints each coupling
 * map in the paper's dictionary format (Section 3).
 */

#include <iostream>

#include "common/strings.hpp"
#include "common/table_printer.hpp"
#include "device/registry.hpp"

using namespace qsyn;

int
main()
{
    std::cout << "=== Table 2: IBM Q device details ===\n\n";

    TablePrinter table({"Name", "Qubits", "Couplings",
                        "Coupling Complexity", "Paper Value"});
    struct Row
    {
        Device device;
        const char *paper;
    };
    const Row rows[] = {
        {makeIbmqx2(), "0.3"},       {makeIbmqx3(), "0.0833..."},
        {makeIbmqx4(), "0.3"},       {makeIbmqx5(), "0.0916..."},
        {makeIbmq16(), "0.098901"},
    };
    for (const Row &row : rows) {
        table.addRow({row.device.name(),
                      std::to_string(row.device.numQubits()),
                      std::to_string(row.device.coupling().couplingCount()),
                      formatNumber(row.device.couplingComplexity(), 6),
                      row.paper});
    }
    Device p96 = makeProposed96();
    table.addRow({p96.name(), std::to_string(p96.numQubits()),
                  std::to_string(p96.coupling().couplingCount()),
                  formatNumber(p96.couplingComplexity(), 6),
                  "(Fig. 7, not tabulated)"});
    Device sim = Device::simulator(32);
    table.addRow({"simulator", "any", "all", "1", "1 (by definition)"});
    table.print(std::cout);

    std::cout << "\n=== Section 3: coupling map dictionaries ===\n\n";
    for (const Device &dev : ibmTableDevices()) {
        std::cout << dev.name() << " = "
                  << dev.coupling().toDictString() << "\n";
    }

    std::cout << "\nAll maps connected: ";
    bool all_connected = true;
    for (const Device &dev : allBuiltinDevices())
        all_connected = all_connected && dev.coupling().isConnected();
    std::cout << (all_connected ? "yes" : "NO") << "\n";
    return 0;
}
