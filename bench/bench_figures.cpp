/**
 * @file
 * Reproduces the paper's worked figures:
 *   Fig. 1 - the CNOT operation as a QMDD (node/edge dump + matrix),
 *   Fig. 3 - SWAP implemented with CNOTs under unidirectional coupling,
 *   Fig. 4/5 - the CTR reroute of CNOT(q5 -> q10) on ibmqx3,
 *   Fig. 6 - CNOT orientation reversal, QMDD-verified.
 */

#include <iostream>

#include "core/qsyn.hpp"
#include "decompose/toffoli.hpp"

using namespace qsyn;

namespace {

void
printMatrix(dd::Package &pkg, const dd::Edge &e, int n)
{
    for (int r = 0; r < (1 << n); ++r) {
        std::cout << "    [";
        for (int c = 0; c < (1 << n); ++c) {
            Cplx v = pkg.getEntry(e, r, c, n);
            std::cout << " " << v.real();
            if (std::abs(v.imag()) > 1e-12)
                std::cout << (v.imag() > 0 ? "+" : "") << v.imag()
                          << "i";
        }
        std::cout << " ]\n";
    }
}

} // namespace

int
main()
{
    // ------------------------------------------------------------ Fig 1
    std::cout << "=== Fig. 1: CNOT (control x0, target x1) as a QMDD "
                 "===\n\n";
    dd::Package pkg;
    dd::Edge cnot = pkg.gateDD(Gate::cnot(0, 1));
    std::cout << "  nonterminal nodes: " << pkg.countNodes(cnot)
              << " (x0 root; the identity U00 quadrant is an "
                 "identity-skip edge,\n   the U11 quadrant is the x1 "
                 "NOT node; U01 = U10 = 0)\n";
    std::cout << "  represented matrix:\n";
    printMatrix(pkg, cnot, 2);

    // ------------------------------------------------------------ Fig 3
    std::cout << "\n=== Fig. 3: SWAP from CNOTs under unidirectional "
                 "coupling (0 -> 1 only) ===\n\n";
    CouplingMap uni(2);
    uni.addEdge(0, 1);
    Circuit swap_circ(2, "swap");
    decompose::appendSwap(swap_circ, &uni, 0, 1);
    std::cout << swap_circ.toString();
    std::cout << "  gate count: " << swap_circ.size()
              << " (paper: max 7 = 3 CNOT + 4 H)\n";
    Circuit swap_ref(2);
    swap_ref.addSwap(0, 1);
    bool swap_ok = pkg.buildCircuit(swap_circ) ==
                   pkg.buildCircuit(swap_ref);
    std::cout << "  QMDD check vs ideal SWAP: "
              << (swap_ok ? "equivalent" : "NOT EQUIVALENT") << "\n";

    // --------------------------------------------------------- Fig 4/5
    std::cout << "\n=== Fig. 4/5: CTR reroute of CNOT(q5 -> q10) on "
                 "ibmqx3 ===\n\n";
    Device qx3 = makeIbmqx3();
    auto path = qx3.coupling().shortestPathToNeighbor(5, 10);
    std::cout << "  connectivity-tree shortest path for the control: ";
    for (size_t i = 0; i < path.size(); ++i)
        std::cout << (i ? " -> q" : "q") << path[i];
    std::cout << " (then CNOT onto q10, then swap back)\n";

    Circuit want(16, "cnot_5_10");
    want.addCnot(5, 10);
    route::RouteStats stats;
    Circuit routed = route::routeCircuit(want, qx3, &stats);
    std::cout << "  swaps inserted (incl. swap-back): "
              << stats.swapsInserted << " (paper: two out, two back)\n";
    std::cout << "  routed gate count: " << routed.size() << "\n";
    dd::EquivalenceChecker checker(pkg);
    std::cout << "  QMDD check vs original CNOT: "
              << dd::equivalenceName(checker.check(want, routed))
              << "\n";

    // ------------------------------------------------------------ Fig 6
    std::cout << "\n=== Fig. 6: CNOT orientation reversal ===\n\n";
    Circuit fwd(2);
    fwd.addCnot(0, 1);
    Circuit rev(2, "reversed");
    decompose::appendReversedCnot(rev, 0, 1);
    std::cout << rev.toString();
    std::cout << "  QMDD check (H(+)H) CX(1->0) (H(+)H) == CX(0->1): "
              << dd::equivalenceName(checker.check(fwd, rev)) << "\n";
    return 0;
}
