/**
 * @file
 * Reproduces Table 5 and Table 6: the RevLib-style Toffoli cascades
 * compiled to the five IBM devices (no technology-independent column:
 * the Toffoli is not a technology-ready gate, exactly as the paper
 * notes), with per-device percent cost decreases.
 */

#include <iostream>
#include <map>

#include "bench_circuits/nct_suite.hpp"
#include "bench_util.hpp"
#include "common/table_printer.hpp"

using namespace qsyn;
using namespace qsyn::bench;

int
main()
{
    auto devices = ibmTableDevices();
    const auto &suite = nctSuite();

    TablePrinter table5({"Ftn.", "#Qubits", "Largest Gate", "Gate Count",
                         "Device", "Unopt (T/g/cost)", "Opt (T/g/cost)",
                         "Time"});
    TablePrinter table6({"Funct.", "ibmqx2", "ibmqx3", "ibmqx4",
                         "ibmqx5", "ibmq_16"});

    std::map<std::string, double> average_decrease;
    std::map<std::string, int> device_rows;
    size_t improved = 0;
    size_t mapped_total = 0;

    for (const auto &bench : suite) {
        Circuit input = buildNctBenchmark(bench);
        std::vector<std::string> t6_row{bench.name};

        for (const Device &dev : devices) {
            // The paper marks designs N/A when the device is too small
            // (including room for decomposition ancillas: a 5-qubit
            // device cannot host a 5-qubit circuit's T5 ancillas).
            bool too_small = input.numQubits() > dev.numQubits() ||
                             (bench.largestGate == "T5" &&
                              dev.numQubits() < 6);
            if (too_small) {
                table5.addRow({bench.name,
                               std::to_string(bench.qubits),
                               bench.largestGate,
                               std::to_string(bench.gateCount),
                               dev.name(), "N/A", "N/A", ""});
                t6_row.push_back("N/A");
                continue;
            }
            CompileResult res = compileForTable(input, dev);
            ++mapped_total;
            double decrease = res.percentCostDecrease();
            if (decrease > 0)
                ++improved;
            average_decrease[dev.name()] += decrease;
            ++device_rows[dev.name()];
            table5.addRow({bench.name, std::to_string(bench.qubits),
                           bench.largestGate,
                           std::to_string(bench.gateCount), dev.name(),
                           metricCell(res.unoptimized),
                           metricCell(res.optimizedM),
                           timingCell(res)});
            t6_row.push_back(percentCell(decrease));
        }
        table6.addRow(t6_row);
    }

    std::cout << "=== Table 5: Toffoli cascades mapped to the IBM "
                 "devices ===\n\n";
    table5.print(std::cout);

    std::cout << "\n=== Table 6: percent cost decrease after "
                 "optimization ===\n\n";
    std::vector<std::string> avg_row{"Average"};
    for (const Device &dev : devices) {
        double avg = device_rows[dev.name()] > 0
                         ? average_decrease[dev.name()] /
                               device_rows[dev.name()]
                         : 0.0;
        avg_row.push_back(percentCell(avg));
    }
    table6.addRow(avg_row);
    table6.print(std::cout);

    std::cout << "\nSummary: " << improved << " of " << mapped_total
              << " mapped Toffoli cascades decreased in cost (paper: "
                 "100%).\n";
    return 0;
}
