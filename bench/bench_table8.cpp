/**
 * @file
 * Reproduces Table 7 and Table 8: the generalized-Toffoli cascades
 * T6_b .. T10_b (four T_n gates each, Table 7 placement) compiled to
 * the proposed 96-qubit machine of Fig. 7, with pre-/post-optimization
 * metrics, percent cost decrease, per-circuit synthesis time, and the
 * QMDD verification verdict ("All of the output designs were verified
 * for accuracy using the QMDD equivalence test").
 */

#include <iostream>

#include "bench_circuits/mcx_suite.hpp"
#include "bench_util.hpp"
#include "common/table_printer.hpp"

using namespace qsyn;
using namespace qsyn::bench;

int
main()
{
    std::cout << "=== Table 7: 96-qubit benchmark details ===\n\n";
    TablePrinter table7({"Name", "Gate", "Controls", "Target"});
    for (const auto &bench : mcxSuite()) {
        for (size_t g = 0; g < bench.gates.size(); ++g) {
            const auto &[controls, target] = bench.gates[g];
            std::string cs;
            for (size_t i = 0; i < controls.size(); ++i) {
                cs += (i ? ", q" : "q") + std::to_string(controls[i]);
            }
            table7.addRow({g == 0 ? bench.name : "",
                           std::to_string(g + 1) + ": T" +
                               std::to_string(bench.n),
                           cs, "q" + std::to_string(target)});
        }
    }
    table7.print(std::cout);

    Device dev = makeProposed96();
    std::cout << "\nTarget: " << dev.summary() << "\n";

    std::cout << "\n=== Table 8: 96-qubit compilation results ===\n\n";
    TablePrinter table8({"Name", "Unoptimized (T/g/cost)",
                         "Optimized (T/g/cost)", "% Cost Decrease",
                         "Time", "Verification"});
    double total_decrease = 0.0;
    double slowest = 0.0;
    for (const auto &bench : mcxSuite()) {
        Circuit input = buildMcxBenchmark(bench);
        CompileResult res = compileForTable(input, dev);
        total_decrease += res.percentCostDecrease();
        slowest = std::max(slowest, res.totalSeconds);
        char time_buf[32];
        std::snprintf(time_buf, sizeof(time_buf), "%.2fs",
                      res.totalSeconds);
        table8.addRow({bench.name, metricCell(res.unoptimized),
                       metricCell(res.optimizedM),
                       percentCell(res.percentCostDecrease()), time_buf,
                       dd::equivalenceName(res.verification)});
    }
    table8.addRow({"Average", "", "",
                   percentCell(total_decrease /
                               static_cast<double>(mcxSuite().size())),
                   "", ""});
    table8.print(std::cout);
    std::cout << "\n(Paper: average 39.54% decrease; largest circuit "
                 "~6.5 s to generate. Our timing includes the full "
                 "QMDD verification of every output.)\n";
    return 0;
}
