/**
 * @file
 * google-benchmark microbenchmarks for the engineering-critical
 * substrates: QMDD construction/multiplication, CTR routing, the
 * optimizer passes, and the QASM parser. Not a paper table; tracks the
 * throughput that makes the Section 5 timings possible.
 */

#include <benchmark/benchmark.h>

#include <sstream>

#include "common/rng.hpp"
#include "core/qsyn.hpp"
#include "ir/random_circuit.hpp"
#include "obs/obs.hpp"

using namespace qsyn;

namespace {

Circuit
makeRandom(int qubits, int gates, std::uint64_t seed = 7,
           size_t max_controls = 2)
{
    Rng rng(seed);
    RandomCircuitOptions opts;
    opts.numQubits = static_cast<Qubit>(qubits);
    opts.numGates = static_cast<size_t>(gates);
    opts.maxControls = max_controls;
    return randomCircuit(rng, opts);
}

void
BM_QmddBuildCircuit(benchmark::State &state)
{
    Circuit c = makeRandom(static_cast<int>(state.range(0)), 120);
    for (auto _ : state) {
        dd::Package pkg;
        benchmark::DoNotOptimize(pkg.buildCircuit(c));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            200);
}
BENCHMARK(BM_QmddBuildCircuit)->Arg(4)->Arg(6)->Arg(8);

void
BM_QmddEquivalenceCheck(benchmark::State &state)
{
    Circuit a = makeRandom(static_cast<int>(state.range(0)), 60, 1);
    Circuit b = a;
    b.addH(0);
    b.addH(0);
    for (auto _ : state) {
        dd::Package pkg;
        dd::EquivalenceChecker checker(pkg);
        benchmark::DoNotOptimize(checker.check(a, b));
    }
}
BENCHMARK(BM_QmddEquivalenceCheck)->Arg(4)->Arg(6);

/** Unique-table growth under pressure: a deliberately tiny initial
 *  capacity forces several load-factor rehashes inside the timed
 *  region, isolating insert + probe + grow cost. */
void
BM_UniqueTableStress(benchmark::State &state)
{
    Circuit c = makeRandom(static_cast<int>(state.range(0)), 200, 11, 3);
    size_t rehashes = 0;
    for (auto _ : state) {
        dd::PackageConfig cfg;
        cfg.initialUniqueCapacity = 256;
        dd::Package pkg(cfg);
        benchmark::DoNotOptimize(pkg.buildCircuit(c));
        rehashes = pkg.stats().uniqueRehashes;
    }
    state.counters["rehashes"] = static_cast<double>(rehashes);
}
BENCHMARK(BM_UniqueTableStress)->Arg(6)->Arg(8);

/** Compute-cache behaviour with deliberately small 2-way caches: the
 *  working set exceeds capacity, so the aging/eviction policy (not
 *  just raw probing) is what is being timed. */
void
BM_ComputeCacheStress(benchmark::State &state)
{
    Circuit c = makeRandom(static_cast<int>(state.range(0)), 160, 13, 2);
    double hit_rate = 0.0;
    size_t evictions = 0;
    for (auto _ : state) {
        dd::PackageConfig cfg;
        cfg.mulCacheSets = 256;
        cfg.addCacheSets = 256;
        cfg.ctCacheSets = 64;
        dd::Package pkg(cfg);
        benchmark::DoNotOptimize(pkg.buildCircuit(c));
        hit_rate = pkg.stats().computeHitRate();
        evictions = pkg.stats().mulEvictions + pkg.stats().addEvictions;
    }
    state.counters["hit_rate"] = hit_rate;
    state.counters["evictions"] = static_cast<double>(evictions);
}
BENCHMARK(BM_ComputeCacheStress)->Arg(6)->Arg(8);

void
BM_QmddGateDD(benchmark::State &state)
{
    dd::Package pkg;
    Gate g = Gate::mcx({0, 1, 2, 3, 4}, static_cast<Qubit>(5));
    for (auto _ : state)
        benchmark::DoNotOptimize(pkg.gateDD(g));
}
BENCHMARK(BM_QmddGateDD);

void
BM_CtrRouting(benchmark::State &state)
{
    Device dev = makeIbmqx5();
    Rng rng(3);
    Circuit c(16, "cnots");
    for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
        Qubit a = static_cast<Qubit>(rng.below(16));
        Qubit b = static_cast<Qubit>(rng.below(16));
        if (a != b)
            c.addCnot(a, b);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(route::routeCircuit(c, dev));
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_CtrRouting)->Arg(16)->Arg(64)->Arg(256);

void
BM_OptimizerPipeline(benchmark::State &state)
{
    Device dev = makeIbmqx5();
    Circuit c = makeRandom(8, static_cast<int>(state.range(0)), 7, 1);
    Circuit routed = route::routeCircuit(c, dev);
    for (auto _ : state) {
        Circuit copy = routed;
        opt::OptimizerOptions opts;
        opts.device = &dev;
        benchmark::DoNotOptimize(opt::optimizeCircuit(copy, opts));
    }
}
BENCHMARK(BM_OptimizerPipeline)->Arg(50)->Arg(200);

void
BM_CancelInversePairs(benchmark::State &state)
{
    Circuit base = makeRandom(8, static_cast<int>(state.range(0)));
    // Append the adjoint so there is guaranteed cancellation work.
    Circuit padded = base;
    padded.append(base.inverse());
    for (auto _ : state) {
        Circuit copy = padded;
        benchmark::DoNotOptimize(opt::cancelInversePairs(copy));
    }
}
BENCHMARK(BM_CancelInversePairs)->Arg(100)->Arg(400);

void
BM_QasmParse(benchmark::State &state)
{
    Circuit c = makeRandom(8, static_cast<int>(state.range(0)));
    std::string qasm = frontend::writeQasm(c);
    for (auto _ : state)
        benchmark::DoNotOptimize(frontend::parseQasm(qasm));
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(qasm.size()));
}
BENCHMARK(BM_QasmParse)->Arg(100)->Arg(1000);

void
BM_Statevector(benchmark::State &state)
{
    Circuit c = makeRandom(static_cast<int>(state.range(0)), 100);
    for (auto _ : state) {
        sim::StateVector sv(static_cast<Qubit>(state.range(0)));
        sv.apply(c);
        benchmark::DoNotOptimize(sv.normSquared());
    }
}
BENCHMARK(BM_Statevector)->Arg(8)->Arg(12)->Arg(14);

void
BM_EndToEndCompile(benchmark::State &state)
{
    Device dev = makeIbmqx5();
    Circuit c(5, "ccx_chain");
    c.addCcx(0, 1, 2);
    c.addCcx(2, 3, 4);
    c.addCcx(0, 2, 4);
    for (auto _ : state) {
        Compiler compiler(dev);
        benchmark::DoNotOptimize(compiler.compile(c));
    }
}
BENCHMARK(BM_EndToEndCompile);

/** Worker-pool batch compilation of independent circuits; the Arg is
 *  the job count, so Arg(1) vs Arg(4) is the parallel speedup (wall
 *  time — hence UseRealTime). */
void
BM_BatchCompile(benchmark::State &state)
{
    Device dev = makeIbmqx5();
    std::vector<Circuit> circuits;
    for (int i = 0; i < 8; ++i)
        circuits.push_back(makeRandom(5, 40, 100 + i));
    BatchCompiler batch(dev);
    for (auto _ : state) {
        benchmark::DoNotOptimize(batch.compileCircuits(
            circuits, static_cast<size_t>(state.range(0))));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(circuits.size()));
}
BENCHMARK(BM_BatchCompile)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/** The same end-to-end compile with a trace sink installed: the gap to
 *  BM_EndToEndCompile is the total observability overhead when on. */
void
BM_EndToEndCompileTraced(benchmark::State &state)
{
    Device dev = makeIbmqx5();
    Circuit c(5, "ccx_chain");
    c.addCcx(0, 1, 2);
    c.addCcx(2, 3, 4);
    c.addCcx(0, 2, 4);
    for (auto _ : state) {
        obs::ScopedSink sink;
        Compiler compiler(dev);
        benchmark::DoNotOptimize(compiler.compile(c));
    }
}
BENCHMARK(BM_EndToEndCompileTraced);

/** A disabled span must cost no more than a null-pointer branch — the
 *  design guarantee every instrumentation site relies on. */
void
BM_ObsSpanDisabled(benchmark::State &state)
{
    for (auto _ : state) {
        obs::Span span("bench.noop", "bench");
        benchmark::DoNotOptimize(&span);
    }
}
BENCHMARK(BM_ObsSpanDisabled);

void
BM_ObsSpanEnabled(benchmark::State &state)
{
    obs::ScopedSink sink;
    for (auto _ : state) {
        {
            obs::Span span("bench.noop", "bench");
            benchmark::DoNotOptimize(&span);
        }
        sink->clearEvents(); // keep memory bounded across iterations
    }
}
BENCHMARK(BM_ObsSpanEnabled);

void
BM_ObsCounterDisabled(benchmark::State &state)
{
    for (auto _ : state) {
        if (obs::Sink *s = obs::sink())
            s->metrics().addCounter("bench.counter", 1.0);
        benchmark::DoNotOptimize(obs::sink());
    }
}
BENCHMARK(BM_ObsCounterDisabled);

void
BM_ObsCounterEnabled(benchmark::State &state)
{
    obs::ScopedSink sink;
    for (auto _ : state) {
        if (obs::Sink *s = obs::sink())
            s->metrics().addCounter("bench.counter", 1.0);
        benchmark::DoNotOptimize(obs::sink());
    }
}
BENCHMARK(BM_ObsCounterEnabled);

} // namespace

BENCHMARK_MAIN();
