/**
 * @file
 * Fidelity-extension benchmark (the paper's Section 2.2 direction:
 * "other metrics, such as qubit and operator fidelity"): attaches a
 * synthetic calibration snapshot to each 16-qubit device and to the
 * 96-qubit machine, routes the Table 3/5 style workloads hop-based vs
 * fidelity-aware, and reports the expected success probability of the
 * compiled circuits.
 */

#include <iostream>

#include "bench_circuits/single_target_suite.hpp"
#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table_printer.hpp"
#include "device/fidelity.hpp"

using namespace qsyn;
using namespace qsyn::bench;

int
main()
{
    std::cout << "=== Fidelity-aware routing vs hop-based CTR "
                 "(synthetic calibration, seed 2019) ===\n\n";

    TablePrinter table({"Benchmark", "Device", "Hop gates",
                        "Fid gates", "Hop success", "Fid success",
                        "Verified"});

    const auto &suite = singleTargetSuite();
    const char *bench_names[] = {"#000f", "#0356", "#033f", "#0357"};
    const char *device_names[] = {"ibmqx5", "ibmq_16", "proposed_96"};

    for (const char *bname : bench_names) {
        auto it = std::find_if(
            suite.begin(), suite.end(),
            [&](const auto &b) { return b.name == bname; });
        Circuit input = buildSingleTargetCascade(*it);

        for (const char *dname : device_names) {
            Device dev = builtinDevice(dname);
            dev.attachSyntheticCalibration(2019);

            CompileOptions hop_opts;
            Compiler hop_compiler(dev, hop_opts);
            CompileResult hop = hop_compiler.compile(input);

            CompileOptions fid_opts;
            fid_opts.routing.fidelityAware = true;
            Compiler fid_compiler(dev, fid_opts);
            CompileResult fid = fid_compiler.compile(input);

            double p_hop = successProbability(hop.optimized, dev);
            double p_fid = successProbability(fid.optimized, dev);
            table.addRow({bname, dname,
                          std::to_string(hop.optimizedM.gates),
                          std::to_string(fid.optimizedM.gates),
                          formatNumber(p_hop, 4),
                          formatNumber(p_fid, 4),
                          hop.verified() && fid.verified() ? "both"
                                                           : "NO"});
        }
    }
    table.print(std::cout);
    std::cout
        << "\n(Success = product of per-gate (1 - error) under the "
           "synthetic calibration; fidelity-aware paths trade extra "
           "hops for better edges, so gate counts can rise while "
           "success probability improves.)\n";
    return 0;
}
