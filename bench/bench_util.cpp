#include "bench_util.hpp"

#include <cstdio>

#include "common/strings.hpp"

namespace qsyn::bench {

std::string
metricCell(const StageMetrics &m)
{
    return std::to_string(m.tCount) + "/" + std::to_string(m.gates) +
           "/" + formatNumber(m.cost, 2);
}

std::string
percentCell(double percent)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", percent);
    return buf;
}

std::string
timingCell(const CompileResult &result)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3fs", result.totalSeconds);
    std::string cell = buf;
    if (result.verifyRan) {
        cell += result.verified() ? " [verified]" : " [UNVERIFIED]";
    }
    return cell;
}

CompileResult
compileForTable(const Circuit &input, const Device &device,
                size_t verify_budget)
{
    CompileOptions options;
    if (verify_budget != 0)
        options.verifyNodeBudget = verify_budget;
    Compiler compiler(device, options);
    return compiler.compile(input);
}

} // namespace qsyn::bench
