file(REMOVE_RECURSE
  "CMakeFiles/qsyn_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/qsyn_bench_util.dir/bench_util.cpp.o.d"
  "libqsyn_bench_util.a"
  "libqsyn_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
