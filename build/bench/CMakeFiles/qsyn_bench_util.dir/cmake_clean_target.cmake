file(REMOVE_RECURSE
  "libqsyn_bench_util.a"
)
