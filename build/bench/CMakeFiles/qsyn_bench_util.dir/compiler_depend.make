# Empty compiler generated dependencies file for qsyn_bench_util.
# This may be replaced when dependencies are built.
