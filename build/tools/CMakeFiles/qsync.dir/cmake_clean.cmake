file(REMOVE_RECURSE
  "CMakeFiles/qsync.dir/qsync_main.cpp.o"
  "CMakeFiles/qsync.dir/qsync_main.cpp.o.d"
  "qsync"
  "qsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
