# Empty dependencies file for qsync.
# This may be replaced when dependencies are built.
