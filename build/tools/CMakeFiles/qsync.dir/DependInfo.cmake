
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/qsync_main.cpp" "tools/CMakeFiles/qsync.dir/qsync_main.cpp.o" "gcc" "tools/CMakeFiles/qsync.dir/qsync_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/qsyn_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/qsyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qmdd/CMakeFiles/qsyn_qmdd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/qsyn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/qsyn_route.dir/DependInfo.cmake"
  "/root/repo/build/src/bench_circuits/CMakeFiles/qsyn_bench_circuits.dir/DependInfo.cmake"
  "/root/repo/build/src/esop/CMakeFiles/qsyn_esop.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/qsyn_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/decompose/CMakeFiles/qsyn_decompose.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/qsyn_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qsyn_device.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/qsyn_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
