file(REMOVE_RECURSE
  "CMakeFiles/qsim.dir/qsim_main.cpp.o"
  "CMakeFiles/qsim.dir/qsim_main.cpp.o.d"
  "qsim"
  "qsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
