# Empty dependencies file for qsim.
# This may be replaced when dependencies are built.
