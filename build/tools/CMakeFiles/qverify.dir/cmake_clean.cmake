file(REMOVE_RECURSE
  "CMakeFiles/qverify.dir/qverify_main.cpp.o"
  "CMakeFiles/qverify.dir/qverify_main.cpp.o.d"
  "qverify"
  "qverify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qverify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
