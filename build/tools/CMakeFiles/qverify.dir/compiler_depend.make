# Empty compiler generated dependencies file for qverify.
# This may be replaced when dependencies are built.
