# Empty compiler generated dependencies file for classical_adder.
# This may be replaced when dependencies are built.
