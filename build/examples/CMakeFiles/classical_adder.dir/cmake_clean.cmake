file(REMOVE_RECURSE
  "CMakeFiles/classical_adder.dir/classical_adder.cpp.o"
  "CMakeFiles/classical_adder.dir/classical_adder.cpp.o.d"
  "classical_adder"
  "classical_adder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classical_adder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
