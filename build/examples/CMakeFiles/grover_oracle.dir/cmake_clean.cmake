file(REMOVE_RECURSE
  "CMakeFiles/grover_oracle.dir/grover_oracle.cpp.o"
  "CMakeFiles/grover_oracle.dir/grover_oracle.cpp.o.d"
  "grover_oracle"
  "grover_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grover_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
