# Empty dependencies file for grover_oracle.
# This may be replaced when dependencies are built.
