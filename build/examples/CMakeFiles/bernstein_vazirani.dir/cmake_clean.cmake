file(REMOVE_RECURSE
  "CMakeFiles/bernstein_vazirani.dir/bernstein_vazirani.cpp.o"
  "CMakeFiles/bernstein_vazirani.dir/bernstein_vazirani.cpp.o.d"
  "bernstein_vazirani"
  "bernstein_vazirani.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bernstein_vazirani.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
