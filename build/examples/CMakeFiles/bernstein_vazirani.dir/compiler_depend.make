# Empty compiler generated dependencies file for bernstein_vazirani.
# This may be replaced when dependencies are built.
