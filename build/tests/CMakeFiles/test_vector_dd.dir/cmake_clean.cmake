file(REMOVE_RECURSE
  "CMakeFiles/test_vector_dd.dir/test_vector_dd.cpp.o"
  "CMakeFiles/test_vector_dd.dir/test_vector_dd.cpp.o.d"
  "test_vector_dd"
  "test_vector_dd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vector_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
