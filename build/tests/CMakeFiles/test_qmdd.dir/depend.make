# Empty dependencies file for test_qmdd.
# This may be replaced when dependencies are built.
