file(REMOVE_RECURSE
  "CMakeFiles/test_qmdd.dir/test_qmdd.cpp.o"
  "CMakeFiles/test_qmdd.dir/test_qmdd.cpp.o.d"
  "test_qmdd"
  "test_qmdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qmdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
