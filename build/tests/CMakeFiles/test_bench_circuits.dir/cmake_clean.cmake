file(REMOVE_RECURSE
  "CMakeFiles/test_bench_circuits.dir/test_bench_circuits.cpp.o"
  "CMakeFiles/test_bench_circuits.dir/test_bench_circuits.cpp.o.d"
  "test_bench_circuits"
  "test_bench_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
