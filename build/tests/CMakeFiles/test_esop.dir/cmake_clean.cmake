file(REMOVE_RECURSE
  "CMakeFiles/test_esop.dir/test_esop.cpp.o"
  "CMakeFiles/test_esop.dir/test_esop.cpp.o.d"
  "test_esop"
  "test_esop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_esop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
