
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/circuit.cpp" "src/ir/CMakeFiles/qsyn_ir.dir/circuit.cpp.o" "gcc" "src/ir/CMakeFiles/qsyn_ir.dir/circuit.cpp.o.d"
  "/root/repo/src/ir/gate.cpp" "src/ir/CMakeFiles/qsyn_ir.dir/gate.cpp.o" "gcc" "src/ir/CMakeFiles/qsyn_ir.dir/gate.cpp.o.d"
  "/root/repo/src/ir/gate_kind.cpp" "src/ir/CMakeFiles/qsyn_ir.dir/gate_kind.cpp.o" "gcc" "src/ir/CMakeFiles/qsyn_ir.dir/gate_kind.cpp.o.d"
  "/root/repo/src/ir/matrix.cpp" "src/ir/CMakeFiles/qsyn_ir.dir/matrix.cpp.o" "gcc" "src/ir/CMakeFiles/qsyn_ir.dir/matrix.cpp.o.d"
  "/root/repo/src/ir/random_circuit.cpp" "src/ir/CMakeFiles/qsyn_ir.dir/random_circuit.cpp.o" "gcc" "src/ir/CMakeFiles/qsyn_ir.dir/random_circuit.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/qsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
