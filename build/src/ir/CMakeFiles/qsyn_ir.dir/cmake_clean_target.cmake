file(REMOVE_RECURSE
  "libqsyn_ir.a"
)
