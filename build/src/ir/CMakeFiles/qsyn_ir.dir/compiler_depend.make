# Empty compiler generated dependencies file for qsyn_ir.
# This may be replaced when dependencies are built.
