file(REMOVE_RECURSE
  "CMakeFiles/qsyn_ir.dir/circuit.cpp.o"
  "CMakeFiles/qsyn_ir.dir/circuit.cpp.o.d"
  "CMakeFiles/qsyn_ir.dir/gate.cpp.o"
  "CMakeFiles/qsyn_ir.dir/gate.cpp.o.d"
  "CMakeFiles/qsyn_ir.dir/gate_kind.cpp.o"
  "CMakeFiles/qsyn_ir.dir/gate_kind.cpp.o.d"
  "CMakeFiles/qsyn_ir.dir/matrix.cpp.o"
  "CMakeFiles/qsyn_ir.dir/matrix.cpp.o.d"
  "CMakeFiles/qsyn_ir.dir/random_circuit.cpp.o"
  "CMakeFiles/qsyn_ir.dir/random_circuit.cpp.o.d"
  "libqsyn_ir.a"
  "libqsyn_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
