# Empty dependencies file for qsyn_esop.
# This may be replaced when dependencies are built.
