
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/esop/cascade.cpp" "src/esop/CMakeFiles/qsyn_esop.dir/cascade.cpp.o" "gcc" "src/esop/CMakeFiles/qsyn_esop.dir/cascade.cpp.o.d"
  "/root/repo/src/esop/esop_form.cpp" "src/esop/CMakeFiles/qsyn_esop.dir/esop_form.cpp.o" "gcc" "src/esop/CMakeFiles/qsyn_esop.dir/esop_form.cpp.o.d"
  "/root/repo/src/esop/reed_muller.cpp" "src/esop/CMakeFiles/qsyn_esop.dir/reed_muller.cpp.o" "gcc" "src/esop/CMakeFiles/qsyn_esop.dir/reed_muller.cpp.o.d"
  "/root/repo/src/esop/truth_table.cpp" "src/esop/CMakeFiles/qsyn_esop.dir/truth_table.cpp.o" "gcc" "src/esop/CMakeFiles/qsyn_esop.dir/truth_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qsyn_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/qsyn_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
