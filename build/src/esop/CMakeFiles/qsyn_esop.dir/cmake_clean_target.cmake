file(REMOVE_RECURSE
  "libqsyn_esop.a"
)
