file(REMOVE_RECURSE
  "CMakeFiles/qsyn_esop.dir/cascade.cpp.o"
  "CMakeFiles/qsyn_esop.dir/cascade.cpp.o.d"
  "CMakeFiles/qsyn_esop.dir/esop_form.cpp.o"
  "CMakeFiles/qsyn_esop.dir/esop_form.cpp.o.d"
  "CMakeFiles/qsyn_esop.dir/reed_muller.cpp.o"
  "CMakeFiles/qsyn_esop.dir/reed_muller.cpp.o.d"
  "CMakeFiles/qsyn_esop.dir/truth_table.cpp.o"
  "CMakeFiles/qsyn_esop.dir/truth_table.cpp.o.d"
  "libqsyn_esop.a"
  "libqsyn_esop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_esop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
