file(REMOVE_RECURSE
  "libqsyn_qmdd.a"
)
