# Empty dependencies file for qsyn_qmdd.
# This may be replaced when dependencies are built.
