
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qmdd/complex_table.cpp" "src/qmdd/CMakeFiles/qsyn_qmdd.dir/complex_table.cpp.o" "gcc" "src/qmdd/CMakeFiles/qsyn_qmdd.dir/complex_table.cpp.o.d"
  "/root/repo/src/qmdd/dot_export.cpp" "src/qmdd/CMakeFiles/qsyn_qmdd.dir/dot_export.cpp.o" "gcc" "src/qmdd/CMakeFiles/qsyn_qmdd.dir/dot_export.cpp.o.d"
  "/root/repo/src/qmdd/equivalence.cpp" "src/qmdd/CMakeFiles/qsyn_qmdd.dir/equivalence.cpp.o" "gcc" "src/qmdd/CMakeFiles/qsyn_qmdd.dir/equivalence.cpp.o.d"
  "/root/repo/src/qmdd/package.cpp" "src/qmdd/CMakeFiles/qsyn_qmdd.dir/package.cpp.o" "gcc" "src/qmdd/CMakeFiles/qsyn_qmdd.dir/package.cpp.o.d"
  "/root/repo/src/qmdd/vector.cpp" "src/qmdd/CMakeFiles/qsyn_qmdd.dir/vector.cpp.o" "gcc" "src/qmdd/CMakeFiles/qsyn_qmdd.dir/vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qsyn_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
