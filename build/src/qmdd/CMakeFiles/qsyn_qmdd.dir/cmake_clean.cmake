file(REMOVE_RECURSE
  "CMakeFiles/qsyn_qmdd.dir/complex_table.cpp.o"
  "CMakeFiles/qsyn_qmdd.dir/complex_table.cpp.o.d"
  "CMakeFiles/qsyn_qmdd.dir/dot_export.cpp.o"
  "CMakeFiles/qsyn_qmdd.dir/dot_export.cpp.o.d"
  "CMakeFiles/qsyn_qmdd.dir/equivalence.cpp.o"
  "CMakeFiles/qsyn_qmdd.dir/equivalence.cpp.o.d"
  "CMakeFiles/qsyn_qmdd.dir/package.cpp.o"
  "CMakeFiles/qsyn_qmdd.dir/package.cpp.o.d"
  "CMakeFiles/qsyn_qmdd.dir/vector.cpp.o"
  "CMakeFiles/qsyn_qmdd.dir/vector.cpp.o.d"
  "libqsyn_qmdd.a"
  "libqsyn_qmdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_qmdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
