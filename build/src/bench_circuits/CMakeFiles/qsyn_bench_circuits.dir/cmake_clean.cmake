file(REMOVE_RECURSE
  "CMakeFiles/qsyn_bench_circuits.dir/mcx_suite.cpp.o"
  "CMakeFiles/qsyn_bench_circuits.dir/mcx_suite.cpp.o.d"
  "CMakeFiles/qsyn_bench_circuits.dir/nct_suite.cpp.o"
  "CMakeFiles/qsyn_bench_circuits.dir/nct_suite.cpp.o.d"
  "CMakeFiles/qsyn_bench_circuits.dir/single_target_suite.cpp.o"
  "CMakeFiles/qsyn_bench_circuits.dir/single_target_suite.cpp.o.d"
  "libqsyn_bench_circuits.a"
  "libqsyn_bench_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_bench_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
