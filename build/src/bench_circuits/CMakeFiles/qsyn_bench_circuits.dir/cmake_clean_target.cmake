file(REMOVE_RECURSE
  "libqsyn_bench_circuits.a"
)
