# Empty compiler generated dependencies file for qsyn_bench_circuits.
# This may be replaced when dependencies are built.
