
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cancellation.cpp" "src/opt/CMakeFiles/qsyn_opt.dir/cancellation.cpp.o" "gcc" "src/opt/CMakeFiles/qsyn_opt.dir/cancellation.cpp.o.d"
  "/root/repo/src/opt/hadamard_rules.cpp" "src/opt/CMakeFiles/qsyn_opt.dir/hadamard_rules.cpp.o" "gcc" "src/opt/CMakeFiles/qsyn_opt.dir/hadamard_rules.cpp.o.d"
  "/root/repo/src/opt/phase_polynomial.cpp" "src/opt/CMakeFiles/qsyn_opt.dir/phase_polynomial.cpp.o" "gcc" "src/opt/CMakeFiles/qsyn_opt.dir/phase_polynomial.cpp.o.d"
  "/root/repo/src/opt/phase_utils.cpp" "src/opt/CMakeFiles/qsyn_opt.dir/phase_utils.cpp.o" "gcc" "src/opt/CMakeFiles/qsyn_opt.dir/phase_utils.cpp.o.d"
  "/root/repo/src/opt/pipeline.cpp" "src/opt/CMakeFiles/qsyn_opt.dir/pipeline.cpp.o" "gcc" "src/opt/CMakeFiles/qsyn_opt.dir/pipeline.cpp.o.d"
  "/root/repo/src/opt/rotation_merge.cpp" "src/opt/CMakeFiles/qsyn_opt.dir/rotation_merge.cpp.o" "gcc" "src/opt/CMakeFiles/qsyn_opt.dir/rotation_merge.cpp.o.d"
  "/root/repo/src/opt/schedule.cpp" "src/opt/CMakeFiles/qsyn_opt.dir/schedule.cpp.o" "gcc" "src/opt/CMakeFiles/qsyn_opt.dir/schedule.cpp.o.d"
  "/root/repo/src/opt/window_identity.cpp" "src/opt/CMakeFiles/qsyn_opt.dir/window_identity.cpp.o" "gcc" "src/opt/CMakeFiles/qsyn_opt.dir/window_identity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qsyn_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qsyn_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
