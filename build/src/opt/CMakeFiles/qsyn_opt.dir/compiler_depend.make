# Empty compiler generated dependencies file for qsyn_opt.
# This may be replaced when dependencies are built.
