file(REMOVE_RECURSE
  "CMakeFiles/qsyn_opt.dir/cancellation.cpp.o"
  "CMakeFiles/qsyn_opt.dir/cancellation.cpp.o.d"
  "CMakeFiles/qsyn_opt.dir/hadamard_rules.cpp.o"
  "CMakeFiles/qsyn_opt.dir/hadamard_rules.cpp.o.d"
  "CMakeFiles/qsyn_opt.dir/phase_polynomial.cpp.o"
  "CMakeFiles/qsyn_opt.dir/phase_polynomial.cpp.o.d"
  "CMakeFiles/qsyn_opt.dir/phase_utils.cpp.o"
  "CMakeFiles/qsyn_opt.dir/phase_utils.cpp.o.d"
  "CMakeFiles/qsyn_opt.dir/pipeline.cpp.o"
  "CMakeFiles/qsyn_opt.dir/pipeline.cpp.o.d"
  "CMakeFiles/qsyn_opt.dir/rotation_merge.cpp.o"
  "CMakeFiles/qsyn_opt.dir/rotation_merge.cpp.o.d"
  "CMakeFiles/qsyn_opt.dir/schedule.cpp.o"
  "CMakeFiles/qsyn_opt.dir/schedule.cpp.o.d"
  "CMakeFiles/qsyn_opt.dir/window_identity.cpp.o"
  "CMakeFiles/qsyn_opt.dir/window_identity.cpp.o.d"
  "libqsyn_opt.a"
  "libqsyn_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
