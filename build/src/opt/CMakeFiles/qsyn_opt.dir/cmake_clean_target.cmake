file(REMOVE_RECURSE
  "libqsyn_opt.a"
)
