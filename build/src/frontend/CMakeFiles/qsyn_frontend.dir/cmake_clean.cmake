file(REMOVE_RECURSE
  "CMakeFiles/qsyn_frontend.dir/circuit_drawer.cpp.o"
  "CMakeFiles/qsyn_frontend.dir/circuit_drawer.cpp.o.d"
  "CMakeFiles/qsyn_frontend.dir/circuit_writers.cpp.o"
  "CMakeFiles/qsyn_frontend.dir/circuit_writers.cpp.o.d"
  "CMakeFiles/qsyn_frontend.dir/loader.cpp.o"
  "CMakeFiles/qsyn_frontend.dir/loader.cpp.o.d"
  "CMakeFiles/qsyn_frontend.dir/pla_parser.cpp.o"
  "CMakeFiles/qsyn_frontend.dir/pla_parser.cpp.o.d"
  "CMakeFiles/qsyn_frontend.dir/qasm_lexer.cpp.o"
  "CMakeFiles/qsyn_frontend.dir/qasm_lexer.cpp.o.d"
  "CMakeFiles/qsyn_frontend.dir/qasm_parser.cpp.o"
  "CMakeFiles/qsyn_frontend.dir/qasm_parser.cpp.o.d"
  "CMakeFiles/qsyn_frontend.dir/qasm_writer.cpp.o"
  "CMakeFiles/qsyn_frontend.dir/qasm_writer.cpp.o.d"
  "CMakeFiles/qsyn_frontend.dir/qc_parser.cpp.o"
  "CMakeFiles/qsyn_frontend.dir/qc_parser.cpp.o.d"
  "CMakeFiles/qsyn_frontend.dir/real_parser.cpp.o"
  "CMakeFiles/qsyn_frontend.dir/real_parser.cpp.o.d"
  "libqsyn_frontend.a"
  "libqsyn_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
