file(REMOVE_RECURSE
  "libqsyn_frontend.a"
)
