# Empty dependencies file for qsyn_frontend.
# This may be replaced when dependencies are built.
