
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/circuit_drawer.cpp" "src/frontend/CMakeFiles/qsyn_frontend.dir/circuit_drawer.cpp.o" "gcc" "src/frontend/CMakeFiles/qsyn_frontend.dir/circuit_drawer.cpp.o.d"
  "/root/repo/src/frontend/circuit_writers.cpp" "src/frontend/CMakeFiles/qsyn_frontend.dir/circuit_writers.cpp.o" "gcc" "src/frontend/CMakeFiles/qsyn_frontend.dir/circuit_writers.cpp.o.d"
  "/root/repo/src/frontend/loader.cpp" "src/frontend/CMakeFiles/qsyn_frontend.dir/loader.cpp.o" "gcc" "src/frontend/CMakeFiles/qsyn_frontend.dir/loader.cpp.o.d"
  "/root/repo/src/frontend/pla_parser.cpp" "src/frontend/CMakeFiles/qsyn_frontend.dir/pla_parser.cpp.o" "gcc" "src/frontend/CMakeFiles/qsyn_frontend.dir/pla_parser.cpp.o.d"
  "/root/repo/src/frontend/qasm_lexer.cpp" "src/frontend/CMakeFiles/qsyn_frontend.dir/qasm_lexer.cpp.o" "gcc" "src/frontend/CMakeFiles/qsyn_frontend.dir/qasm_lexer.cpp.o.d"
  "/root/repo/src/frontend/qasm_parser.cpp" "src/frontend/CMakeFiles/qsyn_frontend.dir/qasm_parser.cpp.o" "gcc" "src/frontend/CMakeFiles/qsyn_frontend.dir/qasm_parser.cpp.o.d"
  "/root/repo/src/frontend/qasm_writer.cpp" "src/frontend/CMakeFiles/qsyn_frontend.dir/qasm_writer.cpp.o" "gcc" "src/frontend/CMakeFiles/qsyn_frontend.dir/qasm_writer.cpp.o.d"
  "/root/repo/src/frontend/qc_parser.cpp" "src/frontend/CMakeFiles/qsyn_frontend.dir/qc_parser.cpp.o" "gcc" "src/frontend/CMakeFiles/qsyn_frontend.dir/qc_parser.cpp.o.d"
  "/root/repo/src/frontend/real_parser.cpp" "src/frontend/CMakeFiles/qsyn_frontend.dir/real_parser.cpp.o" "gcc" "src/frontend/CMakeFiles/qsyn_frontend.dir/real_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qsyn_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
