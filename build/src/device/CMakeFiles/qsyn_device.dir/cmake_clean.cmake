file(REMOVE_RECURSE
  "CMakeFiles/qsyn_device.dir/calibration.cpp.o"
  "CMakeFiles/qsyn_device.dir/calibration.cpp.o.d"
  "CMakeFiles/qsyn_device.dir/coupling_map.cpp.o"
  "CMakeFiles/qsyn_device.dir/coupling_map.cpp.o.d"
  "CMakeFiles/qsyn_device.dir/device.cpp.o"
  "CMakeFiles/qsyn_device.dir/device.cpp.o.d"
  "CMakeFiles/qsyn_device.dir/fidelity.cpp.o"
  "CMakeFiles/qsyn_device.dir/fidelity.cpp.o.d"
  "CMakeFiles/qsyn_device.dir/loader.cpp.o"
  "CMakeFiles/qsyn_device.dir/loader.cpp.o.d"
  "CMakeFiles/qsyn_device.dir/registry.cpp.o"
  "CMakeFiles/qsyn_device.dir/registry.cpp.o.d"
  "libqsyn_device.a"
  "libqsyn_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
