# Empty dependencies file for qsyn_device.
# This may be replaced when dependencies are built.
