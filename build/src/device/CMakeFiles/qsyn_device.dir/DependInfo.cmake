
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/calibration.cpp" "src/device/CMakeFiles/qsyn_device.dir/calibration.cpp.o" "gcc" "src/device/CMakeFiles/qsyn_device.dir/calibration.cpp.o.d"
  "/root/repo/src/device/coupling_map.cpp" "src/device/CMakeFiles/qsyn_device.dir/coupling_map.cpp.o" "gcc" "src/device/CMakeFiles/qsyn_device.dir/coupling_map.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/device/CMakeFiles/qsyn_device.dir/device.cpp.o" "gcc" "src/device/CMakeFiles/qsyn_device.dir/device.cpp.o.d"
  "/root/repo/src/device/fidelity.cpp" "src/device/CMakeFiles/qsyn_device.dir/fidelity.cpp.o" "gcc" "src/device/CMakeFiles/qsyn_device.dir/fidelity.cpp.o.d"
  "/root/repo/src/device/loader.cpp" "src/device/CMakeFiles/qsyn_device.dir/loader.cpp.o" "gcc" "src/device/CMakeFiles/qsyn_device.dir/loader.cpp.o.d"
  "/root/repo/src/device/registry.cpp" "src/device/CMakeFiles/qsyn_device.dir/registry.cpp.o" "gcc" "src/device/CMakeFiles/qsyn_device.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qsyn_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
