file(REMOVE_RECURSE
  "libqsyn_device.a"
)
