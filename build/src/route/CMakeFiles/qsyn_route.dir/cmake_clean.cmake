file(REMOVE_RECURSE
  "CMakeFiles/qsyn_route.dir/ctr.cpp.o"
  "CMakeFiles/qsyn_route.dir/ctr.cpp.o.d"
  "CMakeFiles/qsyn_route.dir/placement.cpp.o"
  "CMakeFiles/qsyn_route.dir/placement.cpp.o.d"
  "libqsyn_route.a"
  "libqsyn_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
