# Empty compiler generated dependencies file for qsyn_route.
# This may be replaced when dependencies are built.
