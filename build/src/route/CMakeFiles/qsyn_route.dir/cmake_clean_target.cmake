file(REMOVE_RECURSE
  "libqsyn_route.a"
)
