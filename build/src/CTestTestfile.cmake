# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("ir")
subdirs("qmdd")
subdirs("sim")
subdirs("device")
subdirs("frontend")
subdirs("esop")
subdirs("decompose")
subdirs("route")
subdirs("opt")
subdirs("bench_circuits")
subdirs("core")
subdirs("cli")
