file(REMOVE_RECURSE
  "CMakeFiles/qsyn_core.dir/compiler.cpp.o"
  "CMakeFiles/qsyn_core.dir/compiler.cpp.o.d"
  "CMakeFiles/qsyn_core.dir/report.cpp.o"
  "CMakeFiles/qsyn_core.dir/report.cpp.o.d"
  "libqsyn_core.a"
  "libqsyn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
