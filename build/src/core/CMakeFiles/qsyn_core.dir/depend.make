# Empty dependencies file for qsyn_core.
# This may be replaced when dependencies are built.
