file(REMOVE_RECURSE
  "libqsyn_core.a"
)
