# Empty dependencies file for qsyn_cli.
# This may be replaced when dependencies are built.
