file(REMOVE_RECURSE
  "CMakeFiles/qsyn_cli.dir/options.cpp.o"
  "CMakeFiles/qsyn_cli.dir/options.cpp.o.d"
  "libqsyn_cli.a"
  "libqsyn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
