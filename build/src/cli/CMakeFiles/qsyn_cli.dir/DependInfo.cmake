
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cli/options.cpp" "src/cli/CMakeFiles/qsyn_cli.dir/options.cpp.o" "gcc" "src/cli/CMakeFiles/qsyn_cli.dir/options.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/qsyn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/esop/CMakeFiles/qsyn_esop.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/qsyn_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qsyn_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsyn_common.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/qsyn_route.dir/DependInfo.cmake"
  "/root/repo/build/src/decompose/CMakeFiles/qsyn_decompose.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/qsyn_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/qmdd/CMakeFiles/qsyn_qmdd.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/qsyn_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
