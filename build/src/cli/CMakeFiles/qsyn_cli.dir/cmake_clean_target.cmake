file(REMOVE_RECURSE
  "libqsyn_cli.a"
)
