# Empty dependencies file for qsyn_sim.
# This may be replaced when dependencies are built.
