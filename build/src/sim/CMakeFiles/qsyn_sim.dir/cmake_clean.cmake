file(REMOVE_RECURSE
  "CMakeFiles/qsyn_sim.dir/statevector.cpp.o"
  "CMakeFiles/qsyn_sim.dir/statevector.cpp.o.d"
  "libqsyn_sim.a"
  "libqsyn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
