file(REMOVE_RECURSE
  "libqsyn_sim.a"
)
