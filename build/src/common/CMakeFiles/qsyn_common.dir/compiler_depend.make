# Empty compiler generated dependencies file for qsyn_common.
# This may be replaced when dependencies are built.
