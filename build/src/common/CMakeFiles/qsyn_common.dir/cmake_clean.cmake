file(REMOVE_RECURSE
  "CMakeFiles/qsyn_common.dir/errors.cpp.o"
  "CMakeFiles/qsyn_common.dir/errors.cpp.o.d"
  "CMakeFiles/qsyn_common.dir/strings.cpp.o"
  "CMakeFiles/qsyn_common.dir/strings.cpp.o.d"
  "CMakeFiles/qsyn_common.dir/table_printer.cpp.o"
  "CMakeFiles/qsyn_common.dir/table_printer.cpp.o.d"
  "libqsyn_common.a"
  "libqsyn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
