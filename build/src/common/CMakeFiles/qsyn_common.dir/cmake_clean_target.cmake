file(REMOVE_RECURSE
  "libqsyn_common.a"
)
