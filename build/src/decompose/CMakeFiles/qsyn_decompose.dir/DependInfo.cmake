
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decompose/barenco.cpp" "src/decompose/CMakeFiles/qsyn_decompose.dir/barenco.cpp.o" "gcc" "src/decompose/CMakeFiles/qsyn_decompose.dir/barenco.cpp.o.d"
  "/root/repo/src/decompose/controlled.cpp" "src/decompose/CMakeFiles/qsyn_decompose.dir/controlled.cpp.o" "gcc" "src/decompose/CMakeFiles/qsyn_decompose.dir/controlled.cpp.o.d"
  "/root/repo/src/decompose/pass.cpp" "src/decompose/CMakeFiles/qsyn_decompose.dir/pass.cpp.o" "gcc" "src/decompose/CMakeFiles/qsyn_decompose.dir/pass.cpp.o.d"
  "/root/repo/src/decompose/rebase.cpp" "src/decompose/CMakeFiles/qsyn_decompose.dir/rebase.cpp.o" "gcc" "src/decompose/CMakeFiles/qsyn_decompose.dir/rebase.cpp.o.d"
  "/root/repo/src/decompose/toffoli.cpp" "src/decompose/CMakeFiles/qsyn_decompose.dir/toffoli.cpp.o" "gcc" "src/decompose/CMakeFiles/qsyn_decompose.dir/toffoli.cpp.o.d"
  "/root/repo/src/decompose/zyz.cpp" "src/decompose/CMakeFiles/qsyn_decompose.dir/zyz.cpp.o" "gcc" "src/decompose/CMakeFiles/qsyn_decompose.dir/zyz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/qsyn_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/qsyn_device.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/qsyn_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/qsyn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
