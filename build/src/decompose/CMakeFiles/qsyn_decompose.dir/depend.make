# Empty dependencies file for qsyn_decompose.
# This may be replaced when dependencies are built.
