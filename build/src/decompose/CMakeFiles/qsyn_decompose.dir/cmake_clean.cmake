file(REMOVE_RECURSE
  "CMakeFiles/qsyn_decompose.dir/barenco.cpp.o"
  "CMakeFiles/qsyn_decompose.dir/barenco.cpp.o.d"
  "CMakeFiles/qsyn_decompose.dir/controlled.cpp.o"
  "CMakeFiles/qsyn_decompose.dir/controlled.cpp.o.d"
  "CMakeFiles/qsyn_decompose.dir/pass.cpp.o"
  "CMakeFiles/qsyn_decompose.dir/pass.cpp.o.d"
  "CMakeFiles/qsyn_decompose.dir/rebase.cpp.o"
  "CMakeFiles/qsyn_decompose.dir/rebase.cpp.o.d"
  "CMakeFiles/qsyn_decompose.dir/toffoli.cpp.o"
  "CMakeFiles/qsyn_decompose.dir/toffoli.cpp.o.d"
  "CMakeFiles/qsyn_decompose.dir/zyz.cpp.o"
  "CMakeFiles/qsyn_decompose.dir/zyz.cpp.o.d"
  "libqsyn_decompose.a"
  "libqsyn_decompose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qsyn_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
