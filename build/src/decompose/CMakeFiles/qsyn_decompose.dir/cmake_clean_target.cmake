file(REMOVE_RECURSE
  "libqsyn_decompose.a"
)
