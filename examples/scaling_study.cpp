/**
 * @file
 * Scaling study on the proposed 96-qubit machine (the paper's "design
 * tools must be able to scale" experiment, lightweight edition):
 * sweeps generalized-Toffoli sizes T4..T12 placed across the Fig. 7
 * topology, reporting mapped size, optimization recovery, and
 * compile + verification time.
 *
 * Build & run:  ./build/examples/scaling_study
 */

#include <cstdio>
#include <iostream>

#include "common/table_printer.hpp"
#include "common/strings.hpp"
#include "core/qsyn.hpp"

int
main()
{
    using namespace qsyn;

    Device device = makeProposed96();
    std::cout << "target: " << device.summary() << "\n\n";

    TablePrinter table({"Gate", "Unopt gates", "Opt gates", "Opt cost",
                        "% decrease", "Time", "Verification"});

    for (int n = 4; n <= 12; ++n) {
        // One T_n gate spanning two rows of the grid, like Table 7.
        Circuit input(96, "T" + std::to_string(n));
        std::vector<Qubit> controls;
        for (Qubit i = 1; i < static_cast<Qubit>(n); ++i)
            controls.push_back(i);
        input.addMcx(controls, 25);

        Compiler compiler(device);
        CompileResult res = compiler.compile(input);
        char time_buf[32];
        std::snprintf(time_buf, sizeof(time_buf), "%.2fs",
                      res.totalSeconds);
        table.addRow({"T" + std::to_string(n),
                      std::to_string(res.unoptimized.gates),
                      std::to_string(res.optimizedM.gates),
                      formatNumber(res.optimizedM.cost, 1),
                      formatNumber(res.percentCostDecrease(), 2),
                      time_buf,
                      dd::equivalenceName(res.verification)});
    }
    table.print(std::cout);
    std::cout << "\nEvery output is formally verified against its "
                 "generalized-Toffoli specification by the QMDD "
                 "equivalence test.\n";
    return 0;
}
