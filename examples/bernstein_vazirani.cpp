/**
 * @file
 * Bernstein-Vazirani on a real device: recovers a hidden bit string s
 * from a single oracle query. The oracle f(x) = s.x is built with
 * CNOTs, compiled onto ibmq_16 (Melbourne), and the compiled circuit
 * is simulated to show every "measured" wire reads the hidden string
 * exactly — another of the intro's "searching large data sets"
 * motivations, end-to-end through the technology mapper.
 *
 * Build & run:  ./build/examples/bernstein_vazirani
 */

#include <iostream>

#include "core/qsyn.hpp"
#include "frontend/circuit_drawer.hpp"
#include "sim/statevector.hpp"

int
main()
{
    using namespace qsyn;

    const unsigned hidden = 0b1011; // the secret string s
    const Qubit n = 4;              // data qubits; wire n is the flag

    Circuit bv(n + 1, "bernstein_vazirani");
    // Flag qubit in |->.
    bv.addX(n);
    bv.addH(n);
    for (Qubit q = 0; q < n; ++q)
        bv.addH(q);
    // Oracle: f(x) = s . x, one CNOT per set bit of s.
    for (Qubit q = 0; q < n; ++q) {
        if ((hidden >> (n - 1 - q)) & 1)
            bv.addCnot(q, n);
    }
    for (Qubit q = 0; q < n; ++q)
        bv.addH(q);

    std::cout << "input circuit:\n"
              << frontend::drawCircuit(bv) << "\n";

    Device device = makeIbmq16();
    Compiler compiler(device);
    CompileResult result = compiler.compile(bv);
    std::cout << "compiled for " << device.name() << ": "
              << result.optimizedM.gates << " native gates ("
              << result.routeStats.reroutedCnots << " CNOTs rerouted, "
              << result.routeStats.reversedCnots << " reversed), "
              << "verification: "
              << dd::equivalenceName(result.verification) << "\n\n";

    // Simulate the compiled circuit; the data wires must read `hidden`
    // with certainty.
    sim::StateVector sv(result.optimized.numQubits());
    sv.apply(result.optimized);
    unsigned recovered = 0;
    bool deterministic = true;
    for (Qubit q = 0; q < n; ++q) {
        double p1 = sv.probabilityOfOne(result.placement[q]);
        if (p1 > 0.99)
            recovered |= 1u << (n - 1 - q);
        else if (p1 > 0.01)
            deterministic = false;
    }

    std::cout << "hidden string:    ";
    for (Qubit q = 0; q < n; ++q)
        std::cout << ((hidden >> (n - 1 - q)) & 1);
    std::cout << "\nrecovered string: ";
    for (Qubit q = 0; q < n; ++q)
        std::cout << ((recovered >> (n - 1 - q)) & 1);
    std::cout << (deterministic && recovered == hidden
                      ? "   (exact, single query)"
                      : "   MISMATCH")
              << "\n";
    return recovered == hidden && deterministic ? 0 : 1;
}
