/**
 * @file
 * Grover search compiled to a real device: builds a 3-qubit Grover
 * iteration (oracle marking |101> + diffusion operator), compiles it
 * to ibmqx5, and simulates the *compiled* circuit to show the marked
 * state's amplified probability survives technology mapping - the
 * "searching large data sets" motivation from the paper's intro.
 *
 * Build & run:  ./build/examples/grover_oracle
 */

#include <iomanip>
#include <iostream>

#include "core/qsyn.hpp"
#include "sim/statevector.hpp"

namespace {

using namespace qsyn;

/** Oracle: phase-flip the marked computational basis state. */
void
appendOracle(Circuit &c, unsigned marked, Qubit n)
{
    // X on zero-bits, then a multi-controlled Z, then undo.
    for (Qubit q = 0; q < n; ++q) {
        if (!((marked >> (n - 1 - q)) & 1))
            c.addX(q);
    }
    std::vector<Qubit> controls;
    for (Qubit q = 0; q + 1 < n; ++q)
        controls.push_back(q);
    c.add(Gate(GateKind::Z, controls, {n - 1}));
    for (Qubit q = 0; q < n; ++q) {
        if (!((marked >> (n - 1 - q)) & 1))
            c.addX(q);
    }
}

/** Diffusion operator: 2|s><s| - I. */
void
appendDiffusion(Circuit &c, Qubit n)
{
    for (Qubit q = 0; q < n; ++q)
        c.addH(q);
    for (Qubit q = 0; q < n; ++q)
        c.addX(q);
    std::vector<Qubit> controls;
    for (Qubit q = 0; q + 1 < n; ++q)
        controls.push_back(q);
    c.add(Gate(GateKind::Z, controls, {n - 1}));
    for (Qubit q = 0; q < n; ++q)
        c.addX(q);
    for (Qubit q = 0; q < n; ++q)
        c.addH(q);
}

} // namespace

int
main()
{
    const Qubit n = 3;
    const unsigned marked = 0b101;

    Circuit grover(n, "grover3");
    for (Qubit q = 0; q < n; ++q)
        grover.addH(q); // uniform superposition
    // Two Grover iterations are optimal for N=8, M=1.
    for (int iter = 0; iter < 2; ++iter) {
        appendOracle(grover, marked, n);
        appendDiffusion(grover, n);
    }

    std::cout << "technology-independent Grover circuit: "
              << grover.size() << " gates on " << grover.numQubits()
              << " qubits (includes CCZ gates the hardware lacks)\n";

    Device device = makeIbmqx5();
    Compiler compiler(device);
    CompileResult result = compiler.compile(grover);
    std::cout << "compiled for " << device.name() << ": "
              << result.optimizedM.gates << " native gates, cost "
              << result.optimizedM.cost << ", verification: "
              << dd::equivalenceName(result.verification) << "\n\n";

    // Simulate the compiled circuit on the device register.
    sim::StateVector sv(result.optimized.numQubits());
    sv.apply(result.optimized);

    std::cout << "measurement distribution of the compiled circuit "
                 "(logical wires):\n";
    double p_marked = 0.0;
    for (unsigned basis = 0; basis < 8; ++basis) {
        // Map a logical basis state onto the physical register.
        double p = 0.0;
        for (size_t j = 0; j < sv.dim(); ++j) {
            bool matches = true;
            for (Qubit q = 0; q < n; ++q) {
                size_t phys_bit =
                    size_t{1} << (result.optimized.numQubits() - 1 -
                                  result.placement[q]);
                bool phys_one = (j & phys_bit) != 0;
                bool want_one = (basis >> (n - 1 - q)) & 1;
                matches = matches && phys_one == want_one;
            }
            if (matches)
                p += std::norm(sv.amp(j));
        }
        std::cout << "  |" << ((basis >> 2) & 1) << ((basis >> 1) & 1)
                  << (basis & 1) << ">  " << std::fixed
                  << std::setprecision(4) << p
                  << (basis == marked ? "   <-- marked item" : "")
                  << "\n";
        if (basis == marked)
            p_marked = p;
    }
    std::cout << "\nmarked-state probability " << p_marked
              << " (ideal Grover after 2 iterations: ~0.945)\n";
    return p_marked > 0.9 ? 0 : 1;
}
