/**
 * @file
 * Custom technology targets: the paper's tool "supports the addition
 * of coupling maps so that new devices can be targeted". This example
 * defines a 7-qubit ring machine in the loader's text format, prints
 * its coupling complexity, compiles a Toffoli cascade onto it with a
 * custom (CNOT-heavy) cost function, and emits QASM.
 *
 * Build & run:  ./build/examples/custom_device
 */

#include <iostream>

#include "core/qsyn.hpp"
#include "frontend/real_parser.hpp"

int
main()
{
    using namespace qsyn;

    // A 7-qubit unidirectional ring, described exactly like a coupling
    // map dictionary (one control per line).
    const std::string device_text = R"(
        # ring7: each qubit controls its clockwise neighbor
        device ring7 7
        0: 1
        1: 2
        2: 3
        3: 4
        4: 5
        5: 6
        6: 0
    )";
    Device ring = parseDeviceString(device_text);
    std::cout << "custom target: " << ring.summary() << "\n";
    std::cout << "coupling map: " << ring.coupling().toDictString()
              << "\n\n";

    // A small reversible benchmark in RevLib .real format.
    Circuit cascade = frontend::parseReal(".numvars 4\n"
                                          ".variables a b c d\n"
                                          ".begin\n"
                                          "t3 a b c\n"
                                          "t2 c d\n"
                                          "t4 a b c d\n"
                                          ".end\n",
                                          "demo_cascade");

    // Custom cost function: this library charges CNOTs 2.0 extra
    // (e.g. a device with unusually poor two-qubit fidelity).
    CompileOptions options;
    options.optimizer.weights.cnotWeight = 2.0;
    Compiler compiler(ring, options);
    CompileResult result = compiler.compile(cascade);

    std::cout << "mapped: " << result.unoptimized.gates
              << " gates (cost " << result.unoptimized.cost
              << ") -> optimized: " << result.optimizedM.gates
              << " gates (cost " << result.optimizedM.cost << ", "
              << result.percentCostDecrease() << "% cheaper)\n";
    std::cout << "CTR reroutes: " << result.routeStats.reroutedCnots
              << ", swaps inserted: " << result.routeStats.swapsInserted
              << "\n";
    std::cout << "verification: "
              << dd::equivalenceName(result.verification) << "\n\n";

    std::cout << "--- QASM for ring7 ---\n" << compiler.toQasm(result);
    return 0;
}
