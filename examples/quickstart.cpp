/**
 * @file
 * Quickstart: parse an OpenQASM circuit, compile it for a real IBM Q
 * device with the full pipeline (decompose -> place -> CTR route ->
 * optimize -> QMDD verify), and print the technology-dependent QASM.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "core/qsyn.hpp"

int
main()
{
    using namespace qsyn;

    // A technology-independent specification: a 3-qubit GHZ-prepare
    // followed by a Toffoli, written in plain OpenQASM 2.0.
    const std::string source = R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[3];
        h q[0];
        cx q[0],q[1];
        cx q[1],q[2];
        ccx q[0],q[1],q[2];
    )";
    Circuit circuit = frontend::parseQasm(source, "quickstart");

    // Pick a target from the built-in device library (Table 2).
    Device device = makeIbmqx4();
    std::cout << "target: " << device.summary() << "\n";
    std::cout << "coupling map: " << device.coupling().toDictString()
              << "\n\n";

    // Compile. Defaults: Eqn. 2 cost weights, identity placement, CTR
    // routing, optimization on, QMDD verification on.
    Compiler compiler(device);
    CompileResult result = compiler.compile(circuit);

    std::cout << "tech-independent: " << result.techIndependent.gates
              << " gates (T-count " << result.techIndependent.tCount
              << ", cost " << result.techIndependent.cost << ")\n";
    std::cout << "mapped (unoptimized): " << result.unoptimized.gates
              << " gates, cost " << result.unoptimized.cost << "\n";
    std::cout << "mapped (optimized):   " << result.optimizedM.gates
              << " gates, cost " << result.optimizedM.cost << " ("
              << result.percentCostDecrease() << "% cheaper)\n";
    std::cout << "CNOTs rerouted with CTR: "
              << result.routeStats.reroutedCnots
              << ", orientation-reversed: "
              << result.routeStats.reversedCnots << "\n";
    std::cout << "formal verification: "
              << dd::equivalenceName(result.verification) << "\n";
    std::cout << "total time: " << result.totalSeconds << " s\n\n";

    std::cout << "--- technology-dependent QASM ---\n"
              << compiler.toQasm(result);
    return 0;
}
