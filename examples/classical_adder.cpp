/**
 * @file
 * The classical-logic front end (Fig. 2 of the paper): a full adder
 * specified as an ESOP PLA is synthesized into a reversible
 * NOT/CNOT/Toffoli cascade, then compiled onto ibmqx5 - no quantum
 * knowledge required in the specification.
 *
 * Build & run:  ./build/examples/classical_adder
 */

#include <iostream>

#include "core/qsyn.hpp"
#include "frontend/pla_parser.hpp"
#include "sim/statevector.hpp"

int
main()
{
    using namespace qsyn;

    // sum = a ^ b ^ cin;  cout = ab ^ a.cin ^ b.cin  (ESOP cube list).
    const std::string pla_text = R"(
        .i 3
        .o 2
        .ilb a b cin
        .ob sum cout
        .type esop
        1-- 10
        -1- 10
        --1 10
        11- 01
        1-1 01
        -11 01
        .e
    )";
    frontend::PlaFile pla = frontend::parsePla(pla_text);
    Circuit cascade = esop::synthesizePla(pla);
    cascade.setName("full_adder");
    std::cout << "reversible cascade from the ESOP front end ("
              << cascade.numQubits() << " wires: 3 inputs + 2 outputs):\n"
              << cascade.toString() << "\n";

    // Compile onto a 16-qubit machine.
    Device device = makeIbmqx5();
    Compiler compiler(device);
    CompileResult result = compiler.compile(cascade);
    std::cout << "mapped to " << device.name() << ": "
              << result.optimizedM.gates << " gates, cost "
              << result.optimizedM.cost << ", verification: "
              << dd::equivalenceName(result.verification) << "\n\n";

    // Exercise the compiled circuit as a classical adder: for every
    // input, simulate and read out the sum/cout wires.
    std::cout << "a b cin | sum cout (simulated on the compiled "
                 "device circuit)\n";
    std::cout << "--------+---------\n";
    bool all_correct = true;
    for (unsigned in = 0; in < 8; ++in) {
        unsigned a = in & 1, b = (in >> 1) & 1, cin = (in >> 2) & 1;
        sim::StateVector sv(result.optimized.numQubits());
        size_t index = 0;
        Qubit n = result.optimized.numQubits();
        // Inputs live on device wires placement[0..2].
        if (a)
            index |= size_t{1} << (n - 1 - result.placement[0]);
        if (b)
            index |= size_t{1} << (n - 1 - result.placement[1]);
        if (cin)
            index |= size_t{1} << (n - 1 - result.placement[2]);
        sv.setBasisState(index);
        sv.apply(result.optimized);

        double p_sum = sv.probabilityOfOne(result.placement[3]);
        double p_cout = sv.probabilityOfOne(result.placement[4]);
        unsigned got_sum = p_sum > 0.5 ? 1 : 0;
        unsigned got_cout = p_cout > 0.5 ? 1 : 0;
        unsigned want_sum = a ^ b ^ cin;
        unsigned want_cout = (a & b) | (a & cin) | (b & cin);
        all_correct = all_correct && got_sum == want_sum &&
                      got_cout == want_cout;
        std::cout << a << " " << b << " " << cin << "   |  " << got_sum
                  << "    " << got_cout
                  << (got_sum == want_sum && got_cout == want_cout
                          ? ""
                          : "   <-- WRONG")
                  << "\n";
    }
    std::cout << (all_correct ? "\nadder verified on all 8 inputs\n"
                              : "\nMISMATCH\n");
    return all_correct ? 0 : 1;
}
