/**
 * @file
 * qsync: the command-line front door of the qsyn compiler.
 */

#include <iostream>
#include <vector>

#include "cli/options.hpp"
#include "common/errors.hpp"

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        qsyn::cli::CliOptions options =
            qsyn::cli::parseCliArguments(args);
        return qsyn::cli::runCli(options, std::cout, std::cerr);
    } catch (const qsyn::UserError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
