/**
 * @file
 * qlint: the static analyzer as a standalone CI tool. Lints one or
 * more circuit files against an optional target device and renders
 * findings as human text, JSON, or SARIF 2.1.0 (for upload to code-
 * scanning dashboards).
 *
 * Exit codes are CI-suitable:
 *   0  no findings at failing severity (clean, or warnings without
 *      --Werror)
 *   1  at least one error-severity finding (or warning with --Werror)
 *   2  usage or I/O error
 */

#include <fstream>
#include <iostream>
#include <optional>
#include <vector>

#include "analysis/rules.hpp"
#include "cli/options.hpp"
#include "common/errors.hpp"
#include "device/loader.hpp"
#include "device/registry.hpp"
#include "frontend/loader.hpp"

namespace {

constexpr const char *kHelp =
    "usage: qlint [options] <circuit>...\n"
    "\n"
    "Statically analyze quantum circuits (.qasm/.qc/.real): build the\n"
    "commutation-aware dependency DAG, compute depth/parallelism\n"
    "metrics, and report lint findings with stable QLxxx rule IDs.\n"
    "\n"
    "options:\n"
    "  -d, --device <name>      lint against a built-in device\n"
    "      --device-file <file> lint against a custom device file\n"
    "      --simulator-qubits <n>\n"
    "                           width of the simulator device\n"
    "                           (with --device simulator; default 32)\n"
    "      --format <fmt>       output format: text (default), json,\n"
    "                           or sarif (SARIF 2.1.0)\n"
    "  -o, --output <file>      write the report here (default stdout)\n"
    "      --ancilla <q>        declare wire q an ancilla that must be\n"
    "                           restored to |0> (repeatable)\n"
    "      --rule <QLxxx>       only run this rule (repeatable)\n"
    "      --no-rule <QLxxx>    disable this rule (repeatable)\n"
    "      --no-commutation     per-wire program-order DAG edges only\n"
    "      --Werror             exit 1 on warnings, not just errors\n"
    "      --list-rules         print the rule catalog and exit\n"
    "  -h, --help               this text\n"
    "\n"
    "Without a device, only device-independent rules run (dead qubits,\n"
    "dead gate pairs, ancilla restoration).\n";

struct QlintOptions
{
    std::vector<std::string> inputs;
    std::string deviceName;
    std::string deviceFile;
    qsyn::Qubit simulatorQubits = 32;
    std::string format = "text";
    std::string outputPath;
    std::vector<qsyn::Qubit> ancillas;
    std::vector<std::string> onlyRules;
    std::vector<std::string> disabledRules;
    bool commutationAware = true;
    bool warningsAsErrors = false;
    bool showHelp = false;
    bool listRules = false;
};

QlintOptions
parseArgs(const std::vector<std::string> &args)
{
    using qsyn::UserError;
    QlintOptions opts;
    for (size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        auto next_value = [&](const std::string &flag) -> std::string {
            if (i + 1 >= args.size())
                throw UserError("missing value for " + flag);
            return args[++i];
        };
        if (arg == "-h" || arg == "--help") {
            opts.showHelp = true;
        } else if (arg == "-d" || arg == "--device") {
            opts.deviceName = next_value(arg);
        } else if (arg == "--device-file") {
            opts.deviceFile = next_value(arg);
        } else if (arg == "--simulator-qubits") {
            opts.simulatorQubits = static_cast<qsyn::Qubit>(
                qsyn::cli::parseCountValue(arg, next_value(arg)));
        } else if (arg == "--format") {
            opts.format = next_value(arg);
            if (opts.format != "text" && opts.format != "json" &&
                opts.format != "sarif")
                throw UserError("unknown format '" + opts.format +
                                "' (text|json|sarif)");
        } else if (arg == "-o" || arg == "--output") {
            opts.outputPath = next_value(arg);
        } else if (arg == "--ancilla") {
            opts.ancillas.push_back(static_cast<qsyn::Qubit>(
                qsyn::cli::parseCountValue(arg, next_value(arg))));
        } else if (arg == "--rule") {
            opts.onlyRules.push_back(next_value(arg));
        } else if (arg == "--no-rule") {
            opts.disabledRules.push_back(next_value(arg));
        } else if (arg == "--no-commutation") {
            opts.commutationAware = false;
        } else if (arg == "--Werror") {
            opts.warningsAsErrors = true;
        } else if (arg == "--list-rules") {
            opts.listRules = true;
        } else if (!arg.empty() && arg[0] == '-') {
            throw UserError("unknown option '" + arg + "'");
        } else {
            opts.inputs.push_back(arg);
        }
    }
    if (!opts.showHelp && !opts.listRules && opts.inputs.empty())
        throw UserError("no input file (try --help)");
    for (const std::string &id : opts.onlyRules) {
        if (qsyn::analysis::findRule(id) == nullptr)
            throw UserError("unknown rule '" + id + "'");
    }
    for (const std::string &id : opts.disabledRules) {
        if (qsyn::analysis::findRule(id) == nullptr)
            throw UserError("unknown rule '" + id + "'");
    }
    return opts;
}

int
run(const QlintOptions &opts)
{
    namespace analysis = qsyn::analysis;

    if (opts.showHelp) {
        std::cout << kHelp;
        return 0;
    }
    if (opts.listRules) {
        for (const analysis::RuleInfo &rule : analysis::ruleCatalog()) {
            std::cout << rule.id << "  " << rule.name << " ("
                      << analysis::severityName(rule.defaultSeverity)
                      << ")\n    " << rule.description << "\n";
        }
        return 0;
    }

    std::optional<qsyn::Device> device;
    if (!opts.deviceFile.empty())
        device = qsyn::loadDeviceFile(opts.deviceFile);
    else if (opts.deviceName == "simulator")
        device = qsyn::Device::simulator(opts.simulatorQubits);
    else if (!opts.deviceName.empty())
        device = qsyn::builtinDevice(opts.deviceName);

    analysis::LintOptions lopts;
    if (device)
        lopts.device = &*device;
    lopts.ancillas = opts.ancillas;
    lopts.onlyRules = opts.onlyRules;
    lopts.disabledRules = opts.disabledRules;

    std::vector<analysis::Diagnostics> reports;
    for (const std::string &input : opts.inputs) {
        qsyn::Circuit circuit = qsyn::frontend::loadCircuitFile(input);
        analysis::DagOptions dopts;
        dopts.commutationAware = opts.commutationAware;
        analysis::DependencyDag dag(circuit, dopts);
        analysis::DataflowAnalysis dataflow(dag);
        analysis::Diagnostics report;
        report.artifact = input;
        report.metrics = analysis::computeDagMetrics(dag);
        report.findings = analysis::lintCircuit(dag, dataflow, lopts);
        reports.push_back(std::move(report));
    }

    std::string rendered;
    if (opts.format == "json")
        rendered = analysis::renderJson(reports);
    else if (opts.format == "sarif")
        rendered = analysis::renderSarif(reports);
    else
        rendered = analysis::renderText(reports);

    if (opts.outputPath.empty()) {
        std::cout << rendered;
    } else {
        std::ofstream out(opts.outputPath);
        if (!out)
            throw qsyn::UserError("cannot write '" + opts.outputPath +
                                  "'");
        out << rendered;
        std::cerr << "wrote " << opts.outputPath << "\n";
    }

    analysis::Severity failing = opts.warningsAsErrors
                                     ? analysis::Severity::Warning
                                     : analysis::Severity::Error;
    for (const analysis::Diagnostics &report : reports) {
        if (report.countAtLeast(failing) > 0)
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        return run(parseArgs(args));
    } catch (const qsyn::Error &e) {
        std::cerr << "qlint: error: " << e.what() << "\n";
        return 2;
    }
}
