/**
 * @file
 * qfuzz: differential fuzzer for the qsyn compile pipeline.
 *
 * Generates seeded random (circuit, device, flags) cases, compiles
 * them, and judges every result with the qsyn::check oracle stack
 * (QMDD equivalence, statevector cross-check, legality, cost sanity,
 * determinism). Failures are delta-debugged down to minimal
 * reproducers and optionally saved as corpus entries.
 *
 * `qfuzz --smoke` is the CI entry point: a short clean run that must
 * be green and exercise every oracle, followed by a fault-injected run
 * (the hidden CTR swap-back bug) that must be caught and shrunk to a
 * tiny reproducer. Exit 0 only when both hold.
 */

#include <iostream>
#include <string>
#include <vector>

#include "check/fuzzer.hpp"
#include "cli/options.hpp"
#include "common/errors.hpp"
#include "obs/flight.hpp"
#include "service/fuzz.hpp"

namespace {

const char *kHelp =
    "qfuzz - differential fuzzer for the qsyn compiler\n"
    "\n"
    "usage: qfuzz [options]\n"
    "\n"
    "options:\n"
    "      --seed <n>           master seed (default 1)\n"
    "      --iterations <n>     cases to run (default 100;\n"
    "                           0 = until the time budget expires)\n"
    "      --time-budget <s>    wall-clock budget in seconds\n"
    "      --max-qubits <n>     input width cap (default 6)\n"
    "      --max-gates <n>      input gate-count cap (default 32)\n"
    "      --shrink-budget <n>  evaluations per shrink (default 300)\n"
    "      --corpus-dir <dir>   save shrunk reproducers here\n"
    "      --replay <dir>       replay a reproducer corpus instead of\n"
    "                           fuzzing; exit 1 unless all green\n"
    "      --inject-fault       plant the CTR swap-back bug in every\n"
    "                           case (the oracles must catch it)\n"
    "      --no-determinism     skip the determinism oracle\n"
    "      --no-cache-oracle    skip the cache-consistency oracle\n"
    "      --crash-dump <dir>   crash-dump directory (default: the\n"
    "                           corpus dir, else '.'); the handler is\n"
    "                           always armed so a crashing case ships\n"
    "                           its flight-recorder black box\n"
    "      --service            fuzz the qsynd wire protocol instead:\n"
    "                           an in-process daemon is attacked with\n"
    "                           malformed frames and must stay alive\n"
    "      --smoke              time-boxed CI self-test (see above)\n"
    "      --verbose            log every case, not just failures\n"
    "  -h, --help               this text\n";

int
runSmoke(qsyn::check::FuzzOptions base)
{
    using namespace qsyn::check;
    int rc = 0;

    // 1. Clean sweep: the shipped pipeline must satisfy every oracle
    //    on random cases, and every oracle must actually fire.
    FuzzOptions clean = base;
    clean.iterations = 25;
    clean.timeBudgetSeconds = 12.0;
    clean.maxQubits = 4;
    clean.maxGates = 10;
    clean.injectSwapBackFault = false;
    std::cerr << "[smoke] clean sweep (" << clean.iterations
              << " cases)\n";
    FuzzSummary cleanSum = runFuzzer(clean, std::cerr);
    if (!cleanSum.clean()) {
        std::cerr << "[smoke] FAIL: clean run found "
                  << cleanSum.failures.size() << " failure(s)\n";
        rc = 1;
    }
    const OracleId all[] = {OracleId::QmddEquivalence,
                            OracleId::Statevector, OracleId::Legality,
                            OracleId::CostSanity, OracleId::Determinism,
                            OracleId::CacheConsistency,
                            OracleId::LintClean};
    for (OracleId id : all) {
        if (!cleanSum.oracleExercised(id)) {
            std::cerr << "[smoke] FAIL: oracle '" << oracleName(id)
                      << "' never produced a verdict\n";
            rc = 1;
        }
    }

    // 2. Fault injection: the planted swap-back bug must be caught
    //    and shrunk to a tiny reproducer.
    FuzzOptions fault = base;
    fault.iterations = 10;
    fault.timeBudgetSeconds = 12.0;
    fault.maxQubits = 4;
    fault.maxGates = 12;
    fault.injectSwapBackFault = true;
    std::cerr << "[smoke] fault-injected sweep (" << fault.iterations
              << " cases, CTR swap-back disabled)\n";
    FuzzSummary faultSum = runFuzzer(fault, std::cerr);
    if (faultSum.failures.empty()) {
        std::cerr << "[smoke] FAIL: the planted swap-back fault was "
                     "never caught\n";
        rc = 1;
    } else if (faultSum.smallestFailureGates() > 8) {
        std::cerr << "[smoke] FAIL: smallest reproducer has "
                  << faultSum.smallestFailureGates()
                  << " gates (want <= 8)\n";
        rc = 1;
    } else {
        std::cerr << "[smoke] fault caught and shrunk to "
                  << faultSum.smallestFailureGates() << " gate(s)\n";
    }

    // 3. Service protocol robustness: an in-process qsynd attacked
    //    with malformed frames must answer every probe afterwards.
    qsyn::service::ServiceFuzzOptions sopts;
    sopts.seed = base.seed;
    sopts.iterations = 40;
    sopts.verbose = base.verbose;
    std::cerr << "[smoke] service protocol sweep (" << sopts.iterations
              << " cases)\n";
    qsyn::service::ServiceFuzzSummary svc =
        qsyn::service::runServiceFuzzer(sopts, std::cerr);
    if (!svc.clean()) {
        std::cerr << "[smoke] FAIL: service fuzz found "
                  << svc.failures.size() << " failure(s)\n";
        rc = 1;
    }

    std::cerr << (rc == 0 ? "[smoke] PASS\n" : "[smoke] FAIL\n");
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsyn;
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        check::FuzzOptions opts;
        bool smoke = false;
        bool serviceMode = false;
        std::string replay_dir;
        std::string crash_dir;
        size_t i = 0;
        auto next = [&](const std::string &flag) -> std::string {
            if (i + 1 >= args.size())
                throw UserError("missing value for " + flag);
            return args[++i];
        };
        for (; i < args.size(); ++i) {
            const std::string &arg = args[i];
            if (arg == "-h" || arg == "--help") {
                std::cout << kHelp;
                return 0;
            } else if (arg == "--seed") {
                opts.seed = cli::parseCountValue(arg, next(arg));
            } else if (arg == "--iterations") {
                opts.iterations = cli::parseCountValue(arg, next(arg));
            } else if (arg == "--time-budget") {
                opts.timeBudgetSeconds =
                    cli::parseDoubleValue(arg, next(arg));
            } else if (arg == "--max-qubits") {
                opts.maxQubits = static_cast<Qubit>(
                    cli::parseCountValue(arg, next(arg)));
            } else if (arg == "--max-gates") {
                opts.maxGates = cli::parseCountValue(arg, next(arg));
            } else if (arg == "--shrink-budget") {
                opts.shrinkBudget =
                    cli::parseCountValue(arg, next(arg));
            } else if (arg == "--corpus-dir") {
                opts.corpusDir = next(arg);
            } else if (arg == "--replay") {
                replay_dir = next(arg);
            } else if (arg == "--inject-fault") {
                opts.injectSwapBackFault = true;
            } else if (arg == "--no-determinism") {
                opts.oracle.runDeterminism = false;
            } else if (arg == "--no-cache-oracle") {
                opts.oracle.runCache = false;
            } else if (arg == "--crash-dump") {
                crash_dir = next(arg);
            } else if (arg == "--service") {
                serviceMode = true;
            } else if (arg == "--smoke") {
                smoke = true;
            } else if (arg == "--verbose") {
                opts.verbose = true;
            } else {
                throw UserError("unknown option '" + arg +
                                "' (try --help)");
            }
        }

        // The fuzzer's whole job is finding crashes, so the crash
        // handler is always armed: a crashing case leaves its flight-
        // recorder black box next to the reproducer corpus.
        {
            obs::flight::CrashConfig crash_config;
            if (!crash_dir.empty())
                crash_config.dir = crash_dir;
            else if (!opts.corpusDir.empty())
                crash_config.dir = opts.corpusDir;
            obs::flight::installCrashHandler(crash_config);
            obs::nameCurrentThread("qfuzz-main");
        }

        if (!replay_dir.empty()) {
            std::vector<std::string> failing =
                check::replayCorpus(replay_dir, opts.oracle, std::cerr);
            if (!failing.empty()) {
                std::cerr << "[qfuzz] " << failing.size()
                          << " corpus entr"
                          << (failing.size() == 1 ? "y" : "ies")
                          << " did not replay green\n";
                return 1;
            }
            return 0;
        }
        if (serviceMode) {
            service::ServiceFuzzOptions sopts;
            sopts.seed = opts.seed;
            sopts.iterations = opts.iterations;
            sopts.verbose = opts.verbose;
            service::ServiceFuzzSummary summary =
                service::runServiceFuzzer(sopts, std::cerr);
            return summary.clean() ? 0 : 1;
        }
        if (smoke)
            return runSmoke(opts);

        check::FuzzSummary summary = check::runFuzzer(opts, std::cerr);
        return summary.clean() ? 0 : 1;
    } catch (const UserError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    } catch (const Error &e) {
        std::cerr << "internal failure: " << e.what() << "\n";
        return 2;
    }
}
