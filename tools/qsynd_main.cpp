/**
 * @file
 * qsynd: the qsyn compile-server daemon. Binds a Unix-domain socket
 * (and optionally a loopback TCP port), keeps the compile cache and a
 * shared QMDD package warm across requests, and serves the
 * length-prefixed JSON protocol documented in service/protocol.hpp.
 *
 * SIGTERM/SIGINT trigger a graceful drain: no new work is accepted,
 * every admitted request finishes and gets its response, then the
 * process exits 0. The handler itself only flips an atomic and writes
 * one pipe byte (async-signal-safe); the main thread does the actual
 * teardown.
 */

#include <chrono>
#include <csignal>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cli/options.hpp"
#include "common/errors.hpp"
#include "obs/expo.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "service/server.hpp"

namespace {

const char *kHelp =
    "qsynd - qsyn compile-server daemon\n"
    "\n"
    "usage: qsynd --socket <path> [options]\n"
    "\n"
    "options:\n"
    "      --socket <path>      Unix-domain socket to serve (required)\n"
    "      --tcp <port>         also listen on 127.0.0.1:<port>\n"
    "      --threads <n>        concurrent compile slots (default:\n"
    "                           one per hardware thread)\n"
    "      --queue-depth <n>    admission queue length; requests past\n"
    "                           it get an immediate 'overloaded'\n"
    "                           response (default 16)\n"
    "      --max-qubits <n>     reject wider circuits (default: none)\n"
    "      --max-gates <n>      reject longer circuits (default: none)\n"
    "      --deadline <s>       per-request wall-time budget; clients\n"
    "                           may tighten it via deadline_ms but\n"
    "                           never exceed it (default: none)\n"
    "      --max-frame-mb <n>   largest accepted request frame\n"
    "                           (default 16)\n"
    "      --cache-dir <dir>    persistent compile-cache directory\n"
    "                           (default: memory tier only)\n"
    "      --cache-max-mb <n>   on-disk cache budget (default 256)\n"
    "      --no-share-manager   private QMDD package per request\n"
    "      --metrics-prom <f>   rewrite Prometheus text exposition\n"
    "                           here every --stats-interval seconds\n"
    "      --stats-interval <s> metrics file refresh period\n"
    "                           (default 5 with --metrics-prom)\n"
    "      --crash-dump <dir>   arm the flight-recorder crash handler\n"
    "      --log-level <l>      quiet | info | debug | trace\n"
    "  -h, --help               this text\n";

qsyn::service::Server *g_server = nullptr;

void
onSignal(int)
{
    if (g_server != nullptr)
        g_server->requestStop();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsyn;
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        service::ServerConfig config;
        std::string metricsPromPath;
        std::string crashDumpDir;
        double statsInterval = 0.0;
        size_t cacheMaxMb = 256;
        std::optional<obs::LogLevel> logLevel;

        size_t i = 0;
        auto next = [&](const std::string &flag) -> std::string {
            if (i + 1 >= args.size())
                throw UserError("missing value for " + flag);
            return args[++i];
        };
        for (; i < args.size(); ++i) {
            const std::string &arg = args[i];
            if (arg == "-h" || arg == "--help") {
                std::cout << kHelp;
                return 0;
            } else if (arg == "--socket") {
                config.socketPath = next(arg);
            } else if (arg == "--tcp") {
                config.tcpPort = static_cast<int>(
                    cli::parseCountValue(arg, next(arg)));
                if (config.tcpPort < 1 || config.tcpPort > 65535)
                    throw UserError("--tcp wants a port in 1..65535");
            } else if (arg == "--threads") {
                config.workers = cli::parseCountValue(arg, next(arg));
            } else if (arg == "--queue-depth") {
                config.queueDepth =
                    cli::parseCountValue(arg, next(arg));
            } else if (arg == "--max-qubits") {
                config.maxQubits = static_cast<Qubit>(
                    cli::parseCountValue(arg, next(arg)));
            } else if (arg == "--max-gates") {
                config.maxGates = cli::parseCountValue(arg, next(arg));
            } else if (arg == "--deadline") {
                config.deadlineSeconds =
                    cli::parseDoubleValue(arg, next(arg));
                if (config.deadlineSeconds < 0.0)
                    throw UserError("--deadline must be >= 0");
            } else if (arg == "--max-frame-mb") {
                size_t mb = cli::parseCountValue(arg, next(arg));
                if (mb == 0 || mb > 1024)
                    throw UserError("--max-frame-mb wants 1..1024");
                config.maxFrameBytes =
                    static_cast<std::uint32_t>(mb) << 20;
            } else if (arg == "--cache-dir") {
                config.cacheDir = next(arg);
            } else if (arg == "--cache-max-mb") {
                cacheMaxMb = cli::parseCountValue(arg, next(arg));
                if (cacheMaxMb == 0)
                    throw UserError("--cache-max-mb must be >= 1");
            } else if (arg == "--no-share-manager") {
                config.shareManager = false;
            } else if (arg == "--metrics-prom") {
                metricsPromPath = next(arg);
            } else if (arg == "--stats-interval") {
                statsInterval = cli::parseDoubleValue(arg, next(arg));
                if (statsInterval < 0.0)
                    throw UserError("--stats-interval must be >= 0");
            } else if (arg == "--crash-dump") {
                crashDumpDir = next(arg);
            } else if (arg == "--log-level") {
                std::string value = next(arg);
                obs::LogLevel level;
                if (!obs::parseLogLevel(value, &level))
                    throw UserError("unknown log level '" + value +
                                    "' (quiet|info|debug|trace)");
                logLevel = level;
            } else {
                throw UserError("unknown option '" + arg +
                                "' (try --help)");
            }
        }
        if (config.socketPath.empty())
            throw UserError("--socket is required (try --help)");
        config.cacheMaxBytes = static_cast<std::uint64_t>(cacheMaxMb)
                               << 20;

        if (logLevel)
            obs::setLogLevel(*logLevel);
        obs::flight::setRecording(true);
        if (!crashDumpDir.empty()) {
            obs::flight::CrashConfig crash_config;
            crash_config.dir = crashDumpDir;
            obs::flight::installCrashHandler(crash_config);
        }
        // The daemon always carries a metrics sink: the `stats` op
        // serves it live, and --metrics-prom persists it for scrapes.
        obs::Sink sink;
        obs::installSink(&sink);
        obs::nameCurrentThread("qsynd-main");

        service::Server server(config);
        g_server = &server;
        struct sigaction sa = {};
        sa.sa_handler = onSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
        // Belt next to the MSG_NOSIGNAL suspenders in protocol.cpp.
        ::signal(SIGPIPE, SIG_IGN);

        server.start();
        std::cerr << "qsynd: serving " << config.socketPath << "\n";

        if (!metricsPromPath.empty() && statsInterval <= 0.0)
            statsInterval = 5.0;
        if (!metricsPromPath.empty()) {
            // Piggyback the metrics flush on the stop-wait loop.
            std::thread flusher([&] {
                obs::nameCurrentThread("qsynd-metrics");
                while (server.running()) {
                    std::string error;
                    obs::writePrometheusFile(sink.metrics(),
                                             metricsPromPath, &error);
                    for (double waited = 0.0;
                         waited < statsInterval && server.running();
                         waited += 0.2) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(200));
                    }
                }
            });
            server.waitForStopRequest();
            server.stop();
            flusher.join();
            std::string error;
            obs::writePrometheusFile(sink.metrics(), metricsPromPath,
                                     &error);
        } else {
            server.waitForStopRequest();
            server.stop();
        }
        g_server = nullptr;
        obs::installSink(nullptr);
        std::cerr << "qsynd: drained, bye\n";
        return 0;
    } catch (const UserError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    } catch (const Error &e) {
        std::cerr << "internal failure: " << e.what() << "\n";
        return 2;
    }
}
