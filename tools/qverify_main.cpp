/**
 * @file
 * qverify: standalone QMDD equivalence checking between circuit
 * files — the paper's formal-verification step as a tool of its own
 * (compare compiler outputs, hand edits, or third-party transpiles).
 *
 * usage: qverify [options] <a.{qasm,qc,real}> <b.{qasm,qc,real}>...
 *
 * More than two files are checked as consecutive pairs (a b c d =
 * a-vs-b and c-vs-d), optionally in parallel with --jobs; each pair
 * gets its own QMDD package and verdicts print in input order.
 *
 * Exit code 0: all equivalent; 1: any not equivalent; 2: any
 * inconclusive, or a usage/internal error.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "cache/fingerprint.hpp"
#include "cache/store.hpp"
#include "cli/options.hpp"
#include "common/errors.hpp"
#include "common/stopwatch.hpp"
#include "core/batch.hpp"
#include "frontend/loader.hpp"
#include "obs/expo.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "qmdd/equivalence.hpp"

namespace {

void
printHelp()
{
    std::cout
        << "qverify - QMDD formal equivalence checking\n\n"
           "usage: qverify [options] <a> <b> [<c> <d> ...]\n\n"
           "More than two files are checked as consecutive pairs,\n"
           "each with its own QMDD package; verdicts print in input\n"
           "order.\n\n"
           "options:\n"
           "  -j, --jobs <n>     check pairs on n worker threads\n"
           "                     (0 = one per core)\n"
           "  --share-manager    workers check against one shared\n"
           "                     QMDD package (default)\n"
           "  --no-share-manager private QMDD package per pair\n"
           "  --strict           require exact equality (no global "
           "phase slack)\n"
           "  --miter            alternating-miter accumulation\n"
           "  --ancilla <list>   comma-separated wires required |0> at\n"
           "                     input and output (clean ancillas)\n"
           "  --budget <n>       node budget (0 = unlimited)\n"
           "  --no-quick-refute  skip the random-stimuli pre-check\n"
           "  --cache-dir <d>    memoize verdicts in a persistent\n"
           "                     cache directory (keyed by both\n"
           "                     circuits and every option)\n"
           "  --no-cache         ignore --cache-dir for this run\n"
           "  --trace-json <f>   write a Chrome trace-event file\n"
           "  --metrics-json <f> write a metrics snapshot\n"
           "  --metrics-prom <f> write Prometheus text exposition\n"
           "  --crash-dump <d>   arm the crash handler; a crash\n"
           "                     leaves qsyn-crash-<pid>.json in <d>\n"
           "  --log-level <l>    quiet | info | debug | trace\n"
           "  -h, --help         this text\n";
}

/** Write observability outputs requested on the command line. */
void
writeObsFiles(qsyn::obs::Sink &sink, const std::string &trace_path,
              const std::string &metrics_path,
              const std::string &prom_path = {})
{
    using qsyn::UserError;
    if (!trace_path.empty()) {
        std::ofstream f(trace_path);
        if (!f)
            throw UserError("cannot write trace '" + trace_path + "'");
        f << sink.traceJson();
        std::cerr << "wrote " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
        std::ofstream f(metrics_path);
        if (!f)
            throw UserError("cannot write metrics '" + metrics_path +
                            "'");
        f << sink.metricsJson();
        std::cerr << "wrote " << metrics_path << "\n";
    }
    if (!prom_path.empty()) {
        std::string error;
        if (!qsyn::obs::writePrometheusFile(sink.metrics(), prom_path,
                                            &error))
            throw UserError("cannot write metrics: " + error);
        std::cerr << "wrote " << prom_path << "\n";
    }
}

std::vector<qsyn::Qubit>
parseAncillaList(const std::string &text)
{
    std::vector<qsyn::Qubit> wires;
    size_t start = 0;
    while (start <= text.size()) {
        size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        std::string token = text.substr(start, comma - start);
        if (!token.empty())
            wires.push_back(static_cast<qsyn::Qubit>(
                qsyn::cli::parseCountValue("--ancilla", token)));
        start = comma + 1;
    }
    return wires;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsyn;
    std::vector<std::string> files;
    std::string trace_path, metrics_path, prom_path, crash_dir;
    std::string cache_dir;
    bool use_cache = true;
    size_t jobs = 1;
    bool share_manager = true;
    dd::EquivalenceOptions options;
    options.quickRefuteSamples = 4;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw UserError("missing value for " + arg);
                return argv[++i];
            };
            if (arg == "-h" || arg == "--help") {
                printHelp();
                return 0;
            } else if (arg == "--strict") {
                options.upToGlobalPhase = false;
            } else if (arg == "--miter") {
                options.useMiter = true;
            } else if (arg == "--ancilla") {
                options.ancillaWires = parseAncillaList(next());
            } else if (arg == "--budget") {
                options.nodeBudget = cli::parseCountValue(arg, next());
            } else if (arg == "-j" || arg == "--jobs") {
                jobs = cli::parseCountValue(arg, next());
            } else if (arg == "--share-manager") {
                share_manager = true;
            } else if (arg == "--no-share-manager") {
                share_manager = false;
            } else if (arg == "--no-quick-refute") {
                options.quickRefuteSamples = 0;
            } else if (arg == "--cache-dir") {
                cache_dir = next();
            } else if (arg == "--no-cache") {
                use_cache = false;
            } else if (arg == "--trace-json") {
                trace_path = next();
            } else if (arg == "--metrics-json") {
                metrics_path = next();
            } else if (arg == "--metrics-prom") {
                prom_path = next();
            } else if (arg == "--crash-dump") {
                crash_dir = next();
            } else if (arg == "--log-level") {
                std::string value = next();
                obs::LogLevel level;
                if (!obs::parseLogLevel(value, &level))
                    throw UserError("unknown log level '" + value +
                                    "' (quiet|info|debug|trace)");
                obs::setLogLevel(level);
            } else if (!arg.empty() && arg[0] == '-') {
                throw UserError("unknown option '" + arg + "'");
            } else {
                files.push_back(arg);
            }
        }
        if (files.size() < 2 || files.size() % 2 != 0)
            throw UserError(
                "expected an even number of circuit files (>= 2)");

        obs::flight::setRecording(true);
        if (!crash_dir.empty()) {
            obs::flight::CrashConfig crash_config;
            crash_config.dir = crash_dir;
            obs::flight::installCrashHandler(crash_config);
        }
        obs::Sink obs_sink;
        const bool observing = !trace_path.empty() ||
                               !metrics_path.empty() ||
                               !prom_path.empty();
        if (observing)
            obs::installSink(&obs_sink);
        obs::nameCurrentThread("qverify-main");

        /** One consecutive file pair, checked on its own package. */
        struct PairOutcome
        {
            dd::Equivalence verdict = dd::Equivalence::Inconclusive;
            bool errored = false;
            std::string errText;  // per-pair stderr, printed in order
            std::string outText;  // per-pair stdout (the verdict line)
        };
        const size_t pairs = files.size() / 2;
        std::vector<PairOutcome> outcomes(pairs);
        dd::Package last_pkg; // 2-file mode: metrics come from here

        // Persistent verdict memoization: one byte per (pair, options)
        // fingerprint, sharing the compile cache's store machinery.
        std::unique_ptr<cache::CacheStore> verdict_cache;
        if (use_cache && !cache_dir.empty())
            verdict_cache =
                std::make_unique<cache::CacheStore>(
                    cache::StoreConfig{cache_dir, 256ull << 20});

        parallelFor(
            pairs, jobs,
            [&](size_t p) {
            PairOutcome &res = outcomes[p];
            const std::string &fa = files[2 * p];
            const std::string &fb = files[2 * p + 1];
            std::ostringstream err_os, out_os;
            try {
                Circuit a = frontend::loadCircuitFile(fa);
                Circuit b = frontend::loadCircuitFile(fb);
                err_os << fa << ": " << a.numQubits() << " qubits, "
                       << a.size() << " gates\n";
                err_os << fb << ": " << b.numQubits() << " qubits, "
                       << b.size() << " gates\n";
                Stopwatch sw;
                std::string key;
                if (verdict_cache) {
                    key = cache::equivalenceCacheKey(
                        a, b, options, cache::kCacheVersionSalt);
                    std::vector<std::uint8_t> payload;
                    if (verdict_cache->load(key, &payload) &&
                        payload.size() == 1 &&
                        payload[0] <= static_cast<std::uint8_t>(
                                          dd::Equivalence::Inconclusive)) {
                        res.verdict =
                            static_cast<dd::Equivalence>(payload[0]);
                        out_os << dd::equivalenceName(res.verdict)
                               << "\n";
                        err_os << "verdict served from cache\n";
                        res.errText = err_os.str();
                        res.outText = out_os.str();
                        return;
                    }
                }
                // Default: every pair checks against the one shared
                // (concurrent) package, so common subcircuits across
                // pairs hit warm tables. --no-share-manager isolates
                // each pair in its own package instead.
                dd::Package local_pkg;
                dd::Package &pkg = share_manager || pairs == 1
                                       ? last_pkg
                                       : local_pkg;
                dd::EquivalenceChecker checker(pkg);
                res.verdict = checker.check(a, b, options);
                out_os << dd::equivalenceName(res.verdict) << "\n";
                err_os << "checked in " << sw.seconds() << " s ("
                       << pkg.activeNodes() << " live nodes)\n";
                // Inconclusive is budget-dependent; keep it out of the
                // cache so a rerun with more budget can still decide.
                if (verdict_cache &&
                    res.verdict != dd::Equivalence::Inconclusive) {
                    verdict_cache->store(
                        key, {static_cast<std::uint8_t>(res.verdict)});
                }
            } catch (const UserError &e) {
                res.errored = true;
                err_os << "error: " << e.what() << "\n";
            } catch (const Error &e) {
                res.errored = true;
                err_os << "internal failure: " << e.what() << "\n";
            }
            res.errText = err_os.str();
            res.outText = out_os.str();
            },
            "qverify-worker");

        bool any_not_equivalent = false;
        bool any_inconclusive = false;
        for (const PairOutcome &res : outcomes) {
            std::cerr << res.errText;
            std::cout << res.outText;
            if (res.verdict == dd::Equivalence::NotEquivalent)
                any_not_equivalent = true;
            else if (res.errored || !dd::isEquivalent(res.verdict))
                any_inconclusive = true;
        }
        if (observing) {
            // Per-package gauges only make sense for a single pair;
            // trace spans from all pairs are in the sink regardless.
            if (pairs == 1 && !outcomes[0].errored)
                last_pkg.publishMetrics();
            obs::installSink(nullptr);
            writeObsFiles(obs_sink, trace_path, metrics_path,
                          prom_path);
        }

        if (any_not_equivalent)
            return 1;
        return any_inconclusive ? 2 : 0;
    } catch (const UserError &e) {
        std::cerr << "error: " << e.what() << "\n";
        printHelp();
        return 2;
    } catch (const Error &e) {
        std::cerr << "internal failure: " << e.what() << "\n";
        return 2;
    }
}
