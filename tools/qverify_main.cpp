/**
 * @file
 * qverify: standalone QMDD equivalence checking between two circuit
 * files — the paper's formal-verification step as a tool of its own
 * (compare compiler outputs, hand edits, or third-party transpiles).
 *
 * usage: qverify [options] <a.{qasm,qc,real}> <b.{qasm,qc,real}>
 *
 * Exit code 0: equivalent; 1: not equivalent; 2: inconclusive/usage.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/errors.hpp"
#include "common/stopwatch.hpp"
#include "frontend/loader.hpp"
#include "obs/obs.hpp"
#include "qmdd/equivalence.hpp"

namespace {

void
printHelp()
{
    std::cout
        << "qverify - QMDD formal equivalence checking\n\n"
           "usage: qverify [options] <a> <b>\n\n"
           "options:\n"
           "  --strict           require exact equality (no global "
           "phase slack)\n"
           "  --miter            alternating-miter accumulation\n"
           "  --ancilla <list>   comma-separated wires required |0> at\n"
           "                     input and output (clean ancillas)\n"
           "  --budget <n>       node budget (0 = unlimited)\n"
           "  --no-quick-refute  skip the random-stimuli pre-check\n"
           "  --trace-json <f>   write a Chrome trace-event file\n"
           "  --metrics-json <f> write a metrics snapshot\n"
           "  --log-level <l>    quiet | info | debug | trace\n"
           "  -h, --help         this text\n";
}

/** Write observability outputs requested on the command line. */
void
writeObsFiles(qsyn::obs::Sink &sink, const std::string &trace_path,
              const std::string &metrics_path)
{
    using qsyn::UserError;
    if (!trace_path.empty()) {
        std::ofstream f(trace_path);
        if (!f)
            throw UserError("cannot write trace '" + trace_path + "'");
        f << sink.traceJson();
        std::cerr << "wrote " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
        std::ofstream f(metrics_path);
        if (!f)
            throw UserError("cannot write metrics '" + metrics_path +
                            "'");
        f << sink.metricsJson();
        std::cerr << "wrote " << metrics_path << "\n";
    }
}

std::vector<qsyn::Qubit>
parseAncillaList(const std::string &text)
{
    std::vector<qsyn::Qubit> wires;
    size_t start = 0;
    while (start <= text.size()) {
        size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        std::string token = text.substr(start, comma - start);
        if (!token.empty())
            wires.push_back(
                static_cast<qsyn::Qubit>(std::stoul(token)));
        start = comma + 1;
    }
    return wires;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsyn;
    std::vector<std::string> files;
    std::string trace_path, metrics_path;
    dd::EquivalenceOptions options;
    options.quickRefuteSamples = 4;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw UserError("missing value for " + arg);
                return argv[++i];
            };
            if (arg == "-h" || arg == "--help") {
                printHelp();
                return 0;
            } else if (arg == "--strict") {
                options.upToGlobalPhase = false;
            } else if (arg == "--miter") {
                options.useMiter = true;
            } else if (arg == "--ancilla") {
                options.ancillaWires = parseAncillaList(next());
            } else if (arg == "--budget") {
                options.nodeBudget = std::stoul(next());
            } else if (arg == "--no-quick-refute") {
                options.quickRefuteSamples = 0;
            } else if (arg == "--trace-json") {
                trace_path = next();
            } else if (arg == "--metrics-json") {
                metrics_path = next();
            } else if (arg == "--log-level") {
                std::string value = next();
                obs::LogLevel level;
                if (!obs::parseLogLevel(value, &level))
                    throw UserError("unknown log level '" + value +
                                    "' (quiet|info|debug|trace)");
                obs::setLogLevel(level);
            } else if (!arg.empty() && arg[0] == '-') {
                throw UserError("unknown option '" + arg + "'");
            } else {
                files.push_back(arg);
            }
        }
        if (files.size() != 2)
            throw UserError("expected exactly two circuit files");

        obs::Sink obs_sink;
        const bool observing =
            !trace_path.empty() || !metrics_path.empty();
        if (observing)
            obs::installSink(&obs_sink);

        Circuit a = frontend::loadCircuitFile(files[0]);
        Circuit b = frontend::loadCircuitFile(files[1]);
        std::cerr << files[0] << ": " << a.numQubits() << " qubits, "
                  << a.size() << " gates\n";
        std::cerr << files[1] << ": " << b.numQubits() << " qubits, "
                  << b.size() << " gates\n";

        Stopwatch sw;
        dd::Package pkg;
        dd::EquivalenceChecker checker(pkg);
        dd::Equivalence verdict = checker.check(a, b, options);
        std::cout << dd::equivalenceName(verdict) << "\n";
        std::cerr << "checked in " << sw.seconds() << " s ("
                  << pkg.activeNodes() << " live nodes)\n";
        if (observing) {
            pkg.publishMetrics();
            obs::installSink(nullptr);
            writeObsFiles(obs_sink, trace_path, metrics_path);
        }

        if (dd::isEquivalent(verdict))
            return 0;
        return verdict == dd::Equivalence::NotEquivalent ? 1 : 2;
    } catch (const UserError &e) {
        std::cerr << "error: " << e.what() << "\n";
        printHelp();
        return 2;
    } catch (const Error &e) {
        std::cerr << "internal failure: " << e.what() << "\n";
        return 2;
    }
}
