/**
 * @file
 * qsim: DD-based circuit simulation from the command line. Loads a
 * circuit, applies it to a computational basis state with the vector-
 * QMDD engine (scales far past dense simulation on structured
 * circuits — the 96-qubit compiled benchmarks simulate in
 * milliseconds), and prints the nonzero amplitudes or a probability
 * summary.
 *
 * usage: qsim [options] <circuit.{qasm,qc,real}>
 */

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli/options.hpp"
#include "common/errors.hpp"
#include "common/stopwatch.hpp"
#include "frontend/loader.hpp"
#include "obs/expo.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "qmdd/vector.hpp"

namespace {

void
printHelp()
{
    std::cout
        << "qsim - vector-QMDD circuit simulation\n\n"
           "usage: qsim [options] <circuit>\n\n"
           "options:\n"
           "  --input <bits>    initial basis state as a bit string\n"
           "                    (qubit 0 first; default all zeros)\n"
           "  --top <n>         print at most n amplitudes (default 16)\n"
           "  --threshold <p>   hide amplitudes with |a|^2 < p\n"
           "                    (default 1e-9)\n"
           "  --trace-json <f>  write a Chrome trace-event file\n"
           "  --metrics-json <f> write a metrics snapshot\n"
           "  --metrics-prom <f> write Prometheus text exposition\n"
           "  --crash-dump <d>  arm the crash handler; a crash leaves\n"
           "                    qsyn-crash-<pid>.json in <d>\n"
           "  --log-level <l>   quiet | info | debug | trace\n"
           "  -h, --help        this text\n";
}

/** Write observability outputs requested on the command line. */
void
writeObsFiles(qsyn::obs::Sink &sink, const std::string &trace_path,
              const std::string &metrics_path,
              const std::string &prom_path = {})
{
    using qsyn::UserError;
    if (!trace_path.empty()) {
        std::ofstream f(trace_path);
        if (!f)
            throw UserError("cannot write trace '" + trace_path + "'");
        f << sink.traceJson();
        std::cerr << "wrote " << trace_path << "\n";
    }
    if (!metrics_path.empty()) {
        std::ofstream f(metrics_path);
        if (!f)
            throw UserError("cannot write metrics '" + metrics_path +
                            "'");
        f << sink.metricsJson();
        std::cerr << "wrote " << metrics_path << "\n";
    }
    if (!prom_path.empty()) {
        std::string error;
        if (!qsyn::obs::writePrometheusFile(sink.metrics(), prom_path,
                                            &error))
            throw UserError("cannot write metrics: " + error);
        std::cerr << "wrote " << prom_path << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsyn;
    std::string path;
    std::string input_bits;
    std::string trace_path, metrics_path, prom_path, crash_dir;
    size_t top = 16;
    double threshold = 1e-9;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw UserError("missing value for " + arg);
                return argv[++i];
            };
            if (arg == "-h" || arg == "--help") {
                printHelp();
                return 0;
            } else if (arg == "--input") {
                input_bits = next();
            } else if (arg == "--top") {
                top = cli::parseCountValue(arg, next());
            } else if (arg == "--threshold") {
                threshold = cli::parseDoubleValue(arg, next());
            } else if (arg == "--trace-json") {
                trace_path = next();
            } else if (arg == "--metrics-json") {
                metrics_path = next();
            } else if (arg == "--metrics-prom") {
                prom_path = next();
            } else if (arg == "--crash-dump") {
                crash_dir = next();
            } else if (arg == "--log-level") {
                std::string value = next();
                obs::LogLevel level;
                if (!obs::parseLogLevel(value, &level))
                    throw UserError("unknown log level '" + value +
                                    "' (quiet|info|debug|trace)");
                obs::setLogLevel(level);
            } else if (!arg.empty() && arg[0] == '-') {
                throw UserError("unknown option '" + arg + "'");
            } else if (path.empty()) {
                path = arg;
            } else {
                throw UserError("unexpected extra argument '" + arg +
                                "'");
            }
        }
        if (path.empty())
            throw UserError("no circuit file (try --help)");

        obs::flight::setRecording(true);
        if (!crash_dir.empty()) {
            obs::flight::CrashConfig crash_config;
            crash_config.dir = crash_dir;
            obs::flight::installCrashHandler(crash_config);
        }
        obs::Sink obs_sink;
        const bool observing = !trace_path.empty() ||
                               !metrics_path.empty() ||
                               !prom_path.empty();
        if (observing)
            obs::installSink(&obs_sink);
        obs::nameCurrentThread("qsim-main");

        Circuit circuit = frontend::loadCircuitFile(path);
        Qubit n = circuit.numQubits();
        std::cerr << path << ": " << n << " qubits, " << circuit.size()
                  << " gates\n";

        Stopwatch sw;
        dd::Package pkg;
        dd::VectorEngine engine(pkg);
        dd::Edge state = engine.makeBasisState(0, n);
        if (!input_bits.empty()) {
            if (input_bits.size() != n)
                throw UserError("--input needs exactly " +
                                std::to_string(n) + " bits");
            Circuit prep(n);
            for (Qubit q = 0; q < n; ++q) {
                if (input_bits[q] == '1')
                    prep.addX(q);
                else if (input_bits[q] != '0')
                    throw UserError("--input must be 0/1 bits");
            }
            state = engine.applyCircuit(prep, state);
        }
        {
            obs::Span span("qsim.simulate", "sim");
            span.arg("qubits", n);
            span.arg("gates", circuit.size());
            state = engine.applyCircuit(circuit, state);
        }
        std::cerr << "simulated in " << sw.seconds() << " s ("
                  << pkg.countNodes(state) << " state nodes)\n";
        if (observing) {
            pkg.publishMetrics();
            obs::installSink(nullptr);
            writeObsFiles(obs_sink, trace_path, metrics_path,
                          prom_path);
        }

        if (n > 24) {
            std::cout << "norm^2 = "
                      << engine.normSquared(state, static_cast<int>(n))
                      << " (register too wide to enumerate amplitudes;"
                      << " use the library API for targeted queries)\n";
            return 0;
        }

        size_t printed = 0;
        for (std::uint64_t index = 0;
             index < (std::uint64_t{1} << n) && printed < top; ++index) {
            Cplx a = engine.amplitude(state, index,
                                      static_cast<int>(n));
            double p = std::norm(a);
            if (p < threshold)
                continue;
            std::cout << "|";
            for (Qubit q = 0; q < n; ++q)
                std::cout << ((index >> (n - 1 - q)) & 1);
            std::cout << ">  " << a.real()
                      << (a.imag() >= 0 ? "+" : "") << a.imag()
                      << "i   p=" << p << "\n";
            ++printed;
        }
        return 0;
    } catch (const UserError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    } catch (const Error &e) {
        std::cerr << "internal failure: " << e.what() << "\n";
        return 2;
    }
}
