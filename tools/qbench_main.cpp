/**
 * @file
 * qbench: the benchmark regression harness. Runs a small canonical
 * suite over the performance-critical paths (QMDD construction,
 * equivalence checking, unique-table growth, compute-cache pressure,
 * end-to-end compilation, and parallel batch compilation) and emits a
 * machine-readable JSON report — by convention committed as
 * BENCH_qsyn.json at the repo root — so perf regressions show up as
 * diffs rather than anecdotes.
 *
 * Self-timed (median wall time over --reps runs) on purpose: no
 * google-benchmark dependency, so it builds in every configuration and
 * its output schema is fully under our control.
 *
 * usage: qbench [--smoke] [--reps N] [--out FILE]
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/dag.hpp"
#include "analysis/rules.hpp"
#include "cache/cache.hpp"
#include "cli/options.hpp"
#include "common/errors.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/qsyn.hpp"
#include "device/registry.hpp"
#include "ir/random_circuit.hpp"
#include "route/placement.hpp"
#include "route/router.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

using namespace qsyn;

namespace {

/** One benchmark's result row. Extra metrics are name/value pairs so
 *  each benchmark can report what matters for it (peak nodes, hit
 *  rates, speedups) without a rigid schema. */
struct BenchResult
{
    std::string name;
    double medianMs = 0.0;
    double minMs = 0.0;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    size_t reps = 0;
    std::vector<std::pair<std::string, double>> metrics;
};

Circuit
makeRandom(int qubits, int gates, std::uint64_t seed = 7,
           size_t max_controls = 2)
{
    Rng rng(seed);
    RandomCircuitOptions opts;
    opts.numQubits = static_cast<Qubit>(qubits);
    opts.numGates = static_cast<size_t>(gates);
    opts.maxControls = max_controls;
    return randomCircuit(rng, opts);
}

double
median(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    size_t n = xs.size();
    return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

/** Quantile with linear interpolation between order statistics
 *  (type-7 / numpy default). `xs` must be sorted and non-empty. */
double
quantileSorted(const std::vector<double> &xs, double q)
{
    if (xs.size() == 1)
        return xs[0];
    double pos = q * static_cast<double>(xs.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    if (lo >= xs.size() - 1)
        return xs.back();
    double frac = pos - static_cast<double>(lo);
    return xs[lo] + (xs[lo + 1] - xs[lo]) * frac;
}

/** Time `fn` (which returns the metric list of its last run) `reps`
 *  times and collect median/min wall milliseconds. */
template <typename Fn>
BenchResult
timeIt(const std::string &name, size_t reps, Fn fn)
{
    BenchResult res;
    res.name = name;
    res.reps = reps;
    std::vector<double> ms;
    ms.reserve(reps);
    for (size_t r = 0; r < reps; ++r) {
        Stopwatch sw;
        res.metrics = fn();
        ms.push_back(sw.seconds() * 1e3);
    }
    res.medianMs = median(ms);
    res.minMs = *std::min_element(ms.begin(), ms.end());
    std::sort(ms.begin(), ms.end());
    res.p50Ms = quantileSorted(ms, 0.50);
    res.p95Ms = quantileSorted(ms, 0.95);
    res.p99Ms = quantileSorted(ms, 0.99);
    return res;
}

std::vector<std::pair<std::string, double>>
ddMetrics(const dd::Package &pkg)
{
    const dd::PackageStats &s = pkg.stats();
    return {
        {"peak_nodes", static_cast<double>(s.peakNodes)},
        {"unique_hit_rate", s.uniqueHitRate()},
        {"compute_hit_rate", s.computeHitRate()},
        {"unique_rehashes", static_cast<double>(s.uniqueRehashes)},
    };
}

std::string
jsonEscapeNumber(double v)
{
    // JSON has no NaN/Inf; clamp them to 0 (can only arise from
    // degenerate hit rates on empty runs).
    if (!(v == v) || v > 1e308 || v < -1e308)
        return "0";
    std::ostringstream os;
    os.precision(6);
    os << v;
    return os.str();
}

std::string
toJson(const std::vector<BenchResult> &results)
{
    std::ostringstream os;
    os << "{\n  \"benchmarks\": {\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const BenchResult &r = results[i];
        os << "    \"" << r.name << "\": {\n"
           << "      \"median_ms\": " << jsonEscapeNumber(r.medianMs)
           << ",\n"
           << "      \"min_ms\": " << jsonEscapeNumber(r.minMs) << ",\n"
           << "      \"p50_ms\": " << jsonEscapeNumber(r.p50Ms) << ",\n"
           << "      \"p95_ms\": " << jsonEscapeNumber(r.p95Ms) << ",\n"
           << "      \"p99_ms\": " << jsonEscapeNumber(r.p99Ms) << ",\n"
           << "      \"reps\": " << r.reps;
        for (const auto &m : r.metrics)
            os << ",\n      \"" << m.first
               << "\": " << jsonEscapeNumber(m.second);
        os << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  }\n}\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    size_t reps = 7;
    bool smoke = false;
    std::string out_path;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    throw UserError("missing value for " + arg);
                return argv[++i];
            };
            if (arg == "--smoke") {
                smoke = true;
            } else if (arg == "--reps") {
                reps = cli::parseCountValue(arg, next());
                if (reps == 0)
                    throw UserError("--reps must be >= 1");
            } else if (arg == "--out") {
                out_path = next();
            } else if (arg == "-h" || arg == "--help") {
                std::cout
                    << "qbench - canonical performance suite\n\n"
                       "usage: qbench [--smoke] [--reps N] [--out F]\n\n"
                       "  --smoke    single rep, reduced sizes (CI "
                       "smoke label)\n"
                       "  --reps N   repetitions per benchmark "
                       "(default 7); the\n"
                       "             JSON records median and "
                       "p50/p95/p99\n"
                       "  --out F    write JSON here (default "
                       "stdout)\n";
                return 0;
            } else {
                throw UserError("unknown option '" + arg + "'");
            }
        }
    } catch (const UserError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }

    if (smoke)
        reps = 1;
    const int top_qubits = smoke ? 6 : 8;

    std::vector<BenchResult> results;
    auto note = [&](const BenchResult &r) {
        std::cerr << r.name << ": " << r.medianMs << " ms median ("
                  << r.reps << " reps)\n";
        results.push_back(r);
    };

    // --- QMDD circuit construction (the BM_QmddBuildCircuit suite) ---
    for (int q = 4; q <= top_qubits; q += 2) {
        Circuit c = makeRandom(q, 120);
        note(timeIt("qmdd_build_" + std::to_string(q), reps, [&]() {
            dd::Package pkg;
            pkg.buildCircuit(c);
            return ddMetrics(pkg);
        }));
    }

    // --- QMDD equivalence checking ---
    {
        Circuit a = makeRandom(6, 60, 1);
        Circuit b = a;
        b.addH(0);
        b.addH(0);
        note(timeIt("equivalence_check_6", reps, [&]() {
            dd::Package pkg;
            dd::EquivalenceChecker checker(pkg);
            dd::Equivalence v = checker.check(a, b);
            auto metrics = ddMetrics(pkg);
            metrics.emplace_back("equivalent",
                                 dd::isEquivalent(v) ? 1.0 : 0.0);
            return metrics;
        }));
    }

    // --- Unique-table growth under pressure ---
    {
        Circuit c = makeRandom(top_qubits, 200, 11, 3);
        note(timeIt("unique_table_stress", reps, [&]() {
            dd::PackageConfig cfg;
            cfg.initialUniqueCapacity = 256;
            dd::Package pkg(cfg);
            pkg.buildCircuit(c);
            auto metrics = ddMetrics(pkg);
            metrics.emplace_back(
                "final_capacity",
                static_cast<double>(pkg.uniqueCapacity()));
            return metrics;
        }));
    }

    // --- Compute-cache pressure with small 2-way caches ---
    {
        Circuit c = makeRandom(top_qubits, 160, 13, 2);
        note(timeIt("compute_cache_stress", reps, [&]() {
            dd::PackageConfig cfg;
            cfg.mulCacheSets = 256;
            cfg.addCacheSets = 256;
            cfg.ctCacheSets = 64;
            dd::Package pkg(cfg);
            pkg.buildCircuit(c);
            auto metrics = ddMetrics(pkg);
            metrics.emplace_back(
                "evictions",
                static_cast<double>(pkg.stats().mulEvictions +
                                    pkg.stats().addEvictions +
                                    pkg.stats().ctEvictions));
            return metrics;
        }));
    }

    // --- End-to-end compilation (decompose/place/route/opt/verify) ---
    {
        Device dev = makeIbmqx5();
        Circuit c(5, "ccx_chain");
        c.addCcx(0, 1, 2);
        c.addCcx(2, 3, 4);
        c.addCcx(0, 2, 4);
        note(timeIt("end_to_end_compile", reps, [&]() {
            Compiler compiler(dev);
            CompileResult r = compiler.compile(c);
            analysis::DagMetrics dm = analysis::computeDagMetrics(
                analysis::DependencyDag(r.optimized));
            return std::vector<std::pair<std::string, double>>{
                {"gates_out",
                 static_cast<double>(r.optimizedM.gates)},
                {"depth", static_cast<double>(dm.depth)},
                {"critical_gates",
                 static_cast<double>(dm.criticalGates)},
                {"verified",
                 r.verifyRan && dd::isEquivalent(r.verification) ? 1.0
                                                                 : 0.0},
            };
        }));
    }

    // --- Dependency-DAG construction (the static-analysis substrate) ---
    {
        const int gates = smoke ? 400 : 2000;
        Circuit c = makeRandom(top_qubits, gates, 17);
        note(timeIt("dag_build", reps, [&]() {
            analysis::DependencyDag dag(c);
            analysis::DagMetrics m = analysis::computeDagMetrics(dag);
            return std::vector<std::pair<std::string, double>>{
                {"gates", static_cast<double>(m.gates)},
                {"edges", static_cast<double>(m.edges)},
                {"depth", static_cast<double>(m.depth)},
                {"parallelism", m.parallelism},
            };
        }));
    }

    // --- Full lint pass: DAG + dataflow + every rule on one circuit ---
    {
        Device dev = makeIbmqx5();
        const int gates = smoke ? 200 : 800;
        Circuit c = makeRandom(5, gates, 19);
        note(timeIt("analyze_full", reps, [&]() {
            analysis::LintOptions lopts;
            lopts.device = &dev;
            analysis::Diagnostics d =
                analysis::analyzeCircuit(c, "bench", lopts);
            return std::vector<std::pair<std::string, double>>{
                {"findings", static_cast<double>(d.findings.size())},
                {"errors", static_cast<double>(
                               d.countAtLeast(analysis::Severity::Error))},
                {"depth", static_cast<double>(d.metrics.depth)},
                {"critical_gates",
                 static_cast<double>(d.metrics.criticalGates)},
            };
        }));
    }

    // --- Router race: CTR swap-back vs sabre lookahead per device ---
    {
        // Same seeded CNOT-heavy circuit, greedy-placed, routed by
        // both strategies; the JSON records SWAP counts and routed
        // depth side by side so heuristic regressions show as diffs.
        const size_t gates = smoke ? 60 : 120;
        for (const char *name :
             {"ibmqx5", "ibmq_16", "line_16", "grid_16"}) {
            Device dev = builtinDevice(name);
            RandomCircuitOptions ropts;
            ropts.numQubits = std::min<Qubit>(dev.numQubits(), 16);
            ropts.numGates = gates;
            ropts.cnotFraction = 0.7;
            ropts.seed = 0xace5;
            Circuit c = randomCircuit(ropts);
            Circuit placed = route::applyPlacement(
                c, route::greedyPlacement(c, dev), dev);
            note(timeIt("router_race_" + std::string(name), reps,
                        [&]() {
                auto depth_of = [](const Circuit &routed) {
                    return static_cast<double>(
                        analysis::computeDagMetrics(
                            analysis::DependencyDag(routed))
                            .depth);
                };
                route::RouteStats ctr_stats;
                Circuit by_ctr = route::routeCircuit(
                    placed, dev, &ctr_stats, {});
                route::RouteOptions sopts;
                sopts.router = route::RouterKind::Sabre;
                route::RouteStats sabre_stats;
                Circuit by_sabre = route::routeCircuit(
                    placed, dev, &sabre_stats, sopts);
                double ctr_swaps =
                    static_cast<double>(ctr_stats.swapsInserted);
                double sabre_swaps =
                    static_cast<double>(sabre_stats.swapsInserted);
                return std::vector<std::pair<std::string, double>>{
                    {"ctr_swaps", ctr_swaps},
                    {"sabre_swaps", sabre_swaps},
                    {"ctr_depth", depth_of(by_ctr)},
                    {"sabre_depth", depth_of(by_sabre)},
                    {"swap_reduction_pct",
                     ctr_swaps > 0.0
                         ? 100.0 * (ctr_swaps - sabre_swaps) /
                               ctr_swaps
                         : 0.0},
                };
            }));
        }
    }

    // --- Parallel batch compilation at 1/2/4 workers ---
    {
        Device dev = makeIbmqx5();
        std::vector<Circuit> circuits;
        const int n = smoke ? 4 : 8;
        for (int i = 0; i < n; ++i)
            circuits.push_back(makeRandom(5, 40, 100 + i));
        for (size_t jobs : {size_t(1), size_t(2), size_t(4)}) {
            BatchCompiler batch(dev);
            note(timeIt(
                "batch_compile_jobs" + std::to_string(jobs), reps,
                [&]() {
                    batch.compileCircuits(circuits, jobs);
                    const BatchSummary &s = batch.summary();
                    return std::vector<std::pair<std::string, double>>{
                        {"circuits",
                         static_cast<double>(s.circuits)},
                        {"failed", static_cast<double>(s.failed)},
                        {"workers", static_cast<double>(s.jobs)},
                        {"speedup", s.wallSeconds > 0.0
                                        ? s.sumSeconds / s.wallSeconds
                                        : 0.0},
                    };
                }));
        }
    }

    // --- Shared vs private QMDD manager across batch workers ---
    {
        Device dev = makeIbmqx5();
        // A similar-circuit corpus (common prefix, divergent tails):
        // the workload where one shared concurrent node store should
        // beat N private rebuilds of the same universe.
        std::vector<Circuit> circuits;
        const int n = smoke ? 4 : 12;
        Circuit base = makeRandom(5, 30, 900);
        for (int i = 0; i < n; ++i) {
            Circuit c = base;
            Circuit tail = makeRandom(5, 10, 910 + static_cast<std::uint64_t>(i));
            for (const Gate &g : tail)
                c.add(g);
            circuits.push_back(c);
        }
        // Private packages coexist (one per in-flight item), so their
        // peaks add; the shared package has one global high-water,
        // which every item reports — the max is the batch's peak.
        auto aggregatePeak = [](const std::vector<BatchItem> &items,
                                bool shared) {
            double agg = 0.0;
            for (const BatchItem &it : items) {
                double p =
                    static_cast<double>(it.result.ddStats.peakNodes);
                agg = shared ? std::max(agg, p) : agg + p;
            }
            return agg;
        };
        for (size_t jobs :
             {size_t(1), size_t(2), size_t(4), size_t(8)}) {
            double peak_private = 0.0;
            BatchCompiler priv(dev);
            priv.setShareManager(false);
            BenchResult pr = timeIt("private_baseline", reps, [&]() {
                std::vector<BatchItem> items =
                    priv.compileCircuits(circuits, jobs);
                peak_private = aggregatePeak(items, false);
                return std::vector<std::pair<std::string, double>>{};
            });

            double peak_shared = 0.0, throughput = 0.0;
            BatchCompiler shared(dev);
            BenchResult sr = timeIt(
                "batch_shared_vs_private_jobs" + std::to_string(jobs),
                reps, [&]() {
                    std::vector<BatchItem> items =
                        shared.compileCircuits(circuits, jobs);
                    peak_shared = aggregatePeak(items, true);
                    const BatchSummary &s = shared.summary();
                    throughput = s.wallSeconds > 0.0
                                     ? s.sumSeconds / s.wallSeconds
                                     : 0.0;
                    return std::vector<
                        std::pair<std::string, double>>{};
                });
            sr.metrics = {
                {"workers", static_cast<double>(jobs)},
                {"circuits", static_cast<double>(n)},
                {"speedup", throughput},
                {"private_median_ms", pr.medianMs},
                {"speedup_vs_private",
                 sr.medianMs > 0.0 ? pr.medianMs / sr.medianMs : 0.0},
                {"peak_nodes_shared", peak_shared},
                {"peak_nodes_private", peak_private},
            };
            note(sr);
        }
    }

    // --- Compile cache: cold batch vs fully warm recompilation ---
    {
        Device dev = makeIbmqx5();
        std::vector<Circuit> circuits;
        const int n = smoke ? 4 : 8;
        for (int i = 0; i < n; ++i)
            circuits.push_back(makeRandom(5, 40, 200 + i));
        const size_t jobs = 2;

        BenchResult cold = timeIt("cache_batch_cold", reps, [&]() {
            // Fresh cache per rep: every compile misses and stores.
            cache::CompileCache cold_cache;
            BatchCompiler batch(dev);
            batch.setCache(&cold_cache);
            batch.compileCircuits(circuits, jobs);
            cache::CacheStats s = cold_cache.stats();
            return std::vector<std::pair<std::string, double>>{
                {"misses", static_cast<double>(s.misses)},
                {"hits", static_cast<double>(s.hits)},
            };
        });
        note(cold);

        cache::CompileCache warm_cache;
        {
            BatchCompiler prime(dev);
            prime.setCache(&warm_cache);
            prime.compileCircuits(circuits, jobs); // untimed prime pass
        }
        BenchResult warm = timeIt("cache_batch_warm", reps, [&]() {
            BatchCompiler batch(dev);
            batch.setCache(&warm_cache);
            batch.compileCircuits(circuits, jobs);
            cache::CacheStats s = warm_cache.stats();
            return std::vector<std::pair<std::string, double>>{
                {"hits", static_cast<double>(s.hits)},
                {"misses", static_cast<double>(s.misses)},
            };
        });
        warm.metrics.emplace_back(
            "warm_speedup",
            warm.medianMs > 0.0 ? cold.medianMs / warm.medianMs : 0.0);
        note(warm);
    }

    // --- Compile service: per-request qsync spawn vs warm daemon ---
    {
        // The qsynd value proposition in one number: request latency
        // against a long-lived server with warm caches versus paying
        // process startup + cold caches on every request. Cold spawns
        // the real qsync binary (sibling of this executable) once per
        // request; warm drives an in-process service::Server over its
        // Unix socket — the same protocol path qload measures against
        // a real daemon.
        namespace fs = std::filesystem;
        const char *qasm_src =
            "OPENQASM 2.0;\n"
            "include \"qelib1.inc\";\n"
            "qreg q[4];\n"
            "h q[0];\n"
            "cx q[0],q[1];\n"
            "ccx q[0],q[1],q[2];\n"
            "t q[3];\n"
            "cx q[2],q[3];\n"
            "h q[3];\n";
        const size_t n_cold = smoke ? 3 : 12;
        const size_t n_warm = smoke ? 10 : 40;

        auto summarize = [&](const std::string &name,
                             std::vector<double> ms) {
            BenchResult r;
            r.name = name;
            r.reps = ms.size();
            r.medianMs = median(ms);
            std::sort(ms.begin(), ms.end());
            r.minMs = ms.front();
            r.p50Ms = quantileSorted(ms, 0.50);
            r.p95Ms = quantileSorted(ms, 0.95);
            r.p99Ms = quantileSorted(ms, 0.99);
            return r;
        };

        std::error_code ec;
        fs::path tool_dir =
            fs::read_symlink("/proc/self/exe", ec).parent_path();
        fs::path tmp = fs::temp_directory_path();
        fs::path qasm_path =
            tmp / ("qbench-service-" + std::to_string(getpid()) +
                   ".qasm");
        {
            std::ofstream f(qasm_path);
            f << qasm_src;
        }
        std::string cold_cmd =
            "'" + (tool_dir / "qsync").string() + "' '" +
            qasm_path.string() +
            "' --device ibmqx5 --quiet -o /dev/null >/dev/null 2>&1";

        std::vector<double> cold_ms;
        size_t cold_failed = 0;
        for (size_t i = 0; i < n_cold; ++i) {
            Stopwatch sw;
            int rc = std::system(cold_cmd.c_str());
            cold_ms.push_back(sw.seconds() * 1e3);
            if (rc != 0)
                ++cold_failed;
        }
        BenchResult cold = summarize("service_cold_spawn", cold_ms);
        cold.metrics = {
            {"requests", static_cast<double>(n_cold)},
            {"failed", static_cast<double>(cold_failed)},
        };
        note(cold);

        service::ServerConfig scfg;
        scfg.socketPath =
            (tmp / ("qbench-service-" + std::to_string(getpid()) +
                    ".sock"))
                .string();
        scfg.workers = 2;
        service::Server server(scfg);
        server.start();

        std::vector<double> warm_ms;
        size_t warm_failed = 0;
        {
            service::Client client =
                service::Client::connectUnix(scfg.socketPath);
            service::Json req = service::Json::makeObject();
            req.object["op"] = service::Json::makeString("compile");
            req.object["source"] =
                service::Json::makeString(qasm_src);
            req.object["device"] =
                service::Json::makeString("ibmqx5");
            req.object["name"] = service::Json::makeString("qbench");
            client.call(req); // untimed prime: fill the warm cache
            for (size_t i = 0; i < n_warm; ++i) {
                Stopwatch sw;
                service::Json resp = client.call(req);
                warm_ms.push_back(sw.seconds() * 1e3);
                if (!resp.boolOr("ok", false))
                    ++warm_failed;
            }
        }
        server.stop();
        fs::remove(qasm_path, ec);

        BenchResult warm = summarize("service_warm_daemon", warm_ms);
        warm.metrics = {
            {"requests", static_cast<double>(n_warm)},
            {"failed", static_cast<double>(warm_failed)},
            {"cold_spawn_p50_ms", cold.p50Ms},
            {"warm_speedup_p50",
             warm.p50Ms > 0.0 ? cold.p50Ms / warm.p50Ms : 0.0},
        };
        note(warm);
    }

    std::string json = toJson(results);
    if (out_path.empty()) {
        std::cout << json;
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "error: cannot write '" << out_path << "'\n";
            return 2;
        }
        out << json;
        std::cerr << "wrote " << out_path << "\n";
    }
    return 0;
}
