/**
 * @file
 * qload: load generator for a running qsynd daemon. N concurrent
 * clients each fire sequential compile requests at the socket for a
 * fixed count (or time budget), and the per-request latencies are
 * folded into p50/p95/p99 percentiles. `--json` prints them with the
 * service_warm_* keys qbench's baseline tracking consumes.
 */

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/options.hpp"
#include "common/errors.hpp"
#include "common/stopwatch.hpp"
#include "service/client.hpp"

namespace {

const char *kHelp =
    "qload - load generator for a qsynd daemon\n"
    "\n"
    "usage: qload --socket <path> [options]\n"
    "\n"
    "options:\n"
    "      --socket <path>     qsynd Unix socket (required)\n"
    "      --clients <n>       concurrent connections (default 4)\n"
    "      --requests <n>      requests per client (default 25)\n"
    "      --input <file>      circuit to compile (default: a small\n"
    "                          built-in QASM program)\n"
    "      --device <name>     target device (default ibmqx4)\n"
    "      --no-verify        ask the daemon to skip verification\n"
    "      --json              print a JSON summary with\n"
    "                          service_warm_p50/p95/p99 keys\n"
    "  -h, --help              this text\n";

/** Small but non-trivial: wide enough to route, cheap enough to spam. */
const char *kDefaultQasm =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[4];\n"
    "h q[0];\n"
    "cx q[0],q[1];\n"
    "cx q[1],q[2];\n"
    "t q[2];\n"
    "cx q[2],q[3];\n"
    "h q[3];\n"
    "cx q[0],q[3];\n";

double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    // Type-7 (linear interpolation), matching qbench's estimator.
    double pos = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace qsyn;
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        std::string socketPath;
        std::string inputPath;
        std::string deviceName = "ibmqx4";
        size_t clients = 4;
        size_t requestsPerClient = 25;
        bool verify = true;
        bool jsonOut = false;

        size_t i = 0;
        auto next = [&](const std::string &flag) -> std::string {
            if (i + 1 >= args.size())
                throw UserError("missing value for " + flag);
            return args[++i];
        };
        for (; i < args.size(); ++i) {
            const std::string &arg = args[i];
            if (arg == "-h" || arg == "--help") {
                std::cout << kHelp;
                return 0;
            } else if (arg == "--socket") {
                socketPath = next(arg);
            } else if (arg == "--clients") {
                clients = cli::parseCountValue(arg, next(arg));
                if (clients == 0)
                    throw UserError("--clients must be >= 1");
            } else if (arg == "--requests") {
                requestsPerClient =
                    cli::parseCountValue(arg, next(arg));
                if (requestsPerClient == 0)
                    throw UserError("--requests must be >= 1");
            } else if (arg == "--input") {
                inputPath = next(arg);
            } else if (arg == "--device") {
                deviceName = next(arg);
            } else if (arg == "--no-verify") {
                verify = false;
            } else if (arg == "--json") {
                jsonOut = true;
            } else {
                throw UserError("unknown option '" + arg +
                                "' (try --help)");
            }
        }
        if (socketPath.empty())
            throw UserError("--socket is required (try --help)");

        std::string source = kDefaultQasm;
        if (!inputPath.empty()) {
            std::ifstream in(inputPath, std::ios::binary);
            if (!in)
                throw UserError("cannot open '" + inputPath + "'");
            std::ostringstream buffer;
            buffer << in.rdbuf();
            source = buffer.str();
        }

        std::mutex mu;
        std::vector<double> latenciesMs;
        std::atomic<size_t> failures{0};
        std::atomic<size_t> overloaded{0};
        std::vector<std::string> errors;

        Stopwatch wall;
        std::vector<std::thread> pool;
        pool.reserve(clients);
        for (size_t c = 0; c < clients; ++c) {
            pool.emplace_back([&, c] {
                try {
                    service::Client client =
                        service::Client::connectUnix(socketPath);
                    for (size_t r = 0; r < requestsPerClient; ++r) {
                        using service::Json;
                        Json request = Json::makeObject();
                        request.object["op"] =
                            Json::makeString("compile");
                        request.object["source"] =
                            Json::makeString(source);
                        request.object["device"] =
                            Json::makeString(deviceName);
                        request.object["verify"] = Json::makeString(
                            verify ? "full" : "off");
                        request.object["id"] = Json::makeNumber(
                            static_cast<double>(
                                c * requestsPerClient + r));
                        Stopwatch sw;
                        Json response = client.call(request);
                        double ms = sw.millis();
                        if (response.boolOr("ok", false)) {
                            std::lock_guard<std::mutex> lock(mu);
                            latenciesMs.push_back(ms);
                        } else {
                            const Json *e = response.find("error");
                            std::string code =
                                e != nullptr
                                    ? e->stringOr("code", "internal")
                                    : "internal";
                            if (code == "overloaded") {
                                ++overloaded;
                            } else {
                                ++failures;
                                std::lock_guard<std::mutex> lock(mu);
                                if (errors.size() < 5)
                                    errors.push_back(code);
                            }
                        }
                    }
                } catch (const Error &e) {
                    ++failures;
                    std::lock_guard<std::mutex> lock(mu);
                    if (errors.size() < 5)
                        errors.push_back(e.what());
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
        double wallSeconds = wall.seconds();

        std::sort(latenciesMs.begin(), latenciesMs.end());
        double p50 = quantileSorted(latenciesMs, 0.50);
        double p95 = quantileSorted(latenciesMs, 0.95);
        double p99 = quantileSorted(latenciesMs, 0.99);
        double throughput =
            wallSeconds > 0.0
                ? static_cast<double>(latenciesMs.size()) / wallSeconds
                : 0.0;

        if (jsonOut) {
            std::ostringstream os;
            os.precision(6);
            os << "{\n"
               << "  \"clients\": " << clients << ",\n"
               << "  \"requests_ok\": " << latenciesMs.size() << ",\n"
               << "  \"requests_failed\": " << failures.load() << ",\n"
               << "  \"overloaded\": " << overloaded.load() << ",\n"
               << "  \"wall_seconds\": " << wallSeconds << ",\n"
               << "  \"throughput_rps\": " << throughput << ",\n"
               << "  \"service_warm_p50\": " << p50 << ",\n"
               << "  \"service_warm_p95\": " << p95 << ",\n"
               << "  \"service_warm_p99\": " << p99 << "\n"
               << "}\n";
            std::cout << os.str();
        } else {
            std::cerr << "qload: " << latenciesMs.size() << " ok, "
                      << failures.load() << " failed, "
                      << overloaded.load() << " overloaded over "
                      << wallSeconds << " s (" << throughput
                      << " req/s)\n"
                      << "latency ms: p50 " << p50 << ", p95 " << p95
                      << ", p99 " << p99 << "\n";
            for (const std::string &e : errors)
                std::cerr << "  error: " << e << "\n";
        }
        return failures.load() == 0 ? 0 : 1;
    } catch (const UserError &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    } catch (const Error &e) {
        std::cerr << "internal failure: " << e.what() << "\n";
        return 2;
    }
}
