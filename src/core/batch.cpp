#include "core/batch.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "common/deadline.hpp"
#include "common/errors.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "esop/cascade.hpp"
#include "frontend/loader.hpp"
#include "frontend/pla_parser.hpp"
#include "obs/expo.hpp"
#include "obs/obs.hpp"

namespace qsyn {

size_t
resolveJobs(size_t jobs)
{
    if (jobs != 0)
        return jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void
parallelFor(size_t n, size_t jobs, const std::function<void(size_t)> &fn,
            const char *threadNamePrefix)
{
    jobs = std::min(resolveJobs(jobs), n);
    if (jobs <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<size_t> next{0};
    auto worker = [&](size_t t) {
        if (threadNamePrefix != nullptr && t != 0)
            obs::nameCurrentThread(std::string(threadNamePrefix) + "-" +
                                   std::to_string(t));
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            fn(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs - 1);
    for (size_t t = 1; t < jobs; ++t)
        pool.emplace_back(worker, t);
    worker(0); // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();
}

BatchCompiler::BatchCompiler(Device device, CompileOptions options)
    : device_(std::move(device)), options_(std::move(options))
{
}

void
BatchCompiler::setStatsInterval(double seconds, std::string promPath)
{
    statsIntervalSeconds_ = seconds;
    statsPromPath_ = std::move(promPath);
}

std::vector<BatchItem>
BatchCompiler::compileFiles(const std::vector<std::string> &paths,
                            size_t jobs)
{
    return run(
        paths.size(), jobs,
        [&](size_t i) -> Circuit {
            const std::string &path = paths[i];
            if (endsWith(toLower(path), ".pla")) {
                // Classical path of Fig. 2: ESOP front end.
                return esop::synthesizePla(frontend::loadPlaFile(path));
            }
            return frontend::loadCircuitFile(path);
        },
        [&](size_t i) { return paths[i]; });
}

std::vector<BatchItem>
BatchCompiler::compileCircuits(const std::vector<Circuit> &circuits,
                               size_t jobs)
{
    return run(
        circuits.size(), jobs,
        [&](size_t i) { return circuits[i]; },
        [](size_t) { return std::string(); });
}

std::vector<BatchItem>
BatchCompiler::run(size_t n, size_t jobs,
                   const std::function<Circuit(size_t)> &load,
                   const std::function<std::string(size_t)> &name)
{
    obs::Span span("batch.compile", obs::kTimed);
    span.arg("circuits", n);
    size_t workers = std::min(resolveJobs(jobs), std::max<size_t>(n, 1));
    span.arg("jobs", workers);

    std::vector<BatchItem> items(n);

    // Shared-manager mode: every worker verifies against this one
    // concurrent package, so a batch of similar circuits builds each
    // distinct node once instead of once per worker.
    std::unique_ptr<dd::Package> shared_pkg;
    if (share_manager_ && options_.verify != VerifyMode::Off)
        shared_pkg = std::make_unique<dd::Package>();

    // Periodic stats emitter (--stats-interval): progress to the log,
    // and a fresh Prometheus page when a path is configured. Runs only
    // for the duration of this batch; woken early on completion.
    std::atomic<size_t> completed{0};
    std::mutex emitterMu;
    std::condition_variable emitterCv;
    bool emitterStop = false;
    std::thread emitter;
    if (statsIntervalSeconds_ > 0.0) {
        emitter = std::thread([&] {
            obs::nameCurrentThread("batch-stats");
            auto interval = std::chrono::duration<double>(
                statsIntervalSeconds_);
            std::unique_lock<std::mutex> lock(emitterMu);
            while (!emitterCv.wait_for(lock, interval,
                                       [&] { return emitterStop; })) {
                QSYN_OBS_LOG(Info, "batch")
                    << "progress "
                    << completed.load(std::memory_order_relaxed) << "/"
                    << n;
                if (!statsPromPath_.empty()) {
                    if (obs::Sink *s = obs::sink())
                        obs::writePrometheusFile(s->metrics(),
                                                 statsPromPath_);
                }
            }
        });
    }

    parallelFor(
        n, workers,
        [&](size_t i) {
        BatchItem &item = items[i];
        item.inputPath = name(i);
        Stopwatch sw;
        try {
            // Each item gets its own wall-time budget, measured from
            // the moment a worker picks it up (queue wait excluded).
            deadline::Scope item_deadline(jobDeadlineSeconds_);
            // One Compiler per item; only the verification package is
            // (optionally) shared across workers.
            Circuit input = load(i);
            Compiler compiler(device_, options_);
            if (shared_pkg != nullptr)
                compiler.setVerifyPackage(shared_pkg.get());
            if (cache_ != nullptr) {
                std::shared_ptr<const CachedCompile> cached =
                    cache_->getOrCompute(input, device_, options_, [&] {
                        CachedCompile artifact;
                        artifact.result = compiler.compile(input);
                        artifact.qasm =
                            compiler.toQasm(artifact.result);
                        return artifact;
                    });
                item.result = cached->result;
                item.qasm = cached->qasm;
            } else {
                item.result = compiler.compile(input);
                item.qasm = compiler.toQasm(item.result);
            }
            item.ok = true;
        } catch (const DeadlineError &e) {
            item.error = e.what();
            item.timedOut = true;
        } catch (const UserError &e) {
            item.error = e.what();
        } catch (const Error &e) {
            item.error = e.what();
            item.internalError = true;
        }
        item.seconds = sw.seconds();
        completed.fetch_add(1, std::memory_order_relaxed);
        QSYN_OBS_LOG(Debug, "batch")
            << (item.inputPath.empty() ? std::string("<circuit>")
                                       : item.inputPath)
            << ": " << (item.ok ? "ok" : item.error) << " ("
            << item.seconds << " s)";
        },
        "batch-worker");

    if (emitter.joinable()) {
        {
            std::lock_guard<std::mutex> lock(emitterMu);
            emitterStop = true;
        }
        emitterCv.notify_all();
        emitter.join();
    }

    summary_ = BatchSummary{};
    summary_.circuits = n;
    summary_.jobs = workers;
    mergedDd_ = dd::PackageStats{};
    totalGatesOut_ = 0;
    for (const BatchItem &item : items) {
        summary_.sumSeconds += item.seconds;
        if (!item.ok) {
            ++summary_.failed;
            continue;
        }
        ++summary_.succeeded;
        summary_.resources.accumulate(item.result.resources);
        totalGatesOut_ += item.result.optimizedM.gates;
        const dd::PackageStats &s = item.result.ddStats;
        mergedDd_.uniqueLookups += s.uniqueLookups;
        mergedDd_.uniqueHits += s.uniqueHits;
        mergedDd_.uniqueRehashes += s.uniqueRehashes;
        mergedDd_.multiplies += s.multiplies;
        mergedDd_.additions += s.additions;
        mergedDd_.computeLookups += s.computeLookups;
        mergedDd_.computeHits += s.computeHits;
        mergedDd_.mulEvictions += s.mulEvictions;
        mergedDd_.addEvictions += s.addEvictions;
        mergedDd_.ctEvictions += s.ctEvictions;
        mergedDd_.gcRuns += s.gcRuns;
        mergedDd_.peakNodes = std::max(mergedDd_.peakNodes, s.peakNodes);
    }
    summary_.wallSeconds = span.seconds();
    span.arg("failed", summary_.failed);
    QSYN_OBS_LOG(Info, "batch")
        << summary_.succeeded << "/" << n << " circuits on " << workers
        << " worker(s): " << summary_.wallSeconds << " s wall, "
        << summary_.sumSeconds << " s summed";
    return items;
}

void
BatchCompiler::publishMetrics(const char *prefix) const
{
    obs::Sink *s = obs::sink();
    if (s == nullptr)
        return;
    obs::MetricsRegistry &m = s->metrics();
    std::string p(prefix);
    m.setGauge(p + ".circuits", static_cast<double>(summary_.circuits));
    m.setGauge(p + ".succeeded",
               static_cast<double>(summary_.succeeded));
    m.setGauge(p + ".failed", static_cast<double>(summary_.failed));
    m.setGauge(p + ".jobs", static_cast<double>(summary_.jobs));
    m.setGauge(p + ".share_manager", share_manager_ ? 1.0 : 0.0);
    m.setGauge(p + ".wall_seconds", summary_.wallSeconds);
    m.setGauge(p + ".sum_seconds", summary_.sumSeconds);
    m.setGauge(p + ".speedup",
               summary_.wallSeconds > 0.0
                   ? summary_.sumSeconds / summary_.wallSeconds
                   : 0.0);
    m.setGauge(p + ".gates_out",
               static_cast<double>(totalGatesOut_));
    m.setGauge(p + ".user_cpu_seconds",
               summary_.resources.userCpuSeconds);
    m.setGauge(p + ".sys_cpu_seconds", summary_.resources.sysCpuSeconds);
    m.setGauge(p + ".peak_rss_kb",
               static_cast<double>(summary_.resources.peakRssKb));
    m.setGauge(p + ".qmdd_arena_bytes",
               static_cast<double>(summary_.resources.qmddArenaBytes));
    std::string q = p + ".qmdd";
    m.setGauge(q + ".unique_lookups",
               static_cast<double>(mergedDd_.uniqueLookups));
    m.setGauge(q + ".unique_hits",
               static_cast<double>(mergedDd_.uniqueHits));
    m.setGauge(q + ".unique_hit_rate", mergedDd_.uniqueHitRate());
    m.setGauge(q + ".compute_lookups",
               static_cast<double>(mergedDd_.computeLookups));
    m.setGauge(q + ".compute_hits",
               static_cast<double>(mergedDd_.computeHits));
    m.setGauge(q + ".compute_hit_rate", mergedDd_.computeHitRate());
    m.setGauge(q + ".multiplies",
               static_cast<double>(mergedDd_.multiplies));
    m.setGauge(q + ".additions",
               static_cast<double>(mergedDd_.additions));
    m.setGauge(q + ".gc_runs", static_cast<double>(mergedDd_.gcRuns));
    m.setGauge(q + ".peak_nodes",
               static_cast<double>(mergedDd_.peakNodes));
}

} // namespace qsyn
