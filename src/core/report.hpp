/**
 * @file
 * Machine-readable compile reports: serialize a CompileResult as JSON
 * so downstream tooling (dashboards, regression trackers) can consume
 * the compiler's metrics without parsing its tables.
 */

#pragma once

#include <string>

#include "analysis/diagnostics.hpp"
#include "core/compiler.hpp"

namespace qsyn {

/** Report serialization knobs. */
struct ReportOptions
{
    /** When set, embed this static-analysis report (DAG metrics plus
     *  lint findings for the optimized circuit) as an "analysis"
     *  object. Not owned; must outlive the serialization call. Safe
     *  for deterministic reports: the analysis is a pure function of
     *  the compiled circuit. */
    const analysis::Diagnostics *analysis = nullptr;

    /** Emit the "seconds" timing object. The cache-correctness oracle
     *  turns this off: timings legitimately differ between a cached
     *  fetch and a cold recompile, everything else must not. */
    bool includeSeconds = true;
    /** Emit the "qmdd" verification-package counters. The compile
     *  service turns this off: against the daemon's warm shared
     *  package, table hit counts and the global peak-nodes high-water
     *  depend on what other requests did, while everything else in
     *  the report is a pure function of (circuit, device, options). */
    bool includeQmddStats = true;

    /** The fully reproducible form: only fields that are a pure
     *  function of the compile inputs. `qsync --report-deterministic`
     *  and every qsynd response use this, which is what makes remote
     *  and local reports byte-comparable. */
    static ReportOptions
    deterministic()
    {
        ReportOptions o;
        o.includeSeconds = false;
        o.includeQmddStats = false;
        return o;
    }
};

/** Serialize a compile result (metrics, routing stats, timings,
 *  verification verdict) as a JSON object. */
std::string compileReportJson(const CompileResult &result,
                              const Device &device,
                              const ReportOptions &options = {});

} // namespace qsyn
