/**
 * @file
 * Machine-readable compile reports: serialize a CompileResult as JSON
 * so downstream tooling (dashboards, regression trackers) can consume
 * the compiler's metrics without parsing its tables.
 */

#pragma once

#include <string>

#include "core/compiler.hpp"

namespace qsyn {

/** Serialize a compile result (metrics, routing stats, timings,
 *  verification verdict) as a JSON object. */
std::string compileReportJson(const CompileResult &result,
                              const Device &device);

} // namespace qsyn
