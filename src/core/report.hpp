/**
 * @file
 * Machine-readable compile reports: serialize a CompileResult as JSON
 * so downstream tooling (dashboards, regression trackers) can consume
 * the compiler's metrics without parsing its tables.
 */

#pragma once

#include <string>

#include "core/compiler.hpp"

namespace qsyn {

/** Report serialization knobs. */
struct ReportOptions
{
    /** Emit the "seconds" timing object. The cache-correctness oracle
     *  turns this off: timings legitimately differ between a cached
     *  fetch and a cold recompile, everything else must not. */
    bool includeSeconds = true;
};

/** Serialize a compile result (metrics, routing stats, timings,
 *  verification verdict) as a JSON object. */
std::string compileReportJson(const CompileResult &result,
                              const Device &device,
                              const ReportOptions &options = {});

} // namespace qsyn
