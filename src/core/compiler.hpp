/**
 * @file
 * The end-to-end quantum logic synthesis and compilation tool of the
 * paper's Fig. 2: technology-independent circuit in, formally verified
 * technology-dependent QASM out.
 *
 * Pipeline: decompose (Barenco MCX networks + 15-gate Toffoli) ->
 * place -> CTR route (direction fixes + shortest-SWAP-path reroutes) ->
 * cost-driven local optimization -> QMDD equivalence check against the
 * input.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "decompose/pass.hpp"
#include "device/device.hpp"
#include "ir/circuit.hpp"
#include "obs/rusage.hpp"
#include "opt/pipeline.hpp"
#include "qmdd/equivalence.hpp"
#include "route/ctr.hpp"
#include "route/placement.hpp"

namespace qsyn {

// From core/compile_cache.hpp (which includes this header).
struct CachedCompile;
class CompileCacheBase;

/** Verification behavior of the compiler. */
enum class VerifyMode
{
    Off,    ///< skip formal verification
    Full,   ///< QMDD check with the configured node budget
    Miter   ///< alternating-miter variant (no-ancilla circuits only)
};

/** Everything configurable about one compilation. */
struct CompileOptions
{
    decompose::McxStrategy mcxStrategy = decompose::McxStrategy::Auto;
    route::PlacementStrategy placement =
        route::PlacementStrategy::Identity;
    route::RouteOptions routing;

    bool optimize = true;
    opt::OptimizerOptions optimizer;
    /**
     * Also optimize the technology-independent intermediate form
     * before placement/routing (the paper's abstract: "optimization
     * procedures are applied in both the technologically-independent
     * intermediate form and the technologically-dependent final
     * result"). Uses the same pass set without device constraints.
     */
    bool optimizeTechIndependent = true;

    VerifyMode verify = VerifyMode::Full;
    /** Live-node cap for the QMDD check; exceeding it yields an
     *  Inconclusive verdict rather than unbounded memory use. */
    size_t verifyNodeBudget = 4u << 20;
    bool verifyUpToGlobalPhase = true;
};

/** T-count / gate volume / Eqn. 2 cost triple, as printed in the
 *  paper's tables. */
struct StageMetrics
{
    size_t tCount = 0;
    size_t gates = 0;
    double cost = 0.0;
    /** Critical-path length of the commutation-aware dependency DAG
     *  (see analysis/dag.hpp); 0 for an empty circuit. */
    size_t depth = 0;
};

/** Compute a StageMetrics under a cost model. */
StageMetrics measure(const Circuit &circuit, const opt::CostModel &model);

/** Full record of one compilation. */
struct CompileResult
{
    /** The parsed technology-independent input. */
    Circuit input{0};
    /** Primitive-level (1q + CNOT) form, before placement/routing —
     *  the "mapped to the simulator" technology-independent circuit. */
    Circuit decomposed{0};
    /** Routed onto the device, unoptimized (the tables' "unoptimized
     *  mapping"). */
    Circuit mapped{0};
    /** Final optimized technology-dependent circuit. */
    Circuit optimized{0};

    /** Logical -> physical map used. */
    std::vector<Qubit> placement;
    /** Physical wires that must be |0> at entry (clean ancillas). */
    std::vector<Qubit> ancillas;

    StageMetrics techIndependent; ///< metrics of `decomposed`
    StageMetrics unoptimized;     ///< metrics of `mapped`
    StageMetrics optimizedM;      ///< metrics of `optimized`

    route::RouteStats routeStats;
    opt::OptimizeReport optReport;

    /** QMDD package counters from the verification stage (zeros when
     *  verification was skipped): table sizes and hit rates. */
    dd::PackageStats ddStats;
    /** Live QMDD nodes when verification finished. */
    size_t ddLiveNodes = 0;

    dd::Equivalence verification = dd::Equivalence::Inconclusive;
    bool verifyRan = false;

    double decomposeSeconds = 0.0;
    double placeSeconds = 0.0;
    double routeSeconds = 0.0;
    double optimizeSeconds = 0.0;
    double verifySeconds = 0.0;
    double totalSeconds = 0.0;

    /** Resources this compile consumed (wall / user / sys CPU, peak
     *  RSS delta, QMDD allocator high-water). Always populated —
     *  resource accounting is not gated on the obs sink. */
    obs::ResourceUsage resources;

    /** True when verification ran and confirmed equivalence. */
    bool
    verified() const
    {
        return verifyRan && dd::isEquivalent(verification);
    }

    /**
     * The specification the compiled output must match: the input
     * circuit remapped through the placement onto a register of
     * `device_qubits` wires, with `ancillas` required |0>. This is the
     * exact reference the compiler verified against, exposed so
     * external oracles (qsyn::check, qfuzz) recheck the same claim.
     */
    Circuit
    referenceOnDevice(Qubit device_qubits) const
    {
        return input.remapped(placement, device_qubits);
    }

    /** Percent cost decrease achieved by optimization (Table 4/6/8). */
    double
    percentCostDecrease() const
    {
        if (unoptimized.cost <= 0.0)
            return 0.0;
        return 100.0 * (unoptimized.cost - optimizedM.cost) /
               unoptimized.cost;
    }
};

/** The compiler, bound to one target device. */
class Compiler
{
  public:
    explicit Compiler(Device device, CompileOptions options = {});

    const Device &device() const { return device_; }
    const CompileOptions &options() const { return options_; }

    /**
     * Compile a technology-independent circuit for the device. Throws
     * MappingError when the circuit cannot be realized (too wide,
     * disconnected coupling, ...).
     */
    CompileResult compile(const Circuit &input) const;

    /** Serialize a result's final circuit as OpenQASM 2.0. */
    std::string toQasm(const CompileResult &result) const;

    /**
     * compile() through a compile cache (see core/compile_cache.hpp):
     * returns the memoized artifact when the (input, device, options)
     * fingerprint hits, compiles and caches otherwise. A null cache
     * degrades to a plain compile. The returned artifact is shared
     * with the cache — treat it as immutable.
     */
    std::shared_ptr<const CachedCompile>
    compileCached(const Circuit &input, CompileCacheBase *cache) const;

    /**
     * Verify against an externally owned QMDD package instead of a
     * fresh per-compile one. The package may be shared by many
     * compilers on many threads at once (dd::Package is concurrent);
     * BatchCompiler uses this so similar circuits in one batch dedupe
     * their node universes. The result's ddStats then cover only this
     * compile's own table traffic (per-thread attribution), except
     * peakNodes, which reports the shared package's global high-water.
     * Deliberately NOT part of CompileOptions: where the package lives
     * cannot change the output, so cache fingerprints are unaffected.
     * Null (the default) restores the private per-compile package. The
     * package is not owned and must outlive every compile().
     */
    void setVerifyPackage(dd::Package *pkg) { verify_package_ = pkg; }
    dd::Package *verifyPackage() const { return verify_package_; }

  private:
    Device device_;
    CompileOptions options_;
    dd::Package *verify_package_ = nullptr;
};

} // namespace qsyn
