#include "core/report.hpp"

#include <sstream>

#include "device/fidelity.hpp"

namespace qsyn {

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

void
emitMetrics(std::ostringstream &os, const char *key,
            const StageMetrics &m)
{
    os << "\"" << key << "\": {\"t_count\": " << m.tCount
       << ", \"gates\": " << m.gates << ", \"cost\": " << m.cost << "}";
}

} // namespace

std::string
compileReportJson(const CompileResult &result, const Device &device)
{
    std::ostringstream os;
    os.precision(12);
    os << "{\n";
    os << "  \"circuit\": \"" << jsonEscape(result.input.name())
       << "\",\n";
    os << "  \"device\": \"" << jsonEscape(device.name()) << "\",\n";
    os << "  \"device_qubits\": " << device.numQubits() << ",\n";
    os << "  \"coupling_complexity\": " << device.couplingComplexity()
       << ",\n";
    os << "  ";
    emitMetrics(os, "tech_independent", result.techIndependent);
    os << ",\n  ";
    emitMetrics(os, "unoptimized", result.unoptimized);
    os << ",\n  ";
    emitMetrics(os, "optimized", result.optimizedM);
    os << ",\n";
    os << "  \"percent_cost_decrease\": "
       << result.percentCostDecrease() << ",\n";
    os << "  \"routing\": {\"native\": " << result.routeStats.nativeCnots
       << ", \"reversed\": " << result.routeStats.reversedCnots
       << ", \"rerouted\": " << result.routeStats.reroutedCnots
       << ", \"swaps\": " << result.routeStats.swapsInserted << "},\n";
    os << "  \"ancillas\": [";
    for (size_t i = 0; i < result.ancillas.size(); ++i)
        os << (i ? ", " : "") << result.ancillas[i];
    os << "],\n";
    if (device.calibration() != nullptr) {
        os << "  \"success_probability\": "
           << successProbability(result.optimized, device) << ",\n";
    }
    os << "  \"verification\": \""
       << (result.verifyRan ? dd::equivalenceName(result.verification)
                            : "skipped")
       << "\",\n";
    os << "  \"seconds\": {\"decompose\": " << result.decomposeSeconds
       << ", \"route\": " << result.routeSeconds
       << ", \"optimize\": " << result.optimizeSeconds
       << ", \"verify\": " << result.verifySeconds
       << ", \"total\": " << result.totalSeconds << "}\n";
    os << "}\n";
    return os.str();
}

} // namespace qsyn
