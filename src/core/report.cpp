#include "core/report.hpp"

#include <sstream>

#include "device/fidelity.hpp"
#include "obs/obs.hpp"

namespace qsyn {

namespace {

/** Shorthand: report strings go through the shared escaper so device
 *  names and file paths with quotes/backslashes stay valid JSON. */
std::string
esc(const std::string &s)
{
    return obs::jsonEscape(s);
}

void
emitMetrics(std::ostringstream &os, const char *key,
            const StageMetrics &m)
{
    os << "\"" << key << "\": {\"t_count\": " << m.tCount
       << ", \"gates\": " << m.gates << ", \"cost\": " << m.cost
       << ", \"depth\": " << m.depth << "}";
}

} // namespace

std::string
compileReportJson(const CompileResult &result, const Device &device,
                  const ReportOptions &options)
{
    std::ostringstream os;
    os.precision(12);
    os << "{\n";
    os << "  \"circuit\": \"" << esc(result.input.name()) << "\",\n";
    os << "  \"device\": \"" << esc(device.name()) << "\",\n";
    os << "  \"device_qubits\": " << device.numQubits() << ",\n";
    os << "  \"coupling_complexity\": " << device.couplingComplexity()
       << ",\n";
    os << "  ";
    emitMetrics(os, "tech_independent", result.techIndependent);
    os << ",\n  ";
    emitMetrics(os, "unoptimized", result.unoptimized);
    os << ",\n  ";
    emitMetrics(os, "optimized", result.optimizedM);
    os << ",\n";
    os << "  \"percent_cost_decrease\": "
       << result.percentCostDecrease() << ",\n";
    os << "  \"routing\": {\"native\": " << result.routeStats.nativeCnots
       << ", \"reversed\": " << result.routeStats.reversedCnots
       << ", \"rerouted\": " << result.routeStats.reroutedCnots
       << ", \"swaps\": " << result.routeStats.swapsInserted
       << ", \"h_inserted\": " << result.routeStats.hInserted << "},\n";
    os << "  \"optimizer_passes\": [";
    for (size_t i = 0; i < result.optReport.passes.size(); ++i) {
        const opt::PassReport &p = result.optReport.passes[i];
        os << (i ? ", " : "") << "\n    {\"name\": \"" << esc(p.name)
           << "\", \"invocations\": " << p.invocations
           << ", \"changed_rounds\": " << p.changedRounds
           << ", \"gates_removed\": " << p.gatesRemoved
           << ", \"cost_delta\": " << p.costDelta << "}";
    }
    os << (result.optReport.passes.empty() ? "" : "\n  ") << "],\n";
    os << "  \"ancillas\": [";
    for (size_t i = 0; i < result.ancillas.size(); ++i)
        os << (i ? ", " : "") << result.ancillas[i];
    os << "],\n";
    if (device.calibration() != nullptr) {
        os << "  \"success_probability\": "
           << successProbability(result.optimized, device) << ",\n";
    }
    os << "  \"verification\": \""
       << (result.verifyRan ? dd::equivalenceName(result.verification)
                            : "skipped")
       << "\"";
    if (options.analysis != nullptr) {
        const analysis::Diagnostics &a = *options.analysis;
        const analysis::DagMetrics &m = a.metrics;
        os << ",\n  \"analysis\": {\"dag\": {\"gates\": " << m.gates
           << ", \"edges\": " << m.edges << ", \"depth\": " << m.depth
           << ", \"critical_gates\": " << m.criticalGates
           << ", \"max_layer_width\": " << m.maxLayerWidth
           << ", \"parallelism\": " << m.parallelism << "}, "
           << "\"findings\": [";
        for (size_t i = 0; i < a.findings.size(); ++i) {
            const analysis::Finding &f = a.findings[i];
            os << (i ? ", " : "") << "{\"rule\": \"" << esc(f.ruleId)
               << "\", \"severity\": \""
               << analysis::severityName(f.severity)
               << "\", \"message\": \"" << esc(f.message) << "\"";
            if (f.gateIndex != analysis::kNoGate)
                os << ", \"gate\": " << f.gateIndex;
            os << "}";
        }
        os << "], \"errors\": "
           << a.countAtLeast(analysis::Severity::Error)
           << ", \"warnings\": "
           << (a.countAtLeast(analysis::Severity::Warning) -
               a.countAtLeast(analysis::Severity::Error))
           << "}";
    }
    if (options.includeQmddStats) {
        os << ",\n  \"qmdd\": {\"live_nodes\": " << result.ddLiveNodes
           << ", \"peak_nodes\": " << result.ddStats.peakNodes
           << ", \"unique_lookups\": " << result.ddStats.uniqueLookups
           << ", \"unique_hits\": " << result.ddStats.uniqueHits
           << ", \"unique_hit_rate\": " << result.ddStats.uniqueHitRate()
           << ", \"compute_lookups\": " << result.ddStats.computeLookups
           << ", \"compute_hits\": " << result.ddStats.computeHits
           << ", \"compute_hit_rate\": "
           << result.ddStats.computeHitRate()
           << ", \"gc_runs\": " << result.ddStats.gcRuns << "}";
    }
    if (options.includeSeconds) {
        os << ",\n  \"seconds\": {\"decompose\": "
           << result.decomposeSeconds
           << ", \"place\": " << result.placeSeconds
           << ", \"route\": " << result.routeSeconds
           << ", \"optimize\": " << result.optimizeSeconds
           << ", \"verify\": " << result.verifySeconds
           << ", \"total\": " << result.totalSeconds << "}";
        // Per-compile resource accounting (obs::ResourceUsage). Gated
        // with the timings: both are run-dependent, and golden-output
        // tests rely on reports without them being reproducible.
        const obs::ResourceUsage &r = result.resources;
        os << ",\n  \"resources\": {\"wall_seconds\": " << r.wallSeconds
           << ", \"user_cpu_seconds\": " << r.userCpuSeconds
           << ", \"sys_cpu_seconds\": " << r.sysCpuSeconds
           << ", \"peak_rss_delta_kb\": " << r.peakRssDeltaKb
           << ", \"peak_rss_kb\": " << r.peakRssKb
           << ", \"qmdd_peak_nodes\": " << r.qmddPeakNodes
           << ", \"qmdd_arena_bytes\": " << r.qmddArenaBytes
           << ", \"valid\": " << (r.valid ? "true" : "false") << "}";
    }
    os << "\n}\n";
    return os.str();
}

} // namespace qsyn
