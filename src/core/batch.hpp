/**
 * @file
 * Parallel batch compilation: compile many independent circuits
 * concurrently on a worker pool.
 *
 * The unit of parallelism is one whole compile: each worker owns its
 * own Compiler and workers claim items from a shared queue. By default
 * every worker verifies against ONE shared dd::Package (the package is
 * concurrent: sharded unique table, per-thread compute caches,
 * safe-point GC — see qmdd/package.hpp), so similar circuits in a
 * batch share their node universes instead of rebuilding them N times;
 * setShareManager(false) restores a private package per item. Results
 * are stored by input index, so output order — and therefore every
 * byte the CLI emits — is identical no matter how many workers ran or
 * how they interleaved. Surfaced as `--jobs N` and
 * `--share-manager/--no-share-manager` on qsync and qverify.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/compile_cache.hpp"
#include "core/compiler.hpp"

namespace qsyn {

/**
 * Run fn(0), ..., fn(n-1) across up to `jobs` worker threads. Indices
 * are claimed from a shared atomic counter, so callers must make fn
 * safe to run concurrently for distinct indices (write only to
 * index-owned slots). jobs <= 1 runs inline on the calling thread —
 * the sequential and parallel paths execute the same code. jobs == 0
 * means "one per hardware thread". fn must not throw.
 *
 * When `threadNamePrefix` is non-null, each *spawned* worker names
 * itself `<prefix>-<t>` via obs::nameCurrentThread (trace thread_name
 * metadata + crash-dump span stacks); the calling thread keeps its
 * existing name (e.g. `qsync-main`).
 */
void parallelFor(size_t n, size_t jobs,
                 const std::function<void(size_t)> &fn,
                 const char *threadNamePrefix = nullptr);

/** Number of workers `jobs` resolves to (0 -> hardware threads). */
size_t resolveJobs(size_t jobs);

/** Outcome of one circuit in a batch. */
struct BatchItem
{
    /** Source path (empty for in-memory circuits). */
    std::string inputPath;
    bool ok = false;
    /** Error text when !ok; user errors (bad file, unmappable circuit)
     *  are distinguished from internal failures. */
    std::string error;
    bool internalError = false;
    /** The per-job deadline (setJobDeadline) cancelled this item. */
    bool timedOut = false;
    CompileResult result;
    /** Final circuit serialized as OpenQASM (empty on failure). */
    std::string qasm;
    /** Wall time this item took on its worker. */
    double seconds = 0.0;
};

/** Aggregates over one batch run. */
struct BatchSummary
{
    size_t circuits = 0;
    size_t succeeded = 0;
    size_t failed = 0;
    /** Workers actually used. */
    size_t jobs = 0;
    /** End-to-end wall time of the batch. */
    double wallSeconds = 0.0;
    /** Sum of per-item wall times (== sequential-equivalent time;
     *  wallSeconds / sumSeconds shows the parallel speedup). */
    double sumSeconds = 0.0;
    /** Aggregated per-compile resource usage of the successful items:
     *  CPU times add, RSS / QMDD peaks take the max. */
    obs::ResourceUsage resources;
};

/** Compiles batches of independent circuits for one device. */
class BatchCompiler
{
  public:
    explicit BatchCompiler(Device device, CompileOptions options = {});

    /**
     * Load and compile each file with up to `jobs` workers. `.pla`
     * inputs go through the ESOP front end, everything else through
     * the circuit loader. A failing item records its error and leaves
     * the rest of the batch running; results come back in input order.
     */
    std::vector<BatchItem>
    compileFiles(const std::vector<std::string> &paths, size_t jobs);

    /** Same, for already-parsed circuits (benchmarks, library use). */
    std::vector<BatchItem>
    compileCircuits(const std::vector<Circuit> &circuits, size_t jobs);

    /** Summary of the most recent run. */
    const BatchSummary &summary() const { return summary_; }

    /**
     * Attach a compile cache (not owned; must outlive the batch runs).
     * Workers then fetch memoized results by content fingerprint, and
     * concurrent workers compiling identical inputs single-flight:
     * one computes, the rest share. Null detaches.
     */
    void setCache(CompileCacheBase *cache) { cache_ = cache; }
    CompileCacheBase *cache() const { return cache_; }

    /**
     * Share one QMDD package across all workers' verifications
     * (default ON). Similar circuits dedupe their node universes —
     * lower aggregate peak_nodes, warmer unique table — at the cost of
     * per-shard locking. OFF gives each item a private package (the
     * old fully-isolated behavior). Either way the compiled QASM is
     * byte-identical: the pipeline never consults the package, and
     * verification only yields a verdict.
     */
    void setShareManager(bool on) { share_manager_ = on; }
    bool shareManager() const { return share_manager_; }

    /**
     * Cancel any single item that runs longer than `seconds` of wall
     * time (<= 0 disables, the default). Cancellation is cooperative:
     * the compile pipeline polls at the same per-gate safe point as
     * GC (see common/deadline.hpp), so a runaway item unwinds cleanly
     * and records `timedOut` while the rest of the batch keeps
     * running. This is the mechanism behind the qsynd service's
     * per-request wall-time limit and `qsync --deadline`.
     */
    void setJobDeadline(double seconds) { jobDeadlineSeconds_ = seconds; }
    double jobDeadline() const { return jobDeadlineSeconds_; }

    /**
     * Emit periodic stats while a batch runs (`--stats-interval
     * <sec>`): every `seconds` a background thread logs progress
     * (Info level) and, when `promPath` is non-empty, rewrites that
     * file with the current Prometheus exposition — a poor man's
     * /metrics endpoint a scraper can tail until qsynd mounts a real
     * one. `seconds <= 0` disables (the default).
     */
    void setStatsInterval(double seconds, std::string promPath = {});

    /**
     * Publish the last run's merged per-circuit metrics as
     * `<prefix>.*` gauges on the installed obs sink: batch shape
     * (circuits/jobs/failures), wall vs summed seconds, and the summed
     * QMDD verification counters under `<prefix>.qmdd.*` (peak_nodes
     * is a max, not a sum). No-op when observability is off.
     */
    void publishMetrics(const char *prefix = "batch") const;

    const Device &device() const { return device_; }
    const CompileOptions &options() const { return options_; }

  private:
    std::vector<BatchItem>
    run(size_t n, size_t jobs,
        const std::function<Circuit(size_t)> &load,
        const std::function<std::string(size_t)> &name);

    Device device_;
    CompileOptions options_;
    CompileCacheBase *cache_ = nullptr;
    bool share_manager_ = true;
    double jobDeadlineSeconds_ = 0.0;
    double statsIntervalSeconds_ = 0.0;
    std::string statsPromPath_;
    BatchSummary summary_;
    /** Element-wise sum (peakNodes: max) of per-item dd stats. */
    dd::PackageStats mergedDd_;
    size_t totalGatesOut_ = 0;
};

} // namespace qsyn
