/**
 * @file
 * Umbrella header: include this to get the whole qsyn public API.
 *
 * Quickstart:
 *
 *     #include "core/qsyn.hpp"
 *
 *     qsyn::Device device = qsyn::makeIbmqx4();
 *     qsyn::Compiler compiler(device);
 *     qsyn::Circuit circuit =
 *         qsyn::frontend::loadCircuitFile("algorithm.qasm");
 *     qsyn::CompileResult result = compiler.compile(circuit);
 *     std::cout << compiler.toQasm(result);
 */

#pragma once

#include "common/errors.hpp"
#include "common/types.hpp"
#include "core/batch.hpp"
#include "core/compiler.hpp"
#include "decompose/pass.hpp"
#include "device/device.hpp"
#include "device/loader.hpp"
#include "device/registry.hpp"
#include "esop/cascade.hpp"
#include "esop/reed_muller.hpp"
#include "frontend/loader.hpp"
#include "frontend/qasm_parser.hpp"
#include "frontend/qasm_writer.hpp"
#include "ir/circuit.hpp"
#include "opt/pipeline.hpp"
#include "qmdd/equivalence.hpp"
#include "route/ctr.hpp"
#include "sim/statevector.hpp"
