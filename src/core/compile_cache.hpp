/**
 * @file
 * Abstract compile-cache interface the core layer programs against.
 *
 * The concrete implementation (content-addressed fingerprinting, the
 * on-disk store, single-flight dedup) lives in qsyn::cache, which
 * depends on the core types; defining only this interface here keeps
 * the dependency one-way: core knows *that* results can be memoized,
 * the cache library knows *how*.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/compiler.hpp"

namespace qsyn {

/** A memoized compilation: the full result plus its canonical QASM
 *  serialization (produced by Compiler::toQasm at compute time). */
struct CachedCompile
{
    CompileResult result;
    std::string qasm;
};

/**
 * Interface of a compile memoizer. getOrCompute returns the cached
 * artifact for (input, device, options) or invokes `compute` exactly
 * once per key — even under concurrent callers — and caches what it
 * returns. Exceptions from `compute` propagate to every caller waiting
 * on that key and nothing is cached.
 */
class CompileCacheBase
{
  public:
    virtual ~CompileCacheBase() = default;

    virtual std::shared_ptr<const CachedCompile>
    getOrCompute(const Circuit &input, const Device &device,
                 const CompileOptions &options,
                 const std::function<CachedCompile()> &compute) = 0;
};

} // namespace qsyn
