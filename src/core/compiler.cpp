#include "core/compiler.hpp"

#include <algorithm>

#include "common/errors.hpp"
#include "common/stopwatch.hpp"
#include "frontend/qasm_writer.hpp"

namespace qsyn {

StageMetrics
measure(const Circuit &circuit, const opt::CostModel &model)
{
    CircuitStats stats = computeStats(circuit);
    StageMetrics m;
    m.tCount = stats.tCount;
    m.gates = stats.volume;
    m.cost = model.cost(stats);
    return m;
}

Compiler::Compiler(Device device, CompileOptions options)
    : device_(std::move(device)), options_(std::move(options))
{
}

CompileResult
Compiler::compile(const Circuit &input) const
{
    Stopwatch total;
    CompileResult result;
    result.input = input;
    opt::CostModel model(options_.optimizer.weights);

    if (input.numQubits() > device_.numQubits()) {
        throw MappingError("circuit '" + input.name() + "' needs " +
                           std::to_string(input.numQubits()) +
                           " qubits but " + device_.name() +
                           " has only " +
                           std::to_string(device_.numQubits()));
    }

    // 1. Decompose to the primitive library, growing clean ancillas
    //    only up to the device size.
    Stopwatch sw;
    decompose::DecomposeOptions dopts;
    dopts.mcxStrategy = options_.mcxStrategy;
    dopts.lowerToffoli = true;
    dopts.maxQubits = device_.numQubits();
    decompose::DecomposeResult lowered =
        decompose::decomposeToPrimitives(input, dopts);
    result.decomposed = lowered.circuit;
    if (options_.optimize && options_.optimizeTechIndependent) {
        // Technology-independent optimization (no coupling-map
        // legality constraints yet).
        opt::OptimizerOptions ti_opts = options_.optimizer;
        ti_opts.device = nullptr;
        result.decomposed =
            opt::optimizeCircuit(result.decomposed, ti_opts);
    }
    result.techIndependent = measure(result.decomposed, model);
    result.decomposeSeconds = sw.seconds();

    // 2. Place logical wires on physical qubits.
    result.placement = route::computePlacement(
        result.decomposed, device_, options_.placement);

    // 3. Route with CTR.
    sw.reset();
    Circuit placed = route::applyPlacement(result.decomposed,
                                           result.placement, device_);
    result.mapped = route::routeCircuit(placed, device_,
                                        &result.routeStats,
                                        options_.routing);
    result.unoptimized = measure(result.mapped, model);
    result.routeSeconds = sw.seconds();

    for (Qubit a : lowered.ancillas)
        result.ancillas.push_back(result.placement[a]);
    std::sort(result.ancillas.begin(), result.ancillas.end());

    // 4. Optimize under the device's legality constraints.
    sw.reset();
    if (options_.optimize) {
        opt::OptimizerOptions oopts = options_.optimizer;
        oopts.device = &device_;
        result.optimized = opt::optimizeCircuit(result.mapped, oopts,
                                                &result.optReport);
    } else {
        result.optimized = result.mapped;
        result.optReport.initialCost = result.unoptimized.cost;
        result.optReport.finalCost = result.unoptimized.cost;
    }
    result.optimizedM = measure(result.optimized, model);
    result.optimizeSeconds = sw.seconds();

    // 5. Formal verification: the mapped output against the input,
    //    remapped through the placement, ancillas projected onto |0>.
    sw.reset();
    if (options_.verify != VerifyMode::Off && input.isUnitary()) {
        Circuit reference =
            input.remapped(result.placement, device_.numQubits());
        dd::Package package;
        dd::EquivalenceChecker checker(package);
        dd::EquivalenceOptions eopts;
        eopts.upToGlobalPhase = options_.verifyUpToGlobalPhase;
        eopts.ancillaWires = result.ancillas;
        eopts.nodeBudget = options_.verifyNodeBudget;
        eopts.useMiter = options_.verify == VerifyMode::Miter &&
                         result.ancillas.empty();
        result.verification =
            checker.check(reference, result.optimized, eopts);
        result.verifyRan = true;
        if (result.verification == dd::Equivalence::NotEquivalent) {
            throw VerificationError(
                "compiled circuit for '" + input.name() +
                "' is NOT equivalent to its specification");
        }
    }
    result.verifySeconds = sw.seconds();
    result.totalSeconds = total.seconds();
    return result;
}

std::string
Compiler::toQasm(const CompileResult &result) const
{
    frontend::QasmWriterOptions wopts;
    wopts.headerComment = "qsyn: mapped to " + device_.name();
    return frontend::writeQasm(result.optimized, wopts);
}

} // namespace qsyn
