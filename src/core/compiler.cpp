#include "core/compiler.hpp"

#include <algorithm>

#include "analysis/dag.hpp"
#include "common/deadline.hpp"
#include "common/errors.hpp"
#include "core/compile_cache.hpp"
#include "frontend/qasm_writer.hpp"
#include "obs/obs.hpp"

namespace qsyn {

namespace {

/** Attribution of a shared package's counters to one compile: the
 *  difference of two threadStats() snapshots taken around its
 *  verification. All counters are monotonic; peakNodes is a global
 *  high-water mark (not additive), so the later snapshot's value is
 *  reported as-is. */
dd::PackageStats
diffStats(const dd::PackageStats &after, const dd::PackageStats &before)
{
    dd::PackageStats d;
    d.uniqueLookups = after.uniqueLookups - before.uniqueLookups;
    d.uniqueHits = after.uniqueHits - before.uniqueHits;
    d.uniqueRehashes = after.uniqueRehashes - before.uniqueRehashes;
    d.multiplies = after.multiplies - before.multiplies;
    d.additions = after.additions - before.additions;
    d.computeLookups = after.computeLookups - before.computeLookups;
    d.computeHits = after.computeHits - before.computeHits;
    d.mulEvictions = after.mulEvictions - before.mulEvictions;
    d.addEvictions = after.addEvictions - before.addEvictions;
    d.ctEvictions = after.ctEvictions - before.ctEvictions;
    d.gcRuns = after.gcRuns - before.gcRuns;
    d.peakNodes = after.peakNodes;
    return d;
}

} // namespace

StageMetrics
measure(const Circuit &circuit, const opt::CostModel &model)
{
    CircuitStats stats = computeStats(circuit);
    StageMetrics m;
    m.tCount = stats.tCount;
    m.gates = stats.volume;
    m.cost = model.cost(stats);
    m.depth = analysis::circuitDepth(circuit);
    return m;
}

Compiler::Compiler(Device device, CompileOptions options)
    : device_(std::move(device)), options_(std::move(options))
{
}

CompileResult
Compiler::compile(const Circuit &input) const
{
    obs::Span total("compile", obs::kTimed);
    total.arg("circuit", input.name());
    total.arg("device", device_.name());
    total.arg("qubits", input.numQubits());
    total.arg("gates", input.size());
    obs::ResourceProbe probe;
    CompileResult result;
    result.input = input;
    opt::CostModel model(options_.optimizer.weights);

    if (input.numQubits() > device_.numQubits()) {
        throw MappingError("circuit '" + input.name() + "' needs " +
                           std::to_string(input.numQubits()) +
                           " qubits but " + device_.name() +
                           " has only " +
                           std::to_string(device_.numQubits()));
    }

    // 1. Decompose to the primitive library, growing clean ancillas
    //    only up to the device size.
    {
        obs::Span span("compile.decompose", obs::kTimed);
        decompose::DecomposeOptions dopts;
        dopts.mcxStrategy = options_.mcxStrategy;
        dopts.lowerToffoli = true;
        dopts.maxQubits = device_.numQubits();
        decompose::DecomposeResult lowered =
            decompose::decomposeToPrimitives(input, dopts);
        result.decomposed = lowered.circuit;
        if (options_.optimize && options_.optimizeTechIndependent) {
            // Technology-independent optimization (no coupling-map
            // legality constraints yet).
            obs::Span ti_span("compile.ti_optimize");
            opt::OptimizerOptions ti_opts = options_.optimizer;
            ti_opts.device = nullptr;
            result.decomposed =
                opt::optimizeCircuit(result.decomposed, ti_opts);
        }
        result.techIndependent = measure(result.decomposed, model);
        span.arg("gates_out", result.decomposed.size());
        for (Qubit a : lowered.ancillas)
            result.ancillas.push_back(a); // placed below
        result.decomposeSeconds = span.seconds();
    }

    // 2. Place logical wires on physical qubits. Stage boundaries are
    //    coarse cancellation polls; the fine-grained per-gate poll
    //    lives at the QMDD safe point (verification dominates
    //    runaway compiles) and in the optimizer's round loop.
    deadline::check("placement");
    {
        obs::Span span("compile.place", obs::kTimed);
        result.placement = route::computePlacement(
            result.decomposed, device_, options_.placement);
        result.placeSeconds = span.seconds();
    }

    // 3. Route with CTR.
    deadline::check("routing");
    {
        obs::Span span("compile.route", obs::kTimed);
        Circuit placed = route::applyPlacement(
            result.decomposed, result.placement, device_);
        result.mapped = route::routeCircuit(placed, device_,
                                            &result.routeStats,
                                            options_.routing);
        result.unoptimized = measure(result.mapped, model);
        span.arg("swaps", result.routeStats.swapsInserted);
        span.arg("rerouted", result.routeStats.reroutedCnots);
        result.routeSeconds = span.seconds();
    }

    for (Qubit &a : result.ancillas)
        a = result.placement[a];
    std::sort(result.ancillas.begin(), result.ancillas.end());

    // 4. Optimize under the device's legality constraints.
    deadline::check("optimization");
    {
        obs::Span span("compile.optimize", obs::kTimed);
        if (options_.optimize) {
            opt::OptimizerOptions oopts = options_.optimizer;
            oopts.device = &device_;
            result.optimized = opt::optimizeCircuit(
                result.mapped, oopts, &result.optReport);
        } else {
            result.optimized = result.mapped;
            result.optReport.initialCost = result.unoptimized.cost;
            result.optReport.finalCost = result.unoptimized.cost;
        }
        result.optimizedM = measure(result.optimized, model);
        span.arg("rounds", result.optReport.rounds);
        span.arg("cost_decrease_pct",
                 result.optReport.percentCostDecrease());
        result.optimizeSeconds = span.seconds();
    }

    // 5. Formal verification: the mapped output against the input,
    //    remapped through the placement, ancillas projected onto |0>.
    size_t ddArenaBytes = 0;
    deadline::check("verification");
    {
        obs::Span span("compile.verify", obs::kTimed);
        if (options_.verify != VerifyMode::Off && input.isUnitary()) {
            Circuit reference =
                result.referenceOnDevice(device_.numQubits());
            // Shared-manager mode: verify against the externally owned
            // (concurrent) package; otherwise a private one per compile.
            std::unique_ptr<dd::Package> owned;
            dd::Package *package = verify_package_;
            const bool shared = package != nullptr;
            if (!shared) {
                owned = std::make_unique<dd::Package>();
                package = owned.get();
            }
            dd::EquivalenceChecker checker(*package);
            dd::EquivalenceOptions eopts;
            eopts.upToGlobalPhase = options_.verifyUpToGlobalPhase;
            eopts.ancillaWires = result.ancillas;
            eopts.nodeBudget = options_.verifyNodeBudget;
            eopts.useMiter = options_.verify == VerifyMode::Miter &&
                             result.ancillas.empty();
            dd::PackageStats before;
            if (shared)
                before = package->threadStats();
            result.verification =
                checker.check(reference, result.optimized, eopts);
            result.verifyRan = true;
            result.ddStats =
                shared ? diffStats(package->threadStats(), before)
                       : package->stats();
            result.ddLiveNodes = package->activeNodes();
            ddArenaBytes = package->arenaBytes();
            package->publishMetrics();
            span.arg("verdict",
                     dd::equivalenceName(result.verification));
            span.arg("live_nodes", result.ddLiveNodes);
            if (result.verification == dd::Equivalence::NotEquivalent) {
                throw VerificationError(
                    "compiled circuit for '" + input.name() +
                    "' is NOT equivalent to its specification");
            }
        }
        result.verifySeconds = span.seconds();
    }
    result.totalSeconds = total.seconds();
    result.resources = probe.sample();
    result.resources.qmddPeakNodes = result.ddStats.peakNodes;
    result.resources.qmddArenaBytes = ddArenaBytes;
    if (obs::Sink *s = obs::sink()) {
        // Latency histograms follow the `*.latency_us` microsecond
        // rule so sub-second stages spread across the power-of-two
        // buckets instead of collapsing into bucket 0.
        obs::MetricsRegistry &m = s->metrics();
        obs::observeResourceUsage(m, "compile", result.resources);
        m.observe("compile.decompose.latency_us",
                  result.decomposeSeconds * 1e6);
        m.observe("compile.place.latency_us", result.placeSeconds * 1e6);
        m.observe("compile.route.latency_us", result.routeSeconds * 1e6);
        m.observe("compile.optimize.latency_us",
                  result.optimizeSeconds * 1e6);
        m.observe("compile.verify.latency_us",
                  result.verifySeconds * 1e6);
    }
    QSYN_OBS_LOG(Info, "compile")
        << "'" << input.name() << "' -> " << device_.name() << ": "
        << result.optimizedM.gates << " gates, cost "
        << result.optimizedM.cost << " ("
        << result.percentCostDecrease() << "% decrease), "
        << result.totalSeconds << " s";
    return result;
}

std::string
Compiler::toQasm(const CompileResult &result) const
{
    frontend::QasmWriterOptions wopts;
    wopts.headerComment = "qsyn: mapped to " + device_.name();
    return frontend::writeQasm(result.optimized, wopts);
}

std::shared_ptr<const CachedCompile>
Compiler::compileCached(const Circuit &input,
                        CompileCacheBase *cache) const
{
    auto compute = [&] {
        CachedCompile artifact;
        artifact.result = compile(input);
        artifact.qasm = toQasm(artifact.result);
        return artifact;
    };
    if (cache == nullptr)
        return std::make_shared<const CachedCompile>(compute());
    return cache->getOrCompute(input, device_, options_, compute);
}

} // namespace qsyn
