/**
 * @file
 * Routing as a strategy: shared stats/options types, the `Router`
 * interface, and the dispatching `routeCircuit` entry point.
 *
 * Two backends exist today:
 *
 *  - `ctr` (route/ctr.hpp): the paper's Connectivity Tree Reroute —
 *    walk gates in program order, pay a SWAP chain (and swap-back)
 *    per distant CNOT. Reference semantics; also provides the
 *    meet-in-middle and dynamic-layout variants.
 *  - `sabre` (route/sabre.hpp): SABRE-style lookahead routing over
 *    the commutation-aware dependency DAG — SWAPs are scored against
 *    the frontier of ready CNOTs plus a decayed lookahead window and
 *    persist in a dynamic layout; an epilogue restores the identity
 *    layout so the unitary matches `ctr` exactly.
 *
 * Both interpret circuit wires as physical qubits (apply a placement
 * first) and emit only native-direction CNOTs.
 */

#pragma once

#include <string>

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qsyn::route {

/** Which routing strategy legalizes CNOTs for the device. */
enum class RouterKind {
    Ctr,   ///< the paper's Connectivity Tree Reroute (reference)
    Sabre, ///< lookahead router over the dependency DAG
};

/** Stable lowercase name ("ctr" / "sabre") for CLI, cache keys, and
 *  wire protocol. */
const char *routerName(RouterKind kind);

/** Parse a router name; returns false (leaving `out` untouched) on an
 *  unknown name. */
bool parseRouterName(const std::string &text, RouterKind *out);

/** Counters describing what routing had to do. */
struct RouteStats
{
    size_t nativeCnots = 0;   ///< already legal
    /** CNOTs realized against the coupling direction with four
     *  Hadamards (Fig. 6) — whether the pair was adjacent from the
     *  start or only after a SWAP chain moved it together. */
    size_t reversedCnots = 0;
    size_t reroutedCnots = 0; ///< needed a SWAP path (CTR / forced)
    size_t swapsInserted = 0; ///< total SWAPs emitted (incl. restore)
    /** Hadamards inserted for direction fixes (4 per reversed CNOT). */
    size_t hInserted = 0;
    /** SWAPs chosen by the sabre lookahead heuristic (subset of
     *  swapsInserted; 0 under ctr). */
    size_t lookaheadSwaps = 0;
    /** SWAPs spent restoring the identity layout in the epilogue
     *  (subset of swapsInserted; 0 under swap-back ctr). */
    size_t restoreSwaps = 0;
};

/** Routing options. */
struct RouteOptions
{
    /** Strategy selection (`--router=ctr|sabre`). */
    RouterKind router = RouterKind::Ctr;

    /**
     * Ablation variant of ctr: instead of walking the control all the
     * way to the target's neighborhood (the paper's CTR), walk control
     * and target toward each other and meet in the middle. Same
     * legality, different SWAP counts.
     */
    bool meetInMiddle = false;

    /**
     * Fidelity-aware path selection: when the device carries
     * calibration data, SWAP paths (ctr) and lookahead distances
     * (sabre) minimize accumulated two-qubit error (-log(1-e) edge
     * weights) instead of hop count. Extension of the paper's "qubit
     * and operator fidelity" cost direction.
     */
    bool fidelityAware = false;

    /**
     * Dynamic-layout ctr (extension): SWAPs persist instead of being
     * undone after every CNOT; a permutation-repair epilogue restores
     * the original assignment at the end so the overall unitary is
     * unchanged. Usually far fewer SWAPs on reroute-heavy circuits.
     * Ignored by sabre, which is always dynamic-layout.
     */
    bool dynamicLayout = false;

    /**
     * Sabre: how many not-yet-ready CNOTs beyond the frontier join
     * the SWAP score, each attenuated geometrically by its distance
     * from the frontier (the "decayed extended-lookahead window").
     */
    size_t sabreWindow = 20;

    /**
     * TEST ONLY — omit the swap-back half of every CTR reroute. The
     * output stays legal on the device but its unitary is wrong, which
     * is exactly what the qfuzz oracle stack must catch and shrink.
     * Surfaced as the hidden `--test-omit-swap-back` CLI flag; never
     * set it outside fault-injection tests.
     */
    bool testOmitSwapBack = false;
};

/** One routing strategy. Implementations are stateless; `route` may
 *  be called concurrently. */
class Router
{
  public:
    virtual ~Router() = default;

    /** The strategy's stable name (== routerName of its kind). */
    virtual const char *name() const = 0;

    /**
     * Legalize a primitive-level circuit (single-qubit gates, CNOTs,
     * measures, barriers) for `device`. Wires are physical qubits.
     * Throws MappingError when the circuit is wider than the device
     * or endpoints are disconnected.
     */
    virtual Circuit route(const Circuit &circuit, const Device &device,
                          RouteStats *stats,
                          const RouteOptions &options) const = 0;
};

/** The registered strategy for `kind` (static lifetime). */
const Router &routerFor(RouterKind kind);

/**
 * Route `circuit` with the strategy selected by `options.router`,
 * with the shared width check, the `route.circuit` span, and the
 * `route.*` metrics flush wrapped around the backend.
 */
Circuit routeCircuit(const Circuit &circuit, const Device &device,
                     RouteStats *stats = nullptr,
                     const RouteOptions &options = {});

namespace detail {

/** Rebuild one gate with every wire sent through `layout`
 *  (layout[v] = physical qubit currently holding wire v). Mirrors
 *  Circuit::remapped gate-by-gate, without the temporary circuit. */
Gate remapGate(const Gate &gate, const std::vector<Qubit> &layout);

/** Account for one CNOT realized against the coupling direction
 *  (appendReversedCnot): owns the full bookkeeping — the reversal
 *  counter and its four Hadamards. */
void countReversal(RouteStats *stats);

/**
 * Permutation-repair epilogue shared by the dynamic-layout routers:
 * emit SWAPs restoring the identity layout (`inv[p] == p` for every
 * physical p). Each misplaced wire is fixed with a there-and-back SWAP
 * chain along a shortest path — a transposition of the endpoints that
 * leaves every intermediate wire untouched, so positions repaired
 * earlier stay repaired on any topology (a one-way chain would drag
 * wires through already-fixed positions on grids). Updates pos/inv,
 * bumps swapsInserted/restoreSwaps, and returns the SWAP count.
 */
size_t restoreIdentityLayout(Circuit &out, const CouplingMap &map,
                             std::vector<Qubit> &pos,
                             std::vector<Qubit> &inv, RouteStats *stats);

} // namespace detail

} // namespace qsyn::route
