/**
 * @file
 * SABRE-style lookahead routing over the dependency DAG.
 *
 * Where CTR legalizes one CNOT at a time in program order (SWAP chain
 * out, CNOT, SWAP chain back), the lookahead router keeps a *dynamic
 * layout* and picks SWAPs globally: it tracks the frontier of ready
 * gates in the commutation-aware `analysis::DependencyDag`, executes
 * everything already adjacent, and — when only distant CNOTs remain —
 * scores every SWAP on an edge touching a frontier CNOT by the total
 * distance it saves across the ready set plus a geometrically decayed
 * window of upcoming CNOTs. SWAPs persist; a permutation-repair
 * epilogue restores the identity layout so the routed unitary equals
 * CTR's exactly. Grounded in Li/Ding/Xie's SABRE (ASPLOS'19) and the
 * lookahead literature cited in PAPERS.md.
 *
 * With calibration data and `fidelityAware`, hop-count distances are
 * replaced by accumulated two-qubit-error weights, so SWAP choices
 * prefer high-fidelity edges — the same weighting CTR's Dijkstra
 * variant uses.
 */

#pragma once

#include "route/router.hpp"

namespace qsyn::route {

/**
 * The lookahead backend. Called by the dispatcher in router.cpp after
 * the width check; use `routeCircuit` with
 * `options.router = RouterKind::Sabre` instead unless you
 * specifically want to bypass strategy selection.
 */
Circuit routeSabre(const Circuit &circuit, const Device &device,
                   RouteStats *stats, const RouteOptions &options);

} // namespace qsyn::route
