/**
 * @file
 * Initial logical-to-physical placement. The paper's tool maps logical
 * wire i onto physical qubit i (benchmark wires already name device
 * qubits); "optimizations that minimize cost by finding ideal qubit
 * placement" are listed as future work (Section 6). Both are provided:
 * the identity placement used for the paper's tables and a greedy
 * interaction-graph placement as the extension.
 */

#pragma once

#include <vector>

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qsyn::route {

/** Placement strategy selector. */
enum class PlacementStrategy
{
    Identity, ///< logical i -> physical i (the paper's behavior)
    Greedy    ///< interaction-weighted subgraph embedding (extension)
};

/**
 * Identity placement map for `num_logical` wires. Throws MappingError
 * when the device is smaller than the circuit.
 */
std::vector<Qubit> identityPlacement(Qubit num_logical,
                                     const Device &device);

/**
 * Greedy placement: weighs logical pairs by their two-qubit gate
 * count, then embeds wires one by one, putting each next to its
 * already-placed partners (BFS-nearest free qubit as fallback).
 */
std::vector<Qubit> greedyPlacement(const Circuit &circuit,
                                   const Device &device);

/** Compute a placement by strategy. */
std::vector<Qubit> computePlacement(const Circuit &circuit,
                                    const Device &device,
                                    PlacementStrategy strategy);

/**
 * Rewrite `circuit` onto the device register through `placement`
 * (logical -> physical). The result has device-many wires.
 */
Circuit applyPlacement(const Circuit &circuit,
                       const std::vector<Qubit> &placement,
                       const Device &device);

} // namespace qsyn::route
