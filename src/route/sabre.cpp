#include "route/sabre.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "analysis/dag.hpp"
#include "common/errors.hpp"
#include "decompose/toffoli.hpp"
#include "obs/obs.hpp"

namespace qsyn::route {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Weight of the first extended-window CNOT relative to the frontier. */
constexpr double kExtWeight = 0.5;

/** Geometric attenuation per additional window position — gates far
 *  past the frontier barely steer the current SWAP. */
constexpr double kExtDecay = 0.9;

/** Forced-reroute safety valve: after this many heuristic SWAPs with
 *  no gate executed, fall back to a shortest-path reroute of the
 *  first frontier CNOT (guarantees termination on any connected
 *  device). */
size_t
stallLimit(Qubit num_qubits)
{
    return 4 * static_cast<size_t>(num_qubits) + 16;
}

/**
 * All-pairs distances over the undirected coupling graph: hop counts
 * by BFS, or accumulated two-qubit-error weights (Dijkstra) when
 * calibration data is present and requested — the same
 * -3·log1p(-err) SWAP cost CTR's fidelity-aware path search uses.
 */
std::vector<std::vector<double>>
allPairsDistances(const Device &device, bool fidelity_aware)
{
    const CouplingMap &map = device.coupling();
    Qubit n = device.numQubits();
    const Calibration *cal =
        fidelity_aware ? device.calibration() : nullptr;
    std::vector<std::vector<double>> dist(
        n, std::vector<double>(n, kInf));
    for (Qubit src = 0; src < n; ++src) {
        dist[src][src] = 0.0;
        if (cal == nullptr) {
            std::deque<Qubit> frontier{src};
            while (!frontier.empty()) {
                Qubit q = frontier.front();
                frontier.pop_front();
                for (Qubit nb : map.neighborsOf(q)) {
                    if (dist[src][nb] == kInf) {
                        dist[src][nb] = dist[src][q] + 1.0;
                        frontier.push_back(nb);
                    }
                }
            }
        } else {
            using Item = std::pair<double, Qubit>;
            std::priority_queue<Item, std::vector<Item>,
                                std::greater<Item>>
                heap;
            heap.push({0.0, src});
            while (!heap.empty()) {
                auto [d, q] = heap.top();
                heap.pop();
                if (d > dist[src][q])
                    continue;
                for (Qubit nb : map.neighborsOf(q)) {
                    double w = -3.0 *
                               std::log1p(-cal->twoQubitError(q, nb));
                    if (d + w < dist[src][nb]) {
                        dist[src][nb] = d + w;
                        heap.push({d + w, nb});
                    }
                }
            }
        }
    }
    return dist;
}

} // namespace

Circuit
routeSabre(const Circuit &circuit, const Device &device, RouteStats *stats,
           const RouteOptions &options)
{
    const CouplingMap &map = device.coupling();
    Qubit n = device.numQubits();
    Circuit out(n, circuit.name());
    obs::Span span("route.sabre", "route");

    // pos[v] = physical qubit currently holding virtual wire v;
    // inv[p] = virtual wire at physical p. Placement has already been
    // applied, so the initial layout is the identity.
    std::vector<Qubit> pos(n), inv(n);
    for (Qubit q = 0; q < n; ++q)
        pos[q] = inv[q] = q;

    const bool full = device.isFullyConnected();
    std::vector<std::vector<double>> dist;
    if (!full)
        dist = allPairsDistances(device, options.fidelityAware);

    // Fail fast on disconnected endpoints (same contract as CTR):
    // positions move but components never do.
    if (!full) {
        for (const Gate &g : circuit) {
            if (g.isCnot() &&
                dist[g.controls()[0]][g.target()] == kInf) {
                throw MappingError(
                    "no coupling path between q" +
                    std::to_string(g.controls()[0]) + " and q" +
                    std::to_string(g.target()));
            }
        }
    }

    analysis::DependencyDag dag(circuit);
    const size_t total = dag.size();
    std::vector<size_t> indeg(total);
    for (size_t i = 0; i < total; ++i)
        indeg[i] = dag.preds(i).size();
    std::set<size_t> ready(dag.roots().begin(), dag.roots().end());

    size_t executed = 0;
    size_t forced_reroutes = 0;
    size_t stalled_swaps = 0; // heuristic SWAPs since last execution
    // The most recent heuristic SWAP, excluded from the next round of
    // candidates so the score cannot oscillate on one edge.
    std::pair<Qubit, Qubit> last_swap{kNoQubit, kNoQubit};

    auto apply_swap = [&](Qubit pa, Qubit pb) {
        decompose::appendSwap(out, &map, pa, pb);
        if (stats)
            ++stats->swapsInserted;
        Qubit va = inv[pa], vb = inv[pb];
        std::swap(inv[pa], inv[pb]);
        pos[va] = pb;
        pos[vb] = pa;
    };

    // A gate is executable when it is not a CNOT (single-qubit gates,
    // barriers, and measures never move) or when its endpoints are
    // adjacent under the current layout (any direction — a reversal
    // fixes orientation).
    auto executable = [&](const Gate &g) {
        if (!g.isCnot())
            return true;
        Qubit pc = pos[g.controls()[0]];
        Qubit pt = pos[g.target()];
        return full || map.hasEdge(pc, pt) ||
               map.hasUndirectedEdge(pc, pt);
    };

    auto emit = [&](const Gate &g) {
        if (!g.isCnot()) {
            QSYN_ASSERT(g.numQubits() <= 1 ||
                            g.kind() == GateKind::Barrier,
                        "routing expects a primitive-level circuit, got " +
                            g.toString());
            if (g.kind() == GateKind::Barrier || g.numQubits() != 1)
                out.add(g);
            else
                out.add(detail::remapGate(g, pos));
            return;
        }
        Qubit pc = pos[g.controls()[0]];
        Qubit pt = pos[g.target()];
        if (full || map.hasEdge(pc, pt)) {
            out.addCnot(pc, pt);
            if (stats)
                ++stats->nativeCnots;
        } else {
            decompose::appendReversedCnot(out, pc, pt);
            detail::countReversal(stats);
        }
    };

    auto execute = [&](size_t gi) {
        emit(circuit[gi]);
        ready.erase(gi);
        for (size_t s : dag.succs(gi)) {
            if (--indeg[s] == 0)
                ready.insert(s);
        }
        ++executed;
        stalled_swaps = 0;
        last_swap = {kNoQubit, kNoQubit};
    };

    // CNOT endpoint distance if the physical pair (a, b) were swapped
    // first; (kNoQubit, kNoQubit) scores the current layout.
    auto dist_after = [&](size_t gi, Qubit a, Qubit b) {
        const Gate &g = circuit[gi];
        Qubit pc = pos[g.controls()[0]];
        Qubit pt = pos[g.target()];
        Qubit c2 = pc == a ? b : (pc == b ? a : pc);
        Qubit t2 = pt == a ? b : (pt == b ? a : pt);
        return dist[c2][t2];
    };

    while (executed < total) {
        // Drain everything executable under the current layout. One
        // execution can unlock successors, so sweep to a fixpoint.
        bool progress = true;
        while (progress) {
            progress = false;
            std::vector<size_t> runnable;
            for (size_t gi : ready) {
                if (executable(circuit[gi]))
                    runnable.push_back(gi);
            }
            for (size_t gi : runnable) {
                execute(gi);
                progress = true;
            }
        }
        if (executed == total)
            break;

        // Stuck: every ready gate is a distant CNOT.
        std::vector<size_t> frontier_cnots(ready.begin(), ready.end());

        if (stalled_swaps >= stallLimit(n)) {
            // Safety valve: heuristic is wandering; shortest-path
            // reroute the first frontier CNOT (SWAPs persist), which
            // is guaranteed to make it adjacent.
            size_t gi = frontier_cnots.front();
            const Gate &g = circuit[gi];
            Qubit pc = pos[g.controls()[0]];
            Qubit pt = pos[g.target()];
            std::vector<Qubit> path = map.shortestPathToNeighbor(pc, pt);
            QSYN_ASSERT(path.size() >= 2,
                        "stalled CNOT endpoints must be distant");
            for (size_t i = 0; i + 1 < path.size(); ++i)
                apply_swap(path[i], path[i + 1]);
            if (stats)
                ++stats->reroutedCnots;
            ++forced_reroutes;
            execute(gi);
            continue;
        }

        // SWAP candidates: undirected edges touching a frontier-CNOT
        // endpoint (the only SWAPs that can change a frontier
        // distance), minus the SWAP just applied.
        std::set<std::pair<Qubit, Qubit>> candidates;
        for (size_t gi : frontier_cnots) {
            const Gate &g = circuit[gi];
            for (Qubit p : {pos[g.controls()[0]], pos[g.target()]}) {
                for (Qubit nb : map.neighborsOf(p)) {
                    auto e = std::minmax(p, nb);
                    if (std::pair<Qubit, Qubit>(e.first, e.second) !=
                        last_swap)
                        candidates.insert({e.first, e.second});
                }
            }
        }
        QSYN_ASSERT(!candidates.empty(),
                    "connected device must offer a SWAP candidate");

        // Decayed extended window: the next CNOTs behind the frontier
        // in dependency order, discovered by BFS over successors.
        std::vector<size_t> window;
        if (options.sabreWindow > 0) {
            std::vector<char> seen(total, 0);
            std::deque<size_t> bfs;
            for (size_t gi : ready) {
                seen[gi] = 1;
                bfs.push_back(gi);
            }
            while (!bfs.empty() && window.size() < options.sabreWindow) {
                size_t gi = bfs.front();
                bfs.pop_front();
                for (size_t s : dag.succs(gi)) {
                    if (seen[s])
                        continue;
                    seen[s] = 1;
                    bfs.push_back(s);
                    if (circuit[s].isCnot()) {
                        window.push_back(s);
                        if (window.size() == options.sabreWindow)
                            break;
                    }
                }
            }
        }

        std::pair<Qubit, Qubit> best{kNoQubit, kNoQubit};
        double best_score = kInf;
        for (const auto &[a, b] : candidates) {
            double score = 0.0;
            for (size_t gi : frontier_cnots)
                score += dist_after(gi, a, b);
            double w = kExtWeight;
            for (size_t gi : window) {
                score += w * dist_after(gi, a, b);
                w *= kExtDecay;
            }
            if (score < best_score) {
                best_score = score;
                best = {a, b};
            }
        }
        QSYN_ASSERT(best.first != kNoQubit, "no SWAP candidate scored");
        apply_swap(best.first, best.second);
        if (stats)
            ++stats->lookaheadSwaps;
        ++stalled_swaps;
        last_swap = best;
    }

    // Epilogue: restore the identity layout so the routed unitary
    // equals the swap-back routers' exactly.
    size_t restore_swaps =
        detail::restoreIdentityLayout(out, map, pos, inv, stats);

    span.arg("gates_in", circuit.size());
    span.arg("gates_out", out.size());
    span.arg("window", options.sabreWindow);
    span.arg("forced_reroutes", forced_reroutes);
    span.arg("restore_swaps", restore_swaps);
    if (obs::Sink *s = obs::sink()) {
        obs::MetricsRegistry &m = s->metrics();
        if (stats) {
            m.addCounter("route.sabre.lookahead_swaps",
                         static_cast<double>(stats->lookaheadSwaps));
        }
        m.addCounter("route.sabre.restore_swaps",
                     static_cast<double>(restore_swaps));
        m.addCounter("route.sabre.forced_reroutes",
                     static_cast<double>(forced_reroutes));
    }
    return out;
}

} // namespace qsyn::route
