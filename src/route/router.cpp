#include "route/router.hpp"

#include "common/errors.hpp"
#include "decompose/toffoli.hpp"
#include "obs/obs.hpp"
#include "route/ctr.hpp"
#include "route/sabre.hpp"

namespace qsyn::route {

const char *
routerName(RouterKind kind)
{
    switch (kind) {
      case RouterKind::Ctr:
        return "ctr";
      case RouterKind::Sabre:
        return "sabre";
    }
    throw InternalError("unknown router kind", __FILE__, __LINE__);
}

bool
parseRouterName(const std::string &text, RouterKind *out)
{
    if (text == "ctr") {
        *out = RouterKind::Ctr;
        return true;
    }
    if (text == "sabre") {
        *out = RouterKind::Sabre;
        return true;
    }
    return false;
}

namespace detail {

Gate
remapGate(const Gate &gate, const std::vector<Qubit> &layout)
{
    if (gate.kind() == GateKind::Measure)
        return Gate::measure(layout[gate.target()], gate.cbit());
    std::vector<Qubit> controls;
    controls.reserve(gate.numControls());
    for (Qubit c : gate.controls())
        controls.push_back(layout[c]);
    std::vector<Qubit> targets;
    targets.reserve(gate.targets().size());
    for (Qubit t : gate.targets())
        targets.push_back(layout[t]);
    return Gate(gate.kind(), std::move(controls), std::move(targets),
                gate.param());
}

void
countReversal(RouteStats *stats)
{
    if (stats == nullptr)
        return;
    ++stats->reversedCnots;
    stats->hInserted += 4;
}

size_t
restoreIdentityLayout(Circuit &out, const CouplingMap &map,
                      std::vector<Qubit> &pos, std::vector<Qubit> &inv,
                      RouteStats *stats)
{
    Qubit n = static_cast<Qubit>(pos.size());
    size_t restore_swaps = 0;
    auto apply_swap = [&](Qubit pa, Qubit pb) {
        decompose::appendSwap(out, &map, pa, pb);
        ++restore_swaps;
        Qubit va = inv[pa], vb = inv[pb];
        std::swap(inv[pa], inv[pb]);
        pos[va] = pb;
        pos[vb] = pa;
    };
    for (Qubit p = 0; p < n; ++p) {
        if (inv[p] == p)
            continue;
        std::vector<Qubit> path = map.shortestPath(pos[p], p);
        QSYN_ASSERT(path.size() >= 2, "broken repair path");
        // There-and-back chain: transposes the endpoint wires and
        // leaves every intermediate wire where it was, so positions
        // already repaired cannot be dragged out of place again.
        for (size_t i = 0; i + 1 < path.size(); ++i)
            apply_swap(path[i], path[i + 1]);
        for (size_t i = path.size() - 2; i-- > 0;)
            apply_swap(path[i], path[i + 1]);
        QSYN_ASSERT(inv[p] == p, "repair transposition missed");
    }
    if (stats != nullptr) {
        stats->swapsInserted += restore_swaps;
        stats->restoreSwaps += restore_swaps;
    }
    return restore_swaps;
}

} // namespace detail

namespace {

class CtrRouter final : public Router
{
  public:
    const char *name() const override { return "ctr"; }
    Circuit route(const Circuit &circuit, const Device &device,
                  RouteStats *stats,
                  const RouteOptions &options) const override
    {
        return routeCtr(circuit, device, stats, options);
    }
};

class SabreRouter final : public Router
{
  public:
    const char *name() const override { return "sabre"; }
    Circuit route(const Circuit &circuit, const Device &device,
                  RouteStats *stats,
                  const RouteOptions &options) const override
    {
        return routeSabre(circuit, device, stats, options);
    }
};

/** Flush one routing run's counters onto the obs sink. */
void
flushRouteStats(obs::Sink *sink, const RouteStats &stats)
{
    if (sink == nullptr)
        return;
    obs::MetricsRegistry &m = sink->metrics();
    m.addCounter("route.native_cnots",
                 static_cast<double>(stats.nativeCnots));
    m.addCounter("route.reversed_cnots",
                 static_cast<double>(stats.reversedCnots));
    m.addCounter("route.rerouted_cnots",
                 static_cast<double>(stats.reroutedCnots));
    m.addCounter("route.swaps_inserted",
                 static_cast<double>(stats.swapsInserted));
    m.addCounter("route.h_inserted",
                 static_cast<double>(stats.hInserted));
    // route.sabre.* counters are emitted by the sabre backend itself,
    // which can tell heuristic SWAPs from restore SWAPs as they land.
}

} // namespace

const Router &
routerFor(RouterKind kind)
{
    static const CtrRouter ctr;
    static const SabreRouter sabre;
    switch (kind) {
      case RouterKind::Ctr:
        return ctr;
      case RouterKind::Sabre:
        return sabre;
    }
    throw InternalError("unknown router kind", __FILE__, __LINE__);
}

Circuit
routeCircuit(const Circuit &circuit, const Device &device,
             RouteStats *stats, const RouteOptions &options)
{
    if (circuit.numQubits() > device.numQubits()) {
        throw MappingError(
            "circuit needs " + std::to_string(circuit.numQubits()) +
            " qubits but " + device.name() + " has only " +
            std::to_string(device.numQubits()));
    }
    const Router &router = routerFor(options.router);
    obs::Span span("route.circuit", "route");
    span.arg("router", router.name());
    obs::Sink *sink = obs::sink();
    // Keep per-run counters even when the caller does not ask for
    // them, so the metrics snapshot is complete.
    RouteStats local;
    if (stats == nullptr && sink != nullptr)
        stats = &local;

    Circuit routed = router.route(circuit, device, stats, options);
    if (sink != nullptr && stats != nullptr) {
        flushRouteStats(sink, *stats);
        span.arg("gates_in", circuit.size());
        span.arg("gates_out", routed.size());
        span.arg("swaps", stats->swapsInserted);
    }
    return routed;
}

} // namespace qsyn::route
