/**
 * @file
 * The Connectivity Tree Reroute (CTR) algorithm — the paper's core
 * routing contribution (Section 4, Figs. 4-5).
 *
 * A CNOT whose endpoints are not coupled is legalized by moving the
 * *control* along the shortest SWAP path (found by BFS over the
 * undirected coupling graph, which explores exactly the paper's
 * connectivity tree level by level) to a qubit coupled with the
 * target, executing the CNOT there, and swapping back so the original
 * qubit assignment is preserved. Each SWAP costs at most 7 gates
 * (3 CNOTs + 4 H) under unidirectional coupling.
 *
 * The shared stats/options types and the strategy-dispatching
 * `routeCircuit` entry live in route/router.hpp (re-exported here so
 * existing includes keep working).
 */

#pragma once

#include "route/router.hpp"

namespace qsyn::route {

/**
 * The CTR backend (plus its meet-in-middle and dynamic-layout
 * variants, selected through `options`). Called by the dispatcher in
 * router.cpp after the width check; use `routeCircuit` instead unless
 * you specifically want to bypass strategy selection.
 */
Circuit routeCtr(const Circuit &circuit, const Device &device,
                 RouteStats *stats, const RouteOptions &options);

} // namespace qsyn::route
