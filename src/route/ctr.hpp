/**
 * @file
 * The Connectivity Tree Reroute (CTR) algorithm — the paper's core
 * routing contribution (Section 4, Figs. 4-5).
 *
 * A CNOT whose endpoints are not coupled is legalized by moving the
 * *control* along the shortest SWAP path (found by BFS over the
 * undirected coupling graph, which explores exactly the paper's
 * connectivity tree level by level) to a qubit coupled with the
 * target, executing the CNOT there, and swapping back so the original
 * qubit assignment is preserved. Each SWAP costs at most 7 gates
 * (3 CNOTs + 4 H) under unidirectional coupling.
 */

#pragma once

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qsyn::route {

/** Counters describing what routing had to do. */
struct RouteStats
{
    size_t nativeCnots = 0;   ///< already legal
    size_t reversedCnots = 0; ///< fixed with four Hadamards (Fig. 6)
    size_t reroutedCnots = 0; ///< needed a SWAP path (CTR)
    size_t swapsInserted = 0; ///< total SWAPs emitted (incl. swap-back)
    /** Hadamards inserted for direction fixes, including reversals at
     *  the far end of a reroute (4 per reversed CNOT). */
    size_t hInserted = 0;
};

/** Routing options. */
struct RouteOptions
{
    /**
     * Ablation variant: instead of walking the control all the way to
     * the target's neighborhood (the paper's CTR), walk control and
     * target toward each other and meet in the middle. Same legality,
     * different SWAP counts.
     */
    bool meetInMiddle = false;

    /**
     * Fidelity-aware path selection: when the device carries
     * calibration data, SWAP paths minimize accumulated two-qubit
     * error (Dijkstra over -log(1-e) edge weights) instead of hop
     * count. Extension of the paper's "qubit and operator fidelity"
     * cost direction.
     */
    bool fidelityAware = false;

    /**
     * Dynamic-layout routing (extension): SWAPs persist instead of
     * being undone after every CNOT (the paper's CTR swaps the control
     * back each time); a permutation-repair epilogue restores the
     * original assignment at the end so the overall unitary is
     * unchanged. Usually far fewer SWAPs on reroute-heavy circuits.
     */
    bool dynamicLayout = false;

    /**
     * TEST ONLY — omit the swap-back half of every CTR reroute. The
     * output stays legal on the device but its unitary is wrong, which
     * is exactly what the qfuzz oracle stack must catch and shrink.
     * Surfaced as the hidden `--test-omit-swap-back` CLI flag; never
     * set it outside fault-injection tests.
     */
    bool testOmitSwapBack = false;
};

/**
 * Legalize a primitive-level circuit (single-qubit gates, CNOTs,
 * measures, barriers) for `device`. Circuit wires are interpreted as
 * physical qubits (apply a placement first). The result uses only
 * native CNOT directions. Throws MappingError when the circuit is
 * wider than the device or endpoints are disconnected.
 */
Circuit routeCircuit(const Circuit &circuit, const Device &device,
                     RouteStats *stats = nullptr,
                     const RouteOptions &options = {});

} // namespace qsyn::route
