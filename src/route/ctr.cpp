#include "route/ctr.hpp"

#include "common/errors.hpp"
#include <cmath>

#include "decompose/toffoli.hpp"
#include "obs/obs.hpp"

namespace qsyn::route {

namespace {

using detail::countReversal;
using detail::remapGate;
using detail::restoreIdentityLayout;

/** Record one reroute decision on the installed obs sink: the SWAP
 *  path length (vertices walked, histogram) and the running reroute
 *  count. Reroutes are rare relative to gates, so the registry mutex
 *  is fine here. */
void
recordReroute(size_t path_vertices)
{
    if (obs::Sink *s = obs::sink()) {
        s->metrics().observe("route.reroute_path_length",
                             static_cast<double>(path_vertices));
    }
}

void
emitSwapPath(Circuit &out, const CouplingMap &map,
             const std::vector<Qubit> &path, RouteStats *stats)
{
    for (size_t i = 0; i + 1 < path.size(); ++i) {
        decompose::appendSwap(out, &map, path[i], path[i + 1]);
        if (stats)
            ++stats->swapsInserted;
    }
}

void
emitSwapPathReversed(Circuit &out, const CouplingMap &map,
                     const std::vector<Qubit> &path, RouteStats *stats)
{
    for (size_t i = path.size() - 1; i >= 1; --i) {
        decompose::appendSwap(out, &map, path[i], path[i - 1]);
        if (stats)
            ++stats->swapsInserted;
    }
}

void
routeCnotCtr(Circuit &out, const Device &device, Qubit control,
             Qubit target, RouteStats *stats, bool fidelity_aware,
             bool omit_swap_back)
{
    const CouplingMap &map = device.coupling();
    // Shortest path from the control to any neighbor of the target
    // (BFS == breadth-first expansion of the paper's connectivity
    // tree); with calibration data, a Dijkstra search minimizing
    // accumulated two-qubit error instead.
    std::vector<Qubit> path;
    const Calibration *cal = device.calibration();
    if (fidelity_aware && cal != nullptr) {
        // One SWAP on an edge costs three CNOTs on it.
        auto edge_weight = [&](Qubit a, Qubit b) {
            return -3.0 * std::log1p(-cal->twoQubitError(a, b));
        };
        auto goal_weight = [&](Qubit n) {
            return -std::log1p(-cal->twoQubitError(n, target));
        };
        path = map.weightedPathToNeighbor(control, target, edge_weight,
                                          goal_weight);
    } else {
        path = map.shortestPathToNeighbor(control, target);
    }
    if (path.empty()) {
        throw MappingError("no coupling path between q" +
                           std::to_string(control) + " and q" +
                           std::to_string(target));
    }
    if (stats)
        ++stats->reroutedCnots;
    recordReroute(path.size());

    emitSwapPath(out, map, path, stats);
    Qubit moved = path.back();
    if (map.hasEdge(moved, target)) {
        out.addCnot(moved, target);
    } else {
        decompose::appendReversedCnot(out, moved, target);
        countReversal(stats);
    }
    if (!omit_swap_back)
        emitSwapPathReversed(out, map, path, stats);
}

void
routeCnotMeetInMiddle(Circuit &out, const CouplingMap &map, Qubit control,
                      Qubit target, RouteStats *stats)
{
    std::vector<Qubit> path = map.shortestPath(control, target);
    if (path.empty()) {
        throw MappingError("no coupling path between q" +
                           std::to_string(control) + " and q" +
                           std::to_string(target));
    }
    if (stats)
        ++stats->reroutedCnots;
    recordReroute(path.size());

    // path = [control, ..., target]; walk the control to index j and
    // the target back to index j+1.
    size_t j = (path.size() - 2) / 2;
    std::vector<Qubit> control_leg(path.begin(),
                                   path.begin() +
                                       static_cast<ptrdiff_t>(j + 1));
    std::vector<Qubit> target_leg(path.rbegin(),
                                  path.rend() -
                                      static_cast<ptrdiff_t>(j + 1));

    emitSwapPath(out, map, control_leg, stats);
    emitSwapPath(out, map, target_leg, stats);
    Qubit moved_control = control_leg.back();
    Qubit moved_target = target_leg.back();
    if (map.hasEdge(moved_control, moved_target)) {
        out.addCnot(moved_control, moved_target);
    } else {
        decompose::appendReversedCnot(out, moved_control, moved_target);
        countReversal(stats);
    }
    emitSwapPathReversed(out, map, target_leg, stats);
    emitSwapPathReversed(out, map, control_leg, stats);
}

/**
 * Dynamic-layout router: tracks where every virtual wire currently
 * sits; SWAP chains move the control next to the target and stay in
 * place; the epilogue sorts every wire home so the circuit's unitary
 * equals the swap-back style exactly.
 */
Circuit
routeDynamic(const Circuit &circuit, const Device &device,
             RouteStats *stats)
{
    const CouplingMap &map = device.coupling();
    Qubit n = device.numQubits();
    Circuit out(n, circuit.name());

    // pos[v] = physical qubit currently holding virtual wire v;
    // inv[p] = virtual wire at physical p.
    std::vector<Qubit> pos(n), inv(n);
    for (Qubit q = 0; q < n; ++q)
        pos[q] = inv[q] = q;

    auto apply_swap = [&](Qubit pa, Qubit pb) {
        decompose::appendSwap(out, &map, pa, pb);
        if (stats)
            ++stats->swapsInserted;
        Qubit va = inv[pa], vb = inv[pb];
        std::swap(inv[pa], inv[pb]);
        pos[va] = pb;
        pos[vb] = pa;
    };

    for (const Gate &g : circuit) {
        if (!g.isCnot()) {
            QSYN_ASSERT(g.numQubits() <= 1 ||
                            g.kind() == GateKind::Barrier,
                        "routing expects a primitive-level circuit");
            // Remap single-qubit gates through the current layout;
            // barriers fence the whole register and pass unchanged.
            if (g.kind() == GateKind::Barrier) {
                out.add(g);
            } else if (g.numQubits() == 1) {
                out.add(remapGate(g, pos));
            } else {
                out.add(g);
            }
            continue;
        }
        Qubit pc = pos[g.controls()[0]];
        Qubit pt = pos[g.target()];
        if (device.isFullyConnected() || map.hasEdge(pc, pt)) {
            out.addCnot(pc, pt);
            if (stats)
                ++stats->nativeCnots;
            continue;
        }
        if (map.hasUndirectedEdge(pc, pt)) {
            decompose::appendReversedCnot(out, pc, pt);
            countReversal(stats);
            continue;
        }
        std::vector<Qubit> path = map.shortestPathToNeighbor(pc, pt);
        if (path.empty()) {
            throw MappingError("no coupling path between q" +
                               std::to_string(pc) + " and q" +
                               std::to_string(pt));
        }
        if (stats)
            ++stats->reroutedCnots;
        recordReroute(path.size());
        for (size_t i = 0; i + 1 < path.size(); ++i)
            apply_swap(path[i], path[i + 1]);
        Qubit moved = path.back();
        if (map.hasEdge(moved, pt)) {
            out.addCnot(moved, pt);
        } else {
            decompose::appendReversedCnot(out, moved, pt);
            countReversal(stats);
        }
    }

    // Epilogue: restore the identity layout.
    restoreIdentityLayout(out, map, pos, inv, stats);
    return out;
}

} // namespace

Circuit
routeCtr(const Circuit &circuit, const Device &device, RouteStats *stats,
         const RouteOptions &options)
{
    if (options.dynamicLayout)
        return routeDynamic(circuit, device, stats);

    Circuit out(device.numQubits(), circuit.name());
    const CouplingMap &map = device.coupling();

    for (const Gate &g : circuit) {
        if (!g.isCnot()) {
            QSYN_ASSERT(g.numQubits() <= 1 ||
                            g.kind() == GateKind::Barrier,
                        "routing expects a primitive-level circuit, got " +
                            g.toString());
            out.add(g);
            continue;
        }
        Qubit control = g.controls()[0];
        Qubit target = g.target();
        if (device.isFullyConnected() || map.hasEdge(control, target)) {
            out.addCnot(control, target);
            if (stats)
                ++stats->nativeCnots;
            continue;
        }
        if (map.hasUndirectedEdge(control, target)) {
            decompose::appendReversedCnot(out, control, target);
            countReversal(stats);
            continue;
        }
        if (options.meetInMiddle)
            routeCnotMeetInMiddle(out, map, control, target, stats);
        else
            routeCnotCtr(out, device, control, target, stats,
                         options.fidelityAware,
                         options.testOmitSwapBack);
    }
    return out;
}

} // namespace qsyn::route
