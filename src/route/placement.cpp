#include "route/placement.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "common/errors.hpp"

namespace qsyn::route {

namespace {

void
checkFits(Qubit num_logical, const Device &device)
{
    if (num_logical > device.numQubits()) {
        throw MappingError("circuit needs " + std::to_string(num_logical) +
                           " qubits but " + device.name() +
                           " has only " +
                           std::to_string(device.numQubits()));
    }
}

/** BFS-nearest unoccupied physical qubit from `from`. */
Qubit
nearestFree(const CouplingMap &map, Qubit from,
            const std::vector<bool> &occupied)
{
    std::vector<bool> seen(map.numQubits(), false);
    std::deque<Qubit> frontier{from};
    seen[from] = true;
    while (!frontier.empty()) {
        Qubit q = frontier.front();
        frontier.pop_front();
        if (!occupied[q])
            return q;
        for (Qubit n : map.neighborsOf(q)) {
            if (!seen[n]) {
                seen[n] = true;
                frontier.push_back(n);
            }
        }
    }
    return kNoQubit;
}

} // namespace

std::vector<Qubit>
identityPlacement(Qubit num_logical, const Device &device)
{
    checkFits(num_logical, device);
    std::vector<Qubit> placement(num_logical);
    for (Qubit i = 0; i < num_logical; ++i)
        placement[i] = i;
    return placement;
}

std::vector<Qubit>
greedyPlacement(const Circuit &circuit, const Device &device)
{
    Qubit n = circuit.numQubits();
    checkFits(n, device);
    const CouplingMap &map = device.coupling();

    // Interaction weights between logical wires.
    std::map<std::pair<Qubit, Qubit>, size_t> weight;
    std::vector<size_t> degree(n, 0);
    for (const Gate &g : circuit) {
        auto qs = g.qubits();
        for (size_t i = 0; i < qs.size(); ++i) {
            for (size_t j = i + 1; j < qs.size(); ++j) {
                auto key = std::minmax(qs[i], qs[j]);
                ++weight[{key.first, key.second}];
                ++degree[qs[i]];
                ++degree[qs[j]];
            }
        }
    }

    // Place logical wires in order of decreasing interaction degree.
    std::vector<Qubit> order(n);
    for (Qubit i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](Qubit a, Qubit b) {
        return degree[a] > degree[b];
    });

    std::vector<Qubit> placement(n, kNoQubit);
    std::vector<bool> occupied(device.numQubits(), false);

    for (Qubit logical : order) {
        // Score each free physical qubit by adjacency to the already
        // placed interaction partners.
        Qubit best = kNoQubit;
        size_t best_score = 0;
        for (Qubit phys = 0; phys < device.numQubits(); ++phys) {
            if (occupied[phys])
                continue;
            size_t score = 0;
            for (Qubit other = 0; other < n; ++other) {
                if (placement[other] == kNoQubit)
                    continue;
                auto key = std::minmax(logical, other);
                auto it = weight.find({key.first, key.second});
                if (it == weight.end())
                    continue;
                if (map.hasUndirectedEdge(phys, placement[other]))
                    score += it->second;
            }
            if (best == kNoQubit || score > best_score) {
                best = phys;
                best_score = score;
            }
        }
        if (best != kNoQubit && best_score == 0) {
            // No placed partner is adjacent to any free qubit. Anchor
            // on the heaviest already-placed wire `logical` actually
            // interacts with; only when no partner is placed yet fall
            // back to the placed cluster as a whole.
            Qubit anchor = kNoQubit;
            size_t anchor_weight = 0;
            for (Qubit other = 0; other < n; ++other) {
                if (other == logical || placement[other] == kNoQubit)
                    continue;
                auto key = std::minmax(logical, other);
                auto it = weight.find({key.first, key.second});
                if (it == weight.end())
                    continue;
                if (anchor == kNoQubit || it->second > anchor_weight) {
                    anchor = other;
                    anchor_weight = it->second;
                }
            }
            if (anchor != kNoQubit) {
                Qubit near =
                    nearestFree(map, placement[anchor], occupied);
                if (near != kNoQubit)
                    best = near;
            } else {
                for (Qubit other : order) {
                    if (placement[other] != kNoQubit) {
                        Qubit near =
                            nearestFree(map, placement[other], occupied);
                        if (near != kNoQubit) {
                            best = near;
                            break;
                        }
                    }
                }
            }
        }
        QSYN_ASSERT(best != kNoQubit, "placement ran out of qubits");
        placement[logical] = best;
        occupied[best] = true;
    }
    return placement;
}

std::vector<Qubit>
computePlacement(const Circuit &circuit, const Device &device,
                 PlacementStrategy strategy)
{
    switch (strategy) {
      case PlacementStrategy::Identity:
        return identityPlacement(circuit.numQubits(), device);
      case PlacementStrategy::Greedy:
        return greedyPlacement(circuit, device);
    }
    throw InternalError("unknown placement strategy", __FILE__, __LINE__);
}

Circuit
applyPlacement(const Circuit &circuit, const std::vector<Qubit> &placement,
               const Device &device)
{
    checkFits(circuit.numQubits(), device);
    QSYN_ASSERT(placement.size() >= circuit.numQubits(),
                "placement table too small");
    return circuit.remapped(placement, device.numQubits());
}

} // namespace qsyn::route
