#include "decompose/rebase.hpp"

#include "opt/passes.hpp"

namespace qsyn::decompose {

Circuit
rebaseToCz(const Circuit &circuit)
{
    Circuit out(circuit.numQubits(), circuit.name());
    for (const Gate &g : circuit) {
        if (g.isCnot()) {
            Qubit c = g.controls()[0];
            Qubit t = g.target();
            out.addH(t);
            out.addCz(c, t);
            out.addH(t);
        } else {
            out.add(g);
        }
    }
    // Kill the H pairs created between consecutive CNOTs that share a
    // target (and any that cancel against pre-existing H gates).
    opt::cancelInversePairs(out);
    return out;
}

Circuit
rebaseToCnot(const Circuit &circuit)
{
    Circuit out(circuit.numQubits(), circuit.name());
    for (const Gate &g : circuit) {
        if (g.kind() == GateKind::Z && g.numControls() == 1) {
            Qubit c = g.controls()[0];
            Qubit t = g.target();
            out.addH(t);
            out.addCnot(c, t);
            out.addH(t);
        } else {
            out.add(g);
        }
    }
    opt::cancelInversePairs(out);
    return out;
}

} // namespace qsyn::decompose
