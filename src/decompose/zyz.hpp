/**
 * @file
 * ZYZ (Euler-angle) decomposition of arbitrary 2x2 unitaries:
 * U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta). The workhorse of the
 * generic controlled-gate decomposition of Barenco et al. (paper
 * ref. [11], Lemma 5.1 / the "ABC" construction).
 */

#pragma once

#include "ir/matrix.hpp"

namespace qsyn::decompose {

/** Euler angles for U = e^{i alpha} Rz(beta) Ry(gamma) Rz(delta). */
struct ZyzAngles
{
    double alpha = 0.0;
    double beta = 0.0;
    double gamma = 0.0;
    double delta = 0.0;
};

/** Decompose a unitary 2x2 matrix into ZYZ Euler angles. */
ZyzAngles zyzDecompose(const Mat2 &u);

/** Rebuild the matrix from its angles (for verification). */
Mat2 zyzCompose(const ZyzAngles &angles);

} // namespace qsyn::decompose
