/**
 * @file
 * Lowering of controlled single-qubit gates to {single-qubit, CNOT,
 * MCX} — the "additional decompositions for other controlled gates"
 * the paper targets, realized with the standard constructions of
 * Barenco et al.:
 *
 *  - CZ / CY / CH via basis conjugation of a CNOT,
 *  - controlled phases / rotations via the half-angle ladder,
 *  - multi-controlled diagonal gates via the exact recursion
 *      theta.f.q = theta/2.f + theta/2.q - theta/2.(f xor q),
 *  - anything else via the generic ZYZ "ABC" construction.
 *
 * Multi-controlled cases emit IR-level MCX gates; the decomposition
 * pass lowers those with the Barenco networks afterwards.
 */

#pragma once

#include "ir/circuit.hpp"

namespace qsyn::decompose {

/**
 * Append a lowering of `gate` (a controlled non-X, non-Swap unitary)
 * to `circuit`, producing only uncontrolled single-qubit gates, CNOTs
 * and (for >= 2 controls) MCX gates. Exact — no global-phase slack.
 */
void appendControlledUnitary(Circuit &circuit, const Gate &gate);

/**
 * Append a multi-controlled phase: diag with e^{i theta} on the
 * all-ones state of `wires`. |wires| = 1 degenerates to P(theta).
 */
void appendMcPhase(Circuit &circuit, const std::vector<Qubit> &wires,
                   double theta);

} // namespace qsyn::decompose
