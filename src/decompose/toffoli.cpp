#include "decompose/toffoli.hpp"

#include <utility>

#include "common/errors.hpp"

namespace qsyn::decompose {

void
appendToffoli(Circuit &circuit, Qubit a, Qubit b, Qubit t)
{
    circuit.addH(t);
    circuit.addCnot(b, t);
    circuit.addTdg(t);
    circuit.addCnot(a, t);
    circuit.addT(t);
    circuit.addCnot(b, t);
    circuit.addTdg(t);
    circuit.addCnot(a, t);
    circuit.addT(b);
    circuit.addT(t);
    circuit.addH(t);
    circuit.addCnot(a, b);
    circuit.addT(a);
    circuit.addTdg(b);
    circuit.addCnot(a, b);
}

void
appendReversedCnot(Circuit &circuit, Qubit control, Qubit target)
{
    circuit.addH(control);
    circuit.addH(target);
    circuit.addCnot(target, control);
    circuit.addH(control);
    circuit.addH(target);
}

void
appendCoupledCnot(Circuit &circuit, const CouplingMap *map, Qubit control,
                  Qubit target)
{
    if (map == nullptr || map->hasEdge(control, target)) {
        circuit.addCnot(control, target);
        return;
    }
    if (map->hasEdge(target, control)) {
        appendReversedCnot(circuit, control, target);
        return;
    }
    throw MappingError("qubits q" + std::to_string(control) + " and q" +
                       std::to_string(target) +
                       " are not coupled; reroute with CTR first");
}

void
appendSwap(Circuit &circuit, const CouplingMap *map, Qubit a, Qubit b)
{
    // SWAP is symmetric: orient it along the natively available edge so
    // only the middle CNOT needs reversal (<= 7 gates, the paper's
    // bound) and back-to-back swap/swap-back sequences cancel cleanly.
    if (map != nullptr && !map->hasEdge(a, b) && map->hasEdge(b, a))
        std::swap(a, b);
    appendCoupledCnot(circuit, map, a, b);
    appendCoupledCnot(circuit, map, b, a);
    appendCoupledCnot(circuit, map, a, b);
}

} // namespace qsyn::decompose
