#include "decompose/pass.hpp"

#include <algorithm>

#include "common/errors.hpp"
#include "decompose/controlled.hpp"
#include "decompose/toffoli.hpp"

namespace qsyn::decompose {

namespace {

/** Gates the stage-1 sweep accepts as final. */
bool
isStage1Primitive(const Gate &g)
{
    if (g.kind() == GateKind::Measure || g.kind() == GateKind::Barrier)
        return true;
    if (g.kind() == GateKind::Swap)
        return false;
    if (g.kind() == GateKind::X)
        return g.numControls() <= 2;
    return g.numControls() == 0;
}

/** Tracks the input register and the clean ancillas grown beyond it. */
class AncillaAllocator
{
  public:
    AncillaAllocator(Qubit data_qubits, const DecomposeOptions &options)
        : data_qubits_(data_qubits), options_(options)
    {
    }

    const std::vector<Qubit> &ancillas() const { return ancillas_; }

    /**
     * Ancilla pool for a gate on `used` wires: clean = allocated
     * ancillas off the gate (growing the register by up to `want_clean`
     * wires when permitted), dirty = idle data wires.
     */
    AncillaPool
    poolFor(Circuit &circuit, const std::vector<Qubit> &used,
            size_t want_clean)
    {
        AncillaPool pool;
        auto in_use = [&](Qubit q) {
            return std::find(used.begin(), used.end(), q) != used.end();
        };
        for (Qubit q : ancillas_) {
            if (!in_use(q))
                pool.clean.push_back(q);
        }
        while (pool.clean.size() < want_clean && canGrow(circuit)) {
            Qubit fresh = circuit.numQubits();
            circuit.resize(fresh + 1);
            ancillas_.push_back(fresh);
            pool.clean.push_back(fresh);
        }
        for (Qubit q = 0; q < data_qubits_; ++q) {
            if (!in_use(q))
                pool.dirty.push_back(q);
        }
        return pool;
    }

  private:
    bool
    canGrow(const Circuit &circuit) const
    {
        if (!options_.allowAncillaAllocation)
            return false;
        return options_.maxQubits == 0 ||
               circuit.numQubits() < options_.maxQubits;
    }

    Qubit data_qubits_;
    const DecomposeOptions &options_;
    std::vector<Qubit> ancillas_;
};

} // namespace

DecomposeResult
decomposeToPrimitives(const Circuit &input, const DecomposeOptions &options)
{
    QSYN_ASSERT(options.maxQubits == 0 ||
                    options.maxQubits >= input.numQubits(),
                "qubit cap smaller than the input register");

    AncillaAllocator allocator(input.numQubits(), options);
    Circuit current = input;

    // Stage 1: iterate one-level lowerings to a fixed point. Every
    // rewrite strictly reduces control counts / exotic kinds, so the
    // sweep count is bounded; the guard is belt-and-braces.
    for (int sweep = 0; sweep < 64; ++sweep) {
        bool all_primitive = std::all_of(
            current.begin(), current.end(), isStage1Primitive);
        if (all_primitive)
            break;
        QSYN_ASSERT(sweep < 63, "decomposition failed to converge");

        Circuit next(current.numQubits(), current.name());
        for (const Gate &g : current) {
            if (isStage1Primitive(g)) {
                next.add(g);
                continue;
            }
            if (g.kind() == GateKind::Swap) {
                Qubit a = g.targets()[0];
                Qubit b = g.targets()[1];
                if (g.numControls() == 0) {
                    next.addCnot(a, b);
                    next.addCnot(b, a);
                    next.addCnot(a, b);
                } else {
                    // Fredkin: CNOT(b,a) MCX(C+{a} -> b) CNOT(b,a).
                    next.addCnot(b, a);
                    std::vector<Qubit> cs = g.controls();
                    cs.push_back(a);
                    next.add(Gate::mcx(cs, b));
                    next.addCnot(b, a);
                }
                continue;
            }
            if (g.kind() == GateKind::X) {
                // Generalized Toffoli.
                bool wants_clean =
                    options.mcxStrategy == McxStrategy::Auto ||
                    options.mcxStrategy == McxStrategy::CleanVChain;
                size_t want_clean =
                    wants_clean ? g.numControls() - 2 : 0;
                AncillaPool pool =
                    allocator.poolFor(next, g.qubits(), want_clean);
                appendMcx(next, g.controls(), g.target(), pool,
                          options.mcxStrategy);
                continue;
            }
            appendControlledUnitary(next, g);
        }
        current = std::move(next);
    }

    // Stage 2: Toffolis to the 15-gate Clifford+T network.
    if (options.lowerToffoli) {
        Circuit lowered(current.numQubits(), current.name());
        for (const Gate &g : current) {
            if (g.isToffoli()) {
                appendToffoli(lowered, g.controls()[0], g.controls()[1],
                              g.target());
            } else {
                lowered.add(g);
            }
        }
        current = std::move(lowered);
    }

    DecomposeResult result{std::move(current), allocator.ancillas()};
    return result;
}

} // namespace qsyn::decompose
