/**
 * @file
 * Toffoli and SWAP lowering to the transmon primitive library
 * (Section 4, mapping steps 1, 3 and 4 of the paper):
 *
 *  - the exact 15-gate Clifford+T Toffoli network (2 H, 7 T/T†,
 *    6 CNOT; Nielsen & Chuang Fig. 4.9),
 *  - CNOT orientation reversal via four Hadamards (Fig. 6),
 *  - SWAP as three CNOTs, direction-repaired per the coupling map so a
 *    SWAP costs at most 7 gates (Fig. 3 + the paper's note).
 */

#pragma once

#include "device/coupling_map.hpp"
#include "ir/circuit.hpp"

namespace qsyn::decompose {

/** Append the 15-gate Clifford+T realization of CCX(a, b -> t). */
void appendToffoli(Circuit &circuit, Qubit a, Qubit b, Qubit t);

/** Append the reversed-orientation CNOT: H c; H t; cx t->c; H c; H t
 *  (Fig. 6). */
void appendReversedCnot(Circuit &circuit, Qubit control, Qubit target);

/**
 * Append a CNOT(control -> target) legal under `map`: native when the
 * edge exists, orientation-reversed when only the opposite edge
 * exists. The qubits must be coupled. A null map means all-to-all.
 */
void appendCoupledCnot(Circuit &circuit, const CouplingMap *map,
                       Qubit control, Qubit target);

/**
 * Append SWAP(a, b) as three alternating CNOTs, each repaired for
 * direction per `map` (so 3..7 gates). The qubits must be coupled.
 */
void appendSwap(Circuit &circuit, const CouplingMap *map, Qubit a,
                Qubit b);

} // namespace qsyn::decompose
