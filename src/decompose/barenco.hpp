/**
 * @file
 * Generalized-Toffoli (MCX) decomposition after Barenco et al. (paper
 * ref. [11]): mapping step 3 "generalized Toffoli gates are decomposed
 * into Toffoli cascades".
 *
 * Four networks are provided:
 *  - clean v-chain  (Lemma 7.2 shape): 2k-3 Toffolis, k-2 ancillas
 *    known to be |0> (returned |0>);
 *  - dirty v-chain  (Lemma 7.3 shape): 4(k-2) Toffolis, k-2 borrowed
 *    ancillas in arbitrary states (exactly restored);
 *  - split (Corollary 7.4): one borrowed ancilla suffices; the gate
 *    splits into four half-size MCXs that then fit the v-chains;
 *  - roots (Lemma 7.5): no ancilla at all; recursion through
 *    controlled X^(1/2^j) gates (emitted as controlled-Rx plus a
 *    phase, lowered later by the controlled-gate pass).
 */

#pragma once

#include <vector>

#include "ir/circuit.hpp"

namespace qsyn::decompose {

/** MCX lowering strategy. */
enum class McxStrategy
{
    Auto,        ///< cheapest network the ancilla pool allows
    CleanVChain, ///< requires k-2 clean ancillas
    DirtyVChain, ///< requires k-2 ancillas of any state
    Split,       ///< requires 1 ancilla of any state
    Roots        ///< requires none
};

/** Printable name of a strategy. */
const char *mcxStrategyName(McxStrategy s);

/** Ancillas available to a decomposition at one program point. */
struct AncillaPool
{
    std::vector<Qubit> clean; ///< wires known to hold |0>
    std::vector<Qubit> dirty; ///< wires in arbitrary states
};

/**
 * Append a decomposition of MCX(controls -> target) to `circuit`,
 * using only X / CNOT / CCX gates (plus single-controlled X-roots in
 * the ancilla-free Roots network). Clean ancillas return to |0>,
 * dirty ancillas to their prior states. Throws MappingError when the
 * chosen strategy's ancilla requirement is not met.
 */
void appendMcx(Circuit &circuit, const std::vector<Qubit> &controls,
               Qubit target, const AncillaPool &pool,
               McxStrategy strategy = McxStrategy::Auto);

} // namespace qsyn::decompose
