/**
 * @file
 * The whole-circuit decomposition pass: lowers an arbitrary IR circuit
 * to the transmon primitive library (single-qubit gates + CNOT),
 * implementing mapping steps 3 and 4 of the paper's Section 4.
 *
 * Pipeline position: runs *before* placement/routing, so the emitted
 * CNOTs are still placement-free; the CTR router then legalizes them
 * against the device coupling map.
 */

#pragma once

#include "decompose/barenco.hpp"
#include "ir/circuit.hpp"

namespace qsyn::decompose {

/** Options for the decomposition pass. */
struct DecomposeOptions
{
    /** MCX network selection (Auto picks per ancilla availability). */
    McxStrategy mcxStrategy = McxStrategy::Auto;
    /** Lower Toffolis to the 15-gate Clifford+T network. When false
     *  the output stops at the NCT + rotations level (useful for
     *  staged verification). */
    bool lowerToffoli = true;
    /** Register growth cap (e.g. the device qubit count); 0 = grow as
     *  needed. When the cap forbids clean ancillas the pass falls back
     *  to borrowed-ancilla and ancilla-free networks. */
    Qubit maxQubits = 0;
    /** Permit allocating fresh clean ancilla wires at all. */
    bool allowAncillaAllocation = true;
};

/** Output of the decomposition pass. */
struct DecomposeResult
{
    Circuit circuit;
    /** Ancilla wires allocated beyond the input register (clean at
     *  entry and exit; the verifier projects them onto |0>). */
    std::vector<Qubit> ancillas;
};

/**
 * Lower every gate of `input` to the primitive library. Throws
 * MappingError when an MCX cannot be realized under the options (e.g.
 * explicit CleanVChain with no allocatable ancillas).
 */
DecomposeResult decomposeToPrimitives(const Circuit &input,
                                      const DecomposeOptions &options = {});

} // namespace qsyn::decompose
