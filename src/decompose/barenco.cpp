#include "decompose/barenco.hpp"

#include <algorithm>
#include <numbers>

#include "common/errors.hpp"

namespace qsyn::decompose {

namespace {

/**
 * Controlled X^alpha: X^alpha = e^{i pi alpha / 2} Rx(pi alpha), so the
 * controlled version is P(pi alpha / 2) on the control followed by a
 * controlled Rx(pi alpha).
 */
void
appendControlledXRoot(Circuit &circuit, Qubit control, Qubit target,
                      double alpha)
{
    using std::numbers::pi;
    circuit.add(Gate::p(control, pi * alpha / 2));
    circuit.add(Gate(GateKind::Rx, {control}, {target}, pi * alpha));
}

void
appendCleanVChain(Circuit &circuit, const std::vector<Qubit> &controls,
                  Qubit target, const std::vector<Qubit> &ancillas)
{
    size_t k = controls.size();
    QSYN_ASSERT(k >= 3 && ancillas.size() >= k - 2,
                "clean v-chain needs k-2 ancillas");
    // Compute: a[0] = c0 c1; a[i] = a[i-1] c_{i+1}; fire; uncompute.
    std::vector<Gate> compute;
    compute.push_back(Gate::ccx(controls[0], controls[1], ancillas[0]));
    for (size_t i = 2; i + 1 < k; ++i) {
        compute.push_back(
            Gate::ccx(controls[i], ancillas[i - 2], ancillas[i - 1]));
    }
    for (const Gate &g : compute)
        circuit.add(g);
    circuit.add(Gate::ccx(controls[k - 1], ancillas[k - 3], target));
    for (auto it = compute.rbegin(); it != compute.rend(); ++it)
        circuit.add(*it);
}

void
appendDirtyVChain(Circuit &circuit, const std::vector<Qubit> &controls,
                  Qubit target, const std::vector<Qubit> &ancillas)
{
    size_t k = controls.size();
    QSYN_ASSERT(k >= 3 && ancillas.size() >= k - 2,
                "dirty v-chain needs k-2 ancillas");
    // Barenco Lemma 7.3 ladder, written twice so the borrowed wires are
    // restored. a[i] pairs with controls[i+2]; the target Toffoli is
    // CCX(c_{k-1}, a_{k-3}, target).
    auto down_ladder = [&]() {
        for (size_t i = k - 2; i >= 2; --i) {
            circuit.add(Gate::ccx(controls[i], ancillas[i - 2],
                                  ancillas[i - 1]));
        }
    };
    auto up_ladder = [&]() {
        for (size_t i = 2; i <= k - 2; ++i) {
            circuit.add(Gate::ccx(controls[i], ancillas[i - 2],
                                  ancillas[i - 1]));
        }
    };

    circuit.add(Gate::ccx(controls[k - 1], ancillas[k - 3], target));
    down_ladder();
    circuit.add(Gate::ccx(controls[0], controls[1], ancillas[0]));
    up_ladder();
    circuit.add(Gate::ccx(controls[k - 1], ancillas[k - 3], target));
    down_ladder();
    circuit.add(Gate::ccx(controls[0], controls[1], ancillas[0]));
    up_ladder();
}

void
appendSplit(Circuit &circuit, const std::vector<Qubit> &controls,
            Qubit target, const AncillaPool &pool)
{
    size_t k = controls.size();
    QSYN_ASSERT(k >= 3, "split applies to k >= 3");
    Qubit bridge;
    if (!pool.clean.empty())
        bridge = pool.clean.front();
    else if (!pool.dirty.empty())
        bridge = pool.dirty.front();
    else
        throw MappingError("MCX split decomposition needs one ancilla");

    size_t m = (k + 1) / 2;
    std::vector<Qubit> c1(controls.begin(),
                          controls.begin() + static_cast<ptrdiff_t>(m));
    std::vector<Qubit> c2(controls.begin() + static_cast<ptrdiff_t>(m),
                          controls.end());
    c2.push_back(bridge);

    // Ancilla pools for the sub-gates: everything not touched by the
    // sub-gate is available as a borrowed (dirty) wire.
    AncillaPool pool1; // for MCX(c1 -> bridge)
    pool1.dirty = c2;
    pool1.dirty.pop_back(); // bridge itself
    pool1.dirty.push_back(target);
    AncillaPool pool2; // for MCX(c2 + bridge -> target)
    pool2.dirty = c1;
    for (Qubit q : pool.clean) {
        if (q != bridge) {
            pool1.dirty.push_back(q);
            pool2.dirty.push_back(q);
        }
    }
    for (Qubit q : pool.dirty) {
        if (q != bridge) {
            pool1.dirty.push_back(q);
            pool2.dirty.push_back(q);
        }
    }

    // Lambda(c1->b) Lambda(c2+b->t) Lambda(c1->b) Lambda(c2+b->t):
    // the bridge is borrowed, so its prior state cancels.
    appendMcx(circuit, c1, bridge, pool1, McxStrategy::Auto);
    appendMcx(circuit, c2, target, pool2, McxStrategy::Auto);
    appendMcx(circuit, c1, bridge, pool1, McxStrategy::Auto);
    appendMcx(circuit, c2, target, pool2, McxStrategy::Auto);
}

/**
 * Lambda_k(X^alpha) with no ancilla (Barenco Lemma 7.5 recursion):
 *   C-X^{a/1}? see appendMcx for the top-level alpha = 1 case.
 */
void
appendMcxRoot(Circuit &circuit, const std::vector<Qubit> &controls,
              Qubit target, double alpha)
{
    QSYN_ASSERT(!controls.empty(), "root recursion needs controls");
    if (controls.size() == 1) {
        appendControlledXRoot(circuit, controls[0], target, alpha);
        return;
    }
    Qubit last = controls.back();
    std::vector<Qubit> rest(controls.begin(), controls.end() - 1);

    // MCX(rest -> last) may borrow the (dirty) target wire.
    AncillaPool sub_pool;
    sub_pool.dirty.push_back(target);

    appendControlledXRoot(circuit, last, target, alpha / 2);
    appendMcx(circuit, rest, last, sub_pool, McxStrategy::Auto);
    appendControlledXRoot(circuit, last, target, -alpha / 2);
    appendMcx(circuit, rest, last, sub_pool, McxStrategy::Auto);
    appendMcxRoot(circuit, rest, target, alpha / 2);
}

} // namespace

const char *
mcxStrategyName(McxStrategy s)
{
    switch (s) {
      case McxStrategy::Auto:
        return "auto";
      case McxStrategy::CleanVChain:
        return "clean-v-chain";
      case McxStrategy::DirtyVChain:
        return "dirty-v-chain";
      case McxStrategy::Split:
        return "split";
      case McxStrategy::Roots:
        return "roots";
    }
    return "?";
}

void
appendMcx(Circuit &circuit, const std::vector<Qubit> &controls,
          Qubit target, const AncillaPool &pool, McxStrategy strategy)
{
    size_t k = controls.size();
    if (k == 0) {
        circuit.addX(target);
        return;
    }
    if (k == 1) {
        circuit.addCnot(controls[0], target);
        return;
    }
    if (k == 2) {
        circuit.addCcx(controls[0], controls[1], target);
        return;
    }

    size_t need = k - 2;
    if (strategy == McxStrategy::Auto) {
        if (pool.clean.size() >= need)
            strategy = McxStrategy::CleanVChain;
        else if (pool.clean.size() + pool.dirty.size() >= need)
            strategy = McxStrategy::DirtyVChain;
        else if (!pool.clean.empty() || !pool.dirty.empty())
            strategy = McxStrategy::Split;
        else
            strategy = McxStrategy::Roots;
    }

    switch (strategy) {
      case McxStrategy::CleanVChain: {
        if (pool.clean.size() < need)
            throw MappingError("clean v-chain needs " +
                               std::to_string(need) + " clean ancillas");
        std::vector<Qubit> ancillas(pool.clean.begin(),
                                    pool.clean.begin() +
                                        static_cast<ptrdiff_t>(need));
        appendCleanVChain(circuit, controls, target, ancillas);
        return;
      }
      case McxStrategy::DirtyVChain: {
        std::vector<Qubit> ancillas = pool.dirty;
        for (Qubit q : pool.clean)
            ancillas.push_back(q);
        if (ancillas.size() < need)
            throw MappingError("dirty v-chain needs " +
                               std::to_string(need) + " ancillas");
        ancillas.resize(need);
        appendDirtyVChain(circuit, controls, target, ancillas);
        return;
      }
      case McxStrategy::Split:
        appendSplit(circuit, controls, target, pool);
        return;
      case McxStrategy::Roots: {
        // Lambda_k(X): CV, MCX(rest->last), CV^-1, MCX(rest->last),
        // Lambda_{k-1}(V) with V = X^{1/2}.
        Qubit last = controls.back();
        std::vector<Qubit> rest(controls.begin(), controls.end() - 1);
        AncillaPool sub_pool;
        sub_pool.dirty.push_back(target);
        appendControlledXRoot(circuit, last, target, 0.5);
        appendMcx(circuit, rest, last, sub_pool, McxStrategy::Auto);
        appendControlledXRoot(circuit, last, target, -0.5);
        appendMcx(circuit, rest, last, sub_pool, McxStrategy::Auto);
        appendMcxRoot(circuit, rest, target, 0.5);
        return;
      }
      case McxStrategy::Auto:
        break;
    }
    throw InternalError("unreachable MCX strategy", __FILE__, __LINE__);
}

} // namespace qsyn::decompose
