/**
 * @file
 * Two-qubit basis rebasing: CNOT <-> CZ interchange. The paper's IBM
 * targets expose CNOT as the only two-qubit primitive, but other
 * transmon platforms (the paper's §6: "all transmon-based technology
 * platforms") are CZ-native; these transforms convert a compiled
 * circuit between the two conventions, exactly
 * (CNOT(c,t) = (I (+) H) CZ (I (+) H)).
 */

#pragma once

#include "ir/circuit.hpp"

namespace qsyn::decompose {

/**
 * Replace every CNOT with H-target-conjugated CZ. Adjacent H pairs
 * created between back-to-back CNOTs sharing a target are canceled
 * on the fly, so CNOT ladders rebase with minimal H overhead.
 */
Circuit rebaseToCz(const Circuit &circuit);

/** Replace every CZ (singly-controlled Z) with H-conjugated CNOT. */
Circuit rebaseToCnot(const Circuit &circuit);

} // namespace qsyn::decompose
