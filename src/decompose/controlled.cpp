#include "decompose/controlled.hpp"

#include <numbers>

#include "common/errors.hpp"
#include "decompose/zyz.hpp"

namespace qsyn::decompose {

namespace {

using std::numbers::pi;

/** CP(theta) between two coupled-anywhere wires (exact, 5 gates). */
void
appendCPhase(Circuit &circuit, Qubit c, Qubit t, double theta)
{
    circuit.add(Gate::p(c, theta / 2));
    circuit.addCnot(c, t);
    circuit.add(Gate::p(t, -theta / 2));
    circuit.addCnot(c, t);
    circuit.add(Gate::p(t, theta / 2));
}

/** CRz(theta): the half-angle ladder (exact, 4 gates). */
void
appendCRz(Circuit &circuit, Qubit c, Qubit t, double theta)
{
    circuit.add(Gate::rz(t, theta / 2));
    circuit.addCnot(c, t);
    circuit.add(Gate::rz(t, -theta / 2));
    circuit.addCnot(c, t);
}

/** CRy(theta): same ladder in the Y basis (exact, 4 gates). */
void
appendCRy(Circuit &circuit, Qubit c, Qubit t, double theta)
{
    circuit.add(Gate::ry(t, theta / 2));
    circuit.addCnot(c, t);
    circuit.add(Gate::ry(t, -theta / 2));
    circuit.addCnot(c, t);
}

/** Generic single-controlled U via the ZYZ "ABC" construction. */
void
appendAbc(Circuit &circuit, Qubit c, Qubit t, const Mat2 &u)
{
    ZyzAngles a = zyzDecompose(u);
    // C = Rz((delta-beta)/2); B = Ry(-gamma/2) Rz(-(delta+beta)/2);
    // A = Rz(beta) Ry(gamma/2); then CU = P_c(alpha) A CX B CX C.
    circuit.add(Gate::rz(t, (a.delta - a.beta) / 2));
    circuit.addCnot(c, t);
    circuit.add(Gate::rz(t, -(a.delta + a.beta) / 2));
    circuit.add(Gate::ry(t, -a.gamma / 2));
    circuit.addCnot(c, t);
    circuit.add(Gate::ry(t, a.gamma / 2));
    circuit.add(Gate::rz(t, a.beta));
    if (!approxEqual(a.alpha, 0.0))
        circuit.add(Gate::p(c, a.alpha));
}

/** Generic multi-controlled U: A MCX B MCX C plus a controlled phase. */
void
appendAbcMulti(Circuit &circuit, const std::vector<Qubit> &controls,
               Qubit t, const Mat2 &u)
{
    ZyzAngles a = zyzDecompose(u);
    circuit.add(Gate::rz(t, (a.delta - a.beta) / 2));
    circuit.add(Gate::mcx(controls, t));
    circuit.add(Gate::rz(t, -(a.delta + a.beta) / 2));
    circuit.add(Gate::ry(t, -a.gamma / 2));
    circuit.add(Gate::mcx(controls, t));
    circuit.add(Gate::ry(t, a.gamma / 2));
    circuit.add(Gate::rz(t, a.beta));
    if (!approxEqual(a.alpha, 0.0))
        appendMcPhase(circuit, controls, a.alpha);
}

/** Phase angle for the diagonal library gates. */
double
diagonalAngle(GateKind kind, double param)
{
    switch (kind) {
      case GateKind::Z:
        return pi;
      case GateKind::S:
        return pi / 2;
      case GateKind::Sdg:
        return -pi / 2;
      case GateKind::T:
        return pi / 4;
      case GateKind::Tdg:
        return -pi / 4;
      case GateKind::P:
        return param;
      default:
        throw InternalError("not a pure phase gate", __FILE__, __LINE__);
    }
}

} // namespace

void
appendMcPhase(Circuit &circuit, const std::vector<Qubit> &wires,
              double theta)
{
    QSYN_ASSERT(!wires.empty(), "MC-phase needs at least one wire");
    if (wires.size() == 1) {
        circuit.add(Gate::p(wires[0], theta));
        return;
    }
    if (wires.size() == 2) {
        appendCPhase(circuit, wires[0], wires[1], theta);
        return;
    }
    // theta.f.q = theta/2.f + theta/2.q - theta/2.(f xor q), where
    // f = AND of all wires but the last, q = the last wire.
    Qubit q = wires.back();
    std::vector<Qubit> rest(wires.begin(), wires.end() - 1);
    appendMcPhase(circuit, rest, theta / 2);
    circuit.add(Gate::p(q, theta / 2));
    circuit.add(Gate::mcx(rest, q));
    circuit.add(Gate::p(q, -theta / 2));
    circuit.add(Gate::mcx(rest, q));
}

void
appendControlledUnitary(Circuit &circuit, const Gate &gate)
{
    QSYN_ASSERT(gate.numControls() >= 1,
                "appendControlledUnitary expects a controlled gate");
    QSYN_ASSERT(gate.kind() != GateKind::X &&
                    gate.kind() != GateKind::Swap,
                "X/Swap are lowered by the MCX / swap paths");
    const auto &cs = gate.controls();
    Qubit t = gate.target();

    if (gate.kind() == GateKind::I)
        return;

    // Basis-conjugation cases: turn the base into X around an MCX.
    auto conjugated = [&](const Gate &pre, const Gate &post) {
        circuit.add(pre);
        if (cs.size() == 1)
            circuit.addCnot(cs[0], t);
        else
            circuit.add(Gate::mcx(cs, t));
        circuit.add(post);
    };

    switch (gate.kind()) {
      case GateKind::Z:
        if (cs.size() == 1) {
            circuit.addH(t);
            circuit.addCnot(cs[0], t);
            circuit.addH(t);
        } else {
            conjugated(Gate::h(t), Gate::h(t));
        }
        return;
      case GateKind::Y:
        // S X S^dagger = Y.
        conjugated(Gate::sdg(t), Gate::s(t));
        return;
      case GateKind::H:
        // Ry(-pi/4) X Ry(pi/4) = H (conjugation rotates the X axis by
        // -pi/4 about Y onto the Hadamard axis).
        conjugated(Gate::ry(t, pi / 4), Gate::ry(t, -pi / 4));
        return;
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::P: {
        std::vector<Qubit> wires = cs;
        wires.push_back(t);
        appendMcPhase(circuit, wires,
                      diagonalAngle(gate.kind(), gate.param()));
        return;
      }
      case GateKind::Rz: {
        if (cs.size() == 1) {
            appendCRz(circuit, cs[0], t, gate.param());
            return;
        }
        // Rz(theta) = e^{-i theta/2} P(theta): a multi-controlled
        // phase on C+{t} plus a compensating phase on C alone.
        std::vector<Qubit> wires = cs;
        wires.push_back(t);
        appendMcPhase(circuit, wires, gate.param());
        appendMcPhase(circuit, cs, -gate.param() / 2);
        return;
      }
      case GateKind::Rx:
        // Rx = H Rz H.
        circuit.addH(t);
        appendControlledUnitary(
            circuit, Gate(GateKind::Rz, cs, {t}, gate.param()));
        circuit.addH(t);
        return;
      case GateKind::Ry:
        if (cs.size() == 1) {
            appendCRy(circuit, cs[0], t, gate.param());
            return;
        }
        if (cs.size() >= 2) {
            appendAbcMulti(circuit, cs, t, gate.baseMatrix());
            return;
        }
        return;
      default:
        break;
    }

    // Generic fallback.
    if (cs.size() == 1)
        appendAbc(circuit, cs[0], t, gate.baseMatrix());
    else
        appendAbcMulti(circuit, cs, t, gate.baseMatrix());
}

} // namespace qsyn::decompose
