#include "decompose/zyz.hpp"

#include <cmath>

#include "common/errors.hpp"

namespace qsyn::decompose {

ZyzAngles
zyzDecompose(const Mat2 &u)
{
    // U = e^{i alpha} [ e^{-i(beta+delta)/2} cos(g/2)
    //                   -e^{-i(beta-delta)/2} sin(g/2)
    //                   e^{ i(beta-delta)/2} sin(g/2)
    //                   e^{ i(beta+delta)/2} cos(g/2) ]  with g = gamma.
    ZyzAngles a;
    double c = std::abs(u.at(0, 0));
    double s = std::abs(u.at(1, 0));
    a.gamma = 2.0 * std::atan2(s, c);

    // Phases of the entries; guard the degenerate cos/sin = 0 cases.
    double phase00 = std::arg(u.at(0, 0));
    double phase10 = std::arg(u.at(1, 0));
    double phase11 = std::arg(u.at(1, 1));

    if (c > kEps && s > kEps) {
        // alpha - (beta+delta)/2 = phase00 ; alpha + (beta-delta)/2 =
        // phase10 ; alpha + (beta+delta)/2 = phase11.
        a.alpha = 0.5 * (phase00 + phase11);
        double bpd = phase11 - phase00; // beta + delta
        double bmd = 2.0 * (phase10 - a.alpha);
        a.beta = 0.5 * (bpd + bmd);
        a.delta = 0.5 * (bpd - bmd);
    } else if (c > kEps) {
        // Diagonal: gamma = 0; only beta+delta matters.
        a.alpha = 0.5 * (phase00 + phase11);
        a.beta = phase11 - phase00;
        a.delta = 0.0;
    } else {
        // Anti-diagonal: gamma = pi; only beta-delta matters.
        double phase01 = std::arg(u.at(0, 1));
        a.alpha = 0.5 * (phase10 + phase01) + M_PI / 2.0;
        a.beta = phase10 - a.alpha;
        a.beta *= 2.0;
        a.delta = 0.0;
        a.gamma = M_PI;
    }
    return a;
}

Mat2
zyzCompose(const ZyzAngles &a)
{
    Mat2 rz1 = baseMatrix(GateKind::Rz, a.beta);
    Mat2 ry = baseMatrix(GateKind::Ry, a.gamma);
    Mat2 rz2 = baseMatrix(GateKind::Rz, a.delta);
    Mat2 m = mul(rz1, mul(ry, rz2));
    Cplx phase = std::polar(1.0, a.alpha);
    for (Cplx &e : m.e)
        e *= phase;
    return m;
}

} // namespace qsyn::decompose
