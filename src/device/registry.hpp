/**
 * @file
 * The built-in device library: the five public IBM Q machines of the
 * paper's Table 2 (coupling maps transcribed verbatim from Section 3),
 * the unconstrained simulator, and the proposed 96-qubit
 * ibmqx5-inspired machine of Fig. 7.
 */

#pragma once

#include <vector>

#include "device/device.hpp"

namespace qsyn {

/** @name Individual device builders. */
/// @{
Device makeIbmqx2();    ///< 5-qubit Yorktown
Device makeIbmqx3();    ///< 16-qubit (retired)
Device makeIbmqx4();    ///< 5-qubit Tenerife
Device makeIbmqx5();    ///< 16-qubit Rueschlikon (retired)
Device makeIbmq16();    ///< 14-qubit Melbourne ("ibmq_16")
/// @}

/**
 * The proposed 96-qubit transmon machine (Fig. 7): five rows of
 * 20/20/20/20/16 qubits; every row is a directed chain (alternating
 * CNOT orientation) and vertical rungs join adjacent rows every four
 * columns, mirroring the ladder style of ibmqx5.
 */
Device makeProposed96();

/**
 * A 16-qubit directed line (0→1→…→15 with alternating CNOT
 * orientation): the linear-nearest-neighbor topology of the LNN
 * synthesis literature, and the sparsest connected map — worst case
 * for swap-back routing, best case for lookahead routers.
 */
Device makeLine16();

/**
 * A 4×4 grid ("grid_16"): row-major qubits with horizontal and
 * vertical nearest-neighbor couplings, CNOT direction alternating
 * checkerboard-style. The standard square-lattice layout-synthesis
 * benchmark topology.
 */
Device makeGrid16();

/**
 * All built-in physical devices, in the paper's Table 2 order followed
 * by the 96-qubit machine and the synthetic line/grid topologies.
 */
std::vector<Device> allBuiltinDevices();

/** The five IBM devices used in Tables 3-6 (no 96-qubit machine). */
std::vector<Device> ibmTableDevices();

/**
 * Look up a built-in device by name ("ibmqx2" ... "ibmq_16",
 * "proposed_96"); "simulator" requires a qubit count and is not served
 * here. Throws UserError for unknown names.
 */
Device builtinDevice(const std::string &name);

} // namespace qsyn
