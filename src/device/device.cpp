#include "device/device.hpp"

#include <sstream>

#include "common/errors.hpp"
#include "common/strings.hpp"

namespace qsyn {

Device::Device(std::string name, Qubit num_qubits, CouplingMap coupling,
               bool fully_connected)
    : name_(std::move(name)), num_qubits_(num_qubits),
      coupling_(std::move(coupling)), fully_connected_(fully_connected)
{
    QSYN_ASSERT(coupling_.numQubits() == num_qubits_,
                "coupling map size disagrees with device size");
}

Device
Device::simulator(Qubit num_qubits)
{
    return Device("simulator", num_qubits,
                  CouplingMap::fullyConnected(num_qubits),
                  /*fully_connected=*/true);
}

double
Device::couplingComplexity() const
{
    if (fully_connected_ || num_qubits_ < 2)
        return 1.0;
    double pairs = static_cast<double>(num_qubits_) * (num_qubits_ - 1);
    return static_cast<double>(coupling_.couplingCount()) / pairs;
}

bool
Device::inNativeLibrary(GateKind kind, size_t num_controls)
{
    switch (kind) {
      case GateKind::I:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
      case GateKind::P:
        return num_controls == 0;
      case GateKind::X:
        return num_controls <= 1;
      case GateKind::Measure:
      case GateKind::Barrier:
        return num_controls == 0;
      case GateKind::Swap:
        return false;
    }
    return false;
}

bool
Device::supportsGate(const Gate &gate) const
{
    for (Qubit q : gate.qubits()) {
        if (q >= num_qubits_)
            return false;
    }
    if (!inNativeLibrary(gate.kind(), gate.numControls()))
        return false;
    if (gate.isCnot() && !fully_connected_)
        return coupling_.hasEdge(gate.controls()[0], gate.target());
    return true;
}

void
Device::setCalibration(Calibration calibration)
{
    QSYN_ASSERT(calibration.numQubits() == num_qubits_,
                "calibration size disagrees with device size");
    calibration_ = std::move(calibration);
}

void
Device::attachSyntheticCalibration(std::uint64_t seed)
{
    std::vector<std::pair<Qubit, Qubit>> edges;
    for (Qubit c = 0; c < num_qubits_; ++c) {
        for (Qubit t : coupling_.targetsOf(c))
            edges.emplace_back(c, t);
    }
    setCalibration(Calibration::synthetic(num_qubits_, edges, seed));
}

std::string
Device::summary() const
{
    std::ostringstream os;
    os << name_ << " (" << num_qubits_ << " qubits, "
       << coupling_.couplingCount() << " couplings, complexity "
       << formatNumber(couplingComplexity(), 6) << ")";
    return os.str();
}

} // namespace qsyn
