#include "device/fidelity.hpp"

#include <cmath>

#include "common/errors.hpp"

namespace qsyn {

double
negLogFidelity(const Circuit &circuit, const Device &device)
{
    const Calibration *cal = device.calibration();
    if (cal == nullptr) {
        throw UserError("device '" + device.name() +
                        "' has no calibration data");
    }
    double cost = 0.0;
    for (const Gate &g : circuit) {
        switch (g.kind()) {
          case GateKind::Barrier:
          case GateKind::I:
            continue;
          case GateKind::Measure:
            cost += -std::log1p(-cal->readoutError(g.target()));
            continue;
          default:
            break;
        }
        if (g.isCnot()) {
            cost += -std::log1p(
                -cal->twoQubitError(g.controls()[0], g.target()));
        } else {
            QSYN_ASSERT(g.numQubits() == 1,
                        "fidelity estimation expects a primitive-level "
                        "circuit");
            cost += -std::log1p(-cal->singleQubitError(g.target()));
        }
    }
    return cost;
}

double
successProbability(const Circuit &circuit, const Device &device)
{
    return std::exp(-negLogFidelity(circuit, device));
}

} // namespace qsyn
