#include "device/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "common/errors.hpp"

namespace qsyn {

namespace {

double
clampError(double error)
{
    return std::clamp(error, 0.0, 0.5);
}

/** Log-uniform jitter in [base/4, base*4). */
double
jitter(double base, Rng &rng)
{
    double exponent = rng.uniform() * 4.0 - 2.0; // [-2, 2)
    return base * std::exp2(exponent);
}

} // namespace

Calibration::Calibration(Qubit num_qubits, double default_1q_error,
                         double default_2q_error,
                         double default_readout_error)
    : num_qubits_(num_qubits),
      default_2q_error_(clampError(default_2q_error)),
      single_error_(num_qubits, clampError(default_1q_error)),
      readout_error_(num_qubits, clampError(default_readout_error))
{
}

Calibration
Calibration::synthetic(Qubit num_qubits,
                       const std::vector<std::pair<Qubit, Qubit>> &edges,
                       std::uint64_t seed)
{
    Calibration cal(num_qubits);
    Rng rng(seed);
    for (Qubit q = 0; q < num_qubits; ++q) {
        cal.setSingleQubitError(q, jitter(1e-3, rng));
        cal.setReadoutError(q, jitter(2e-2, rng));
    }
    for (const auto &[c, t] : edges)
        cal.setTwoQubitError(c, t, jitter(1e-2, rng));
    return cal;
}

double
Calibration::singleQubitError(Qubit q) const
{
    QSYN_ASSERT(q < num_qubits_, "qubit outside calibration");
    return single_error_[q];
}

void
Calibration::setSingleQubitError(Qubit q, double error)
{
    QSYN_ASSERT(q < num_qubits_, "qubit outside calibration");
    single_error_[q] = clampError(error);
}

double
Calibration::twoQubitError(Qubit control, Qubit target) const
{
    auto it = edge_error_.find(edgeKey(control, target));
    if (it != edge_error_.end())
        return it->second;
    it = edge_error_.find(edgeKey(target, control));
    if (it != edge_error_.end())
        return it->second;
    return default_2q_error_;
}

void
Calibration::setTwoQubitError(Qubit control, Qubit target, double error)
{
    QSYN_ASSERT(control < num_qubits_ && target < num_qubits_,
                "qubit outside calibration");
    edge_error_[edgeKey(control, target)] = clampError(error);
}

double
Calibration::readoutError(Qubit q) const
{
    QSYN_ASSERT(q < num_qubits_, "qubit outside calibration");
    return readout_error_[q];
}

void
Calibration::setReadoutError(Qubit q, double error)
{
    QSYN_ASSERT(q < num_qubits_, "qubit outside calibration");
    readout_error_[q] = clampError(error);
}

} // namespace qsyn
