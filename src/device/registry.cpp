#include "device/registry.hpp"

#include <initializer_list>
#include <utility>

#include "common/errors.hpp"

namespace qsyn {

namespace {

using DictEntry = std::pair<Qubit, std::initializer_list<Qubit>>;

CouplingMap
fromDict(Qubit num_qubits, std::initializer_list<DictEntry> dict)
{
    CouplingMap map(num_qubits);
    for (const auto &[control, targets] : dict) {
        for (Qubit t : targets)
            map.addEdge(control, t);
    }
    return map;
}

} // namespace

Device
makeIbmqx2()
{
    // ibmqx2 = {0:[1,2], 1:[2], 3:[2,4], 4:[2]}
    return Device("ibmqx2", 5,
                  fromDict(5, {{0, {1, 2}}, {1, {2}}, {3, {2, 4}},
                               {4, {2}}}));
}

Device
makeIbmqx3()
{
    // ibmqx3 = {0:[1], 1:[2], 2:[3], 3:[14], 4:[3,5], 6:[7,11], 7:[10],
    //           8:[7], 9:[8,10], 11:[10], 12:[5,11,13], 13:[4,14],
    //           15:[0,14]}
    return Device("ibmqx3", 16,
                  fromDict(16, {{0, {1}},
                                {1, {2}},
                                {2, {3}},
                                {3, {14}},
                                {4, {3, 5}},
                                {6, {7, 11}},
                                {7, {10}},
                                {8, {7}},
                                {9, {8, 10}},
                                {11, {10}},
                                {12, {5, 11, 13}},
                                {13, {4, 14}},
                                {15, {0, 14}}}));
}

Device
makeIbmqx4()
{
    // ibmqx4 = {1:[0], 2:[0,1], 3:[2,4], 4:[2]}
    return Device("ibmqx4", 5,
                  fromDict(5, {{1, {0}}, {2, {0, 1}}, {3, {2, 4}},
                               {4, {2}}}));
}

Device
makeIbmqx5()
{
    // ibmqx5 = {1:[0,2], 2:[3], 3:[4,14], 5:[4], 6:[5,7,11], 7:[10],
    //           8:[7], 9:[8,10], 11:[10], 12:[5,11,13], 13:[4,14],
    //           15:[0,2,14]}
    return Device("ibmqx5", 16,
                  fromDict(16, {{1, {0, 2}},
                                {2, {3}},
                                {3, {4, 14}},
                                {5, {4}},
                                {6, {5, 7, 11}},
                                {7, {10}},
                                {8, {7}},
                                {9, {8, 10}},
                                {11, {10}},
                                {12, {5, 11, 13}},
                                {13, {4, 14}},
                                {15, {0, 2, 14}}}));
}

Device
makeIbmq16()
{
    // ibmq_16 = {1:[0,2], 2:[3], 4:[3,10], 5:[4,6,9], 6:[8], 7:[8],
    //            9:[8,10], 11:[3,10,12], 12:[2], 13:[1,12]}
    return Device("ibmq_16", 14,
                  fromDict(14, {{1, {0, 2}},
                                {2, {3}},
                                {4, {3, 10}},
                                {5, {4, 6, 9}},
                                {6, {8}},
                                {7, {8}},
                                {9, {8, 10}},
                                {11, {3, 10, 12}},
                                {12, {2}},
                                {13, {1, 12}}}));
}

Device
makeProposed96()
{
    // Five rows: qubits [0,20), [20,40), [40,60), [60,80), [80,96).
    constexpr Qubit kRowStarts[] = {0, 20, 40, 60, 80, 96};
    constexpr int kRows = 5;
    CouplingMap map(96);

    // Horizontal chains with alternating CNOT orientation, like the
    // ibmqx5 ladder.
    for (int row = 0; row < kRows; ++row) {
        for (Qubit q = kRowStarts[row]; q + 1 < kRowStarts[row + 1]; ++q) {
            if (q % 2 == 0)
                map.addEdge(q, q + 1);
            else
                map.addEdge(q + 1, q);
        }
    }

    // Vertical rungs every four columns between adjacent rows,
    // direction alternating by row.
    for (int row = 0; row + 1 < kRows; ++row) {
        Qubit row_len = kRowStarts[row + 1] - kRowStarts[row];
        Qubit next_len = kRowStarts[row + 2] - kRowStarts[row + 1];
        for (Qubit col = 0; col < row_len && col < next_len; col += 4) {
            Qubit upper = kRowStarts[row] + col;
            Qubit lower = kRowStarts[row + 1] + col;
            if (row % 2 == 0)
                map.addEdge(upper, lower);
            else
                map.addEdge(lower, upper);
        }
    }

    Device device("proposed_96", 96, std::move(map));
    QSYN_ASSERT(device.coupling().isConnected(),
                "proposed 96-qubit topology must be connected");
    return device;
}

Device
makeLine16()
{
    CouplingMap map(16);
    for (Qubit q = 0; q + 1 < 16; ++q) {
        if (q % 2 == 0)
            map.addEdge(q, q + 1);
        else
            map.addEdge(q + 1, q);
    }
    return Device("line_16", 16, std::move(map));
}

Device
makeGrid16()
{
    constexpr Qubit kSide = 4;
    CouplingMap map(16);
    for (Qubit r = 0; r < kSide; ++r) {
        for (Qubit c = 0; c < kSide; ++c) {
            Qubit q = r * kSide + c;
            // Checkerboard orientation: even cells drive their right
            // and down neighbors, odd cells are driven by them.
            if (c + 1 < kSide) {
                if ((r + c) % 2 == 0)
                    map.addEdge(q, q + 1);
                else
                    map.addEdge(q + 1, q);
            }
            if (r + 1 < kSide) {
                if ((r + c) % 2 == 0)
                    map.addEdge(q, q + kSide);
                else
                    map.addEdge(q + kSide, q);
            }
        }
    }
    Device device("grid_16", 16, std::move(map));
    QSYN_ASSERT(device.coupling().isConnected(),
                "grid_16 topology must be connected");
    return device;
}

std::vector<Device>
allBuiltinDevices()
{
    return {makeIbmqx2(),  makeIbmqx3(),   makeIbmqx4(),
            makeIbmqx5(),  makeIbmq16(),   makeProposed96(),
            makeLine16(),  makeGrid16()};
}

std::vector<Device>
ibmTableDevices()
{
    return {makeIbmqx2(), makeIbmqx3(), makeIbmqx4(), makeIbmqx5(),
            makeIbmq16()};
}

Device
builtinDevice(const std::string &name)
{
    for (Device &d : allBuiltinDevices()) {
        if (d.name() == name)
            return d;
    }
    throw UserError("unknown device '" + name + "'");
}

} // namespace qsyn
