/**
 * @file
 * CNOT coupling maps (Section 3 of the paper).
 *
 * A coupling map is the set of *directed* (control -> target) pairs on
 * which the machine can natively execute a CNOT. The paper represents
 * it as a dictionary {control: [targets]}; this class stores the same
 * relation and also exposes the undirected adjacency view used by the
 * CTR router (direction is repairable with four Hadamards, Fig. 6).
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace qsyn {

/** Directed CNOT availability between physical qubits. */
class CouplingMap
{
  public:
    /** Empty map over `num_qubits` physical qubits. */
    explicit CouplingMap(Qubit num_qubits = 0);

    /** Map where every ordered pair is available (simulator). */
    static CouplingMap fullyConnected(Qubit num_qubits);

    Qubit numQubits() const { return num_qubits_; }

    /** Allow a native CNOT with `control` as control, `target` as
     *  target. Adding twice is idempotent. */
    void addEdge(Qubit control, Qubit target);

    /** True when CNOT(control -> target) is natively available. */
    bool hasEdge(Qubit control, Qubit target) const;

    /** True when the pair is coupled in either direction. */
    bool hasUndirectedEdge(Qubit a, Qubit b) const;

    /** Directed targets reachable from `control`. */
    const std::vector<Qubit> &targetsOf(Qubit control) const;

    /** Undirected neighbors of `q` (sorted, unique). */
    const std::vector<Qubit> &neighborsOf(Qubit q) const;

    /** Number of directed couplings (the numerator of Eqn. for
     *  coupling complexity). */
    size_t couplingCount() const { return coupling_count_; }

    /** True when the undirected graph is connected (ignoring qubits
     *  with no couplings only if the map is empty). */
    bool isConnected() const;

    /**
     * Shortest undirected path from `from` to `to` (inclusive of both
     * endpoints); empty when unreachable. BFS, so minimal SWAP count.
     */
    std::vector<Qubit> shortestPath(Qubit from, Qubit to) const;

    /**
     * Shortest undirected path from `from` to any *neighbor* of `to`
     * (the CTR query: move the control next to the target). The path
     * includes `from` and ends at the neighbor; when `from` is already
     * adjacent to `to` the path is just {from}. Empty when unreachable.
     */
    std::vector<Qubit> shortestPathToNeighbor(Qubit from, Qubit to) const;

    /**
     * Minimum-weight variant of shortestPathToNeighbor (Dijkstra):
     * minimizes the sum of `edge_weight(a, b)` over path edges plus
     * `goal_weight(n)` at the chosen neighbor n of `to`. Used by the
     * fidelity-aware router. Weights must be non-negative.
     */
    std::vector<Qubit> weightedPathToNeighbor(
        Qubit from, Qubit to,
        const std::function<double(Qubit, Qubit)> &edge_weight,
        const std::function<double(Qubit)> &goal_weight) const;

    /** Render as the paper's dictionary format:
     *  {0: [1, 2], 1: [2], ...}. */
    std::string toDictString() const;

  private:
    Qubit num_qubits_;
    size_t coupling_count_ = 0;
    std::vector<std::vector<Qubit>> targets_;   // directed adjacency
    std::vector<std::vector<Qubit>> neighbors_; // undirected adjacency
};

} // namespace qsyn
