/**
 * @file
 * Custom device loader: "the tool already supports the addition of
 * coupling maps so that new devices can be targeted" (paper, Section 6).
 *
 * The text format is the paper's dictionary, one control per line:
 *
 *     # comment
 *     device my_machine 5
 *     0: 1 2
 *     1: 2
 *     3: 2 4
 *     4: 2
 *
 * The `device <name> <num_qubits>` header is mandatory; every following
 * non-comment line is `<control>: <target> [<target>...]`.
 */

#pragma once

#include <iosfwd>
#include <string>

#include "device/device.hpp"

namespace qsyn {

/** Parse a device description from a stream. Throws ParseError. */
Device parseDevice(std::istream &input);

/** Parse a device description from a string. Throws ParseError. */
Device parseDeviceString(const std::string &text);

/** Load a device description from a file. Throws UserError. */
Device loadDeviceFile(const std::string &path);

/** Serialize a device back into the loader's text format. */
std::string deviceToText(const Device &device);

} // namespace qsyn
