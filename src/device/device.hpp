/**
 * @file
 * Target device model: name, qubit count, native gate library, and
 * coupling map, plus the paper's "coupling complexity" metric
 * (Section 3, Table 2).
 */

#pragma once

#include <optional>
#include <string>

#include "device/calibration.hpp"
#include "device/coupling_map.hpp"
#include "ir/gate.hpp"

namespace qsyn {

/** A technology target the compiler can map circuits onto. */
class Device
{
  public:
    /**
     * Create a device. `fully_connected` marks simulator-style targets
     * with no placement restrictions; their coupling complexity is 1
     * by definition and CNOTs never need rerouting or reversal.
     */
    Device(std::string name, Qubit num_qubits, CouplingMap coupling,
           bool fully_connected = false);

    /** Simulator target: any gate anywhere. */
    static Device simulator(Qubit num_qubits);

    const std::string &name() const { return name_; }
    Qubit numQubits() const { return num_qubits_; }
    const CouplingMap &coupling() const { return coupling_; }
    bool isFullyConnected() const { return fully_connected_; }

    /**
     * Coupling complexity: available couplings divided by the n(n-1)
     * ordered qubit pairs. 1.0 for fully connected targets, -> 0 for
     * sparsely coupled machines (Table 2).
     */
    double couplingComplexity() const;

    /**
     * True when the device can natively execute `gate`: single-qubit
     * gates from the transmon library anywhere, CNOT only along a
     * coupling-map edge (in the stored direction).
     */
    bool supportsGate(const Gate &gate) const;

    /**
     * True when `kind` with `num_controls` controls is in the native
     * library at all (ignoring placement): the IBM transmon library is
     * {X, Y, Z, H, S, S†, T, T†, Rx, Ry, Rz, P, CNOT, measure}.
     */
    static bool inNativeLibrary(GateKind kind, size_t num_controls);

    /** One-line summary, e.g. "ibmqx4 (5 qubits, 6 couplings,
     *  complexity 0.3)". */
    std::string summary() const;

    /** @name Calibration (optional; see calibration.hpp). */
    /// @{
    /** Attach measured/synthetic error rates. */
    void setCalibration(Calibration calibration);
    /** Attach a deterministic synthetic calibration over this
     *  device's couplings (seeded). */
    void attachSyntheticCalibration(std::uint64_t seed);
    /** Calibration data, or null when none is attached. */
    const Calibration *calibration() const
    {
        return calibration_ ? &*calibration_ : nullptr;
    }
    /// @}

  private:
    std::string name_;
    Qubit num_qubits_;
    CouplingMap coupling_;
    bool fully_connected_;
    std::optional<Calibration> calibration_;
};

} // namespace qsyn
