#include "device/loader.hpp"

#include <fstream>
#include <sstream>

#include "common/errors.hpp"
#include "common/strings.hpp"

namespace qsyn {

namespace {

Qubit
parseQubitIndex(const std::string &token, Qubit num_qubits, int line_no)
{
    size_t pos = 0;
    unsigned long value = 0;
    try {
        value = std::stoul(token, &pos);
    } catch (const std::exception &) {
        throw ParseError("expected a qubit index, got '" + token + "'",
                         line_no, 0);
    }
    if (pos != token.size()) {
        throw ParseError("trailing characters after qubit index '" +
                             token + "'",
                         line_no, 0);
    }
    if (value >= num_qubits) {
        throw ParseError("qubit index " + token +
                             " exceeds device size " +
                             std::to_string(num_qubits),
                         line_no, 0);
    }
    return static_cast<Qubit>(value);
}

} // namespace

Device
parseDevice(std::istream &input)
{
    std::string line;
    int line_no = 0;
    std::string name;
    Qubit num_qubits = 0;
    bool have_header = false;
    CouplingMap map(0);

    while (std::getline(input, line)) {
        ++line_no;
        std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;
        if (!have_header) {
            auto fields = splitFields(text);
            if (fields.size() != 3 || fields[0] != "device") {
                throw ParseError(
                    "expected header 'device <name> <num_qubits>'",
                    line_no, 0);
            }
            name = fields[1];
            try {
                num_qubits = static_cast<Qubit>(std::stoul(fields[2]));
            } catch (const std::exception &) {
                throw ParseError("bad qubit count '" + fields[2] + "'",
                                 line_no, 0);
            }
            if (num_qubits == 0)
                throw ParseError("device must have at least one qubit",
                                 line_no, 0);
            map = CouplingMap(num_qubits);
            have_header = true;
            continue;
        }
        auto colon = text.find(':');
        if (colon == std::string::npos) {
            throw ParseError("expected '<control>: <targets...>'",
                             line_no, 0);
        }
        Qubit control = parseQubitIndex(trim(text.substr(0, colon)),
                                        num_qubits, line_no);
        auto targets = splitFields(text.substr(colon + 1), " \t,");
        if (targets.empty()) {
            throw ParseError("control with no targets", line_no, 0);
        }
        for (const std::string &t : targets) {
            Qubit target = parseQubitIndex(t, num_qubits, line_no);
            if (target == control) {
                throw ParseError("self-coupling on qubit " + t, line_no,
                                 0);
            }
            map.addEdge(control, target);
        }
    }
    if (!have_header)
        throw ParseError("missing 'device' header", line_no, 0);
    return Device(std::move(name), num_qubits, std::move(map));
}

Device
parseDeviceString(const std::string &text)
{
    std::istringstream is(text);
    return parseDevice(is);
}

Device
loadDeviceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw UserError("cannot open device file '" + path + "'");
    return parseDevice(in);
}

std::string
deviceToText(const Device &device)
{
    std::ostringstream os;
    os << "device " << device.name() << " " << device.numQubits() << "\n";
    const CouplingMap &map = device.coupling();
    for (Qubit c = 0; c < device.numQubits(); ++c) {
        const auto &targets = map.targetsOf(c);
        if (targets.empty())
            continue;
        os << c << ":";
        for (Qubit t : targets)
            os << " " << t;
        os << "\n";
    }
    return os.str();
}

} // namespace qsyn
