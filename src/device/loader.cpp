#include "device/loader.hpp"

#include <fstream>
#include <sstream>

#include "common/errors.hpp"
#include "common/numeric.hpp"
#include "common/strings.hpp"

namespace qsyn {

namespace {

/** A whitespace-delimited token plus its 1-based column in the line. */
struct Field
{
    std::string text;
    int column = 0;
};

bool
isSeparator(char c, const char *seps)
{
    for (const char *s = seps; *s; ++s)
        if (*s == c)
            return true;
    return false;
}

/**
 * Split `line[from, to)` into tokens, remembering where each one
 * starts so diagnostics can point at the offending column rather than
 * the start of the line.
 */
std::vector<Field>
fieldsWithColumns(const std::string &line, size_t from, size_t to,
                  const char *seps = " \t")
{
    std::vector<Field> fields;
    size_t i = from;
    while (i < to) {
        while (i < to && isSeparator(line[i], seps))
            ++i;
        if (i >= to)
            break;
        size_t start = i;
        while (i < to && !isSeparator(line[i], seps))
            ++i;
        fields.push_back({line.substr(start, i - start),
                          static_cast<int>(start) + 1});
    }
    return fields;
}

Qubit
parseQubitIndex(const Field &token, Qubit num_qubits, int line_no)
{
    unsigned long long value = 0;
    if (!parseUnsigned(token.text, &value)) {
        throw ParseError("expected a qubit index, got '" + token.text +
                             "'",
                         line_no, token.column);
    }
    if (value >= num_qubits) {
        throw ParseError("qubit index " + token.text +
                             " exceeds device size " +
                             std::to_string(num_qubits),
                         line_no, token.column);
    }
    return static_cast<Qubit>(value);
}

} // namespace

Device
parseDevice(std::istream &input)
{
    std::string line;
    int line_no = 0;
    std::string name;
    Qubit num_qubits = 0;
    bool have_header = false;
    CouplingMap map(0);

    while (std::getline(input, line)) {
        ++line_no;
        std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;
        if (!have_header) {
            auto fields = fieldsWithColumns(line, 0, line.size());
            if (fields.size() != 3 || fields[0].text != "device") {
                throw ParseError(
                    "expected header 'device <name> <num_qubits>'",
                    line_no, fields.empty() ? 0 : fields[0].column);
            }
            name = fields[1].text;
            unsigned long long count = 0;
            if (!parseUnsigned(fields[2].text, &count) ||
                count > kMaxRegisterWidth) {
                throw ParseError("bad qubit count '" + fields[2].text +
                                     "'",
                                 line_no, fields[2].column);
            }
            num_qubits = static_cast<Qubit>(count);
            if (num_qubits == 0)
                throw ParseError("device must have at least one qubit",
                                 line_no, fields[2].column);
            map = CouplingMap(num_qubits);
            have_header = true;
            continue;
        }
        auto colon = line.find(':');
        if (colon == std::string::npos) {
            auto fields = fieldsWithColumns(line, 0, line.size());
            throw ParseError("expected '<control>: <targets...>'",
                             line_no,
                             fields.empty() ? 0 : fields[0].column);
        }
        auto control_fields = fieldsWithColumns(line, 0, colon);
        if (control_fields.size() != 1) {
            throw ParseError(
                "expected a single qubit index before ':'", line_no,
                control_fields.empty()
                    ? static_cast<int>(colon) + 1
                    : control_fields.back().column);
        }
        Qubit control =
            parseQubitIndex(control_fields[0], num_qubits, line_no);
        auto targets =
            fieldsWithColumns(line, colon + 1, line.size(), " \t,");
        if (targets.empty()) {
            throw ParseError("control with no targets", line_no,
                             static_cast<int>(colon) + 1);
        }
        for (const Field &t : targets) {
            Qubit target = parseQubitIndex(t, num_qubits, line_no);
            if (target == control) {
                throw ParseError("self-coupling on qubit " + t.text,
                                 line_no, t.column);
            }
            map.addEdge(control, target);
        }
    }
    if (!have_header)
        throw ParseError("missing 'device' header", line_no, 0);
    return Device(std::move(name), num_qubits, std::move(map));
}

Device
parseDeviceString(const std::string &text)
{
    std::istringstream is(text);
    return parseDevice(is);
}

Device
loadDeviceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw UserError("cannot open device file '" + path + "'");
    return parseDevice(in);
}

std::string
deviceToText(const Device &device)
{
    std::ostringstream os;
    os << "device " << device.name() << " " << device.numQubits() << "\n";
    const CouplingMap &map = device.coupling();
    for (Qubit c = 0; c < device.numQubits(); ++c) {
        const auto &targets = map.targetsOf(c);
        if (targets.empty())
            continue;
        os << c << ":";
        for (Qubit t : targets)
            os << " " << t;
        os << "\n";
    }
    return os.str();
}

} // namespace qsyn
