/**
 * @file
 * Fidelity estimation for compiled circuits: expected success
 * probability and its negative-log form (an additive cost usable by
 * the optimizer in place of Eqn. 2), computed from a device's
 * calibration data.
 */

#pragma once

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qsyn {

/**
 * Expected success probability: the product over gates of
 * (1 - gate error), using per-qubit rates for single-qubit gates,
 * per-edge rates for CNOTs and per-qubit readout rates for measures.
 * The device must carry calibration data.
 */
double successProbability(const Circuit &circuit, const Device &device);

/**
 * Negative log fidelity: -log(successProbability). Additive per gate,
 * so it slots in wherever Eqn. 2 does (lower is better).
 */
double negLogFidelity(const Circuit &circuit, const Device &device);

} // namespace qsyn
