/**
 * @file
 * Device calibration data: per-qubit and per-coupling error rates.
 *
 * The paper's cost function (Eqn. 2) uses literature-level constants;
 * Section 2.2 notes the authors "are experimenting with other metrics,
 * such as qubit and operator fidelity, rather than decoherence times".
 * This module supplies that extension: devices may carry measured
 * error rates, the router can prefer high-fidelity SWAP paths, and the
 * fidelity estimator scores compiled circuits by expected success
 * probability.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace qsyn {

/** Error rates for one device (all probabilities in [0, 1)). */
class Calibration
{
  public:
    /** Uniform default rates for `num_qubits` qubits. */
    explicit Calibration(Qubit num_qubits,
                         double default_1q_error = 1e-3,
                         double default_2q_error = 1e-2,
                         double default_readout_error = 2e-2);

    /**
     * Synthetic calibration: per-qubit and per-edge rates jittered
     * log-uniformly around the defaults (x1/4 .. x4), deterministic in
     * `seed`. Stands in for the published IBM backend calibration
     * snapshots (see DESIGN.md substitutions).
     */
    static Calibration synthetic(Qubit num_qubits,
                                 const std::vector<std::pair<Qubit, Qubit>>
                                     &edges,
                                 std::uint64_t seed);

    Qubit numQubits() const { return num_qubits_; }

    /** @name Per-element accessors (setters clamp into [0, 0.5]). */
    /// @{
    double singleQubitError(Qubit q) const;
    void setSingleQubitError(Qubit q, double error);
    /** CNOT error for (control, target); falls back to the reverse
     *  direction, then to the default. */
    double twoQubitError(Qubit control, Qubit target) const;
    void setTwoQubitError(Qubit control, Qubit target, double error);
    double readoutError(Qubit q) const;
    void setReadoutError(Qubit q, double error);
    /// @}

  private:
    static std::uint64_t
    edgeKey(Qubit a, Qubit b)
    {
        return (static_cast<std::uint64_t>(a) << 32) | b;
    }

    Qubit num_qubits_;
    double default_2q_error_;
    std::vector<double> single_error_;
    std::vector<double> readout_error_;
    std::unordered_map<std::uint64_t, double> edge_error_;
};

} // namespace qsyn
