#include "device/coupling_map.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <sstream>

#include "common/errors.hpp"

namespace qsyn {

CouplingMap::CouplingMap(Qubit num_qubits)
    : num_qubits_(num_qubits), targets_(num_qubits), neighbors_(num_qubits)
{
}

CouplingMap
CouplingMap::fullyConnected(Qubit num_qubits)
{
    CouplingMap map(num_qubits);
    for (Qubit c = 0; c < num_qubits; ++c) {
        for (Qubit t = 0; t < num_qubits; ++t) {
            if (c != t)
                map.addEdge(c, t);
        }
    }
    return map;
}

void
CouplingMap::addEdge(Qubit control, Qubit target)
{
    QSYN_ASSERT(control < num_qubits_ && target < num_qubits_,
                "coupling edge outside register");
    QSYN_ASSERT(control != target, "self-coupling is meaningless");
    auto &out = targets_[control];
    if (std::find(out.begin(), out.end(), target) != out.end())
        return;
    out.push_back(target);
    std::sort(out.begin(), out.end());
    ++coupling_count_;
    for (auto [a, b] : {std::pair{control, target}, {target, control}}) {
        auto &nb = neighbors_[a];
        if (std::find(nb.begin(), nb.end(), b) == nb.end()) {
            nb.push_back(b);
            std::sort(nb.begin(), nb.end());
        }
    }
}

bool
CouplingMap::hasEdge(Qubit control, Qubit target) const
{
    if (control >= num_qubits_ || target >= num_qubits_)
        return false;
    const auto &out = targets_[control];
    return std::binary_search(out.begin(), out.end(), target);
}

bool
CouplingMap::hasUndirectedEdge(Qubit a, Qubit b) const
{
    return hasEdge(a, b) || hasEdge(b, a);
}

const std::vector<Qubit> &
CouplingMap::targetsOf(Qubit control) const
{
    QSYN_ASSERT(control < num_qubits_, "qubit outside register");
    return targets_[control];
}

const std::vector<Qubit> &
CouplingMap::neighborsOf(Qubit q) const
{
    QSYN_ASSERT(q < num_qubits_, "qubit outside register");
    return neighbors_[q];
}

bool
CouplingMap::isConnected() const
{
    if (num_qubits_ == 0)
        return true;
    std::vector<bool> seen(num_qubits_, false);
    std::deque<Qubit> frontier{0};
    seen[0] = true;
    size_t visited = 1;
    while (!frontier.empty()) {
        Qubit q = frontier.front();
        frontier.pop_front();
        for (Qubit n : neighbors_[q]) {
            if (!seen[n]) {
                seen[n] = true;
                ++visited;
                frontier.push_back(n);
            }
        }
    }
    return visited == num_qubits_;
}

namespace {

/**
 * BFS from `from`; `done(q)` decides when a frontier qubit is a goal.
 * Returns the path from `from` to the first goal found (ties broken by
 * smaller qubit index, since neighbors are sorted).
 */
std::vector<Qubit>
bfsPath(const std::vector<std::vector<Qubit>> &neighbors, Qubit from,
        const std::vector<Qubit> &goals)
{
    std::vector<bool> is_goal(neighbors.size(), false);
    for (Qubit g : goals)
        is_goal[g] = true;
    if (is_goal[from])
        return {from};

    std::vector<Qubit> parent(neighbors.size(), kNoQubit);
    std::deque<Qubit> frontier{from};
    parent[from] = from;
    while (!frontier.empty()) {
        Qubit q = frontier.front();
        frontier.pop_front();
        for (Qubit n : neighbors[q]) {
            if (parent[n] != kNoQubit)
                continue;
            parent[n] = q;
            if (is_goal[n]) {
                std::vector<Qubit> path{n};
                while (path.back() != from)
                    path.push_back(parent[path.back()]);
                std::reverse(path.begin(), path.end());
                return path;
            }
            frontier.push_back(n);
        }
    }
    return {};
}

} // namespace

std::vector<Qubit>
CouplingMap::shortestPath(Qubit from, Qubit to) const
{
    QSYN_ASSERT(from < num_qubits_ && to < num_qubits_,
                "qubit outside register");
    return bfsPath(neighbors_, from, {to});
}

std::vector<Qubit>
CouplingMap::shortestPathToNeighbor(Qubit from, Qubit to) const
{
    QSYN_ASSERT(from < num_qubits_ && to < num_qubits_,
                "qubit outside register");
    QSYN_ASSERT(from != to, "control equals target");
    if (neighbors_[to].empty())
        return {};
    return bfsPath(neighbors_, from, neighbors_[to]);
}

std::vector<Qubit>
CouplingMap::weightedPathToNeighbor(
    Qubit from, Qubit to,
    const std::function<double(Qubit, Qubit)> &edge_weight,
    const std::function<double(Qubit)> &goal_weight) const
{
    QSYN_ASSERT(from < num_qubits_ && to < num_qubits_,
                "qubit outside register");
    QSYN_ASSERT(from != to, "control equals target");
    if (neighbors_[to].empty())
        return {};

    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(num_qubits_, kInf);
    std::vector<Qubit> parent(num_qubits_, kNoQubit);
    using Item = std::pair<double, Qubit>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
    dist[from] = 0.0;
    parent[from] = from;
    queue.emplace(0.0, from);

    while (!queue.empty()) {
        auto [d, q] = queue.top();
        queue.pop();
        if (d > dist[q])
            continue; // stale entry
        for (Qubit n : neighbors_[q]) {
            double w = edge_weight(q, n);
            QSYN_ASSERT(w >= 0.0, "negative edge weight");
            if (dist[q] + w < dist[n]) {
                dist[n] = dist[q] + w;
                parent[n] = q;
                queue.emplace(dist[n], n);
            }
        }
    }

    Qubit best = kNoQubit;
    double best_total = kInf;
    for (Qubit n : neighbors_[to]) {
        if (dist[n] == kInf)
            continue;
        double total = dist[n] + goal_weight(n);
        if (total < best_total) {
            best_total = total;
            best = n;
        }
    }
    if (best == kNoQubit)
        return {};

    std::vector<Qubit> path{best};
    while (path.back() != from)
        path.push_back(parent[path.back()]);
    std::reverse(path.begin(), path.end());
    return path;
}

std::string
CouplingMap::toDictString() const
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (Qubit c = 0; c < num_qubits_; ++c) {
        if (targets_[c].empty())
            continue;
        if (!first)
            os << ", ";
        first = false;
        os << c << ": [";
        for (size_t i = 0; i < targets_[c].size(); ++i) {
            if (i > 0)
                os << ", ";
            os << targets_[c][i];
        }
        os << "]";
    }
    os << "}";
    return os.str();
}

} // namespace qsyn
