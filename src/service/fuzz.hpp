/**
 * @file
 * Protocol-robustness fuzzer for the qsynd service (`qfuzz
 * --service`). Runs an in-process Server on a throwaway socket and
 * attacks it with malformed JSON, wrong-shaped requests, truncated
 * frames, oversized length prefixes, abrupt disconnects, and raw
 * garbage. After every attack a fresh client must still get `ok:true`
 * from a ping — the invariant is that no byte sequence a client can
 * send takes the daemon down or wedges it.
 *
 * Running in-process is the detection mechanism: a server crash is a
 * qfuzz crash (caught by the always-armed crash handler), a leak is an
 * ASan report in the sanitize workflow, and a deadlock trips the test
 * timeout.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qsyn::service {

struct ServiceFuzzOptions
{
    std::uint64_t seed = 1;
    size_t iterations = 200;
    /** Directory for the throwaway socket (default: TMPDIR or /tmp). */
    std::string socketDir;
    bool verbose = false;
};

struct ServiceFuzzSummary
{
    size_t cases = 0;
    size_t okResponses = 0;       ///< well-formed probes answered ok
    size_t structuredErrors = 0;  ///< attacks answered with error JSON
    size_t cleanDrops = 0;        ///< attacks answered by disconnect
    std::vector<std::string> failures;

    bool clean() const { return failures.empty(); }
};

/** Run the service fuzzer; log goes to `log` (one line per failure,
 *  plus per-case lines when verbose). */
ServiceFuzzSummary runServiceFuzzer(const ServiceFuzzOptions &options,
                                    std::ostream &log);

} // namespace qsyn::service
