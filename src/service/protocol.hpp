/**
 * @file
 * The qsynd wire protocol: length-prefixed JSON frames over a stream
 * socket (Unix-domain or TCP).
 *
 * Framing: every message is a 4-byte big-endian payload length
 * followed by that many bytes of UTF-8 JSON. A length of zero or one
 * above the peer's advertised maximum is a protocol error; the server
 * answers with a final `bad_request` error frame and drops the
 * connection, since the stream can no longer be resynchronized.
 *
 * Requests are JSON objects with an `op` field:
 *   compile  {op, source, format?, name?, device?, simulator_qubits?,
 *             optimize?, verify?, placement?, router? ("ctr"|"sabre"),
 *             deadline_ms?, id?}
 *   verify   {op, source_a, source_b, format_a?, format_b?, id?}
 *   simulate {op, source, format?, top?, threshold?, id?}
 *   stats    {op, format? ("json"|"prom"), id?}
 *   health   {op, id?}
 *   ping     {op, id?}
 *
 * Responses always carry `ok` (bool) and echo `id` when the request
 * had one. Failures carry {error: {code, message}} with a stable
 * machine-readable code (see ErrorCode). A successful compile carries
 * `qasm` (the exact bytes local qsync would print) and `report` (the
 * deterministic compile report as a pre-rendered JSON string, byte-
 * identical to `qsync --report-deterministic` on the same inputs).
 */

#pragma once

#include <cstdint>
#include <string>

namespace qsyn::service {

/** Protocol constants. */
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 16u << 20;
inline constexpr size_t kFrameHeaderBytes = 4;

/** Stable error codes of failure responses. */
enum class ErrorCode
{
    BadRequest,        ///< malformed JSON / missing or unknown op
    ParseError,        ///< the submitted circuit failed to parse
    LimitExceeded,     ///< request exceeds max qubits/gates/frame
    DeadlineExceeded,  ///< the wall-time limit cancelled the compile
    Overloaded,        ///< admission queue full; retry later
    MappingError,      ///< circuit cannot be realized on the device
    VerificationFailed,///< compiled output failed formal verification
    ShuttingDown,      ///< daemon is draining; no new work accepted
    Internal           ///< a qsyn bug; the daemon stays up
};

/** Wire string of an error code ("bad_request", ...). */
const char *errorCodeName(ErrorCode code);

/** Outcome of one frame read. */
enum class FrameStatus
{
    Ok,        ///< a whole frame was read into the payload
    Eof,       ///< clean end of stream before a header byte
    Truncated, ///< stream ended mid-header or mid-payload
    TooLarge,  ///< advertised length exceeds the maximum
    Error      ///< read error (errno-level)
};

/**
 * Read one frame from `fd`. Blocks until a full frame, EOF, or error.
 * On TooLarge the advertised length has already been consumed, but
 * the payload has not: the caller must treat the stream as poisoned
 * and close after (optionally) sending a final error frame.
 */
FrameStatus readFrame(int fd, std::string *payload,
                      std::uint32_t maxFrameBytes = kDefaultMaxFrameBytes);

/** Write one frame (header + payload). False on any short write. */
bool writeFrame(int fd, std::string_view payload);

/** Encode just the 4-byte header for `payloadBytes` (fuzzer helper). */
std::string encodeFrameHeader(std::uint32_t payloadBytes);

} // namespace qsyn::service
