#include "service/protocol.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace qsyn::service {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::BadRequest:         return "bad_request";
      case ErrorCode::ParseError:         return "parse_error";
      case ErrorCode::LimitExceeded:      return "limit_exceeded";
      case ErrorCode::DeadlineExceeded:   return "deadline_exceeded";
      case ErrorCode::Overloaded:         return "overloaded";
      case ErrorCode::MappingError:       return "mapping_error";
      case ErrorCode::VerificationFailed: return "verification_failed";
      case ErrorCode::ShuttingDown:       return "shutting_down";
      case ErrorCode::Internal:           return "internal";
    }
    return "internal";
}

namespace {

enum class IoStatus
{
    Ok,
    Eof,
    Error
};

/** Read exactly `n` bytes (retrying EINTR and short reads). */
IoStatus
readAll(int fd, char *buf, size_t n)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd, buf + got, n - got);
        if (r == 0)
            return IoStatus::Eof;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::Error;
        }
        got += static_cast<size_t>(r);
    }
    return IoStatus::Ok;
}

bool
writeAll(int fd, const char *buf, size_t n)
{
    size_t sent = 0;
    while (sent < n) {
        // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a
        // process-killing SIGPIPE — abrupt disconnects are an
        // expected event for a daemon.
        ssize_t w = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<size_t>(w);
    }
    return true;
}

} // namespace

FrameStatus
readFrame(int fd, std::string *payload, std::uint32_t maxFrameBytes)
{
    unsigned char header[kFrameHeaderBytes];
    switch (readAll(fd, reinterpret_cast<char *>(header),
                    sizeof header)) {
      case IoStatus::Eof:
        return FrameStatus::Eof;
      case IoStatus::Error:
        return FrameStatus::Error;
      case IoStatus::Ok:
        break;
    }
    std::uint32_t len = (std::uint32_t{header[0]} << 24) |
                        (std::uint32_t{header[1]} << 16) |
                        (std::uint32_t{header[2]} << 8) |
                        std::uint32_t{header[3]};
    if (len == 0 || len > maxFrameBytes)
        return FrameStatus::TooLarge;
    payload->resize(len);
    switch (readAll(fd, payload->data(), len)) {
      case IoStatus::Eof:
        return FrameStatus::Truncated;
      case IoStatus::Error:
        return FrameStatus::Error;
      case IoStatus::Ok:
        break;
    }
    return FrameStatus::Ok;
}

std::string
encodeFrameHeader(std::uint32_t payloadBytes)
{
    std::string h(kFrameHeaderBytes, '\0');
    h[0] = static_cast<char>((payloadBytes >> 24) & 0xFF);
    h[1] = static_cast<char>((payloadBytes >> 16) & 0xFF);
    h[2] = static_cast<char>((payloadBytes >> 8) & 0xFF);
    h[3] = static_cast<char>(payloadBytes & 0xFF);
    return h;
}

bool
writeFrame(int fd, std::string_view payload)
{
    if (payload.size() > 0xFFFFFFFFull)
        return false;
    std::string header =
        encodeFrameHeader(static_cast<std::uint32_t>(payload.size()));
    if (!writeAll(fd, header.data(), header.size()))
        return false;
    return writeAll(fd, payload.data(), payload.size());
}

} // namespace qsyn::service
