#include "service/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "analysis/rules.hpp"
#include "common/deadline.hpp"
#include "common/errors.hpp"
#include "common/stopwatch.hpp"
#include "common/strings.hpp"
#include "core/batch.hpp"
#include "core/report.hpp"
#include "device/registry.hpp"
#include "esop/cascade.hpp"
#include "frontend/pla_parser.hpp"
#include "frontend/qasm_parser.hpp"
#include "frontend/qc_parser.hpp"
#include "frontend/real_parser.hpp"
#include "obs/obs.hpp"
#include "qmdd/equivalence.hpp"
#include "qmdd/vector.hpp"

namespace qsyn::service {

namespace {

/** Internal carrier mapping a failure onto a wire error code. */
struct ServiceError
{
    ErrorCode code;
    std::string message;
};

Json
errorResponse(ErrorCode code, const std::string &message)
{
    Json error = Json::makeObject();
    error.object["code"] = Json::makeString(errorCodeName(code));
    error.object["message"] = Json::makeString(message);
    Json response = Json::makeObject();
    response.object["ok"] = Json::makeBool(false);
    response.object["error"] = std::move(error);
    return response;
}

Json
okResponse()
{
    Json response = Json::makeObject();
    response.object["ok"] = Json::makeBool(true);
    return response;
}

} // namespace

/**
 * RAII compile slot. Construction either admits (possibly after a
 * bounded wait), reports `overloaded` (queue full), or throws
 * DeadlineError (budget burnt while queued). Destruction frees the
 * slot and wakes one waiter.
 */
struct Server::Admission
{
    Admission(Server *server, size_t workers) : server_(server)
    {
        std::unique_lock<std::mutex> lock(server_->admitMu_);
        if (server_->activeCompiles_ < workers) {
            ++server_->activeCompiles_;
            admitted = true;
            return;
        }
        if (server_->waitingCompiles_ >= server_->config_.queueDepth)
            return; // overloaded; caller answers immediately
        ++server_->waitingCompiles_;
        while (server_->activeCompiles_ >= workers) {
            server_->admitCv_.wait_for(lock,
                                       std::chrono::milliseconds(200));
            if (deadline::expired()) {
                --server_->waitingCompiles_;
                throw DeadlineError(
                    "deadline exceeded while queued for a compile "
                    "slot");
            }
        }
        --server_->waitingCompiles_;
        ++server_->activeCompiles_;
        admitted = true;
    }

    ~Admission()
    {
        if (!admitted)
            return;
        {
            std::lock_guard<std::mutex> lock(server_->admitMu_);
            --server_->activeCompiles_;
        }
        server_->admitCv_.notify_one();
    }

    Admission(const Admission &) = delete;
    Admission &operator=(const Admission &) = delete;

    bool admitted = false;

  private:
    Server *server_;
};

Server::Server(ServerConfig config) : config_(std::move(config))
{
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (running_.load())
        return;
    if (config_.socketPath.empty())
        throw UserError("qsynd needs a --socket path");

    // Warm shared state, created once and reused by every request.
    cache::CacheConfig ccfg;
    ccfg.dir = config_.cacheDir;
    ccfg.maxDiskBytes = config_.cacheMaxBytes;
    cache_ = std::make_unique<cache::CompileCache>(ccfg);
    if (config_.shareManager)
        sharedPackage_ = std::make_unique<dd::Package>();

    if (::pipe(wakePipe_) != 0)
        throw UserError("qsynd: cannot create wake pipe");

    // Unix-domain listener.
    int ufd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (ufd < 0)
        throw UserError("qsynd: cannot create unix socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socketPath.size() >= sizeof addr.sun_path) {
        ::close(ufd);
        throw UserError("socket path too long: " + config_.socketPath);
    }
    std::strncpy(addr.sun_path, config_.socketPath.c_str(),
                 sizeof addr.sun_path - 1);
    ::unlink(config_.socketPath.c_str());
    if (::bind(ufd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) !=
            0 ||
        ::listen(ufd, 64) != 0) {
        int err = errno;
        ::close(ufd);
        throw UserError("cannot listen on '" + config_.socketPath +
                        "': " + std::strerror(err));
    }
    listenFds_.push_back(ufd);

    // Optional loopback TCP listener.
    if (config_.tcpPort != 0) {
        int tfd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (tfd < 0)
            throw UserError("qsynd: cannot create tcp socket");
        int one = 1;
        ::setsockopt(tfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in tcp{};
        tcp.sin_family = AF_INET;
        tcp.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        tcp.sin_port =
            htons(static_cast<std::uint16_t>(config_.tcpPort));
        if (::bind(tfd, reinterpret_cast<sockaddr *>(&tcp),
                   sizeof tcp) != 0 ||
            ::listen(tfd, 64) != 0) {
            int err = errno;
            ::close(tfd);
            throw UserError("cannot listen on 127.0.0.1:" +
                            std::to_string(config_.tcpPort) + ": " +
                            std::strerror(err));
        }
        listenFds_.push_back(tfd);
    }

    startedAt_ = std::chrono::steady_clock::now();
    running_.store(true);
    draining_.store(false);
    acceptThread_ = std::thread([this] {
        obs::nameCurrentThread("qsynd-accept");
        acceptLoop();
    });
    QSYN_OBS_LOG(Info, "service")
        << "listening on " << config_.socketPath
        << (config_.tcpPort != 0
                ? " and 127.0.0.1:" + std::to_string(config_.tcpPort)
                : std::string());
}

void
Server::requestStop()
{
    // Async-signal-safe: one atomic store and one pipe write.
    stopRequested_.store(true, std::memory_order_release);
    if (wakePipe_[1] >= 0) {
        char byte = 's';
        [[maybe_unused]] ssize_t ignored =
            ::write(wakePipe_[1], &byte, 1);
    }
}

void
Server::waitForStopRequest()
{
    while (!stopRequested_.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = wakePipe_[0];
        pfd.events = POLLIN;
        ::poll(&pfd, 1, 200);
        if (pfd.revents & POLLIN) {
            char buf[16];
            [[maybe_unused]] ssize_t ignored =
                ::read(wakePipe_[0], buf, sizeof buf);
        }
    }
}

void
Server::stop()
{
    std::call_once(stopOnce_, [this] {
        if (!running_.load())
            return;
        QSYN_OBS_LOG(Info, "service") << "draining";
        draining_.store(true);
        stopRequested_.store(true);
        if (acceptThread_.joinable())
            acceptThread_.join();
        for (int fd : listenFds_)
            ::close(fd);
        listenFds_.clear();
        ::unlink(config_.socketPath.c_str());

        // Unblock connections parked in readFrame. SHUT_RD only: a
        // response already being written must still flush — the drain
        // promise is "every admitted request gets its answer".
        {
            std::lock_guard<std::mutex> lock(connMu_);
            for (const std::unique_ptr<Connection> &conn :
                 connections_) {
                if (!conn->closed.load())
                    ::shutdown(conn->fd, SHUT_RD);
            }
        }
        std::vector<std::unique_ptr<Connection>> finished;
        {
            std::lock_guard<std::mutex> lock(connMu_);
            finished.swap(connections_);
        }
        for (const std::unique_ptr<Connection> &conn : finished) {
            if (conn->thread.joinable())
                conn->thread.join();
        }
        running_.store(false);
        QSYN_OBS_LOG(Info, "service") << "stopped";
        if (wakePipe_[0] >= 0)
            ::close(wakePipe_[0]);
        if (wakePipe_[1] >= 0)
            ::close(wakePipe_[1]);
        wakePipe_[0] = wakePipe_[1] = -1;
    });
}

void
Server::acceptLoop()
{
    std::vector<pollfd> pfds(listenFds_.size());
    for (size_t i = 0; i < listenFds_.size(); ++i) {
        pfds[i].fd = listenFds_[i];
        pfds[i].events = POLLIN;
    }
    while (!draining_.load()) {
        int ready = ::poll(pfds.data(),
                           static_cast<nfds_t>(pfds.size()), 200);
        if (ready <= 0)
            continue;
        for (const pollfd &pfd : pfds) {
            if (!(pfd.revents & POLLIN))
                continue;
            int fd = ::accept4(pfd.fd, nullptr, nullptr, SOCK_CLOEXEC);
            if (fd < 0)
                continue;
            auto conn = std::make_unique<Connection>();
            Connection *raw = conn.get();
            raw->fd = fd;
            {
                std::lock_guard<std::mutex> lock(statsMu_);
                ++stats_.connectionsTotal;
            }
            std::lock_guard<std::mutex> lock(connMu_);
            // Reap finished connections so a long-lived daemon does
            // not accumulate dead thread handles.
            for (std::unique_ptr<Connection> &old : connections_) {
                if (old->closed.load() && old->thread.joinable())
                    old->thread.join();
            }
            connections_.erase(
                std::remove_if(
                    connections_.begin(), connections_.end(),
                    [](const std::unique_ptr<Connection> &c) {
                        return c->closed.load() &&
                               !c->thread.joinable();
                    }),
                connections_.end());
            raw->thread = std::thread([this, raw] {
                obs::nameCurrentThread("qsynd-conn");
                connectionLoop(raw);
            });
            connections_.push_back(std::move(conn));
        }
    }
}

void
Server::connectionLoop(Connection *conn)
{
    for (;;) {
        std::string payload;
        FrameStatus status =
            readFrame(conn->fd, &payload, config_.maxFrameBytes);
        if (status != FrameStatus::Ok) {
            if (status == FrameStatus::TooLarge ||
                status == FrameStatus::Truncated ||
                status == FrameStatus::Error) {
                {
                    std::lock_guard<std::mutex> lock(statsMu_);
                    ++stats_.protocolErrors;
                }
                bumpMetric("service.protocol_errors");
                if (status == FrameStatus::TooLarge) {
                    // The stream cannot be resynchronized; answer once
                    // and hang up.
                    writeFrame(conn->fd,
                               errorResponse(
                                   ErrorCode::BadRequest,
                                   "frame exceeds maximum size")
                                   .dump());
                }
            }
            break;
        }
        conn->busy.store(true);
        Stopwatch sw;
        bool fatal = false;
        std::string response = handleRequest(payload, &fatal);
        bool wrote = writeFrame(conn->fd, response);
        observeLatency("request", sw.seconds());
        conn->busy.store(false);
        if (!wrote || fatal)
            break;
        if (draining_.load())
            break;
    }
    ::close(conn->fd);
    conn->closed.store(true);
}

std::string
Server::handleRequest(const std::string &payload, bool *fatal)
{
    *fatal = false;
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.requestsTotal;
    }
    bumpMetric("service.requests");

    Json request;
    std::string parse_error;
    Json response;
    std::string op = "?";
    try {
        if (!parseJson(payload, &request, &parse_error))
            throw ServiceError{ErrorCode::BadRequest, parse_error};
        if (!request.isObject())
            throw ServiceError{ErrorCode::BadRequest,
                               "request must be a JSON object"};
        op = request.stringOr("op", "");
        if (op.empty())
            throw ServiceError{ErrorCode::BadRequest,
                               "missing 'op' field"};
        if (op == "compile") {
            response = handleCompile(request);
        } else if (op == "verify") {
            response = handleVerify(request);
        } else if (op == "simulate") {
            response = handleSimulate(request);
        } else if (op == "analyze") {
            response = handleAnalyze(request);
        } else if (op == "stats") {
            response = handleStats(request);
        } else if (op == "health") {
            response = handleHealth(request);
        } else if (op == "ping") {
            response = okResponse();
        } else {
            throw ServiceError{ErrorCode::BadRequest,
                               "unknown op '" + op + "'"};
        }
    } catch (const ServiceError &e) {
        response = errorResponse(e.code, e.message);
        if (e.code == ErrorCode::Overloaded) {
            std::lock_guard<std::mutex> lock(statsMu_);
            ++stats_.overloaded;
        }
    } catch (const DeadlineError &e) {
        response = errorResponse(ErrorCode::DeadlineExceeded, e.what());
    } catch (const ParseError &e) {
        response = errorResponse(ErrorCode::ParseError, e.what());
    } catch (const MappingError &e) {
        response = errorResponse(ErrorCode::MappingError, e.what());
    } catch (const VerificationError &e) {
        response =
            errorResponse(ErrorCode::VerificationFailed, e.what());
    } catch (const UserError &e) {
        response = errorResponse(ErrorCode::BadRequest, e.what());
    } catch (const Error &e) {
        response = errorResponse(ErrorCode::Internal, e.what());
    } catch (const std::exception &e) {
        response = errorResponse(ErrorCode::Internal, e.what());
    }

    // Echo the request id so pipelined clients can match responses.
    if (const Json *id = request.find("id"))
        response.object["id"] = *id;

    bool ok = response.boolOr("ok", false);
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        if (ok)
            ++stats_.requestsOk;
        else
            ++stats_.requestsError;
    }
    bumpMetric(ok ? "service.requests_ok" : "service.requests_error");
    QSYN_OBS_LOG(Debug, "service")
        << op << " -> " << (ok ? "ok" : "error");
    return response.dump();
}

double
Server::effectiveDeadline(const Json &request) const
{
    double requested =
        request.numberOr("deadline_ms", 0.0) / 1e3;
    if (requested < 0.0)
        requested = 0.0;
    double limit = config_.deadlineSeconds;
    if (limit <= 0.0)
        return requested;
    if (requested <= 0.0)
        return limit;
    return std::min(requested, limit);
}

void
Server::enforceLimits(const Circuit &circuit) const
{
    if (config_.maxQubits != 0 &&
        circuit.numQubits() > config_.maxQubits) {
        throw ServiceError{
            ErrorCode::LimitExceeded,
            "circuit has " + std::to_string(circuit.numQubits()) +
                " qubits; this server accepts at most " +
                std::to_string(config_.maxQubits)};
    }
    if (config_.maxGates != 0 && circuit.size() > config_.maxGates) {
        throw ServiceError{
            ErrorCode::LimitExceeded,
            "circuit has " + std::to_string(circuit.size()) +
                " gates; this server accepts at most " +
                std::to_string(config_.maxGates)};
    }
}

Circuit
Server::parseCircuitField(const Json &request, const char *sourceKey,
                          const char *formatKey) const
{
    const Json *source = request.find(sourceKey);
    if (source == nullptr || !source->isString())
        throw ServiceError{ErrorCode::BadRequest,
                           std::string("missing '") + sourceKey +
                               "' string field"};
    std::string format = toLower(request.stringOr(formatKey, "qasm"));
    std::string name = request.stringOr("name", "remote");
    Circuit circuit(0);
    if (format == "qasm")
        circuit = frontend::parseQasm(source->str, name);
    else if (format == "qc")
        circuit = frontend::parseQc(source->str, name);
    else if (format == "real")
        circuit = frontend::parseReal(source->str, name);
    else if (format == "pla")
        circuit = esop::synthesizePla(frontend::parsePla(source->str));
    else
        throw ServiceError{ErrorCode::BadRequest,
                           "unknown format '" + format +
                               "' (qasm|qc|real|pla)"};
    enforceLimits(circuit);
    return circuit;
}

Device
Server::deviceFor(const Json &request) const
{
    std::string name = request.stringOr("device", "ibmqx4");
    if (name == "simulator") {
        double width = request.numberOr("simulator_qubits", 32.0);
        if (width < 1.0 || width > 4096.0)
            throw ServiceError{ErrorCode::BadRequest,
                               "simulator_qubits out of range"};
        return Device::simulator(static_cast<Qubit>(width));
    }
    return builtinDevice(name);
}

Json
Server::handleCompile(const Json &request)
{
    Stopwatch sw;
    if (draining_.load())
        throw ServiceError{ErrorCode::ShuttingDown,
                           "server is draining"};
    Circuit input = parseCircuitField(request, "source", "format");
    Device device = deviceFor(request);

    CompileOptions options;
    // The daemon's obs sink would flip the optimizer into detailed
    // mode anyway (see opt/pipeline.cpp); setting the flag explicitly
    // keeps the report bytes independent of sink presence so they
    // match `qsync --report-deterministic`, which does the same.
    options.optimizer.collectPassStats = true;
    options.optimize = request.boolOr("optimize", true);
    std::string verify = toLower(request.stringOr("verify", "full"));
    if (verify == "full")
        options.verify = VerifyMode::Full;
    else if (verify == "off")
        options.verify = VerifyMode::Off;
    else if (verify == "miter")
        options.verify = VerifyMode::Miter;
    else
        throw ServiceError{ErrorCode::BadRequest,
                           "unknown verify mode '" + verify +
                               "' (full|off|miter)"};
    std::string placement =
        toLower(request.stringOr("placement", "identity"));
    if (placement == "identity")
        options.placement = route::PlacementStrategy::Identity;
    else if (placement == "greedy")
        options.placement = route::PlacementStrategy::Greedy;
    else
        throw ServiceError{ErrorCode::BadRequest,
                           "unknown placement '" + placement +
                               "' (identity|greedy)"};
    std::string router = toLower(request.stringOr("router", "ctr"));
    if (!route::parseRouterName(router, &options.routing.router))
        throw ServiceError{ErrorCode::BadRequest,
                           "unknown router '" + router +
                               "' (ctr|sabre)"};

    // The deadline covers queueing AND compiling: a client's budget
    // is end-to-end, not "after we got around to it".
    deadline::Scope scope(effectiveDeadline(request));
    Admission slot(this, resolveJobs(config_.workers));
    if (!slot.admitted) {
        throw ServiceError{ErrorCode::Overloaded,
                           "admission queue is full; retry later"};
    }
    deadline::check("service admission");

    Compiler compiler(device, options);
    if (sharedPackage_ != nullptr && options.verify != VerifyMode::Off)
        compiler.setVerifyPackage(sharedPackage_.get());
    std::shared_ptr<const CachedCompile> artifact =
        compiler.compileCached(input, cache_.get());

    Json response = okResponse();
    response.object["qasm"] = Json::makeString(artifact->qasm);
    response.object["report"] = Json::makeString(compileReportJson(
        artifact->result, device, ReportOptions::deterministic()));
    response.object["gates"] = Json::makeNumber(
        static_cast<double>(artifact->result.optimizedM.gates));
    response.object["cost"] =
        Json::makeNumber(artifact->result.optimizedM.cost);
    response.object["verified"] =
        Json::makeBool(artifact->result.verified());
    observeLatency("compile", sw.seconds());
    return response;
}

Json
Server::handleVerify(const Json &request)
{
    Stopwatch sw;
    if (draining_.load())
        throw ServiceError{ErrorCode::ShuttingDown,
                           "server is draining"};
    Circuit a = parseCircuitField(request, "source_a", "format_a");
    Circuit b = parseCircuitField(request, "source_b", "format_b");

    deadline::Scope scope(effectiveDeadline(request));
    Admission slot(this, resolveJobs(config_.workers));
    if (!slot.admitted) {
        throw ServiceError{ErrorCode::Overloaded,
                           "admission queue is full; retry later"};
    }
    deadline::check("service admission");

    dd::Package local;
    dd::Package *pkg =
        sharedPackage_ != nullptr ? sharedPackage_.get() : &local;
    dd::EquivalenceChecker checker(*pkg);
    dd::EquivalenceOptions eopts;
    eopts.nodeBudget = 4u << 20;
    dd::Equivalence verdict = checker.check(a, b, eopts);

    Json response = okResponse();
    response.object["verdict"] =
        Json::makeString(dd::equivalenceName(verdict));
    response.object["equivalent"] =
        Json::makeBool(dd::isEquivalent(verdict));
    observeLatency("verify", sw.seconds());
    return response;
}

Json
Server::handleSimulate(const Json &request)
{
    Stopwatch sw;
    if (draining_.load())
        throw ServiceError{ErrorCode::ShuttingDown,
                           "server is draining"};
    Circuit circuit = parseCircuitField(request, "source", "format");
    double top = request.numberOr("top", 16.0);
    double threshold = request.numberOr("threshold", 1e-9);
    if (top < 0.0 || top > 4096.0)
        throw ServiceError{ErrorCode::BadRequest, "'top' out of range"};

    deadline::Scope scope(effectiveDeadline(request));
    Admission slot(this, resolveJobs(config_.workers));
    if (!slot.admitted) {
        throw ServiceError{ErrorCode::Overloaded,
                           "admission queue is full; retry later"};
    }
    deadline::check("service admission");

    // Simulation gets a private package: vector nodes are request-
    // local and cheap, and VectorEngine does not hold a GC session.
    dd::Package pkg;
    dd::VectorEngine engine(pkg);
    Qubit n = circuit.numQubits();
    dd::Edge state =
        engine.applyCircuit(circuit, engine.makeBasisState(0, n));

    Json response = okResponse();
    response.object["qubits"] =
        Json::makeNumber(static_cast<double>(n));
    response.object["gates"] =
        Json::makeNumber(static_cast<double>(circuit.size()));
    if (n > 24) {
        // Too wide to enumerate; report the norm as a sanity value.
        response.object["norm_squared"] = Json::makeNumber(
            engine.normSquared(state, static_cast<int>(n)));
        observeLatency("simulate", sw.seconds());
        return response;
    }
    Json amps = Json::makeArray();
    size_t printed = 0;
    for (std::uint64_t index = 0;
         index < (std::uint64_t{1} << n) &&
         printed < static_cast<size_t>(top);
         ++index) {
        deadline::check("amplitude enumeration");
        Cplx a = engine.amplitude(state, index, static_cast<int>(n));
        double p = std::norm(a);
        if (p < threshold)
            continue;
        Json amp = Json::makeObject();
        amp.object["index"] =
            Json::makeNumber(static_cast<double>(index));
        std::string bits;
        for (Qubit q = 0; q < n; ++q)
            bits += ((index >> (n - 1 - q)) & 1) ? '1' : '0';
        amp.object["bits"] = Json::makeString(bits);
        amp.object["re"] = Json::makeNumber(a.real());
        amp.object["im"] = Json::makeNumber(a.imag());
        amp.object["p"] = Json::makeNumber(p);
        amps.array.push_back(std::move(amp));
        ++printed;
    }
    response.object["amplitudes"] = std::move(amps);
    observeLatency("simulate", sw.seconds());
    return response;
}

Json
Server::handleAnalyze(const Json &request)
{
    Stopwatch sw;
    if (draining_.load())
        throw ServiceError{ErrorCode::ShuttingDown,
                           "server is draining"};
    Circuit circuit = parseCircuitField(request, "source", "format");
    // The device is optional here: without one only the device-
    // independent rules (QL003..QL005) run, matching qlint.
    std::optional<Device> device;
    if (request.find("device") != nullptr)
        device = deviceFor(request);

    deadline::Scope scope(effectiveDeadline(request));
    Admission slot(this, resolveJobs(config_.workers));
    if (!slot.admitted) {
        throw ServiceError{ErrorCode::Overloaded,
                           "admission queue is full; retry later"};
    }
    deadline::check("service admission");

    analysis::LintOptions lopts;
    if (device)
        lopts.device = &*device;
    if (const Json *ancillas = request.find("ancillas")) {
        if (ancillas->type != Json::Type::Array)
            throw ServiceError{ErrorCode::BadRequest,
                               "'ancillas' must be an array"};
        for (const Json &a : ancillas->array) {
            if (a.type != Json::Type::Number || a.number < 0.0)
                throw ServiceError{ErrorCode::BadRequest,
                                   "'ancillas' entries must be "
                                   "non-negative numbers"};
            lopts.ancillas.push_back(static_cast<Qubit>(a.number));
        }
    }
    analysis::Diagnostics report = analysis::analyzeCircuit(
        circuit, request.stringOr("name", "remote"), lopts);

    Json response = okResponse();
    Json metrics = Json::makeObject();
    metrics.object["gates"] =
        Json::makeNumber(static_cast<double>(report.metrics.gates));
    metrics.object["edges"] =
        Json::makeNumber(static_cast<double>(report.metrics.edges));
    metrics.object["depth"] =
        Json::makeNumber(static_cast<double>(report.metrics.depth));
    metrics.object["critical_gates"] = Json::makeNumber(
        static_cast<double>(report.metrics.criticalGates));
    metrics.object["max_layer_width"] = Json::makeNumber(
        static_cast<double>(report.metrics.maxLayerWidth));
    metrics.object["parallelism"] =
        Json::makeNumber(report.metrics.parallelism);
    response.object["metrics"] = std::move(metrics);
    Json findings = Json::makeArray();
    for (const analysis::Finding &f : report.findings) {
        Json entry = Json::makeObject();
        entry.object["rule"] = Json::makeString(f.ruleId);
        entry.object["severity"] =
            Json::makeString(analysis::severityName(f.severity));
        entry.object["message"] = Json::makeString(f.message);
        if (f.gateIndex != analysis::kNoGate)
            entry.object["gate"] = Json::makeNumber(
                static_cast<double>(f.gateIndex));
        if (f.wire != analysis::Finding::kNoWire)
            entry.object["wire"] =
                Json::makeNumber(static_cast<double>(f.wire));
        findings.array.push_back(std::move(entry));
    }
    response.object["findings"] = std::move(findings);
    response.object["errors"] = Json::makeNumber(static_cast<double>(
        report.countAtLeast(analysis::Severity::Error)));
    observeLatency("analyze", sw.seconds());
    return response;
}

Json
Server::handleStats(const Json &request)
{
    std::string format = toLower(request.stringOr("format", "json"));
    Json response = okResponse();
    obs::Sink *sink = obs::sink();
    if (format == "prom") {
        response.object["prometheus"] = Json::makeString(
            sink != nullptr ? sink->metrics().toPrometheus()
                            : std::string());
    } else if (format == "json") {
        response.object["metrics"] = Json::makeString(
            sink != nullptr ? sink->metricsJson()
                            : std::string("{}"));
    } else {
        throw ServiceError{ErrorCode::BadRequest,
                           "unknown stats format '" + format +
                               "' (json|prom)"};
    }
    cache::CacheStats cs = cache_->stats();
    Json cacheStats = Json::makeObject();
    cacheStats.object["hits"] =
        Json::makeNumber(static_cast<double>(cs.hits));
    cacheStats.object["misses"] =
        Json::makeNumber(static_cast<double>(cs.misses));
    cacheStats.object["memory_entries"] =
        Json::makeNumber(static_cast<double>(cs.memoryEntries));
    cacheStats.object["disk_entries"] =
        Json::makeNumber(static_cast<double>(cs.diskEntries));
    response.object["cache"] = std::move(cacheStats);
    return response;
}

Json
Server::handleHealth(const Json &)
{
    ServerStats s = stats();
    Json response = okResponse();
    response.object["status"] =
        Json::makeString(s.draining ? "draining" : "ok");
    response.object["uptime_seconds"] =
        Json::makeNumber(s.uptimeSeconds);
    response.object["requests_total"] =
        Json::makeNumber(static_cast<double>(s.requestsTotal));
    response.object["requests_ok"] =
        Json::makeNumber(static_cast<double>(s.requestsOk));
    response.object["requests_error"] =
        Json::makeNumber(static_cast<double>(s.requestsError));
    response.object["overloaded"] =
        Json::makeNumber(static_cast<double>(s.overloaded));
    response.object["protocol_errors"] =
        Json::makeNumber(static_cast<double>(s.protocolErrors));
    response.object["connections_total"] =
        Json::makeNumber(static_cast<double>(s.connectionsTotal));
    response.object["in_flight"] =
        Json::makeNumber(static_cast<double>(s.inFlight));
    response.object["queued"] =
        Json::makeNumber(static_cast<double>(s.queued));
    response.object["workers"] = Json::makeNumber(
        static_cast<double>(resolveJobs(config_.workers)));
    return response;
}

ServerStats
Server::stats() const
{
    ServerStats out;
    {
        std::lock_guard<std::mutex> lock(statsMu_);
        out = stats_;
    }
    {
        std::lock_guard<std::mutex> lock(admitMu_);
        out.inFlight = activeCompiles_;
        out.queued = waitingCompiles_;
    }
    out.draining = draining_.load();
    out.uptimeSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - startedAt_)
            .count();
    return out;
}

void
Server::bumpMetric(const char *name, double delta) const
{
    if (obs::Sink *s = obs::sink())
        s->metrics().addCounter(name, delta);
}

void
Server::observeLatency(const char *op, double seconds) const
{
    if (obs::Sink *s = obs::sink()) {
        s->metrics().observe(
            std::string("service.") + op + ".latency_us",
            seconds * 1e6);
    }
}

} // namespace qsyn::service
