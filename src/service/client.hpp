/**
 * @file
 * Blocking qsynd client: connect, exchange one frame per call. Used by
 * `qsync --remote`, the qload load generator, qbench's service
 * scenario, and the service test suite — all of them speak to the
 * daemon through this one class so protocol handling (framing,
 * errors, oversized responses) lives in exactly one place.
 */

#pragma once

#include <string>

#include "service/json.hpp"
#include "service/protocol.hpp"

namespace qsyn::service {

/** One connection to a qsynd daemon (move-only; closes on destroy). */
class Client
{
  public:
    /** Connect to a Unix-domain socket. Throws UserError on failure. */
    static Client connectUnix(const std::string &socketPath);

    /** Connect to a TCP endpoint (host is an IPv4 literal). */
    static Client connectTcp(const std::string &host, int port);

    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    ~Client();

    /**
     * Send one request object and block for its response. Throws
     * UserError when the transport fails (connection closed, frame
     * unreadable) or the response is not valid JSON — a *structured*
     * server-side failure (ok=false) is returned, not thrown, so
     * callers can inspect error.code.
     */
    Json call(const Json &request);

    /** Raw exchange: send `payload` verbatim, return the raw response
     *  payload. The fuzzer uses this to send deliberately broken
     *  bytes. */
    std::string callRaw(const std::string &payload);

    /** The underlying socket (fuzzer: send partial/garbage frames). */
    int fd() const { return fd_; }

    /** Throw UserError carrying a response's error code + message.
     *  Precondition: response.ok is false. */
    [[noreturn]] static void throwError(const Json &response);

  private:
    explicit Client(int fd) : fd_(fd) {}

    int fd_ = -1;
};

} // namespace qsyn::service
