/**
 * @file
 * The qsynd compile server: a long-lived front end over the compile
 * pipeline that keeps every scaling layer warm across requests — one
 * shared two-tier CompileCache (content-addressed memoization +
 * single-flight dedup), one shared concurrent dd::Package (so
 * verifications of similar circuits reuse each other's node
 * universes), and the process-global obs metrics registry served live
 * through the `stats` op.
 *
 * Concurrency model: one accept thread plus one thread per
 * connection. Connections are cheap (blocking reads, no business
 * state); the scarce resource is compile slots. Admission control
 * gates every compile/verify/simulate through `workers` concurrent
 * slots with a bounded FIFO wait queue of `queueDepth`: a request
 * that would wait behind a full queue gets an immediate structured
 * `overloaded` response — the daemon never silently hangs a client.
 *
 * Per-request limits (maxQubits, maxGates, deadlineSeconds) are
 * checked after parsing and enforced cooperatively: the deadline uses
 * the same per-gate safe-point poll as QMDD garbage collection (see
 * common/deadline.hpp), so a runaway compile unwinds cleanly and the
 * daemon answers the next request.
 *
 * Shutdown (Server::stop, triggered by SIGTERM in qsynd) is a drain:
 * listening sockets close first, idle connections are shut down, and
 * every request already past admission runs to completion and gets
 * its response before the server returns.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.hpp"
#include "core/compiler.hpp"
#include "qmdd/package.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"

namespace qsyn::service {

/** Everything configurable about one Server. */
struct ServerConfig
{
    /** Unix-domain socket path (required; unlinked on start + stop). */
    std::string socketPath;
    /** Also listen on this TCP port on 127.0.0.1 (0 = off). */
    int tcpPort = 0;
    /** Concurrent compile slots (0 = one per hardware thread). */
    size_t workers = 0;
    /** Admission-queue depth; a compile arriving with `queueDepth`
     *  requests already waiting is answered `overloaded`. */
    size_t queueDepth = 16;
    /** Largest accepted request frame. */
    std::uint32_t maxFrameBytes = kDefaultMaxFrameBytes;
    /** Reject circuits wider than this (0 = unlimited). */
    Qubit maxQubits = 0;
    /** Reject circuits with more gates than this (0 = unlimited). */
    size_t maxGates = 0;
    /** Per-request wall-time budget in seconds (0 = unlimited). A
     *  request's own deadline_ms may tighten but never exceed it. */
    double deadlineSeconds = 0.0;
    /** Compile-cache configuration (dir may be empty: memory tier
     *  only — still warm across requests). */
    std::string cacheDir;
    std::uint64_t cacheMaxBytes = 256ull << 20;
    /** Share one concurrent QMDD package across all verifications. */
    bool shareManager = true;
};

/** Point-in-time service counters (the `health` response). */
struct ServerStats
{
    std::uint64_t requestsTotal = 0;
    std::uint64_t requestsOk = 0;
    std::uint64_t requestsError = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t protocolErrors = 0;
    std::uint64_t connectionsTotal = 0;
    size_t inFlight = 0;
    size_t queued = 0;
    bool draining = false;
    double uptimeSeconds = 0.0;
};

/** The compile-server daemon core (socket front end + warm state). */
class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and start the accept thread. Throws UserError when
     * the socket cannot be bound. Returns once the server is
     * accepting — a client connecting after start() never gets
     * connection-refused.
     */
    void start();

    /**
     * Graceful drain: stop accepting, finish every admitted request,
     * answer queued ones, close all connections, join all threads.
     * Idempotent; safe to call from any thread except a connection
     * handler. Called by the destructor if the caller forgot.
     */
    void stop();

    /** Ask for stop() from a signal context: async-signal-safe. The
     *  thread blocked in waitForStopRequest() picks it up. */
    void requestStop();

    /** Block until requestStop() (or stop()) was called. */
    void waitForStopRequest();

    bool running() const { return running_.load(); }
    ServerStats stats() const;
    const ServerConfig &config() const { return config_; }

  private:
    struct Connection
    {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> busy{false};
        std::atomic<bool> closed{false};
    };

    /** RAII admission slot; `admitted` false means overloaded. */
    struct Admission;

    void acceptLoop();
    void connectionLoop(Connection *conn);
    /** Handle one request payload; returns the response JSON text and
     *  sets `*fatal` when the connection must close after sending. */
    std::string handleRequest(const std::string &payload, bool *fatal);

    Json handleCompile(const Json &request);
    Json handleVerify(const Json &request);
    Json handleSimulate(const Json &request);
    Json handleAnalyze(const Json &request);
    Json handleStats(const Json &request);
    Json handleHealth(const Json &request);

    /** Effective deadline of a request: the config budget tightened by
     *  the request's own deadline_ms (whichever is sooner). */
    double effectiveDeadline(const Json &request) const;

    /** Parse a request's circuit source (format: qasm|qc|real) and
     *  enforce the width/gate limits. Throws UserError/ParseError. */
    Circuit parseCircuitField(const Json &request, const char *sourceKey,
                              const char *formatKey) const;
    void enforceLimits(const Circuit &circuit) const;

    Device deviceFor(const Json &request) const;

    void bumpMetric(const char *name, double delta = 1.0) const;
    void observeLatency(const char *op, double seconds) const;

    ServerConfig config_;
    std::vector<int> listenFds_;
    std::thread acceptThread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> stopRequested_{false};
    int wakePipe_[2] = {-1, -1};

    // Warm shared state.
    std::unique_ptr<cache::CompileCache> cache_;
    std::unique_ptr<dd::Package> sharedPackage_;

    // Admission gate.
    mutable std::mutex admitMu_;
    std::condition_variable admitCv_;
    size_t activeCompiles_ = 0;
    size_t waitingCompiles_ = 0;

    // Connection registry.
    mutable std::mutex connMu_;
    std::vector<std::unique_ptr<Connection>> connections_;

    // Counters.
    mutable std::mutex statsMu_;
    ServerStats stats_;
    std::chrono::steady_clock::time_point startedAt_;

    std::once_flag stopOnce_;
};

} // namespace qsyn::service
