#include "service/json.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "obs/obs.hpp"

namespace qsyn::service {

const Json *
Json::find(const std::string &key) const
{
    if (type != Type::Object)
        return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

std::string
Json::stringOr(const std::string &key, const std::string &fallback) const
{
    const Json *v = find(key);
    return v != nullptr && v->type == Type::String ? v->str : fallback;
}

double
Json::numberOr(const std::string &key, double fallback) const
{
    const Json *v = find(key);
    return v != nullptr && v->type == Type::Number ? v->number
                                                   : fallback;
}

bool
Json::boolOr(const std::string &key, bool fallback) const
{
    const Json *v = find(key);
    return v != nullptr && v->type == Type::Bool ? v->boolean : fallback;
}

Json
Json::makeNull()
{
    return Json{};
}

Json
Json::makeBool(bool b)
{
    Json j;
    j.type = Type::Bool;
    j.boolean = b;
    return j;
}

Json
Json::makeNumber(double v)
{
    Json j;
    j.type = Type::Number;
    j.number = v;
    return j;
}

Json
Json::makeString(std::string s)
{
    Json j;
    j.type = Type::String;
    j.str = std::move(s);
    return j;
}

Json
Json::makeArray()
{
    Json j;
    j.type = Type::Array;
    return j;
}

Json
Json::makeObject()
{
    Json j;
    j.type = Type::Object;
    return j;
}

namespace {

void
dumpNumber(std::ostringstream &os, double v)
{
    // JSON has no NaN/Inf; the parser rejects them on the way in, and
    // we refuse to mint them on the way out.
    if (!std::isfinite(v)) {
        os << "0";
        return;
    }
    // Integers (the common case: ids, counts) print without exponent.
    if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
        std::abs(v) < 1e15) {
        os << static_cast<std::int64_t>(v);
        return;
    }
    os.precision(17);
    os << v;
}

void
dumpValue(std::ostringstream &os, const Json &j)
{
    switch (j.type) {
      case Json::Type::Null:
        os << "null";
        break;
      case Json::Type::Bool:
        os << (j.boolean ? "true" : "false");
        break;
      case Json::Type::Number:
        dumpNumber(os, j.number);
        break;
      case Json::Type::String:
        os << '"' << obs::jsonEscape(j.str) << '"';
        break;
      case Json::Type::Array: {
        os << '[';
        bool first = true;
        for (const Json &e : j.array) {
            if (!first)
                os << ',';
            first = false;
            dumpValue(os, e);
        }
        os << ']';
        break;
      }
      case Json::Type::Object: {
        os << '{';
        bool first = true;
        for (const auto &kv : j.object) {
            if (!first)
                os << ',';
            first = false;
            os << '"' << obs::jsonEscape(kv.first) << "\":";
            dumpValue(os, kv.second);
        }
        os << '}';
        break;
      }
    }
}

/** Recursive-descent parser; every failure sets `error_` and returns
 *  false up the stack (no exceptions across the wire boundary). */
class Parser
{
  public:
    explicit Parser(std::string_view s) : s_(s) {}

    bool
    parse(Json *out)
    {
        if (!value(out, 0))
            return false;
        ws();
        if (pos_ != s_.size())
            return fail("trailing bytes after value");
        return true;
    }

    const std::string &error() const { return error_; }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &why)
    {
        if (error_.empty()) {
            error_ = "JSON error at byte " + std::to_string(pos_) +
                     ": " + why;
        }
        return false;
    }

    void
    ws()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (s_.substr(pos_, word.size()) != word)
            return fail("bad literal");
        pos_ += word.size();
        return true;
    }

    bool
    value(Json *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        ws();
        if (pos_ >= s_.size())
            return fail("unexpected end of input");
        char c = s_[pos_];
        switch (c) {
          case '{':
            return objectValue(out, depth);
          case '[':
            return arrayValue(out, depth);
          case '"':
            out->type = Json::Type::String;
            return stringValue(&out->str);
          case 't':
            out->type = Json::Type::Bool;
            out->boolean = true;
            return literal("true");
          case 'f':
            out->type = Json::Type::Bool;
            out->boolean = false;
            return literal("false");
          case 'n':
            out->type = Json::Type::Null;
            return literal("null");
          default:
            return numberValue(out);
        }
    }

    bool
    objectValue(Json *out, int depth)
    {
        out->type = Json::Type::Object;
        ++pos_; // '{'
        ws();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            ws();
            if (pos_ >= s_.size() || s_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!stringValue(&key))
                return false;
            ws();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            Json member;
            if (!value(&member, depth + 1))
                return false;
            out->object[std::move(key)] = std::move(member);
            ws();
            if (pos_ >= s_.size())
                return fail("unterminated object");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    arrayValue(Json *out, int depth)
    {
        out->type = Json::Type::Array;
        ++pos_; // '['
        ws();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            Json element;
            if (!value(&element, depth + 1))
                return false;
            out->array.push_back(std::move(element));
            ws();
            if (pos_ >= s_.size())
                return fail("unterminated array");
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    hexDigit(char c, unsigned *v)
    {
        if (c >= '0' && c <= '9')
            *v = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            *v = static_cast<unsigned>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            *v = static_cast<unsigned>(c - 'A' + 10);
        else
            return false;
        return true;
    }

    void
    appendUtf8(std::string *out, unsigned cp)
    {
        if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    stringValue(std::string *out)
    {
        ++pos_; // '"'
        out->clear();
        while (pos_ < s_.size()) {
            char c = s_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out->push_back(c);
                ++pos_;
                continue;
            }
            if (pos_ + 1 >= s_.size())
                return fail("dangling escape");
            char e = s_[pos_ + 1];
            pos_ += 2;
            switch (e) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > s_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int k = 0; k < 4; ++k) {
                    unsigned d;
                    if (!hexDigit(s_[pos_ + static_cast<size_t>(k)],
                                  &d))
                        return fail("bad \\u escape");
                    cp = (cp << 4) | d;
                }
                pos_ += 4;
                // Surrogates are passed through as-is code points in
                // the BMP encoder; good enough for a wire format whose
                // payloads are ASCII QASM + metric names.
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    numberValue(Json *out)
    {
        size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        bool digits = false;
        while (pos_ < s_.size() &&
               ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-')) {
            if (s_[pos_] >= '0' && s_[pos_] <= '9')
                digits = true;
            ++pos_;
        }
        if (!digits)
            return fail("expected a value");
        std::string text(s_.substr(start, pos_ - start));
        char *end = nullptr;
        double v = std::strtod(text.c_str(), &end);
        if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
            pos_ = start;
            return fail("malformed number");
        }
        out->type = Json::Type::Number;
        out->number = v;
        return true;
    }

    std::string_view s_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

std::string
Json::dump() const
{
    std::ostringstream os;
    dumpValue(os, *this);
    return os.str();
}

bool
parseJson(std::string_view text, Json *out, std::string *error)
{
    Parser p(text);
    Json parsed;
    if (!p.parse(&parsed)) {
        if (error != nullptr)
            *error = p.error();
        return false;
    }
    *out = std::move(parsed);
    return true;
}

} // namespace qsyn::service
