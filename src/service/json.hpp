/**
 * @file
 * Minimal JSON value model + strict parser for the qsynd wire
 * protocol. This is the first place the library parses (rather than
 * emits) JSON, and it sits on an untrusted boundary, so the parser is
 * deliberately paranoid: recursion depth is capped, numbers must be
 * finite, escapes are validated, and every failure is a diagnosed
 * error, never UB. Parsing reports failure through a return value —
 * the service loop turns it into a structured `bad_request` response
 * instead of unwinding the connection thread.
 *
 * Writing goes through the same obs::jsonEscape the report/metrics
 * emitters use, so both directions agree on escaping.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace qsyn::service {

/** One JSON value (object keys are sorted; duplicates = last wins). */
struct Json
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> array;
    std::map<std::string, Json> object;

    bool isObject() const { return type == Type::Object; }
    bool isString() const { return type == Type::String; }

    /** Member lookup; null when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Typed member accessors with defaults (missing/mistyped =
     *  default) — the tolerant reads the request decoder wants. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
    double numberOr(const std::string &key, double fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;

    /** @name Builders */
    /// @{
    static Json makeNull();
    static Json makeBool(bool b);
    static Json makeNumber(double v);
    static Json makeString(std::string s);
    static Json makeArray();
    static Json makeObject();
    /// @}

    /** Serialize (stable: object keys in sorted order). */
    std::string dump() const;
};

/**
 * Parse `text` strictly (one value, no trailing bytes, depth <= 64).
 * Returns false and fills `*error` (when non-null) on any flaw.
 */
bool parseJson(std::string_view text, Json *out,
               std::string *error = nullptr);

} // namespace qsyn::service
