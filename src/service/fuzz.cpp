#include "service/fuzz.hpp"

#include <cstdlib>
#include <ostream>
#include <sstream>

#include <sys/socket.h>
#include <unistd.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace qsyn::service {

namespace {

std::string
defaultSocketDir()
{
    const char *tmp = std::getenv("TMPDIR");
    return tmp != nullptr && *tmp != '\0' ? tmp : "/tmp";
}

/** The liveness invariant: a brand-new client gets ok:true back. */
bool
probeAlive(const std::string &socketPath, std::string *why)
{
    try {
        Client client = Client::connectUnix(socketPath);
        Json ping = Json::makeObject();
        ping.object["op"] = Json::makeString("ping");
        Json response = client.call(ping);
        if (!response.boolOr("ok", false)) {
            *why = "ping answered ok:false";
            return false;
        }
        return true;
    } catch (const Error &e) {
        *why = e.what();
        return false;
    }
}

std::string
randomBytes(Rng &rng, size_t n)
{
    std::string out(n, '\0');
    for (char &c : out)
        c = static_cast<char>(rng.below(256));
    return out;
}

/** A syntactically broken JSON payload. */
std::string
brokenJson(Rng &rng)
{
    switch (rng.below(7)) {
      case 0: return "{\"op\":\"ping\"";               // unterminated
      case 1: return "{\"op\": pong}";                 // bad literal
      case 2: return "{\"op\":\"ping\"}garbage";       // trailing bytes
      case 3: return "\"\\u12";                        // cut escape
      case 4: {
        std::string deep;                              // depth bomb
        for (int i = 0; i < 100; ++i)
            deep += "[";
        return deep;
      }
      case 5: return "{\"n\": 1e99999}";               // overflow
      default: return randomBytes(rng, 1 + rng.below(64));
    }
}

/** Valid JSON whose shape the service must reject. */
std::string
wrongShape(Rng &rng)
{
    switch (rng.below(6)) {
      case 0: return "[1,2,3]";
      case 1: return "42";
      case 2: return "{}";
      case 3: return "{\"op\":\"transmogrify\"}";
      case 4: return "{\"op\":12}";
      default: return "{\"op\":\"compile\"}"; // missing source
    }
  }

} // namespace

ServiceFuzzSummary
runServiceFuzzer(const ServiceFuzzOptions &options, std::ostream &log)
{
    ServiceFuzzSummary summary;

    std::string dir =
        options.socketDir.empty() ? defaultSocketDir()
                                  : options.socketDir;
    std::string socketPath = dir + "/qfuzz-service-" +
                             std::to_string(::getpid()) + ".sock";

    ServerConfig config;
    config.socketPath = socketPath;
    config.workers = 2;
    config.queueDepth = 4;
    config.maxFrameBytes = 64u << 10; // small cap: easy to exceed
    config.maxQubits = 8;
    config.maxGates = 256;
    config.deadlineSeconds = 5.0;
    Server server(config);
    server.start();

    Rng rng(options.seed);
    auto fail = [&](const std::string &what) {
        summary.failures.push_back(what);
        log << "[service-fuzz] FAIL: " << what << "\n";
    };

    for (size_t i = 0; i < options.iterations; ++i) {
        ++summary.cases;
        std::uint64_t attack = rng.below(8);
        std::string detail;
        try {
            switch (attack) {
              case 0: { // well-formed probe must succeed
                Client c = Client::connectUnix(socketPath);
                Json req = Json::makeObject();
                req.object["op"] = Json::makeString(
                    rng.chance(0.5) ? "health" : "stats");
                req.object["id"] =
                    Json::makeNumber(static_cast<double>(i));
                Json resp = c.call(req);
                if (!resp.boolOr("ok", false)) {
                    fail("well-formed probe answered ok:false");
                } else if (resp.numberOr("id", -1.0) !=
                           static_cast<double>(i)) {
                    fail("response did not echo the request id");
                } else {
                    ++summary.okResponses;
                }
                break;
              }
              case 1: { // malformed JSON -> structured bad_request
                detail = "malformed json";
                Client c = Client::connectUnix(socketPath);
                Json resp;
                std::string err;
                std::string raw = c.callRaw(brokenJson(rng));
                if (!parseJson(raw, &resp, &err))
                    fail("error response is not valid JSON: " + err);
                else if (resp.boolOr("ok", true))
                    fail("malformed JSON was answered ok:true");
                else
                    ++summary.structuredErrors;
                break;
              }
              case 2: { // wrong shape -> structured bad_request
                detail = "wrong shape";
                Client c = Client::connectUnix(socketPath);
                Json resp = c.call(
                    [&] {
                        Json j;
                        std::string payload = wrongShape(rng);
                        parseJson(payload, &j, nullptr);
                        return j;
                    }());
                if (resp.boolOr("ok", true))
                    fail("wrong-shaped request was answered ok:true");
                else
                    ++summary.structuredErrors;
                break;
              }
              case 3: { // broken circuit -> parse_error
                detail = "broken circuit";
                Client c = Client::connectUnix(socketPath);
                Json req = Json::makeObject();
                req.object["op"] = Json::makeString("compile");
                req.object["source"] =
                    Json::makeString(randomBytes(rng, 64));
                Json resp = c.call(req);
                if (resp.boolOr("ok", true))
                    fail("garbage circuit was answered ok:true");
                else
                    ++summary.structuredErrors;
                break;
              }
              case 4: { // oversized length prefix -> error + close
                detail = "oversized prefix";
                Client c = Client::connectUnix(socketPath);
                std::string header = encodeFrameHeader(
                    config.maxFrameBytes + 1 +
                    static_cast<std::uint32_t>(rng.below(1u << 20)));
                ::send(c.fd(), header.data(), header.size(),
                       MSG_NOSIGNAL);
                std::string payload;
                FrameStatus st = readFrame(c.fd(), &payload);
                if (st == FrameStatus::Ok)
                    ++summary.structuredErrors;
                else
                    ++summary.cleanDrops;
                break;
              }
              case 5: { // truncated frame: promise more than we send
                detail = "truncated frame";
                Client c = Client::connectUnix(socketPath);
                std::string header = encodeFrameHeader(1024);
                std::string partial = randomBytes(rng, rng.below(64));
                ::send(c.fd(), header.data(), header.size(),
                       MSG_NOSIGNAL);
                ::send(c.fd(), partial.data(), partial.size(),
                       MSG_NOSIGNAL);
                // Destructor closes mid-payload; the server must
                // treat it as a clean drop.
                ++summary.cleanDrops;
                break;
              }
              case 6: { // abrupt disconnect mid-header
                detail = "partial header";
                Client c = Client::connectUnix(socketPath);
                std::string partial =
                    randomBytes(rng, 1 + rng.below(3));
                ::send(c.fd(), partial.data(), partial.size(),
                       MSG_NOSIGNAL);
                ++summary.cleanDrops;
                break;
              }
              default: { // raw garbage stream
                detail = "garbage stream";
                Client c = Client::connectUnix(socketPath);
                std::string junk = randomBytes(rng, 8 + rng.below(256));
                ::send(c.fd(), junk.data(), junk.size(), MSG_NOSIGNAL);
                ++summary.cleanDrops;
                break;
              }
            }
        } catch (const Error &e) {
            // Transport errors during an attack are acceptable (the
            // server may hang up); a liveness failure below is not.
            if (options.verbose)
                log << "[service-fuzz] case " << i << " (" << detail
                    << "): " << e.what() << "\n";
        }

        std::string why;
        if (!probeAlive(socketPath, &why)) {
            std::ostringstream os;
            os << "daemon unresponsive after case " << i << " (attack "
               << attack << (detail.empty() ? "" : ": " + detail)
               << "): " << why;
            fail(os.str());
            break; // no point continuing against a dead server
        }
        if (options.verbose)
            log << "[service-fuzz] case " << i << " attack " << attack
                << " ok\n";
    }

    server.stop();
    log << "[service-fuzz] " << summary.cases << " cases, "
        << summary.okResponses << " ok, " << summary.structuredErrors
        << " structured errors, " << summary.cleanDrops
        << " clean drops, " << summary.failures.size()
        << " failure(s)\n";
    return summary;
}

} // namespace qsyn::service
