#include "service/client.hpp"

#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/errors.hpp"

namespace qsyn::service {

Client
Client::connectUnix(const std::string &socketPath)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw UserError("cannot create unix socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof addr.sun_path) {
        ::close(fd);
        throw UserError("socket path too long: " + socketPath);
    }
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof addr.sun_path - 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        int err = errno;
        ::close(fd);
        throw UserError("cannot connect to '" + socketPath +
                        "': " + std::strerror(err));
    }
    return Client(fd);
}

Client
Client::connectTcp(const std::string &host, int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throw UserError("cannot create tcp socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw UserError("not an IPv4 address: " + host);
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        int err = errno;
        ::close(fd);
        throw UserError("cannot connect to " + host + ":" +
                        std::to_string(port) + ": " +
                        std::strerror(err));
    }
    return Client(fd);
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1))
{
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
Client::callRaw(const std::string &payload)
{
    if (fd_ < 0)
        throw UserError("client is not connected");
    if (!writeFrame(fd_, payload))
        throw UserError("server connection lost while sending");
    std::string response;
    switch (readFrame(fd_, &response)) {
      case FrameStatus::Ok:
        return response;
      case FrameStatus::Eof:
      case FrameStatus::Truncated:
        throw UserError("server closed the connection");
      case FrameStatus::TooLarge:
        throw UserError("server response exceeds the frame limit");
      case FrameStatus::Error:
        throw UserError("read error on server connection");
    }
    throw UserError("read error on server connection");
}

Json
Client::call(const Json &request)
{
    std::string payload = callRaw(request.dump());
    Json response;
    std::string error;
    if (!parseJson(payload, &response, &error))
        throw UserError("malformed server response: " + error);
    return response;
}

void
Client::throwError(const Json &response)
{
    std::string code = "internal";
    std::string message = "unknown server error";
    if (const Json *e = response.find("error")) {
        code = e->stringOr("code", code);
        message = e->stringOr("message", message);
    }
    throw UserError("server error (" + code + "): " + message);
}

} // namespace qsyn::service
