/**
 * @file
 * Dense state-vector simulator.
 *
 * Not part of the paper's tool (which never simulates quantum state);
 * qsyn uses it as an independent test oracle: a compiled circuit must
 * transform random states exactly like its source circuit, which
 * cross-validates the QMDD equivalence checker and every rewrite pass.
 */

#pragma once

#include <vector>

#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qsyn::sim {

/** State vector over n qubits; qubit 0 is the most significant bit of
 *  the amplitude index (matching the QMDD convention). */
class StateVector
{
  public:
    /** |0...0> on `num_qubits` wires (limited to 24 for memory). */
    explicit StateVector(Qubit num_qubits);

    Qubit numQubits() const { return num_qubits_; }
    size_t dim() const { return amps_.size(); }

    const Cplx &amp(size_t index) const { return amps_[index]; }
    Cplx &amp(size_t index) { return amps_[index]; }

    /** Reset to the computational basis state |index>. */
    void setBasisState(size_t index);

    /** Fill with a Haar-ish random normalized state. */
    void setRandom(Rng &rng);

    /** Apply one unitary gate (Measure/Barrier are rejected). */
    void apply(const Gate &gate);

    /** Apply a whole circuit. */
    void apply(const Circuit &circuit);

    /** Squared norm (should stay 1 within round-off). */
    double normSquared() const;

    /** Fidelity |<this|other>|^2. */
    double fidelityWith(const StateVector &other) const;

    /** Inner product <this|other>. */
    Cplx innerProduct(const StateVector &other) const;

    /** Probability of measuring wire `q` as 1. */
    double probabilityOfOne(Qubit q) const;

    /** True when the two states agree amplitude-wise within eps. */
    bool approxEquals(const StateVector &other, double eps = 1e-8) const;

    /**
     * True when the states are equal up to a global phase: checks
     * |<this|other>|^2 == 1 within eps.
     */
    bool equalsUpToPhase(const StateVector &other,
                         double eps = 1e-8) const;

  private:
    size_t bitOf(Qubit q) const
    {
        return size_t{1} << (num_qubits_ - 1 - q);
    }

    Qubit num_qubits_;
    std::vector<Cplx> amps_;
};

} // namespace qsyn::sim
