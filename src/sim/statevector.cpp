#include "sim/statevector.hpp"

#include <cmath>

#include "common/errors.hpp"

namespace qsyn::sim {

StateVector::StateVector(Qubit num_qubits)
    : num_qubits_(num_qubits),
      amps_(size_t{1} << num_qubits, Cplx(0, 0))
{
    QSYN_ASSERT(num_qubits <= 24, "state vector limited to 24 qubits");
    amps_[0] = Cplx(1, 0);
}

void
StateVector::setBasisState(size_t index)
{
    QSYN_ASSERT(index < amps_.size(), "basis index out of range");
    std::fill(amps_.begin(), amps_.end(), Cplx(0, 0));
    amps_[index] = Cplx(1, 0);
}

void
StateVector::setRandom(Rng &rng)
{
    double norm2 = 0.0;
    for (Cplx &a : amps_) {
        // Box-Muller for approximately Gaussian components gives a
        // Haar-uniform direction after normalization.
        double u1 = rng.uniform();
        double u2 = rng.uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        double r = std::sqrt(-2.0 * std::log(u1));
        a = Cplx(r * std::cos(2 * M_PI * u2), r * std::sin(2 * M_PI * u2));
        norm2 += std::norm(a);
    }
    double inv = 1.0 / std::sqrt(norm2);
    for (Cplx &a : amps_)
        a *= inv;
}

void
StateVector::apply(const Gate &gate)
{
    if (gate.kind() == GateKind::Barrier)
        return;
    QSYN_ASSERT(gate.isUnitary(), "simulator only applies unitary gates");

    size_t cmask = 0;
    for (Qubit c : gate.controls())
        cmask |= bitOf(c);

    if (gate.kind() == GateKind::Swap) {
        size_t abit = bitOf(gate.targets()[0]);
        size_t bbit = bitOf(gate.targets()[1]);
        for (size_t i = 0; i < amps_.size(); ++i) {
            if ((i & cmask) != cmask)
                continue;
            if ((i & abit) != 0 && (i & bbit) == 0) {
                size_t j = (i & ~abit) | bbit;
                std::swap(amps_[i], amps_[j]);
            }
        }
        return;
    }

    Mat2 u = gate.baseMatrix();
    size_t tbit = bitOf(gate.target());
    for (size_t i = 0; i < amps_.size(); ++i) {
        if ((i & tbit) != 0 || (i & cmask) != cmask)
            continue;
        size_t j = i | tbit;
        Cplx a0 = amps_[i], a1 = amps_[j];
        amps_[i] = u.at(0, 0) * a0 + u.at(0, 1) * a1;
        amps_[j] = u.at(1, 0) * a0 + u.at(1, 1) * a1;
    }
}

void
StateVector::apply(const Circuit &circuit)
{
    QSYN_ASSERT(circuit.numQubits() <= num_qubits_,
                "circuit wider than the simulated register");
    for (const Gate &g : circuit)
        apply(g);
}

double
StateVector::normSquared() const
{
    double n = 0.0;
    for (const Cplx &a : amps_)
        n += std::norm(a);
    return n;
}

Cplx
StateVector::innerProduct(const StateVector &other) const
{
    QSYN_ASSERT(other.num_qubits_ == num_qubits_, "dimension mismatch");
    Cplx acc(0, 0);
    for (size_t i = 0; i < amps_.size(); ++i)
        acc += std::conj(amps_[i]) * other.amps_[i];
    return acc;
}

double
StateVector::fidelityWith(const StateVector &other) const
{
    return std::norm(innerProduct(other));
}

double
StateVector::probabilityOfOne(Qubit q) const
{
    size_t qbit = bitOf(q);
    double p = 0.0;
    for (size_t i = 0; i < amps_.size(); ++i) {
        if ((i & qbit) != 0)
            p += std::norm(amps_[i]);
    }
    return p;
}

bool
StateVector::approxEquals(const StateVector &other, double eps) const
{
    if (other.num_qubits_ != num_qubits_)
        return false;
    for (size_t i = 0; i < amps_.size(); ++i) {
        if (!approxEqual(amps_[i], other.amps_[i], eps))
            return false;
    }
    return true;
}

bool
StateVector::equalsUpToPhase(const StateVector &other, double eps) const
{
    if (other.num_qubits_ != num_qubits_)
        return false;
    return std::abs(fidelityWith(other) - 1.0) < eps;
}

} // namespace qsyn::sim
