/**
 * @file
 * Cooperative per-thread wall-time deadlines.
 *
 * A compile is cancelled the same way it is garbage-collected: at
 * safe points it already polls. The deadline is a thread-local
 * steady_clock instant; hot loops call deadline::check() at the same
 * per-gate safe-point where they poll for a pending GC, and the check
 * throws DeadlineError once the instant has passed. Nothing is
 * preempted — a gate application always completes — so invariants
 * (QMDD sessions, table locks) unwind through ordinary RAII.
 *
 * The deadline is deliberately NOT part of CompileOptions: like the
 * verification package (Compiler::setVerifyPackage), it cannot change
 * the compiled output, so compile-cache fingerprints must not see it.
 * Install one with deadline::Scope around a compile; BatchCompiler
 * does this per item (setJobDeadline) and the qsynd service per
 * request.
 */

#pragma once

#include <chrono>

namespace qsyn::deadline {

using Clock = std::chrono::steady_clock;

/** Arm this thread's deadline. Overwrites any previous one. */
void set(Clock::time_point at);

/** Disarm this thread's deadline. */
void clear();

/** True when a deadline is armed on this thread. */
bool active();

/** True when a deadline is armed and already past. */
bool expired();

/**
 * Safe-point poll: throws DeadlineError when the armed deadline has
 * passed; a no-op otherwise (one thread-local load on the fast path).
 * `where` names the cancelled phase in the error message.
 */
void check(const char *where);

/**
 * RAII deadline for the enclosing scope. `seconds <= 0` arms nothing.
 * Restores the previously armed deadline (if any) on destruction, so
 * scopes nest: an inner, tighter deadline wins while it lives.
 */
class Scope
{
  public:
    explicit Scope(double seconds);
    explicit Scope(Clock::time_point at);
    ~Scope();

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    Clock::time_point previous_;
    bool hadPrevious_ = false;
    bool armed_ = false;
};

} // namespace qsyn::deadline
