#include "common/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace qsyn {

std::string
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

std::vector<std::string>
splitFields(std::string_view s, std::string_view delims)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && delims.find(s[i]) != std::string_view::npos)
            ++i;
        size_t j = i;
        while (j < s.size() && delims.find(s[j]) == std::string_view::npos)
            ++j;
        if (j > i)
            out.emplace_back(s.substr(i, j - i));
        i = j;
    }
    return out;
}

std::vector<std::string>
splitOn(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.emplace_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
iequals(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
formatNumber(double value, int max_decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, value);
    std::string s(buf);
    if (s.find('.') != std::string::npos) {
        while (!s.empty() && s.back() == '0')
            s.pop_back();
        if (!s.empty() && s.back() == '.')
            s.pop_back();
    }
    return s;
}

} // namespace qsyn
