#include "common/table_printer.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace qsyn {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < headers_.size(); ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            cell.resize(widths[c], ' ');
            os << cell;
            if (c + 1 < headers_.size())
                os << " | ";
        }
        os << "\n";
    };

    emit_row(headers_);
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c], '-');
        if (c + 1 < headers_.size())
            os << "-+-";
    }
    os << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

std::string
TablePrinter::toString() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace qsyn
