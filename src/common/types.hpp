/**
 * @file
 * Fundamental scalar types shared across the qsyn library.
 */

#pragma once

#include <complex>
#include <cstdint>

namespace qsyn {

/** Index of a qubit (logical or physical, depending on context). */
using Qubit = std::uint32_t;

/** Index of a classical bit (measurement destination). */
using Cbit = std::uint32_t;

/** Complex amplitude / matrix entry type used throughout. */
using Cplx = std::complex<double>;

/** Sentinel for "no qubit". */
inline constexpr Qubit kNoQubit = static_cast<Qubit>(-1);

/**
 * Tolerance used when comparing floating-point amplitudes, angles, and
 * matrix entries for equality. Chosen large enough to absorb round-off
 * from long gate products but far below any physically meaningful
 * amplitude difference.
 */
inline constexpr double kEps = 1e-10;

/** True when two doubles agree within kEps. */
inline bool
approxEqual(double a, double b, double eps = kEps)
{
    double d = a - b;
    return d < eps && d > -eps;
}

/** True when two complex values agree within kEps componentwise. */
inline bool
approxEqual(const Cplx &a, const Cplx &b, double eps = kEps)
{
    return approxEqual(a.real(), b.real(), eps) &&
           approxEqual(a.imag(), b.imag(), eps);
}

/** True when a complex value is within kEps of zero. */
inline bool
approxZero(const Cplx &a, double eps = kEps)
{
    return approxEqual(a.real(), 0.0, eps) && approxEqual(a.imag(), 0.0, eps);
}

/** True when a complex value is within kEps of one. */
inline bool
approxOne(const Cplx &a, double eps = kEps)
{
    return approxEqual(a.real(), 1.0, eps) && approxEqual(a.imag(), 0.0, eps);
}

} // namespace qsyn
