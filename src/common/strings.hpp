/**
 * @file
 * Small string utilities used by the parsers and report writers.
 */

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qsyn {

/** Remove leading and trailing whitespace. */
std::string trim(std::string_view s);

/** Split on any of the characters in `delims`, dropping empty fields. */
std::vector<std::string> splitFields(std::string_view s,
                                     std::string_view delims = " \t");

/** Split on a single character, keeping empty fields. */
std::vector<std::string> splitOn(std::string_view s, char delim);

/** Case-insensitive equality for ASCII strings. */
bool iequals(std::string_view a, std::string_view b);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** True when `s` begins with `prefix`. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True when `s` ends with `suffix`. */
bool endsWith(std::string_view s, std::string_view suffix);

/**
 * Format a double the way tables in the paper do: no trailing zeros,
 * at most `max_decimals` decimal places.
 */
std::string formatNumber(double value, int max_decimals = 2);

} // namespace qsyn
