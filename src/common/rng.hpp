/**
 * @file
 * Deterministic xoshiro256** pseudo-random generator.
 *
 * Used by property tests, the random-circuit generator, and the
 * simulator's random-state sampling. Deterministic seeding keeps every
 * test and benchmark reproducible across runs and platforms.
 */

#pragma once

#include <cstdint>

namespace qsyn {

/** xoshiro256** by Blackman & Vigna (public domain reference algorithm). */
class Rng
{
  public:
    /** Seed with splitmix64 expansion of `seed`. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). `bound` must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability `p`. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace qsyn
