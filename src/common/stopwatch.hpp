/**
 * @file
 * Wall-clock stopwatch for the per-run synthesis timings reported in the
 * paper's Section 5 ("most specifications generated in ~10^-2 seconds").
 */

#pragma once

#include <chrono>

namespace qsyn {

/** Simple monotonic stopwatch; starts on construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /** Restart timing from now. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        auto d = Clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

    /** Milliseconds elapsed. */
    double millis() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace qsyn
