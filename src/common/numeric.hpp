/**
 * @file
 * Strict, non-throwing numeric parsing shared by every frontend and
 * tool. The std::stod/stoul family silently accepts trailing garbage
 * and escapes as uncaught std::out_of_range on oversized literals
 * ("1e999", ".numvars 99999999999999999999"); these helpers reject
 * both and report failure via their return value so callers can raise
 * a proper ParseError/UserError with context.
 */

#pragma once

#include <string_view>

namespace qsyn {

/**
 * Parse `text` as a finite double. The whole string must be consumed:
 * leading whitespace, trailing characters, empty input, and values
 * that overflow to infinity (or parse as inf/nan) all fail. A leading
 * sign is accepted.
 */
bool parseFiniteDouble(std::string_view text, double *out);

/**
 * Parse `text` as an unsigned integer. Digits only: signs, whitespace,
 * base prefixes, trailing characters, empty input, and values beyond
 * unsigned long long all fail.
 */
bool parseUnsigned(std::string_view text, unsigned long long *out);

/**
 * Upper bound on register/operand counts accepted from source files
 * (.qasm qreg sizes, .real .numvars, gate arities). Far above any
 * mappable circuit, low enough that a malformed count cannot drive an
 * allocation of astronomical size or overflow the Qubit type.
 */
inline constexpr unsigned long long kMaxRegisterWidth = 4096;

} // namespace qsyn
