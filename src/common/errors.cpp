#include "common/errors.hpp"

#include <sstream>

namespace qsyn {

namespace {

std::string
formatParseError(const std::string &what, int line, int column)
{
    std::ostringstream os;
    if (line > 0) {
        os << "line " << line;
        if (column > 0)
            os << ":" << column;
        os << ": ";
    }
    os << what;
    return os.str();
}

std::string
formatInternalError(const std::string &what, const char *file, int line)
{
    std::ostringstream os;
    os << "internal error: " << what << " (" << file << ":" << line << ")";
    return os.str();
}

} // namespace

ParseError::ParseError(const std::string &what, int line, int column)
    : UserError(formatParseError(what, line, column)),
      line_(line), column_(column)
{
}

InternalError::InternalError(const std::string &what, const char *file,
                             int line)
    : Error(formatInternalError(what, file, line))
{
}

} // namespace qsyn
