#include "common/deadline.hpp"

#include "common/errors.hpp"

namespace qsyn::deadline {

namespace {

thread_local bool t_armed = false;
thread_local Clock::time_point t_deadline{};

} // namespace

void
set(Clock::time_point at)
{
    t_deadline = at;
    t_armed = true;
}

void
clear()
{
    t_armed = false;
}

bool
active()
{
    return t_armed;
}

bool
expired()
{
    return t_armed && Clock::now() >= t_deadline;
}

void
check(const char *where)
{
    if (!t_armed)
        return;
    if (Clock::now() >= t_deadline) {
        throw DeadlineError(std::string("deadline exceeded during ") +
                            where);
    }
}

Scope::Scope(double seconds)
{
    if (seconds <= 0.0)
        return;
    hadPrevious_ = t_armed;
    previous_ = t_deadline;
    set(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(seconds)));
    armed_ = true;
}

Scope::Scope(Clock::time_point at)
{
    hadPrevious_ = t_armed;
    previous_ = t_deadline;
    set(at);
    armed_ = true;
}

Scope::~Scope()
{
    if (!armed_)
        return;
    if (hadPrevious_)
        set(previous_);
    else
        clear();
}

} // namespace qsyn::deadline
