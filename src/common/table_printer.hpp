/**
 * @file
 * ASCII table printer used by the benchmark harnesses to reproduce the
 * paper's tables on stdout.
 */

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qsyn {

/**
 * Accumulates rows of string cells and prints them as an aligned ASCII
 * table with a header rule, e.g.
 *
 *     Name     | Qubits | Cost
 *     ---------+--------+------
 *     ibmqx2   | 5      | 0.3
 */
class TablePrinter
{
  public:
    /** Create a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append one row; pads or truncates to the header width. */
    void addRow(std::vector<std::string> cells);

    /** Render the table to `os`. */
    void print(std::ostream &os) const;

    /** Render the table to a string. */
    std::string toString() const;

    /** Number of data rows added so far. */
    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace qsyn
