#include "common/numeric.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

namespace qsyn {

bool
parseFiniteDouble(std::string_view text, double *out)
{
    if (text.empty() ||
        std::isspace(static_cast<unsigned char>(text.front())))
        return false;
    // strtod needs a NUL terminator; string_views are not guaranteed
    // one, so copy (the inputs are short tokens).
    std::string buf(text);
    errno = 0;
    char *end = nullptr;
    double value = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size())
        return false; // trailing characters (or nothing consumed)
    if (!std::isfinite(value))
        return false; // overflow, or a literal "inf"/"nan"
    *out = value;
    return true;
}

bool
parseUnsigned(std::string_view text, unsigned long long *out)
{
    if (text.empty() ||
        !std::isdigit(static_cast<unsigned char>(text.front())))
        return false; // rejects signs, whitespace, and empty input
    std::string buf(text);
    errno = 0;
    char *end = nullptr;
    unsigned long long value = std::strtoull(buf.c_str(), &end, 10);
    if (end != buf.c_str() + buf.size())
        return false;
    if (errno == ERANGE)
        return false;
    *out = value;
    return true;
}

} // namespace qsyn
