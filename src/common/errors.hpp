/**
 * @file
 * Error hierarchy for the qsyn library.
 *
 * Follows the fatal-vs-panic discipline: conditions caused by user input
 * (bad source files, impossible mapping requests, unknown devices) throw
 * a subclass of UserError; conditions that indicate a bug inside qsyn
 * itself (broken invariants) throw InternalError via QSYN_ASSERT.
 */

#pragma once

#include <stdexcept>
#include <string>

namespace qsyn {

/** Base class of every exception thrown by qsyn. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what) : std::runtime_error(what) {}
};

/** The user supplied invalid input (bad file, bad option, bad request). */
class UserError : public Error
{
  public:
    explicit UserError(const std::string &what) : Error(what) {}
};

/** A source file failed to parse. Carries line/column context. */
class ParseError : public UserError
{
  public:
    ParseError(const std::string &what, int line, int column);

    /** 1-based line of the offending token (0 if unknown). */
    int line() const { return line_; }
    /** 1-based column of the offending token (0 if unknown). */
    int column() const { return column_; }

  private:
    int line_;
    int column_;
};

/** A circuit cannot be realized on the requested device. */
class MappingError : public UserError
{
  public:
    explicit MappingError(const std::string &what) : UserError(what) {}
};

/** Formal verification rejected a compiled circuit. */
class VerificationError : public Error
{
  public:
    explicit VerificationError(const std::string &what) : Error(what) {}
};

/** A cooperative wall-time deadline expired mid-compile (see
 *  common/deadline.hpp). A user-imposed limit, not a qsyn bug: the
 *  batch layer records it per item and the compile service maps it to
 *  a structured `deadline_exceeded` response. */
class DeadlineError : public UserError
{
  public:
    explicit DeadlineError(const std::string &what) : UserError(what) {}
};

/** An internal invariant was violated: a qsyn bug, not a user error. */
class InternalError : public Error
{
  public:
    InternalError(const std::string &what, const char *file, int line);
};

/** Throw InternalError with source location when `cond` is false. */
#define QSYN_ASSERT(cond, msg)                                               \
    do {                                                                     \
        if (!(cond)) {                                                       \
            throw ::qsyn::InternalError((msg), __FILE__, __LINE__);          \
        }                                                                    \
    } while (false)

} // namespace qsyn
