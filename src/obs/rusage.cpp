#include "obs/rusage.hpp"

#include <algorithm>
#include <string>

#include <sys/resource.h>

#include "obs/obs.hpp"

namespace qsyn::obs {

namespace {

struct CpuSample
{
    double userSec = 0.0;
    double sysSec = 0.0;
    std::int64_t peakRssKb = 0;
    bool valid = false;
};

double
toSeconds(const timeval &tv)
{
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
}

CpuSample
sampleCpu()
{
    CpuSample s;
    rusage ru{};
    // Per-thread CPU accounting where the platform has it, so batch
    // workers measure only themselves; ru_maxrss stays process-wide
    // either way, so take it from RUSAGE_SELF below.
#ifdef RUSAGE_THREAD
    if (getrusage(RUSAGE_THREAD, &ru) == 0) {
        s.userSec = toSeconds(ru.ru_utime);
        s.sysSec = toSeconds(ru.ru_stime);
        s.valid = true;
    }
#endif
    rusage self{};
    if (getrusage(RUSAGE_SELF, &self) == 0) {
        s.peakRssKb = static_cast<std::int64_t>(self.ru_maxrss);
        if (!s.valid) {
            s.userSec = toSeconds(self.ru_utime);
            s.sysSec = toSeconds(self.ru_stime);
            s.valid = true;
        }
    }
    return s;
}

} // namespace

void
ResourceUsage::accumulate(const ResourceUsage &other)
{
    wallSeconds += other.wallSeconds;
    userCpuSeconds += other.userCpuSeconds;
    sysCpuSeconds += other.sysCpuSeconds;
    peakRssDeltaKb += other.peakRssDeltaKb;
    peakRssKb = std::max(peakRssKb, other.peakRssKb);
    qmddPeakNodes = std::max(qmddPeakNodes, other.qmddPeakNodes);
    qmddArenaBytes = std::max(qmddArenaBytes, other.qmddArenaBytes);
    valid = valid || other.valid;
}

ResourceProbe::ResourceProbe()
    : start_(std::chrono::steady_clock::now())
{
    CpuSample s = sampleCpu();
    startUserSec_ = s.userSec;
    startSysSec_ = s.sysSec;
    startPeakRssKb_ = s.peakRssKb;
    valid_ = s.valid;
}

ResourceUsage
ResourceProbe::sample() const
{
    ResourceUsage u;
    u.wallSeconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    CpuSample s = sampleCpu();
    if (valid_ && s.valid) {
        u.userCpuSeconds = std::max(0.0, s.userSec - startUserSec_);
        u.sysCpuSeconds = std::max(0.0, s.sysSec - startSysSec_);
        u.peakRssDeltaKb =
            std::max<std::int64_t>(0, s.peakRssKb - startPeakRssKb_);
        u.peakRssKb = s.peakRssKb;
        u.valid = true;
    }
    return u;
}

void
observeResourceUsage(MetricsRegistry &m, const char *prefix,
                     const ResourceUsage &usage)
{
    std::string p(prefix);
    m.observe(p + ".latency_us", usage.wallSeconds * 1e6);
    m.observe(p + ".user_cpu_us", usage.userCpuSeconds * 1e6);
    m.observe(p + ".sys_cpu_us", usage.sysCpuSeconds * 1e6);
    m.observe(p + ".peak_rss_delta_kb",
              static_cast<double>(usage.peakRssDeltaKb));
    if (usage.qmddPeakNodes != 0)
        m.observe(p + ".qmdd_peak_nodes",
                  static_cast<double>(usage.qmddPeakNodes));
}

} // namespace qsyn::obs
