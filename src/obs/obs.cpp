#include "obs/obs.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "obs/flight.hpp"

namespace qsyn::obs {

/* ------------------------------------------------------------------ */
/* JSON helpers                                                       */
/* ------------------------------------------------------------------ */

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/* ------------------------------------------------------------------ */
/* Leveled logging                                                    */
/* ------------------------------------------------------------------ */

namespace {

std::atomic<int> g_log_level{-1}; // -1 = not yet initialized
std::atomic<std::ostream *> g_log_stream{nullptr};

LogLevel
logLevelFromEnv()
{
    const char *env = std::getenv("QSYN_LOG");
    LogLevel level = LogLevel::Quiet;
    if (env != nullptr)
        parseLogLevel(env, &level); // unknown values keep Quiet
    return level;
}

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Quiet:
        return "quiet";
      case LogLevel::Info:
        return "info";
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Trace:
        return "trace";
    }
    return "?";
}

bool
parseLogLevel(std::string_view name, LogLevel *out)
{
    if (name == "quiet")
        *out = LogLevel::Quiet;
    else if (name == "info")
        *out = LogLevel::Info;
    else if (name == "debug")
        *out = LogLevel::Debug;
    else if (name == "trace")
        *out = LogLevel::Trace;
    else
        return false;
    return true;
}

LogLevel
logLevel()
{
    int level = g_log_level.load(std::memory_order_relaxed);
    if (level < 0) {
        level = static_cast<int>(logLevelFromEnv());
        g_log_level.store(level, std::memory_order_relaxed);
    }
    return static_cast<LogLevel>(level);
}

void
setLogLevel(LogLevel level)
{
    g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void
setLogStream(std::ostream *stream)
{
    g_log_stream.store(stream, std::memory_order_release);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel()) &&
           level != LogLevel::Quiet;
}

LogMessage::LogMessage(LogLevel level, const char *component)
    : level_(level), component_(component)
{
}

LogMessage::~LogMessage()
{
    std::string text = buf_.str();
    if (flight::recording())
        flight::record(flight::EventKind::Log, component_,
                       static_cast<double>(level_), text);
    std::ostream *out = g_log_stream.load(std::memory_order_acquire);
    if (out == nullptr)
        out = &std::cerr;
    *out << "[" << logLevelName(level_) << "] " << component_ << ": "
         << text << "\n";
}

/* ------------------------------------------------------------------ */
/* Metrics                                                            */
/* ------------------------------------------------------------------ */

void
Histogram::observe(double value)
{
    if (count == 0) {
        min = max = value;
    } else {
        min = std::min(min, value);
        max = std::max(max, value);
    }
    ++count;
    sum += value;
    int bucket = 0;
    double bound = 1.0;
    while (bucket < kBuckets - 1 && value > bound) {
        bound *= 2.0;
        ++bucket;
    }
    ++buckets[static_cast<size_t>(bucket)];
}

void
MetricsRegistry::addCounter(std::string_view name, double delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        counters_.emplace(std::string(name), delta);
    else
        it->second += delta;
}

void
MetricsRegistry::setGauge(std::string_view name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        gauges_.emplace(std::string(name), value);
    else
        it->second = value;
}

void
MetricsRegistry::observe(std::string_view name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(std::string(name), Histogram{}).first;
    it->second.observe(value);
}

double
MetricsRegistry::counter(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

double
MetricsRegistry::gauge(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

Histogram
MetricsRegistry::histogram(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? Histogram{} : it->second;
}

bool
MetricsRegistry::empty() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

namespace {

void
emitNumber(std::ostringstream &os, double v)
{
    // Counters and gauges are usually integral; print them as such so
    // the JSON stays friendly to strict consumers.
    if (v == static_cast<double>(static_cast<long long>(v)))
        os << static_cast<long long>(v);
    else
        os << v;
}

} // namespace

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return toJsonLocked();
}

bool
MetricsRegistry::tryToJson(std::string *out) const
{
    std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
    if (!lock.owns_lock())
        return false;
    *out = toJsonLocked();
    return true;
}

std::string
MetricsRegistry::toJsonLocked() const
{
    std::ostringstream os;
    os.precision(12);
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": ";
        emitNumber(os, value);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : gauges_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": ";
        emitNumber(os, value);
        first = false;
    }
    os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "" : ",") << "\n    \"" << jsonEscape(name)
           << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
           << ", \"min\": " << h.min << ", \"max\": " << h.max
           << ", \"mean\": " << h.mean()
           << ", \"p50\": " << h.quantile(0.50)
           << ", \"p95\": " << h.quantile(0.95)
           << ", \"p99\": " << h.quantile(0.99) << ", \"buckets\": {";
        bool bfirst = true;
        double bound = 1.0;
        for (int i = 0; i < Histogram::kBuckets; ++i, bound *= 2.0) {
            if (h.buckets[static_cast<size_t>(i)] == 0)
                continue;
            os << (bfirst ? "" : ", ") << "\"le_" << bound
               << "\": " << h.buckets[static_cast<size_t>(i)];
            bfirst = false;
        }
        os << "}}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "}\n}\n";
    return os.str();
}

/* ------------------------------------------------------------------ */
/* Tracing                                                            */
/* ------------------------------------------------------------------ */

namespace detail {
std::atomic<Sink *> g_sink{nullptr};
} // namespace detail

void
installSink(Sink *s)
{
    detail::g_sink.store(s, std::memory_order_release);
}

std::uint32_t
currentThreadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

void
nameCurrentThread(std::string_view name)
{
    flight::nameThreadForCrash(name);
    if (Sink *s = sink())
        s->setThreadName(currentThreadId(), name);
}

Sink::Sink() : epoch_(std::chrono::steady_clock::now()) {}

double
Sink::nowUs() const
{
    return toUs(std::chrono::steady_clock::now());
}

double
Sink::toUs(std::chrono::steady_clock::time_point t) const
{
    return std::chrono::duration<double, std::micro>(t - epoch_).count();
}

void
Sink::record(TraceEvent &&event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
Sink::setThreadName(std::uint32_t tid, std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    threadNames_[tid] = std::string(name);
}

std::vector<TraceEvent>
Sink::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

void
Sink::clearEvents()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::string
Sink::traceJson() const
{
    std::vector<TraceEvent> evs;
    std::map<std::uint32_t, std::string> names;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        evs = events_;
        names = threadNames_;
    }
    std::ostringstream os;
    os.precision(12);
    os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"args\": {\"name\": \"qsyn\"}}";
    for (const auto &[tid, name] : names) {
        os << ",\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
              "\"tid\": "
           << tid << ", \"args\": {\"name\": \"" << jsonEscape(name)
           << "\"}}";
    }
    for (const TraceEvent &e : evs) {
        os << ",\n{\"name\": \"" << jsonEscape(e.name) << "\", \"cat\": \""
           << jsonEscape(e.category) << "\", \"ph\": \"X\", \"ts\": "
           << e.tsUs << ", \"dur\": " << e.durUs
           << ", \"pid\": 1, \"tid\": " << e.tid;
        if (!e.argsJson.empty())
            os << ", \"args\": {" << e.argsJson << "}";
        os << "}";
    }
    os << "\n]\n}\n";
    return os.str();
}

/* ------------------------------------------------------------------ */
/* Span                                                               */
/* ------------------------------------------------------------------ */

Span::Span(const char *name, const char *category)
    : sink_(sink()), name_(name), category_(category),
      flight_(flight::recording())
{
    timing_ = sink_ != nullptr || flight_;
    if (timing_)
        start_ = std::chrono::steady_clock::now();
    if (flight_) {
        flight::record(flight::EventKind::SpanBegin, name_);
        flight::pushSpan(name_);
    }
}

Span::Span(const char *name, TimedTag, const char *category)
    : sink_(sink()), name_(name), category_(category), timing_(true),
      flight_(flight::recording())
{
    start_ = std::chrono::steady_clock::now();
    if (flight_) {
        flight::record(flight::EventKind::SpanBegin, name_);
        flight::pushSpan(name_);
    }
}

double
Span::seconds() const
{
    if (!timing_)
        return 0.0;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

void
Span::finish()
{
    if (done_)
        return;
    done_ = true;
    if (flight_) {
        double durUs = timing_ ? seconds() * 1e6 : 0.0;
        flight::record(flight::EventKind::SpanEnd, name_, durUs);
        flight::popSpan();
    }
    if (sink_ == nullptr)
        return;
    auto end = std::chrono::steady_clock::now();
    TraceEvent ev;
    ev.name = name_;
    ev.category = category_;
    ev.tsUs = sink_->toUs(start_);
    ev.durUs =
        std::chrono::duration<double, std::micro>(end - start_).count();
    ev.tid = currentThreadId();
    ev.argsJson = std::move(argsJson_);
    sink_->record(std::move(ev));
}

namespace {

void
appendArgKey(std::string &json, std::string_view key)
{
    if (!json.empty())
        json += ", ";
    json += "\"";
    json += jsonEscape(key);
    json += "\": ";
}

} // namespace

void
Span::argNumber(std::string_view key, double value)
{
    if (sink_ == nullptr)
        return;
    std::ostringstream os;
    os.precision(12);
    emitNumber(os, value);
    appendArgKey(argsJson_, key);
    argsJson_ += os.str();
}

void
Span::argString(std::string_view key, std::string_view value)
{
    if (sink_ == nullptr)
        return;
    appendArgKey(argsJson_, key);
    argsJson_ += "\"";
    argsJson_ += jsonEscape(value);
    argsJson_ += "\"";
}

} // namespace qsyn::obs
