/**
 * @file
 * Compiler-wide observability: scoped trace spans, a metrics registry
 * (counters / gauges / histograms), and a leveled structured logger.
 *
 * Design rules:
 *  - With no sink installed every instrumentation call reduces to one
 *    relaxed atomic load and a branch on a null pointer, so the hot
 *    compile path pays nothing when tracing is off (bench_micro's
 *    BM_ObsSpanDisabled / BM_ObsCounterDisabled measure this).
 *  - The sink is process-global but *not* owned globally: callers (CLI
 *    drivers, tests) create a Sink on their stack and install it for a
 *    scope (see ScopedSink).
 *  - Span nesting needs no bookkeeping: spans are exported as Chrome
 *    trace-event "complete" (ph:"X") events whose ts/dur containment
 *    on one thread id reconstructs the flame graph in Perfetto or
 *    chrome://tracing.
 *
 * Naming conventions (see docs/observability.md): dot-separated,
 * lowercase, `<layer>.<thing>` — e.g. span `compile.route`, counter
 * `route.swaps_inserted`, gauge `qmdd.unique_hit_rate`, histogram
 * `route.reroute_path_length`.
 */

#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace qsyn::obs {

/* ------------------------------------------------------------------ */
/* JSON helpers                                                       */
/* ------------------------------------------------------------------ */

/**
 * Escape a string for inclusion inside a JSON string literal: quotes,
 * backslashes, and all control characters (U+0000..U+001F, with the
 * common short forms \n \r \t \b \f and \u00XX otherwise). Bytes >=
 * 0x20 pass through untouched, so UTF-8 survives.
 */
std::string jsonEscape(std::string_view s);

/* ------------------------------------------------------------------ */
/* Leveled logging                                                    */
/* ------------------------------------------------------------------ */

/** Verbosity levels, ordered: each level includes the ones before. */
enum class LogLevel : int
{
    Quiet = 0, ///< nothing
    Info = 1,  ///< high-level progress
    Debug = 2, ///< per-stage detail (pass breakdowns, stats dumps)
    Trace = 3  ///< per-decision detail (reroutes, pass rounds)
};

/** Printable name ("quiet", "info", ...). */
const char *logLevelName(LogLevel level);

/** Parse a level name; returns false on unknown names. */
bool parseLogLevel(std::string_view name, LogLevel *out);

/**
 * Current level. Defaults to Quiet, or to the value of the QSYN_LOG
 * environment variable (read once, on first use) when set.
 */
LogLevel logLevel();

/** Override the level (CLI --log-level beats QSYN_LOG). */
void setLogLevel(LogLevel level);

/** Redirect log output (default: stderr). Null restores stderr. */
void setLogStream(std::ostream *stream);

/** True when a message at `level` would be emitted. */
bool logEnabled(LogLevel level);

/**
 * One log line, built up by streaming and emitted on destruction as
 *
 *     [level] component: message\n
 *
 * Use via the QSYN_OBS_LOG macro so the message construction is
 * skipped entirely when the level is disabled.
 */
class LogMessage
{
  public:
    LogMessage(LogLevel level, const char *component);
    ~LogMessage();

    LogMessage(const LogMessage &) = delete;
    LogMessage &operator=(const LogMessage &) = delete;

    std::ostream &stream() { return buf_; }

  private:
    LogLevel level_;
    const char *component_;
    std::ostringstream buf_;
};

/** Leveled log statement: evaluates its operands only when enabled.
 *  Usage: QSYN_OBS_LOG(Debug, "opt") << "removed " << n << " gates"; */
#define QSYN_OBS_LOG(level, component)                                   \
    if (!::qsyn::obs::logEnabled(::qsyn::obs::LogLevel::level))          \
        ;                                                                \
    else                                                                 \
        ::qsyn::obs::LogMessage(::qsyn::obs::LogLevel::level,            \
                                (component))                             \
            .stream()

/* ------------------------------------------------------------------ */
/* Metrics                                                            */
/* ------------------------------------------------------------------ */

/**
 * Fixed-layout histogram: count/sum/min/max plus power-of-two upper-
 * bound buckets (bucket i counts samples with value <= 2^i; the last
 * bucket is a catch-all). Cheap enough to update under the registry
 * mutex and precise enough for path-length / node-count shapes.
 */
struct Histogram
{
    static constexpr int kBuckets = 32;

    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    void observe(double value);
    double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }

    /** Upper bound of bucket `bucket` (2^bucket). */
    static double bucketUpperBound(int bucket);

    /**
     * Estimate the q-quantile (q in [0,1]) by linear interpolation
     * inside the power-of-two bucket holding the target rank, clamped
     * to the exact [min, max] extremes. Accuracy is bounded by bucket
     * width — good enough for p50/p95/p99 dashboards, which is what
     * the `*.latency_us` microsecond rule keeps meaningful.
     */
    double quantile(double q) const;
};

/**
 * Thread-safe registry of named counters (monotone adds), gauges
 * (last-write-wins), and histograms. Name lookups take a mutex, so
 * hot loops should accumulate locally and flush once per phase — the
 * routing and QMDD layers do exactly that.
 */
class MetricsRegistry
{
  public:
    void addCounter(std::string_view name, double delta = 1.0);
    void setGauge(std::string_view name, double value);
    void observe(std::string_view name, double value);

    /** Value of a counter / gauge; 0 when absent. */
    double counter(std::string_view name) const;
    double gauge(std::string_view name) const;
    /** Copy of a histogram; zero-count when absent. */
    Histogram histogram(std::string_view name) const;

    bool empty() const;

    /** Snapshot as a JSON object: {"counters": {...}, "gauges": {...},
     *  "histograms": {name: {count,sum,min,max,mean,p50,p95,p99,
     *  buckets}}}. */
    std::string toJson() const;

    /** Like toJson(), but try-lock: returns false without blocking
     *  when the registry mutex is contended. Crash-dump safe(ish) —
     *  the flight recorder uses it so a fault under the metrics lock
     *  cannot deadlock the handler. */
    bool tryToJson(std::string *out) const;

    /** Prometheus text exposition 0.0.4 (see obs/expo.hpp for the
     *  naming rules). Defined in expo.cpp. */
    std::string toPrometheus() const;

  private:
    std::string toJsonLocked() const;

    mutable std::mutex mutex_;
    std::map<std::string, double, std::less<>> counters_;
    std::map<std::string, double, std::less<>> gauges_;
    std::map<std::string, Histogram, std::less<>> histograms_;
};

/* ------------------------------------------------------------------ */
/* Tracing                                                            */
/* ------------------------------------------------------------------ */

/** One completed span, in Chrome trace-event terms. */
struct TraceEvent
{
    std::string name;
    const char *category = "qsyn";
    double tsUs = 0.0;  ///< start, microseconds since sink creation
    double durUs = 0.0; ///< duration, microseconds
    std::uint32_t tid = 0;
    /** Pre-rendered `"key": value` pairs, comma-joined (no braces);
     *  empty = no args object. */
    std::string argsJson;
};

/**
 * Collection point for spans and metrics. Thread-safe; one per
 * observed run. Install with installSink / ScopedSink.
 */
class Sink
{
  public:
    Sink();

    Sink(const Sink &) = delete;
    Sink &operator=(const Sink &) = delete;

    /** Microseconds elapsed since this sink was created. */
    double nowUs() const;
    /** Convert an absolute steady_clock time to sink-relative us. */
    double toUs(std::chrono::steady_clock::time_point t) const;

    void record(TraceEvent &&event);

    /** Attach a human-readable name to a thread id; exported as a
     *  Chrome trace `thread_name` metadata event so Perfetto shows
     *  `batch-worker-3` instead of a bare tid. Last write wins. */
    void setThreadName(std::uint32_t tid, std::string_view name);

    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /** Copy of everything recorded so far (tests, exporters). */
    std::vector<TraceEvent> events() const;

    /** Drop recorded events (long-running collectors, benchmarks). */
    void clearEvents();

    /** Chrome trace-event JSON ({"traceEvents": [...]}); loads in
     *  Perfetto and chrome://tracing. */
    std::string traceJson() const;
    /** Metrics snapshot JSON (MetricsRegistry::toJson). */
    std::string metricsJson() const { return metrics_.toJson(); }

  private:
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::map<std::uint32_t, std::string> threadNames_;
    MetricsRegistry metrics_;
};

namespace detail {
extern std::atomic<Sink *> g_sink;
} // namespace detail

/** The installed sink, or null when observability is off. This is the
 *  null-pointer branch every instrumentation site starts with. */
inline Sink *
sink()
{
    return detail::g_sink.load(std::memory_order_acquire);
}

/** True when a sink is installed (spans/metrics will be recorded). */
inline bool
enabled()
{
    return sink() != nullptr;
}

/** Install (or, with null, remove) the process-global sink. The caller
 *  keeps ownership and must outlive the installation. */
void installSink(Sink *s);

/** RAII: owns a Sink and installs it for the enclosing scope. */
class ScopedSink
{
  public:
    ScopedSink() { installSink(&sink_); }
    ~ScopedSink() { installSink(nullptr); }

    ScopedSink(const ScopedSink &) = delete;
    ScopedSink &operator=(const ScopedSink &) = delete;

    Sink *operator->() { return &sink_; }
    Sink &operator*() { return sink_; }
    Sink *get() { return &sink_; }

  private:
    Sink sink_;
};

/** Small dense id for the calling thread (Chrome "tid" field). */
std::uint32_t currentThreadId();

/** Name the calling thread everywhere it matters: the installed sink
 *  (trace thread_name metadata, if a sink is up) and the flight
 *  recorder (crash-dump span stacks). Call once per thread, after the
 *  sink is installed — BatchCompiler workers and the tool mains do. */
void nameCurrentThread(std::string_view name);

/** Tag type selecting the always-timed Span constructor. */
struct TimedTag
{
};
inline constexpr TimedTag kTimed{};

/**
 * RAII scoped span. The plain constructor is free when no sink is
 * installed (it never reads the clock); the kTimed variant always
 * times so callers can reuse the measurement (compile-stage seconds in
 * CompileResult) whether or not tracing is on.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *category = "qsyn");
    /** Always-timed: seconds() is valid even with no sink. */
    Span(const char *name, TimedTag, const char *category = "qsyn");
    ~Span() { finish(); }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a key/value to the span's args (no-op with no sink). */
    template <class T,
              std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
    void
    arg(std::string_view key, T value)
    {
        argNumber(key, static_cast<double>(value));
    }
    void arg(std::string_view key, std::string_view value)
    {
        argString(key, value);
    }
    void arg(std::string_view key, const char *value)
    {
        argString(key, value);
    }

    /** Seconds elapsed since construction. Valid while timing (sink
     *  installed or kTimed); otherwise returns 0. */
    double seconds() const;

    /** Record the span now instead of at scope exit. Idempotent. */
    void finish();

  private:
    void argNumber(std::string_view key, double value);
    void argString(std::string_view key, std::string_view value);

    Sink *sink_;
    const char *name_;
    const char *category_;
    std::chrono::steady_clock::time_point start_;
    bool timing_;
    bool flight_; ///< flight recorder was on at construction
    bool done_ = false;
    std::string argsJson_;
};

} // namespace qsyn::obs
