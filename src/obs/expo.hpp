/**
 * @file
 * Prometheus text exposition (format 0.0.4) for the metrics registry.
 *
 * The registry's internal names are dot-separated
 * (`route.swaps_inserted`); exposition sanitizes them to
 * `[a-zA-Z0-9_:]` and prefixes `qsyn_`, so the series above scrapes as
 * `qsyn_route_swaps_inserted_total`. Counters get the `_total` suffix,
 * gauges are emitted verbatim, and histograms render the standard
 * cumulative `_bucket{le="..."}` series (ending with `+Inf`) plus
 * `_sum` / `_count`, reusing the registry's power-of-two bucket bounds.
 *
 * `MetricsRegistry::toPrometheus()` (declared in obs.hpp, defined
 * here) produces the page; `writePrometheusFile` is the `--metrics-prom
 * <file>` backend shared by the tools.
 */

#pragma once

#include <string>
#include <string_view>

namespace qsyn::obs {

class MetricsRegistry;

/**
 * Sanitize a registry metric name into a Prometheus metric name:
 * every character outside `[a-zA-Z0-9_:]` becomes `_`, and the result
 * is prefixed with `qsyn_`.
 */
std::string promName(std::string_view name);

/**
 * Render `m.toPrometheus()` into `path`. Returns false (and fills
 * `*error` when non-null) if the file cannot be written.
 */
bool writePrometheusFile(const MetricsRegistry &m,
                         const std::string &path,
                         std::string *error = nullptr);

} // namespace qsyn::obs
