/**
 * @file
 * Per-compile resource accounting: a ResourceProbe samples CPU time
 * (getrusage) and peak RSS around a unit of work, and the resulting
 * ResourceUsage rides on every CompileResult so batch summaries,
 * report JSON, and the `compile.*` histograms can attribute cost per
 * request — the accounting a long-lived compile service (qsynd) needs
 * to bill and bound individual requests.
 *
 * CPU time is measured per *thread* where the platform allows
 * (RUSAGE_THREAD on Linux), so concurrent batch workers do not bleed
 * into each other's numbers; peak RSS is inherently process-wide, so
 * per-compile deltas in a parallel batch are an upper bound.
 */

#pragma once

#include <chrono>
#include <cstdint>

namespace qsyn::obs {

class MetricsRegistry;

/** Resources one unit of work (usually one compile) consumed. */
struct ResourceUsage
{
    /** Wall-clock time of the probed window, seconds. */
    double wallSeconds = 0.0;
    /** User-mode CPU seconds (per-thread where supported). */
    double userCpuSeconds = 0.0;
    /** Kernel-mode CPU seconds (per-thread where supported). */
    double sysCpuSeconds = 0.0;
    /** Growth of the process's peak RSS across the window, KiB.
     *  Zero when the high-water mark did not move (warm runs). */
    std::int64_t peakRssDeltaKb = 0;
    /** Absolute process peak RSS when the window closed, KiB. */
    std::int64_t peakRssKb = 0;
    /** QMDD allocator high-water during the work: peak live nodes of
     *  the verification package, and the bytes its node arena had
     *  committed. Zero when verification was skipped. */
    std::uint64_t qmddPeakNodes = 0;
    std::uint64_t qmddArenaBytes = 0;
    /** True when the probe actually sampled (getrusage succeeded). */
    bool valid = false;

    double cpuSeconds() const { return userCpuSeconds + sysCpuSeconds; }

    /** Element-wise accumulation for batch aggregates: times add,
     *  peaks take the max. */
    void accumulate(const ResourceUsage &other);
};

/**
 * RAII-style sampler: construction records the current CPU / RSS
 * state, sample() returns the deltas since then. Cheap (two syscalls
 * per end-to-end compile), so it is always on — not gated on the obs
 * sink.
 */
class ResourceProbe
{
  public:
    ResourceProbe();

    /** Usage since construction. QMDD fields are left zero — the
     *  caller owns the package and fills them in. */
    ResourceUsage sample() const;

  private:
    std::chrono::steady_clock::time_point start_;
    double startUserSec_ = 0.0;
    double startSysSec_ = 0.0;
    std::int64_t startPeakRssKb_ = 0;
    bool valid_ = false;
};

/**
 * Record `usage` into `<prefix>.*` histograms on a registry:
 * `<prefix>.latency_us`, `.user_cpu_us`, `.sys_cpu_us`,
 * `.peak_rss_delta_kb`, and `.qmdd_peak_nodes` (the last only when
 * nonzero). Latencies follow the `*.latency_us` microsecond rule (see
 * docs/observability.md) so the power-of-two buckets resolve
 * sub-second samples.
 */
void observeResourceUsage(MetricsRegistry &m, const char *prefix,
                          const ResourceUsage &usage);

} // namespace qsyn::obs
