#include "obs/flight.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "obs/obs.hpp"

/* The flight ring is a seqlock: writers publish non-atomic payload
 * fields between two release-stores of the slot's sequence number, and
 * readers re-check the sequence after copying, dropping torn slots.
 * That validation is invisible to ThreadSanitizer, which would flag
 * every payload access as a race — so the two seqlock-protocol
 * functions opt out of instrumentation. */
#if defined(__SANITIZE_THREAD__)
#define QSYN_NO_TSAN __attribute__((no_sanitize("thread")))
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define QSYN_NO_TSAN __attribute__((no_sanitize("thread")))
#endif
#endif
#ifndef QSYN_NO_TSAN
#define QSYN_NO_TSAN
#endif

namespace qsyn::obs::flight {

namespace detail {
std::atomic<bool> g_recording{false};
} // namespace detail

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::SpanBegin:
        return "span_begin";
      case EventKind::SpanEnd:
        return "span_end";
      case EventKind::Log:
        return "log";
      case EventKind::Mark:
        return "mark";
    }
    return "?";
}

namespace {

/* ------------------------------------------------------------------ */
/* The ring                                                           */
/* ------------------------------------------------------------------ */

/** Seqlock-style slot: seq is 0 while empty or mid-write, the event's
 *  1-based sequence number once the payload is complete. */
struct Slot
{
    std::atomic<std::uint64_t> seq{0};
    std::uint64_t tsNs = 0;
    const char *name = nullptr;
    double value = 0.0;
    std::uint32_t tid = 0;
    EventKind kind = EventKind::Mark;
    char detail[sizeof(Event::detail)] = {};
};

Slot g_ring[kCapacity];
std::atomic<std::uint64_t> g_cursor{0};

/** Recorder epoch, captured before main() so tsNs is meaningful from
 *  the first event. */
const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - g_epoch)
            .count());
}

/* ------------------------------------------------------------------ */
/* Per-thread span stacks                                             */
/* ------------------------------------------------------------------ */

constexpr int kMaxSpanDepth = 32;
constexpr std::size_t kMaxThreads = 128;

/** One registered thread's live-span state. tid == 0 marks a free
 *  slot. The crash handler reads these racily: depth is clamped and
 *  names are static-lifetime strings, so the worst outcome of a race
 *  is a one-frame-stale stack. */
struct ThreadSlot
{
    std::atomic<std::uint32_t> tid{0};
    std::atomic<int> depth{0};
    const char *names[kMaxSpanDepth] = {};
    char threadName[32] = {};
};

ThreadSlot g_threads[kMaxThreads];

/** Claims a ThreadSlot on first use, releases it at thread exit so
 *  slot count bounds *live* threads, not historical ones. */
struct ThreadRegistration
{
    ThreadSlot *slot = nullptr;

    ThreadRegistration()
    {
        std::uint32_t tid = currentThreadId();
        for (auto &candidate : g_threads) {
            std::uint32_t expected = 0;
            if (candidate.tid.compare_exchange_strong(
                    expected, tid, std::memory_order_acq_rel)) {
                slot = &candidate;
                return;
            }
        }
        // Table full: this thread's spans go untracked (events still
        // land in the ring).
    }

    ~ThreadRegistration()
    {
        if (slot != nullptr) {
            slot->depth.store(0, std::memory_order_relaxed);
            slot->threadName[0] = '\0';
            slot->tid.store(0, std::memory_order_release);
        }
    }
};

ThreadSlot *
threadSlot()
{
    thread_local ThreadRegistration reg;
    return reg.slot;
}

/* ------------------------------------------------------------------ */
/* Crash handler state                                                */
/* ------------------------------------------------------------------ */

std::atomic<bool> g_in_handler{false};
std::atomic<bool> g_handler_installed{false};
char g_dump_dir[512] = ".";
std::mutex g_install_mu;

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGABRT:
        return "SIGABRT";
      case SIGSEGV:
        return "SIGSEGV";
      case SIGFPE:
        return "SIGFPE";
      case SIGBUS:
        return "SIGBUS";
      case SIGILL:
        return "SIGILL";
    }
    return "signal";
}

void
crashHandler(int sig)
{
    // One dump per process; a fault inside the dump path falls through
    // to the default action instead of recursing.
    if (!g_in_handler.exchange(true))
        writeCrashDump(signalName(sig));
    ::signal(sig, SIG_DFL);
    ::raise(sig);
}

} // namespace

/* ------------------------------------------------------------------ */
/* Recording                                                          */
/* ------------------------------------------------------------------ */

void
setRecording(bool on)
{
    detail::g_recording.store(on, std::memory_order_relaxed);
}

QSYN_NO_TSAN void
record(EventKind kind, const char *name, double value,
       std::string_view detail)
{
    if (!recording())
        return;
    std::uint64_t seq =
        g_cursor.fetch_add(1, std::memory_order_relaxed) + 1;
    Slot &slot = g_ring[seq & (kCapacity - 1)];
    slot.seq.store(0, std::memory_order_release); // mark mid-write
    slot.tsNs = nowNs();
    slot.name = name;
    slot.value = value;
    slot.tid = currentThreadId();
    slot.kind = kind;
    std::size_t n = std::min(detail.size(), sizeof(slot.detail) - 1);
    if (n != 0)
        std::memcpy(slot.detail, detail.data(), n);
    slot.detail[n] = '\0';
    slot.seq.store(seq, std::memory_order_release);
}

QSYN_NO_TSAN std::vector<Event>
snapshot()
{
    std::vector<Event> events;
    events.reserve(kCapacity);
    for (const Slot &slot : g_ring) {
        std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
        if (seq == 0)
            continue;
        Event e;
        e.seq = seq;
        e.tsNs = slot.tsNs;
        e.name = slot.name;
        e.value = slot.value;
        e.tid = slot.tid;
        e.kind = slot.kind;
        std::memcpy(e.detail, slot.detail, sizeof(e.detail));
        e.detail[sizeof(e.detail) - 1] = '\0';
        // Seqlock validation: drop the slot if a writer raced us.
        if (slot.seq.load(std::memory_order_acquire) != seq)
            continue;
        events.push_back(e);
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) { return a.seq < b.seq; });
    return events;
}

void
reset()
{
    for (Slot &slot : g_ring)
        slot.seq.store(0, std::memory_order_release);
    g_cursor.store(0, std::memory_order_release);
    if (ThreadSlot *slot = threadSlot())
        slot->depth.store(0, std::memory_order_relaxed);
}

/* ------------------------------------------------------------------ */
/* Span stacks + thread names                                         */
/* ------------------------------------------------------------------ */

void
pushSpan(const char *name)
{
    ThreadSlot *slot = threadSlot();
    if (slot == nullptr)
        return;
    int depth = slot->depth.load(std::memory_order_relaxed);
    if (depth < kMaxSpanDepth)
        slot->names[depth] = name;
    slot->depth.store(depth + 1, std::memory_order_release);
}

void
popSpan()
{
    ThreadSlot *slot = threadSlot();
    if (slot == nullptr)
        return;
    int depth = slot->depth.load(std::memory_order_relaxed);
    if (depth > 0)
        slot->depth.store(depth - 1, std::memory_order_release);
}

void
nameThreadForCrash(std::string_view name)
{
    ThreadSlot *slot = threadSlot();
    if (slot == nullptr)
        return;
    std::size_t n =
        std::min(name.size(), sizeof(slot->threadName) - 1);
    std::memcpy(slot->threadName, name.data(), n);
    slot->threadName[n] = '\0';
}

std::vector<ThreadSpans>
threadSpans()
{
    std::vector<ThreadSpans> out;
    for (const ThreadSlot &slot : g_threads) {
        std::uint32_t tid = slot.tid.load(std::memory_order_acquire);
        if (tid == 0)
            continue;
        ThreadSpans t;
        t.tid = tid;
        t.name = slot.threadName;
        int depth = std::clamp(
            slot.depth.load(std::memory_order_acquire), 0,
            kMaxSpanDepth);
        for (int i = 0; i < depth; ++i) {
            if (slot.names[i] != nullptr)
                t.stack.push_back(slot.names[i]);
        }
        out.push_back(std::move(t));
    }
    return out;
}

/* ------------------------------------------------------------------ */
/* Crash dumps                                                        */
/* ------------------------------------------------------------------ */

void
installCrashHandler(const CrashConfig &config)
{
    std::lock_guard<std::mutex> lock(g_install_mu);
    std::string dir = config.dir.empty() ? "." : config.dir;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec); // best-effort
    std::size_t n = std::min(dir.size(), sizeof(g_dump_dir) - 1);
    std::memcpy(g_dump_dir, dir.data(), n);
    g_dump_dir[n] = '\0';
    setRecording(true);
    if (g_handler_installed.exchange(true))
        return;

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashHandler;
    sigemptyset(&sa.sa_mask);

    // SIGABRT is always ours: sanitizers and assert() report on their
    // own channel before raising it, so chaining loses nothing.
    sigaction(SIGABRT, &sa, nullptr);

    // Fault signals only when nobody else (ASan's DEADLYSIGNAL
    // catcher, a test harness) claimed them first.
    for (int sig : {SIGSEGV, SIGFPE, SIGBUS, SIGILL}) {
        struct sigaction old;
        std::memset(&old, 0, sizeof(old));
        if (sigaction(sig, nullptr, &old) != 0)
            continue;
        if (old.sa_handler == SIG_DFL &&
            (old.sa_flags & SA_SIGINFO) == 0)
            sigaction(sig, &sa, nullptr);
    }
}

std::string
writeCrashDump(const char *reason)
{
    std::ostringstream os;
    os.precision(12);
    os << "{\n";
    os << "  \"qsyn_crash_version\": 1,\n";
    os << "  \"signal\": \"" << jsonEscape(reason ? reason : "?")
       << "\",\n";
    os << "  \"pid\": " << static_cast<long>(::getpid()) << ",\n";

    os << "  \"thread_spans\": {";
    std::vector<ThreadSpans> threads = threadSpans();
    for (std::size_t i = 0; i < threads.size(); ++i) {
        const ThreadSpans &t = threads[i];
        os << (i ? "," : "") << "\n    \"" << t.tid << "\": {\"name\": \""
           << jsonEscape(t.name) << "\", \"stack\": [";
        for (std::size_t j = 0; j < t.stack.size(); ++j)
            os << (j ? ", " : "") << "\"" << jsonEscape(t.stack[j])
               << "\"";
        os << "]}";
    }
    os << (threads.empty() ? "" : "\n  ") << "},\n";

    os << "  \"flight_recorder\": [";
    std::vector<Event> events = snapshot();
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        os << (i ? "," : "") << "\n    {\"seq\": " << e.seq
           << ", \"ts_ns\": " << e.tsNs << ", \"kind\": \""
           << eventKindName(e.kind) << "\", \"name\": \""
           << jsonEscape(e.name ? e.name : "?") << "\", \"tid\": "
           << e.tid << ", \"value\": " << e.value;
        if (e.detail[0] != '\0')
            os << ", \"detail\": \"" << jsonEscape(e.detail) << "\"";
        os << "}";
    }
    os << (events.empty() ? "" : "\n  ") << "],\n";

    // Best-effort metrics: skipped (null) when the registry mutex is
    // held — e.g. when the crash happened under it.
    std::string metrics;
    Sink *s = sink();
    if (s != nullptr && s->metrics().tryToJson(&metrics)) {
        std::istringstream in(metrics);
        std::string line;
        os << "  \"metrics\": ";
        bool first = true;
        while (std::getline(in, line)) {
            os << (first ? "" : "\n  ") << line;
            first = false;
        }
        os << "\n";
    } else {
        os << "  \"metrics\": null\n";
    }
    os << "}\n";

    char path[600];
    std::snprintf(path, sizeof(path), "%s/qsyn-crash-%ld.json",
                  g_dump_dir, static_cast<long>(::getpid()));
    int fd = ::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0)
        return std::string();
    std::string text = os.str();
    const char *p = text.data();
    std::size_t left = text.size();
    while (left > 0) {
        ssize_t wrote = ::write(fd, p, left);
        if (wrote <= 0)
            break;
        p += wrote;
        left -= static_cast<std::size_t>(wrote);
    }
    ::close(fd);
    return left == 0 ? std::string(path) : std::string();
}

} // namespace qsyn::obs::flight
