/**
 * @file
 * Always-on flight recorder + crash dumps.
 *
 * A fixed-size lock-free ring buffer keeps the most recent span
 * begin/end and log events. Recording is independent of the obs Sink:
 * the ring is a static array, claiming a slot is one relaxed
 * fetch_add, and when recording is disabled every hook reduces to a
 * single relaxed load and a branch — cheap enough that the tools leave
 * it on for every run.
 *
 * The payoff is the postmortem story: installCrashHandler() arms a
 * signal handler (SIGABRT / SIGSEGV / SIGFPE / SIGBUS / SIGILL) that
 * dumps the ring, the active span stack of every live thread, and a
 * best-effort metrics snapshot to `qsyn-crash-<pid>.json` before
 * re-raising the signal. qfuzz installs it unconditionally so a
 * crashing reproducer ships with its own black box; qsync / qverify /
 * qsim arm it with `--crash-dump <dir>`.
 *
 * Caveats, by design:
 *  - Ring slots are seqlock-validated: a reader (the crash handler or
 *    snapshot()) drops a slot that was mid-write instead of tearing.
 *  - `name` fields must be static-lifetime strings (span names and log
 *    components already are); log text is truncated into the slot.
 *  - The dump path allocates; after abort() from healthy code that is
 *    fine, after genuine heap corruption the re-entry guard turns a
 *    failing dump into the default signal death, never a hang.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qsyn::obs::flight {

/** What a ring slot records. */
enum class EventKind : std::uint8_t
{
    SpanBegin = 1,
    SpanEnd = 2,
    Log = 3,
    Mark = 4 ///< free-form breadcrumb (record() from library code)
};

const char *eventKindName(EventKind kind);

/** One recorded event, as returned by snapshot(). */
struct Event
{
    std::uint64_t seq = 0;  ///< global order (1-based, monotone)
    std::uint64_t tsNs = 0; ///< steady-clock ns since recorder epoch
    const char *name = nullptr; ///< static-lifetime identifier
    double value = 0.0; ///< SpanEnd: duration us; Log: level
    std::uint32_t tid = 0;      ///< obs::currentThreadId()
    EventKind kind = EventKind::Mark;
    /** Truncated free text (log message); always NUL-terminated. */
    char detail[48] = {};
};

/** Ring capacity (slots). Power of two; wraps by overwriting. */
inline constexpr std::size_t kCapacity = 2048;

namespace detail {
extern std::atomic<bool> g_recording;
} // namespace detail

/** True when events are being recorded (one relaxed load). */
inline bool
recording()
{
    return detail::g_recording.load(std::memory_order_relaxed);
}

/** Turn the recorder on/off. Tools enable it at startup; the library
 *  default is off so instrumented hot paths cost nothing extra. */
void setRecording(bool on);

/** Append an event (no-op when recording is off). `name` must outlive
 *  the process (string literal / interned); `detail` is truncated to
 *  the slot's inline buffer. */
void record(EventKind kind, const char *name, double value = 0.0,
            std::string_view detail = {});

/** Copy of the ring in sequence order, oldest first. Slots that were
 *  mid-write are skipped. */
std::vector<Event> snapshot();

/** Drop all recorded events and span-stack state (tests). */
void reset();

/** Name the calling thread for crash dumps (and keep the most recent
 *  name if called twice). `name` is copied. */
void nameThreadForCrash(std::string_view name);

/** @name Span-stack bookkeeping (called by obs::Span when recording).
 *  Push/pop must pair; Span guarantees this via its finish() guard. */
/// @{
void pushSpan(const char *name);
void popSpan();
/// @}

/** One thread's active span stack, for dumps and tests. */
struct ThreadSpans
{
    std::uint32_t tid = 0;
    std::string name; ///< empty when the thread never named itself
    std::vector<const char *> stack;
};

/** Active span stacks of every registered thread. */
std::vector<ThreadSpans> threadSpans();

/** Crash-dump configuration. */
struct CrashConfig
{
    /** Directory for `qsyn-crash-<pid>.json` (created if missing). */
    std::string dir = ".";
};

/**
 * Install the crash signal handler and enable recording. Signals that
 * already have a non-default handler (e.g. ASan's SIGSEGV catcher) are
 * left alone; SIGABRT is always taken since sanitizers report through
 * their own paths before abort(). Safe to call more than once — the
 * last config wins.
 */
void installCrashHandler(const CrashConfig &config);

/**
 * Write a crash dump right now (the handler's body, exposed for
 * tests): ring contents, per-thread span stacks, and a try-lock
 * metrics snapshot from the installed sink. Returns the path written,
 * or an empty string on failure.
 */
std::string writeCrashDump(const char *reason);

} // namespace qsyn::obs::flight
