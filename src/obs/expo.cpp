#include "obs/expo.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/obs.hpp"

namespace qsyn::obs {

/* ------------------------------------------------------------------ */
/* Quantile estimation over the power-of-two buckets                  */
/* ------------------------------------------------------------------ */

double
Histogram::bucketUpperBound(int bucket)
{
    return std::ldexp(1.0, bucket); // 2^bucket
}

double
Histogram::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the requested quantile, 1-based; q=0 -> first sample.
    double target = q * static_cast<double>(count);
    if (target < 1.0)
        target = 1.0;
    std::uint64_t cumulative = 0;
    for (int i = 0; i < kBuckets; ++i) {
        std::uint64_t inBucket = buckets[static_cast<size_t>(i)];
        if (inBucket == 0)
            continue;
        if (static_cast<double>(cumulative + inBucket) >= target) {
            // Linear interpolation inside the bucket [lower, upper].
            double lower = i == 0 ? 0.0 : bucketUpperBound(i - 1);
            double upper = bucketUpperBound(i);
            double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(inBucket);
            double estimate = lower + frac * (upper - lower);
            // The recorded extremes are exact; never estimate outside
            // them (the last bucket is a catch-all, min may sit above
            // a bucket's lower edge).
            return std::clamp(estimate, min, max);
        }
        cumulative += inBucket;
    }
    return max;
}

/* ------------------------------------------------------------------ */
/* Prometheus rendering                                               */
/* ------------------------------------------------------------------ */

std::string
promName(std::string_view name)
{
    std::string out = "qsyn_";
    out.reserve(name.size() + out.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

namespace {

void
promValue(std::ostringstream &os, double v)
{
    if (std::isnan(v)) {
        os << "NaN";
    } else if (std::isinf(v)) {
        os << (v > 0 ? "+Inf" : "-Inf");
    } else if (v == static_cast<double>(static_cast<long long>(v))) {
        os << static_cast<long long>(v);
    } else {
        os << v;
    }
}

} // namespace

std::string
MetricsRegistry::toPrometheus() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    os.precision(12);

    for (const auto &[name, value] : counters_) {
        std::string prom = promName(name);
        // Prometheus counter convention: one `_total` suffix.
        if (prom.size() < 6 ||
            prom.compare(prom.size() - 6, 6, "_total") != 0)
            prom += "_total";
        os << "# TYPE " << prom << " counter\n" << prom << " ";
        promValue(os, value);
        os << "\n";
    }

    for (const auto &[name, value] : gauges_) {
        std::string prom = promName(name);
        os << "# TYPE " << prom << " gauge\n" << prom << " ";
        promValue(os, value);
        os << "\n";
    }

    for (const auto &[name, h] : histograms_) {
        std::string prom = promName(name);
        os << "# TYPE " << prom << " histogram\n";
        std::uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kBuckets; ++i) {
            cumulative += h.buckets[static_cast<size_t>(i)];
            os << prom << "_bucket{le=\"";
            promValue(os, Histogram::bucketUpperBound(i));
            os << "\"} " << cumulative << "\n";
            // All remaining buckets are empty once everything is
            // cumulated; stop early and let +Inf close the series.
            if (cumulative == h.count)
                break;
        }
        os << prom << "_bucket{le=\"+Inf\"} " << h.count << "\n";
        os << prom << "_sum ";
        promValue(os, h.sum);
        os << "\n" << prom << "_count " << h.count << "\n";
    }
    return os.str();
}

bool
writePrometheusFile(const MetricsRegistry &m, const std::string &path,
                    std::string *error)
{
    std::ofstream out(path);
    if (!out) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return false;
    }
    out << m.toPrometheus();
    out.flush();
    if (!out) {
        if (error != nullptr)
            *error = "write failed: " + path;
        return false;
    }
    return true;
}

} // namespace qsyn::obs
