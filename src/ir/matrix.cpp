#include "ir/matrix.hpp"

#include <cmath>
#include <numbers>

#include "common/errors.hpp"

namespace qsyn {

namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

} // namespace

Mat2
mul(const Mat2 &a, const Mat2 &b)
{
    Mat2 r{};
    for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
            r.at(i, j) = a.at(i, 0) * b.at(0, j) + a.at(i, 1) * b.at(1, j);
        }
    }
    return r;
}

Mat2
dagger(const Mat2 &a)
{
    Mat2 r{};
    for (int i = 0; i < 2; ++i)
        for (int j = 0; j < 2; ++j)
            r.at(i, j) = std::conj(a.at(j, i));
    return r;
}

bool
approxEqual(const Mat2 &a, const Mat2 &b, double eps)
{
    for (int i = 0; i < 4; ++i) {
        if (!approxEqual(a.e[i], b.e[i], eps))
            return false;
    }
    return true;
}

Mat2
baseMatrix(GateKind kind, double param)
{
    using std::numbers::pi;
    const Cplx i01(0.0, 1.0);
    switch (kind) {
      case GateKind::I:
        return Mat2{{1, 0, 0, 1}};
      case GateKind::X:
        return Mat2{{0, 1, 1, 0}};
      case GateKind::Y:
        return Mat2{{0, -i01, i01, 0}};
      case GateKind::Z:
        return Mat2{{1, 0, 0, -1}};
      case GateKind::H:
        return Mat2{{kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2}};
      case GateKind::S:
        return Mat2{{1, 0, 0, i01}};
      case GateKind::Sdg:
        return Mat2{{1, 0, 0, -i01}};
      case GateKind::T:
        return Mat2{{1, 0, 0, std::polar(1.0, pi / 4)}};
      case GateKind::Tdg:
        return Mat2{{1, 0, 0, std::polar(1.0, -pi / 4)}};
      case GateKind::Rx: {
        double c = std::cos(param / 2), s = std::sin(param / 2);
        return Mat2{{c, Cplx(0, -s), Cplx(0, -s), c}};
      }
      case GateKind::Ry: {
        double c = std::cos(param / 2), s = std::sin(param / 2);
        return Mat2{{c, -s, s, c}};
      }
      case GateKind::Rz:
        return Mat2{{std::polar(1.0, -param / 2), 0, 0,
                     std::polar(1.0, param / 2)}};
      case GateKind::P:
        return Mat2{{1, 0, 0, std::polar(1.0, param)}};
      default:
        throw InternalError("no base matrix for kind " + kindName(kind),
                            __FILE__, __LINE__);
    }
}

DenseMatrix::DenseMatrix(int num_qubits)
    : num_qubits_(num_qubits), data_(dim() * dim(), Cplx(0, 0))
{
    QSYN_ASSERT(num_qubits >= 0 && num_qubits <= 12,
                "DenseMatrix limited to 12 qubits");
    for (size_t r = 0; r < dim(); ++r)
        at(r, r) = Cplx(1, 0);
}

void
DenseMatrix::leftMultiply(const DenseMatrix &other)
{
    QSYN_ASSERT(other.num_qubits_ == num_qubits_, "dimension mismatch");
    size_t n = dim();
    std::vector<Cplx> out(n * n, Cplx(0, 0));
    for (size_t r = 0; r < n; ++r) {
        for (size_t k = 0; k < n; ++k) {
            Cplx o = other.at(r, k);
            if (approxZero(o))
                continue;
            for (size_t c = 0; c < n; ++c)
                out[r * n + c] += o * at(k, c);
        }
    }
    data_ = std::move(out);
}

bool
DenseMatrix::isIdentity(double eps) const
{
    size_t n = dim();
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < n; ++c) {
            Cplx want = r == c ? Cplx(1, 0) : Cplx(0, 0);
            if (!approxEqual(at(r, c), want, eps))
                return false;
        }
    }
    return true;
}

bool
DenseMatrix::isIdentityUpToPhase(Cplx *phase_out, double eps) const
{
    size_t n = dim();
    Cplx phase = at(0, 0);
    if (!approxEqual(std::abs(phase), 1.0, eps))
        return false;
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < n; ++c) {
            Cplx want = r == c ? phase : Cplx(0, 0);
            if (!approxEqual(at(r, c), want, eps))
                return false;
        }
    }
    if (phase_out)
        *phase_out = phase;
    return true;
}

bool
DenseMatrix::approxEquals(const DenseMatrix &other, double eps) const
{
    if (other.num_qubits_ != num_qubits_)
        return false;
    for (size_t i = 0; i < data_.size(); ++i) {
        if (!approxEqual(data_[i], other.data_[i], eps))
            return false;
    }
    return true;
}

void
DenseMatrix::applyGate(const Mat2 &u, const std::vector<int> &controls,
                       int target)
{
    size_t n = dim();
    size_t tbit = size_t{1} << (num_qubits_ - 1 - target);
    size_t cmask = 0;
    for (int c : controls) {
        QSYN_ASSERT(c != target, "control equals target");
        cmask |= size_t{1} << (num_qubits_ - 1 - c);
    }
    for (size_t r = 0; r < n; ++r) {
        if ((r & tbit) != 0 || (r & cmask) != cmask)
            continue; // visit each affected row pair once, via its r0
        size_t r1 = r | tbit;
        for (size_t c = 0; c < n; ++c) {
            Cplx a0 = at(r, c), a1 = at(r1, c);
            at(r, c) = u.at(0, 0) * a0 + u.at(0, 1) * a1;
            at(r1, c) = u.at(1, 0) * a0 + u.at(1, 1) * a1;
        }
    }
}

void
DenseMatrix::applySwap(const std::vector<int> &controls, int a, int b)
{
    size_t n = dim();
    size_t abit = size_t{1} << (num_qubits_ - 1 - a);
    size_t bbit = size_t{1} << (num_qubits_ - 1 - b);
    size_t cmask = 0;
    for (int c : controls)
        cmask |= size_t{1} << (num_qubits_ - 1 - c);
    for (size_t r = 0; r < n; ++r) {
        // Swap rows where qubit a is 1 and b is 0 with the mirrored row.
        if ((r & cmask) != cmask || (r & abit) == 0 || (r & bbit) != 0)
            continue;
        size_t r2 = (r & ~abit) | bbit;
        for (size_t c = 0; c < n; ++c)
            std::swap(at(r, c), at(r2, c));
    }
}

} // namespace qsyn
