#include "ir/gate.hpp"

#include <algorithm>
#include <sstream>

#include "common/errors.hpp"

namespace qsyn {

namespace {

/** How a gate acts on one of its wires, for commutation analysis. */
enum class WireAction
{
    Control,    ///< wire is a positive control (Z-diagonal)
    DiagTarget, ///< wire is the target of a diagonal base gate
    XTarget,    ///< wire is the target of an X / Rx base gate
    Other       ///< anything else (H, Y, Swap, Measure, ...)
};

WireAction
classifyWire(const Gate &g, Qubit w)
{
    for (Qubit c : g.controls()) {
        if (c == w)
            return WireAction::Control;
    }
    if (!g.isUnitary())
        return WireAction::Other;
    if (isDiagonal(g.kind()))
        return WireAction::DiagTarget;
    if (g.kind() == GateKind::X || g.kind() == GateKind::Rx)
        return WireAction::XTarget;
    return WireAction::Other;
}

} // namespace

Gate::Gate(GateKind kind, std::vector<Qubit> controls,
           std::vector<Qubit> targets, double param)
    : kind_(kind), controls_(std::move(controls)),
      targets_(std::move(targets)), param_(param)
{
    if (kind_ != GateKind::Barrier) {
        QSYN_ASSERT(static_cast<int>(targets_.size()) == baseArity(kind_),
                    "wrong number of targets for " + kindName(kind_));
    }
    // Wires must be pairwise distinct.
    std::vector<Qubit> all = qubits();
    std::sort(all.begin(), all.end());
    QSYN_ASSERT(std::adjacent_find(all.begin(), all.end()) == all.end(),
                "gate wires must be distinct");
    QSYN_ASSERT(controls_.empty() || isUnitary(),
                "controls on non-unitary gate");
    // Keep the control list sorted so structural equality is canonical.
    std::sort(controls_.begin(), controls_.end());
}

std::vector<Qubit>
Gate::qubits() const
{
    std::vector<Qubit> all = controls_;
    all.insert(all.end(), targets_.begin(), targets_.end());
    return all;
}

bool
Gate::usesQubit(Qubit q) const
{
    return std::find(controls_.begin(), controls_.end(), q) !=
               controls_.end() ||
           std::find(targets_.begin(), targets_.end(), q) != targets_.end();
}

Gate
Gate::inverse() const
{
    QSYN_ASSERT(kind_ != GateKind::Measure, "measurement has no inverse");
    if (isParameterized(kind_))
        return Gate(kind_, controls_, targets_, -param_);
    return Gate(inverseKind(kind_), controls_, targets_, param_);
}

bool
Gate::operator==(const Gate &other) const
{
    if (kind_ != other.kind_ || controls_ != other.controls_)
        return false;
    if (kind_ == GateKind::Swap) {
        // Swap targets are an unordered pair.
        bool same = targets_ == other.targets_;
        bool flipped = targets_.size() == 2 &&
                       other.targets_.size() == 2 &&
                       targets_[0] == other.targets_[1] &&
                       targets_[1] == other.targets_[0];
        if (!same && !flipped)
            return false;
    } else if (targets_ != other.targets_) {
        return false;
    }
    if (isParameterized(kind_) && !approxEqual(param_, other.param_))
        return false;
    if (kind_ == GateKind::Measure && cbit_ != other.cbit_)
        return false;
    return true;
}

bool
Gate::isInverseOf(const Gate &other) const
{
    if (!isUnitary() || !other.isUnitary())
        return false;
    return *this == other.inverse();
}

bool
Gate::commutesWith(const Gate &other) const
{
    if (!isUnitary() || !other.isUnitary())
        return false;
    for (Qubit w : qubits()) {
        if (!other.usesQubit(w))
            continue;
        WireAction a = classifyWire(*this, w);
        WireAction b = classifyWire(other, w);
        bool both_z = (a == WireAction::Control ||
                       a == WireAction::DiagTarget) &&
                      (b == WireAction::Control ||
                       b == WireAction::DiagTarget);
        bool both_x = a == WireAction::XTarget && b == WireAction::XTarget;
        if (!both_z && !both_x)
            return false;
    }
    return true;
}

std::string
Gate::toString() const
{
    std::ostringstream os;
    if (kind_ == GateKind::X && !controls_.empty()) {
        if (controls_.size() == 1)
            os << "cx";
        else if (controls_.size() == 2)
            os << "ccx";
        else
            os << "mcx" << controls_.size();
    } else {
        for (size_t i = 0; i < controls_.size(); ++i)
            os << "c";
        os << kindName(kind_);
    }
    if (isParameterized(kind_))
        os << "(" << param_ << ")";
    os << " ";
    bool first = true;
    for (Qubit c : controls_) {
        os << (first ? "" : ", ") << "q" << c;
        first = false;
    }
    if (!controls_.empty())
        os << " -> ";
    first = true;
    for (Qubit t : targets_) {
        os << (first ? "" : ", ") << "q" << t;
        first = false;
    }
    if (kind_ == GateKind::Measure)
        os << " => c" << cbit_;
    return os.str();
}

} // namespace qsyn
