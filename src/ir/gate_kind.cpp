#include "ir/gate_kind.hpp"

#include "common/errors.hpp"

namespace qsyn {

int
baseArity(GateKind kind)
{
    switch (kind) {
      case GateKind::Swap:
        return 2;
      case GateKind::Barrier:
        return 0; // applies to a whole register; targets list is free-form
      default:
        return 1;
    }
}

bool
isParameterized(GateKind kind)
{
    switch (kind) {
      case GateKind::Rx:
      case GateKind::Ry:
      case GateKind::Rz:
      case GateKind::P:
        return true;
      default:
        return false;
    }
}

bool
isDiagonal(GateKind kind)
{
    switch (kind) {
      case GateKind::I:
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::Rz:
      case GateKind::P:
        return true;
      default:
        return false;
    }
}

bool
isSelfInverse(GateKind kind)
{
    switch (kind) {
      case GateKind::I:
      case GateKind::X:
      case GateKind::Y:
      case GateKind::Z:
      case GateKind::H:
      case GateKind::Swap:
        return true;
      default:
        return false;
    }
}

GateKind
inverseKind(GateKind kind)
{
    switch (kind) {
      case GateKind::S:
        return GateKind::Sdg;
      case GateKind::Sdg:
        return GateKind::S;
      case GateKind::T:
        return GateKind::Tdg;
      case GateKind::Tdg:
        return GateKind::T;
      default:
        return kind;
    }
}

std::string
kindName(GateKind kind)
{
    switch (kind) {
      case GateKind::I:
        return "id";
      case GateKind::X:
        return "x";
      case GateKind::Y:
        return "y";
      case GateKind::Z:
        return "z";
      case GateKind::H:
        return "h";
      case GateKind::S:
        return "s";
      case GateKind::Sdg:
        return "sdg";
      case GateKind::T:
        return "t";
      case GateKind::Tdg:
        return "tdg";
      case GateKind::Rx:
        return "rx";
      case GateKind::Ry:
        return "ry";
      case GateKind::Rz:
        return "rz";
      case GateKind::P:
        return "p";
      case GateKind::Swap:
        return "swap";
      case GateKind::Measure:
        return "measure";
      case GateKind::Barrier:
        return "barrier";
    }
    throw InternalError("unknown gate kind", __FILE__, __LINE__);
}

} // namespace qsyn
