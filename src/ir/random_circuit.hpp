/**
 * @file
 * Random circuit generators used by property tests, microbenchmarks,
 * and the qfuzz differential fuzzer.
 */

#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qsyn {

/** Which gate vocabulary a random circuit may draw from. */
enum class RandomGateSet
{
    /** {X, Y, Z, H, S, S†, T, T†, CNOT} (+ optional MCX / rotations). */
    CliffordT,
    /** NOT / CNOT / Toffoli / MCX only (reversible NCT cascades). */
    Nct,
    /** CNOT only (pure routing stress; needs >= 2 qubits). */
    CnotOnly
};

/** Printable name of a RandomGateSet ("clifford_t", "nct", "cnot"). */
const char *randomGateSetName(RandomGateSet set);

/** Knobs for random circuit generation. */
struct RandomCircuitOptions
{
    Qubit numQubits = 4;
    size_t numGates = 20;
    /** Probability that a generated gate is a CNOT. */
    double cnotFraction = 0.4;
    /** Allow Toffoli gates (up to this many controls; 1 disables). */
    size_t maxControls = 1;
    /** Include parameterized rotations (off keeps Clifford+T only). */
    bool allowRotations = false;
    /** Gate vocabulary restriction (qfuzz drives all of them). */
    RandomGateSet gateSet = RandomGateSet::CliffordT;
    /**
     * Explicit generator seed. Identical options (seed included) yield
     * byte-identical circuits on every platform — the property the
     * fuzzer's reproducers and the seeded test sweeps depend on.
     */
    std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

/**
 * Generate a random unitary circuit from `opts.gateSet`. Seeds a fresh
 * deterministic generator from `opts.seed`.
 */
Circuit randomCircuit(const RandomCircuitOptions &opts);

/**
 * Generate a random unitary circuit drawing randomness from `rng`
 * (callers sharing one generator across draws); `opts.seed` is ignored.
 */
Circuit randomCircuit(Rng &rng, const RandomCircuitOptions &opts);

/** Generate a random NCT cascade (NOT / CNOT / Toffoli / MCX gates). */
Circuit randomNctCascade(Rng &rng, Qubit num_qubits, size_t num_gates,
                         size_t max_controls);

} // namespace qsyn
