/**
 * @file
 * Random circuit generators used by property tests and microbenchmarks.
 */

#pragma once

#include "common/rng.hpp"
#include "ir/circuit.hpp"

namespace qsyn {

/** Knobs for random circuit generation. */
struct RandomCircuitOptions
{
    Qubit numQubits = 4;
    size_t numGates = 20;
    /** Probability that a generated gate is a CNOT. */
    double cnotFraction = 0.4;
    /** Allow Toffoli gates (up to this many controls; 1 disables). */
    size_t maxControls = 1;
    /** Include parameterized rotations (off keeps Clifford+T only). */
    bool allowRotations = false;
};

/**
 * Generate a random unitary circuit from the transmon-style library
 * {X, Y, Z, H, S, S†, T, T†, CNOT} (+ optional rotations / Toffolis).
 */
Circuit randomCircuit(Rng &rng, const RandomCircuitOptions &opts);

/** Generate a random NCT cascade (NOT / CNOT / Toffoli / MCX gates). */
Circuit randomNctCascade(Rng &rng, Qubit num_qubits, size_t num_gates,
                         size_t max_controls);

} // namespace qsyn
