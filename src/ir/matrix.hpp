/**
 * @file
 * Small dense complex matrices: the 2x2 base unitaries of every gate
 * kind (Table 1 of the paper) and a general NxN matrix used for window
 * identity checks and simulator cross-validation.
 */

#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"
#include "ir/gate_kind.hpp"

namespace qsyn {

/** 2x2 complex matrix in row-major order. */
struct Mat2
{
    std::array<Cplx, 4> e;

    Cplx &at(int r, int c) { return e[r * 2 + c]; }
    const Cplx &at(int r, int c) const { return e[r * 2 + c]; }
};

/** Matrix product a*b of 2x2 matrices. */
Mat2 mul(const Mat2 &a, const Mat2 &b);

/** Conjugate transpose of a 2x2 matrix. */
Mat2 dagger(const Mat2 &a);

/** Entrywise approximate equality. */
bool approxEqual(const Mat2 &a, const Mat2 &b, double eps = kEps);

/**
 * Base 2x2 unitary for a single-target kind. Parameterized kinds use
 * `param`; others ignore it. Swap/Measure/Barrier are invalid here.
 */
Mat2 baseMatrix(GateKind kind, double param = 0.0);

/**
 * Dense NxN complex matrix, row-major, N = 2^n. Used only for small n
 * (window identity checks, tests); the QMDD package is the scalable
 * representation.
 */
class DenseMatrix
{
  public:
    /** Identity on `num_qubits` qubits. */
    explicit DenseMatrix(int num_qubits);

    int numQubits() const { return num_qubits_; }
    size_t dim() const { return size_t{1} << num_qubits_; }

    Cplx &at(size_t r, size_t c) { return data_[r * dim() + c]; }
    const Cplx &at(size_t r, size_t c) const { return data_[r * dim() + c]; }

    /** this = other * this (left-multiply, i.e. apply `other` after). */
    void leftMultiply(const DenseMatrix &other);

    /** True when this is the identity up to eps (exact phase). */
    bool isIdentity(double eps = kEps) const;

    /**
     * True when this equals `phase` * identity for some unit complex
     * `phase`; the phase found is written to *phase_out when non-null.
     */
    bool isIdentityUpToPhase(Cplx *phase_out = nullptr,
                             double eps = kEps) const;

    /** Entrywise approximate comparison. */
    bool approxEquals(const DenseMatrix &other, double eps = kEps) const;

    /**
     * Apply a base 2x2 unitary with positive controls in place
     * (multiplies this matrix on the left by the gate's full unitary).
     * Qubit indices are local row-bit positions: qubit 0 is the most
     * significant bit of the row index.
     */
    void applyGate(const Mat2 &u, const std::vector<int> &controls,
                   int target);

    /** Apply a (controlled) swap of two local qubits. */
    void applySwap(const std::vector<int> &controls, int a, int b);

  private:
    int num_qubits_;
    std::vector<Cplx> data_;
};

} // namespace qsyn
