/**
 * @file
 * The Gate: one operation in a quantum circuit.
 *
 * A gate is a base operation (GateKind) on one or two target wires plus
 * an arbitrary list of positive control wires. This uniformly encodes
 * the paper's whole vocabulary:
 *
 *   X                     -> NOT
 *   X + 1 control         -> CNOT
 *   X + 2 controls        -> Toffoli
 *   X + n-1 controls      -> generalized Toffoli T_n
 *   Z + 1 control         -> CZ
 *   Swap                  -> SWAP;  Swap + 1 control -> Fredkin
 */

#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "ir/gate_kind.hpp"
#include "ir/matrix.hpp"

namespace qsyn {

/** One gate instance: base kind + controls + targets (+ angle). */
class Gate
{
  public:
    /** Construct a fully general gate; validates wire disjointness. */
    Gate(GateKind kind, std::vector<Qubit> controls,
         std::vector<Qubit> targets, double param = 0.0);

    /** @name Named constructors for the common cases. */
    /// @{
    static Gate i(Qubit q) { return Gate(GateKind::I, {}, {q}); }
    static Gate x(Qubit q) { return Gate(GateKind::X, {}, {q}); }
    static Gate y(Qubit q) { return Gate(GateKind::Y, {}, {q}); }
    static Gate z(Qubit q) { return Gate(GateKind::Z, {}, {q}); }
    static Gate h(Qubit q) { return Gate(GateKind::H, {}, {q}); }
    static Gate s(Qubit q) { return Gate(GateKind::S, {}, {q}); }
    static Gate sdg(Qubit q) { return Gate(GateKind::Sdg, {}, {q}); }
    static Gate t(Qubit q) { return Gate(GateKind::T, {}, {q}); }
    static Gate tdg(Qubit q) { return Gate(GateKind::Tdg, {}, {q}); }
    static Gate rx(Qubit q, double a) { return Gate(GateKind::Rx, {}, {q}, a); }
    static Gate ry(Qubit q, double a) { return Gate(GateKind::Ry, {}, {q}, a); }
    static Gate rz(Qubit q, double a) { return Gate(GateKind::Rz, {}, {q}, a); }
    static Gate p(Qubit q, double a) { return Gate(GateKind::P, {}, {q}, a); }
    static Gate cnot(Qubit c, Qubit t) { return Gate(GateKind::X, {c}, {t}); }
    static Gate cz(Qubit c, Qubit t) { return Gate(GateKind::Z, {c}, {t}); }
    static Gate ccx(Qubit c0, Qubit c1, Qubit t)
    {
        return Gate(GateKind::X, {c0, c1}, {t});
    }
    static Gate mcx(std::vector<Qubit> controls, Qubit t)
    {
        return Gate(GateKind::X, std::move(controls), {t});
    }
    static Gate swap(Qubit a, Qubit b)
    {
        return Gate(GateKind::Swap, {}, {a, b});
    }
    static Gate fredkin(Qubit c, Qubit a, Qubit b)
    {
        return Gate(GateKind::Swap, {c}, {a, b});
    }
    static Gate measure(Qubit q, Cbit c)
    {
        Gate g(GateKind::Measure, {}, {q});
        g.cbit_ = c;
        return g;
    }
    static Gate barrier(std::vector<Qubit> qs)
    {
        return Gate(GateKind::Barrier, {}, std::move(qs));
    }
    /// @}

    GateKind kind() const { return kind_; }
    double param() const { return param_; }
    const std::vector<Qubit> &controls() const { return controls_; }
    const std::vector<Qubit> &targets() const { return targets_; }
    Qubit target() const { return targets_.front(); }
    Cbit cbit() const { return cbit_; }

    size_t numControls() const { return controls_.size(); }
    size_t numQubits() const { return controls_.size() + targets_.size(); }

    /** All wires the gate touches: controls first, then targets. */
    std::vector<Qubit> qubits() const;

    /** True when the gate acts on wire `q` (as control or target). */
    bool usesQubit(Qubit q) const;

    /** True for unitary kinds (everything except Measure/Barrier). */
    bool isUnitary() const { return qsyn::isUnitary(kind_); }

    /** True for an uncontrolled T or T† — the `t` term of Eqn. 2. */
    bool isTGate() const
    {
        return controls_.empty() &&
               (kind_ == GateKind::T || kind_ == GateKind::Tdg);
    }

    /** True for a singly-controlled X — the `c` term of Eqn. 2. */
    bool isCnot() const
    {
        return kind_ == GateKind::X && controls_.size() == 1;
    }

    /** True for a doubly-controlled X (Toffoli). */
    bool isToffoli() const
    {
        return kind_ == GateKind::X && controls_.size() == 2;
    }

    /** True for an X gate with >= 3 controls (generalized Toffoli). */
    bool isGeneralizedToffoli() const
    {
        return kind_ == GateKind::X && controls_.size() >= 3;
    }

    /** The inverse gate (adjoint). Invalid for Measure. */
    Gate inverse() const;

    /**
     * Exact structural equality: same kind, same control set (order-
     * insensitive), same target list, same angle within kEps.
     */
    bool operator==(const Gate &other) const;
    bool operator!=(const Gate &other) const { return !(*this == other); }

    /** True when `other` is this gate's exact inverse. */
    bool isInverseOf(const Gate &other) const;

    /**
     * True when this gate commutes with `other` by one of the cheap
     * syntactic rules used by the optimizer:
     *   - disjoint wire sets always commute;
     *   - two diagonal gates always commute;
     *   - a diagonal gate on a wire used only as a *control* commutes;
     *   - X/Rx on a wire used only as an X-*target* commutes.
     */
    bool commutesWith(const Gate &other) const;

    /** Human-readable rendering, e.g. "ccx q2, q3 -> q5". */
    std::string toString() const;

    /**
     * Base 2x2 unitary (kind + param). Invalid for Swap / Measure /
     * Barrier; controls are not part of the base matrix.
     */
    Mat2 baseMatrix() const { return qsyn::baseMatrix(kind_, param_); }

  private:
    GateKind kind_;
    std::vector<Qubit> controls_;
    std::vector<Qubit> targets_;
    double param_ = 0.0;
    Cbit cbit_ = 0;
};

} // namespace qsyn
