/**
 * @file
 * Gate kinds available in the qsyn intermediate representation.
 *
 * A gate in the IR is a *base* operation (one of these kinds) plus an
 * optional list of positive controls. The technology-independent front
 * end uses X with 0..n controls (NOT / CNOT / Toffoli / generalized
 * Toffoli) exactly as in the paper; the technology-dependent back end
 * restricts circuits to the transmon library
 * {X, Y, Z, H, S, S†, T, T†, rotations, CNOT}.
 */

#pragma once

#include <string>

#include "common/types.hpp"

namespace qsyn {

/** Base operation applied to the target qubit(s). */
enum class GateKind : std::uint8_t
{
    I,      ///< identity (used by some input formats; removable)
    X,      ///< Pauli-X / NOT; with controls: CNOT, Toffoli, MCX
    Y,      ///< Pauli-Y
    Z,      ///< Pauli-Z; with one control: CZ
    H,      ///< Hadamard
    S,      ///< phase gate diag(1, i)
    Sdg,    ///< adjoint phase gate diag(1, -i)
    T,      ///< pi/8 gate diag(1, e^{i pi/4})
    Tdg,    ///< adjoint pi/8 gate diag(1, e^{-i pi/4})
    Rx,     ///< rotation about X by param (matrix e^{-i param X / 2})
    Ry,     ///< rotation about Y by param
    Rz,     ///< rotation about Z by param (global-phase-free vs P)
    P,      ///< phase rotation diag(1, e^{i param}) (OpenQASM u1)
    Swap,   ///< exchange two targets; with controls: Fredkin
    Measure,///< computational-basis measurement into a classical bit
    Barrier ///< scheduling barrier; no unitary action
};

/** Number of distinct GateKind values. */
inline constexpr int kNumGateKinds = static_cast<int>(GateKind::Barrier) + 1;

/** Number of target wires the base operation acts on (1, or 2 for Swap). */
int baseArity(GateKind kind);

/** True for kinds parameterized by an angle (Rx, Ry, Rz, P). */
bool isParameterized(GateKind kind);

/** True for kinds whose base matrix is diagonal (Z, S, S†, T, T†, Rz, P). */
bool isDiagonal(GateKind kind);

/** True for self-inverse kinds (I, X, Y, Z, H, Swap). */
bool isSelfInverse(GateKind kind);

/**
 * Kind of the inverse gate for non-parameterized kinds
 * (S <-> S†, T <-> T†, self-inverse kinds map to themselves).
 * Parameterized kinds keep their kind; the angle negates instead.
 */
GateKind inverseKind(GateKind kind);

/** Lower-case mnemonic, e.g. "x", "h", "sdg", "swap". */
std::string kindName(GateKind kind);

/** True when the kind represents a unitary operation. */
inline bool
isUnitary(GateKind kind)
{
    return kind != GateKind::Measure && kind != GateKind::Barrier;
}

} // namespace qsyn
