#include "ir/circuit.hpp"

#include <algorithm>
#include <sstream>

#include "common/errors.hpp"

namespace qsyn {

Circuit::Circuit(Qubit num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name))
{
}

void
Circuit::resize(Qubit num_qubits)
{
    QSYN_ASSERT(num_qubits >= num_qubits_, "resize cannot shrink register");
    num_qubits_ = num_qubits;
}

void
Circuit::add(Gate gate)
{
    for (Qubit q : gate.qubits()) {
        QSYN_ASSERT(q < num_qubits_,
                    "gate wire q" + std::to_string(q) +
                        " outside register of size " +
                        std::to_string(num_qubits_));
    }
    if (gate.kind() == GateKind::Measure)
        num_cbits_ = std::max(num_cbits_, gate.cbit() + 1);
    gates_.push_back(std::move(gate));
}

void
Circuit::append(const Circuit &other)
{
    QSYN_ASSERT(other.num_qubits_ <= num_qubits_,
                "appended circuit is wider than the register");
    for (const Gate &g : other.gates_)
        add(g);
}

void
Circuit::replace(size_t i, Gate gate)
{
    QSYN_ASSERT(i < gates_.size(), "replace index out of range");
    for (Qubit q : gate.qubits())
        QSYN_ASSERT(q < num_qubits_, "gate wire outside register");
    gates_[i] = std::move(gate);
}

void
Circuit::erase(size_t i)
{
    QSYN_ASSERT(i < gates_.size(), "erase index out of range");
    gates_.erase(gates_.begin() + static_cast<ptrdiff_t>(i));
}

void
Circuit::eraseMany(const std::vector<size_t> &indices)
{
    if (indices.empty())
        return;
    QSYN_ASSERT(std::is_sorted(indices.begin(), indices.end()),
                "eraseMany requires sorted indices");
    std::vector<Gate> kept;
    kept.reserve(gates_.size() - indices.size());
    size_t next = 0;
    for (size_t i = 0; i < gates_.size(); ++i) {
        if (next < indices.size() && indices[next] == i) {
            QSYN_ASSERT(next + 1 == indices.size() ||
                            indices[next + 1] > i,
                        "eraseMany requires unique indices");
            ++next;
        } else {
            kept.push_back(std::move(gates_[i]));
        }
    }
    QSYN_ASSERT(next == indices.size(), "eraseMany index out of range");
    gates_ = std::move(kept);
}

void
Circuit::insert(size_t i, Gate gate)
{
    QSYN_ASSERT(i <= gates_.size(), "insert index out of range");
    for (Qubit q : gate.qubits())
        QSYN_ASSERT(q < num_qubits_, "gate wire outside register");
    gates_.insert(gates_.begin() + static_cast<ptrdiff_t>(i),
                  std::move(gate));
}

Circuit
Circuit::inverse() const
{
    QSYN_ASSERT(isUnitary(), "cannot invert a circuit with measurements");
    Circuit inv(num_qubits_, name_.empty() ? "" : name_ + "_inv");
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it)
        inv.add(it->inverse());
    return inv;
}

bool
Circuit::isUnitary() const
{
    return std::all_of(gates_.begin(), gates_.end(),
                       [](const Gate &g) { return g.isUnitary(); });
}

bool
Circuit::isNctCascade() const
{
    return std::all_of(gates_.begin(), gates_.end(), [](const Gate &g) {
        return g.kind() == GateKind::X;
    });
}

Circuit
Circuit::remapped(const std::vector<Qubit> &map, Qubit new_num_qubits) const
{
    QSYN_ASSERT(map.size() >= num_qubits_, "remap table too small");
    Circuit out(new_num_qubits, name_);
    for (const Gate &g : gates_) {
        std::vector<Qubit> controls;
        controls.reserve(g.controls().size());
        for (Qubit c : g.controls())
            controls.push_back(map[c]);
        std::vector<Qubit> targets;
        targets.reserve(g.targets().size());
        for (Qubit t : g.targets())
            targets.push_back(map[t]);
        Gate mapped(g.kind(), std::move(controls), std::move(targets),
                    g.param());
        if (g.kind() == GateKind::Measure)
            mapped = Gate::measure(map[g.target()], g.cbit());
        out.add(std::move(mapped));
    }
    return out;
}

bool
Circuit::operator==(const Circuit &other) const
{
    if (num_qubits_ != other.num_qubits_ ||
        gates_.size() != other.gates_.size())
        return false;
    for (size_t i = 0; i < gates_.size(); ++i) {
        if (gates_[i] != other.gates_[i])
            return false;
    }
    return true;
}

std::string
Circuit::toString() const
{
    std::ostringstream os;
    os << "circuit";
    if (!name_.empty())
        os << " " << name_;
    os << " (" << num_qubits_ << " qubits, " << gates_.size() << " gates)\n";
    for (const Gate &g : gates_)
        os << "  " << g.toString() << "\n";
    return os.str();
}

CircuitStats
computeStats(const Circuit &circuit)
{
    CircuitStats s;
    std::vector<size_t> wire_depth(circuit.numQubits(), 0);
    for (const Gate &g : circuit) {
        if (g.kind() == GateKind::Barrier)
            continue;
        ++s.volume;
        if (g.isTGate())
            ++s.tCount;
        if (g.isCnot())
            ++s.cnotCount;
        size_t width = g.numQubits();
        if (width == 2)
            ++s.twoQubit;
        else if (width > 2)
            ++s.multiQubit;
        size_t level = 0;
        for (Qubit q : g.qubits())
            level = std::max(level, wire_depth[q]);
        ++level;
        for (Qubit q : g.qubits())
            wire_depth[q] = level;
        s.depth = std::max(s.depth, level);
    }
    return s;
}

} // namespace qsyn
