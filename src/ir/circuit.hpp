/**
 * @file
 * The Circuit: an ordered list of gates over a fixed qubit register.
 *
 * Circuits are the single currency of the compiler: parsers produce
 * them, every back-end pass (decomposition, routing, optimization)
 * rewrites them, the QMDD verifier consumes them, and the QASM writer
 * serializes them.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/gate.hpp"

namespace qsyn {

/** An ordered quantum circuit on `numQubits()` wires. */
class Circuit
{
  public:
    /** Empty circuit on `num_qubits` wires. */
    explicit Circuit(Qubit num_qubits = 0, std::string name = "");

    Qubit numQubits() const { return num_qubits_; }
    Cbit numCbits() const { return num_cbits_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Grow the register; existing wires are unchanged. */
    void resize(Qubit num_qubits);

    size_t size() const { return gates_.size(); }
    bool empty() const { return gates_.empty(); }

    const Gate &operator[](size_t i) const { return gates_[i]; }
    const std::vector<Gate> &gates() const { return gates_; }

    std::vector<Gate>::const_iterator begin() const { return gates_.begin(); }
    std::vector<Gate>::const_iterator end() const { return gates_.end(); }

    /** Append a gate; all its wires must be inside the register. */
    void add(Gate gate);

    /** @name Convenience emitters mirroring Gate's named constructors. */
    /// @{
    void addX(Qubit q) { add(Gate::x(q)); }
    void addY(Qubit q) { add(Gate::y(q)); }
    void addZ(Qubit q) { add(Gate::z(q)); }
    void addH(Qubit q) { add(Gate::h(q)); }
    void addS(Qubit q) { add(Gate::s(q)); }
    void addSdg(Qubit q) { add(Gate::sdg(q)); }
    void addT(Qubit q) { add(Gate::t(q)); }
    void addTdg(Qubit q) { add(Gate::tdg(q)); }
    void addCnot(Qubit c, Qubit t) { add(Gate::cnot(c, t)); }
    void addCz(Qubit c, Qubit t) { add(Gate::cz(c, t)); }
    void addCcx(Qubit a, Qubit b, Qubit t) { add(Gate::ccx(a, b, t)); }
    void addMcx(std::vector<Qubit> cs, Qubit t)
    {
        add(Gate::mcx(std::move(cs), t));
    }
    void addSwap(Qubit a, Qubit b) { add(Gate::swap(a, b)); }
    /// @}

    /** Append every gate of `other` (registers must be compatible). */
    void append(const Circuit &other);

    /** Replace the gate at index `i`. */
    void replace(size_t i, Gate gate);

    /** Erase the gate at index `i`. */
    void erase(size_t i);

    /** Erase gates at the given (sorted ascending, unique) indices. */
    void eraseMany(const std::vector<size_t> &indices);

    /** Insert a gate before index `i`. */
    void insert(size_t i, Gate gate);

    /** The adjoint circuit: reversed order, each gate inverted. */
    Circuit inverse() const;

    /** True when every gate is unitary (no measurements / barriers). */
    bool isUnitary() const;

    /** True when all gates only use {X/CNOT/CCX/MCX} (NCT cascade). */
    bool isNctCascade() const;

    /**
     * Remap every wire through `map` (old -> new); the result lives on
     * `new_num_qubits` wires. Every image must be < new_num_qubits.
     */
    Circuit remapped(const std::vector<Qubit> &map,
                     Qubit new_num_qubits) const;

    /**
     * Structural equality: same register width and the same gate
     * sequence under Gate::operator== (names and classical-bit counts
     * are ignored). This is the equality the format round-trip tests
     * and the fuzzer's determinism oracle rely on.
     */
    bool operator==(const Circuit &other) const;
    bool operator!=(const Circuit &other) const
    {
        return !(*this == other);
    }

    /** Multi-line human-readable listing. */
    std::string toString() const;

  private:
    Qubit num_qubits_;
    Cbit num_cbits_ = 0;
    std::string name_;
    std::vector<Gate> gates_;
};

/** Gate-count statistics used by Eqn. 2 and the result tables. */
struct CircuitStats
{
    size_t volume = 0;      ///< total gate count `a` (barriers excluded)
    size_t tCount = 0;      ///< uncontrolled T/T† count `t`
    size_t cnotCount = 0;   ///< singly-controlled X count `c`
    size_t twoQubit = 0;    ///< gates touching exactly two wires
    size_t multiQubit = 0;  ///< gates touching three or more wires
    size_t depth = 0;       ///< circuit depth (critical path length)
};

/** Compute gate statistics in one pass. */
CircuitStats computeStats(const Circuit &circuit);

} // namespace qsyn
