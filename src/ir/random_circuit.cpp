#include "ir/random_circuit.hpp"

#include <numbers>

#include "common/errors.hpp"

namespace qsyn {

namespace {

/** Pick `count` distinct qubits from [0, n). */
std::vector<Qubit>
pickDistinct(Rng &rng, Qubit n, size_t count)
{
    QSYN_ASSERT(count <= n, "cannot pick more qubits than exist");
    std::vector<Qubit> picked;
    while (picked.size() < count) {
        Qubit q = static_cast<Qubit>(rng.below(n));
        bool dup = false;
        for (Qubit p : picked)
            dup = dup || p == q;
        if (!dup)
            picked.push_back(q);
    }
    return picked;
}

} // namespace

const char *
randomGateSetName(RandomGateSet set)
{
    switch (set) {
      case RandomGateSet::CliffordT: return "clifford_t";
      case RandomGateSet::Nct: return "nct";
      case RandomGateSet::CnotOnly: return "cnot";
    }
    return "?";
}

Circuit
randomCircuit(const RandomCircuitOptions &opts)
{
    Rng rng(opts.seed);
    return randomCircuit(rng, opts);
}

Circuit
randomCircuit(Rng &rng, const RandomCircuitOptions &opts)
{
    QSYN_ASSERT(opts.numQubits >= 1, "need at least one qubit");
    if (opts.gateSet == RandomGateSet::Nct)
        return randomNctCascade(rng, opts.numQubits, opts.numGates,
                                std::max<size_t>(opts.maxControls, 1));
    if (opts.gateSet == RandomGateSet::CnotOnly) {
        QSYN_ASSERT(opts.numQubits >= 2,
                    "CNOT-only circuits need two qubits");
        Circuit c(opts.numQubits, "random_cnot");
        while (c.size() < opts.numGates) {
            auto wires = pickDistinct(rng, opts.numQubits, 2);
            c.addCnot(wires[0], wires[1]);
        }
        return c;
    }
    Circuit c(opts.numQubits, "random");
    const GateKind singles[] = {GateKind::X, GateKind::Y, GateKind::Z,
                                GateKind::H, GateKind::S, GateKind::Sdg,
                                GateKind::T, GateKind::Tdg};
    const GateKind rotations[] = {GateKind::Rx, GateKind::Ry, GateKind::Rz,
                                  GateKind::P};
    while (c.size() < opts.numGates) {
        if (opts.numQubits >= 2 && rng.chance(opts.cnotFraction)) {
            size_t max_c = std::min<size_t>(opts.maxControls,
                                            opts.numQubits - 1);
            size_t nc = 1;
            if (max_c > 1 && rng.chance(0.3))
                nc = 2 + rng.below(max_c - 1);
            auto wires = pickDistinct(rng, opts.numQubits, nc + 1);
            Qubit target = wires.back();
            wires.pop_back();
            c.add(Gate::mcx(wires, target));
            continue;
        }
        Qubit q = static_cast<Qubit>(rng.below(opts.numQubits));
        if (opts.allowRotations && rng.chance(0.25)) {
            GateKind k = rotations[rng.below(4)];
            double angle =
                (rng.uniform() * 2 - 1) * std::numbers::pi;
            c.add(Gate(k, {}, {q}, angle));
        } else {
            c.add(Gate(singles[rng.below(8)], {}, {q}));
        }
    }
    return c;
}

Circuit
randomNctCascade(Rng &rng, Qubit num_qubits, size_t num_gates,
                 size_t max_controls)
{
    QSYN_ASSERT(num_qubits >= 1, "need at least one qubit");
    Circuit c(num_qubits, "random_nct");
    size_t cap = std::min<size_t>(max_controls, num_qubits - 1);
    while (c.size() < num_gates) {
        size_t nc = rng.below(cap + 1);
        auto wires = pickDistinct(rng, num_qubits, nc + 1);
        Qubit target = wires.back();
        wires.pop_back();
        c.add(Gate::mcx(wires, target));
    }
    return c;
}

} // namespace qsyn
