#include "bench_circuits/single_target_suite.hpp"

#include "decompose/pass.hpp"
#include "esop/cascade.hpp"

namespace qsyn::bench {

const std::vector<SingleTargetBenchmark> &
singleTargetSuite()
{
    // Table 3 entries: name, hex, qubits, tech-indep T / gates / cost.
    static const std::vector<SingleTargetBenchmark> kSuite = {
        {"#1", "1", 3, 7, 17, 22.25},
        {"#3", "3", 3, 0, 3, 3.25},
        {"#01", "01", 5, 15, 51, 63.75},
        {"#03", "03", 4, 7, 20, 25.25},
        {"#07", "07", 5, 16, 60, 75.0},
        {"#0f", "0f", 4, 0, 3, 3.25},
        {"#17", "17", 4, 7, 43, 51.75},
        {"#0001", "0001", 6, 40, 186, 233.0},
        {"#0003", "0003", 6, 15, 66, 83.0},
        {"#0007", "0007", 6, 47, 246, 304.25},
        {"#000f", "000f", 5, 7, 21, 27.5},
        {"#0017", "0017", 6, 23, 129, 159.0},
        {"#001f", "001f", 6, 43, 194, 244.5},
        {"#003f", "003f", 6, 16, 73, 92.25},
        {"#007f", "007f", 6, 40, 189, 238.5},
        {"#00ff", "00ff", 5, 0, 3, 3.25},
        {"#0117", "0117", 6, 79, 401, 498.0},
        {"#011f", "011f", 6, 27, 136, 169.5},
        {"#013f", "013f", 6, 48, 240, 299.5},
        {"#017f", "017f", 6, 80, 359, 455.0},
        {"#033f", "033f", 5, 7, 49, 60.75},
        {"#0356", "0356", 5, 12, 42, 54.75},
        {"#0357", "0357", 6, 61, 266, 336.5},
        {"#035f", "035f", 6, 23, 107, 135.5},
    };
    return kSuite;
}

Circuit
buildSingleTargetCascade(const SingleTargetBenchmark &benchmark)
{
    Circuit cascade = esop::singleTargetGateFromHex(benchmark.hex);
    cascade.setName(benchmark.name);
    return cascade;
}

Circuit
buildSingleTarget(const SingleTargetBenchmark &benchmark)
{
    Circuit cascade = buildSingleTargetCascade(benchmark);
    decompose::DecomposeOptions options;
    options.lowerToffoli = true;
    decompose::DecomposeResult lowered =
        decompose::decomposeToPrimitives(cascade, options);
    lowered.circuit.setName(benchmark.name);
    return lowered.circuit;
}

} // namespace qsyn::bench
