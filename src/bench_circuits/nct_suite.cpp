#include "bench_circuits/nct_suite.hpp"

#include "common/errors.hpp"
#include "frontend/real_parser.hpp"

namespace qsyn::bench {

const std::vector<NctBenchmark> &
nctSuite()
{
    static const std::vector<NctBenchmark> kSuite = {
        // 3_17_14: 3 wires, 6 NCT gates, two Toffolis.
        {"3_17_14", 3, "toffoli", 6,
         ".numvars 3\n"
         ".variables a b c\n"
         ".begin\n"
         "t3 a b c\n"
         "t2 c b\n"
         "t1 a\n"
         "t3 b c a\n"
         "t2 a c\n"
         "t1 b\n"
         ".end\n"},
        // fred6: controlled swap expressed as three Toffolis.
        {"fred6", 3, "toffoli", 3,
         ".numvars 3\n"
         ".variables c a b\n"
         ".begin\n"
         "t3 c a b\n"
         "t3 c b a\n"
         "t3 c a b\n"
         ".end\n"},
        // 4_49_17: 4 wires, 12 NCT gates, five Toffolis.
        {"4_49_17", 4, "toffoli", 12,
         ".numvars 4\n"
         ".variables a b c d\n"
         ".begin\n"
         "t3 a b c\n"
         "t2 c d\n"
         "t3 b d a\n"
         "t1 c\n"
         "t2 a b\n"
         "t3 c d b\n"
         "t2 b a\n"
         "t3 a c d\n"
         "t1 d\n"
         "t2 d c\n"
         "t3 b c a\n"
         "t1 b\n"
         ".end\n"},
        // 4gt12-v0_88: 5 wires, largest gate T5.
        {"4gt12-v0_88", 5, "T5", 5,
         ".numvars 5\n"
         ".variables a b c d e\n"
         ".begin\n"
         "t5 a b c d e\n"
         "t4 a b c d\n"
         "t1 e\n"
         "t4 b c d e\n"
         "t2 d e\n"
         ".end\n"},
        // 4gt13-v1_93: 5 wires, largest gate T4.
        {"4gt13-v1_93", 5, "T4", 4,
         ".numvars 5\n"
         ".variables a b c d e\n"
         ".begin\n"
         "t4 b c d e\n"
         "t3 a b d\n"
         "t2 d a\n"
         "t1 e\n"
         ".end\n"},
    };
    return kSuite;
}

Circuit
buildNctBenchmark(const NctBenchmark &benchmark)
{
    Circuit circuit =
        frontend::parseReal(benchmark.realSource, benchmark.name);
    QSYN_ASSERT(circuit.numQubits() == benchmark.qubits,
                "suite metadata disagrees with .real source");
    QSYN_ASSERT(circuit.size() == benchmark.gateCount,
                "suite gate count disagrees with .real source");
    return circuit;
}

} // namespace qsyn::bench
