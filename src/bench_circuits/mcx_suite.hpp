/**
 * @file
 * The 96-qubit generalized-Toffoli benchmark set of the paper's
 * Table 7: five circuits T6_b .. T10_b, each a cascade of four T_n
 * gates placed on the proposed 96-qubit machine so that consecutive
 * gates share at least one qubit (each gate's target is among the next
 * gate's controls' row).
 */

#pragma once

#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace qsyn::bench {

/** One Table 7 benchmark: a cascade of four n-qubit Toffolis. */
struct McxBenchmark
{
    std::string name; ///< e.g. "T8_b"
    int n;            ///< qubits per gate (controls + target)
    /** The four gates, exactly as listed in Table 7. */
    std::vector<std::pair<std::vector<Qubit>, Qubit>> gates;
};

/** The five cascades of Table 7 (T6_b .. T10_b). */
const std::vector<McxBenchmark> &mcxSuite();

/** Build a suite entry as a 96-wire circuit of four MCX gates. */
Circuit buildMcxBenchmark(const McxBenchmark &benchmark);

} // namespace qsyn::bench
