/**
 * @file
 * The "Optimal single-target gates" benchmark suite of the paper's
 * Table 3 (reference [23]). The original circuit files are no longer
 * hosted; each function is fully determined by the hexadecimal truth
 * table in its name, so the suite is regenerated through the ESOP
 * front end (see DESIGN.md, substitution table). The paper's
 * technology-independent metrics are carried along so the benchmark
 * harness can print paper-vs-measured columns.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace qsyn::bench {

/** One Table 3 benchmark with the paper's reference numbers. */
struct SingleTargetBenchmark
{
    std::string name;      ///< paper name, e.g. "#013f"
    std::string hex;       ///< control-function truth table
    Qubit paperQubits;     ///< qubit count listed in Table 3
    size_t paperTCount;    ///< technology-independent T count
    size_t paperGates;     ///< technology-independent gate count
    double paperCost;      ///< technology-independent Eqn. 2 cost
};

/** The 24 functions of Table 3, in table order. */
const std::vector<SingleTargetBenchmark> &singleTargetSuite();

/**
 * Build the technology-independent circuit for a suite entry:
 * ESOP-synthesize the control function and lower the cascade to the
 * 1q + CNOT level with unconstrained connectivity (the "simulator
 * mapping" of Section 5). Ancillas may be appended past the paper's
 * qubit count by the generalized-Toffoli decomposition.
 */
Circuit buildSingleTarget(const SingleTargetBenchmark &benchmark);

/**
 * The raw NCT-level cascade (before Toffoli lowering), for staged
 * verification and tests.
 */
Circuit buildSingleTargetCascade(const SingleTargetBenchmark &benchmark);

} // namespace qsyn::bench
