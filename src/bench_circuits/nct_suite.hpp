/**
 * @file
 * The Toffoli-cascade benchmark set of the paper's Table 5 (RevLib,
 * reference [24]). The circuits are authored here as .real sources —
 * exercising the RevLib parser — with qubit counts, gate counts and
 * largest-gate metadata matching Table 5 (see DESIGN.md "Known
 * deviations" for how each function was reconstructed).
 */

#pragma once

#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace qsyn::bench {

/** One Table 5 benchmark. */
struct NctBenchmark
{
    std::string name;        ///< paper name, e.g. "4_49_17"
    Qubit qubits;            ///< register width
    std::string largestGate; ///< e.g. "toffoli", "T4", "T5"
    size_t gateCount;        ///< NCT gate count of the cascade
    std::string realSource;  ///< the circuit in RevLib .real format
};

/** The 5 cascades of Table 5, in table order. */
const std::vector<NctBenchmark> &nctSuite();

/** Parse a suite entry's .real source into the NCT cascade. */
Circuit buildNctBenchmark(const NctBenchmark &benchmark);

} // namespace qsyn::bench
