#include "bench_circuits/mcx_suite.hpp"

namespace qsyn::bench {

const std::vector<McxBenchmark> &
mcxSuite()
{
    // Table 7: gate g (g = 0..3) of the T_n circuit has controls
    // {20g+1 .. 20g+n-1} and target 20g+25.
    static const std::vector<McxBenchmark> kSuite = [] {
        std::vector<McxBenchmark> suite;
        for (int n = 6; n <= 10; ++n) {
            McxBenchmark bench;
            bench.name = "T" + std::to_string(n) + "_b";
            bench.n = n;
            for (Qubit g = 0; g < 4; ++g) {
                std::vector<Qubit> controls;
                for (Qubit i = 1; i <= static_cast<Qubit>(n) - 1; ++i)
                    controls.push_back(20 * g + i);
                Qubit target = 20 * g + 25;
                bench.gates.emplace_back(std::move(controls), target);
            }
            suite.push_back(std::move(bench));
        }
        return suite;
    }();
    return kSuite;
}

Circuit
buildMcxBenchmark(const McxBenchmark &benchmark)
{
    Circuit circuit(96, benchmark.name);
    for (const auto &[controls, target] : benchmark.gates)
        circuit.addMcx(controls, target);
    return circuit;
}

} // namespace qsyn::bench
