/**
 * @file
 * The quantum cost function of Eqn. 2:
 *
 *     q_cost = 0.5 * t + 0.25 * c + a
 *
 * where t is the T/T-dagger count, c the CNOT count, and a the total
 * gate volume. The weights are user-configurable, matching the paper's
 * statement that "each technologically-dependent quantum cell library
 * will be characterized and annotated with custom cost functions".
 */

#pragma once

#include "ir/circuit.hpp"

namespace qsyn::opt {

/** Weights of the linear cost function. */
struct CostWeights
{
    double tWeight = 0.5;    ///< extra cost per T / T-dagger gate
    double cnotWeight = 0.25;///< extra cost per CNOT
    double gateWeight = 1.0; ///< cost per gate of any kind (volume)
};

/** Evaluates Eqn. 2 (or a reweighted variant) on circuits. */
class CostModel
{
  public:
    CostModel() = default;
    explicit CostModel(const CostWeights &weights) : weights_(weights) {}

    const CostWeights &weights() const { return weights_; }

    /** Cost from precomputed statistics. */
    double
    cost(const CircuitStats &stats) const
    {
        return weights_.tWeight * static_cast<double>(stats.tCount) +
               weights_.cnotWeight * static_cast<double>(stats.cnotCount) +
               weights_.gateWeight * static_cast<double>(stats.volume);
    }

    /** Cost of a circuit. */
    double
    cost(const Circuit &circuit) const
    {
        return cost(computeStats(circuit));
    }

  private:
    CostWeights weights_;
};

} // namespace qsyn::opt
