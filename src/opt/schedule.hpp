/**
 * @file
 * ASAP scheduling and depth analysis. The paper's cost model counts
 * gates because "the likelihood of decoherence increases as a set of
 * qubits undergoes more transformations"; wall-clock decoherence is
 * governed by circuit *depth*, so the scheduler exposes the layered
 * view: which gates run concurrently, the critical path, and per-wire
 * idle time.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace qsyn::opt {

/** An ASAP schedule: gate indices grouped into concurrent layers. */
struct Schedule
{
    /** layers[t] = indices of gates executing in time step t. */
    std::vector<std::vector<size_t>> layers;

    size_t depth() const { return layers.size(); }
};

/** Per-circuit timing summary derived from a schedule. */
struct ScheduleStats
{
    size_t depth = 0;        ///< critical path length (layers)
    size_t gates = 0;        ///< scheduled gate count
    double parallelism = 0;  ///< gates / depth (average layer width)
    size_t maxLayerWidth = 0;
    /** Total wire-layers spent idle while the wire is live (between
     *  its first and last gate) — a decoherence-exposure proxy. */
    size_t idleWireLayers = 0;
};

/**
 * ASAP-schedule a circuit: every gate is placed in the earliest layer
 * after all gates it depends on (shared-wire predecessors). Barriers
 * occupy a full layer of their own and fence reordering.
 */
Schedule scheduleAsap(const Circuit &circuit);

/** Summarize a schedule. */
ScheduleStats computeScheduleStats(const Circuit &circuit,
                                   const Schedule &schedule);

/** Multi-line listing: one line per layer with its gates. */
std::string scheduleToString(const Circuit &circuit,
                             const Schedule &schedule);

} // namespace qsyn::opt
