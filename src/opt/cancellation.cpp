/**
 * @file
 * Commutation-aware inverse-pair cancellation (optimization step 5's
 * workhorse: adjacent partitions G . G^{-1} equal the identity).
 */

#include <vector>

#include "opt/passes.hpp"

namespace qsyn::opt {

namespace {

/** Forward-scan horizon; keeps the pass near-linear on huge circuits. */
constexpr size_t kScanHorizon = 256;

bool
sharesWire(const Gate &a, const Gate &b)
{
    for (Qubit q : a.qubits()) {
        if (b.usesQubit(q))
            return true;
    }
    return false;
}

} // namespace

bool
cancelInversePairs(Circuit &circuit)
{
    bool any = false;
    bool changed = true;
    std::vector<bool> removed(circuit.size(), false);

    while (changed) {
        changed = false;
        for (size_t i = 0; i < circuit.size(); ++i) {
            if (removed[i] || !circuit[i].isUnitary())
                continue;
            const Gate &g = circuit[i];
            size_t limit = std::min(circuit.size(), i + 1 + kScanHorizon);
            for (size_t j = i + 1; j < limit; ++j) {
                if (removed[j])
                    continue;
                const Gate &h = circuit[j];
                if (!sharesWire(g, h))
                    continue;
                if (h.isInverseOf(g)) {
                    removed[i] = true;
                    removed[j] = true;
                    changed = true;
                    any = true;
                    break;
                }
                if (g.commutesWith(h))
                    continue;
                break; // blocked on a shared wire
            }
        }
    }

    if (any) {
        std::vector<size_t> indices;
        for (size_t i = 0; i < removed.size(); ++i) {
            if (removed[i])
                indices.push_back(i);
        }
        circuit.eraseMany(indices);
    }
    return any;
}

} // namespace qsyn::opt
