/**
 * @file
 * Shared helpers for the phase-gate family {Z, S, S†, T, T†, P}: these
 * gates are all diag(1, e^{i theta}) for theta a multiple of pi/4 (or
 * arbitrary for P), so they compose by angle addition — used by both
 * the local rotation merger and the phase-polynomial pass.
 */

#pragma once

#include <optional>

#include "ir/gate.hpp"

namespace qsyn::opt {

/** Angle of diag(1, e^{i theta}) when `g`'s base kind is in the phase
 *  family; nullopt otherwise (controls are allowed and preserved). */
std::optional<double> phaseFamilyAngle(const Gate &g);

/**
 * Canonical phase gate for angle `theta` on `like`'s wires: named
 * gates (T, S, Z, S†, T†) where the angle matches, P otherwise,
 * nullopt when theta is 0 mod 2*pi (the identity).
 */
std::optional<Gate> canonicalPhaseGate(const Gate &like, double theta);

/** Wrap an angle into [0, period). */
double wrapAngle(double theta, double period);

/** Tolerance for angle comparisons in the merging passes. */
inline constexpr double kAngleEps = 1e-9;

} // namespace qsyn::opt
