/**
 * @file
 * Phase-polynomial rotation merging, an extension beyond the paper's
 * local optimizer (Section 6 future work: "more optimizations to
 * further reduce a circuit's quantum cost").
 *
 * Every wire carries an affine GF(2) function of *virtual variables*:
 * initially its own input; CNOT(c,t) adds the control's function onto
 * the target's; X flips the constant; any other gate makes its wires
 * opaque by assigning fresh variables. A diagonal gate applies a
 * phase e^{i theta [f(v)]} that, in path-sum form, multiplies the path
 * weight independent of its position - so diagonal gates whose wires
 * carry the *same* affine function merge exactly (including global
 * phase, since the constant bit is part of the merge key), even with
 * unrelated Hadamards in between. Measurements and barriers refresh
 * every wire, which conservatively fences merging across them. The
 * classic payoff is Clifford+T T-count reduction (Amy et al., paper
 * ref. [10]).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "common/errors.hpp"
#include "opt/passes.hpp"
#include "opt/phase_utils.hpp"

namespace qsyn::opt {

namespace {

/** Affine GF(2) function of virtual variables: parity mask + const. */
struct Affine
{
    std::vector<std::uint64_t> mask;
    bool constant = false;

    bool
    operator<(const Affine &o) const
    {
        if (mask != o.mask)
            return mask < o.mask;
        return constant < o.constant;
    }
};

/** Merge family: phase gates and Rz compose within themselves. */
enum class Family
{
    Phase,
    Rz
};

/** Gates the linear tracker understands without going opaque. */
bool
isLinearGate(const Gate &g)
{
    return g.isCnot() ||
           (g.numControls() == 0 &&
            (g.kind() == GateKind::X || g.kind() == GateKind::I));
}

/** Diagonal gates that become phase terms. */
bool
isDiagonalTerm(const Gate &g)
{
    if (g.numControls() != 0)
        return false;
    switch (g.kind()) {
      case GateKind::Z:
      case GateKind::S:
      case GateKind::Sdg:
      case GateKind::T:
      case GateKind::Tdg:
      case GateKind::P:
      case GateKind::Rz:
        return true;
      default:
        return false;
    }
}

} // namespace

bool
mergePhasePolynomial(Circuit &circuit)
{
    Qubit n = circuit.numQubits();
    if (n == 0 || circuit.empty())
        return false;

    // Worst-case virtual variable count: one per wire plus one per
    // (opaque gate, wire) incidence.
    size_t max_vars = n;
    for (const Gate &g : circuit) {
        if (!isLinearGate(g) && !isDiagonalTerm(g))
            max_vars += g.kind() == GateKind::Barrier ||
                                g.kind() == GateKind::Measure
                            ? n
                            : g.numQubits();
    }
    size_t words = (max_vars + 63) / 64;

    std::vector<Affine> state(n);
    size_t next_var = 0;
    auto fresh = [&](Qubit q) {
        state[q].mask.assign(words, 0);
        state[q].mask[next_var / 64] = std::uint64_t{1}
                                       << (next_var % 64);
        state[q].constant = false;
        ++next_var;
    };
    for (Qubit q = 0; q < n; ++q)
        fresh(q);

    // Pass 1: track wire functions, group diagonal gates.
    std::map<std::pair<Affine, Family>, size_t> first_of;
    std::map<size_t, double> merged_angle;
    std::map<size_t, std::vector<size_t>> followers;

    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit[i];
        if (g.isCnot()) {
            Qubit c = g.controls()[0];
            Qubit t = g.target();
            for (size_t w = 0; w < words; ++w)
                state[t].mask[w] ^= state[c].mask[w];
            state[t].constant = state[t].constant != state[c].constant;
            continue;
        }
        if (g.numControls() == 0 && g.kind() == GateKind::X) {
            state[g.target()].constant = !state[g.target()].constant;
            continue;
        }
        if (g.kind() == GateKind::I)
            continue;
        if (isDiagonalTerm(g)) {
            Family family = g.kind() == GateKind::Rz ? Family::Rz
                                                     : Family::Phase;
            double angle = family == Family::Rz
                               ? g.param()
                               : *phaseFamilyAngle(g);
            auto key = std::make_pair(state[g.target()], family);
            auto it = first_of.find(key);
            if (it == first_of.end()) {
                first_of.emplace(key, i);
                merged_angle[i] = angle;
            } else {
                merged_angle[it->second] += angle;
                followers[it->second].push_back(i);
            }
            continue;
        }
        if (g.kind() == GateKind::Barrier ||
            g.kind() == GateKind::Measure) {
            // Non-unitary / fence semantics: refresh every wire so no
            // phase term ever crosses.
            for (Qubit q = 0; q < n; ++q)
                fresh(q);
            // A fence also invalidates open groups: later functions
            // use fresh variables, so nothing can match anyway.
            continue;
        }
        // Any other gate: its wires become opaque.
        for (Qubit q : g.qubits())
            fresh(q);
    }

    // Pass 2: rewrite.
    std::map<size_t, Gate> replacements;
    std::vector<size_t> dead;
    for (const auto &[index, angle] : merged_angle) {
        const auto &group_followers = followers[index];
        if (group_followers.empty())
            continue;
        const Gate &host = circuit[index];
        for (size_t f : group_followers)
            dead.push_back(f);
        if (host.kind() == GateKind::Rz) {
            double theta = wrapAngle(angle, 4 * M_PI);
            if (theta < kAngleEps || theta > 4 * M_PI - kAngleEps)
                dead.push_back(index);
            else
                replacements.emplace(index,
                                     Gate::rz(host.target(), theta));
        } else {
            auto canonical = canonicalPhaseGate(host, angle);
            if (!canonical)
                dead.push_back(index);
            else
                replacements.emplace(index, *canonical);
        }
    }

    if (replacements.empty() && dead.empty())
        return false;
    for (const auto &[index, gate] : replacements)
        circuit.replace(index, gate);
    std::sort(dead.begin(), dead.end());
    circuit.eraseMany(dead);
    return true;
}

} // namespace qsyn::opt
