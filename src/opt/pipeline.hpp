/**
 * @file
 * The optimization driver: applies the local passes "recursively until
 * the technology library cost function cannot be further reduced"
 * (Section 4, steps 5-6).
 */

#pragma once

#include "device/device.hpp"
#include "ir/circuit.hpp"
#include "opt/cost_model.hpp"
#include "opt/passes.hpp"

namespace qsyn::opt {

/** Pass selection and tuning. */
struct OptimizerOptions
{
    /** Cost function (Eqn. 2 by default). */
    CostWeights weights;
    /** Legality oracle for direction rewrites; null = unconstrained. */
    const Device *device = nullptr;

    bool enableCancellation = true;
    bool enableRotationMerge = true;
    bool enableHadamardRules = true;
    bool enableWindowIdentity = true;
    /**
     * Phase-polynomial T-count reduction. Off by default: it merges
     * rotations through CNOT networks, improving *beyond* the paper's
     * reported optimizer (whose tables keep T-counts fixed), so the
     * reproduction benches leave it disabled and the ablation bench
     * measures it.
     */
    bool enablePhasePolynomial = false;

    /** Window-identity pass limits. */
    int windowQubits = 3;
    size_t windowGates = 16;

    /** Safety cap on driver rounds. */
    int maxRounds = 64;
};

/** What a run of the optimizer accomplished. */
struct OptimizeReport
{
    double initialCost = 0.0;
    double finalCost = 0.0;
    size_t initialGates = 0;
    size_t finalGates = 0;
    int rounds = 0;

    double
    percentCostDecrease() const
    {
        if (initialCost <= 0.0)
            return 0.0;
        return 100.0 * (initialCost - finalCost) / initialCost;
    }
};

/**
 * Optimize a primitive-level circuit to a cost fixed point. Every
 * rewrite is phase-exact and (given `options.device`) legality-
 * preserving, so optimize(route(x)) still routes.
 */
Circuit optimizeCircuit(const Circuit &circuit,
                        const OptimizerOptions &options = {},
                        OptimizeReport *report = nullptr);

} // namespace qsyn::opt
