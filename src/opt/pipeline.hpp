/**
 * @file
 * The optimization driver: applies the local passes "recursively until
 * the technology library cost function cannot be further reduced"
 * (Section 4, steps 5-6).
 */

#pragma once

#include <vector>

#include "device/device.hpp"
#include "ir/circuit.hpp"
#include "opt/cost_model.hpp"
#include "opt/passes.hpp"

namespace qsyn::opt {

/** Pass selection and tuning. */
struct OptimizerOptions
{
    /** Cost function (Eqn. 2 by default). */
    CostWeights weights;
    /** Legality oracle for direction rewrites; null = unconstrained. */
    const Device *device = nullptr;

    bool enableCancellation = true;
    bool enableRotationMerge = true;
    bool enableHadamardRules = true;
    bool enableWindowIdentity = true;
    /**
     * Phase-polynomial T-count reduction. Off by default: it merges
     * rotations through CNOT networks, improving *beyond* the paper's
     * reported optimizer (whose tables keep T-counts fixed), so the
     * reproduction benches leave it disabled and the ablation bench
     * measures it.
     */
    bool enablePhasePolynomial = false;

    /** Window-identity pass limits. */
    int windowQubits = 3;
    size_t windowGates = 16;

    /** Safety cap on driver rounds. */
    int maxRounds = 64;

    /**
     * Track the per-pass cost delta in OptimizeReport::passes. Costs a
     * cost-model evaluation (one O(gates) scan) after every pass
     * invocation, so it is off by default and enabled by the CLI under
     * `--log-level debug` or whenever a trace sink is installed.
     * Invocation and gates-removed accounting is O(1) and always on.
     */
    bool collectPassStats = false;

    /**
     * Capture a before/after circuit snapshot around every pass
     * invocation that changed the circuit (OptimizeReport::snapshots).
     * Costs an O(gates) circuit copy per effective pass, so it is off
     * by default; the check library's blame attribution enables it
     * when re-running a failing compile to name the culprit pass.
     */
    bool capturePassCircuits = false;
};

/** One effective pass invocation: the circuit it saw and produced. */
struct PassSnapshot
{
    /** Stable pass name ("cancellation", "rotation_merge", ...). */
    const char *pass = "";
    /** 0-based driver round the invocation ran in. */
    int round = 0;
    Circuit before{0};
    Circuit after{0};
};

/** Per-pass accounting across all driver rounds. */
struct PassReport
{
    /** Stable pass name ("cancellation", "rotation_merge", ...). */
    const char *name = "";
    /** Rounds in which the pass ran. */
    int invocations = 0;
    /** Rounds in which it changed the circuit. */
    int changedRounds = 0;
    /** Total gates it deleted (summed over rounds). */
    size_t gatesRemoved = 0;
    /** Total Eqn. 2 cost it removed; only filled when
     *  OptimizerOptions::collectPassStats is set. */
    double costDelta = 0.0;
};

/** What a run of the optimizer accomplished. */
struct OptimizeReport
{
    double initialCost = 0.0;
    double finalCost = 0.0;
    size_t initialGates = 0;
    size_t finalGates = 0;
    int rounds = 0;
    /** One entry per enabled pass, in execution order. */
    std::vector<PassReport> passes;
    /** Effective pass invocations in execution order; only filled when
     *  OptimizerOptions::capturePassCircuits is set. */
    std::vector<PassSnapshot> snapshots;

    double
    percentCostDecrease() const
    {
        if (initialCost <= 0.0)
            return 0.0;
        return 100.0 * (initialCost - finalCost) / initialCost;
    }
};

/**
 * Optimize a primitive-level circuit to a cost fixed point. Every
 * rewrite is phase-exact and (given `options.device`) legality-
 * preserving, so optimize(route(x)) still routes.
 */
Circuit optimizeCircuit(const Circuit &circuit,
                        const OptimizerOptions &options = {},
                        OptimizeReport *report = nullptr);

} // namespace qsyn::opt
