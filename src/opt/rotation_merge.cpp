/**
 * @file
 * Rotation and phase-gate merging (optimization step 6: replacing gate
 * partitions with cheaper logically identical ones). All merges are
 * exact including global phase: the phase family {Z, S, S†, T, T†, P}
 * composes multiplicatively on the |1> amplitude, and same-axis
 * rotations add their angles (period 4*pi).
 */

#include <cmath>
#include <numbers>
#include <optional>
#include <vector>

#include "opt/passes.hpp"
#include "opt/phase_utils.hpp"

namespace qsyn::opt {

namespace {

using std::numbers::pi;

constexpr size_t kScanHorizon = 256;

bool
sharesWire(const Gate &a, const Gate &b)
{
    for (Qubit q : a.qubits()) {
        if (b.usesQubit(q))
            return true;
    }
    return false;
}

bool
isAxisRotation(GateKind kind)
{
    return kind == GateKind::Rx || kind == GateKind::Ry ||
           kind == GateKind::Rz;
}

} // namespace

bool
mergeRotations(Circuit &circuit)
{
    bool any = false;
    bool changed = true;

    while (changed) {
        changed = false;
        std::vector<bool> removed(circuit.size(), false);
        bool applied = false;

        for (size_t i = 0; i < circuit.size() && !applied; ++i) {
            if (removed[i] || !circuit[i].isUnitary())
                continue;
            const Gate g = circuit[i];
            auto g_phase = phaseFamilyAngle(g);
            bool g_axis = isAxisRotation(g.kind());
            if (!g_phase && !g_axis)
                continue;

            size_t limit = std::min(circuit.size(), i + 1 + kScanHorizon);
            for (size_t j = i + 1; j < limit; ++j) {
                if (removed[j])
                    continue;
                const Gate h = circuit[j];
                if (!sharesWire(g, h))
                    continue;

                bool same_wires = h.controls() == g.controls() &&
                                  h.targets() == g.targets();
                if (same_wires && g_phase) {
                    auto h_phase = phaseFamilyAngle(h);
                    if (h_phase) {
                        auto merged =
                            canonicalPhaseGate(g, *g_phase + *h_phase);
                        circuit.eraseMany({i, j});
                        if (merged)
                            circuit.insert(i, *merged);
                        applied = true;
                        changed = true;
                        any = true;
                        break;
                    }
                }
                if (same_wires && g_axis && h.kind() == g.kind()) {
                    double theta =
                        wrapAngle(g.param() + h.param(), 4 * pi);
                    circuit.eraseMany({i, j});
                    if (theta > kAngleEps && theta < 4 * pi - kAngleEps) {
                        circuit.insert(
                            i, Gate(g.kind(), g.controls(), g.targets(),
                                    theta));
                    }
                    applied = true;
                    changed = true;
                    any = true;
                    break;
                }
                if (g.commutesWith(h))
                    continue;
                break;
            }
        }
    }
    return any;
}

} // namespace qsyn::opt
