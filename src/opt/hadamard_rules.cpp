/**
 * @file
 * Hadamard conjugation rewrites (circuit identities of optimization
 * step 6): H X H = Z, H Z H = X, and the Fig. 6 orientation identity
 * (H (+) H) CNOT(b,a) (H (+) H) = CNOT(a,b), applied in the
 * cost-reducing direction (5 gates -> 1) and only when the rewritten
 * CNOT direction is legal on the target device.
 */

#include <algorithm>
#include <vector>

#include "opt/passes.hpp"

namespace qsyn::opt {

namespace {

/** Per-gate wire adjacency: previous/next gate index on each wire. */
struct WireLinks
{
    static constexpr size_t kNone = static_cast<size_t>(-1);

    explicit WireLinks(const Circuit &circuit)
        : prev(circuit.size()), next(circuit.size())
    {
        std::vector<size_t> last(circuit.numQubits(), kNone);
        for (size_t i = 0; i < circuit.size(); ++i) {
            const auto wires = circuit[i].qubits();
            prev[i].assign(wires.size(), kNone);
            next[i].assign(wires.size(), kNone);
            for (size_t w = 0; w < wires.size(); ++w) {
                size_t p = last[wires[w]];
                prev[i][w] = p;
                if (p != kNone) {
                    const auto pw = circuit[p].qubits();
                    for (size_t k = 0; k < pw.size(); ++k) {
                        if (pw[k] == wires[w])
                            next[p][k] = i;
                    }
                }
                last[wires[w]] = i;
            }
        }
    }

    /** prev[i][k]: index of the previous gate on the k-th wire of
     *  gate i (order of Gate::qubits()). */
    std::vector<std::vector<size_t>> prev;
    std::vector<std::vector<size_t>> next;
};

bool
isPlainH(const Gate &g, Qubit q)
{
    return g.kind() == GateKind::H && g.numControls() == 0 &&
           g.target() == q;
}

} // namespace

bool
applyHadamardRules(Circuit &circuit, const Device *device)
{
    bool any = false;
    bool changed = true;

    while (changed) {
        changed = false;
        WireLinks links(circuit);
        constexpr size_t kNone = WireLinks::kNone;

        // Batch all non-overlapping matches found against one adjacency
        // snapshot, then apply them together.
        std::vector<bool> used(circuit.size(), false);
        std::vector<std::pair<size_t, Gate>> replacements;
        std::vector<size_t> dead;

        auto all_free = [&](std::initializer_list<size_t> idx) {
            return std::all_of(idx.begin(), idx.end(),
                               [&](size_t i) { return !used[i]; });
        };
        auto mark_used = [&](std::initializer_list<size_t> idx) {
            for (size_t i : idx)
                used[i] = true;
        };

        for (size_t i = 0; i < circuit.size(); ++i) {
            if (used[i])
                continue;
            const Gate &g = circuit[i];

            // H X H = Z and H Z H = X on a single wire.
            if ((g.kind() == GateKind::X || g.kind() == GateKind::Z) &&
                g.numControls() == 0) {
                Qubit q = g.target();
                size_t p = links.prev[i][0];
                size_t n = links.next[i][0];
                if (p != kNone && n != kNone && all_free({p, n}) &&
                    isPlainH(circuit[p], q) && isPlainH(circuit[n], q)) {
                    GateKind flipped = g.kind() == GateKind::X
                                           ? GateKind::Z
                                           : GateKind::X;
                    replacements.emplace_back(i, Gate(flipped, {}, {q}));
                    dead.push_back(p);
                    dead.push_back(n);
                    mark_used({i, p, n});
                    continue;
                }
            }

            // (H(+)H) CNOT(b,a) (H(+)H) = CNOT(a,b).
            if (g.isCnot()) {
                Qubit b = g.controls()[0]; // wire slot 0
                Qubit a = g.target();      // wire slot 1
                size_t pb = links.prev[i][0], nb = links.next[i][0];
                size_t pa = links.prev[i][1], na = links.next[i][1];
                if (pa == kNone || na == kNone || pb == kNone ||
                    nb == kNone)
                    continue;
                if (!all_free({pa, pb, na, nb}))
                    continue;
                if (!isPlainH(circuit[pa], a) || !isPlainH(circuit[na], a) ||
                    !isPlainH(circuit[pb], b) || !isPlainH(circuit[nb], b))
                    continue;
                bool legal = device == nullptr ||
                             device->isFullyConnected() ||
                             device->coupling().hasEdge(a, b);
                if (!legal)
                    continue;
                replacements.emplace_back(i, Gate::cnot(a, b));
                dead.insert(dead.end(), {pa, pb, na, nb});
                mark_used({i, pa, pb, na, nb});
            }
        }

        if (!replacements.empty()) {
            for (const auto &[idx, gate] : replacements)
                circuit.replace(idx, gate);
            std::sort(dead.begin(), dead.end());
            circuit.eraseMany(dead);
            changed = true;
            any = true;
        }
    }
    return any;
}

} // namespace qsyn::opt
