/**
 * @file
 * Local optimization passes (Section 4, mapping steps 5 and 6):
 * "local optimizations based on removing partitions of gates that
 * equal the identity function" and "that can be minimized with a
 * logically identical circuit identity", applied recursively until the
 * cost function cannot be reduced (see pipeline.hpp for the driver).
 *
 * Every pass is phase-exact: rewritten circuits equal the original
 * unitary including global phase, so the QMDD equivalence check stays
 * strict.
 */

#pragma once

#include "device/device.hpp"
#include "ir/circuit.hpp"

namespace qsyn::opt {

/**
 * Cancel adjacent inverse pairs (H.H, X.X, CNOT.CNOT, T.Tdg, ...).
 * "Adjacent" is commutation-aware: gates that syntactically commute
 * with the first gate may sit in between. Returns true when the
 * circuit changed.
 */
bool cancelInversePairs(Circuit &circuit);

/**
 * Merge mergeable neighbors: same-axis rotations add their angles and
 * the phase-gate family {Z, S, S†, T, T†, P} composes exactly
 * (T.T = S, S.S = Z, ...), including controlled variants with equal
 * control sets. Gates merging to the identity disappear. Returns true
 * when the circuit changed.
 */
bool mergeRotations(Circuit &circuit);

/**
 * Hadamard conjugation identities:
 *   H X H = Z,  H Z H = X,
 *   (H (+) H) CNOT(b,a) (H (+) H) = CNOT(a,b)   [Fig. 6, reversed]
 * The CNOT reversal fires only when the resulting direction is legal
 * on `device` (null device = unconstrained). Returns true when the
 * circuit changed.
 */
bool applyHadamardRules(Circuit &circuit, const Device *device);

/**
 * Remove gate partitions that multiply to the identity: slides a
 * window over runs of gates confined to at most `max_qubits` wires
 * (gates on disjoint wires may interleave) and deletes any prefix
 * whose product is exactly the identity. Returns true when the circuit
 * changed.
 */
bool removeIdentityWindows(Circuit &circuit, int max_qubits = 3,
                           size_t max_gates = 16);

/**
 * Phase-polynomial merging (extension beyond the paper's optimizer):
 * inside {CNOT, X, phase, Rz} regions, diagonal gates whose wires
 * carry the same affine GF(2) function of the region inputs merge
 * exactly — the classic Clifford+T T-count reduction. Returns true
 * when the circuit changed.
 */
bool mergePhasePolynomial(Circuit &circuit);

} // namespace qsyn::opt
