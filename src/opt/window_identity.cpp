/**
 * @file
 * Identity-window elimination — the literal reading of optimization
 * step 5: "removing partitions of gates that equal the identity
 * function". A window is a run of gates confined to a small wire set
 * (gates on disjoint wires may interleave and are untouched); the
 * window's unitary is accumulated as a small dense matrix, and the
 * first prefix multiplying to the exact identity is deleted.
 */

#include <algorithm>
#include <vector>

#include "ir/matrix.hpp"
#include "opt/passes.hpp"

namespace qsyn::opt {

namespace {

/** Gates members of a window must be unitary and control-count-simple
 *  enough for DenseMatrix::applyGate. */
bool
isWindowable(const Gate &g)
{
    return g.isUnitary() && g.kind() != GateKind::I;
}

/**
 * Collect a window starting at `start`: member gate indices whose
 * wires stay inside a growing set of at most `max_qubits` wires.
 * Gates fully disjoint from the set are skipped over; expansion past a
 * skipped gate's wires is refused (that gate might not commute).
 */
struct Window
{
    std::vector<size_t> members;
    std::vector<Qubit> wires;
};

Window
collectWindow(const Circuit &circuit, size_t start, int max_qubits,
              size_t max_gates)
{
    Window win;
    std::vector<Qubit> skipped_wires;

    auto in_set = [](const std::vector<Qubit> &set, Qubit q) {
        return std::find(set.begin(), set.end(), q) != set.end();
    };

    for (size_t j = start;
         j < circuit.size() && win.members.size() < max_gates; ++j) {
        const Gate &g = circuit[j];
        if (!isWindowable(g)) {
            // Barriers / measures end the window for safety.
            bool touches = std::any_of(
                win.wires.begin(), win.wires.end(),
                [&](Qubit q) { return g.usesQubit(q); });
            if (touches || g.kind() == GateKind::Barrier)
                break;
            continue;
        }
        auto wires = g.qubits();
        std::vector<Qubit> fresh;
        bool overlaps = false;
        for (Qubit q : wires) {
            if (in_set(win.wires, q))
                overlaps = true;
            else
                fresh.push_back(q);
        }
        if (fresh.empty()) {
            win.members.push_back(j);
            continue;
        }
        if (!overlaps && !win.members.empty()) {
            // Fully disjoint: skip over, but remember its wires so we
            // never expand onto them later.
            for (Qubit q : fresh)
                skipped_wires.push_back(q);
            continue;
        }
        // Overlapping (or the very first gate): try to expand.
        bool blocked = std::any_of(fresh.begin(), fresh.end(),
                                   [&](Qubit q) {
                                       return in_set(skipped_wires, q);
                                   });
        if (blocked ||
            win.wires.size() + fresh.size() >
                static_cast<size_t>(max_qubits))
            break;
        for (Qubit q : fresh)
            win.wires.push_back(q);
        win.members.push_back(j);
    }
    return win;
}

/**
 * Longest prefix of the window whose product is the identity; 0 when
 * none (prefixes of length < 2 do not count).
 */
size_t
identityPrefix(const Circuit &circuit, const Window &win)
{
    DenseMatrix m(static_cast<int>(win.wires.size()));
    auto local = [&](Qubit q) {
        auto it = std::find(win.wires.begin(), win.wires.end(), q);
        return static_cast<int>(it - win.wires.begin());
    };

    size_t best = 0;
    for (size_t k = 0; k < win.members.size(); ++k) {
        const Gate &g = circuit[win.members[k]];
        std::vector<int> controls;
        for (Qubit c : g.controls())
            controls.push_back(local(c));
        if (g.kind() == GateKind::Swap) {
            m.applySwap(controls, local(g.targets()[0]),
                        local(g.targets()[1]));
        } else {
            m.applyGate(g.baseMatrix(), controls, local(g.target()));
        }
        if (k >= 1 && m.isIdentity())
            best = k + 1;
    }
    return best;
}

} // namespace

bool
removeIdentityWindows(Circuit &circuit, int max_qubits, size_t max_gates)
{
    bool any = false;
    bool changed = true;

    while (changed) {
        changed = false;
        std::vector<size_t> dead;
        std::vector<bool> used(circuit.size(), false);

        for (size_t start = 0; start < circuit.size(); ++start) {
            if (used[start] || !isWindowable(circuit[start]))
                continue;
            Window win = collectWindow(circuit, start, max_qubits,
                                       max_gates);
            if (win.members.size() < 2)
                continue;
            if (std::any_of(win.members.begin(), win.members.end(),
                            [&](size_t i) { return used[i]; }))
                continue;
            size_t prefix = identityPrefix(circuit, win);
            if (prefix < 2)
                continue;
            for (size_t k = 0; k < prefix; ++k) {
                dead.push_back(win.members[k]);
                used[win.members[k]] = true;
            }
        }

        if (!dead.empty()) {
            std::sort(dead.begin(), dead.end());
            circuit.eraseMany(dead);
            changed = true;
            any = true;
        }
    }
    return any;
}

} // namespace qsyn::opt
