#include "opt/pipeline.hpp"

#include "common/deadline.hpp"
#include "obs/obs.hpp"

namespace qsyn::opt {

Circuit
optimizeCircuit(const Circuit &circuit, const OptimizerOptions &options,
                OptimizeReport *report)
{
    CostModel model(options.weights);
    Circuit current = circuit;
    obs::Sink *sink = obs::sink();
    // Per-pass cost deltas need a cost evaluation around every pass;
    // only pay for them when someone will look at the numbers.
    const bool detailed = options.collectPassStats || sink != nullptr;

    double cost = model.cost(current);
    if (report) {
        report->initialCost = cost;
        report->initialGates = computeStats(current).volume;
        report->rounds = 0;
        report->passes.clear();
        report->snapshots.clear();
    }

    PassReport cancellation{"cancellation", 0, 0, 0, 0.0};
    PassReport rotation{"rotation_merge", 0, 0, 0, 0.0};
    PassReport hadamard{"hadamard_rules", 0, 0, 0, 0.0};
    PassReport window{"window_identity", 0, 0, 0, 0.0};
    PassReport phase{"phase_polynomial", 0, 0, 0, 0.0};

    const bool capture = options.capturePassCircuits && report != nullptr;
    int current_round = 0;
    auto run_pass = [&](PassReport &pr, const char *span_name,
                        auto &&fn) -> bool {
        obs::Span span(span_name, "opt");
        size_t gates_before = current.size();
        double cost_before = detailed ? model.cost(current) : 0.0;
        Circuit before{0};
        if (capture)
            before = current;
        bool changed = fn();
        if (capture && changed) {
            report->snapshots.push_back(
                {pr.name, current_round, std::move(before), current});
        }
        ++pr.invocations;
        if (changed)
            ++pr.changedRounds;
        size_t gates_after = current.size();
        size_t removed =
            gates_before > gates_after ? gates_before - gates_after : 0;
        pr.gatesRemoved += removed;
        double delta = 0.0;
        if (detailed) {
            delta = cost_before - model.cost(current);
            pr.costDelta += delta;
        }
        if (sink != nullptr) {
            span.arg("gates_removed", removed);
            span.arg("cost_delta", delta);
            obs::MetricsRegistry &m = sink->metrics();
            std::string prefix = std::string("opt.") + pr.name;
            m.addCounter(prefix + ".invocations", 1.0);
            m.addCounter(prefix + ".gates_removed",
                         static_cast<double>(removed));
            m.addCounter(prefix + ".cost_delta", delta);
            m.addCounter("opt.gates_removed",
                         static_cast<double>(removed));
            m.addCounter("opt.cost_delta", delta);
        }
        return changed;
    };

    for (int round = 0; round < options.maxRounds; ++round) {
        deadline::check("local optimization");
        current_round = round;
        obs::Span round_span("opt.round", "opt");
        round_span.arg("round", round);
        bool changed = false;
        if (options.enableCancellation) {
            changed |= run_pass(cancellation, "opt.cancellation", [&] {
                return cancelInversePairs(current);
            });
        }
        if (options.enableRotationMerge) {
            changed |= run_pass(rotation, "opt.rotation_merge", [&] {
                return mergeRotations(current);
            });
        }
        if (options.enableHadamardRules) {
            changed |= run_pass(hadamard, "opt.hadamard_rules", [&] {
                return applyHadamardRules(current, options.device);
            });
        }
        if (options.enableWindowIdentity) {
            changed |= run_pass(window, "opt.window_identity", [&] {
                return removeIdentityWindows(current,
                                             options.windowQubits,
                                             options.windowGates);
            });
        }
        if (options.enablePhasePolynomial) {
            changed |= run_pass(phase, "opt.phase_polynomial", [&] {
                return mergePhasePolynomial(current);
            });
        }
        if (report)
            report->rounds = round + 1;
        double new_cost = model.cost(current);
        QSYN_OBS_LOG(Trace, "opt")
            << "round " << round + 1 << ": cost " << cost << " -> "
            << new_cost << ", " << current.size() << " gates";
        // Passes only delete or shrink gates, so cost is monotone; stop
        // at the fixed point.
        if (!changed || new_cost >= cost) {
            cost = new_cost;
            break;
        }
        cost = new_cost;
    }

    if (report) {
        report->finalCost = cost;
        report->finalGates = computeStats(current).volume;
        if (options.enableCancellation)
            report->passes.push_back(cancellation);
        if (options.enableRotationMerge)
            report->passes.push_back(rotation);
        if (options.enableHadamardRules)
            report->passes.push_back(hadamard);
        if (options.enableWindowIdentity)
            report->passes.push_back(window);
        if (options.enablePhasePolynomial)
            report->passes.push_back(phase);
    }
    return current;
}

} // namespace qsyn::opt
