#include "opt/pipeline.hpp"

namespace qsyn::opt {

Circuit
optimizeCircuit(const Circuit &circuit, const OptimizerOptions &options,
                OptimizeReport *report)
{
    CostModel model(options.weights);
    Circuit current = circuit;

    double cost = model.cost(current);
    if (report) {
        report->initialCost = cost;
        report->initialGates = computeStats(current).volume;
        report->rounds = 0;
    }

    for (int round = 0; round < options.maxRounds; ++round) {
        bool changed = false;
        if (options.enableCancellation)
            changed |= cancelInversePairs(current);
        if (options.enableRotationMerge)
            changed |= mergeRotations(current);
        if (options.enableHadamardRules)
            changed |= applyHadamardRules(current, options.device);
        if (options.enableWindowIdentity) {
            changed |= removeIdentityWindows(current, options.windowQubits,
                                             options.windowGates);
        }
        if (options.enablePhasePolynomial)
            changed |= mergePhasePolynomial(current);
        if (report)
            report->rounds = round + 1;
        double new_cost = model.cost(current);
        // Passes only delete or shrink gates, so cost is monotone; stop
        // at the fixed point.
        if (!changed || new_cost >= cost) {
            cost = new_cost;
            break;
        }
        cost = new_cost;
    }

    if (report) {
        report->finalCost = cost;
        report->finalGates = computeStats(current).volume;
    }
    return current;
}

} // namespace qsyn::opt
