#include "opt/phase_utils.hpp"

#include <cmath>
#include <numbers>

namespace qsyn::opt {

namespace {

using std::numbers::pi;

} // namespace

std::optional<double>
phaseFamilyAngle(const Gate &g)
{
    switch (g.kind()) {
      case GateKind::Z:
        return pi;
      case GateKind::S:
        return pi / 2;
      case GateKind::Sdg:
        return -pi / 2;
      case GateKind::T:
        return pi / 4;
      case GateKind::Tdg:
        return -pi / 4;
      case GateKind::P:
        return g.param();
      default:
        return std::nullopt;
    }
}

double
wrapAngle(double theta, double period)
{
    theta = std::fmod(theta, period);
    if (theta < 0)
        theta += period;
    return theta;
}

std::optional<Gate>
canonicalPhaseGate(const Gate &like, double theta)
{
    theta = wrapAngle(theta, 2 * pi);
    auto make = [&](GateKind kind, double param = 0.0) {
        return Gate(kind, like.controls(), like.targets(), param);
    };
    if (theta < kAngleEps || theta > 2 * pi - kAngleEps)
        return std::nullopt;
    if (std::abs(theta - pi / 4) < kAngleEps)
        return make(GateKind::T);
    if (std::abs(theta - pi / 2) < kAngleEps)
        return make(GateKind::S);
    if (std::abs(theta - pi) < kAngleEps)
        return make(GateKind::Z);
    if (std::abs(theta - 3 * pi / 2) < kAngleEps)
        return make(GateKind::Sdg);
    if (std::abs(theta - 7 * pi / 4) < kAngleEps)
        return make(GateKind::Tdg);
    return make(GateKind::P, theta);
}

} // namespace qsyn::opt
