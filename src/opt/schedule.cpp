#include "opt/schedule.hpp"

#include <algorithm>
#include <sstream>

#include "common/errors.hpp"

namespace qsyn::opt {

Schedule
scheduleAsap(const Circuit &circuit)
{
    Schedule schedule;
    std::vector<size_t> wire_ready(circuit.numQubits(), 0);
    size_t barrier_floor = 0;

    for (size_t i = 0; i < circuit.size(); ++i) {
        const Gate &g = circuit[i];
        if (g.kind() == GateKind::Barrier) {
            // A barrier fences everything before it and takes a layer.
            size_t layer = barrier_floor;
            for (Qubit q = 0; q < circuit.numQubits(); ++q)
                layer = std::max(layer, wire_ready[q]);
            if (schedule.layers.size() <= layer)
                schedule.layers.resize(layer + 1);
            schedule.layers[layer].push_back(i);
            barrier_floor = layer + 1;
            for (Qubit q = 0; q < circuit.numQubits(); ++q)
                wire_ready[q] = barrier_floor;
            continue;
        }
        size_t layer = barrier_floor;
        for (Qubit q : g.qubits())
            layer = std::max(layer, wire_ready[q]);
        if (schedule.layers.size() <= layer)
            schedule.layers.resize(layer + 1);
        schedule.layers[layer].push_back(i);
        for (Qubit q : g.qubits())
            wire_ready[q] = layer + 1;
    }
    return schedule;
}

ScheduleStats
computeScheduleStats(const Circuit &circuit, const Schedule &schedule)
{
    ScheduleStats stats;
    stats.depth = schedule.depth();

    // First/last layer each wire is touched, plus per-wire busy count.
    constexpr size_t kNone = static_cast<size_t>(-1);
    std::vector<size_t> first(circuit.numQubits(), kNone);
    std::vector<size_t> last(circuit.numQubits(), 0);
    std::vector<size_t> busy(circuit.numQubits(), 0);

    for (size_t t = 0; t < schedule.layers.size(); ++t) {
        stats.maxLayerWidth =
            std::max(stats.maxLayerWidth, schedule.layers[t].size());
        for (size_t index : schedule.layers[t]) {
            ++stats.gates;
            for (Qubit q : circuit[index].qubits()) {
                if (first[q] == kNone)
                    first[q] = t;
                last[q] = t;
                ++busy[q];
            }
        }
    }
    for (Qubit q = 0; q < circuit.numQubits(); ++q) {
        if (first[q] == kNone)
            continue;
        size_t live = last[q] - first[q] + 1;
        stats.idleWireLayers += live - busy[q];
    }
    stats.parallelism =
        stats.depth == 0
            ? 0.0
            : static_cast<double>(stats.gates) /
                  static_cast<double>(stats.depth);
    return stats;
}

std::string
scheduleToString(const Circuit &circuit, const Schedule &schedule)
{
    std::ostringstream os;
    for (size_t t = 0; t < schedule.layers.size(); ++t) {
        os << "t" << t << ":";
        for (size_t index : schedule.layers[t])
            os << "  " << circuit[index].toString();
        os << "\n";
    }
    return os.str();
}

} // namespace qsyn::opt
