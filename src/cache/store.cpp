#include "cache/store.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/numeric.hpp"

namespace qsyn::cache {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[4] = {'Q', 'S', 'Y', 'C'};
constexpr std::uint32_t kFormatVersion = 1;

std::uint64_t
payloadChecksum(const std::vector<std::uint8_t> &payload)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint8_t byte : payload)
        h = (h ^ byte) * 0x100000001b3ull;
    return h;
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::string &in, size_t pos)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(in[pos + i]))
             << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::string &in, size_t pos)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[pos + i]))
             << (8 * i);
    return v;
}

/** magic + version + key(32) + payload size + payload checksum. */
constexpr size_t kHeaderSize = 4 + 4 + 32 + 8 + 8;

} // namespace

CacheStore::CacheStore(StoreConfig config) : config_(std::move(config))
{
    std::error_code ec;
    fs::create_directories(fs::path(config_.dir) / "objects", ec);
    fs::create_directories(fs::path(config_.dir) / "tmp", ec);
    std::lock_guard<std::mutex> lock(mu_);
    loadIndexLocked();
}

std::string
CacheStore::objectPath(const std::string &key) const
{
    return (fs::path(config_.dir) / "objects" / key.substr(0, 2) /
            (key + ".qsc"))
        .string();
}

void
CacheStore::loadIndexLocked()
{
    std::ifstream in(fs::path(config_.dir) / "index.txt");
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream fields(line);
        std::string key, size_text, seq_text;
        if (!(fields >> key >> size_text >> seq_text))
            continue;
        unsigned long long size = 0, seq = 0;
        if (key.size() != 32 || !parseUnsigned(size_text, &size) ||
            !parseUnsigned(seq_text, &seq))
            continue;
        Entry entry;
        entry.size = size;
        entry.seq = seq;
        auto [it, inserted] = index_.emplace(key, entry);
        if (inserted)
            totalBytes_ += size;
        nextSeq_ = std::max<uint64_t>(nextSeq_, seq + 1);
    }
}

void
CacheStore::writeIndexLocked()
{
    fs::path tmp = fs::path(config_.dir) / "tmp" / "index.txt.tmp";
    {
        std::ofstream out(tmp);
        if (!out)
            return;
        for (const auto &[key, entry] : index_)
            out << key << " " << entry.size << " " << entry.seq << "\n";
    }
    std::error_code ec;
    fs::rename(tmp, fs::path(config_.dir) / "index.txt", ec);
}

void
CacheStore::removeEntryLocked(const std::string &key)
{
    // `key` may alias the index entry being erased (evictLocked passes
    // victim->first); resolve the path before invalidating it.
    std::string path = objectPath(key);
    auto it = index_.find(key);
    if (it != index_.end()) {
        totalBytes_ -= std::min(totalBytes_, it->second.size);
        index_.erase(it);
    }
    std::error_code ec;
    fs::remove(path, ec);
}

void
CacheStore::evictLocked()
{
    while (totalBytes_ > config_.maxBytes && !index_.empty()) {
        auto victim = index_.begin();
        for (auto it = index_.begin(); it != index_.end(); ++it) {
            if (it->second.seq < victim->second.seq)
                victim = it;
        }
        removeEntryLocked(victim->first);
        ++evictions_;
    }
}

bool
CacheStore::load(const std::string &key,
                 std::vector<std::uint8_t> *payload)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ifstream in(objectPath(key), std::ios::binary);
    if (!in) {
        // Entry disappeared (external cleanup): drop the stale index
        // row so bytes() stays honest.
        if (index_.count(key)) {
            removeEntryLocked(key);
            writeIndexLocked();
        }
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string raw = buf.str();

    auto corrupt = [&]() {
        removeEntryLocked(key);
        writeIndexLocked();
        return false;
    };
    if (raw.size() < kHeaderSize)
        return corrupt();
    if (raw.compare(0, 4, kMagic, 4) != 0)
        return corrupt();
    if (getU32(raw, 4) != kFormatVersion)
        return corrupt();
    if (raw.compare(8, 32, key) != 0)
        return corrupt();
    std::uint64_t size = getU64(raw, 40);
    std::uint64_t checksum = getU64(raw, 48);
    if (raw.size() != kHeaderSize + size)
        return corrupt();
    std::vector<std::uint8_t> bytes(raw.begin() + kHeaderSize,
                                    raw.end());
    if (payloadChecksum(bytes) != checksum)
        return corrupt();

    auto it = index_.find(key);
    if (it == index_.end()) {
        // Object exists but was never indexed (e.g. an interrupted
        // earlier run): adopt it.
        Entry entry;
        entry.size = size;
        it = index_.emplace(key, entry).first;
        totalBytes_ += size;
    }
    it->second.seq = nextSeq_++;
    writeIndexLocked();
    *payload = std::move(bytes);
    return true;
}

void
CacheStore::store(const std::string &key,
                  const std::vector<std::uint8_t> &payload)
{
    if (key.size() != 32)
        return;
    std::lock_guard<std::mutex> lock(mu_);

    std::string blob;
    blob.reserve(kHeaderSize + payload.size());
    blob.append(kMagic, 4);
    putU32(blob, kFormatVersion);
    blob.append(key);
    putU64(blob, payload.size());
    putU64(blob, payloadChecksum(payload));
    blob.append(payload.begin(), payload.end());

    // Stage in tmp/ (unique name per thread) and rename into place so
    // a concurrent reader sees either nothing or the complete entry.
    fs::path tmp =
        fs::path(config_.dir) / "tmp" /
        (key + "." +
         std::to_string(
             std::hash<std::thread::id>{}(std::this_thread::get_id())) +
         ".tmp");
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
        if (!out)
            return;
    }
    fs::path final_path = objectPath(key);
    std::error_code ec;
    fs::create_directories(final_path.parent_path(), ec);
    fs::rename(tmp, final_path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return;
    }

    auto it = index_.find(key);
    if (it == index_.end()) {
        Entry entry;
        entry.size = payload.size();
        it = index_.emplace(key, entry).first;
        totalBytes_ += payload.size();
    } else {
        totalBytes_ -= std::min(totalBytes_, it->second.size);
        it->second.size = payload.size();
        totalBytes_ += payload.size();
    }
    it->second.seq = nextSeq_++;
    evictLocked();
    writeIndexLocked();
}

std::uint64_t
CacheStore::bytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return totalBytes_;
}

size_t
CacheStore::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return index_.size();
}

size_t
CacheStore::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

} // namespace qsyn::cache
