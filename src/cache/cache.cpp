#include "cache/cache.hpp"

#include <chrono>

#include "cache/fingerprint.hpp"
#include "cache/serialize.hpp"
#include "common/errors.hpp"
#include "obs/obs.hpp"

namespace qsyn::cache {

CompileCache::CompileCache(CacheConfig config)
    : config_(std::move(config))
{
    if (!config_.dir.empty()) {
        StoreConfig sc;
        sc.dir = config_.dir;
        sc.maxBytes = config_.maxDiskBytes;
        store_ = std::make_unique<CacheStore>(sc);
    }
}

void
CompileCache::bumpCounter(const char *name, double delta) const
{
    obs::Sink *s = obs::sink();
    if (s != nullptr)
        s->metrics().addCounter(name, delta);
}

namespace {

using Clock = std::chrono::steady_clock;

/** Record a `*.latency_us` histogram sample (microsecond rule). */
void
observeLatencyUs(const char *name, Clock::time_point since)
{
    obs::Sink *s = obs::sink();
    if (s == nullptr)
        return;
    double us = std::chrono::duration<double, std::micro>(
                    Clock::now() - since)
                    .count();
    s->metrics().observe(name, us);
}

} // namespace

std::shared_ptr<const CachedCompile>
CompileCache::lookupMemoryLocked(const std::string &key)
{
    auto it = memory_.find(key);
    if (it == memory_.end())
        return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second); // refresh to MRU
    return it->second->second;
}

void
CompileCache::insertMemoryLocked(
    const std::string &key, std::shared_ptr<const CachedCompile> value)
{
    auto it = memory_.find(key);
    if (it != memory_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.emplace_front(key, std::move(value));
    memory_[key] = lru_.begin();
    while (memory_.size() > config_.maxMemoryEntries && !lru_.empty()) {
        memory_.erase(lru_.back().first);
        lru_.pop_back();
    }
}

std::shared_ptr<const CachedCompile>
CompileCache::getOrCompute(const Circuit &input, const Device &device,
                           const CompileOptions &options,
                           const std::function<CachedCompile()> &compute)
{
    const std::string key =
        compileCacheKey(input, device, options, config_.versionSalt);
    Clock::time_point lookupStart = Clock::now();

    // Fast path + single-flight registration under the cache lock.
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (auto hit = lookupMemoryLocked(key)) {
            ++stats_.hits;
            ++stats_.memoryHits;
            bumpCounter("cache.hits");
            bumpCounter("cache.memory_hits");
            observeLatencyUs("cache.lookup.latency_us", lookupStart);
            return hit;
        }
        auto it = flights_.find(key);
        if (it != flights_.end()) {
            flight = it->second;
        } else {
            flight = std::make_shared<Flight>();
            flights_[key] = flight;
            leader = true;
        }
    }

    if (!leader) {
        // Another worker is compiling this key right now: wait and
        // share its result (or its exception) instead of recomputing.
        std::unique_lock<std::mutex> lock(flight->mu);
        flight->cv.wait(lock, [&] { return flight->done; });
        if (flight->error)
            std::rethrow_exception(flight->error);
        {
            std::lock_guard<std::mutex> cache_lock(mu_);
            ++stats_.hits;
            ++stats_.singleFlightShared;
        }
        bumpCounter("cache.hits");
        bumpCounter("cache.single_flight_shared");
        return flight->artifact;
    }

    auto finishFlight = [&](std::shared_ptr<const CachedCompile> artifact,
                            std::exception_ptr error) {
        {
            std::lock_guard<std::mutex> cache_lock(mu_);
            flights_.erase(key);
        }
        std::lock_guard<std::mutex> lock(flight->mu);
        flight->artifact = std::move(artifact);
        flight->error = error;
        flight->done = true;
        flight->cv.notify_all();
    };

    try {
        // Disk tier. A corrupt or truncated entry decodes to an
        // exception, which we treat as a miss and recompile cold.
        if (store_ != nullptr) {
            std::vector<std::uint8_t> payload;
            if (store_->load(key, &payload)) {
                bool decoded = false;
                CachedCompile artifact;
                try {
                    artifact = decodeCachedCompile(payload);
                    decoded = true;
                } catch (const Error &) {
                    // fall through to a cold compile
                }
                if (decoded) {
                    auto shared = std::make_shared<const CachedCompile>(
                        std::move(artifact));
                    {
                        std::lock_guard<std::mutex> lock(mu_);
                        insertMemoryLocked(key, shared);
                        ++stats_.hits;
                        ++stats_.diskHits;
                    }
                    bumpCounter("cache.hits");
                    bumpCounter("cache.disk_hits");
                    observeLatencyUs("cache.lookup.latency_us",
                                     lookupStart);
                    finishFlight(shared, nullptr);
                    return shared;
                }
            }
        }

        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.misses;
        }
        bumpCounter("cache.misses");

        auto shared =
            std::make_shared<const CachedCompile>(compute());
        if (store_ != nullptr) {
            Clock::time_point storeStart = Clock::now();
            store_->store(key, encodeCachedCompile(*shared));
            observeLatencyUs("cache.store.latency_us", storeStart);
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            insertMemoryLocked(key, shared);
            ++stats_.stores;
            if (store_ != nullptr)
                stats_.diskEvictions = store_->evictions();
        }
        bumpCounter("cache.stores");
        finishFlight(shared, nullptr);
        return shared;
    } catch (...) {
        finishFlight(nullptr, std::current_exception());
        throw;
    }
}

CacheStats
CompileCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    CacheStats out = stats_;
    out.memoryEntries = memory_.size();
    if (store_ != nullptr) {
        out.diskBytes = store_->bytes();
        out.diskEntries = store_->entries();
        out.diskEvictions = store_->evictions();
    }
    return out;
}

void
CompileCache::publishMetrics(const char *prefix) const
{
    obs::Sink *s = obs::sink();
    if (s == nullptr)
        return;
    CacheStats st = stats();
    obs::MetricsRegistry &m = s->metrics();
    std::string p(prefix);
    m.setGauge(p + ".bytes", static_cast<double>(st.diskBytes));
    m.setGauge(p + ".entries", static_cast<double>(st.diskEntries));
    m.setGauge(p + ".memory_entries",
               static_cast<double>(st.memoryEntries));
    m.setGauge(p + ".disk_evictions",
               static_cast<double>(st.diskEvictions));
    m.setGauge(p + ".hit_rate",
               st.hits + st.misses > 0
                   ? static_cast<double>(st.hits) /
                         static_cast<double>(st.hits + st.misses)
                   : 0.0);
}

} // namespace qsyn::cache
