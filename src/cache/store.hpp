/**
 * @file
 * On-disk tier of the compile cache: a content-addressed object store
 * under one directory.
 *
 * Layout (see docs/caching.md):
 *
 *   <dir>/objects/<key[0:2]>/<key>.qsc   one entry per fingerprint
 *   <dir>/tmp/                           staging for atomic commits
 *   <dir>/index.txt                      "key size seq" LRU index
 *
 * Entries are committed by writing to tmp/ and renaming into place —
 * readers never observe a half-written object. Every entry carries an
 * integrity header (magic, format version, its own key, payload size,
 * payload checksum); anything that fails validation is deleted and
 * reported as a miss, so truncation or bit flips degrade to a cold
 * compile instead of a crash. When the store grows past maxBytes the
 * least-recently-used entries (by index seq) are evicted.
 */

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qsyn::cache {

struct StoreConfig
{
    /** Root directory; created on demand. */
    std::string dir;
    /** Total payload budget before LRU eviction kicks in. */
    std::uint64_t maxBytes = 256ull << 20;
};

/** Thread-safe persistent key/bytes store with LRU eviction. */
class CacheStore
{
  public:
    explicit CacheStore(StoreConfig config);

    /**
     * Fetch an entry. Returns false on miss; a present-but-corrupt
     * entry (bad header, wrong key, checksum mismatch, truncation) is
     * removed and also reported as a miss. A hit refreshes the entry's
     * LRU position.
     */
    bool load(const std::string &key, std::vector<std::uint8_t> *payload);

    /**
     * Commit an entry atomically (write to tmp, fsync-free rename into
     * objects/). Best-effort: I/O failures are swallowed — the cache
     * must never turn a successful compile into an error. Evicts LRU
     * entries afterwards if the store exceeds its byte budget.
     */
    void store(const std::string &key,
               const std::vector<std::uint8_t> &payload);

    /** Total payload bytes currently indexed. */
    std::uint64_t bytes() const;
    /** Entries currently indexed. */
    size_t entries() const;
    /** Entries evicted by the byte budget over this store's lifetime. */
    size_t evictions() const;

  private:
    struct Entry
    {
        std::uint64_t size = 0;
        std::uint64_t seq = 0; // larger = more recently used
    };

    std::string objectPath(const std::string &key) const;
    void loadIndexLocked();
    void writeIndexLocked();
    void evictLocked();
    void removeEntryLocked(const std::string &key);

    StoreConfig config_;
    mutable std::mutex mu_;
    std::map<std::string, Entry> index_;
    std::uint64_t totalBytes_ = 0;
    std::uint64_t nextSeq_ = 1;
    size_t evictions_ = 0;
};

} // namespace qsyn::cache
